package cheetah_test

import (
	"strings"
	"testing"

	cheetah "repro"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/pmu"
)

// fsProgram builds a minimal false-sharing program on sys: threads write
// adjacent words of one heap object.
func fsProgram(sys *cheetah.System, threads, iters int) (mem.Addr, cheetah.Program) {
	obj := sys.Heap().Malloc(mem.MainThread, 64,
		heap.Stack(heap.Frame{Func: "main", File: "api_test.go", Line: 17}))
	bodies := make([]cheetah.Body, threads)
	for i := 0; i < threads; i++ {
		mine := obj.Add(i * 4)
		bodies[i] = func(t *cheetah.T) {
			for j := 0; j < iters; j++ {
				t.Load(mine)
				t.Compute(1)
				t.Store(mine)
			}
		}
	}
	return obj, cheetah.Program{
		Name: "api-fs",
		Phases: []cheetah.Phase{
			cheetah.SerialPhase("init", func(t *cheetah.T) {
				for i := 0; i < threads; i++ {
					t.Store(obj.Add(i * 4))
					for s := 0; s < 8; s++ {
						t.Load(obj.Add(i * 4))
					}
					t.Compute(3)
				}
			}),
			cheetah.ParallelPhase("work", bodies...),
		},
	}
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	sys := cheetah.New(cheetah.Config{Cores: 8})
	obj, prog := fsProgram(sys, 4, 60000)
	report, res := sys.Profile(prog, cheetah.ProfileOptions{
		PMU: pmu.Config{Period: 256, Jitter: 64},
	})
	if res.TotalCycles == 0 {
		t.Fatal("no runtime recorded")
	}
	if len(report.Instances) != 1 {
		t.Fatalf("got %d instances, want 1 (candidates %d)", len(report.Instances), len(report.Candidates))
	}
	in := report.Instances[0]
	if in.Object.Start != obj {
		t.Errorf("instance object %v, want %v", in.Object.Start, obj)
	}
	if in.Assessment.Improvement < 1.5 {
		t.Errorf("predicted improvement %.2f, want substantial", in.Assessment.Improvement)
	}
	if !strings.Contains(report.Format(), "api_test.go: 17") {
		t.Error("report does not name the allocation site")
	}
}

func TestRunIsDeterministicAcrossSystems(t *testing.T) {
	run := func() uint64 {
		sys := cheetah.New(cheetah.Config{Cores: 8})
		_, prog := fsProgram(sys, 4, 20000)
		return sys.Run(prog).TotalCycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic runs: %d vs %d", a, b)
	}
}

func TestProfileOverheadIsSmall(t *testing.T) {
	sysA := cheetah.New(cheetah.Config{Cores: 8})
	_, progA := fsProgram(sysA, 4, 60000)
	native := sysA.Run(progA).TotalCycles

	sysB := cheetah.New(cheetah.Config{Cores: 8})
	_, progB := fsProgram(sysB, 4, 60000)
	_, res := sysB.Profile(progB, cheetah.ProfileOptions{})
	overhead := float64(res.TotalCycles)/float64(native) - 1
	if overhead > 0.25 {
		t.Errorf("default-config profiling overhead %.1f%%, want light", overhead*100)
	}
}

func TestRunTracedExposesGroundTruth(t *testing.T) {
	sys := cheetah.New(cheetah.Config{Cores: 8})
	obj, prog := fsProgram(sys, 4, 20000)
	_, sim := sys.RunTraced(prog)
	if sim.LineInvalidations(obj) == 0 {
		t.Error("machine recorded no invalidations on the contended line")
	}
}

func TestConfigDefaults(t *testing.T) {
	sys := cheetah.New(cheetah.Config{})
	if sys.Cores() != 48 {
		t.Errorf("default cores = %d, want 48 (the paper's machine)", sys.Cores())
	}
	if sys.Heap() == nil || sys.Globals() == nil {
		t.Fatal("memory layout not initialized")
	}
	if !sys.Heap().Contains(sys.Heap().Base()) {
		t.Error("heap bounds inconsistent")
	}
}

func TestProfileOptionThresholds(t *testing.T) {
	sys := cheetah.New(cheetah.Config{Cores: 8})
	_, prog := fsProgram(sys, 4, 60000)
	// An absurd improvement threshold filters everything into candidates.
	report, _ := sys.Profile(prog, cheetah.ProfileOptions{
		PMU:            pmu.Config{Period: 256, Jitter: 64},
		MinImprovement: 1000,
	})
	if len(report.Instances) != 0 {
		t.Error("threshold did not filter instances")
	}
	if len(report.Candidates) == 0 {
		t.Error("filtered instance missing from candidates")
	}
}

func TestPooledPhaseReusesThreads(t *testing.T) {
	sys := cheetah.New(cheetah.Config{Cores: 8})
	body := func(t *cheetah.T) { t.Compute(1000) }
	prog := cheetah.Program{
		Name: "pooled",
		Phases: []cheetah.Phase{
			cheetah.PooledPhase("round1", body, body),
			cheetah.PooledPhase("round2", body, body),
			cheetah.PooledPhase("round3", body, body),
		},
	}
	res := sys.Run(prog)
	distinct := map[mem.ThreadID]bool{}
	for _, th := range res.Threads {
		distinct[th.ID] = true
	}
	if len(distinct) != 2 {
		t.Errorf("pooled phases used %d distinct threads, want 2", len(distinct))
	}
	if len(res.Threads) != 6 {
		t.Errorf("got %d thread-phase records, want 6", len(res.Threads))
	}
}
