package exec

import "repro/internal/mem"

// opKind distinguishes the three operation types a thread body can issue.
type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opCompute
)

// op is one thread operation: a memory access or a block of pure compute
// instructions.
type op struct {
	kind opKind
	size uint8
	n    uint32 // compute instruction count
	addr mem.Addr
}

// T is the context handed to a thread body. Its methods record operations
// into a buffer that the engine consumes in virtual-time order; bodies
// never block except when the engine has fallen a full buffer behind.
type T struct {
	id    mem.ThreadID
	index int
	buf   []op
	out   chan []op
	free  chan []op
}

// ID returns the engine-wide thread id.
func (t *T) ID() mem.ThreadID { return t.id }

// Index returns the thread's index within its phase (0-based).
func (t *T) Index() int { return t.index }

// Load issues a 4-byte load from addr.
func (t *T) Load(addr mem.Addr) { t.emit(op{kind: opLoad, size: 4, addr: addr}) }

// Store issues a 4-byte store to addr.
func (t *T) Store(addr mem.Addr) { t.emit(op{kind: opStore, size: 4, addr: addr}) }

// Load8 issues an 8-byte load (e.g. the long long fields of
// linear_regression's lreg_args).
func (t *T) Load8(addr mem.Addr) { t.emit(op{kind: opLoad, size: 8, addr: addr}) }

// Store8 issues an 8-byte store.
func (t *T) Store8(addr mem.Addr) { t.emit(op{kind: opStore, size: 8, addr: addr}) }

// LoadN issues a load of size bytes. Sub-word sizes model the byte and
// halfword accesses imported traces carry; the size is preserved on the
// resulting mem.Access (sharing analysis remains word-granular).
func (t *T) LoadN(addr mem.Addr, size uint8) { t.emit(op{kind: opLoad, size: size, addr: addr}) }

// StoreN issues a store of size bytes.
func (t *T) StoreN(addr mem.Addr, size uint8) { t.emit(op{kind: opStore, size: size, addr: addr}) }

// Compute advances the thread by n arithmetic instructions (one cycle
// each) without touching memory.
func (t *T) Compute(n int) {
	for n > 0 {
		chunk := n
		const max = 1 << 30
		if chunk > max {
			chunk = max
		}
		t.emit(op{kind: opCompute, n: uint32(chunk)})
		n -= chunk
	}
}

// emit appends an operation, flushing the buffer to the engine when full.
func (t *T) emit(o op) {
	t.buf = append(t.buf, o)
	if len(t.buf) == cap(t.buf) {
		t.flush()
	}
}

// flush hands the current buffer to the engine and picks up an empty one.
func (t *T) flush() {
	if len(t.buf) == 0 {
		return
	}
	t.out <- t.buf
	t.buf = (<-t.free)[:0]
}

// thread is the engine-side state of one simulated thread.
type thread struct {
	id    mem.ThreadID
	core  int
	phase int
	start uint64

	vtime       uint64
	instrs      uint64
	memAccesses uint64
	memCycles   uint64

	body Body
	t    *T
	out  chan []op
	free chan []op

	buf []op
	pos int

	// Probe pace cache (see AccessPacer): the folded thresholds for this
	// thread, refreshed by runSlice only after a dispatched probe call.
	// paceState: 0 = not yet queried, 1 = all probes pace, 2 = at least
	// one probe must see every access. Caching here keeps the per-probe
	// interface assertions out of the slice hot path.
	paceInstr uint64
	paceCycle uint64
	paceState uint8
}

// initThread initializes a slab-allocated thread whose virtual clock
// starts at start. index is the thread's position within its phase;
// genBuf and engBuf are the two (possibly pooled) op buffers that rotate
// between generator and engine.
func initThread(th *thread, t *T, id mem.ThreadID, core, phase, index int, start uint64, genBuf, engBuf []op, body Body) {
	out := make(chan []op, 1)
	free := make(chan []op, 2)
	free <- engBuf
	*t = T{id: id, index: index, buf: genBuf, out: out, free: free}
	*th = thread{
		id: id, core: core, phase: phase, start: start, vtime: start,
		body: body, t: t, out: out, free: free,
	}
}

// startGen launches the generator goroutine running the thread body.
func (th *thread) startGen() {
	go func() {
		th.body(th.t)
		th.t.flush()
		close(th.out)
	}()
}

// refill obtains the next operation buffer, returning false when the body
// has finished. The previous buffer is recycled to the generator.
func (th *thread) refill() bool {
	if th.buf != nil {
		select {
		case th.free <- th.buf:
		default:
		}
	}
	buf, ok := <-th.out
	if !ok {
		th.buf = nil
		return false
	}
	th.buf = buf
	th.pos = 0
	return len(buf) > 0 || th.refill()
}

// heapItem is one heap slot. The sort key (vtime, id) is stored inline so
// comparisons during sifts do not chase thread pointers; vt is a snapshot
// of th.vtime, refreshed by FixMin for the only thread whose clock moves
// (the running root).
type heapItem struct {
	vt uint64
	id mem.ThreadID
	th *thread
}

// threadHeap is the binary min-heap Scheduler: threads ordered by
// (vtime, id), the id tie-break making interleavings fully
// deterministic. It exploits the run-in-place contract directly — the
// root stays in the heap while it runs, so FixMin is a single siftDown
// (the second-earliest thread is always a root child), half the heap
// work of a pop/push pair.
type threadHeap struct {
	items []heapItem
}

func newThreadHeap(capacity int) *threadHeap {
	return &threadHeap{items: make([]heapItem, 0, capacity)}
}

func (h *threadHeap) Len() int     { return len(h.items) }
func (h *threadHeap) Min() *thread { return h.items[0].th }

// NextVtime returns the virtual time of the second-earliest thread, or
// the maximum time when the root is alone. In a binary min-heap ordered
// primarily by vtime, the minimum non-root vtime is at a root child.
func (h *threadHeap) NextVtime() uint64 {
	switch len(h.items) {
	case 1:
		return ^uint64(0)
	case 2:
		return h.items[1].vt
	default:
		v := h.items[1].vt
		if w := h.items[2].vt; w < v {
			v = w
		}
		return v
	}
}

// NextKey returns the full (vtime, id) key of the second-earliest
// thread — the smaller-keyed root child — or the sentinel maximum when
// the root is alone.
func (h *threadHeap) NextKey() (uint64, mem.ThreadID) {
	switch len(h.items) {
	case 1:
		return ^uint64(0), maxThreadID
	case 2:
		return h.items[1].vt, h.items[1].id
	default:
		it := h.items[1]
		if h.items[2].less(it) {
			it = h.items[2]
		}
		return it.vt, it.id
	}
}

// FixMin restores heap order after the root thread's vtime has increased.
func (h *threadHeap) FixMin() {
	h.items[0].vt = h.items[0].th.vtime
	h.siftDown(0)
}

func (a heapItem) less(b heapItem) bool {
	if a.vt != b.vt {
		return a.vt < b.vt
	}
	return a.id < b.id
}

func (h *threadHeap) Push(th *thread) {
	h.items = append(h.items, heapItem{vt: th.vtime, id: th.id, th: th})
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].less(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *threadHeap) PopMin() *thread {
	top := h.items[0].th
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *threadHeap) siftDown(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.items[left].less(h.items[smallest]) {
			smallest = left
		}
		if right < n && h.items[right].less(h.items[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
