package exec

import (
	"fmt"

	"repro/internal/mem"
)

// Scheduler names accepted by Config.Sched and the CLIs' -sched flag.
const (
	// SchedSorted is the sorted-array run queue, the default: runnable
	// threads in one descending-sorted slice, so peeking the minimum and
	// the second-earliest key are plain loads and a reschedule is an
	// insertion walk from the tail. An advancing thread almost always
	// lands within a few positions of where it left (thread clocks
	// cluster within one access latency), so the walk beats the heap's
	// fixed 2·log n comparisons at every realistic thread count.
	SchedSorted = "sorted"
	// SchedHeap is the binary min-heap scheduler: O(log n) worst-case
	// reschedules, the robust choice for heavily oversubscribed phases
	// (hundreds of threads) where the sorted queue's insertion walk can
	// degenerate.
	SchedHeap = "heap"
	// SchedCalendar is the calendar-queue (ladder) scheduler: O(1) on the
	// common advance-and-reinsert path instead of O(log n).
	SchedCalendar = "calendar"
)

// SchedulerNames lists the available scheduler implementations, in the
// order CLIs should present them.
func SchedulerNames() []string { return []string{SchedSorted, SchedHeap, SchedCalendar} }

// ValidScheduler reports whether name selects a scheduler. The empty
// string is valid and means the default (SchedSorted).
func ValidScheduler(name string) bool {
	switch name {
	case "", SchedSorted, SchedHeap, SchedCalendar:
		return true
	}
	return false
}

// Scheduler is the engine's thread-selection structure: a priority queue
// of runnable threads keyed by (vtime, id). The id tie-break makes the
// key total, so any correct implementation yields the identical,
// fully deterministic schedule — the cross-scheduler equivalence suite
// (TestSchedulerEquivalence and the report-level suites above it)
// enforces byte-identical results across implementations.
//
// The engine's inner loop exploits a structural fact every
// implementation must honor: the minimum thread stays *in* the scheduler
// while it runs. The engine peeks the minimum (Min), runs it in place
// until its clock passes the second-earliest key (NextVtime), then calls
// FixMin to restore order — for the heap that is a single sift-down
// (the second-earliest thread is always a root child), half the work of
// a pop/push pair; for the calendar queue the minimum is held out of the
// buckets entirely, so the common case is one key comparison and no
// bucket traffic at all. Only Min's vtime may change between calls.
type Scheduler interface {
	// Push inserts a runnable thread keyed by its current (vtime, id).
	Push(th *thread)
	// Len reports how many threads are scheduled.
	Len() int
	// Min returns the thread with the smallest (vtime, id) key without
	// removing it.
	Min() *thread
	// NextVtime returns the vtime of the second-earliest thread — the
	// point up to which Min may run unchallenged — or ^uint64(0) when
	// Min is alone.
	NextVtime() uint64
	// NextKey returns the full (vtime, id) key of the second-earliest
	// thread, or (^uint64(0), maxThreadID) when Min is alone. The batched
	// engine loop uses the id to run Min through exact-vtime ties it wins
	// by id order without a scheduler round per op.
	NextKey() (uint64, mem.ThreadID)
	// FixMin restores order after Min's vtime has increased in place.
	FixMin()
	// PopMin removes and returns the earliest thread.
	PopMin() *thread
}

// maxThreadID is the NextKey id sentinel when Min is alone: no real
// thread id compares at or above it.
const maxThreadID = mem.ThreadID(1<<31 - 1)

// newSchedulerFor builds the scheduler selected by name (see Sched*
// constants); the empty string selects the sorted queue. Callers
// validate user-supplied names with ValidScheduler first — an unknown
// name here is a programming error.
func newSchedulerFor(name string, capacity int) Scheduler {
	switch name {
	case "", SchedSorted:
		return newSortedQueue(capacity)
	case SchedHeap:
		return newThreadHeap(capacity)
	case SchedCalendar:
		return newCalendarQueue(capacity)
	}
	panic(fmt.Sprintf("exec: unknown scheduler %q", name))
}
