// Package progen generates randomized fork-join programs for the
// cross-scheduler equivalence suite: seeded, reproducible, and
// shrink-friendly — the Case index scales every size knob, so case 0 is
// a single thread issuing a handful of operations and later cases grow
// toward paper-shaped programs (multiple serial/parallel/pooled phases,
// oversubscribed thread counts, deliberate (vtime, id) ties, far-future
// compute sleeps). A failing case therefore reproduces from (Seed, Case)
// alone, and the smallest failing index is already close to minimal.
//
// Generated bodies replay pre-materialized operation lists, never
// consulting the generator at simulation time, so a program is safe to
// run any number of times (and concurrently from its goroutine-per-
// thread bodies) with identical behavior — the property the equivalence
// suite runs under both schedulers and byte-compares.
package progen

import (
	"math/rand"

	"repro/internal/exec"
	"repro/internal/mem"
)

// Config seeds and bounds one generated program.
type Config struct {
	// Seed selects the random stream; combined with Case, it fully
	// determines the program.
	Seed int64
	// Case is the case index within a suite run. Sizes (phases, threads,
	// operations, address spread) grow with it.
	Case int
	// Addrs are the base addresses bodies touch — typically a few heap
	// objects and globals, so detection reports have something to
	// attribute. At least one is required. Bodies access small offsets
	// (within a few cache lines) off these bases, which manufactures
	// both true and false sharing.
	Addrs []mem.Addr
	// MaxThreads caps the per-phase thread count (default 8). The
	// generator intentionally exceeds typical core counts on later
	// cases, so oversubscription is covered.
	MaxThreads int
}

// genOp is one materialized operation.
type genOp struct {
	kind byte // 'l' load, 's' store, 'L' load8, 'S' store8, 'n' loadN, 'N' storeN, 'c' compute
	addr mem.Addr
	size uint8
	n    int
}

// phaseSpec is one materialized phase: its kind plus the operation list
// of every body.
type phaseSpec struct {
	serial bool
	pooled bool
	bodies [][]genOp
}

// Generate builds the program for cfg. The same cfg always yields a
// behaviorally identical program.
func Generate(cfg Config) exec.Program {
	prog := exec.Program{Name: "progen"}
	for _, ph := range materialize(cfg) {
		bodies := make([]exec.Body, len(ph.bodies))
		for i, ops := range ph.bodies {
			bodies[i] = replay(ops)
		}
		switch {
		case ph.serial:
			prog.Phases = append(prog.Phases, exec.SerialPhase("serial", bodies[0]))
		case ph.pooled:
			prog.Phases = append(prog.Phases, exec.PooledPhase("pooled", bodies...))
		default:
			prog.Phases = append(prog.Phases, exec.ParallelPhase("parallel", bodies...))
		}
	}
	return prog
}

// materialize draws the full program shape and every operation list
// from cfg's random stream.
func materialize(cfg Config) []phaseSpec {
	if len(cfg.Addrs) == 0 {
		panic("progen: Config.Addrs must name at least one base address")
	}
	maxThreads := cfg.MaxThreads
	if maxThreads <= 0 {
		maxThreads = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(cfg.Case)*0x9e3779b97f4a7c15)))

	// Size knobs grow with the case index and saturate, keeping even the
	// nightly 2000-case sweep affordable.
	grow := cfg.Case
	if grow > 200 {
		grow = 200
	}
	maxPhases := 1 + min(grow/4, 3)
	maxBodies := 1 + min(1+grow/8, maxThreads-1)
	maxOps := 4 + min(grow*2, 220)

	var spec []phaseSpec
	phases := 1 + rng.Intn(maxPhases)
	for p := 0; p < phases; p++ {
		switch k := rng.Intn(6); {
		case k == 0:
			spec = append(spec, phaseSpec{serial: true,
				bodies: [][]genOp{genOps(rng, cfg.Addrs, 1+rng.Intn(maxOps))}})
		default:
			spec = append(spec, phaseSpec{pooled: k == 1,
				bodies: genBodies(rng, cfg.Addrs, 1+rng.Intn(maxBodies), maxOps)})
		}
	}
	return spec
}

// genBodies materializes n thread bodies. With one-in-three probability
// every thread replays the same operation list — threads that start
// together then stay tied on (vtime, id) for the whole phase, the
// tie-break stress the equivalence suite cares most about.
func genBodies(rng *rand.Rand, addrs []mem.Addr, n, maxOps int) [][]genOp {
	bodies := make([][]genOp, n)
	if n >= 2 && rng.Intn(3) == 0 {
		ops := genOps(rng, addrs, 1+rng.Intn(maxOps))
		for i := range bodies {
			bodies[i] = ops
		}
		return bodies
	}
	for i := range bodies {
		bodies[i] = genOps(rng, addrs, 1+rng.Intn(maxOps))
	}
	return bodies
}

// genOps materializes one operation list: loads/stores of every width
// clustered around the base addresses (offsets span two cache lines, so
// distinct threads collide on lines and words), compute blocks from
// zero-length to far past any scheduler bucket horizon, and occasional
// address reuse for true-sharing traffic.
func genOps(rng *rand.Rand, addrs []mem.Addr, n int) []genOp {
	ops := make([]genOp, n)
	for i := range ops {
		base := addrs[rng.Intn(len(addrs))]
		addr := base + mem.Addr(rng.Intn(128))
		switch rng.Intn(12) {
		case 0, 1, 2:
			ops[i] = genOp{kind: 'l', addr: addr &^ 3}
		case 3, 4, 5:
			ops[i] = genOp{kind: 's', addr: addr &^ 3}
		case 6:
			ops[i] = genOp{kind: 'L', addr: addr &^ 7}
		case 7:
			ops[i] = genOp{kind: 'S', addr: addr &^ 7}
		case 8:
			ops[i] = genOp{kind: 'n', addr: addr, size: uint8(1 << rng.Intn(2))}
		case 9:
			ops[i] = genOp{kind: 'N', addr: addr, size: uint8(1 << rng.Intn(2))}
		default:
			// Compute gaps: mostly short, sometimes zero (no clock
			// advance at all), rarely enormous (far-future wakeup —
			// calendar spill territory).
			var c int
			switch rng.Intn(8) {
			case 0:
				c = 0
			case 1:
				c = 2000 + rng.Intn(100000)
			default:
				c = rng.Intn(300)
			}
			ops[i] = genOp{kind: 'c', n: c}
		}
	}
	return ops
}

// replay wraps a materialized operation list as a thread body.
func replay(ops []genOp) exec.Body {
	return func(t *exec.T) {
		for _, o := range ops {
			switch o.kind {
			case 'l':
				t.Load(o.addr)
			case 's':
				t.Store(o.addr)
			case 'L':
				t.Load8(o.addr)
			case 'S':
				t.Store8(o.addr)
			case 'n':
				t.LoadN(o.addr, o.size)
			case 'N':
				t.StoreN(o.addr, o.size)
			default:
				t.Compute(o.n)
			}
		}
	}
}
