package progen

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

var testAddrs = []mem.Addr{0x1000, 0x2040, 0x8000}

// collectOps flattens every materialized operation of a case.
func collectOps(cfg Config) []genOp {
	var all []genOp
	for _, ph := range materialize(cfg) {
		for _, ops := range ph.bodies {
			all = append(all, ops...)
		}
	}
	return all
}

// TestGenerateReproducible: the same (Seed, Case) must materialize the
// identical operation lists — the property that makes a failing
// equivalence case reproducible from its log line alone. Bodies are
// closures, so reproducibility is checked at the genOps layer plus the
// program shape.
func TestGenerateReproducible(t *testing.T) {
	for c := 0; c < 50; c++ {
		a := Generate(Config{Seed: 7, Case: c, Addrs: testAddrs})
		b := Generate(Config{Seed: 7, Case: c, Addrs: testAddrs})
		if len(a.Phases) != len(b.Phases) {
			t.Fatalf("case %d: %d vs %d phases", c, len(a.Phases), len(b.Phases))
		}
		for i := range a.Phases {
			pa, pb := a.Phases[i], b.Phases[i]
			if pa.Name != pb.Name || pa.Serial != pb.Serial || pa.Pooled != pb.Pooled ||
				len(pa.Bodies) != len(pb.Bodies) {
				t.Fatalf("case %d phase %d: shape diverges: %+v vs %+v", c, i, pa, pb)
			}
		}
	}
}

// TestGenerateGrowsFromSmall: case 0 must be tiny (shrink-friendliness:
// the first failing case is close to minimal) and later cases must
// actually reach multi-phase, multi-thread shapes.
func TestGenerateGrowsFromSmall(t *testing.T) {
	p0 := Generate(Config{Seed: 1, Case: 0, Addrs: testAddrs})
	if len(p0.Phases) != 1 || len(p0.Phases[0].Bodies) > 2 {
		t.Errorf("case 0 is not small: %d phases, %d bodies",
			len(p0.Phases), len(p0.Phases[0].Bodies))
	}
	var sawMultiPhase, sawManyThreads, sawPooled, sawSerial bool
	for c := 0; c < 200; c++ {
		p := Generate(Config{Seed: 1, Case: c, Addrs: testAddrs})
		if len(p.Phases) > 1 {
			sawMultiPhase = true
		}
		for _, ph := range p.Phases {
			if len(ph.Bodies) >= 6 {
				sawManyThreads = true
			}
			if ph.Pooled {
				sawPooled = true
			}
			if ph.Serial {
				sawSerial = true
			}
		}
	}
	if !sawMultiPhase || !sawManyThreads || !sawPooled || !sawSerial {
		t.Errorf("200 cases never reached full shape coverage: multiphase=%v many=%v pooled=%v serial=%v",
			sawMultiPhase, sawManyThreads, sawPooled, sawSerial)
	}
}

// TestGenOpsMix: the operation stream must cover every op kind the
// engine accepts, including zero-length compute and far-future sleeps.
func TestGenOpsMix(t *testing.T) {
	kinds := map[byte]int{}
	var zeroCompute, hugeCompute bool
	for c := 0; c < 100; c++ {
		rngOps := collectOps(Config{Seed: 3, Case: c, Addrs: testAddrs})
		for _, o := range rngOps {
			kinds[o.kind]++
			if o.kind == 'c' && o.n == 0 {
				zeroCompute = true
			}
			if o.kind == 'c' && o.n >= 2000 {
				hugeCompute = true
			}
		}
	}
	for _, k := range []byte{'l', 's', 'L', 'S', 'n', 'N', 'c'} {
		if kinds[k] == 0 {
			t.Errorf("op kind %q never generated", k)
		}
	}
	if !zeroCompute || !hugeCompute {
		t.Errorf("compute extremes missing: zero=%v huge=%v", zeroCompute, hugeCompute)
	}
	if !reflect.DeepEqual(collectOps(Config{Seed: 3, Case: 5, Addrs: testAddrs}),
		collectOps(Config{Seed: 3, Case: 5, Addrs: testAddrs})) {
		t.Error("collectOps not reproducible")
	}
}
