package exec

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

// fixedMachine returns a constant latency for every access, for tests
// that need simple arithmetic.
type fixedMachine struct {
	cores   int
	latency uint32
	log     []mem.Access
}

func (m *fixedMachine) Access(core int, addr mem.Addr, write bool, now uint64) uint32 {
	return m.latency
}
func (m *fixedMachine) Cores() int { return m.cores }

// recorder captures probe callbacks.
type recorder struct {
	BaseProbe
	accesses     []mem.Access
	threads      []ThreadInfo
	phases       []PhaseInfo
	startCharge  uint64
	accessCharge uint64
	total        uint64
}

func (r *recorder) ThreadStart(th ThreadInfo) uint64 {
	return r.startCharge
}

func (r *recorder) ThreadEnd(th ThreadInfo) { r.threads = append(r.threads, th) }

func (r *recorder) PhaseEnd(ph PhaseInfo) { r.phases = append(r.phases, ph) }

func (r *recorder) Access(a mem.Access, instrs uint64) uint64 {
	r.accesses = append(r.accesses, a)
	return r.accessCharge
}

func (r *recorder) ProgramEnd(total uint64) { r.total = total }

func TestSerialPhaseTiming(t *testing.T) {
	m := &fixedMachine{cores: 4, latency: 10}
	e := New(m, Config{OpBuffer: 8})
	res := e.Run(Program{
		Name: "serial",
		Phases: []Phase{
			SerialPhase("init", func(tt *T) {
				tt.Compute(100)
				tt.Store(0x40)
				tt.Load(0x80)
			}),
		},
	})
	// 100 compute + 2 accesses * 10 cycles.
	if res.TotalCycles != 120 {
		t.Errorf("TotalCycles = %d, want 120", res.TotalCycles)
	}
	if len(res.Threads) != 1 || res.Threads[0].ID != mem.MainThread {
		t.Fatalf("threads = %+v, want single main thread", res.Threads)
	}
	if res.Threads[0].Instrs != 102 {
		t.Errorf("Instrs = %d, want 102", res.Threads[0].Instrs)
	}
	if res.Threads[0].MemAccesses != 2 || res.Threads[0].MemCycles != 20 {
		t.Errorf("mem counters = (%d, %d), want (2, 20)",
			res.Threads[0].MemAccesses, res.Threads[0].MemCycles)
	}
}

func TestParallelPhaseForkJoinTiming(t *testing.T) {
	m := &fixedMachine{cores: 4, latency: 5}
	cfg := Config{ThreadCreateCycles: 100, ThreadJoinCycles: 50, OpBuffer: 8}
	e := New(m, cfg)
	work := func(n int) Body {
		return func(tt *T) { tt.Compute(n) }
	}
	res := e.Run(Program{
		Name:   "fork-join",
		Phases: []Phase{ParallelPhase("work", work(1000), work(2000))},
	})
	// Thread 0 starts at 0, ends 1000; thread 1 starts at 100, ends 2100.
	// Phase end = 2100 + 2*50 join cost.
	if res.TotalCycles != 2200 {
		t.Errorf("TotalCycles = %d, want 2200", res.TotalCycles)
	}
	if len(res.Threads) != 2 {
		t.Fatalf("got %d thread records, want 2", len(res.Threads))
	}
	for _, th := range res.Threads {
		if th.ID == 1 && th.Runtime() != 1000 {
			t.Errorf("thread 1 runtime = %d, want 1000", th.Runtime())
		}
		if th.ID == 2 && th.Runtime() != 2000 {
			t.Errorf("thread 2 runtime = %d, want 2000", th.Runtime())
		}
	}
}

func TestThreadIDsMonotonicAcrossPhases(t *testing.T) {
	m := &fixedMachine{cores: 8, latency: 1}
	e := New(m, Config{OpBuffer: 8})
	noop := func(tt *T) { tt.Compute(1) }
	rec := &recorder{}
	e2 := New(m, Config{OpBuffer: 8}, rec)
	prog := Program{
		Name: "phased",
		Phases: []Phase{
			SerialPhase("s1", noop),
			ParallelPhase("p1", noop, noop),
			SerialPhase("s2", noop),
			ParallelPhase("p2", noop, noop, noop),
		},
	}
	e.Run(prog)
	res := e2.Run(prog)
	seen := map[mem.ThreadID]bool{}
	for _, th := range res.Threads {
		seen[th.ID] = true
	}
	// Main thread appears for serial phases; parallel threads are 1..5.
	for id := mem.ThreadID(1); id <= 5; id++ {
		if !seen[id] {
			t.Errorf("thread id %d missing; records %+v", id, res.Threads)
		}
	}
	if len(res.Phases) != 4 {
		t.Errorf("got %d phases, want 4", len(res.Phases))
	}
	for i, ph := range res.Phases {
		if ph.Index != i {
			t.Errorf("phase %d has index %d", i, ph.Index)
		}
		if i > 0 && ph.Start != res.Phases[i-1].End {
			t.Errorf("phase %d starts at %d, previous ended at %d", i, ph.Start, res.Phases[i-1].End)
		}
	}
}

func TestVirtualTimeInterleavingIsFair(t *testing.T) {
	// Two identical threads alternate stores; with a real cache simulator
	// their accesses must interleave rather than run back-to-back.
	sim := cache.New(cache.DefaultConfig(4))
	rec := &recorder{}
	e := New(sim, Config{OpBuffer: 4}, rec)
	body := func(base mem.Addr) Body {
		return func(tt *T) {
			for i := 0; i < 100; i++ {
				tt.Store(base)
				tt.Compute(10)
			}
		}
	}
	e.Run(Program{
		Name:   "interleave",
		Phases: []Phase{ParallelPhase("p", body(0x1000), body(0x1004))},
	})
	// Count the longest run of consecutive accesses by one thread.
	longest, run := 0, 0
	var prev mem.ThreadID = -1
	for _, a := range rec.accesses {
		if a.Thread == prev {
			run++
		} else {
			run = 1
			prev = a.Thread
		}
		if run > longest {
			longest = run
		}
	}
	// The cache model's ownership hold lets a thread batch accesses while
	// a steal is in flight, so runs up to roughly hold/iteration-cost are
	// expected — but not monopolization.
	if longest > 64 {
		t.Errorf("longest single-thread access run = %d, want bounded batching", longest)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() (Result, []mem.Access) {
		sim := cache.New(cache.DefaultConfig(8))
		rec := &recorder{}
		e := New(sim, DefaultConfig(), rec)
		bodies := make([]Body, 6)
		for i := range bodies {
			base := mem.Addr(0x2000 + i*4)
			bodies[i] = func(tt *T) {
				for j := 0; j < 500; j++ {
					tt.Store(base)
					tt.Load(base + 64)
					tt.Compute(7)
				}
			}
		}
		res := e.Run(Program{Name: "det", Phases: []Phase{ParallelPhase("p", bodies...)}})
		return res, rec.accesses
	}
	r1, a1 := build()
	r2, a2 := build()
	if r1.TotalCycles != r2.TotalCycles {
		t.Fatalf("nondeterministic total: %d vs %d", r1.TotalCycles, r2.TotalCycles)
	}
	if len(a1) != len(a2) {
		t.Fatalf("nondeterministic access counts: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, a1[i], a2[i])
		}
	}
}

func TestProbeOverheadCharged(t *testing.T) {
	m := &fixedMachine{cores: 2, latency: 10}
	rec := &recorder{startCharge: 1000, accessCharge: 3}
	e := New(m, Config{OpBuffer: 8}, rec)
	res := e.Run(Program{
		Name: "overhead",
		Phases: []Phase{
			SerialPhase("s", func(tt *T) {
				for i := 0; i < 10; i++ {
					tt.Store(mem.Addr(i * 64))
				}
			}),
		},
	})
	// 1000 setup + 10*(10 latency + 3 handler).
	if res.TotalCycles != 1000+10*13 {
		t.Errorf("TotalCycles = %d, want %d", res.TotalCycles, 1000+10*13)
	}
}

func TestAccessRecordFields(t *testing.T) {
	m := &fixedMachine{cores: 2, latency: 7}
	rec := &recorder{}
	e := New(m, Config{OpBuffer: 8}, rec)
	e.Run(Program{
		Name: "fields",
		Phases: []Phase{
			SerialPhase("s", func(tt *T) {
				tt.Compute(5)
				tt.Store8(0x123)
				tt.Load(0x456)
			}),
		},
	})
	if len(rec.accesses) != 2 {
		t.Fatalf("got %d accesses, want 2", len(rec.accesses))
	}
	w := rec.accesses[0]
	if w.Addr != 0x123 || w.Kind != mem.Write || w.Size != 8 || w.Latency != 7 || w.Time != 5 {
		t.Errorf("write access = %+v", w)
	}
	r := rec.accesses[1]
	if r.Addr != 0x456 || r.Kind != mem.Read || r.Size != 4 || r.Time != 12 {
		t.Errorf("read access = %+v", r)
	}
}

func TestLargeComputeChunks(t *testing.T) {
	m := &fixedMachine{cores: 2, latency: 1}
	e := New(m, Config{OpBuffer: 8})
	res := e.Run(Program{
		Name: "big",
		Phases: []Phase{
			SerialPhase("s", func(tt *T) { tt.Compute(3 << 30) }),
		},
	})
	if res.TotalCycles != 3<<30 {
		t.Errorf("TotalCycles = %d, want %d", res.TotalCycles, 3<<30)
	}
}

func TestEmptyPhaseAndBody(t *testing.T) {
	m := &fixedMachine{cores: 2, latency: 1}
	e := New(m, Config{OpBuffer: 8})
	res := e.Run(Program{
		Name: "empty",
		Phases: []Phase{
			{Name: "none"},
			SerialPhase("nothing", func(tt *T) {}),
		},
	})
	if res.TotalCycles != 0 {
		t.Errorf("TotalCycles = %d, want 0", res.TotalCycles)
	}
}

func TestMoreThreadsThanCores(t *testing.T) {
	sim := cache.New(cache.DefaultConfig(4))
	e := New(sim, DefaultConfig())
	bodies := make([]Body, 10)
	for i := range bodies {
		base := mem.Addr(0x9000 + i*128)
		bodies[i] = func(tt *T) {
			for j := 0; j < 50; j++ {
				tt.Store(base)
			}
		}
	}
	res := e.Run(Program{Name: "oversub", Phases: []Phase{ParallelPhase("p", bodies...)}})
	if len(res.Threads) != 10 {
		t.Fatalf("got %d threads, want 10", len(res.Threads))
	}
	for _, th := range res.Threads {
		if th.Core <= 0 || th.Core >= 4 {
			t.Errorf("thread %d on core %d, want worker cores 1..3", th.ID, th.Core)
		}
	}
}

func TestThreadHeapOrdering(t *testing.T) {
	h := newThreadHeap(8)
	vt := []uint64{50, 10, 30, 10, 90, 20}
	for i, v := range vt {
		h.Push(&thread{id: mem.ThreadID(i), vtime: v})
	}
	var got []uint64
	var ids []mem.ThreadID
	for h.Len() > 0 {
		th := h.PopMin()
		got = append(got, th.vtime)
		ids = append(ids, th.id)
	}
	want := []uint64{10, 10, 20, 30, 50, 90}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	// Ties broken by id: vtime 10 entries are threads 1 and 3.
	if ids[0] != 1 || ids[1] != 3 {
		t.Errorf("tie-break order = %v, want thread 1 before 3", ids[:2])
	}
}

func TestSerialPhaseWithMultipleBodiesPanics(t *testing.T) {
	m := &fixedMachine{cores: 2, latency: 1}
	e := New(m, Config{OpBuffer: 8})
	defer func() {
		if recover() == nil {
			t.Error("serial phase with 2 bodies did not panic")
		}
	}()
	noop := func(tt *T) {}
	e.Run(Program{Phases: []Phase{{Name: "bad", Bodies: []Body{noop, noop}, Serial: true}}})
}
