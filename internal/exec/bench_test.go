package exec

import (
	"fmt"
	"testing"

	"repro/internal/mem"
)

// benchMachine answers accesses with a small deterministic
// address-dependent latency. The variance keeps thread clocks diffusing
// past each other, so the engine's leader changes on almost every
// operation — the scheduler-heaviest regime, which is exactly what
// these benchmarks compare across implementations. (A real cache
// simulator would add its own large constant cost to every access and
// drown the scheduler signal.)
type benchMachine struct{ cores int }

func (m *benchMachine) Access(core int, addr mem.Addr, write bool, now uint64) uint32 {
	return 3 + uint32(addr>>2)%97
}
func (m *benchMachine) Cores() int { return m.cores }

// benchProgram builds one parallel phase of `threads` bodies, each
// issuing opsPerThread interleaved stores/loads over a private stripe
// plus short computes — per-thread streams long enough to amortize
// startup, with occasional long computes so far-future reinsertion
// (the calendar's spill path) is part of the measured mix.
func benchProgram(threads, opsPerThread int) Program {
	bodies := make([]Body, threads)
	for i := range bodies {
		base := mem.Addr(0x10000 + i*0x400)
		bodies[i] = func(t *T) {
			for j := 0; j < opsPerThread; j++ {
				t.Store(base + mem.Addr((j%64)*4))
				if j%7 == 0 {
					t.Load(base + mem.Addr((j%32)*8))
				}
				if j%251 == 250 {
					t.Compute(5000) // long sleep: far-future wakeup
				} else {
					t.Compute(j % 11)
				}
			}
		}
	}
	return Program{Name: "sched-bench", Phases: []Phase{ParallelPhase("p", bodies...)}}
}

// BenchmarkExecSched compares the schedulers on the engine's hot loop
// at increasing thread counts. The per-op simulated throughput lands in
// the simops/s metric; the acceptance bar is the calendar queue beating
// the heap at 8+ threads.
func BenchmarkExecSched(b *testing.B) {
	const opsPerThread = 20000
	for _, threads := range []int{2, 8, 16, 32} {
		for _, sched := range SchedulerNames() {
			b.Run(fmt.Sprintf("threads=%d/%s", threads, sched), func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.Sched = sched
				var ops uint64
				for i := 0; i < b.N; i++ {
					e := New(&benchMachine{cores: threads + 1}, cfg)
					res := e.Run(benchProgram(threads, opsPerThread))
					for _, th := range res.Threads {
						ops += th.MemAccesses
					}
				}
				b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
			})
		}
	}
}

// BenchmarkExecSchedTies is the worst case for leader churn: identical
// bodies with identical latencies keep every thread tied on vtime, so
// each operation changes the minimum. This pins the tie-heavy regime
// the equivalence suite exercises for correctness.
func BenchmarkExecSchedTies(b *testing.B) {
	const opsPerThread = 20000
	body := func(t *T) {
		for j := 0; j < opsPerThread; j++ {
			t.Store(0x40)
			t.Compute(3)
		}
	}
	for _, threads := range []int{8, 32} {
		bodies := make([]Body, threads)
		for i := range bodies {
			bodies[i] = body
		}
		prog := Program{Name: "ties", Phases: []Phase{ParallelPhase("p", bodies...)}}
		for _, sched := range SchedulerNames() {
			b.Run(fmt.Sprintf("threads=%d/%s", threads, sched), func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.Sched = sched
				for i := 0; i < b.N; i++ {
					e := New(&fixedMachine{cores: threads + 1, latency: 5}, cfg)
					e.Run(prog)
				}
			})
		}
	}
}
