package exec_test

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/exec/progen"
	"repro/internal/mem"
)

// equivSeed pins the randomized suite: failures reproduce from
// (equivSeed, case index) alone, and small indices are small programs.
const equivSeed = 0x5EED_CA1E

// equivCases returns the suite size: at least 200 randomized programs in
// -short (CI's push gate), at least 2000 in the nightly full run.
func equivCases() int {
	if testing.Short() {
		return 200
	}
	return 2000
}

// clockRecorder captures the complete observable execution: every access
// in global simulation order (with its per-thread virtual timestamp) and
// every thread's lifetime — the per-thread clock trajectory.
type clockRecorder struct {
	exec.BaseProbe
	accesses []mem.Access
	threads  []exec.ThreadInfo
}

func (r *clockRecorder) Access(a mem.Access, instrs uint64) uint64 {
	r.accesses = append(r.accesses, a)
	return 0
}

func (r *clockRecorder) ThreadEnd(th exec.ThreadInfo) { r.threads = append(r.threads, th) }

// runUnder executes prog on a fresh 8-core cache simulator under the
// named scheduler.
func runUnder(sched string, prog exec.Program) (exec.Result, *clockRecorder) {
	sim := cache.New(cache.DefaultConfig(8))
	rec := &clockRecorder{}
	cfg := exec.DefaultConfig()
	cfg.OpBuffer = 64 // small buffers exercise refill boundaries
	cfg.Sched = sched
	e := exec.New(sim, cfg, rec)
	return e.Run(prog), rec
}

// TestSchedulerEquivalence is the engine half of the cross-scheduler
// equivalence suite: every randomized program must produce an identical
// execution under the heap and calendar schedulers — same Result (total
// cycles, phase boundaries, per-thread start/end/instruction counts) and
// the same access stream in the same global order with the same
// per-thread clock trajectories. ≥200 cases in -short, ≥2000 nightly;
// cases grow from trivially small, so the first failing index is already
// near-minimal.
func TestSchedulerEquivalence(t *testing.T) {
	addrs := []mem.Addr{0x1000, 0x1040, 0x2040, 0x8000}
	for i := 0; i < equivCases(); i++ {
		cfg := progen.Config{Seed: equivSeed, Case: i, Addrs: addrs, MaxThreads: 12}
		heapRes, heapRec := runUnder(exec.SchedHeap, progen.Generate(cfg))
		calRes, calRec := runUnder(exec.SchedCalendar, progen.Generate(cfg))

		if !reflect.DeepEqual(heapRes, calRes) {
			t.Fatalf("case %d (seed %#x): Result diverges\nheap:     %+v\ncalendar: %+v",
				i, equivSeed, heapRes, calRes)
		}
		if !reflect.DeepEqual(heapRec.threads, calRec.threads) {
			t.Fatalf("case %d (seed %#x): thread lifetimes diverge\nheap:     %+v\ncalendar: %+v",
				i, equivSeed, heapRec.threads, calRec.threads)
		}
		if len(heapRec.accesses) != len(calRec.accesses) {
			t.Fatalf("case %d (seed %#x): %d accesses under heap, %d under calendar",
				i, equivSeed, len(heapRec.accesses), len(calRec.accesses))
		}
		for j := range heapRec.accesses {
			if heapRec.accesses[j] != calRec.accesses[j] {
				t.Fatalf("case %d (seed %#x): access %d diverges\nheap:     %+v\ncalendar: %+v",
					i, equivSeed, j, heapRec.accesses[j], calRec.accesses[j])
			}
		}
	}
}

// TestSchedulerEquivalenceSelfCheck guards the suite itself: a run must
// be deterministic against a re-run of the same scheduler, otherwise
// "heap == calendar" could pass vacuously on noise.
func TestSchedulerEquivalenceSelfCheck(t *testing.T) {
	addrs := []mem.Addr{0x1000, 0x2040}
	for i := 0; i < 25; i++ {
		cfg := progen.Config{Seed: equivSeed + 1, Case: i, Addrs: addrs}
		for _, sched := range exec.SchedulerNames() {
			a, ra := runUnder(sched, progen.Generate(cfg))
			b, rb := runUnder(sched, progen.Generate(cfg))
			if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(ra.accesses, rb.accesses) {
				t.Fatalf("case %d: %s scheduler not deterministic across reruns", i, sched)
			}
		}
	}
}
