package exec_test

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/exec/progen"
	"repro/internal/mem"
	"repro/internal/pmu"
)

// equivSeed pins the randomized suite: failures reproduce from
// (equivSeed, case index) alone, and small indices are small programs.
const equivSeed = 0x5EED_CA1E

// equivCases returns the suite size: at least 200 randomized programs in
// -short (CI's push gate), at least 2000 in the nightly full run.
func equivCases() int {
	if testing.Short() {
		return 200
	}
	return 2000
}

// clockRecorder captures the complete observable execution: every access
// in global simulation order (with its per-thread virtual timestamp) and
// every thread's lifetime — the per-thread clock trajectory.
type clockRecorder struct {
	exec.BaseProbe
	accesses []mem.Access
	threads  []exec.ThreadInfo
}

func (r *clockRecorder) Access(a mem.Access, instrs uint64) uint64 {
	r.accesses = append(r.accesses, a)
	return 0
}

func (r *clockRecorder) ThreadEnd(th exec.ThreadInfo) { r.threads = append(r.threads, th) }

// equivEngineConfig is the engine configuration every suite run shares,
// apart from the dimension under test.
func equivEngineConfig(sched string, unbatched bool) exec.Config {
	cfg := exec.DefaultConfig()
	cfg.OpBuffer = 64 // small buffers exercise refill boundaries
	cfg.Sched = sched
	cfg.Unbatched = unbatched
	return cfg
}

// runWith executes prog on a fresh 8-core cache simulator under cfg,
// recording the complete observable execution.
func runWith(cfg exec.Config, prog exec.Program, probes ...exec.Probe) (exec.Result, *clockRecorder) {
	sim := cache.New(cache.DefaultConfig(8))
	rec := &clockRecorder{}
	e := exec.New(sim, cfg, append([]exec.Probe{rec}, probes...)...)
	return e.Run(prog), rec
}

// runUnder executes prog under the named scheduler with the batched
// runner (the production configuration).
func runUnder(sched string, prog exec.Program) (exec.Result, *clockRecorder) {
	return runWith(equivEngineConfig(sched, false), prog)
}

// mustMatch fails the case unless two runs produced the identical
// execution: same Result (total cycles, phase boundaries, per-thread
// start/end/instruction counts), same thread lifetimes, and the same
// access stream in the same global order.
func mustMatch(t *testing.T, i int, refName, gotName string,
	refRes, gotRes exec.Result, refRec, gotRec *clockRecorder) {
	t.Helper()
	if !reflect.DeepEqual(refRes, gotRes) {
		t.Fatalf("case %d: Result diverges\n%s: %+v\n%s: %+v",
			i, refName, refRes, gotName, gotRes)
	}
	if !reflect.DeepEqual(refRec.threads, gotRec.threads) {
		t.Fatalf("case %d: thread lifetimes diverge\n%s: %+v\n%s: %+v",
			i, refName, refRec.threads, gotName, gotRec.threads)
	}
	if len(refRec.accesses) != len(gotRec.accesses) {
		t.Fatalf("case %d: %d accesses under %s, %d under %s",
			i, len(refRec.accesses), refName, len(gotRec.accesses), gotName)
	}
	for j := range refRec.accesses {
		if refRec.accesses[j] != gotRec.accesses[j] {
			t.Fatalf("case %d: access %d diverges\n%s: %+v\n%s: %+v",
				i, j, refName, refRec.accesses[j], gotName, gotRec.accesses[j])
		}
	}
}

// TestSchedulerEquivalence is the engine half of the cross-scheduler
// equivalence suite: every randomized program must produce an identical
// execution under the sorted (default), heap and calendar schedulers.
// ≥200 cases in -short, ≥2000 nightly; cases grow from trivially small,
// so the first failing index is already near-minimal (reproduce from
// equivSeed and the index).
func TestSchedulerEquivalence(t *testing.T) {
	addrs := []mem.Addr{0x1000, 0x1040, 0x2040, 0x8000}
	for i := 0; i < equivCases(); i++ {
		cfg := progen.Config{Seed: equivSeed, Case: i, Addrs: addrs, MaxThreads: 12}
		refRes, refRec := runUnder(exec.SchedSorted, progen.Generate(cfg))
		for _, sched := range []string{exec.SchedHeap, exec.SchedCalendar} {
			res, rec := runUnder(sched, progen.Generate(cfg))
			mustMatch(t, i, exec.SchedSorted, sched, refRes, res, refRec, rec)
		}
	}
}

// equivPMU returns a fresh sampling probe for the paced half of the
// batched/unbatched suite: an AccessPacer makes the batched runner's
// compute run-ahead earn its keep (probe calls must happen at exactly
// the paced accesses), so pacing is where a stop-rule bug would hide.
// The prime period and jitter avoid lockstep with generated loop bodies.
func equivPMU() *pmu.PMU {
	return pmu.New(pmu.Config{Period: 97, Jitter: 13, HandlerCycles: 40, SetupCycles: 300},
		pmu.HandlerFunc(func(mem.Access, uint64) {}))
}

// TestBatchedUnbatchedEquivalence proves the batched timeslice runner
// against its per-op reference loop: every randomized program must
// produce the identical execution batched and unbatched, under all
// three schedulers, both free-running and paced by a sampling PMU.
// The unbatched loop (Config.Unbatched) is the oracle the batched
// hot path is measured against. ≥200 cases in -short, ≥2000 nightly.
func TestBatchedUnbatchedEquivalence(t *testing.T) {
	addrs := []mem.Addr{0x1000, 0x1040, 0x2040, 0x8000}
	for i := 0; i < equivCases(); i++ {
		cfg := progen.Config{Seed: equivSeed + 2, Case: i, Addrs: addrs, MaxThreads: 12}
		refRes, refRec := runUnder(exec.SchedSorted, progen.Generate(cfg))
		pacedRes, pacedRec := runWith(equivEngineConfig(exec.SchedSorted, false),
			progen.Generate(cfg), equivPMU())
		for _, sched := range exec.SchedulerNames() {
			res, rec := runWith(equivEngineConfig(sched, true), progen.Generate(cfg))
			mustMatch(t, i, "batched/"+exec.SchedSorted, "unbatched/"+sched,
				refRes, res, refRec, rec)

			res, rec = runWith(equivEngineConfig(sched, true), progen.Generate(cfg), equivPMU())
			mustMatch(t, i, "paced batched/"+exec.SchedSorted, "paced unbatched/"+sched,
				pacedRes, res, pacedRec, rec)
		}
	}
}

// TestSchedulerEquivalenceSelfCheck guards the suite itself: a run must
// be deterministic against a re-run of the same scheduler, otherwise
// "heap == calendar" could pass vacuously on noise.
func TestSchedulerEquivalenceSelfCheck(t *testing.T) {
	addrs := []mem.Addr{0x1000, 0x2040}
	for i := 0; i < 25; i++ {
		cfg := progen.Config{Seed: equivSeed + 1, Case: i, Addrs: addrs}
		for _, sched := range exec.SchedulerNames() {
			a, ra := runUnder(sched, progen.Generate(cfg))
			b, rb := runUnder(sched, progen.Generate(cfg))
			if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(ra.accesses, rb.accesses) {
				t.Fatalf("case %d: %s scheduler not deterministic across reruns", i, sched)
			}
		}
	}
}
