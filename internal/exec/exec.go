// Package exec provides a deterministic execution engine for simulated
// multithreaded programs following the fork-join model (paper Figure 3).
//
// A program is a sequence of serial and parallel phases. Each thread is an
// ordinary Go function that generates a stream of operations (loads,
// stores, pure compute) through a *T context. The engine interleaves the
// streams of concurrently running threads in virtual-time order: at every
// step the thread with the smallest virtual clock executes its next
// operation against the shared machine (the cache-coherence simulator),
// which returns the operation's latency and advances that thread's clock.
//
// This yields a fully deterministic, reproducible execution whose
// interleavings respect the latency feedback loop that false sharing
// creates (a thread stalled on coherence misses falls behind, exactly as a
// real core would), while thread bodies remain natural imperative code.
//
// Profilers and detectors observe the execution through the Probe
// interface. A probe may charge overhead cycles to the observed thread,
// which is how the reproduction measures (rather than asserts) profiling
// overhead in paper Figure 4.
package exec

import (
	"fmt"

	"repro/internal/mem"
)

// Machine is the memory system under the engine; implemented by the cache
// simulator.
type Machine interface {
	// Access performs one access by a core at virtual time now (cycles),
	// returning its latency in cycles. The engine presents accesses in
	// non-decreasing now order.
	Access(core int, addr mem.Addr, write bool, now uint64) uint32
	// Cores returns the number of cores available for thread placement.
	Cores() int
}

// ThreadInfo describes a simulated thread to probes.
type ThreadInfo struct {
	// ID is the engine-wide thread id; the main thread is 0.
	ID mem.ThreadID
	// Core is the core the thread is bound to (threads are bound, as in
	// the paper's evaluation setup).
	Core int
	// Phase is the index of the phase the thread belongs to.
	Phase int
	// Start and End are the thread's lifetime in cycles. End is zero in
	// ThreadStart callbacks.
	Start, End uint64
	// Instrs is the thread's retired instruction count. It is zero in
	// ThreadStart callbacks and final in ThreadEnd callbacks; trace
	// recording uses it to reconstruct compute that follows the thread's
	// last memory access.
	Instrs uint64
	// Reused marks a pooled thread re-entering a later phase; probes that
	// charge per-thread setup costs (PMU register programming) skip
	// reused threads, since the real cost is paid once per pthread.
	Reused bool
}

// Runtime returns the thread's execution time in cycles, the analog of the
// paper's RDTSC-based RT_t measurement.
func (t ThreadInfo) Runtime() uint64 { return t.End - t.Start }

// PhaseInfo describes a serial or parallel phase to probes.
type PhaseInfo struct {
	// Index is the phase's position in the program.
	Index int
	// Name is the workload-supplied phase label.
	Name string
	// Parallel reports whether the phase runs more than the main thread.
	Parallel bool
	// Start and End are the phase boundaries in cycles. End is zero in
	// PhaseStart callbacks.
	Start, End uint64
}

// Length returns the phase duration in cycles (zero until PhaseEnd).
func (p PhaseInfo) Length() uint64 {
	if p.End < p.Start {
		return 0
	}
	return p.End - p.Start
}

// Probe observes an execution. Implementations must be cheap; they run
// inline with the simulation. ThreadStart and Access return overhead
// cycles the engine charges to the thread's virtual clock, modelling the
// real cost of PMU setup and sample handling.
type Probe interface {
	// ProgramStart fires once before the first phase.
	ProgramStart(name string, cores int)
	// PhaseStart and PhaseEnd bracket each phase.
	PhaseStart(ph PhaseInfo)
	PhaseEnd(ph PhaseInfo)
	// ThreadStart fires when a thread begins; the returned cycles are
	// charged to the thread before it executes (PMU-register setup cost,
	// paper §4.1).
	ThreadStart(th ThreadInfo) uint64
	// ThreadEnd fires when a thread's body returns.
	ThreadEnd(th ThreadInfo)
	// Access fires for every memory access with its resolved latency and
	// the thread's cumulative instruction count; the returned cycles are
	// charged to the thread (sample-handler cost).
	Access(a mem.Access, instrs uint64) uint64
	// ProgramEnd fires once with the final virtual time.
	ProgramEnd(totalCycles uint64)
}

// BaseProbe is a Probe with no-op methods, for embedding.
type BaseProbe struct{}

// ProgramStart implements Probe.
func (BaseProbe) ProgramStart(string, int) {}

// PhaseStart implements Probe.
func (BaseProbe) PhaseStart(PhaseInfo) {}

// PhaseEnd implements Probe.
func (BaseProbe) PhaseEnd(PhaseInfo) {}

// ThreadStart implements Probe.
func (BaseProbe) ThreadStart(ThreadInfo) uint64 { return 0 }

// ThreadEnd implements Probe.
func (BaseProbe) ThreadEnd(ThreadInfo) {}

// Access implements Probe.
func (BaseProbe) Access(mem.Access, uint64) uint64 { return 0 }

// ProgramEnd implements Probe.
func (BaseProbe) ProgramEnd(uint64) {}

// Body is a thread function: it issues operations through t and returns
// when the thread's work is done. Bodies must be oblivious — their access
// sequence may not depend on simulated memory contents — which holds for
// every workload in the evaluation.
type Body func(t *T)

// Phase is one serial or parallel region of a program.
type Phase struct {
	// Name labels the phase in reports.
	Name string
	// Bodies holds one function per thread. A phase with exactly one body
	// and Serial==true runs on the main thread; otherwise each body gets
	// a fresh thread id.
	Bodies []Body
	// Serial marks main-thread-only phases.
	Serial bool
	// Pooled reuses worker thread ids across pooled phases, modelling
	// programs that create a thread pool once and drive it through
	// barriers (PARSEC's streamcluster). Body i of every pooled phase
	// runs as the same thread id.
	Pooled bool
}

// SerialPhase builds a serial phase.
func SerialPhase(name string, body Body) Phase {
	return Phase{Name: name, Bodies: []Body{body}, Serial: true}
}

// ParallelPhase builds a parallel phase with the given thread bodies.
func ParallelPhase(name string, bodies ...Body) Phase {
	return Phase{Name: name, Bodies: bodies}
}

// PooledPhase builds a parallel phase whose workers come from the
// program's persistent thread pool.
func PooledPhase(name string, bodies ...Body) Phase {
	return Phase{Name: name, Bodies: bodies, Pooled: true}
}

// Program is a fork-join program: serial and parallel phases in order.
type Program struct {
	// Name identifies the workload.
	Name string
	// Phases run sequentially.
	Phases []Phase
}

// ThreadRecord summarizes one thread's execution.
type ThreadRecord struct {
	ID          mem.ThreadID
	Core        int
	Phase       int
	Start, End  uint64
	Instrs      uint64
	MemAccesses uint64
	MemCycles   uint64
}

// Runtime returns the thread's execution time in cycles.
func (r ThreadRecord) Runtime() uint64 { return r.End - r.Start }

// PhaseRecord summarizes one phase.
type PhaseRecord struct {
	Index      int
	Name       string
	Parallel   bool
	Start, End uint64
}

// Length returns the phase duration in cycles.
func (r PhaseRecord) Length() uint64 { return r.End - r.Start }

// Result is the outcome of running a program.
type Result struct {
	// TotalCycles is the program's end-to-end virtual runtime, the analog
	// of wall-clock time in the paper's experiments.
	TotalCycles uint64
	// Phases and Threads record per-phase and per-thread timing.
	Phases  []PhaseRecord
	Threads []ThreadRecord
}

// Accesses returns the total simulated memory accesses across all
// threads. The per-thread counts are part of the result payload, so the
// sum survives serialization — sweep coordinators aggregate it from
// worker-produced and cached results alike for throughput accounting.
func (r Result) Accesses() uint64 {
	var n uint64
	for _, th := range r.Threads {
		n += th.MemAccesses
	}
	return n
}

// Config tunes engine costs.
type Config struct {
	// ThreadCreateCycles is the serial cost, on the spawning timeline, of
	// creating one thread (pthread_create analog). Thread i of a phase
	// starts i*ThreadCreateCycles after the phase begins.
	ThreadCreateCycles uint64
	// ThreadJoinCycles is the serial cost of joining each thread at phase
	// end.
	ThreadJoinCycles uint64
	// OpBuffer is the size of each thread's operation buffer; generation
	// runs ahead of simulation by at most one buffer.
	OpBuffer int
	// Sched selects the thread scheduler: SchedSorted (the default, also
	// selected by the empty string), SchedHeap or SchedCalendar. Every
	// scheduler
	// produces the identical deterministic schedule — the (vtime, id)
	// order is total — so Sched trades only engine time; the
	// cross-scheduler equivalence suite enforces byte-identical results.
	Sched string
	// Unbatched selects the per-op reference loop instead of the batched
	// timeslice runner (see runSlice). Both produce byte-identical
	// results — TestBatchedUnbatchedEquivalence enforces it — so the flag
	// trades only engine time; it exists as the oracle for that suite and
	// for bisecting hot-path regressions.
	Unbatched bool
}

// DefaultConfig returns the engine defaults used by the evaluation.
func DefaultConfig() Config {
	return Config{
		ThreadCreateCycles: 2500,
		ThreadJoinCycles:   800,
		OpBuffer:           4096,
	}
}

// Engine runs programs against a machine under a set of probes.
type Engine struct {
	machine Machine
	probes  []Probe
	cfg     Config
	nextTID mem.ThreadID
	pool    []mem.ThreadID
	clock   uint64
	result  Result
	// spare pools retired threads' op buffers (cfg.OpBuffer-sized, the
	// engine's dominant allocation) for reuse by later phases and runs.
	spare [][]op
}

// New creates an engine. Probes observe every execution run on it.
func New(machine Machine, cfg Config, probes ...Probe) *Engine {
	if cfg.OpBuffer <= 0 {
		cfg.OpBuffer = DefaultConfig().OpBuffer
	}
	return &Engine{machine: machine, probes: probes, cfg: cfg}
}

// Run executes the program to completion and returns its timing record.
func (e *Engine) Run(p Program) Result {
	e.nextTID = mem.MainThread
	e.pool = nil
	e.clock = 0
	e.result = Result{}
	for _, pr := range e.probes {
		pr.ProgramStart(p.Name, e.machine.Cores())
	}
	for i, ph := range p.Phases {
		e.runPhase(i, ph)
	}
	e.result.TotalCycles = e.clock
	for _, pr := range e.probes {
		pr.ProgramEnd(e.clock)
	}
	mProgramsRun.Inc()
	return e.result
}

// runPhase executes one phase, advancing the global clock to its end.
func (e *Engine) runPhase(idx int, ph Phase) {
	if len(ph.Bodies) == 0 {
		return
	}
	if ph.Serial && len(ph.Bodies) != 1 {
		panic(fmt.Sprintf("exec: serial phase %q has %d bodies", ph.Name, len(ph.Bodies)))
	}
	info := PhaseInfo{Index: idx, Name: ph.Name, Parallel: !ph.Serial, Start: e.clock}
	for _, pr := range e.probes {
		pr.PhaseStart(info)
	}

	threads := make([]*thread, len(ph.Bodies))
	// Thread and generator-context structs come from two per-phase slabs
	// (and op buffers from the engine's pool), so a phase costs O(1)
	// allocations regardless of thread count.
	slab := make([]thread, len(ph.Bodies))
	tslab := make([]T, len(ph.Bodies))
	// Probe setup costs (PMU register programming) run in the creating
	// thread, so they serialize: every thread's start is pushed back by
	// the setup of the threads created before it. This is why the paper's
	// thread-heavy applications (kmeans, x264) pay the highest profiling
	// overhead (§4.1).
	var setupDelay uint64
	for i, body := range ph.Bodies {
		var tid mem.ThreadID
		var core int
		reused := false
		start := e.clock + setupDelay
		switch {
		case ph.Serial:
			tid = mem.MainThread
			core = 0
		case ph.Pooled && i < len(e.pool):
			tid = e.pool[i]
			core = e.coreFor(i)
			reused = true
		default:
			e.nextTID++
			tid = e.nextTID
			core = e.coreFor(i)
			start += uint64(i) * e.cfg.ThreadCreateCycles
			if ph.Pooled {
				e.pool = append(e.pool, tid)
			}
		}
		var charge uint64
		for _, pr := range e.probes {
			charge += pr.ThreadStart(ThreadInfo{ID: tid, Core: core, Phase: idx, Start: start, Reused: reused})
		}
		th := &slab[i]
		initThread(th, &tslab[i], tid, core, idx, i, start, e.takeBuf(), e.takeBuf(), body)
		th.vtime += charge
		setupDelay += charge
		threads[i] = th
	}

	mPhasesRun.Inc()
	mQueueDepth.Set(int64(len(threads)))
	e.simulate(threads)

	end := e.clock
	for _, th := range threads {
		if th.vtime > end {
			end = th.vtime
		}
	}
	if !ph.Serial {
		end += uint64(len(threads)) * e.cfg.ThreadJoinCycles
	}
	e.clock = end
	info.End = end
	for _, pr := range e.probes {
		pr.PhaseEnd(info)
	}
	e.result.Phases = append(e.result.Phases, PhaseRecord{
		Index: idx, Name: ph.Name, Parallel: !ph.Serial, Start: info.Start, End: end,
	})
}

// coreFor maps a phase-local thread index to a core, round-robin when a
// phase has more threads than cores (violating paper Assumption 1, which
// the detector tolerates by design).
func (e *Engine) coreFor(i int) int {
	c := e.machine.Cores()
	if c == 1 {
		return 0
	}
	// Core 0 is reserved for the main thread where possible, matching the
	// paper's thread-binding setup.
	return 1 + i%(c-1)
}

// simulate interleaves runnable threads in minimum-virtual-time order
// using the configured Scheduler.
func (e *Engine) simulate(threads []*thread) {
	s := newSchedulerFor(e.cfg.Sched, len(threads))
	for _, th := range threads {
		th.startGen()
		if th.refill() {
			s.Push(th)
		} else {
			e.finishThread(th)
		}
	}
	if e.cfg.Unbatched {
		e.simulateRef(s)
		return
	}
	// Dispatch on the concrete scheduler type so the per-slice scheduler
	// calls bind directly (Go's gcshape generics would share one
	// dictionary-based instantiation across pointer types and keep the
	// calls indirect).
	switch s := s.(type) {
	case *sortedQueue:
		e.driveSorted(s)
	case *threadHeap:
		e.driveHeap(s)
	case *calendarQueue:
		e.driveCalendar(s)
	default:
		e.driveSched(s)
	}
}

// simulateRef is the per-op reference loop, kept as the oracle the
// batched-vs-unbatched equivalence suite checks runSlice against.
func (e *Engine) simulateRef(s Scheduler) {
	for s.Len() > 0 {
		// Run the earliest thread in place until it ceases to be the
		// earliest, to amortize scheduler traffic over compute-heavy
		// stretches; see the Scheduler docs for the run-in-place contract
		// each implementation exploits. The schedule is identical either
		// way — the (vtime, id) order is total. The first op always runs
		// (Min holds the true (vtime, id) minimum, id tie-break included);
		// after that the bound is strict: at vtime == limit the thread
		// must re-enter the scheduler so the id tie-break — not whichever
		// thread happens to be running — orders the tied work. This keeps
		// the schedule invariant under compute-op granularity (a single
		// Compute(n) versus any split summing to n), which trace replay
		// relies on: recorded traces preserve only instruction deltas, not
		// the original compute-op boundaries.
		th := s.Min()
		limit := s.NextVtime()
		alive := true
		for {
			op := th.buf[th.pos]
			th.pos++
			e.apply(th, op)
			if th.pos == len(th.buf) {
				if !th.refill() {
					alive = false
					break
				}
			}
			if th.vtime >= limit {
				break
			}
		}
		if alive {
			s.FixMin()
		} else {
			s.PopMin()
			e.finishThread(th)
		}
	}
}

// apply executes one operation on behalf of th.
func (e *Engine) apply(th *thread, op op) {
	switch op.kind {
	case opCompute:
		th.vtime += uint64(op.n)
		th.instrs += uint64(op.n)
	default:
		write := op.kind == opStore
		lat := e.machine.Access(th.core, op.addr, write, th.vtime)
		th.instrs++
		th.memAccesses++
		th.memCycles += uint64(lat)
		acc := mem.Access{
			Addr:    op.addr,
			Thread:  th.id,
			Kind:    mem.Read,
			Size:    op.size,
			Latency: lat,
			Time:    th.vtime,
		}
		if write {
			acc.Kind = mem.Write
		}
		th.vtime += uint64(lat)
		for _, pr := range e.probes {
			th.vtime += pr.Access(acc, th.instrs)
		}
	}
}

// finishThread records a completed thread and notifies probes.
func (e *Engine) finishThread(th *thread) {
	info := ThreadInfo{ID: th.id, Core: th.core, Phase: th.phase, Start: th.start, End: th.vtime, Instrs: th.instrs}
	for _, pr := range e.probes {
		pr.ThreadEnd(info)
	}
	e.result.Threads = append(e.result.Threads, ThreadRecord{
		ID: th.id, Core: th.core, Phase: th.phase,
		Start: th.start, End: th.vtime,
		Instrs: th.instrs, MemAccesses: th.memAccesses, MemCycles: th.memCycles,
	})
	mThreadsRun.Inc()
	mAccesses.Add(th.memAccesses)
	mMemCycles.Add(th.memCycles)
	mInstrs.Add(th.instrs)
	// Reclaim the thread's op buffers. The generator has exited — refill
	// saw out closed, which the goroutine does after its final flush — so
	// its last buffer and anything parked in free are quiescent.
	if b := th.t.buf; b != nil {
		e.spare = append(e.spare, b)
		th.t.buf = nil
	}
drain:
	for {
		select {
		case b := <-th.free:
			e.spare = append(e.spare, b)
		default:
			break drain
		}
	}
}

// takeBuf returns an empty op buffer of the engine's configured size,
// reusing a retired thread's buffer when one is pooled.
func (e *Engine) takeBuf() []op {
	if n := len(e.spare); n > 0 {
		b := e.spare[n-1]
		e.spare = e.spare[:n-1]
		if cap(b) >= e.cfg.OpBuffer {
			return b[:0]
		}
	}
	return make([]op, 0, e.cfg.OpBuffer)
}
