package exec

import "repro/internal/obs"

// Engine observability. Counters are flushed at thread/phase/program
// boundaries — never inside simulate/apply — so the per-access hot path
// carries zero instrumentation cost: each completed thread folds its
// already-tracked totals into the registry with a handful of atomic
// adds. Metric values never feed back into scheduling or results.
var (
	mProgramsRun = obs.GetCounter("cheetah_exec_programs_total",
		"Programs executed to completion by the engine.")
	mPhasesRun = obs.GetCounter("cheetah_exec_phases_total",
		"Program phases executed by the engine.")
	mThreadsRun = obs.GetCounter("cheetah_exec_threads_total",
		"Simulated threads run to completion.")
	mAccesses = obs.GetCounter("cheetah_exec_accesses_total",
		"Simulated memory accesses executed (flushed per completed thread).")
	mMemCycles = obs.GetCounter("cheetah_exec_mem_cycles_total",
		"Simulated cycles spent in memory accesses (flushed per completed thread).")
	mInstrs = obs.GetCounter("cheetah_exec_instructions_total",
		"Simulated instructions retired (flushed per completed thread).")
	mQueueDepth = obs.GetGauge("cheetah_exec_runnable_threads",
		"Scheduler queue depth at the start of the most recent phase.")
)
