package exec

import "repro/internal/mem"

// sortedItem is one scheduler entry: the thread's cached (vtime, id) key
// plus its index in the queue's thread table. Keeping the item
// pointer-free matters: FixMin shifts items on every timeslice, and a
// pointer field would make each shift a write-barriered store and the
// whole ring a GC scan target.
type sortedItem struct {
	vt  uint64
	id  mem.ThreadID
	idx int32
}

func (a sortedItem) less(b sortedItem) bool {
	return a.vt < b.vt || (a.vt == b.vt && a.id < b.id)
}

// sortedQueue is the default Scheduler: every runnable thread in a ring
// buffer sorted descending by (vtime, id), minimum at the logical tail.
// The layout is chosen for the engine's actual call pattern — Min,
// NextKey and PopMin are plain loads off the tail, and FixMin (the
// per-slice reschedule) re-places only the advanced thread. Two regimes
// dominate:
//
//   - lockstep: every thread clock tied, the minimum leapfrogging the
//     whole queue each slice. The advanced item belongs at the front,
//     which the ring serves in O(1): step the head back one slot and
//     write (the vacated tail slot falls out of the window).
//   - near-lockstep: clocks clustered within one memory latency, the
//     advanced item landing a slot or two from the tail — a one- or
//     two-step insertion walk, versus the heap's fixed ~2·log n.
//
// The trade-off is an O(n) worst-case walk when one thread lands
// mid-queue; for heavily oversubscribed phases SchedHeap remains
// available.
type sortedQueue struct {
	// buf is the ring storage; its length is a power of two. The live
	// window is the size items starting at head, descending by (vt, id):
	// logical index 0 (the front) is the largest key, size-1 the minimum.
	buf  []sortedItem
	head int
	size int
	// ths maps item idx to the thread. Entries are append-only for the
	// queue's (one phase's) lifetime, so indexes in ring items stay valid
	// after any number of pops.
	ths []*thread
}

func newSortedQueue(capacity int) *sortedQueue {
	n := 8
	for n < capacity {
		n <<= 1
	}
	return &sortedQueue{
		buf: make([]sortedItem, n),
		ths: make([]*thread, 0, capacity),
	}
}

// idx maps a logical position (0 = front) to a ring slot.
func (q *sortedQueue) idx(i int) int { return (q.head + i) & (len(q.buf) - 1) }

func (q *sortedQueue) Len() int     { return q.size }
func (q *sortedQueue) Min() *thread { return q.ths[q.buf[q.idx(q.size-1)].idx] }

func (q *sortedQueue) NextVtime() uint64 {
	if q.size < 2 {
		return ^uint64(0)
	}
	return q.buf[q.idx(q.size-2)].vt
}

func (q *sortedQueue) NextKey() (uint64, mem.ThreadID) {
	if q.size < 2 {
		return ^uint64(0), maxThreadID
	}
	it := &q.buf[q.idx(q.size-2)]
	return it.vt, it.id
}

func (q *sortedQueue) Push(th *thread) {
	if q.size == len(q.buf) {
		grown := make([]sortedItem, 2*len(q.buf))
		for i := 0; i < q.size; i++ {
			grown[i] = q.buf[q.idx(i)]
		}
		q.buf, q.head = grown, 0
	}
	q.ths = append(q.ths, th)
	q.size++
	q.place(sortedItem{vt: th.vtime, id: th.id, idx: int32(len(q.ths) - 1)})
}

// FixMin re-places the tail item after its thread's clock advanced in
// place. The descending order means the item only ever moves toward the
// front.
func (q *sortedQueue) FixMin() {
	it := q.buf[q.idx(q.size-1)]
	it.vt = q.ths[it.idx].vtime
	if q.size > 1 && q.buf[q.head].less(it) {
		// New front: claim the slot before head; the vacated tail slot
		// falls out of the window, so the size is unchanged.
		q.head = (q.head - 1) & (len(q.buf) - 1)
		q.buf[q.head] = it
		return
	}
	q.place(it)
}

// place slides it from the tail toward the front until descending order
// holds, shifting smaller-keyed items back by one. The final (logical)
// tail slot is overwritten — callers either just vacated it (FixMin) or
// grew size to open it (Push). The walk steps raw ring slots with a
// single mask per step instead of re-deriving head-relative indexes.
func (q *sortedQueue) place(it sortedItem) {
	mask := len(q.buf) - 1
	p := (q.head + q.size - 1) & mask
	for i := q.size - 1; i > 0; i-- {
		prev := (p - 1) & mask
		if !q.buf[prev].less(it) {
			break
		}
		q.buf[p] = q.buf[prev]
		p = prev
	}
	q.buf[p] = it
}

func (q *sortedQueue) PopMin() *thread {
	th := q.ths[q.buf[q.idx(q.size-1)].idx]
	q.size--
	return th
}
