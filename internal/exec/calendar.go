package exec

import (
	"math/bits"
	"sort"

	"repro/internal/mem"
)

// Calendar-queue geometry. 64 buckets keeps the occupancy map in a
// single machine word, so "first nonempty bucket" is one TrailingZeros.
// Threads executing concurrently cluster within one max-latency span of
// each other (an L1 hit to a cross-socket coherence miss, a few hundred
// cycles), so the 8-cycle width spreads that cluster over several
// buckets — the active bucket stays small — while the 512-cycle
// horizon still catches almost every advance-and-reinsert. Threads
// sleeping past the horizon (large pure-compute blocks, staggered phase
// starts) overflow to a sorted spill list and are re-seeded into the
// calendar when the buckets drain down to them.
const (
	calBuckets    = 64
	calWidthShift = 3
	calWidth      = 1 << calWidthShift
	calHorizon    = calBuckets * calWidth
	calWidthMask  = calWidth - 1
)

// calKey is the scheduling key: (vtime, id), totally ordered.
type calKey struct {
	vt uint64
	id mem.ThreadID
}

func (a calKey) less(b calKey) bool {
	if a.vt != b.vt {
		return a.vt < b.vt
	}
	return a.id < b.id
}

// calItem is one scheduled thread with its key snapshot, stored inline
// so bucket operations do not chase thread pointers.
type calItem struct {
	key calKey
	th  *thread
}

// calendarQueue implements Scheduler as a calendar/ladder queue with
// O(1) extraction and O(1)-ish common-case reinsertion.
//
// The earliest thread is held out in min — it is the thread the engine
// runs in place, so the FixMin fast path (the running thread is still
// earliest) is one key comparison and touches no bucket. The remaining
// threads live in calBuckets buckets of calWidth virtual-time each,
// starting at base; anything past base+calHorizon waits in spill, kept
// sorted so re-seeding peels a prefix. Bucket windows are disjoint, so
// the global rest-minimum lives in the first occupied bucket.
//
// Ladder discipline: the first occupied bucket — the active bucket —
// is sorted once on activation (insertion sort: small, and usually
// mostly ordered) and then consumed from the front, so extraction is
// O(1) and the rest-minimum stays cached across extractions (the next
// minimum is simply the next sorted item). Insertions into the active
// bucket binary-search its live tail; insertions into later buckets are
// plain appends, unsorted until their own activation — appends plus one
// deferred sort beat per-insert sorted placement on both instruction
// count and locality.
type calendarQueue struct {
	min    *thread
	minKey calKey

	base     uint64 // start of bucket 0's window, multiple of calWidth
	occupied uint64 // bit i set <=> buckets[i] has live items
	buckets  [calBuckets][]calItem
	spill    []calItem // sorted ascending by key; every vt >= its insert-time horizon
	rest     int       // items in buckets+spill (excludes the held-out min)

	// The active (sorted, front-consumed) bucket: active is its index or
	// -1; head is how many of its items are already consumed.
	active int
	head   int

	// cachedKey caches the rest-minimum key while cachedOK (it is always
	// the active bucket's head item, or the spill head when everything
	// else is empty).
	cachedOK  bool
	cachedKey calKey
}

func newCalendarQueue(capacity int) *calendarQueue {
	q := &calendarQueue{active: -1}
	if capacity > calBuckets {
		q.spill = make([]calItem, 0, capacity)
	}
	return q
}

func (q *calendarQueue) Len() int {
	if q.min == nil {
		return 0
	}
	return q.rest + 1
}

func (q *calendarQueue) Min() *thread { return q.min }

func (q *calendarQueue) Push(th *thread) {
	k := calKey{vt: th.vtime, id: th.id}
	if q.min == nil {
		q.min, q.minKey = th, k
		return
	}
	if k.less(q.minKey) {
		q.insertRest(calItem{key: q.minKey, th: q.min})
		q.min, q.minKey = th, k
		return
	}
	q.insertRest(calItem{key: k, th: th})
}

func (q *calendarQueue) NextVtime() uint64 {
	if q.rest == 0 {
		return ^uint64(0)
	}
	q.findRestMin()
	return q.cachedKey.vt
}

func (q *calendarQueue) NextKey() (uint64, mem.ThreadID) {
	if q.rest == 0 {
		return ^uint64(0), maxThreadID
	}
	q.findRestMin()
	return q.cachedKey.vt, q.cachedKey.id
}

func (q *calendarQueue) FixMin() {
	q.minKey.vt = q.min.vtime
	if q.rest == 0 {
		return
	}
	q.findRestMin()
	if q.minKey.less(q.cachedKey) {
		return // fast path: the running thread is still earliest
	}
	old, oldKey := q.min, q.minKey
	q.min, q.minKey = q.removeRestMin()
	q.insertRest(calItem{key: oldKey, th: old})
}

func (q *calendarQueue) PopMin() *thread {
	top := q.min
	if q.rest == 0 {
		q.min = nil
		return top
	}
	q.findRestMin()
	q.min, q.minKey = q.removeRestMin()
	return top
}

// insertRest places it into the buckets or the spill list, maintaining
// the rest-set invariants: bucket items lie in [base, base+calHorizon),
// spill items were at or past the horizon when inserted, and base only
// advances while the buckets are empty — so spill keys always follow
// bucket keys.
func (q *calendarQueue) insertRest(it calItem) {
	q.rest++
	if q.rest == 1 {
		// First resident: anchor the calendar at its window.
		q.base = it.key.vt &^ calWidthMask
	}
	if it.key.vt < q.base {
		// A key before the calendar's origin (only possible through
		// out-of-order pushes at phase start, before any extraction).
		// Rebuild around the new minimum; rare and small.
		q.rebase(it)
		return
	}
	idx := (it.key.vt - q.base) >> calWidthShift
	if idx >= calBuckets {
		q.insertSpill(it)
		return
	}
	b := int(idx)
	if b == q.active {
		// Sorted insert into the active bucket's live tail: binary
		// search plus a short memmove (the bucket holds a handful of
		// items).
		items := q.buckets[b]
		lo, hi := q.head, len(items)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if items[mid].key.less(it.key) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		items = append(items, calItem{})
		copy(items[lo+1:], items[lo:])
		items[lo] = it
		q.buckets[b] = items
		if q.cachedOK && it.key.less(q.cachedKey) {
			q.cachedKey = it.key // new head of the active bucket
		}
		return
	}
	q.buckets[b] = append(q.buckets[b], it)
	q.occupied |= 1 << uint(b)
	if q.cachedOK && it.key.less(q.cachedKey) {
		q.cachedOK = false // landed ahead of the active bucket
	}
}

// insertSpill adds a far-future item, keeping spill sorted ascending.
func (q *calendarQueue) insertSpill(it calItem) {
	i := sort.Search(len(q.spill), func(i int) bool { return it.key.less(q.spill[i].key) })
	q.spill = append(q.spill, calItem{})
	copy(q.spill[i+1:], q.spill[i:])
	q.spill[i] = it
}

// liveItems returns b's not-yet-consumed items.
func (q *calendarQueue) liveItems(b int) []calItem {
	if b == q.active {
		return q.buckets[b][q.head:]
	}
	return q.buckets[b]
}

// deactivate compacts the active bucket's consumed prefix away, so the
// bucket can go back to plain (unsorted, append-only) life. Stale items
// past the live region are not zeroed: the threads they point to are
// alive for the whole phase anyway, and the scheduler is discarded with
// the phase.
func (q *calendarQueue) deactivate() {
	if q.active < 0 {
		return
	}
	if q.head > 0 {
		items := q.buckets[q.active]
		n := copy(items, items[q.head:])
		q.buckets[q.active] = items[:n]
	}
	q.active, q.head = -1, 0
}

// activate sorts bucket b (insertion sort: small, and often already
// mostly ordered) and makes it the front-consumed active bucket.
// Callers ensure b != q.active.
func (q *calendarQueue) activate(b int) {
	q.deactivate()
	items := q.buckets[b]
	for i := 1; i < len(items); i++ {
		it := items[i]
		j := i - 1
		for j >= 0 && it.key.less(items[j].key) {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = it
	}
	q.active, q.head = b, 0
}

// rebase rebuilds the calendar around a key earlier than base: gather
// every resident plus extra, re-anchor at the new minimum, repartition.
func (q *calendarQueue) rebase(extra calItem) {
	all := make([]calItem, 0, q.rest)
	all = append(all, extra)
	for b := 0; b < calBuckets; b++ {
		all = append(all, q.liveItems(b)...)
	}
	all = append(all, q.spill...)
	for b := 0; b < calBuckets; b++ {
		q.buckets[b] = q.buckets[b][:0]
	}
	q.spill = q.spill[:0]
	q.occupied = 0
	q.active, q.head = -1, 0
	q.cachedOK = false
	sort.Slice(all, func(i, j int) bool { return all[i].key.less(all[j].key) })
	q.base = all[0].key.vt &^ calWidthMask
	for _, it := range all {
		idx := (it.key.vt - q.base) >> calWidthShift
		if idx >= calBuckets {
			q.spill = append(q.spill, it) // all is sorted, so spill stays sorted
			continue
		}
		b := int(idx)
		q.buckets[b] = append(q.buckets[b], it)
		q.occupied |= 1 << uint(b)
	}
}

// reseed advances the calendar to the spill list once the buckets are
// empty: re-anchor at the spill head and absorb the prefix that now
// falls inside the horizon.
func (q *calendarQueue) reseed() {
	q.base = q.spill[0].key.vt &^ calWidthMask
	n := sort.Search(len(q.spill), func(i int) bool {
		return q.spill[i].key.vt-q.base >= calHorizon
	})
	for _, it := range q.spill[:n] {
		b := int((it.key.vt - q.base) >> calWidthShift)
		q.buckets[b] = append(q.buckets[b], it)
		q.occupied |= 1 << uint(b)
	}
	q.spill = q.spill[:copy(q.spill, q.spill[n:])]
}

// findRestMin ensures the first occupied bucket is active and caches
// its head key — the rest-minimum. Requires rest > 0.
func (q *calendarQueue) findRestMin() {
	if q.cachedOK {
		return
	}
	if q.occupied == 0 {
		q.reseed()
	}
	b := bits.TrailingZeros64(q.occupied)
	if b != q.active {
		q.activate(b)
	}
	q.cachedOK = true
	q.cachedKey = q.buckets[b][q.head].key
}

// removeRestMin pops the head of the active bucket. Requires a valid
// cache (call findRestMin first). The rest-minimum cache survives the
// common case: the next minimum is simply the next sorted item of the
// same bucket (every later bucket and the spill hold larger keys).
func (q *calendarQueue) removeRestMin() (*thread, calKey) {
	b := q.active
	items := q.buckets[b]
	it := items[q.head]
	q.head++
	q.rest--
	if q.head == len(items) {
		q.buckets[b] = items[:0]
		q.occupied &^= 1 << uint(b)
		q.active, q.head = -1, 0
		q.cachedOK = false
	} else {
		q.cachedKey = items[q.head].key
	}
	return it.th, it.key
}
