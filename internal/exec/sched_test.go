package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mem"
)

// newSchedulers builds one instance of every Scheduler implementation,
// keyed by name, so ordering tests run identically against each.
func newSchedulers(capacity int) map[string]Scheduler {
	m := make(map[string]Scheduler)
	for _, name := range SchedulerNames() {
		m[name] = newSchedulerFor(name, capacity)
	}
	return m
}

func TestSchedulerNames(t *testing.T) {
	for _, name := range SchedulerNames() {
		if !ValidScheduler(name) {
			t.Errorf("ValidScheduler(%q) = false for a listed scheduler", name)
		}
		if s := newSchedulerFor(name, 4); s == nil || s.Len() != 0 {
			t.Errorf("newSchedulerFor(%q) = %v", name, s)
		}
	}
	if !ValidScheduler("") {
		t.Error("ValidScheduler(\"\") = false; empty must mean the default")
	}
	if ValidScheduler("fifo") {
		t.Error("ValidScheduler(\"fifo\") = true")
	}
}

// TestSchedulerOrdering: every implementation pops in (vtime, id) order,
// ids breaking ties.
func TestSchedulerOrdering(t *testing.T) {
	vt := []uint64{50, 10, 30, 10, 90, 20, 10}
	for name, s := range newSchedulers(len(vt)) {
		t.Run(name, func(t *testing.T) {
			for i, v := range vt {
				s.Push(&thread{id: mem.ThreadID(i), vtime: v})
			}
			var got []uint64
			var ids []mem.ThreadID
			for s.Len() > 0 {
				th := s.PopMin()
				got = append(got, th.vtime)
				ids = append(ids, th.id)
			}
			want := []uint64{10, 10, 10, 20, 30, 50, 90}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pop order %v, want %v", got, want)
			}
			// The three vtime-10 entries are threads 1, 3, 6 — id order.
			if ids[0] != 1 || ids[1] != 3 || ids[2] != 6 {
				t.Errorf("tie-break order = %v, want ids 1,3,6 first", ids[:3])
			}
		})
	}
}

// TestSchedulerFarFuture drives keys far past the calendar horizon so
// the spill list and its re-seeding are exercised: pops must still come
// out in ascending vtime order under every implementation.
func TestSchedulerFarFuture(t *testing.T) {
	vts := []uint64{calHorizon, 1, 10 * calHorizon, calHorizon - 1, 1 << 40,
		3 * calHorizon, 0, 10*calHorizon + calWidth, 1<<40 + 1, calHorizon + 1}
	for name, s := range newSchedulers(len(vts)) {
		t.Run(name, func(t *testing.T) {
			for i, v := range vts {
				s.Push(&thread{id: mem.ThreadID(i), vtime: v})
			}
			var got []uint64
			for s.Len() > 0 {
				min := s.Min()
				popped := s.PopMin()
				if min != popped {
					t.Fatalf("Min returned thread %d, PopMin thread %d", min.id, popped.id)
				}
				got = append(got, popped.vtime)
			}
			want := []uint64{0, 1, calHorizon - 1, calHorizon, calHorizon + 1,
				3 * calHorizon, 10 * calHorizon, 10*calHorizon + calWidth, 1 << 40, 1<<40 + 1}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pop order %v, want %v", got, want)
			}
		})
	}
}

// schedOp is one scripted operation for the model-check test.
type schedOp struct {
	// push a thread with vtime vt (id assigned sequentially), or, when
	// push is false, run the engine's Min/NextVtime/advance/FixMin-or-
	// PopMin cycle with the given advance delta (pop when pop is set).
	push bool
	vt   uint64
	adv  uint64
	pop  bool
}

// refSched is the naive reference Scheduler: a slice scanned linearly.
type refSched struct{ ths []*thread }

func (r *refSched) Push(th *thread) { r.ths = append(r.ths, th) }
func (r *refSched) Len() int        { return len(r.ths) }
func (r *refSched) minIndex() int {
	best := 0
	for i := 1; i < len(r.ths); i++ {
		a, b := r.ths[i], r.ths[best]
		if a.vtime < b.vtime || (a.vtime == b.vtime && a.id < b.id) {
			best = i
		}
	}
	return best
}
func (r *refSched) Min() *thread { return r.ths[r.minIndex()] }
func (r *refSched) NextVtime() uint64 {
	mi := r.minIndex()
	next := ^uint64(0)
	for i, th := range r.ths {
		if i != mi && th.vtime < next {
			next = th.vtime
		}
	}
	return next
}
func (r *refSched) NextKey() (uint64, mem.ThreadID) {
	mi := r.minIndex()
	vt, id := ^uint64(0), maxThreadID
	for i, th := range r.ths {
		if i != mi && (th.vtime < vt || (th.vtime == vt && th.id < id)) {
			vt, id = th.vtime, th.id
		}
	}
	return vt, id
}
func (r *refSched) FixMin() {}
func (r *refSched) PopMin() *thread {
	mi := r.minIndex()
	th := r.ths[mi]
	r.ths = append(r.ths[:mi], r.ths[mi+1:]...)
	return th
}

// TestSchedulerMatchesReference model-checks every implementation
// against the naive reference over randomized scripts of pushes,
// in-place advances (FixMin) and pops, with vtime deltas chosen to hit
// the calendar queue's in-window, spill, re-seed and rebase paths.
func TestSchedulerMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			script := make([]schedOp, 0, 600)
			alive := 0
			for len(script) < cap(script) {
				r := rng.Intn(10)
				switch {
				case alive == 0 || r < 3:
					// Deltas span sub-bucket to way-past-horizon; small
					// absolute vtimes early make out-of-order phase-start
					// pushes (the rebase path) likely.
					script = append(script, schedOp{push: true,
						vt: uint64(rng.Intn(4 * calHorizon))})
					alive++
				case r < 8:
					script = append(script, schedOp{
						adv: 1 + uint64(rng.Intn(2*calHorizon))})
				default:
					script = append(script, schedOp{pop: true})
					alive--
				}
			}

			type trace struct {
				mins, nexts []uint64
				nextIDs     []mem.ThreadID
				pops        []mem.ThreadID
			}
			runScript := func(s Scheduler) trace {
				var tr trace
				nextID := mem.ThreadID(1)
				for _, op := range script {
					switch {
					case op.push:
						s.Push(&thread{id: nextID, vtime: op.vt})
						nextID++
					case op.pop:
						tr.pops = append(tr.pops, s.PopMin().id)
					default:
						th := s.Min()
						tr.mins = append(tr.mins, th.vtime)
						nvt, nid := s.NextKey()
						if nvt != s.NextVtime() {
							t.Fatalf("NextKey vt %d != NextVtime %d", nvt, s.NextVtime())
						}
						tr.nexts = append(tr.nexts, nvt)
						tr.nextIDs = append(tr.nextIDs, nid)
						th.vtime += op.adv
						s.FixMin()
					}
				}
				for s.Len() > 0 {
					tr.pops = append(tr.pops, s.PopMin().id)
				}
				return tr
			}

			want := runScript(&refSched{})
			for _, name := range SchedulerNames() {
				got := runScript(newSchedulerFor(name, 8))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s diverges from reference:\n got %+v\nwant %+v", name, got, want)
				}
			}
		})
	}
}

// runBoth executes prog under every scheduler on the given machine
// builder and returns the recorded access stream and result per
// scheduler name.
func runBoth(t *testing.T, cfg Config, mkMachine func() Machine, prog Program) map[string]struct {
	res Result
	acc []mem.Access
} {
	t.Helper()
	out := make(map[string]struct {
		res Result
		acc []mem.Access
	})
	for _, name := range SchedulerNames() {
		c := cfg
		c.Sched = name
		rec := &recorder{}
		e := New(mkMachine(), c, rec)
		res := e.Run(prog)
		out[name] = struct {
			res Result
			acc []mem.Access
		}{res, rec.accesses}
	}
	return out
}

// assertSchedulersAgree fails unless every scheduler produced the
// identical result and access stream.
func assertSchedulersAgree(t *testing.T, runs map[string]struct {
	res Result
	acc []mem.Access
}) {
	t.Helper()
	base := runs[SchedHeap]
	for name, r := range runs {
		if !reflect.DeepEqual(r.res, base.res) {
			t.Errorf("%s result diverges from heap:\n%+v\nvs\n%+v", name, r.res, base.res)
		}
		if !reflect.DeepEqual(r.acc, base.acc) {
			t.Errorf("%s access stream diverges from heap (%d vs %d accesses)",
				name, len(r.acc), len(base.acc))
		}
	}
}

// TestSingleThreadPhases: phases that never have a second runnable
// thread — a serial phase and a one-body parallel phase — must behave
// identically under every scheduler (the NextVtime == max sentinel
// path).
func TestSingleThreadPhases(t *testing.T) {
	prog := Program{
		Name: "single",
		Phases: []Phase{
			SerialPhase("s", func(tt *T) {
				tt.Compute(40)
				tt.Store(0x100)
				tt.Load(0x140)
			}),
			ParallelPhase("p1", func(tt *T) {
				tt.Store(0x180)
				tt.Compute(9)
			}),
		},
	}
	runs := runBoth(t, Config{OpBuffer: 4, ThreadCreateCycles: 100, ThreadJoinCycles: 10},
		func() Machine { return &fixedMachine{cores: 4, latency: 7} }, prog)
	assertSchedulersAgree(t, runs)
	// Serial: 40 compute + 2 accesses * 7. Parallel: thread 0 of a phase
	// pays no creation stagger, so 7 + 9, plus one join.
	want := uint64(40 + 7 + 7 + 7 + 9 + 10)
	if got := runs[SchedHeap].res.TotalCycles; got != want {
		t.Errorf("TotalCycles = %d, want %d", got, want)
	}
}

// TestZeroLatencyOps: a machine that answers every access in zero
// cycles keeps thread clocks frozen, so a running thread only yields
// when its body ends. Both schedulers must agree on that degenerate
// schedule (each thread's whole stream runs back-to-back, in id order).
func TestZeroLatencyOps(t *testing.T) {
	body := func(base mem.Addr) Body {
		return func(tt *T) {
			for i := 0; i < 10; i++ {
				tt.Store(base + mem.Addr(4*i))
			}
		}
	}
	prog := Program{
		Name:   "zerolat",
		Phases: []Phase{ParallelPhase("p", body(0x1000), body(0x2000), body(0x3000))},
	}
	runs := runBoth(t, Config{OpBuffer: 4},
		func() Machine { return &fixedMachine{cores: 4, latency: 0} }, prog)
	assertSchedulersAgree(t, runs)
	acc := runs[SchedHeap].acc
	if len(acc) != 30 {
		t.Fatalf("got %d accesses, want 30", len(acc))
	}
	for i, a := range acc {
		if want := mem.ThreadID(1 + i/10); a.Thread != want {
			t.Fatalf("access %d by thread %d, want %d (zero-latency threads must run whole)",
				i, a.Thread, want)
		}
		if a.Latency != 0 || a.Time != 0 {
			t.Fatalf("access %d = %+v, want zero latency at time 0", i, a)
		}
	}
}

// TestVtimeTiesAcrossThreads: four threads with identical bodies and no
// creation stagger stay tied on vtime for the whole run; the id
// tie-break must serialize them identically under every scheduler.
func TestVtimeTiesAcrossThreads(t *testing.T) {
	body := func(tt *T) {
		for i := 0; i < 8; i++ {
			tt.Store(0x40)
			tt.Compute(3)
		}
	}
	prog := Program{
		Name:   "ties",
		Phases: []Phase{ParallelPhase("p", body, body, body, body)},
	}
	runs := runBoth(t, Config{OpBuffer: 4},
		func() Machine { return &fixedMachine{cores: 8, latency: 5} }, prog)
	assertSchedulersAgree(t, runs)
	acc := runs[SchedHeap].acc
	if len(acc) != 32 {
		t.Fatalf("got %d accesses, want 32", len(acc))
	}
	// All four threads issue access round k at the same vtime (the group
	// stays tied for the whole run), so each consecutive group of four
	// accesses must contain every thread exactly once at the round's
	// vtime. The order within a round is the engine's deterministic
	// tie-resolution — pinned by assertSchedulersAgree, not re-derived
	// here.
	for round := 0; round < len(acc)/4; round++ {
		seen := map[mem.ThreadID]bool{}
		for i := round * 4; i < (round+1)*4; i++ {
			a := acc[i]
			if a.Thread < 1 || a.Thread > 4 || seen[a.Thread] {
				t.Fatalf("round %d: access %d by unexpected/duplicate thread %d", round, i, a.Thread)
			}
			seen[a.Thread] = true
			if wantT := uint64(round * 8); a.Time != wantT {
				t.Fatalf("round %d: access %d at vtime %d, want %d", round, i, a.Time, wantT)
			}
		}
	}
}

// TestPooledPhasesAcrossSchedulers: pooled phases re-enter threads with
// clocks mid-flight; both schedulers must agree across phase
// boundaries.
func TestPooledPhasesAcrossSchedulers(t *testing.T) {
	mk := func(step int) Body {
		return func(tt *T) {
			for i := 0; i < 6; i++ {
				tt.Store(mem.Addr(0x500 + 4*step))
				tt.Compute(step)
			}
		}
	}
	prog := Program{
		Name: "pooled",
		Phases: []Phase{
			PooledPhase("p1", mk(3), mk(5), mk(7)),
			SerialPhase("s", func(tt *T) { tt.Compute(11) }),
			PooledPhase("p2", mk(2), mk(4), mk(6)),
		},
	}
	runs := runBoth(t, Config{ThreadCreateCycles: 50, ThreadJoinCycles: 20, OpBuffer: 4},
		func() Machine { return &fixedMachine{cores: 4, latency: 9} }, prog)
	assertSchedulersAgree(t, runs)
}
