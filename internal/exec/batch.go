package exec

import "repro/internal/mem"

// AccessPacer is an optional Probe extension for probes whose Access
// method is a guaranteed no-op (returns zero charge, changes no state)
// below a per-thread threshold — the PMU, whose sampling counter makes
// every access between tag points invisible to it. When every attached
// probe is a pacer, the batched engine loop skips probe dispatch (and
// the mem.Access materialization feeding it) entirely until the earliest
// threshold, then re-queries after each real call.
//
// The engine caches thresholds per thread across timeslices, so they
// must be stable from the thread's own point of view: a returned
// threshold may only tighten as a result of that thread's own dispatched
// Access calls or its ThreadStart — never because of activity on other
// threads. The PMU's per-thread sampling counters satisfy this by
// construction.
type AccessPacer interface {
	// AccessPace returns thread id's current thresholds: the probe
	// guarantees Access(a, instrs) is a no-op whenever
	// instrs < instrPace and a.Time+a.Latency < cyclePace. A probe whose
	// Access never does anything returns (^uint64(0), ^uint64(0)).
	AccessPace(id mem.ThreadID) (instrPace, cyclePace uint64)
}

// accessPace folds the attached probes' pace thresholds for thread id.
// ok is false when any probe is not an AccessPacer — then every access
// must be dispatched.
func (e *Engine) accessPace(id mem.ThreadID) (instrPace, cyclePace uint64, ok bool) {
	instrPace, cyclePace = ^uint64(0), ^uint64(0)
	for _, pr := range e.probes {
		p, isPacer := pr.(AccessPacer)
		if !isPacer {
			return 0, 0, false
		}
		ip, cp := p.AccessPace(id)
		if ip < instrPace {
			instrPace = ip
		}
		if cp < cyclePace {
			cyclePace = cp
		}
	}
	return instrPace, cyclePace, true
}

// The batched drivers: one per concrete scheduler type, with identical
// bodies, so Min/NextKey/FixMin/PopMin bind directly instead of through
// the interface. Each scheduler round runs the minimum thread through a
// whole timeslice (runSlice) rather than a single op.

func (e *Engine) driveSorted(q *sortedQueue) {
	for q.Len() > 0 {
		th := q.Min()
		vt, id := q.NextKey()
		if e.runSlice(th, vt, id) {
			q.FixMin()
		} else {
			q.PopMin()
			e.finishThread(th)
		}
	}
}

func (e *Engine) driveHeap(h *threadHeap) {
	for h.Len() > 0 {
		th := h.Min()
		vt, id := h.NextKey()
		if e.runSlice(th, vt, id) {
			h.FixMin()
		} else {
			h.PopMin()
			e.finishThread(th)
		}
	}
}

func (e *Engine) driveCalendar(q *calendarQueue) {
	for q.Len() > 0 {
		th := q.Min()
		vt, id := q.NextKey()
		if e.runSlice(th, vt, id) {
			q.FixMin()
		} else {
			q.PopMin()
			e.finishThread(th)
		}
	}
}

// driveSched is the interface-dispatch fallback for scheduler types the
// engine does not know concretely.
func (e *Engine) driveSched(s Scheduler) {
	for s.Len() > 0 {
		th := s.Min()
		vt, id := s.NextKey()
		if e.runSlice(th, vt, id) {
			s.FixMin()
		} else {
			s.PopMin()
			e.finishThread(th)
		}
	}
}

// runSlice runs th in place while its (vtime, id) key remains the
// scheduler minimum: (limVt, limID) is the second-earliest key, and th
// keeps executing until its vtime passes limVt — or reaches it holding
// the larger id. This produces exactly the per-op reference schedule
// (there the running thread re-wins every tie-break round and runs one
// op at a time); batching the stretch amortizes scheduler traffic and
// keeps thread state in registers.
//
// Compute ops additionally run ahead *past* the bound: they touch no
// machine or probe state — only this thread's own clock and instruction
// counter — so consuming them early commutes with every other thread's
// ops and leaves the global access/probe event sequence untouched; the
// thread simply re-enters the scheduler with the further-advanced key it
// would have reached anyway. Two stops keep the observable sequence
// exact: an access op never dispatches at or past the bound, and the
// run-ahead never consumes a buffer's final op — refill, and therefore
// end-of-body detection (finishThread's ThreadEnd/Result ordering), must
// happen only at reference-exact points. Byte-identical results are
// enforced by TestBatchedUnbatchedEquivalence. Returns false when the
// thread's body finished (the caller pops and finishes it).
func (e *Engine) runSlice(th *thread, limVt uint64, limID mem.ThreadID) bool {
	// Collapse the two-branch exit test (vtime > limVt, or vtime == limVt
	// and the id tie-break lost) into a single comparison against bound.
	// When this thread wins id ties it may run through vtime == limVt, so
	// the bound is limVt+1 — except at the ^uint64(0) sentinel, where the
	// +1 would wrap; stopping at the sentinel instead merely costs one
	// extra scheduler round with an identical schedule.
	bound := limVt
	if th.id < limID && limVt != ^uint64(0) {
		bound = limVt + 1
	}
	vtime := th.vtime
	instrs := th.instrs
	memAcc, memCyc := th.memAccesses, th.memCycles
	buf, pos := th.buf, th.pos
	m := e.machine
	core := th.core

	if len(e.probes) == 0 {
		// Probe-free (native) run: no mem.Access materialization, no
		// dispatch — just the machine and the thread's counters.
		for {
			o := buf[pos]
			if o.kind == opCompute {
				if vtime >= bound && pos == len(buf)-1 {
					break
				}
				pos++
				vtime += uint64(o.n)
				instrs += uint64(o.n)
			} else {
				if vtime >= bound {
					break
				}
				pos++
				lat := uint64(m.Access(core, o.addr, o.kind == opStore, vtime))
				instrs++
				memAcc++
				memCyc += lat
				vtime += lat
			}
			if pos == len(buf) {
				th.vtime, th.instrs = vtime, instrs
				th.memAccesses, th.memCycles = memAcc, memCyc
				if !th.refill() {
					return false
				}
				buf, pos = th.buf, 0
			}
		}
		th.vtime, th.instrs = vtime, instrs
		th.memAccesses, th.memCycles = memAcc, memCyc
		th.pos = pos
		return true
	}

	id := th.id
	probes := e.probes
	if th.paceState == 0 {
		ip, cp, ok := e.accessPace(id)
		th.paceInstr, th.paceCycle = ip, cp
		if ok {
			th.paceState = 1
		} else {
			th.paceState = 2
		}
	}
	paced := th.paceState == 1
	instrPace, cyclePace := th.paceInstr, th.paceCycle
	for {
		o := buf[pos]
		if o.kind == opCompute {
			if vtime >= bound && pos == len(buf)-1 {
				break
			}
			pos++
			vtime += uint64(o.n)
			instrs += uint64(o.n)
		} else {
			if vtime >= bound {
				break
			}
			pos++
			write := o.kind == opStore
			lat := m.Access(core, o.addr, write, vtime)
			instrs++
			memAcc++
			memCyc += uint64(lat)
			end := vtime + uint64(lat)
			if paced && instrs < instrPace && end < cyclePace {
				// Every probe guaranteed a no-op here: skip dispatch.
				vtime = end
			} else {
				acc := mem.Access{
					Addr:    o.addr,
					Thread:  id,
					Kind:    mem.Read,
					Size:    o.size,
					Latency: lat,
					Time:    vtime,
				}
				if write {
					acc.Kind = mem.Write
				}
				vtime = end
				for _, pr := range probes {
					vtime += pr.Access(acc, instrs)
				}
				if paced {
					instrPace, cyclePace, paced = e.accessPace(id)
					th.paceInstr, th.paceCycle = instrPace, cyclePace
					if !paced {
						th.paceState = 2
					}
				}
			}
		}
		if pos == len(buf) {
			th.vtime, th.instrs = vtime, instrs
			th.memAccesses, th.memCycles = memAcc, memCyc
			if !th.refill() {
				return false
			}
			buf, pos = th.buf, 0
		}
	}
	th.vtime, th.instrs = vtime, instrs
	th.memAccesses, th.memCycles = memAcc, memCyc
	th.pos = pos
	return true
}
