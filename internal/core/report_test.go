package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/mem"
)

// TestMultipleInstancesRankedByImprovement builds a program with two
// independent falsely-shared objects of very different severity and
// checks both are reported, ordered by predicted improvement.
func TestMultipleInstancesRankedByImprovement(t *testing.T) {
	e := newEnv(t)
	hot, scratch := allocPair(e, 64, heap.Frame{File: "hot.c", Line: 1})
	cold := e.h.Malloc(mem.MainThread, 64, heap.Stack(heap.Frame{File: "cold.c", Line: 2}))

	bodies := make([]exec.Body, 4)
	for i := 0; i < 4; i++ {
		hotAddr := hot.Add(i * 4)
		coldAddr := cold.Add(i * 4)
		priv := scratch.Add(i * 4096)
		bodies[i] = func(tt *exec.T) {
			for j := 0; j < 30000; j++ {
				tt.Load(priv.Add((j % 32) * 4))
				tt.Store(hotAddr) // hammered falsely-shared line
				if j%16 == 0 {
					tt.Store(coldAddr) // occasional falsely-shared line
				}
				tt.Compute(1)
			}
		}
	}
	e.run(8, exec.Program{Name: "two-objects", Phases: []exec.Phase{
		exec.SerialPhase("init", func(tt *exec.T) {
			for i := 0; i < 2000; i++ {
				tt.Load(hot.Add((i % 4) * 4))
				tt.Compute(1)
			}
		}),
		exec.ParallelPhase("work", bodies...),
	}})
	rep := e.prof.Report()
	if len(rep.Instances) < 2 {
		t.Fatalf("got %d instances, want 2 (candidates %d)", len(rep.Instances), len(rep.Candidates))
	}
	if rep.Instances[0].Object.Start != hot {
		t.Errorf("hottest object not ranked first: %v", rep.Instances[0].Object.Start)
	}
	if rep.Instances[0].Improvement() < rep.Instances[1].Improvement() {
		t.Error("instances not sorted by predicted improvement")
	}
}

// TestMidRunReport exercises "when interrupted by the user" (§2.4): the
// report is available and consistent after any prefix of the execution.
func TestMidRunReport(t *testing.T) {
	e := newEnv(t)
	obj, scratch := allocPair(e, 4096, heap.Frame{File: "mid.c", Line: 9})
	prog := incrementProgram(obj, scratch, 4, 20000, 4)
	e.run(8, prog)

	// First report, then ask again: both must agree (reporting must not
	// consume or corrupt the detection state).
	r1 := e.prof.Report()
	r2 := e.prof.Report()
	if len(r1.Instances) != len(r2.Instances) {
		t.Fatalf("repeated reports disagree: %d vs %d instances", len(r1.Instances), len(r2.Instances))
	}
	if len(r1.Instances) > 0 &&
		r1.Instances[0].Assessment.Improvement != r2.Instances[0].Assessment.Improvement {
		t.Error("repeated reports disagree on improvement")
	}
}

func TestAssessmentThreadDetail(t *testing.T) {
	e := newEnv(t)
	obj, scratch := allocPair(e, 4096, heap.Frame{File: "detail.c", Line: 3})
	e.run(8, incrementProgram(obj, scratch, 4, 20000, 4))
	rep := e.prof.Report()
	if len(rep.Instances) != 1 {
		t.Fatalf("instances = %d", len(rep.Instances))
	}
	a := rep.Instances[0].Assessment
	if len(a.Threads) != 4 {
		t.Fatalf("thread assessments = %d, want 4", len(a.Threads))
	}
	var sumAcc, sumCyc uint64
	for _, ta := range a.Threads {
		if ta.Runtime == 0 {
			t.Errorf("thread %d has zero runtime", ta.Thread)
		}
		if ta.PredictedRuntime > ta.Runtime {
			t.Errorf("thread %d predicted runtime %d exceeds measured %d (fixing FS should help)",
				ta.Thread, ta.PredictedRuntime, ta.Runtime)
		}
		if ta.ObjectAccesses == 0 {
			t.Errorf("thread %d has no object accesses", ta.Thread)
		}
		sumAcc += ta.Accesses
		sumCyc += ta.Cycles
	}
	if sumAcc != a.TotalThreadsAccesses || sumCyc != a.TotalThreadsCycles {
		t.Errorf("totals (%d, %d) != sums (%d, %d)",
			a.TotalThreadsAccesses, a.TotalThreadsCycles, sumAcc, sumCyc)
	}
	if a.RealRuntime == 0 || a.PredictedRuntime == 0 {
		t.Error("app-level runtimes missing")
	}
	if a.Improvement <= 1 {
		t.Errorf("improvement %.3f, want > 1", a.Improvement)
	}
}

func TestUnknownRegionObjectsSkipped(t *testing.T) {
	// Samples on heap addresses with no allocation metadata (e.g. a
	// workload touching raw heap space) resolve to unknown objects and
	// must not panic or produce significant instances by themselves.
	e := newEnv(t)
	raw := e.h.Base().Add(1 << 20) // inside the heap segment, never allocated
	bodies := make([]exec.Body, 2)
	for i := range bodies {
		addr := raw.Add(i * 4)
		bodies[i] = func(tt *exec.T) {
			for j := 0; j < 30000; j++ {
				tt.Store(addr)
				tt.Compute(2)
			}
		}
	}
	e.run(4, exec.Program{Name: "raw", Phases: []exec.Phase{
		exec.ParallelPhase("work", bodies...),
	}})
	rep := e.prof.Report()
	for _, in := range rep.Instances {
		if in.Object.Kind != core.UnknownObject {
			continue
		}
		// Unknown objects may be reported, but must carry the line range.
		if in.Object.Size != mem.LineSize {
			t.Errorf("unknown object size = %d", in.Object.Size)
		}
	}
	out := rep.Format()
	if len(rep.Instances) > 0 && !strings.Contains(out, "unresolved") {
		t.Errorf("unknown object not labelled in report:\n%s", out)
	}
}

func TestObjectKindStrings(t *testing.T) {
	if core.HeapObject.String() != "heap" ||
		core.GlobalObject.String() != "global" ||
		core.UnknownObject.String() != "unknown" {
		t.Error("ObjectKind string forms changed")
	}
}

func TestGlobalInstanceFormat(t *testing.T) {
	e := newEnv(t)
	g := e.syms.Define("shared_flags", 64)
	bodies := make([]exec.Body, 4)
	for i := range bodies {
		addr := g.Add(i * 4)
		bodies[i] = func(tt *exec.T) {
			for j := 0; j < 30000; j++ {
				tt.Store(addr)
				tt.Compute(2)
			}
		}
	}
	e.run(8, exec.Program{Name: "globals", Phases: []exec.Phase{
		exec.ParallelPhase("work", bodies...),
	}})
	rep := e.prof.Report()
	if len(rep.Instances) != 1 {
		t.Fatalf("instances = %d", len(rep.Instances))
	}
	out := rep.Format()
	if !strings.Contains(out, `It is a global variable "shared_flags"`) {
		t.Errorf("global not named in report:\n%s", out)
	}
}
