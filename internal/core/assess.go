package core

import (
	"sort"

	"repro/internal/mem"
)

// ThreadAssessment is the per-thread outcome of EQ(2) and EQ(3) for one
// falsely-shared object.
type ThreadAssessment struct {
	// Thread is the assessed thread.
	Thread mem.ThreadID
	// Phase is the parallel phase the thread ran in.
	Phase int
	// Runtime is the measured RT_t in cycles.
	Runtime uint64
	// PredictedRuntime is PredRT_t = (PredCycles_t / Cycles_t) * RT_t.
	PredictedRuntime uint64
	// Accesses and Cycles are the thread's sampled totals (Accesses_t,
	// Cycles_t).
	Accesses, Cycles uint64
	// ObjectAccesses and ObjectCycles are the thread's sampled activity
	// on the object (Accesses_O, Cycles_O restricted to t).
	ObjectAccesses, ObjectCycles uint64
}

// Assessment is the paper's §3 performance-impact prediction for one
// object: what the application runtime would become if this object's
// false sharing were fixed, derived purely from the unfixed execution.
type Assessment struct {
	// SerialAvgLatency is AverCycles_nofs — the average sampled latency
	// in serial phases (or the configured default), in cycles.
	SerialAvgLatency float64
	// RealRuntime is the measured application runtime RT_App in cycles.
	RealRuntime uint64
	// PredictedRuntime is PredRT_App, the fork-join recomputation of
	// phase lengths under predicted thread runtimes (§3.3).
	PredictedRuntime uint64
	// Improvement is EQ(4): RT_App / PredRT_App.
	Improvement float64
	// Threads holds the per-thread assessments for threads that accessed
	// the object.
	Threads []ThreadAssessment
	// TotalThreads is the number of threads with samples on the object.
	TotalThreads int
	// TotalThreadsAccesses and TotalThreadsCycles sum Accesses_t and
	// Cycles_t over related threads (the "totalThreadsAccesses" /
	// "totalThreadsCycles" lines of paper Figure 5).
	TotalThreadsAccesses, TotalThreadsCycles uint64
}

// assess runs the three assessment steps of §3 for one object.
func (p *Profiler) assess(o *objectAgg) Assessment {
	averNoFS := p.SerialAvgLatency()
	a := Assessment{
		SerialAvgLatency: averNoFS,
		RealRuntime:      p.totalCycles,
	}

	// Step 1 + 2: predict per-thread cycles and runtimes (EQ(1)-EQ(3)).
	// Statistics aggregate over each thread's whole lifetime — a pooled
	// thread driven through several parallel phases is still one thread,
	// and RT_t in the paper spans its lifetime — then the lifetime scale
	// factor applies to each of the thread's phase appearances.
	type tidStats struct {
		accesses, cycles uint64
		runtime          uint64
	}
	byTID := make(map[mem.ThreadID]*tidStats)
	for key, ts := range p.threads {
		agg := byTID[key.tid]
		if agg == nil {
			agg = &tidStats{}
			byTID[key.tid] = agg
		}
		agg.accesses += ts.accesses
		agg.cycles += ts.cycles
		agg.runtime += ts.info.Runtime()
	}
	// The object's latency profile is heavy-tailed (rare coherence
	// misses carry most cycles), so a thread with few samples has a very
	// noisy Cycles_O. Blend the thread's own sampled average with the
	// object-wide average (§3.1 computes Cycles_O at object level),
	// weighting by sample count: dense threads use their own profile,
	// sparse threads inherit the pooled one.
	objAvgLat := 0.0
	if o.accesses > 0 {
		objAvgLat = float64(o.cycles) / float64(o.accesses)
	}
	const fullConfidenceSamples = 256
	// scale[tid] = PredRT_t / RT_t from EQ(1)-EQ(3).
	scale := make(map[mem.ThreadID]float64, len(byTID))
	for tid, agg := range byTID {
		scale[tid] = 1
		objStats := o.byThread[tid]
		if objStats == nil || agg.cycles == 0 {
			continue
		}
		objAccesses := objStats.Accesses()
		w := float64(objAccesses) / fullConfidenceSamples
		if w > 1 {
			w = 1
		}
		blended := w*float64(objStats.Cycles) + (1-w)*objAvgLat*float64(objAccesses)
		objCycles := uint64(blended)
		// EQ(1): PredCycles_O = AverCycles_nofs * Accesses_O.
		predCyclesO := averNoFS * float64(objAccesses)
		// EQ(2): PredCycles_t = Cycles_t - Cycles_O + PredCycles_O.
		predCyclesT := float64(agg.cycles) - float64(objCycles) + predCyclesO
		if predCyclesT < 0 {
			predCyclesT = 0
		}
		// EQ(3): PredRT_t = (PredCycles_t / Cycles_t) * RT_t, expressed
		// as the lifetime scale factor PredCycles_t / Cycles_t.
		scale[tid] = predCyclesT / float64(agg.cycles)
		a.Threads = append(a.Threads, ThreadAssessment{
			Thread:           tid,
			Runtime:          agg.runtime,
			PredictedRuntime: uint64(scale[tid] * float64(agg.runtime)),
			Accesses:         agg.accesses,
			Cycles:           agg.cycles,
			ObjectAccesses:   objAccesses,
			ObjectCycles:     objCycles,
		})
		a.TotalThreadsAccesses += agg.accesses
		a.TotalThreadsCycles += agg.cycles
	}
	a.TotalThreads = len(a.Threads)
	sort.Slice(a.Threads, func(i, j int) bool { return a.Threads[i].Thread < a.Threads[j].Thread })
	predRT := make(map[threadKey]uint64, len(p.threads))
	for key, ts := range p.threads {
		predRT[key] = uint64(scale[key.tid] * float64(ts.info.Runtime()))
	}

	// Step 3: recompute each phase's length — "the length of each phase is
	// decided by the thread with the longest execution time, while the
	// total time of an application is equal to the sum of different
	// parallel and serial phases" (§3.3).
	var predTotal uint64
	for _, ph := range p.phases {
		realLen := ph.info.Length()
		if !ph.info.Parallel || len(ph.threads) == 0 {
			predTotal += realLen
			continue
		}
		var realMaxEnd, predMaxEnd uint64
		for _, key := range ph.threads {
			ts := p.threads[key]
			if ts == nil {
				continue
			}
			offset := ts.info.Start - ph.info.Start
			if end := offset + ts.info.Runtime(); end > realMaxEnd {
				realMaxEnd = end
			}
			if end := offset + predRT[key]; end > predMaxEnd {
				predMaxEnd = end
			}
		}
		// Keep the non-thread part of the phase (thread-join cost)
		// constant across real and predicted timelines.
		overhead := uint64(0)
		if realLen > realMaxEnd {
			overhead = realLen - realMaxEnd
		}
		predTotal += predMaxEnd + overhead
	}
	a.PredictedRuntime = predTotal
	if predTotal > 0 {
		// EQ(4): PerfImprove = RT_App / PredRT_App.
		a.Improvement = float64(a.RealRuntime) / float64(predTotal)
	} else {
		a.Improvement = 1
	}
	return a
}
