package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
	"repro/internal/shadow"
)

// WordAccess is one thread's sampled activity on one word, for the
// word-level report that "helps programmers to decide how to pad a
// problematic data structure" (§2.4).
type WordAccess struct {
	Thread        mem.ThreadID
	Reads, Writes uint64
	Cycles        uint64
}

// WordReport describes one word of an affected cache line.
type WordReport struct {
	// Offset is the word's byte offset within the object.
	Offset int
	// Shared marks words accessed by more than one thread (true sharing).
	Shared bool
	// Accesses lists per-thread activity, ordered by thread id.
	Accesses []WordAccess
}

// LineReport describes one affected cache line of an instance.
type LineReport struct {
	// Start is the line's base address.
	Start mem.Addr
	// Invalidations, Writes, Reads and Cycles are the line's sampled
	// detection counters.
	Invalidations uint64
	Writes, Reads uint64
	Cycles        uint64
	// Words holds per-word detail for words with any activity.
	Words []WordReport
}

// Instance is one detected sharing instance: an object, its detection
// counters, and — for false sharing — the predicted benefit of fixing it.
type Instance struct {
	// Object identifies what is being shared.
	Object ObjectInfo
	// FalseSharing distinguishes false from true sharing (§2.4).
	FalseSharing bool
	// Significant marks instances passing the reporting thresholds.
	Significant bool

	// Accesses, Invalidations, Writes, Reads and Cycles are sampled
	// totals over the object's detailed lines (the first output line of
	// paper Figure 5).
	Accesses      uint64
	Invalidations uint64
	Writes, Reads uint64
	Cycles        uint64

	// SharedWordFraction is the fraction of accesses on words touched by
	// multiple threads (≈0 for pure false sharing).
	SharedWordFraction float64

	// Assessment is the §3 impact prediction.
	Assessment Assessment

	// Lines holds per-line, per-word detail.
	Lines []LineReport
}

// Improvement returns the predicted speedup from fixing this instance.
func (in *Instance) Improvement() float64 { return in.Assessment.Improvement }

// Report is the profiler's end-of-run output ("either at the end of an
// execution, or when interrupted by the user", §2.4).
type Report struct {
	// App is the program name.
	App string
	// Cores is the machine size the program ran on.
	Cores int
	// RuntimeCycles is the application's measured runtime.
	RuntimeCycles uint64
	// SerialAvgLatency is the AverCycles_nofs baseline used by all
	// assessments.
	SerialAvgLatency float64
	// Samples is the number of accepted address samples.
	Samples uint64
	// Instances holds significant false sharing, sorted by predicted
	// improvement (highest first) — what Cheetah reports to the user.
	Instances []Instance
	// Candidates holds everything else that crossed the detail threshold
	// (true sharing, insignificant false sharing), for tooling and the
	// comparison experiments.
	Candidates []Instance
}

// Report runs detection, classification and assessment over the collected
// samples and returns the full report.
func (p *Profiler) Report() *Report {
	r := &Report{
		App:              p.programName,
		Cores:            p.programCores,
		RuntimeCycles:    p.totalCycles,
		SerialAvgLatency: p.SerialAvgLatency(),
		Samples:          p.samples,
	}
	for _, o := range p.collectObjects() {
		class := o.classify()
		if class == classNone && o.invalidations == 0 {
			continue
		}
		in := p.buildInstance(o, class)
		if in.FalseSharing && in.Significant {
			r.Instances = append(r.Instances, in)
		} else {
			r.Candidates = append(r.Candidates, in)
		}
	}
	sort.Slice(r.Instances, func(i, j int) bool {
		return r.Instances[i].Improvement() > r.Instances[j].Improvement()
	})
	sort.Slice(r.Candidates, func(i, j int) bool {
		return r.Candidates[i].Invalidations > r.Candidates[j].Invalidations
	})
	return r
}

// buildInstance assembles the reportable view of one aggregated object.
func (p *Profiler) buildInstance(o *objectAgg, class classification) Instance {
	in := Instance{
		Object:             o.info,
		FalseSharing:       class == classFalseSharing,
		Accesses:           o.accesses,
		Invalidations:      o.invalidations,
		Writes:             o.writes,
		Reads:              o.reads,
		Cycles:             o.cycles,
		SharedWordFraction: o.sharedFraction(),
	}
	in.Assessment = p.assess(o)
	in.Significant = in.FalseSharing &&
		o.invalidations >= p.opts.MinInvalidations &&
		in.Assessment.Improvement >= p.opts.MinImprovement
	in.Lines = p.lineReports(o)
	return in
}

// lineReports renders per-line, per-word detail sorted by address.
func (p *Profiler) lineReports(o *objectAgg) []LineReport {
	sort.Slice(o.lines, func(i, j int) bool { return o.lines[i].Index < o.lines[j].Index })
	geom := p.shadow.Geometry()
	reports := make([]LineReport, 0, len(o.lines))
	for _, l := range o.lines {
		lr := LineReport{
			Start:         geom.LineAddr(l.Index),
			Invalidations: l.Invalidations,
			Writes:        l.Writes,
			Reads:         l.Reads,
			Cycles:        l.Cycles,
		}
		for i := 0; i < l.Words(); i++ {
			w := l.Word(i)
			if w.Threads() == 0 {
				continue
			}
			wr := WordReport{
				Offset: int(lr.Start.Add(i*mem.WordSize) - o.info.Start),
				Shared: w.SharedByMultipleThreads(),
			}
			wr.Accesses = wordAccesses(w)
			lr.Words = append(lr.Words, wr)
		}
		reports = append(reports, lr)
	}
	return reports
}

func wordAccesses(w *shadow.Word) []WordAccess {
	out := make([]WordAccess, 0, w.Threads())
	w.ForEachThread(func(tid mem.ThreadID, s *shadow.WordStats) {
		out = append(out, WordAccess{Thread: tid, Reads: s.Reads, Writes: s.Writes, Cycles: s.Cycles})
	})
	// ForEachThread already visits in ascending thread order; the sort
	// stays as a guard on the report's contract.
	sort.Slice(out, func(i, j int) bool { return out[i].Thread < out[j].Thread })
	return out
}

// Format renders the report in the style of paper Figure 5. Counters
// mirror the paper's output, including its quirk of printing access and
// invalidation counts in hexadecimal.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cheetah report for %q (%d cores, runtime %d cycles, %d samples)\n",
		r.App, r.Cores, r.RuntimeCycles, r.Samples)
	if len(r.Instances) == 0 {
		b.WriteString("No significant false sharing detected.\n")
		return b.String()
	}
	for i := range r.Instances {
		b.WriteString("\n")
		r.Instances[i].format(&b)
	}
	return b.String()
}

// format renders one instance, following paper Figure 5 line by line.
func (in *Instance) format(b *strings.Builder) {
	fmt.Fprintf(b, "Detecting false sharing at the object: start %v end %v (with size %d).\n",
		in.Object.Start, in.Object.End, in.Object.Size)
	fmt.Fprintf(b, "Accesses %d invalidations %x writes %d total latency %d cycles.\n",
		in.Accesses, in.Invalidations, in.Writes, in.Cycles)
	b.WriteString("Latency information:\n")
	fmt.Fprintf(b, "totalThreads %d\n", in.Assessment.TotalThreads)
	fmt.Fprintf(b, "totalThreadsAccesses %x\n", in.Assessment.TotalThreadsAccesses)
	fmt.Fprintf(b, "totalThreadsCycles %x\n", in.Assessment.TotalThreadsCycles)
	fmt.Fprintf(b, "totalPossibleImprovementRate %f%%\n", in.Assessment.Improvement*100)
	fmt.Fprintf(b, "(realRuntime %d predictedRuntime %d).\n",
		in.Assessment.RealRuntime, in.Assessment.PredictedRuntime)
	switch in.Object.Kind {
	case HeapObject:
		b.WriteString("It is a heap object with the following callsite:\n")
		for _, f := range in.Object.Stack {
			fmt.Fprintf(b, "%s: %d\n", f.File, f.Line)
		}
	case GlobalObject:
		fmt.Fprintf(b, "It is a global variable %q at %v.\n", in.Object.Name, in.Object.Start)
	default:
		fmt.Fprintf(b, "It is an unresolved object at %v.\n", in.Object.Start)
	}
}

// FormatWords renders the word-level access table of an instance — the
// detail the linear_regression case study consults ("By checking
// word-based accesses that are reported by Cheetah", §4.2.1).
func (in *Instance) FormatWords() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Word-level accesses for object %v..%v:\n", in.Object.Start, in.Object.End)
	for _, l := range in.Lines {
		fmt.Fprintf(&b, "  line %v: invalidations %d writes %d reads %d\n",
			l.Start, l.Invalidations, l.Writes, l.Reads)
		for _, w := range l.Words {
			shared := ""
			if w.Shared {
				shared = " [shared by multiple threads]"
			}
			fmt.Fprintf(&b, "    +%-4d%s\n", w.Offset, shared)
			for _, a := range w.Accesses {
				fmt.Fprintf(&b, "      thread %-3d reads %-6d writes %-6d cycles %d\n",
					a.Thread, a.Reads, a.Writes, a.Cycles)
			}
		}
	}
	return b.String()
}
