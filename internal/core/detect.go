package core

import (
	"sort"

	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/shadow"
)

// ObjectKind classifies a detected object's region.
type ObjectKind uint8

const (
	// HeapObject is an allocation resolved through the custom heap.
	HeapObject ObjectKind = iota
	// GlobalObject is a variable resolved through the symbol table.
	GlobalObject
	// UnknownObject covers sampled lines no resolver claimed.
	UnknownObject
)

func (k ObjectKind) String() string {
	switch k {
	case HeapObject:
		return "heap"
	case GlobalObject:
		return "global"
	default:
		return "unknown"
	}
}

// ObjectInfo identifies a detected object for reporting.
type ObjectInfo struct {
	// Kind says how the object was resolved.
	Kind ObjectKind
	// Start and End delimit the object ([Start, End)).
	Start, End mem.Addr
	// Size is the object's requested size in bytes.
	Size uint64
	// Name is the symbol name for globals.
	Name string
	// Stack is the allocation call stack for heap objects.
	Stack heap.CallStack
	// Thread is the allocating thread for heap objects.
	Thread mem.ThreadID
}

// objectAgg accumulates detection state for one object across its sampled
// cache lines.
type objectAgg struct {
	info  ObjectInfo
	lines []*shadow.Line

	// Aggregates over detailed lines.
	invalidations uint64
	writes, reads uint64
	accesses      uint64
	cycles        uint64

	// byThread aggregates sampled accesses and cycles per thread — the
	// per-thread Cycles_O and Accesses_O of EQ(2).
	byThread map[mem.ThreadID]*shadow.WordStats

	// sharedAccesses counts accesses attributed to words touched by more
	// than one thread — the true-sharing signal.
	sharedAccesses uint64
}

// collectObjects walks the shadow memory, resolves each sampled line to
// its owning object (heap allocation, global variable, or unknown), and
// aggregates per-object detection state.
func (p *Profiler) collectObjects() []*objectAgg {
	byKey := make(map[mem.Addr]*objectAgg)
	geom := p.shadow.Geometry()
	p.shadow.ForEach(func(l *shadow.Line) {
		if !l.Detailed() {
			return
		}
		base := geom.LineAddr(l.Index)
		info := p.resolveObject(base)
		agg := byKey[info.Start]
		if agg == nil {
			agg = &objectAgg{info: info, byThread: make(map[mem.ThreadID]*shadow.WordStats)}
			byKey[info.Start] = agg
		}
		agg.addLine(l)
	})
	objs := make([]*objectAgg, 0, len(byKey))
	for _, o := range byKey {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].info.Start < objs[j].info.Start })
	return objs
}

// resolveObject maps a line base address to its owning object. Lines that
// no resolver claims become single-line unknown objects.
func (p *Profiler) resolveObject(base mem.Addr) ObjectInfo {
	if p.opts.Heap != nil {
		if obj, ok := p.opts.Heap.Lookup(base); ok {
			return ObjectInfo{
				Kind:   HeapObject,
				Start:  obj.Addr,
				End:    obj.Addr.Add(int(obj.Size)),
				Size:   obj.Size,
				Stack:  obj.Stack,
				Thread: obj.Thread,
			}
		}
	}
	if p.opts.Symbols != nil {
		if sym, ok := p.opts.Symbols.Resolve(base); ok {
			return ObjectInfo{
				Kind:  GlobalObject,
				Start: sym.Addr,
				End:   sym.End(),
				Size:  sym.Size,
				Name:  sym.Name,
			}
		}
	}
	lineSize := p.shadow.Geometry().LineSize
	return ObjectInfo{
		Kind:  UnknownObject,
		Start: base,
		End:   base.Add(lineSize),
		Size:  uint64(lineSize),
	}
}

// addLine folds one detailed shadow line into the aggregate.
func (o *objectAgg) addLine(l *shadow.Line) {
	o.lines = append(o.lines, l)
	o.invalidations += l.Invalidations
	o.writes += l.Writes
	o.reads += l.Reads
	o.accesses += l.Accesses
	o.cycles += l.Cycles
	for i := 0; i < l.Words(); i++ {
		w := l.Word(i)
		if w.Threads() == 0 {
			continue
		}
		shared := w.SharedByMultipleThreads()
		w.ForEachThread(func(tid mem.ThreadID, s *shadow.WordStats) {
			agg := o.byThread[tid]
			if agg == nil {
				agg = &shadow.WordStats{}
				o.byThread[tid] = agg
			}
			agg.Reads += s.Reads
			agg.Writes += s.Writes
			agg.Cycles += s.Cycles
			if shared {
				o.sharedAccesses += s.Accesses()
			}
		})
	}
}

// threadCount returns the number of distinct threads that touched the
// object.
func (o *objectAgg) threadCount() int { return len(o.byThread) }

// sharedFraction is the fraction of sampled accesses that landed on words
// touched by more than one thread.
func (o *objectAgg) sharedFraction() float64 {
	if o.accesses == 0 {
		return 0
	}
	return float64(o.sharedAccesses) / float64(o.accesses)
}

// trueSharingDominanceThreshold is the word-sharing fraction above which
// an object's invalidations are attributed to true sharing rather than
// false sharing. In true sharing "multiple threads will access the same
// words" (§2.4), so shared-word accesses dominate; in false sharing the
// threads' footprints are disjoint and the fraction stays near zero.
const trueSharingDominanceThreshold = 0.5

// classify labels the object. Objects without invalidations or with only
// one thread are not sharing instances at all.
type classification uint8

const (
	classNone classification = iota
	classFalseSharing
	classTrueSharing
)

func (o *objectAgg) classify() classification {
	if o.invalidations == 0 || o.threadCount() < 2 {
		return classNone
	}
	if o.sharedFraction() > trueSharingDominanceThreshold {
		return classTrueSharing
	}
	return classFalseSharing
}
