// Package core implements the Cheetah profiler — the paper's primary
// contribution. It consumes PMU address samples, detects false sharing
// with the two-entry-table invalidation rule and word-granularity
// discrimination (paper §2), quantitatively assesses the performance
// impact of fixing each instance (paper §3, EQ(1)–EQ(4)), and produces
// reports in the style of paper Figure 5.
package core

import (
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/shadow"
	"repro/internal/symtab"
)

// Options configures a Profiler.
type Options struct {
	// PMU configures address sampling; the zero value uses the paper's
	// defaults (64K-instruction period).
	PMU pmu.Config
	// Heap resolves heap addresses to allocation sites. Required for heap
	// object reporting.
	Heap *heap.Heap
	// Symbols resolves global addresses to variable names.
	Symbols *symtab.Table
	// MinInvalidations is the minimum number of sampled invalidations for
	// an object to become a report candidate; below it the object cannot
	// "possibly have a high impact on performance" (§2.3).
	MinInvalidations uint64
	// MinImprovement is the minimum predicted speedup (e.g. 1.01 = 1%)
	// for an instance to be reported as significant.
	MinImprovement float64
	// DefaultSerialLatency is the fallback for AverCycles_nofs when no
	// serial-phase samples were collected: "a default value learned from
	// experience" (§3.1), in cycles.
	DefaultSerialLatency float64
	// Geometry is the cache-line geometry the shadow memory tracks under;
	// the zero value means the canonical 64-byte lines.
	Geometry mem.Geometry
}

// DefaultOptions returns the evaluation configuration.
func DefaultOptions(h *heap.Heap, syms *symtab.Table) Options {
	return Options{
		PMU:                  pmu.DefaultConfig(),
		Heap:                 h,
		Symbols:              syms,
		MinInvalidations:     8,
		MinImprovement:       1.008,
		DefaultSerialLatency: 6,
	}
}

// threadKey identifies a thread record; the main thread reappears in every
// serial phase, so records are per (thread, phase).
type threadKey struct {
	tid   mem.ThreadID
	phase int
}

// threadStats is the paper's per-thread runtime information (§3.2): RT_t,
// Accesses_t and Cycles_t, plus bookkeeping for phase reconstruction.
type threadStats struct {
	info exec.ThreadInfo
	// accesses and cycles cover all delivered samples of this thread.
	accesses uint64
	cycles   uint64
	ended    bool
}

// phaseStats records one serial or parallel phase of the fork-join model.
type phaseStats struct {
	info    exec.PhaseInfo
	threads []threadKey
}

// Profiler is the Cheetah runtime. It implements exec.Probe (thread and
// phase lifecycle, mirroring the paper's interception of thread creation
// and RDTSC timestamping) and pmu.Handler (the signal handler receiving
// address samples). Attach both the profiler and its PMU to an engine via
// Probes.
type Profiler struct {
	exec.BaseProbe
	opts Options
	pmu  *pmu.PMU

	shadow  *shadow.Memory
	threads map[threadKey]*threadStats
	phases  []phaseStats

	// inParallel gates detailed detection: "only recording detailed
	// accesses inside parallel phases" (§2.4) avoids misreporting
	// main-thread initialization as sharing.
	inParallel   bool
	currentPhase int

	// serialCycles/serialSamples accumulate serial-phase sample latency
	// for the AverCycles_serial approximation (§3.1).
	serialCycles  uint64
	serialSamples uint64

	// Aggregate counters.
	samples       uint64
	dropped       uint64
	totalCycles   uint64
	programName   string
	programCores  int
	programEnded  bool
	totalsByPhase map[int]uint64
}

// New creates a profiler with the given options.
func New(opts Options) *Profiler {
	if opts.MinImprovement == 0 {
		opts.MinImprovement = 1.008
	}
	if opts.DefaultSerialLatency == 0 {
		opts.DefaultSerialLatency = 6
	}
	p := &Profiler{opts: opts}
	p.pmu = pmu.New(opts.PMU, p)
	p.reset()
	return p
}

// reset clears all per-run state.
func (p *Profiler) reset() {
	p.shadow = shadow.NewMemoryGeom(p.opts.Geometry)
	p.threads = make(map[threadKey]*threadStats)
	p.phases = nil
	p.inParallel = false
	p.currentPhase = -1
	p.serialCycles, p.serialSamples = 0, 0
	p.samples, p.dropped, p.totalCycles = 0, 0, 0
	p.programEnded = false
	p.totalsByPhase = make(map[int]uint64)
}

// Probes returns the probe chain to attach to an exec.Engine: the PMU
// (which samples and charges overhead) and the profiler itself (thread
// and phase lifecycle).
func (p *Profiler) Probes() []exec.Probe {
	return []exec.Probe{p.pmu, p}
}

// AccessPace implements exec.AccessPacer: the profiler observes accesses
// only through PMU samples (its own Access is the embedded no-op), so it
// never needs the engine's per-access probe call.
func (p *Profiler) AccessPace(mem.ThreadID) (instrPace, cyclePace uint64) {
	return ^uint64(0), ^uint64(0)
}

// PMUStats exposes the underlying PMU counters.
func (p *Profiler) PMUStats() pmu.Stats { return p.pmu.Stats() }

// Samples returns the number of samples the profiler accepted (after
// region filtering).
func (p *Profiler) Samples() uint64 { return p.samples }

// Shadow exposes the shadow memory for tests and tooling.
func (p *Profiler) Shadow() *shadow.Memory { return p.shadow }

// ProgramStart implements exec.Probe.
func (p *Profiler) ProgramStart(name string, cores int) {
	p.reset()
	p.programName = name
	p.programCores = cores
}

// PhaseStart implements exec.Probe: it tracks the fork-join structure the
// assessment recomputes (§3.3).
func (p *Profiler) PhaseStart(ph exec.PhaseInfo) {
	p.inParallel = ph.Parallel
	p.currentPhase = ph.Index
	p.phases = append(p.phases, phaseStats{info: ph})
}

// PhaseEnd implements exec.Probe.
func (p *Profiler) PhaseEnd(ph exec.PhaseInfo) {
	p.phases[len(p.phases)-1].info = ph
	p.inParallel = false
	p.currentPhase = -1
}

// ThreadStart implements exec.Probe; the PMU charges its own setup cost,
// so the profiler charges nothing extra.
func (p *Profiler) ThreadStart(th exec.ThreadInfo) uint64 {
	key := threadKey{tid: th.ID, phase: th.Phase}
	p.threads[key] = &threadStats{info: th}
	if n := len(p.phases); n > 0 && p.phases[n-1].info.Index == th.Phase {
		p.phases[n-1].threads = append(p.phases[n-1].threads, key)
	}
	return 0
}

// ThreadEnd implements exec.Probe, capturing RT_t.
func (p *Profiler) ThreadEnd(th exec.ThreadInfo) {
	if ts := p.threads[threadKey{tid: th.ID, phase: th.Phase}]; ts != nil {
		ts.info = th
		ts.ended = true
	}
}

// ProgramEnd implements exec.Probe.
func (p *Profiler) ProgramEnd(total uint64) {
	p.totalCycles = total
	p.programEnded = true
}

// Sample implements pmu.Handler: Cheetah's signal handler. It filters by
// region (the driver passes only heap and global accesses, §1 Figure 2),
// feeds serial-phase latency into the no-false-sharing baseline, and
// applies detailed detection only inside parallel phases.
func (p *Profiler) Sample(a mem.Access, instrs uint64) {
	region := p.regionOf(a.Addr)
	if region != mem.RegionHeap && region != mem.RegionGlobal {
		p.dropped++
		return
	}
	p.samples++

	if !p.inParallel {
		// Serial phase: contribute to AverCycles_serial only.
		p.serialCycles += uint64(a.Latency)
		p.serialSamples++
		return
	}

	if ts := p.threads[threadKey{tid: a.Thread, phase: p.currentPhase}]; ts != nil {
		ts.accesses++
		ts.cycles += uint64(a.Latency)
	}
	p.shadow.Record(a)
}

// regionOf classifies an address.
func (p *Profiler) regionOf(a mem.Addr) mem.Region {
	if p.opts.Heap != nil && p.opts.Heap.Contains(a) {
		return mem.RegionHeap
	}
	if p.opts.Symbols != nil && p.opts.Symbols.Contains(a) {
		return mem.RegionGlobal
	}
	return mem.RegionOther
}

// SerialAvgLatency returns AverCycles_serial — the observed average
// latency of serial-phase samples, or the configured default when serial
// phases produced no samples (§3.1).
func (p *Profiler) SerialAvgLatency() float64 {
	if p.serialSamples == 0 {
		return p.opts.DefaultSerialLatency
	}
	return float64(p.serialCycles) / float64(p.serialSamples)
}
