package core_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/symtab"
)

// densePMU samples densely so small unit-test workloads yield plenty of
// samples; costs are zeroed so native and profiled runtimes coincide.
func densePMU() pmu.Config {
	return pmu.Config{Period: 64, Jitter: 7, HandlerCycles: 0, SetupCycles: 0}
}

// env bundles the standard test rig.
type env struct {
	h    *heap.Heap
	syms *symtab.Table
	prof *core.Profiler
}

func newEnv(t *testing.T) *env {
	t.Helper()
	h := heap.New(heap.DefaultConfig())
	syms := symtab.New(symtab.DefaultConfig())
	opts := core.DefaultOptions(h, syms)
	opts.PMU = densePMU()
	return &env{h: h, syms: syms, prof: core.New(opts)}
}

// run executes prog on a fresh machine with the profiler attached and
// returns the result.
func (e *env) run(cores int, prog exec.Program) exec.Result {
	sim := cache.New(cache.DefaultConfig(cores))
	eng := exec.New(sim, exec.Config{OpBuffer: 1024}, e.prof.Probes()...)
	return eng.Run(prog)
}

// runNative executes prog with no probes, returning the unprofiled result.
func runNative(cores int, prog exec.Program) exec.Result {
	sim := cache.New(cache.DefaultConfig(cores))
	eng := exec.New(sim, exec.Config{OpBuffer: 1024})
	return eng.Run(prog)
}

// incrementProgram builds the Figure 1 style workload: a serial init phase
// followed by a parallel phase where thread i reads its private input
// region and accumulates into element i of a shared array — the
// linear_regression access shape. stride 4 produces false sharing;
// stride 64 is the padded fix. scratch is a per-thread-partitioned input
// region (4 KB per thread).
func incrementProgram(base, scratch mem.Addr, threads, iters, stride int) exec.Program {
	init := exec.SerialPhase("init", func(t *exec.T) {
		for i := 0; i < threads; i++ {
			t.Store(base.Add(i * stride))
		}
		// Serial reads establish the no-false-sharing latency baseline.
		for i := 0; i < 2000; i++ {
			t.Load(base.Add((i % threads) * stride))
			t.Compute(1)
		}
	})
	bodies := make([]exec.Body, threads)
	for i := 0; i < threads; i++ {
		fsAddr := base.Add(i * stride)
		priv := scratch.Add(i * 4096)
		bodies[i] = func(t *exec.T) {
			for j := 0; j < iters; j++ {
				t.Load(priv.Add((j % 32) * 4))
				t.Load(priv.Add(((j + 7) % 32) * 4))
				t.Store(fsAddr)
				t.Compute(1)
			}
		}
	}
	return exec.Program{Name: "increment", Phases: []exec.Phase{init, exec.ParallelPhase("work", bodies...)}}
}

// allocPair allocates the shared object and the per-thread scratch region.
func allocPair(e *env, size uint64, site heap.Frame) (obj, scratch mem.Addr) {
	obj = e.h.Malloc(mem.MainThread, size, heap.Stack(site))
	scratch = e.h.Malloc(mem.MainThread, 64*1024, heap.Stack(heap.Frame{File: "scratch.c", Line: 1}))
	return obj, scratch
}

func TestDetectsHeapFalseSharing(t *testing.T) {
	e := newEnv(t)
	obj, scratch := allocPair(e, 4096, heap.Frame{File: "increment.c", Line: 42})
	e.run(8, incrementProgram(obj, scratch, 4, 20000, 4))
	rep := e.prof.Report()
	if len(rep.Instances) != 1 {
		t.Fatalf("got %d instances, want 1; candidates: %d", len(rep.Instances), len(rep.Candidates))
	}
	in := rep.Instances[0]
	if !in.FalseSharing {
		t.Error("instance not classified as false sharing")
	}
	if in.Object.Kind != core.HeapObject {
		t.Errorf("object kind = %v, want heap", in.Object.Kind)
	}
	if in.Object.Start != obj {
		t.Errorf("object start = %v, want %v", in.Object.Start, obj)
	}
	if got := in.Object.Stack.Site(); got.File != "increment.c" || got.Line != 42 {
		t.Errorf("callsite = %v, want increment.c:42", got)
	}
	if in.Invalidations == 0 {
		t.Error("no invalidations recorded")
	}
	if in.Assessment.Improvement <= 1.5 {
		t.Errorf("predicted improvement %.2f, want > 1.5", in.Assessment.Improvement)
	}
	if in.Assessment.TotalThreads != 4 {
		t.Errorf("TotalThreads = %d, want 4", in.Assessment.TotalThreads)
	}
}

func TestPaddedLayoutNotReported(t *testing.T) {
	e := newEnv(t)
	obj, scratch := allocPair(e, 4096, heap.Frame{File: "inc.c", Line: 1})
	e.run(8, incrementProgram(obj, scratch, 4, 20000, mem.LineSize))
	rep := e.prof.Report()
	if len(rep.Instances) != 0 {
		t.Fatalf("padded layout reported as false sharing: %+v", rep.Instances[0])
	}
}

func TestTrueSharingClassified(t *testing.T) {
	e := newEnv(t)
	obj := e.h.Malloc(mem.MainThread, 64, heap.Stack(heap.Frame{File: "ts.c", Line: 9}))
	bodies := make([]exec.Body, 4)
	for i := range bodies {
		bodies[i] = func(tt *exec.T) {
			for j := 0; j < 20000; j++ {
				tt.Store(obj) // every thread writes the same word
				tt.Compute(6)
			}
		}
	}
	e.run(8, exec.Program{Name: "truesharing", Phases: []exec.Phase{
		exec.ParallelPhase("work", bodies...),
	}})
	rep := e.prof.Report()
	if len(rep.Instances) != 0 {
		t.Fatalf("true sharing reported as false sharing (shared fraction %.2f)",
			rep.Instances[0].SharedWordFraction)
	}
	// It must still appear as a candidate, classified true sharing.
	found := false
	for _, c := range rep.Candidates {
		if c.Object.Start == obj && !c.FalseSharing && c.Invalidations > 0 {
			found = true
		}
	}
	if !found {
		t.Error("true-sharing object missing from candidates")
	}
}

func TestNoSharingNoReport(t *testing.T) {
	e := newEnv(t)
	objs := make([]mem.Addr, 4)
	for i := range objs {
		objs[i] = e.h.Malloc(mem.ThreadID(i+1), 64, heap.Stack(heap.Frame{File: "p.c", Line: i}))
	}
	bodies := make([]exec.Body, 4)
	for i := range bodies {
		addr := objs[i]
		bodies[i] = func(tt *exec.T) {
			for j := 0; j < 10000; j++ {
				tt.Store(addr)
				tt.Compute(4)
			}
		}
	}
	e.run(8, exec.Program{Name: "private", Phases: []exec.Phase{
		exec.ParallelPhase("work", bodies...),
	}})
	rep := e.prof.Report()
	if len(rep.Instances) != 0 {
		t.Fatalf("thread-private writes reported as false sharing")
	}
}

func TestSerialInitializationNotMisreported(t *testing.T) {
	// The main thread initializes the object, then exactly one worker uses
	// it: no sharing should be reported even though two "threads" touched
	// the data, because detailed recording happens only in parallel phases
	// (§2.4's answer to Predator's false positive).
	e := newEnv(t)
	obj := e.h.Malloc(mem.MainThread, 256, heap.Stack(heap.Frame{File: "init.c", Line: 3}))
	prog := exec.Program{Name: "initthenuse", Phases: []exec.Phase{
		exec.SerialPhase("init", func(tt *exec.T) {
			for j := 0; j < 5000; j++ {
				tt.Store(obj.Add((j % 16) * 4))
			}
		}),
		exec.ParallelPhase("work", func(tt *exec.T) {
			for j := 0; j < 20000; j++ {
				tt.Store(obj.Add((j % 16) * 4))
				tt.Compute(2)
			}
		}),
	}}
	e.run(4, prog)
	rep := e.prof.Report()
	if len(rep.Instances) != 0 {
		t.Fatalf("serial-init + single-worker object misreported as false sharing")
	}
	for _, c := range rep.Candidates {
		if c.Object.Start == obj && c.Invalidations > 0 {
			t.Errorf("invalidations attributed across serial/parallel boundary: %+v", c)
		}
	}
}

func TestGlobalVariableFalseSharing(t *testing.T) {
	e := newEnv(t)
	g := e.syms.Define("counters", 64)
	bodies := make([]exec.Body, 4)
	for i := range bodies {
		addr := g.Add(i * 4)
		bodies[i] = func(tt *exec.T) {
			for j := 0; j < 20000; j++ {
				tt.Store(addr)
				tt.Compute(5)
			}
		}
	}
	e.run(8, exec.Program{Name: "globalfs", Phases: []exec.Phase{
		exec.ParallelPhase("work", bodies...),
	}})
	rep := e.prof.Report()
	if len(rep.Instances) != 1 {
		t.Fatalf("got %d instances, want 1", len(rep.Instances))
	}
	in := rep.Instances[0]
	if in.Object.Kind != core.GlobalObject || in.Object.Name != "counters" {
		t.Errorf("object = %+v, want global \"counters\"", in.Object)
	}
}

func TestRegionFilteringDropsUnknownAddresses(t *testing.T) {
	e := newEnv(t)
	// Accesses at raw addresses outside heap and globals segments.
	bodies := make([]exec.Body, 2)
	for i := range bodies {
		addr := mem.Addr(0xDEAD0000 + uint64(i*4))
		bodies[i] = func(tt *exec.T) {
			for j := 0; j < 20000; j++ {
				tt.Store(addr)
			}
		}
	}
	e.run(4, exec.Program{Name: "stackish", Phases: []exec.Phase{
		exec.ParallelPhase("work", bodies...),
	}})
	rep := e.prof.Report()
	if rep.Samples != 0 {
		t.Errorf("accepted %d samples from unmapped region, want 0", rep.Samples)
	}
	if len(rep.Instances)+len(rep.Candidates) != 0 {
		t.Error("unmapped region produced report entries")
	}
}

func TestAssessmentTracksRealFix(t *testing.T) {
	// The headline claim (Table 1): the predicted improvement from the
	// broken run approximates the measured improvement from actually
	// padding the object.
	for _, threads := range []int{2, 4, 8} {
		e := newEnv(t)
		obj, scratch := allocPair(e, 4096, heap.Frame{File: "fix.c", Line: 7})
		broken := incrementProgram(obj, scratch, threads, 30000, 4)
		fixed := incrementProgram(obj, scratch, threads, 30000, mem.LineSize)

		brokenRT := runNative(threads+1, broken).TotalCycles
		fixedRT := runNative(threads+1, fixed).TotalCycles
		real := float64(brokenRT) / float64(fixedRT)

		e.run(threads+1, broken)
		rep := e.prof.Report()
		if len(rep.Instances) != 1 {
			t.Fatalf("threads=%d: got %d instances, want 1", threads, len(rep.Instances))
		}
		pred := rep.Instances[0].Assessment.Improvement
		diff := math.Abs(pred-real) / real
		t.Logf("threads=%d: predicted %.2fx real %.2fx diff %.1f%%", threads, pred, real, diff*100)
		// This synthetic workload is far more coherence-bound than the
		// paper's applications; the calibrated <10% precision claim is
		// validated at full scale by the Table 1 harness experiment.
		if diff > 0.35 {
			t.Errorf("threads=%d: predicted %.2fx vs real %.2fx (%.0f%% off)",
				threads, pred, real, diff*100)
		}
		if real < 1.5 {
			t.Errorf("threads=%d: fix yields only %.2fx; workload not exhibiting false sharing", threads, real)
		}
	}
}

func TestInsignificantInstanceFiltered(t *testing.T) {
	e := newEnv(t)
	obj := e.h.Malloc(mem.MainThread, 64, heap.Stack(heap.Frame{File: "tiny.c", Line: 1}))
	other := e.h.Malloc(mem.MainThread, 1<<16, heap.Stack(heap.Frame{File: "big.c", Line: 2}))
	bodies := make([]exec.Body, 2)
	for i := range bodies {
		fsAddr := obj.Add(i * 4)
		privBase := other.Add(i * (1 << 15))
		bodies[i] = func(tt *exec.T) {
			for j := 0; j < 40000; j++ {
				// Dominant thread-private traffic...
				tt.Store(privBase.Add((j % 512) * 64))
				tt.Compute(20)
				// ...with very rare falsely-shared writes.
				if j%2000 == 0 {
					tt.Store(fsAddr)
				}
			}
		}
	}
	e.run(4, exec.Program{Name: "tinyfs", Phases: []exec.Phase{
		exec.ParallelPhase("work", bodies...),
	}})
	rep := e.prof.Report()
	for _, in := range rep.Instances {
		if in.Object.Start == obj {
			t.Errorf("negligible false sharing reported as significant (inv=%d, improve=%.3f)",
				in.Invalidations, in.Assessment.Improvement)
		}
	}
}

func TestReportFormat(t *testing.T) {
	e := newEnv(t)
	obj, scratch := allocPair(e, 4000, heap.Frame{File: "linear_regression-pthread.c", Line: 139})
	e.run(8, incrementProgram(obj, scratch, 4, 20000, 4))
	rep := e.prof.Report()
	out := rep.Format()
	for _, want := range []string{
		"Detecting false sharing at the object:",
		"(with size 4000)",
		"invalidations",
		"totalThreads 4",
		"totalPossibleImprovementRate",
		"It is a heap object with the following callsite:",
		"linear_regression-pthread.c: 139",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	words := rep.Instances[0].FormatWords()
	if !strings.Contains(words, "thread") || !strings.Contains(words, "writes") {
		t.Errorf("word report missing detail:\n%s", words)
	}
}

func TestReportEmptyFormat(t *testing.T) {
	e := newEnv(t)
	e.run(2, exec.Program{Name: "idle", Phases: []exec.Phase{
		exec.SerialPhase("s", func(tt *exec.T) { tt.Compute(1000) }),
	}})
	out := e.prof.Report().Format()
	if !strings.Contains(out, "No significant false sharing detected.") {
		t.Errorf("empty report = %q", out)
	}
}

func TestProfilerResetsBetweenRuns(t *testing.T) {
	e := newEnv(t)
	obj, scratch := allocPair(e, 4096, heap.Frame{File: "r.c", Line: 1})
	prog := incrementProgram(obj, scratch, 4, 20000, 4)
	e.run(8, prog)
	first := e.prof.Report()
	e.run(8, prog)
	second := e.prof.Report()
	if len(first.Instances) != len(second.Instances) {
		t.Fatalf("instance counts differ across identical runs: %d vs %d",
			len(first.Instances), len(second.Instances))
	}
	if first.Samples != second.Samples {
		t.Errorf("samples differ across identical runs: %d vs %d", first.Samples, second.Samples)
	}
}

func TestSerialAvgLatencyFallback(t *testing.T) {
	e := newEnv(t)
	// No serial-phase memory accesses at all.
	e.run(2, exec.Program{Name: "nofallback", Phases: []exec.Phase{
		exec.ParallelPhase("work", func(tt *exec.T) { tt.Compute(100000) }),
	}})
	rep := e.prof.Report()
	if rep.SerialAvgLatency != 6 {
		t.Errorf("SerialAvgLatency = %v, want default 6", rep.SerialAvgLatency)
	}
}

func TestWordLevelDetailInReport(t *testing.T) {
	e := newEnv(t)
	obj := e.h.Malloc(mem.MainThread, 64, heap.Stack(heap.Frame{File: "w.c", Line: 5}))
	bodies := make([]exec.Body, 2)
	for i := range bodies {
		addr := obj.Add(i * 4)
		bodies[i] = func(tt *exec.T) {
			for j := 0; j < 30000; j++ {
				tt.Store(addr)
				tt.Compute(3)
			}
		}
	}
	e.run(4, exec.Program{Name: "words", Phases: []exec.Phase{
		exec.ParallelPhase("work", bodies...),
	}})
	rep := e.prof.Report()
	if len(rep.Instances) != 1 {
		t.Fatalf("instances = %d, want 1", len(rep.Instances))
	}
	in := rep.Instances[0]
	if len(in.Lines) != 1 {
		t.Fatalf("lines = %d, want 1", len(in.Lines))
	}
	offsets := map[int]bool{}
	for _, w := range in.Lines[0].Words {
		offsets[w.Offset] = true
		if w.Shared {
			t.Errorf("word at offset %d marked shared in disjoint-word workload", w.Offset)
		}
		if len(w.Accesses) != 1 {
			t.Errorf("word at offset %d has %d accessing threads, want 1", w.Offset, len(w.Accesses))
		}
	}
	if !offsets[0] || !offsets[4] {
		t.Errorf("word offsets = %v, want 0 and 4", offsets)
	}
}
