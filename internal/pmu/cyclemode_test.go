package pmu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/mem"
)

// runCycleMode executes a loop under a cycle-counting PMU.
func runCycleMode(cfg Config, nIter, computeN int) (*collect, *PMU, exec.Result) {
	cfg.Mode = CountCycles
	sink := &collect{}
	p := New(cfg, sink)
	sim := cache.New(cache.DefaultConfig(2))
	e := exec.New(sim, exec.Config{OpBuffer: 1024}, p)
	res := e.Run(exec.Program{
		Name: "cycleloop",
		Phases: []exec.Phase{
			exec.SerialPhase("s", func(t *exec.T) {
				for i := 0; i < nIter; i++ {
					t.Store(mem.Addr(0x1000 + (i%64)*4))
					t.Compute(computeN)
				}
			}),
		},
	})
	return sink, p, res
}

func TestCycleModeTrapRateTracksRuntime(t *testing.T) {
	// In cycle mode the tag count is runtime/period regardless of the
	// instruction mix — the property the overhead study relies on.
	cfg := Config{Period: 1000, Jitter: 0, HandlerCycles: 0, SetupCycles: 0}
	_, pMem, resMem := runCycleMode(cfg, 50000, 1)  // memory-heavy
	_, pCpu, resCpu := runCycleMode(cfg, 5000, 200) // compute-heavy
	tagsMem := pMem.Stats().Delivered + pMem.Stats().Untagged
	tagsCpu := pCpu.Stats().Delivered + pCpu.Stats().Untagged
	wantMem := resMem.TotalCycles / cfg.Period
	wantCpu := resCpu.TotalCycles / cfg.Period
	if tagsMem < wantMem*8/10 || tagsMem > wantMem*11/10 {
		t.Errorf("memory-heavy tags = %d, want ~%d", tagsMem, wantMem)
	}
	if tagsCpu < wantCpu*8/10 || tagsCpu > wantCpu*11/10 {
		t.Errorf("compute-heavy tags = %d, want ~%d", tagsCpu, wantCpu)
	}
}

func TestCycleModeOverheadUniform(t *testing.T) {
	// Handler cost per trap yields the same relative overhead for memory-
	// and compute-bound code in cycle mode.
	base := Config{Period: 1000, Jitter: 0, HandlerCycles: 0, SetupCycles: 0}
	withCost := base
	withCost.HandlerCycles = 100
	_, _, memFree := runCycleMode(base, 50000, 1)
	_, _, memCost := runCycleMode(withCost, 50000, 1)
	_, _, cpuFree := runCycleMode(base, 5000, 200)
	_, _, cpuCost := runCycleMode(withCost, 5000, 200)
	ovhMem := float64(memCost.TotalCycles)/float64(memFree.TotalCycles) - 1
	ovhCpu := float64(cpuCost.TotalCycles)/float64(cpuFree.TotalCycles) - 1
	if ovhMem < 0.05 || ovhCpu < 0.05 {
		t.Fatalf("overheads too small to compare: mem %.3f cpu %.3f", ovhMem, ovhCpu)
	}
	ratio := ovhMem / ovhCpu
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("cycle-mode overhead not uniform: memory %.1f%% vs compute %.1f%%",
			ovhMem*100, ovhCpu*100)
	}
}

func TestCycleModeThreadStartOrigin(t *testing.T) {
	// A thread starting late in the run (second phase) must not replay
	// tags for the cycles before it existed.
	sink := &collect{}
	cfg := Config{Period: 500, Mode: CountCycles, HandlerCycles: 0, SetupCycles: 0}
	p := New(cfg, sink)
	sim := cache.New(cache.DefaultConfig(4))
	e := exec.New(sim, exec.Config{OpBuffer: 256}, p)
	res := e.Run(exec.Program{
		Name: "late",
		Phases: []exec.Phase{
			exec.SerialPhase("long", func(t *exec.T) { t.Compute(1_000_000) }),
			exec.ParallelPhase("short", func(t *exec.T) {
				for i := 0; i < 500; i++ {
					t.Store(0x2000)
				}
			}),
		},
	})
	// The worker runs ~500 stores x ~4 cycles = ~2000 cycles: at most a
	// handful of tags, not the ~2000 a zero-origin counter would replay.
	tags := p.Stats().Delivered + p.Stats().Untagged
	if tags > 100 {
		t.Errorf("late-starting thread replayed %d tags (total %d cycles)", tags, res.TotalCycles)
	}
}

func TestCycleModePooledRearm(t *testing.T) {
	// Pooled threads re-enter later phases at much later clock values;
	// the re-armed counter must track.
	sink := &collect{}
	cfg := Config{Period: 200, Mode: CountCycles, HandlerCycles: 0, SetupCycles: 0}
	p := New(cfg, sink)
	sim := cache.New(cache.DefaultConfig(4))
	e := exec.New(sim, exec.Config{OpBuffer: 256}, p)
	body := func(t *exec.T) {
		for i := 0; i < 2000; i++ {
			t.Store(0x3000)
		}
	}
	e.Run(exec.Program{
		Name: "pooledcycles",
		Phases: []exec.Phase{
			exec.PooledPhase("p1", body),
			exec.SerialPhase("gap", func(t *exec.T) { t.Compute(500_000) }),
			exec.PooledPhase("p2", body),
		},
	})
	// Both pooled phases should deliver samples.
	if len(sink.samples) < 10 {
		t.Errorf("pooled cycle-mode sampling delivered only %d samples", len(sink.samples))
	}
	// And no storm of catch-up tags.
	tags := p.Stats().Delivered + p.Stats().Untagged
	if tags > 500 {
		t.Errorf("catch-up storm: %d tags", tags)
	}
}

func TestInstructionModeUnaffectedByLatency(t *testing.T) {
	// Instruction mode tags by retirement count: two runs with identical
	// instruction streams but different latencies deliver samples at the
	// same instruction indexes.
	run := func(latency uint32) []mem.Addr {
		sink := &collect{}
		p := New(Config{Period: 97, Jitter: 0}, sink)
		m := &fixedLatency{latency: latency}
		e := exec.New(m, exec.Config{OpBuffer: 256}, p)
		e.Run(exec.Program{
			Name: "instr",
			Phases: []exec.Phase{
				exec.SerialPhase("s", func(t *exec.T) {
					for i := 0; i < 5000; i++ {
						t.Store(mem.Addr(0x100 + i%32*4))
					}
				}),
			},
		})
		addrs := make([]mem.Addr, len(sink.samples))
		for i, s := range sink.samples {
			addrs[i] = s.Addr
		}
		return addrs
	}
	fast, slow := run(1), run(50)
	if len(fast) != len(slow) {
		t.Fatalf("sample counts differ with latency: %d vs %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("sample %d address differs with latency", i)
		}
	}
}

// fixedLatency is a trivial machine for latency-independence tests.
type fixedLatency struct {
	latency uint32
}

func (m *fixedLatency) Access(core int, addr mem.Addr, write bool, now uint64) uint32 {
	return m.latency
}
func (m *fixedLatency) Cores() int { return 2 }
