// Package pmu simulates hardware performance-monitoring-unit address
// sampling in the style of AMD instruction-based sampling (IBS) and Intel
// precise event-based sampling (PEBS), the mechanisms Cheetah builds on
// (paper §2.1).
//
// The PMU tags one instruction out of every sampling period. When the
// tagged instruction is a memory access, a sample is delivered carrying
// the address, thread id, read/write flag, and access latency in cycles —
// the exact payload the paper's data-collection module consumes. Tagged
// instructions that are not memory operations produce no address sample,
// matching real IBS behaviour and naturally thinning samples on
// compute-heavy code.
//
// Costs are charged mechanistically: every delivered sample costs the
// sampled thread the configured handler cycles (the paper's signal
// handler), and every thread start costs the setup cycles (the paper's
// "six pfmon APIs and six additional system calls", §4.1). Paper Figure
// 4's overhead results are reproduced from these charges, not asserted.
package pmu

import (
	"repro/internal/exec"
	"repro/internal/mem"
)

// DefaultPeriod is the paper's sampling frequency: one sample out of every
// 64K instructions (§4.1).
const DefaultPeriod = 64 * 1024

// Handler consumes delivered samples. Implementations run inline with the
// simulated thread, like the paper's signal handler.
type Handler interface {
	// Sample delivers one sampled memory access along with the sampled
	// thread's retired instruction count at the access — the simulated
	// instruction pointer real IBS/PEBS hardware reports next to the
	// address.
	Sample(a mem.Access, instrs uint64)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(a mem.Access, instrs uint64)

// Sample implements Handler.
func (f HandlerFunc) Sample(a mem.Access, instrs uint64) { f(a, instrs) }

// CountMode selects what the sampling counter counts, mirroring AMD IBS
// op sampling's IbsOpCntCtl: cycle counting (the hardware default) tags
// an operation every Period clock cycles, dispatched-op counting tags
// every Period instructions.
type CountMode uint8

const (
	// CountInstructions tags every Period retired instructions, giving
	// unbiased per-access address samples.
	CountInstructions CountMode = iota
	// CountCycles tags every Period clock cycles, giving a constant trap
	// rate per unit of runtime — the mode that determines profiling
	// overhead on real hardware.
	CountCycles
)

// Config tunes the simulated PMU.
type Config struct {
	// Period is the number of count units (instructions or cycles,
	// per Mode) between tagged instructions.
	Period uint64
	// Mode selects instruction or cycle counting.
	Mode CountMode
	// Jitter randomizes each interval by up to ±Jitter instructions, the
	// analog of IBS's randomized counter reload that prevents lockstep
	// aliasing with loop bodies. Zero disables jitter.
	Jitter uint64
	// HandlerCycles is the cost charged to a thread per delivered sample.
	HandlerCycles uint64
	// SetupCycles is the cost charged to every thread at start for
	// programming the PMU registers.
	SetupCycles uint64
}

// DefaultConfig mirrors the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Period:        DefaultPeriod,
		Jitter:        DefaultPeriod / 16,
		HandlerCycles: 1600,
		SetupCycles:   12000,
	}
}

// Stats counts PMU activity.
type Stats struct {
	// Delivered is the number of address samples handed to the handler.
	Delivered uint64
	// Untagged is the number of tag points that fell on non-memory
	// instructions and produced no address sample.
	Untagged uint64
	// ThreadsMonitored counts ThreadStart events (PMU setups).
	ThreadsMonitored uint64
}

// PMU is an exec.Probe that performs address sampling over an execution
// and forwards samples to a handler.
type PMU struct {
	exec.BaseProbe
	cfg     Config
	handler Handler
	// threads is indexed by ThreadID: the engine assigns ids densely from
	// zero, and the per-access lookup is too hot for a map.
	threads []*threadCounter
	stats   Stats
}

// threadCounter is the per-thread sampling state: the instruction index of
// the next tagged instruction and a deterministic RNG for jitter.
type threadCounter struct {
	nextTag uint64
	rng     uint64
}

// New creates a PMU delivering samples to handler.
func New(cfg Config, handler Handler) *PMU {
	if cfg.Period == 0 {
		cfg.Period = DefaultPeriod
	}
	return &PMU{cfg: cfg, handler: handler}
}

// Stats returns a copy of the PMU's counters.
func (p *PMU) Stats() Stats { return p.stats }

// ProgramStart resets per-run state, implementing exec.Probe.
func (p *PMU) ProgramStart(name string, cores int) {
	p.threads = p.threads[:0]
	p.stats = Stats{}
}

// ThreadStart programs the PMU for a new thread and returns the setup
// cost, implementing exec.Probe.
func (p *PMU) ThreadStart(th exec.ThreadInfo) uint64 {
	if th.Reused {
		// Pooled thread re-entering a phase: its PMU registers are
		// already programmed, so no setup cost — but the engine restarts
		// the per-phase counters, so the tag point is re-armed.
		if tc := p.counter(th.ID); tc != nil {
			tc.rng = splitmix(tc.rng)
			tc.nextTag = p.base(th) + 1 + tc.rng%p.cfg.Period
		}
		return 0
	}
	p.stats.ThreadsMonitored++
	tc := &threadCounter{rng: splitmix(uint64(th.ID)*0x9e3779b97f4a7c15 + 1)}
	// Stagger the first tag point across threads so samples spread evenly
	// over the execution (paper Observation 1).
	tc.nextTag = p.base(th) + 1 + splitmix(tc.rng)%p.cfg.Period
	for int(th.ID) >= len(p.threads) {
		p.threads = append(p.threads, nil)
	}
	p.threads[th.ID] = tc
	return p.cfg.SetupCycles
}

// base returns the origin of a thread's sampling counter: zero for
// instruction counting (per-thread instruction counters start at zero),
// or the thread's start time for cycle counting (its clock starts at the
// phase boundary).
func (p *PMU) base(th exec.ThreadInfo) uint64 {
	if p.cfg.Mode == CountCycles {
		return th.Start
	}
	return 0
}

// Access implements exec.Probe: it advances the thread's sampling counter
// (instructions retired or cycles elapsed, per Mode) and delivers a
// sample if this access is tagged.
func (p *PMU) Access(a mem.Access, instrs uint64) uint64 {
	tc := p.counter(a.Thread)
	if tc == nil {
		// Thread not monitored (probe attached mid-run); skip.
		return 0
	}
	retired := instrs
	if p.cfg.Mode == CountCycles {
		// a.Time is the thread's cycle clock at issue; the access itself
		// spans Latency cycles, during which pending tags also fire.
		instrs = a.Time + uint64(a.Latency)
	}
	if instrs < tc.nextTag {
		return 0
	}
	// One or more tag points elapsed since the last memory access. Every
	// tag fires the trap handler ("for every 64K instructions, the trap
	// handler is notified once", §4.1), but only a tag hitting this
	// memory operation yields an address sample; tags that hit compute
	// instructions are discarded by the handler. In instruction mode the
	// tag must land exactly on this instruction's index; in cycle mode it
	// must land while the access is in flight (between issue and
	// completion).
	var charge uint64
	for tc.nextTag <= instrs {
		charge += p.cfg.HandlerCycles
		tagged := tc.nextTag == instrs
		if p.cfg.Mode == CountCycles {
			tagged = tc.nextTag > a.Time
		}
		if tagged {
			p.stats.Delivered++
			p.handler.Sample(a, retired)
		} else {
			p.stats.Untagged++
		}
		tc.nextTag += p.interval(tc)
	}
	return charge
}

// AccessPace implements exec.AccessPacer: Access is a no-op below the
// thread's next tag point — in instruction mode while the retired count
// stays under nextTag, in cycle mode while the access completes before
// it — and the early exit above changes no state, so the engine may skip
// the calls wholesale.
func (p *PMU) AccessPace(id mem.ThreadID) (instrPace, cyclePace uint64) {
	tc := p.counter(id)
	if tc == nil {
		return ^uint64(0), ^uint64(0)
	}
	if p.cfg.Mode == CountCycles {
		return ^uint64(0), tc.nextTag
	}
	return tc.nextTag, ^uint64(0)
}

// counter returns the sampling state for a thread, or nil when the thread
// is not monitored.
func (p *PMU) counter(id mem.ThreadID) *threadCounter {
	if int(id) >= len(p.threads) {
		return nil
	}
	return p.threads[id]
}

// interval returns the next sampling interval with deterministic jitter.
func (p *PMU) interval(tc *threadCounter) uint64 {
	if p.cfg.Jitter == 0 {
		return p.cfg.Period
	}
	tc.rng = splitmix(tc.rng)
	j := tc.rng % (2*p.cfg.Jitter + 1)
	return p.cfg.Period - p.cfg.Jitter + j
}

// splitmix is the SplitMix64 mixing function, used for cheap deterministic
// per-thread randomness.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
