package pmu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/mem"
)

// collect gathers all delivered samples.
type collect struct {
	samples []mem.Access
}

func (c *collect) Sample(a mem.Access, instrs uint64) { c.samples = append(c.samples, a) }

// runLoop executes a single-thread loop of nIter iterations, each with one
// store and computeN compute instructions, under a PMU with the given
// config, and returns the samples and the result.
func runLoop(cfg Config, nIter, computeN int) (*collect, *PMU, exec.Result) {
	sink := &collect{}
	p := New(cfg, sink)
	sim := cache.New(cache.DefaultConfig(2))
	e := exec.New(sim, exec.Config{OpBuffer: 1024}, p)
	res := e.Run(exec.Program{
		Name: "loop",
		Phases: []exec.Phase{
			exec.SerialPhase("s", func(t *exec.T) {
				for i := 0; i < nIter; i++ {
					t.Store(mem.Addr(0x1000 + (i%64)*4))
					t.Compute(computeN)
				}
			}),
		},
	})
	return sink, p, res
}

func TestSamplingRateApproximatesPeriod(t *testing.T) {
	cfg := Config{Period: 1000, Jitter: 50, HandlerCycles: 0, SetupCycles: 0}
	const iters = 100000
	sink, p, _ := runLoop(cfg, iters, 9) // 10 instructions per iteration
	totalInstrs := uint64(iters * 10)
	tags := p.Stats().Delivered + p.Stats().Untagged
	wantTags := totalInstrs / cfg.Period
	if tags < wantTags*9/10 || tags > wantTags*11/10 {
		t.Errorf("tag points = %d, want ~%d", tags, wantTags)
	}
	// Memory instructions are 1/10 of the stream, so ~1/10 of tags deliver.
	wantSamples := wantTags / 10
	got := uint64(len(sink.samples))
	if got < wantSamples/2 || got > wantSamples*2 {
		t.Errorf("delivered samples = %d, want ~%d", got, wantSamples)
	}
}

func TestAllMemoryStreamSamplesEveryTag(t *testing.T) {
	// With no compute instructions, every tag lands on a memory access.
	cfg := Config{Period: 100, Jitter: 0, HandlerCycles: 0, SetupCycles: 0}
	sink, p, _ := runLoop(cfg, 10000, 0)
	st := p.Stats()
	if st.Untagged != 0 {
		t.Errorf("untagged = %d, want 0 for a pure-memory stream", st.Untagged)
	}
	if len(sink.samples) == 0 || uint64(len(sink.samples)) != st.Delivered {
		t.Errorf("samples = %d, delivered = %d", len(sink.samples), st.Delivered)
	}
	want := uint64(10000 / 100)
	if st.Delivered != want {
		t.Errorf("delivered = %d, want %d", st.Delivered, want)
	}
}

func TestSamplePayload(t *testing.T) {
	cfg := Config{Period: 7, Jitter: 0}
	sink, _, _ := runLoop(cfg, 1000, 0)
	if len(sink.samples) == 0 {
		t.Fatal("no samples delivered")
	}
	for _, s := range sink.samples {
		if s.Thread != mem.MainThread {
			t.Fatalf("sample thread = %d, want main", s.Thread)
		}
		if s.Kind != mem.Write {
			t.Fatalf("sample kind = %v, want write", s.Kind)
		}
		if s.Latency == 0 {
			t.Fatal("sample without latency")
		}
		if s.Addr < 0x1000 || s.Addr >= 0x1000+64*4 {
			t.Fatalf("sample addr %v outside accessed range", s.Addr)
		}
	}
}

func TestHandlerCostCharged(t *testing.T) {
	base := Config{Period: 100, Jitter: 0, HandlerCycles: 0, SetupCycles: 0}
	_, _, cheap := runLoop(base, 5000, 0)
	costly := base
	costly.HandlerCycles = 500
	_, p, expensive := runLoop(costly, 5000, 0)
	tags := p.Stats().Delivered + p.Stats().Untagged
	wantExtra := tags * costly.HandlerCycles
	gotExtra := expensive.TotalCycles - cheap.TotalCycles
	if gotExtra != wantExtra {
		t.Errorf("handler overhead = %d cycles, want %d", gotExtra, wantExtra)
	}
}

func TestSetupCostCharged(t *testing.T) {
	sink := &collect{}
	cfg := Config{Period: 1 << 20, SetupCycles: 9999}
	p := New(cfg, sink)
	sim := cache.New(cache.DefaultConfig(4))
	e := exec.New(sim, exec.Config{OpBuffer: 64}, p)
	noop := func(t *exec.T) { t.Compute(10) }
	res := e.Run(exec.Program{
		Name:   "setup",
		Phases: []exec.Phase{exec.ParallelPhase("p", noop, noop, noop)},
	})
	if p.Stats().ThreadsMonitored != 3 {
		t.Errorf("ThreadsMonitored = %d, want 3", p.Stats().ThreadsMonitored)
	}
	// Each thread's runtime includes the setup charge.
	for _, th := range res.Threads {
		if th.Runtime() < cfg.SetupCycles {
			t.Errorf("thread %d runtime %d < setup cost %d", th.ID, th.Runtime(), cfg.SetupCycles)
		}
	}
}

func TestJitterAvoidsAliasing(t *testing.T) {
	// A loop whose instruction count divides the period would, without
	// jitter, sample the same site forever. The body alternates two
	// addresses; with jitter both must eventually be sampled.
	sink := &collect{}
	cfg := Config{Period: 64, Jitter: 8}
	p := New(cfg, sink)
	sim := cache.New(cache.DefaultConfig(2))
	e := exec.New(sim, exec.Config{OpBuffer: 1024}, p)
	e.Run(exec.Program{
		Name: "alias",
		Phases: []exec.Phase{
			exec.SerialPhase("s", func(t *exec.T) {
				for i := 0; i < 50000; i++ {
					t.Store(0x2000)
					t.Compute(30)
					t.Store(0x2004)
					t.Compute(32) // 64 instructions per iteration
				}
			}),
		},
	})
	addrs := map[mem.Addr]int{}
	for _, s := range sink.samples {
		addrs[s.Addr]++
	}
	if len(addrs) != 2 {
		t.Fatalf("sampled %d distinct addresses, want 2 (got %v)", len(addrs), addrs)
	}
	if addrs[0x2000] == 0 || addrs[0x2004] == 0 {
		t.Errorf("aliased sampling: %v", addrs)
	}
}

func TestPerThreadStaggering(t *testing.T) {
	// Threads with identical bodies must not sample in lockstep; their
	// first tag points differ.
	sink := &collect{}
	cfg := Config{Period: 1000, Jitter: 0}
	p := New(cfg, sink)
	sim := cache.New(cache.DefaultConfig(8))
	e := exec.New(sim, exec.Config{OpBuffer: 1024}, p)
	body := func(t *exec.T) {
		for i := 0; i < 20000; i++ {
			t.Store(mem.Addr(0x3000 + uint64(t.ID())*0x1000))
		}
	}
	e.Run(exec.Program{
		Name:   "stagger",
		Phases: []exec.Phase{exec.ParallelPhase("p", body, body, body, body)},
	})
	first := map[mem.ThreadID]mem.Addr{}
	order := map[mem.ThreadID]int{}
	for i, s := range sink.samples {
		if _, ok := first[s.Thread]; !ok {
			first[s.Thread] = s.Addr
			order[s.Thread] = i
		}
	}
	if len(first) != 4 {
		t.Fatalf("samples from %d threads, want 4", len(first))
	}
}

func TestDeterministicSampling(t *testing.T) {
	run := func() []mem.Access {
		sink, _, _ := runLoop(Config{Period: 333, Jitter: 31}, 30000, 3)
		return sink.samples
	}
	s1, s2 := run(), run()
	if len(s1) != len(s2) {
		t.Fatalf("sample counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestProgramStartResets(t *testing.T) {
	sink := &collect{}
	p := New(Config{Period: 50}, sink)
	sim := cache.New(cache.DefaultConfig(2))
	e := exec.New(sim, exec.Config{OpBuffer: 64}, p)
	prog := exec.Program{
		Name: "reset",
		Phases: []exec.Phase{
			exec.SerialPhase("s", func(t *exec.T) {
				for i := 0; i < 1000; i++ {
					t.Store(0x4000)
				}
			}),
		},
	}
	e.Run(prog)
	n1 := p.Stats().Delivered
	e.Run(prog)
	n2 := p.Stats().Delivered
	if n1 == 0 || n1 != n2 {
		t.Errorf("stats not reset between runs: %d then %d", n1, n2)
	}
}

func TestZeroPeriodDefaults(t *testing.T) {
	p := New(Config{}, &collect{})
	if p.cfg.Period != DefaultPeriod {
		t.Errorf("zero period not defaulted: %d", p.cfg.Period)
	}
}
