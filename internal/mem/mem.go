// Package mem defines the base memory-model types shared by every layer of
// the Cheetah reproduction: virtual addresses, cache-line and word
// arithmetic, and memory-access records.
//
// The simulated machine uses a flat 64-bit virtual address space. Cache
// lines are 64 bytes, matching the experimental machine in the paper
// (§4.2.2 discusses streamcluster assuming 32-byte lines while the real
// machine uses larger ones). Words are 4 bytes, the granularity at which
// Cheetah distinguishes true sharing from false sharing (§2.4).
package mem

import "fmt"

const (
	// LineSize is the size of a cache line in bytes.
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// WordSize is the tracking granularity for true/false sharing
	// discrimination, in bytes ("word-based (four byte) memory accesses",
	// paper §2.4).
	WordSize = 4
	// WordShift is log2(WordSize).
	WordShift = 2
	// WordsPerLine is the number of 4-byte words in a cache line.
	WordsPerLine = LineSize / WordSize
)

// Addr is a virtual address in the simulated address space.
type Addr uint64

// Line returns the cache-line index containing a.
func (a Addr) Line() uint64 { return uint64(a) >> LineShift }

// LineBase returns the address of the first byte of a's cache line.
func (a Addr) LineBase() Addr { return a &^ (LineSize - 1) }

// LineOffset returns a's byte offset within its cache line.
func (a Addr) LineOffset() int { return int(a & (LineSize - 1)) }

// Word returns the global 4-byte-word index containing a.
func (a Addr) Word() uint64 { return uint64(a) >> WordShift }

// WordInLine returns the index of a's word within its cache line (0..15).
func (a Addr) WordInLine() int { return int(a&(LineSize-1)) >> WordShift }

// Add returns the address offset by n bytes.
func (a Addr) Add(n int) Addr { return a + Addr(n) }

// String formats the address in hexadecimal, as in the paper's report
// output (Figure 5).
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// LineAddr returns the base address of cache line index line.
func LineAddr(line uint64) Addr { return Addr(line << LineShift) }

// ThreadID identifies a simulated thread. The main thread is 0; threads
// created in parallel phases receive consecutive positive ids.
type ThreadID int32

// MainThread is the id of the initial (serial-phase) thread.
const MainThread ThreadID = 0

// AccessKind distinguishes memory reads from writes.
type AccessKind uint8

const (
	// Read is a memory load.
	Read AccessKind = iota
	// Write is a memory store.
	Write
)

// IsWrite reports whether the access kind is a store.
func (k AccessKind) IsWrite() bool { return k == Write }

func (k AccessKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Region classifies an address by segment, mirroring the paper's driver
// module which "filters out memory accesses associated with heap or
// globals" for the detector and drops the rest (kernel, libraries, stack).
type Region uint8

const (
	// RegionOther covers addresses the profiler ignores (kernel,
	// libraries, unmapped).
	RegionOther Region = iota
	// RegionHeap covers the simulated application heap.
	RegionHeap
	// RegionGlobal covers registered global variables.
	RegionGlobal
	// RegionStack covers thread stacks; Cheetah "does not monitor stack
	// variables" (§2.4).
	RegionStack
)

func (r Region) String() string {
	switch r {
	case RegionHeap:
		return "heap"
	case RegionGlobal:
		return "global"
	case RegionStack:
		return "stack"
	default:
		return "other"
	}
}

// Access is one memory access as observed by the machine: who touched
// which address, how, and — once the cache model has processed it — at what
// latency. It is the unit flowing through probes and, after sampling,
// through the profiler.
type Access struct {
	// Addr is the accessed virtual address.
	Addr Addr
	// Thread is the accessing thread.
	Thread ThreadID
	// Kind is Read or Write.
	Kind AccessKind
	// Size is the access width in bytes (typically 4 or 8).
	Size uint8
	// Latency is the access cost in cycles, filled in by the cache
	// simulator. This is the channel the PMU exposes and that Cheetah's
	// assessment consumes (paper Observation 2).
	Latency uint32
	// Time is the thread-local virtual timestamp (cycles since engine
	// start) at which the access was issued.
	Time uint64
}
