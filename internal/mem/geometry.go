package mem

import "fmt"

// Geometry describes a cache-line layout: the line size in bytes plus the
// derived shift and word count the hot paths need. The package-level
// LineSize/LineShift/WordsPerLine constants describe the canonical 64-byte
// machine and remain the right tool for program layout (struct padding,
// symbol alignment, trace synthesis); Geometry is for the machine-model
// layers — shadow memory, the cache simulator, the detector — which must
// honor whatever line size the configured machine.Model declares. The
// word size is fixed at 4 bytes regardless of geometry: it is Cheetah's
// true-vs-false-sharing discrimination granularity (paper §2.4), not a
// hardware property.
type Geometry struct {
	// LineSize is the cache-line size in bytes (a power of two >= WordSize).
	LineSize int
	// LineShift is log2(LineSize).
	LineShift uint
}

// MaxLineSize bounds configurable line sizes; 4 KiB is already an entire
// small page per line.
const MaxLineSize = 4096

// DefaultGeometry returns the canonical 64-byte line geometry of the
// paper's evaluation machine.
func DefaultGeometry() Geometry {
	return Geometry{LineSize: LineSize, LineShift: LineShift}
}

// NewGeometry builds a Geometry for the given line size, which must be a
// power of two in [WordSize, MaxLineSize].
func NewGeometry(lineSize int) (Geometry, error) {
	if lineSize < WordSize || lineSize > MaxLineSize || lineSize&(lineSize-1) != 0 {
		return Geometry{}, fmt.Errorf("mem: line size %d not a power of two in [%d, %d]", lineSize, WordSize, MaxLineSize)
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	return Geometry{LineSize: lineSize, LineShift: shift}, nil
}

// OrDefault returns g, or the canonical 64-byte geometry when g is the
// zero value, so structs can embed a Geometry without forcing every
// constructor call site to fill it in.
func (g Geometry) OrDefault() Geometry {
	if g.LineSize == 0 {
		return DefaultGeometry()
	}
	return g
}

// WordsPerLine returns the number of 4-byte tracking words in a line.
func (g Geometry) WordsPerLine() int { return g.LineSize / WordSize }

// Line returns the cache-line index containing a under this geometry.
func (g Geometry) Line(a Addr) uint64 { return uint64(a) >> g.LineShift }

// LineAddr returns the base address of cache line index line.
func (g Geometry) LineAddr(line uint64) Addr { return Addr(line << g.LineShift) }

// LineBase returns the address of the first byte of a's cache line.
func (g Geometry) LineBase(a Addr) Addr { return a &^ Addr(g.LineSize-1) }

// LineOffset returns a's byte offset within its cache line.
func (g Geometry) LineOffset(a Addr) int { return int(a) & (g.LineSize - 1) }

// WordInLine returns the index of a's word within its cache line.
func (g Geometry) WordInLine(a Addr) int { return (int(a) & (g.LineSize - 1)) >> WordShift }
