package mem

import (
	"testing"
	"testing/quick"
)

func TestLineMath(t *testing.T) {
	cases := []struct {
		addr     Addr
		line     uint64
		base     Addr
		offset   int
		wordIn   int
		wordGlob uint64
	}{
		{0, 0, 0, 0, 0, 0},
		{1, 0, 0, 1, 0, 0},
		{3, 0, 0, 3, 0, 0},
		{4, 0, 0, 4, 1, 1},
		{63, 0, 0, 63, 15, 15},
		{64, 1, 64, 0, 0, 16},
		{65, 1, 64, 1, 0, 16},
		{127, 1, 64, 63, 15, 31},
		{128, 2, 128, 0, 0, 32},
		{0x400004b8, 0x400004b8 >> 6, 0x40000480, 0x38, 14, 0x400004b8 >> 2},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("Addr(%d).Line() = %d, want %d", c.addr, got, c.line)
		}
		if got := c.addr.LineBase(); got != c.base {
			t.Errorf("Addr(%d).LineBase() = %d, want %d", c.addr, got, c.base)
		}
		if got := c.addr.LineOffset(); got != c.offset {
			t.Errorf("Addr(%d).LineOffset() = %d, want %d", c.addr, got, c.offset)
		}
		if got := c.addr.WordInLine(); got != c.wordIn {
			t.Errorf("Addr(%d).WordInLine() = %d, want %d", c.addr, got, c.wordIn)
		}
		if got := c.addr.Word(); got != c.wordGlob {
			t.Errorf("Addr(%d).Word() = %d, want %d", c.addr, got, c.wordGlob)
		}
	}
}

func TestLineAddrRoundTrip(t *testing.T) {
	f := func(line uint32) bool {
		a := LineAddr(uint64(line))
		return a.Line() == uint64(line) && a.LineOffset() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrDecomposition(t *testing.T) {
	// Every address is exactly reconstructible from (line, offset), and the
	// word-in-line index always falls in [0, WordsPerLine).
	f := func(a Addr) bool {
		rebuilt := LineAddr(a.Line()).Add(a.LineOffset())
		w := a.WordInLine()
		return rebuilt == a && w >= 0 && w < WordsPerLine
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordConsistency(t *testing.T) {
	// Global word index and (line, word-in-line) must agree.
	f := func(a Addr) bool {
		return a.Word() == a.Line()*WordsPerLine+uint64(a.WordInLine())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSameLineSameWordRelation(t *testing.T) {
	// Two addresses within the same 4-byte word are always within the same
	// cache line.
	f := func(a Addr, delta uint8) bool {
		b := a.LineBase().Add(int(delta) % LineSize)
		if a.Word() == b.Word() && a.Line() != b.Line() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Errorf("unexpected AccessKind strings: %q %q", Read, Write)
	}
	if Read.IsWrite() {
		t.Error("Read.IsWrite() = true")
	}
	if !Write.IsWrite() {
		t.Error("Write.IsWrite() = false")
	}
}

func TestRegionString(t *testing.T) {
	want := map[Region]string{
		RegionHeap:   "heap",
		RegionGlobal: "global",
		RegionStack:  "stack",
		RegionOther:  "other",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Region(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestAddrString(t *testing.T) {
	if got := Addr(0x400004b8).String(); got != "0x400004b8" {
		t.Errorf("Addr.String() = %q, want %q", got, "0x400004b8")
	}
}

func TestConstantsConsistent(t *testing.T) {
	if 1<<LineShift != LineSize {
		t.Errorf("LineShift %d inconsistent with LineSize %d", LineShift, LineSize)
	}
	if 1<<WordShift != WordSize {
		t.Errorf("WordShift %d inconsistent with WordSize %d", WordShift, WordSize)
	}
	if WordsPerLine*WordSize != LineSize {
		t.Errorf("WordsPerLine %d inconsistent", WordsPerLine)
	}
}
