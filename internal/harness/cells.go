package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/workload"
)

// This file is the harness's sharding surface: everything a
// multi-process sweep coordinator (internal/sweep) needs to plan, farm
// out and merge an evaluation. A Cell is the portable form of a cellKey,
// a CellResult the portable form of a cellOut; EnumerateCells plans a
// sweep without simulating anything, RunCell executes one cell in a
// worker process, and Runner.Preload injects finished results so
// RunAllWith reassembles the exact rows and reports the in-process
// runner would have produced — byte-identical, because every payload
// field is plain data that survives a JSON round trip exactly.

// Cell kind names, the wire form of cellKind.
const (
	KindNative   = "native"
	KindProfiled = "profiled"
	KindPredator = "predator"
	KindSheriff  = "sheriff"
	KindRule     = "rule"
)

// Cell identifies one experiment cell in portable form. It carries every
// input the simulated outcome depends on, so equal Cells are
// interchangeable across processes and machines.
type Cell struct {
	Kind     string     `json:"kind"`
	Workload string     `json:"workload"`
	Threads  int        `json:"threads"`
	Cores    int        `json:"cores"`
	Scale    float64    `json:"scale"`
	Fixed    bool       `json:"fixed,omitempty"`
	PMU      pmu.Config `json:"pmu"`
	// Sched is the engine scheduler the cell runs under; empty means the
	// default sorted scheduler (and is the canonical spelling for it, so
	// default-scheduler cells keep scheduler-free IDs and cache entries).
	Sched string `json:"sched,omitempty"`
	// Machine is the machine-model preset the cell simulates; empty means
	// the canonical opteron48 (and is the canonical spelling for it, so
	// default-machine cells keep machine-free IDs and cache entries).
	Machine string `json:"machine,omitempty"`
	// TraceHash is the sha256 of the trace file's content for `trace:`
	// pseudo-workloads (empty otherwise, or when the file is unreadable
	// at planning time). A trace cell's outcome depends on the file's
	// bytes, not its path, so the hash joins the identity: rewriting a
	// trace in place orphans its old cache entries instead of serving
	// stale results, and a worker whose copy of the file diverges from
	// the coordinator's refuses the cell instead of merging a mismatched
	// report.
	TraceHash string `json:"trace_hash,omitempty"`
}

// TraceContentHash returns the identity hash of a trace file's content
// (the value carried in Cell.TraceHash), or "" if the file is
// unreadable. The file is re-read on every call; callers that hash
// repeatedly memoize per path (Runner.traceHashFor), with the same
// lifetime as their cell memoization.
func TraceContentHash(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// traceHashFor derives the TraceHash identity component for a workload
// name: the content hash for trace pseudo-workloads, "" for everything
// else. Phase-ranged names hash the same underlying file — the range is
// already part of the workload name, so two shards of one trace share
// the hash but not the identity.
func traceHashFor(name string) string {
	if !workload.IsTraceName(name) {
		return ""
	}
	return TraceContentHash(workload.TracePath(name))
}

// canonSched canonicalizes a scheduler name for cell identity: the
// default sorted scheduler is spelled "" so that runs which don't care
// about the scheduler (the overwhelming majority) share one identity.
func canonSched(s string) string {
	if s == exec.SchedSorted {
		return ""
	}
	return s
}

// canonMachine canonicalizes a machine-preset name for cell identity: the
// canonical opteron48 is spelled "", keeping default-machine cells on
// their pre-machine-model IDs and cache entries.
func canonMachine(s string) string { return machine.Canon(s) }

// Bounds on Cell fields. Decoded cells come from worker streams and
// cache files — external input — so every field is range-checked rather
// than trusted.
const (
	maxCellThreads = 1 << 16
	maxCellCores   = 1 << 16
	maxCellScale   = 1 << 20
	maxCellName    = 4096
	maxPMUField    = 1 << 48
)

// Validate range-checks every field. It accepts exactly the cells
// EnumerateCells can produce (for any valid Config) and rejects
// everything a corrupt cache file or malicious worker stream could
// smuggle in.
func (c Cell) Validate() error {
	switch c.Kind {
	case KindNative, KindProfiled, KindPredator, KindSheriff, KindRule:
	default:
		return fmt.Errorf("harness: unknown cell kind %q", c.Kind)
	}
	if c.Workload == "" || len(c.Workload) > maxCellName {
		return fmt.Errorf("harness: cell workload name length %d out of range", len(c.Workload))
	}
	if c.Threads < 1 || c.Threads > maxCellThreads {
		return fmt.Errorf("harness: cell threads %d out of range", c.Threads)
	}
	if c.Cores < 1 || c.Cores > maxCellCores {
		return fmt.Errorf("harness: cell cores %d out of range", c.Cores)
	}
	if !(c.Scale > 0) || c.Scale > maxCellScale || math.IsInf(c.Scale, 0) {
		return fmt.Errorf("harness: cell scale %v out of range", c.Scale)
	}
	if c.PMU.Mode > pmu.CountCycles {
		return fmt.Errorf("harness: cell PMU mode %d out of range", c.PMU.Mode)
	}
	for _, f := range []struct {
		name string
		v    uint64
	}{
		{"period", c.PMU.Period},
		{"jitter", c.PMU.Jitter},
		{"handler cycles", c.PMU.HandlerCycles},
		{"setup cycles", c.PMU.SetupCycles},
	} {
		if f.v > maxPMUField {
			return fmt.Errorf("harness: cell PMU %s %d out of range", f.name, f.v)
		}
	}
	if !exec.ValidScheduler(c.Sched) {
		return fmt.Errorf("harness: unknown cell scheduler %q", c.Sched)
	}
	if _, ok := machine.Preset(c.Machine); !ok {
		return fmt.Errorf("harness: unknown cell machine %q", c.Machine)
	}
	if c.TraceHash != "" {
		if !workload.IsTraceName(c.Workload) {
			return fmt.Errorf("harness: cell %q is not a trace workload but carries a trace hash", c.Workload)
		}
		if len(c.TraceHash) != sha256.Size*2 {
			return fmt.Errorf("harness: cell trace hash length %d, want %d", len(c.TraceHash), sha256.Size*2)
		}
		if _, err := hex.DecodeString(c.TraceHash); err != nil {
			return fmt.Errorf("harness: cell trace hash is not hex: %v", err)
		}
	}
	return nil
}

// ID returns the cell's canonical string form: an injective encoding of
// every field, stable across processes. Sweep coordinators sort by it
// and content-address cache entries with its hash.
func (c Cell) ID() string {
	id := c.Kind + "|" + c.Workload +
		"|t" + strconv.Itoa(c.Threads) +
		"|c" + strconv.Itoa(c.Cores) +
		"|s" + strconv.FormatFloat(c.Scale, 'g', -1, 64) +
		"|f" + strconv.FormatBool(c.Fixed) +
		"|pmu" + strconv.FormatUint(c.PMU.Period, 10) +
		"," + strconv.Itoa(int(c.PMU.Mode)) +
		"," + strconv.FormatUint(c.PMU.Jitter, 10) +
		"," + strconv.FormatUint(c.PMU.HandlerCycles, 10) +
		"," + strconv.FormatUint(c.PMU.SetupCycles, 10)
	// Canonically-default (heap) cells keep their historical IDs, so
	// pre-scheduler result caches stay warm; likewise non-trace cells
	// (every registered workload) keep their pre-hash IDs.
	if s := canonSched(c.Sched); s != "" {
		id += "|d" + s
	}
	if m := canonMachine(c.Machine); m != "" {
		id += "|m" + m
	}
	if c.TraceHash != "" {
		id += "|th" + c.TraceHash
	}
	return id
}

// key converts to the runner's internal form. Valid by construction for
// cells from EnumerateCells; callers holding decoded cells must Validate
// first.
func (c Cell) key() cellKey {
	k := cellKey{
		workload:  c.Workload,
		threads:   c.Threads,
		cores:     c.Cores,
		scale:     c.Scale,
		fixed:     c.Fixed,
		pmu:       c.PMU,
		sched:     canonSched(c.Sched),
		machine:   canonMachine(c.Machine),
		traceHash: c.TraceHash,
	}
	switch c.Kind {
	case KindProfiled:
		k.kind = cellProfiled
	case KindPredator:
		k.kind = cellPredator
	case KindSheriff:
		k.kind = cellSheriff
	case KindRule:
		k.kind = cellRule
	default:
		k.kind = cellNative
	}
	return k
}

// cellOf converts an internal key to its portable form.
func cellOf(k cellKey) Cell {
	c := Cell{
		Workload:  k.workload,
		Threads:   k.threads,
		Cores:     k.cores,
		Scale:     k.scale,
		Fixed:     k.fixed,
		PMU:       k.pmu,
		Sched:     k.sched,
		Machine:   k.machine,
		TraceHash: k.traceHash,
	}
	switch k.kind {
	case cellProfiled:
		c.Kind = KindProfiled
	case cellPredator:
		c.Kind = KindPredator
	case cellSheriff:
		c.Kind = KindSheriff
	case cellRule:
		c.Kind = KindRule
	default:
		c.Kind = KindNative
	}
	return c
}

// CellResult is a finished cell's payload in portable form. Exactly one
// result group is populated per kind: Result for native runs, Result +
// Report for profiled, Result + Findings for the baselines, Rule for
// rule-ablation cells.
type CellResult struct {
	Result   exec.Result        `json:"result"`
	Report   *core.Report       `json:"report,omitempty"`
	Findings []baseline.Finding `json:"findings,omitempty"`
	Rule     *RuleRow           `json:"rule,omitempty"`
}

// Bounds on CellResult payloads: generous multiples of anything a real
// run produces, but small enough that a hostile cache file or worker
// stream cannot make the merge side amplify its input.
const (
	maxResultRecords   = 1 << 21
	maxReportInstances = 1 << 20
	maxInstanceLines   = 1 << 20
	maxLineWords       = 1 << 10
	maxWordAccesses    = 1 << 17
	maxStackFrames     = 64
	maxResultString    = 1 << 16
)

// Validate bounds every field of a decoded result. Like Cell.Validate it
// is the trust boundary for external input; it checks structural limits,
// not simulation semantics.
func (r *CellResult) Validate() error {
	if len(r.Result.Phases) > maxResultRecords || len(r.Result.Threads) > maxResultRecords {
		return fmt.Errorf("harness: result has %d phases / %d threads, limit %d",
			len(r.Result.Phases), len(r.Result.Threads), maxResultRecords)
	}
	for _, p := range r.Result.Phases {
		if len(p.Name) > maxResultString {
			return fmt.Errorf("harness: phase name length %d out of range", len(p.Name))
		}
	}
	if r.Report != nil {
		if err := validateReport(r.Report); err != nil {
			return err
		}
	}
	if len(r.Findings) > maxReportInstances {
		return fmt.Errorf("harness: %d findings, limit %d", len(r.Findings), maxReportInstances)
	}
	for _, f := range r.Findings {
		if len(f.Site) > maxResultString {
			return fmt.Errorf("harness: finding site length %d out of range", len(f.Site))
		}
	}
	if r.Rule != nil && len(r.Rule.App) > maxCellName {
		return fmt.Errorf("harness: rule app name length %d out of range", len(r.Rule.App))
	}
	return nil
}

func validateReport(rep *core.Report) error {
	if len(rep.App) > maxResultString {
		return fmt.Errorf("harness: report app name length %d out of range", len(rep.App))
	}
	if rep.Cores < 0 || rep.Cores > maxCellCores {
		return fmt.Errorf("harness: report cores %d out of range", rep.Cores)
	}
	if len(rep.Instances)+len(rep.Candidates) > maxReportInstances {
		return fmt.Errorf("harness: report has %d instances, limit %d",
			len(rep.Instances)+len(rep.Candidates), maxReportInstances)
	}
	for _, group := range [][]core.Instance{rep.Instances, rep.Candidates} {
		for i := range group {
			if err := validateInstance(&group[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateInstance(in *core.Instance) error {
	if len(in.Object.Name) > maxResultString {
		return fmt.Errorf("harness: object name length %d out of range", len(in.Object.Name))
	}
	if len(in.Object.Stack) > maxStackFrames {
		return fmt.Errorf("harness: %d stack frames, limit %d", len(in.Object.Stack), maxStackFrames)
	}
	for _, f := range in.Object.Stack {
		if len(f.File) > maxResultString || len(f.Func) > maxResultString {
			return fmt.Errorf("harness: stack frame string out of range")
		}
	}
	if len(in.Assessment.Threads) > maxResultRecords {
		return fmt.Errorf("harness: %d thread assessments, limit %d",
			len(in.Assessment.Threads), maxResultRecords)
	}
	if len(in.Lines) > maxInstanceLines {
		return fmt.Errorf("harness: %d line reports, limit %d", len(in.Lines), maxInstanceLines)
	}
	for _, l := range in.Lines {
		if len(l.Words) > maxLineWords {
			return fmt.Errorf("harness: %d word reports, limit %d", len(l.Words), maxLineWords)
		}
		for _, w := range l.Words {
			if len(w.Accesses) > maxWordAccesses {
				return fmt.Errorf("harness: %d word accesses, limit %d", len(w.Accesses), maxWordAccesses)
			}
		}
	}
	return nil
}

// EnumerateCells plans a RunAll sweep: the complete, deduplicated set of
// cells the sweep would execute under c, in a deterministic order
// (sorted by ID), without simulating anything. It drives the real
// experiment code against a runner whose execution hook is a stub, so
// the plan can never drift from what RunAllWith actually submits.
func EnumerateCells(c Config) []Cell {
	r := &Runner{
		sem: make(chan struct{}, runtime.GOMAXPROCS(0)),
		// The stub satisfies the experiments' row assembly (non-zero
		// runtime, non-nil report) while doing no work; the resulting
		// rows are discarded.
		run: func(cellKey) cellOut {
			return cellOut{res: exec.Result{TotalCycles: 1}, rep: &core.Report{}}
		},
		cells: make(map[cellKey]*cell),
	}
	RunAllWith(r, c)
	r.mu.Lock()
	cells := make([]Cell, 0, len(r.cells))
	for k := range r.cells {
		cells = append(cells, cellOf(k))
	}
	r.mu.Unlock()
	sort.Slice(cells, func(i, j int) bool { return cells[i].ID() < cells[j].ID() })
	return cells
}

// RunCell executes one cell to completion in this process — the worker
// side of a sharded sweep. Unknown workloads and workload construction
// panics (a trace: cell whose file is missing on this machine) are
// reported as errors, not crashes, so one bad cell cannot take down a
// worker serving others.
func RunCell(c Cell) (res CellResult, err error) {
	if err := c.Validate(); err != nil {
		return CellResult{}, err
	}
	if _, ok := workload.ByName(c.Workload); !ok {
		return CellResult{}, fmt.Errorf("harness: unknown workload %q", c.Workload)
	}
	// A trace cell's identity includes the coordinator's content hash;
	// if this machine's copy of the file differs (a divergent replica on
	// a remote shard, or the file was rewritten mid-sweep), running it
	// would merge a report for different data under the coordinator's
	// cell ID.
	if c.TraceHash != "" {
		if local := traceHashFor(c.Workload); local != c.TraceHash {
			return CellResult{}, fmt.Errorf("harness: cell %s: local trace content hash %.12s does not match the coordinator's %.12s",
				c.ID(), local, c.TraceHash)
		}
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("harness: cell %s panicked: %v", c.ID(), p)
		}
	}()
	out := runCell(c.key())
	res = CellResult{Result: out.res, Report: out.rep, Findings: out.findings}
	if c.Kind == KindRule {
		rule := out.rule
		res.Rule = &rule
	}
	return res, nil
}

// Preload hands the runner an already-finished cell (from a cache or a
// worker process). Experiments that subsequently request the cell get
// the preloaded payload instead of executing; cells nobody preloads
// still run locally, so a partial preload degrades to local execution
// rather than failing.
func (r *Runner) Preload(c Cell, res CellResult) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if err := res.Validate(); err != nil {
		return err
	}
	out := cellOut{res: res.Result, rep: res.Report, findings: res.Findings}
	if res.Rule != nil {
		out.rule = *res.Rule
	}
	k := c.key()
	done := make(chan struct{})
	close(done)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cells[k]; ok {
		return fmt.Errorf("harness: cell %s already present", c.ID())
	}
	r.useSeq++
	r.cells[k] = &cell{key: k, done: done, out: out, lastUse: r.useSeq}
	r.evictLocked()
	return nil
}
