package harness

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/workload"
)

// Fig1Row is one thread count of the Figure 1 experiment.
type Fig1Row struct {
	Threads int
	// Expectation is the linear-speedup runtime (single-thread runtime
	// divided by the thread count), in cycles.
	Expectation float64
	// Reality is the measured runtime with false sharing.
	Reality uint64
	// Fixed is the measured runtime with the padded layout.
	Fixed uint64
}

// Slowdown is Reality over Expectation — the paper reports ~13x at 8
// threads.
func (r Fig1Row) Slowdown() float64 { return float64(r.Reality) / r.Expectation }

// Figure1 reproduces the introduction's motivation experiment.
func Figure1(c Config) []Fig1Row { return runnerFor(c).figure1(c) }

func (r *Runner) figure1(c Config) []Fig1Row {
	c = c.withDefaults()
	axis := []int{1, 2, 4, 8}
	cfgAt := func(threads int) Config {
		return Config{Scale: c.Scale, Threads: threads, Cores: c.Cores}
	}
	// Submit every cell before waiting on any, so they fill the pool.
	single := r.native("figure1", cfgAt(1), false)
	type pair struct{ reality, fixed *cell }
	cells := make([]pair, len(axis))
	for i, threads := range axis {
		cells[i] = pair{
			reality: r.native("figure1", cfgAt(threads), false),
			fixed:   r.native("figure1", cfgAt(threads), true),
		}
	}
	base := single.wait().res.TotalCycles
	rows := make([]Fig1Row, 0, len(axis))
	for i, threads := range axis {
		rows = append(rows, Fig1Row{
			Threads:     threads,
			Expectation: float64(base) / float64(threads),
			Reality:     cells[i].reality.wait().res.TotalCycles,
			Fixed:       cells[i].fixed.wait().res.TotalCycles,
		})
	}
	return rows
}

// FormatFigure1 renders the Figure 1 rows.
func FormatFigure1(rows []Fig1Row) string {
	header := []string{"threads", "expectation(cyc)", "reality(cyc)", "fixed(cyc)", "reality/expectation"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.0f", r.Expectation),
			fmt.Sprintf("%d", r.Reality),
			fmt.Sprintf("%d", r.Fixed),
			fmt.Sprintf("%.1fx", r.Slowdown()),
		})
	}
	return "Figure 1: false sharing microbenchmark (expectation vs reality)\n" +
		renderTable(header, out)
}

// Fig4Row is one application of the overhead study.
type Fig4Row struct {
	App string
	// Native and Profiled are end-to-end runtimes in cycles.
	Native, Profiled uint64
	// Threads is the total number of threads the program created.
	Threads int
	// Samples is the number of address samples Cheetah accepted.
	Samples uint64
}

// Overhead is Profiled/Native - 1.
func (r Fig4Row) Overhead() float64 {
	return float64(r.Profiled)/float64(r.Native) - 1
}

// Figure4 measures Cheetah's runtime overhead on all 17 applications with
// the paper's 64K sampling period. Overhead is measured, not asserted:
// the PMU charges per-tag handler cycles and per-thread setup cycles to
// the monitored threads.
func Figure4(c Config) []Fig4Row { return runnerFor(c).figure4(c) }

func (r *Runner) figure4(c Config) []Fig4Row {
	c = c.withDefaults()
	c.PMU = OverheadPMU()
	type pair struct {
		w                *workload.Workload
		native, profiled *cell
	}
	var cells []pair
	for _, w := range workload.All() {
		if w.Suite == "micro" {
			continue
		}
		cells = append(cells, pair{
			w:        w,
			native:   r.native(w.Name, c, false),
			profiled: r.profiled(w.Name, c, false),
		})
	}
	rows := make([]Fig4Row, 0, len(cells))
	for _, p := range cells {
		prof := p.profiled.wait()
		rows = append(rows, Fig4Row{
			App:      p.w.Name,
			Native:   p.native.wait().res.TotalCycles,
			Profiled: prof.res.TotalCycles,
			Threads:  p.w.TotalThreads(c.Threads),
			Samples:  prof.rep.Samples,
		})
	}
	return rows
}

// AverageOverhead returns the mean overhead over rows, and the mean with
// the thread-heavy outliers (kmeans, x264) excluded — the paper reports
// ~7% and ~4% respectively.
func AverageOverhead(rows []Fig4Row) (all, excludingThreadHeavy float64) {
	var sum, sumEx float64
	nEx := 0
	for _, r := range rows {
		sum += r.Overhead()
		if r.App != "kmeans" && r.App != "x264" {
			sumEx += r.Overhead()
			nEx++
		}
	}
	return sum / float64(len(rows)), sumEx / float64(nEx)
}

// FormatFigure4 renders the overhead study.
func FormatFigure4(rows []Fig4Row) string {
	header := []string{"application", "threads", "native(cyc)", "cheetah(cyc)", "overhead", "samples"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%d", r.Native),
			fmt.Sprintf("%d", r.Profiled),
			pct(r.Overhead()),
			fmt.Sprintf("%d", r.Samples),
		})
	}
	avg, avgEx := AverageOverhead(rows)
	return "Figure 4: Cheetah runtime overhead (normalized to pthreads)\n" +
		renderTable(header, out) +
		fmt.Sprintf("AVERAGE overhead: %s (excluding kmeans/x264: %s)\n", pct(avg), pct(avgEx))
}

// Figure5 runs the named case-study application under Cheetah and returns
// its report (the paper shows linear_regression's).
func Figure5(app string, c Config) (*core.Report, string) {
	return runnerFor(c).figure5(app, c)
}

func (r *Runner) figure5(app string, c Config) (*core.Report, string) {
	c = c.withDefaults()
	rep := r.profiled(app, c, false).wait().rep
	text := rep.Format()
	if len(rep.Instances) > 0 {
		text += "\n" + rep.Instances[0].FormatWords()
	}
	return rep, text
}

// Fig7Row is one application of the missed-instances study.
type Fig7Row struct {
	App string
	// WithFS and NoFS are native runtimes of the broken and fixed
	// layouts.
	WithFS, NoFS uint64
	// CheetahReports and PredatorReports say whether each tool flags the
	// app's false sharing.
	CheetahReports  bool
	PredatorReports bool
}

// Improvement is the real speedup from fixing — below 0.2% in the paper.
func (r Fig7Row) Improvement() float64 {
	return float64(r.WithFS)/float64(r.NoFS) - 1
}

// Figure7 reproduces the §4.2.3 comparison: the false sharing instances
// Cheetah misses (relative to Predator) have negligible performance
// impact.
func Figure7(c Config) []Fig7Row { return runnerFor(c).figure7(c) }

func (r *Runner) figure7(c Config) []Fig7Row {
	c = c.withDefaults()
	apps := []string{"histogram", "reverse_index", "word_count"}
	type group struct {
		prof, pred, broken, fixed *cell
	}
	cells := make([]group, len(apps))
	for i, app := range apps {
		cells[i] = group{
			prof:   r.profiled(app, c, false),
			pred:   r.predator(app, c, false),
			broken: r.native(app, c, false),
			fixed:  r.native(app, c, true),
		}
	}
	rows := make([]Fig7Row, 0, len(apps))
	for i, app := range apps {
		w, _ := workload.ByName(app)
		rows = append(rows, Fig7Row{
			App:             app,
			WithFS:          cells[i].broken.wait().res.TotalCycles,
			NoFS:            cells[i].fixed.wait().res.TotalCycles,
			CheetahReports:  reportsSite(cells[i].prof.wait().rep, w.FSSite),
			PredatorReports: findingsContain(cells[i].pred.wait().findings, w.FSSite),
		})
	}
	return rows
}

// FormatFigure7 renders the missed-instances study.
func FormatFigure7(rows []Fig7Row) string {
	header := []string{"application", "with-FS(cyc)", "no-FS(cyc)", "impact", "cheetah", "predator"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.WithFS),
			fmt.Sprintf("%d", r.NoFS),
			fmt.Sprintf("%+.2f%%", r.Improvement()*100),
			reportMark(r.CheetahReports),
			reportMark(r.PredatorReports),
		})
	}
	return "Figure 7: false sharing missed by Cheetah has negligible impact\n" +
		renderTable(header, out)
}

func reportMark(b bool) string {
	if b {
		return "reported"
	}
	return "missed"
}

// Table1Row is one (application, threads) cell of the precision study.
type Table1Row struct {
	App     string
	Threads int
	// Predict is Cheetah's assessed improvement from the broken run.
	Predict float64
	// Real is the measured improvement: native broken / native fixed.
	Real float64
	// Detected reports whether Cheetah found the instance at all.
	Detected bool
}

// Diff is the paper's last column: positive when the prediction
// undershoots the real improvement.
func (r Table1Row) Diff() float64 { return (r.Real - r.Predict) / r.Real }

// AbsDiff is |Diff|; the paper's headline is < 10% everywhere.
func (r Table1Row) AbsDiff() float64 { return math.Abs(r.Diff()) }

// Table1 reproduces the assessment-precision study on linear_regression
// and streamcluster at 16, 8, 4 and 2 threads.
func Table1(c Config) []Table1Row { return runnerFor(c).table1(c) }

func (r *Runner) table1(c Config) []Table1Row {
	c = c.withDefaults()
	type group struct {
		app                 string
		threads             int
		broken, fixed, prof *cell
	}
	var cells []group
	for _, app := range []string{"linear_regression", "streamcluster"} {
		for _, threads := range []int{16, 8, 4, 2} {
			cc := Config{Scale: c.Scale, Threads: threads, Cores: c.Cores, PMU: c.PMU}
			cells = append(cells, group{
				app: app, threads: threads,
				broken: r.native(app, cc, false),
				fixed:  r.native(app, cc, true),
				prof:   r.profiled(app, cc, false),
			})
		}
	}
	rows := make([]Table1Row, 0, len(cells))
	for _, g := range cells {
		w, _ := workload.ByName(g.app)
		row := Table1Row{
			App:     g.app,
			Threads: g.threads,
			Real:    float64(g.broken.wait().res.TotalCycles) / float64(g.fixed.wait().res.TotalCycles),
		}
		if in := findInstance(g.prof.wait().rep, w.FSSite); in != nil {
			row.Detected = true
			row.Predict = in.Assessment.Improvement
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders the precision study in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	header := []string{"Application", "Threads(#)", "Predict", "Real", "Diff(%)"}
	var out [][]string
	for _, r := range rows {
		predict := "n/a"
		if r.Detected {
			predict = fmt.Sprintf("%.3fX", r.Predict)
		}
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.Threads),
			predict,
			fmt.Sprintf("%.3fX", r.Real),
			fmt.Sprintf("%+.1f", r.Diff()*100),
		})
	}
	return "Table 1: precision of assessment\n" + renderTable(header, out)
}

// findInstance returns the reported instance whose object matches the
// workload's known FS site (allocation file:line or global name).
func findInstance(rep *core.Report, site string) *core.Instance {
	for i := range rep.Instances {
		if instanceMatches(&rep.Instances[i], site) {
			return &rep.Instances[i]
		}
	}
	return nil
}

// reportsSite says whether the report's significant instances include the
// site.
func reportsSite(rep *core.Report, site string) bool {
	return findInstance(rep, site) != nil
}

func instanceMatches(in *core.Instance, site string) bool {
	if in.Object.Name == site {
		return true
	}
	for _, f := range in.Object.Stack {
		if fmt.Sprintf("%s:%d", f.File, f.Line) == site {
			return true
		}
	}
	return false
}

// findingsContain says whether a baseline's findings include a
// false sharing instance at the site.
func findingsContain(fs []baseline.Finding, site string) bool {
	for _, f := range fs {
		if f.FalseSharing && strings.HasPrefix(f.Site, site) {
			return true
		}
	}
	return false
}
