package harness

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/workload"
)

// Fig1Row is one thread count of the Figure 1 experiment.
type Fig1Row struct {
	Threads int
	// Expectation is the linear-speedup runtime (single-thread runtime
	// divided by the thread count), in cycles.
	Expectation float64
	// Reality is the measured runtime with false sharing.
	Reality uint64
	// Fixed is the measured runtime with the padded layout.
	Fixed uint64
}

// Slowdown is Reality over Expectation — the paper reports ~13x at 8
// threads.
func (r Fig1Row) Slowdown() float64 { return float64(r.Reality) / r.Expectation }

// Figure1 reproduces the introduction's motivation experiment.
func Figure1(c Config) []Fig1Row {
	c = c.withDefaults()
	single := runNative("figure1", Config{Scale: c.Scale, Threads: 1, Cores: c.Cores}, false)
	rows := make([]Fig1Row, 0, 4)
	for _, threads := range []int{1, 2, 4, 8} {
		cc := Config{Scale: c.Scale, Threads: threads, Cores: c.Cores}
		rows = append(rows, Fig1Row{
			Threads:     threads,
			Expectation: float64(single.TotalCycles) / float64(threads),
			Reality:     runNative("figure1", cc, false).TotalCycles,
			Fixed:       runNative("figure1", cc, true).TotalCycles,
		})
	}
	return rows
}

// FormatFigure1 renders the Figure 1 rows.
func FormatFigure1(rows []Fig1Row) string {
	header := []string{"threads", "expectation(cyc)", "reality(cyc)", "fixed(cyc)", "reality/expectation"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.0f", r.Expectation),
			fmt.Sprintf("%d", r.Reality),
			fmt.Sprintf("%d", r.Fixed),
			fmt.Sprintf("%.1fx", r.Slowdown()),
		})
	}
	return "Figure 1: false sharing microbenchmark (expectation vs reality)\n" +
		renderTable(header, out)
}

// Fig4Row is one application of the overhead study.
type Fig4Row struct {
	App string
	// Native and Profiled are end-to-end runtimes in cycles.
	Native, Profiled uint64
	// Threads is the total number of threads the program created.
	Threads int
	// Samples is the number of address samples Cheetah accepted.
	Samples uint64
}

// Overhead is Profiled/Native - 1.
func (r Fig4Row) Overhead() float64 {
	return float64(r.Profiled)/float64(r.Native) - 1
}

// Figure4 measures Cheetah's runtime overhead on all 17 applications with
// the paper's 64K sampling period. Overhead is measured, not asserted:
// the PMU charges per-tag handler cycles and per-thread setup cycles to
// the monitored threads.
func Figure4(c Config) []Fig4Row {
	c = c.withDefaults()
	c.PMU = OverheadPMU()
	var rows []Fig4Row
	for _, w := range workload.All() {
		if w.Suite == "micro" {
			continue
		}
		native := runNative(w.Name, c, false)
		rep, profiled := runProfiled(w.Name, c, false)
		rows = append(rows, Fig4Row{
			App:      w.Name,
			Native:   native.TotalCycles,
			Profiled: profiled.TotalCycles,
			Threads:  w.TotalThreads(c.Threads),
			Samples:  rep.Samples,
		})
	}
	return rows
}

// AverageOverhead returns the mean overhead over rows, and the mean with
// the thread-heavy outliers (kmeans, x264) excluded — the paper reports
// ~7% and ~4% respectively.
func AverageOverhead(rows []Fig4Row) (all, excludingThreadHeavy float64) {
	var sum, sumEx float64
	nEx := 0
	for _, r := range rows {
		sum += r.Overhead()
		if r.App != "kmeans" && r.App != "x264" {
			sumEx += r.Overhead()
			nEx++
		}
	}
	return sum / float64(len(rows)), sumEx / float64(nEx)
}

// FormatFigure4 renders the overhead study.
func FormatFigure4(rows []Fig4Row) string {
	header := []string{"application", "threads", "native(cyc)", "cheetah(cyc)", "overhead", "samples"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%d", r.Native),
			fmt.Sprintf("%d", r.Profiled),
			pct(r.Overhead()),
			fmt.Sprintf("%d", r.Samples),
		})
	}
	avg, avgEx := AverageOverhead(rows)
	return "Figure 4: Cheetah runtime overhead (normalized to pthreads)\n" +
		renderTable(header, out) +
		fmt.Sprintf("AVERAGE overhead: %s (excluding kmeans/x264: %s)\n", pct(avg), pct(avgEx))
}

// Figure5 runs the named case-study application under Cheetah and returns
// its report (the paper shows linear_regression's).
func Figure5(app string, c Config) (*core.Report, string) {
	c = c.withDefaults()
	rep, _ := runProfiled(app, c, false)
	text := rep.Format()
	if len(rep.Instances) > 0 {
		text += "\n" + rep.Instances[0].FormatWords()
	}
	return rep, text
}

// Fig7Row is one application of the missed-instances study.
type Fig7Row struct {
	App string
	// WithFS and NoFS are native runtimes of the broken and fixed
	// layouts.
	WithFS, NoFS uint64
	// CheetahReports and PredatorReports say whether each tool flags the
	// app's false sharing.
	CheetahReports  bool
	PredatorReports bool
}

// Improvement is the real speedup from fixing — below 0.2% in the paper.
func (r Fig7Row) Improvement() float64 {
	return float64(r.WithFS)/float64(r.NoFS) - 1
}

// Figure7 reproduces the §4.2.3 comparison: the false sharing instances
// Cheetah misses (relative to Predator) have negligible performance
// impact.
func Figure7(c Config) []Fig7Row {
	c = c.withDefaults()
	var rows []Fig7Row
	for _, app := range []string{"histogram", "reverse_index", "word_count"} {
		w, _ := workload.ByName(app)
		rep, _ := runProfiled(app, c, false)
		pred, _ := predatorFindings(app, c, false)
		rows = append(rows, Fig7Row{
			App:             app,
			WithFS:          runNative(app, c, false).TotalCycles,
			NoFS:            runNative(app, c, true).TotalCycles,
			CheetahReports:  reportsSite(rep, w.FSSite),
			PredatorReports: findingsContain(pred, w.FSSite),
		})
	}
	return rows
}

// FormatFigure7 renders the missed-instances study.
func FormatFigure7(rows []Fig7Row) string {
	header := []string{"application", "with-FS(cyc)", "no-FS(cyc)", "impact", "cheetah", "predator"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.WithFS),
			fmt.Sprintf("%d", r.NoFS),
			fmt.Sprintf("%+.2f%%", r.Improvement()*100),
			reportMark(r.CheetahReports),
			reportMark(r.PredatorReports),
		})
	}
	return "Figure 7: false sharing missed by Cheetah has negligible impact\n" +
		renderTable(header, out)
}

func reportMark(b bool) string {
	if b {
		return "reported"
	}
	return "missed"
}

// Table1Row is one (application, threads) cell of the precision study.
type Table1Row struct {
	App     string
	Threads int
	// Predict is Cheetah's assessed improvement from the broken run.
	Predict float64
	// Real is the measured improvement: native broken / native fixed.
	Real float64
	// Detected reports whether Cheetah found the instance at all.
	Detected bool
}

// Diff is the paper's last column: positive when the prediction
// undershoots the real improvement.
func (r Table1Row) Diff() float64 { return (r.Real - r.Predict) / r.Real }

// AbsDiff is |Diff|; the paper's headline is < 10% everywhere.
func (r Table1Row) AbsDiff() float64 { return math.Abs(r.Diff()) }

// Table1 reproduces the assessment-precision study on linear_regression
// and streamcluster at 16, 8, 4 and 2 threads.
func Table1(c Config) []Table1Row {
	c = c.withDefaults()
	var rows []Table1Row
	for _, app := range []string{"linear_regression", "streamcluster"} {
		w, _ := workload.ByName(app)
		for _, threads := range []int{16, 8, 4, 2} {
			cc := Config{Scale: c.Scale, Threads: threads, Cores: c.Cores, PMU: c.PMU}
			broken := runNative(app, cc, false)
			fixed := runNative(app, cc, true)
			rep, _ := runProfiled(app, cc, false)
			row := Table1Row{
				App:     app,
				Threads: threads,
				Real:    float64(broken.TotalCycles) / float64(fixed.TotalCycles),
			}
			if in := findInstance(rep, w.FSSite); in != nil {
				row.Detected = true
				row.Predict = in.Assessment.Improvement
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatTable1 renders the precision study in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	header := []string{"Application", "Threads(#)", "Predict", "Real", "Diff(%)"}
	var out [][]string
	for _, r := range rows {
		predict := "n/a"
		if r.Detected {
			predict = fmt.Sprintf("%.3fX", r.Predict)
		}
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.Threads),
			predict,
			fmt.Sprintf("%.3fX", r.Real),
			fmt.Sprintf("%+.1f", r.Diff()*100),
		})
	}
	return "Table 1: precision of assessment\n" + renderTable(header, out)
}

// findInstance returns the reported instance whose object matches the
// workload's known FS site (allocation file:line or global name).
func findInstance(rep *core.Report, site string) *core.Instance {
	for i := range rep.Instances {
		if instanceMatches(&rep.Instances[i], site) {
			return &rep.Instances[i]
		}
	}
	return nil
}

// reportsSite says whether the report's significant instances include the
// site.
func reportsSite(rep *core.Report, site string) bool {
	return findInstance(rep, site) != nil
}

func instanceMatches(in *core.Instance, site string) bool {
	if in.Object.Name == site {
		return true
	}
	for _, f := range in.Object.Stack {
		if fmt.Sprintf("%s:%d", f.File, f.Line) == site {
			return true
		}
	}
	return false
}

// findingsContain says whether a baseline's findings include a
// false sharing instance at the site.
func findingsContain(fs []baseline.Finding, site string) bool {
	for _, f := range fs {
		if f.FalseSharing && strings.HasPrefix(f.Site, site) {
			return true
		}
	}
	return false
}
