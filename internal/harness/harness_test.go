package harness

import (
	"strings"
	"testing"
)

// small is a scaled-down configuration keeping harness tests fast while
// preserving every experiment's qualitative outcome.
func small() Config { return Config{Scale: 0.4, Threads: 8} }

func TestFigure1ShowsSlowdown(t *testing.T) {
	t.Parallel()
	rows := Figure1(small())
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if rows[0].Threads != 1 || rows[3].Threads != 8 {
		t.Errorf("thread axis = %v", []int{rows[0].Threads, rows[3].Threads})
	}
	// Reality degrades monotonically relative to expectation, strongly at
	// 8 threads (paper: ~13x).
	if rows[3].Slowdown() < 5 {
		t.Errorf("8-thread slowdown = %.1fx, want >= 5x", rows[3].Slowdown())
	}
	if rows[0].Slowdown() > 1.1 {
		t.Errorf("1-thread slowdown = %.1fx, want ~1", rows[0].Slowdown())
	}
	// The fixed layout stays near the expectation.
	for _, r := range rows {
		if ratio := float64(r.Fixed) / r.Expectation; ratio > 1.5 {
			t.Errorf("threads=%d fixed/expectation = %.2f, want near 1", r.Threads, ratio)
		}
	}
	out := FormatFigure1(rows)
	if !strings.Contains(out, "reality/expectation") {
		t.Errorf("format output missing header:\n%s", out)
	}
}

func TestTable1PrecisionAtReducedScale(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rows := Table1(Config{Scale: 1, Threads: 16})
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if !r.Detected {
			t.Errorf("%s threads=%d: instance not detected", r.App, r.Threads)
			continue
		}
		// The paper's headline: |diff| < 10% on every cell.
		if r.AbsDiff() > 0.10 {
			t.Errorf("%s threads=%d: predict %.3f real %.3f diff %.1f%%, want < 10%%",
				r.App, r.Threads, r.Predict, r.Real, r.Diff()*100)
		}
	}
	// linear_regression's improvement grows with threads; streamcluster's
	// stays within a few percent of 1.
	var lr16, lr2 float64
	for _, r := range rows {
		if r.App == "linear_regression" {
			if r.Threads == 16 {
				lr16 = r.Real
			}
			if r.Threads == 2 {
				lr2 = r.Real
			}
		}
		if r.App == "streamcluster" && (r.Real < 1.0 || r.Real > 1.1) {
			t.Errorf("streamcluster real improvement %.3f outside (1.0, 1.1)", r.Real)
		}
	}
	if lr16 <= lr2 {
		t.Errorf("linear_regression improvement should grow with threads: 2t=%.2f 16t=%.2f", lr2, lr16)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Diff(%)") {
		t.Errorf("format output missing header:\n%s", out)
	}
}

func TestFigure4OverheadShape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("17-application sweep")
	}
	rows := Figure4(Config{Scale: 1, Threads: 16})
	if len(rows) != 17 {
		t.Fatalf("got %d applications, want 17", len(rows))
	}
	byApp := map[string]Fig4Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// The paper's shape: ~7% average; kmeans and x264 are thread-heavy
	// outliers above 20%; everything else stays under ~13%.
	avg, avgEx := AverageOverhead(rows)
	if avg < 0.03 || avg > 0.15 {
		t.Errorf("average overhead %.1f%%, want ~7%%", avg*100)
	}
	if avgEx > 0.10 {
		t.Errorf("average excluding outliers %.1f%%, want ~4%%", avgEx*100)
	}
	for _, outlier := range []string{"kmeans", "x264"} {
		if byApp[outlier].Overhead() < 0.15 {
			t.Errorf("%s overhead %.1f%%, want > 15%% (thread-heavy outlier)",
				outlier, byApp[outlier].Overhead()*100)
		}
	}
	for _, r := range rows {
		if r.App == "kmeans" || r.App == "x264" {
			continue
		}
		if r.Overhead() > 0.14 {
			t.Errorf("%s overhead %.1f%%, want < 14%%", r.App, r.Overhead()*100)
		}
	}
	if byApp["kmeans"].Threads != 224 || byApp["x264"].Threads != 1024 {
		t.Errorf("thread counts: kmeans=%d x264=%d, want 224 and 1024",
			byApp["kmeans"].Threads, byApp["x264"].Threads)
	}
	out := FormatFigure4(rows)
	if !strings.Contains(out, "AVERAGE overhead") {
		t.Errorf("format output missing average:\n%s", out)
	}
}

func TestFigure5Report(t *testing.T) {
	t.Parallel()
	rep, text := Figure5("linear_regression", Config{Scale: 1, Threads: 16})
	if len(rep.Instances) == 0 {
		t.Fatal("no instance in the case-study report")
	}
	for _, want := range []string{
		"Detecting false sharing at the object:",
		"linear_regression-pthread.c: 139",
		"totalPossibleImprovementRate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFigure7MissedInstancesAreInsignificant(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rows := Figure7(Config{Scale: 1, Threads: 16})
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.CheetahReports {
			t.Errorf("%s: Cheetah reported an instance the paper says it misses", r.App)
		}
		if !r.PredatorReports {
			t.Errorf("%s: Predator (full instrumentation) failed to find the minor FS", r.App)
		}
		// The point of Figure 7: the missed instances barely matter.
		if r.Improvement() > 0.01 {
			t.Errorf("%s: real impact %.2f%%, want < 1%%", r.App, r.Improvement()*100)
		}
	}
	out := FormatFigure7(rows)
	if !strings.Contains(out, "predator") {
		t.Errorf("format output missing columns:\n%s", out)
	}
}

func TestCompareToolMatrix(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multi-tool sweep")
	}
	rows := Compare(Config{Scale: 1, Threads: 16})
	byApp := map[string]CompareRow{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	lr := byApp["linear_regression"]
	if !lr.Cheetah || !lr.Predator {
		t.Errorf("linear_regression: cheetah=%v predator=%v, want both reported", lr.Cheetah, lr.Predator)
	}
	if lr.CheetahOverhead > 1.15 {
		t.Errorf("Cheetah overhead %.2fx on linear_regression, want light", lr.CheetahOverhead)
	}
	if lr.PredatorOverhead < 2 {
		t.Errorf("Predator overhead %.2fx, want heavy (paper ~6x)", lr.PredatorOverhead)
	}
	hist := byApp["histogram"]
	if hist.Cheetah {
		t.Error("histogram: Cheetah should miss the minor instance")
	}
	if !hist.Predator {
		t.Error("histogram: Predator should find the minor instance")
	}
	out := FormatCompare(rows)
	if !strings.Contains(out, "ground truth") {
		t.Errorf("format output missing header:\n%s", out)
	}
}

func TestPeriodAblationTradeoff(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("period sweep")
	}
	rows := PeriodAblation(Config{Scale: 1, Threads: 16})
	if len(rows) < 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Overhead decreases as the period grows; detection is eventually
	// lost at very sparse sampling.
	if rows[0].Overhead <= rows[len(rows)-1].Overhead {
		t.Errorf("overhead did not fall with sparser sampling: %.3f .. %.3f",
			rows[0].Overhead, rows[len(rows)-1].Overhead)
	}
	if !rows[0].Detected {
		t.Error("densest sampling failed to detect the instance")
	}
	if rows[len(rows)-1].Detected {
		t.Error("sparsest sampling (1M instructions) still detected; workload too FS-dense")
	}
	out := FormatPeriodAblation(rows)
	if !strings.Contains(out, "period(instr)") {
		t.Errorf("format output missing header:\n%s", out)
	}
}

func TestRuleAblationAgainstGroundTruth(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full-instrumentation sweep")
	}
	rows := RuleAblation(Config{Scale: 0.5, Threads: 16})
	for _, r := range rows {
		if r.App == "figure1" || r.App == "linear_regression" {
			if r.GroundTruth == 0 {
				t.Errorf("%s: no ground-truth invalidations", r.App)
			}
			if r.TwoEntry == 0 {
				t.Errorf("%s: two-entry rule counted nothing", r.App)
			}
			// The paper's assumptions overreport; wildly undercounting
			// would break detection.
			if r.TwoEntry < r.GroundTruth/2 {
				t.Errorf("%s: two-entry %d far below ground truth %d", r.App, r.TwoEntry, r.GroundTruth)
			}
		}
		if r.TwoEntryBytes != 16 {
			t.Errorf("two-entry bytes/line = %d", r.TwoEntryBytes)
		}
	}
	out := FormatRuleAblation(rows)
	if !strings.Contains(out, "ground truth") {
		t.Errorf("format output missing header:\n%s", out)
	}
}

func TestRenderTableAlignment(t *testing.T) {
	out := renderTable([]string{"a", "long-header"}, [][]string{{"xxxx", "y"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator length mismatch:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Threads != 16 || c.Cores != 48 {
		t.Errorf("defaults = %+v", c)
	}
	if c.PMU.Period == 0 {
		t.Error("PMU not defaulted")
	}
}
