package harness

import (
	"os"
	"path/filepath"
	"testing"

	cheetah "repro"
	"repro/internal/exec"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTraceWorkloadRunsAsCell: a recorded trace sweeps through the
// experiment runner as a `trace:<path>` pseudo-workload, and — because
// the cell's core count and PMU configuration match the recording — its
// profiled cell reproduces the recorded run's report byte for byte.
func TestTraceWorkloadRunsAsCell(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.04
	}
	c := Config{Scale: scale, Threads: 4, Cores: 8, Workers: 2, PMU: DetectionPMU()}.withDefaults()

	// Record linear_regression under the profiler with the cell's exact
	// configuration.
	w, _ := workload.ByName("linear_regression")
	sys := cheetah.New(cheetah.Config{Cores: c.Cores})
	prog := w.Build(sys, workload.Params{Threads: c.Threads, Scale: c.Scale})
	path := filepath.Join(t.TempDir(), "lr.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(trace.NewTextEncoder(f), sys.Heap(), sys.Globals())
	prof := sys.NewProfiler(cheetah.ProfileOptions{PMU: c.PMU})
	sys.RunWith(prog, append(prof.Probes(), exec.Probe(rec))...)
	if err := rec.Err(); err != nil {
		t.Fatalf("recording: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want := prof.Report().Format()

	// Sweep the trace through a private runner like any other cell.
	r := NewRunner(c.Workers)
	cell := r.profiled("trace:"+path, c, false)
	out := cell.wait()
	if out.rep == nil {
		t.Fatal("trace cell produced no report")
	}
	if got := out.rep.Format(); got != want {
		t.Errorf("trace cell report differs from recorded run\n--- recorded ---\n%s\n--- cell ---\n%s", want, got)
	}
	if r.CellsRun() != 1 {
		t.Errorf("CellsRun = %d, want 1", r.CellsRun())
	}
}
