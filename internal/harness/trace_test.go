package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	cheetah "repro"
	"repro/internal/exec"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTraceWorkloadRunsAsCell: a recorded trace sweeps through the
// experiment runner as a `trace:<path>` pseudo-workload, and — because
// the cell's core count and PMU configuration match the recording — its
// profiled cell reproduces the recorded run's report byte for byte.
func TestTraceWorkloadRunsAsCell(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.04
	}
	c := Config{Scale: scale, Threads: 4, Cores: 8, Workers: 2, PMU: DetectionPMU()}.withDefaults()

	// Record linear_regression under the profiler with the cell's exact
	// configuration.
	w, _ := workload.ByName("linear_regression")
	sys := cheetah.New(cheetah.Config{Cores: c.Cores})
	prog := w.Build(sys, workload.Params{Threads: c.Threads, Scale: c.Scale})
	path := filepath.Join(t.TempDir(), "lr.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(trace.NewTextEncoder(f), sys.Heap(), sys.Globals())
	prof := sys.NewProfiler(cheetah.ProfileOptions{PMU: c.PMU})
	sys.RunWith(prog, append(prof.Probes(), exec.Probe(rec))...)
	if err := rec.Err(); err != nil {
		t.Fatalf("recording: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want := prof.Report().Format()

	// Sweep the trace through a private runner like any other cell.
	r := NewRunner(c.Workers)
	cell := r.profiled("trace:"+path, c, false)
	out := cell.wait()
	if out.rep == nil {
		t.Fatal("trace cell produced no report")
	}
	if got := out.rep.Format(); got != want {
		t.Errorf("trace cell report differs from recorded run\n--- recorded ---\n%s\n--- cell ---\n%s", want, got)
	}
	if r.CellsRun() != 1 {
		t.Errorf("CellsRun = %d, want 1", r.CellsRun())
	}
}

// writeTrace records a tiny figure1 run to a trace file and returns the
// path.
func writeTrace(t *testing.T, dir, name string, scale float64) string {
	t.Helper()
	w, _ := workload.ByName("figure1")
	sys := cheetah.New(cheetah.Config{Cores: 4})
	prog := w.Build(sys, workload.Params{Threads: 2, Scale: scale})
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(trace.NewTextEncoder(f), sys.Heap(), sys.Globals())
	sys.RunWith(prog, exec.Probe(rec))
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceCellIdentityHashesContent: a trace cell's ID is keyed by the
// file's bytes, not just its path — rewriting the file in place yields a
// different cell ID (so sweep caches cannot serve stale results), and a
// registered workload's ID carries no hash (so existing caches stay
// warm).
func TestTraceCellIdentityHashesContent(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "a.trace", 0.02)

	cfg := Config{Scale: 0.02, Threads: 2, Cores: 4, Workers: 1}.withDefaults()
	cellFor := func() Cell {
		r := &Runner{sem: make(chan struct{}, 1), run: func(cellKey) cellOut { return cellOut{} }, cells: make(map[cellKey]*cell)}
		c := r.native("trace:"+path, cfg, false)
		return cellOf(c.key)
	}
	first := cellFor()
	if first.TraceHash == "" {
		t.Fatal("trace cell has no content hash")
	}
	if first.TraceHash != TraceContentHash(path) {
		t.Error("cell hash differs from TraceContentHash")
	}
	if want := "|th" + first.TraceHash; !strings.Contains(first.ID(), want) {
		t.Errorf("cell ID %q does not embed the content hash", first.ID())
	}
	if err := first.Validate(); err != nil {
		t.Errorf("hashed trace cell fails validation: %v", err)
	}

	// Rewrite the file in place with different content: same path, new
	// identity.
	if err := os.Rename(writeTrace(t, dir, "b.trace", 0.03), path); err != nil {
		t.Fatal(err)
	}
	second := cellFor()
	if second.TraceHash == first.TraceHash {
		t.Error("rewriting the trace did not change the cell hash")
	}
	if second.ID() == first.ID() {
		t.Error("rewriting the trace did not change the cell ID")
	}

	// Registered workloads carry no hash and keep their historical IDs.
	r := NewRunner(1)
	native := cellOf(r.native("figure1", cfg, false).key)
	if native.TraceHash != "" {
		t.Errorf("non-trace cell carries hash %q", native.TraceHash)
	}
	if strings.Contains(native.ID(), "|th") {
		t.Errorf("non-trace cell ID %q embeds a hash", native.ID())
	}
}

// TestTraceCellHashValidation: hashes are validated like every other
// external field, and RunCell refuses a cell whose local file content
// diverges from the coordinator's hash.
func TestTraceCellHashValidation(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "a.trace", 0.02)
	good := Cell{
		Kind: KindNative, Workload: "trace:" + path, Threads: 2, Cores: 4,
		Scale: 0.02, TraceHash: TraceContentHash(path),
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid hashed cell rejected: %v", err)
	}

	bad := good
	bad.Workload = "figure1"
	if err := bad.Validate(); err == nil {
		t.Error("non-trace cell with a hash passed validation")
	}
	bad = good
	bad.TraceHash = "short"
	if err := bad.Validate(); err == nil {
		t.Error("truncated hash passed validation")
	}
	bad = good
	bad.TraceHash = strings.Repeat("zz", 32)
	if err := bad.Validate(); err == nil {
		t.Error("non-hex hash passed validation")
	}

	// A worker whose file content diverges must refuse the cell.
	divergent := good
	divergent.TraceHash = TraceContentHash(writeTrace(t, dir, "other.trace", 0.03))
	if _, err := RunCell(divergent); err == nil || !strings.Contains(err.Error(), "content hash") {
		t.Errorf("RunCell on divergent trace content: err = %v, want content-hash mismatch", err)
	}
	if _, err := RunCell(good); err != nil {
		t.Errorf("RunCell on matching trace content failed: %v", err)
	}
}
