package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// This file is the throughput regression gate: CI runs a sweep, stamps
// a BenchEntry, and compares its accesses_per_sec against the committed
// BENCH_harness.json baseline. The gate is deliberately tolerant — CI
// hardware is shared and noisy — so it fails only on regressions past
// DefaultMaxRegression, and it skips (passes with a reason) when either
// side cannot produce a meaningful number rather than flaking.

// DefaultMaxRegression is the gate's tolerance: a sweep may run up to
// this fraction slower than the committed baseline before the gate
// fails. 20% comfortably exceeds shared-runner noise while still
// catching any real hot-path regression (the batched-engine work this
// gate protects was a >2× swing).
const DefaultMaxRegression = 0.20

// minGateWall is the shortest sweep wall time the gate trusts: below
// this, startup costs dominate and the throughput number is noise (a
// -short or tiny-scale sweep), so the gate skips instead of judging.
const minGateWall = 1.0 // seconds

// GateVerdict is the outcome of one gate check.
type GateVerdict struct {
	// OK is false only on a confirmed regression; skipped checks pass.
	OK bool
	// Skipped marks a check that could not compare meaningfully and
	// passed by default (unstamped baseline, unstable current number).
	Skipped bool
	// Reason is the human-readable one-line verdict for CI logs.
	Reason string
}

// LoadBenchBaseline reads and validates a committed bench trajectory
// entry (BENCH_harness.json). Any cheetah-bench schema version is
// accepted — older baselines simply lack fields — but a file that is
// not a bench entry at all is an error, not a silent pass: a gate
// pointed at the wrong file must say so.
func LoadBenchBaseline(path string) (BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchEntry{}, err
	}
	var e BenchEntry
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&e); err != nil {
		return BenchEntry{}, fmt.Errorf("harness: parsing bench baseline %s: %w", path, err)
	}
	if !strings.HasPrefix(e.Schema, "cheetah-bench/") {
		return BenchEntry{}, fmt.Errorf("harness: %s has schema %q, not a cheetah-bench entry", path, e.Schema)
	}
	return e, nil
}

// CheckBenchGate compares a freshly-measured entry against the
// committed baseline. maxRegression is the tolerated fractional
// slowdown (DefaultMaxRegression for CI). The check skips — passes
// with an explanatory reason — when the baseline carries no throughput
// stamp (pre-v6 schema) or the current sweep is too small or empty to
// yield a stable number.
func CheckBenchGate(baseline, current BenchEntry, maxRegression float64) GateVerdict {
	if baseline.AccessesPerSec <= 0 {
		return GateVerdict{OK: true, Skipped: true,
			Reason: fmt.Sprintf("skipped: baseline (%s) has no accesses_per_sec stamp", baseline.Schema)}
	}
	if current.Accesses == 0 || current.AccessesPerSec <= 0 {
		return GateVerdict{OK: true, Skipped: true,
			Reason: "skipped: sweep simulated no accesses (fully stubbed or empty run)"}
	}
	if current.WallSeconds < minGateWall {
		return GateVerdict{OK: true, Skipped: true,
			Reason: fmt.Sprintf("skipped: %.2fs sweep is too short for a stable throughput number (need >= %.0fs)",
				current.WallSeconds, minGateWall)}
	}
	ratio := current.AccessesPerSec / baseline.AccessesPerSec
	verdict := fmt.Sprintf("%.3gM accesses/sec vs baseline %.3gM (%+.1f%%)",
		current.AccessesPerSec/1e6, baseline.AccessesPerSec/1e6, 100*(ratio-1))
	if ratio < 1-maxRegression {
		return GateVerdict{OK: false,
			Reason: fmt.Sprintf("FAIL: %s exceeds the %.0f%% regression budget", verdict, 100*maxRegression)}
	}
	return GateVerdict{OK: true, Reason: "pass: " + verdict}
}
