package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
)

// RenderDetectionReport renders a profiled run's detection report in the
// exact form `cmd/cheetah` prints it: the formatted report, optional
// word-level detail and candidate listings, and the closing runtime
// line. The CLI and the cheetahd gateway both render through this one
// function, so a report fetched over HTTP is byte-identical to the CLI
// replay of the same trace — the gateway's headline invariant, enforced
// by handler tests and a CI cmp step.
func RenderDetectionReport(report *core.Report, res exec.Result, words, candidates bool) string {
	var b strings.Builder
	b.WriteString(report.Format())
	if words {
		for i := range report.Instances {
			b.WriteString("\n")
			b.WriteString(report.Instances[i].FormatWords())
		}
	}
	if candidates && len(report.Candidates) > 0 {
		fmt.Fprintf(&b, "\n%d further candidates (true sharing or below significance thresholds):\n",
			len(report.Candidates))
		for _, c := range report.Candidates {
			kind := "false sharing (insignificant)"
			if !c.FalseSharing {
				kind = "true sharing"
			}
			fmt.Fprintf(&b, "  %v..%v  %-30s invalidations %d\n", c.Object.Start, c.Object.End, kind, c.Invalidations)
		}
	}
	fmt.Fprintf(&b, "\nruntime %d cycles across %d phases\n", res.TotalCycles, len(res.Phases))
	return b.String()
}
