package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the Format* golden files")

// TestFormatGolden pins every table renderer's output byte-for-byte
// against checked-in golden files, over hand-built rows that exercise
// each column's formatting (percentages, hex quirks, n/a markers,
// reported/missed flags). Formatting drift then fails here, with a
// readable diff, before it fails the sharded-vs-serial cmp steps whose
// reports embed these tables. Regenerate with:
//
//	go test ./internal/harness -run TestFormatGolden -update
func TestFormatGolden(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		got  string
	}{
		{"figure1", FormatFigure1([]Fig1Row{
			{Threads: 1, Expectation: 128000, Reality: 128000, Fixed: 127500},
			{Threads: 2, Expectation: 64000, Reality: 301000, Fixed: 65000},
			{Threads: 8, Expectation: 16000, Reality: 208640, Fixed: 17200},
		})},
		{"figure4", FormatFigure4([]Fig4Row{
			{App: "blackscholes", Native: 1000000, Profiled: 1021000, Threads: 16, Samples: 412},
			{App: "kmeans", Native: 500000, Profiled: 650000, Threads: 801, Samples: 90},
			{App: "x264", Native: 700000, Profiled: 830500, Threads: 128, Samples: 141},
		})},
		{"figure7", FormatFigure7([]Fig7Row{
			{App: "histogram", WithFS: 100500, NoFS: 100300, CheetahReports: false, PredatorReports: true},
			{App: "word_count", WithFS: 99800, NoFS: 100000, CheetahReports: true, PredatorReports: true},
		})},
		{"table1", FormatTable1([]Table1Row{
			{App: "linear_regression", Threads: 16, Predict: 7.53, Real: 8.1, Detected: true},
			{App: "streamcluster", Threads: 2, Predict: 0, Real: 1.05, Detected: false},
		})},
		{"compare", FormatCompare([]CompareRow{
			{App: "linear_regression", FS: workload.SignificantFS, Site: "lr.c:42",
				Cheetah: true, Predator: true, Sheriff: false,
				CheetahOverhead: 1.07, PredatorOverhead: 6.1, SheriffOverhead: 11.2},
			{App: "histogram", FS: workload.MinorFS, Site: "hist.c:7",
				Cheetah: false, Predator: true, Sheriff: false,
				CheetahOverhead: 1.01, PredatorOverhead: 5.4, SheriffOverhead: 9.8},
			{App: "blackscholes", FS: workload.NoFS,
				CheetahOverhead: 1.005, PredatorOverhead: 4.9, SheriffOverhead: 8.75},
		})},
		{"period_ablation", FormatPeriodAblation([]PeriodRow{
			{Period: 1024, Samples: 9000, Detected: true, Predict: 7.9, Overhead: 0.34},
			{Period: 65536, Samples: 140, Detected: true, Predict: 7.1, Overhead: 0.07},
			{Period: 1048576, Samples: 9, Detected: false, Predict: 0, Overhead: 0.004},
		})},
		{"rule_ablation", FormatRuleAblation([]RuleRow{
			{App: "figure1", GroundTruth: 52000, TwoEntry: 51800, Ownership: 52000,
				TwoEntryBytes: 16, OwnershipBytes: 64},
			{App: "streamcluster", GroundTruth: 1200, TwoEntry: 1100, Ownership: 1190,
				TwoEntryBytes: 16, OwnershipBytes: 64},
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "format", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(tc.got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if tc.got != string(want) {
				t.Errorf("%s drifted from golden file:\n%s", tc.name, firstDiff(string(want), tc.got))
			}
		})
	}
}
