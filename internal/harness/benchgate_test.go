package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_harness.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBenchBaseline(t *testing.T) {
	path := writeBaseline(t, `{
  "schema": "cheetah-bench/v7",
  "git_commit": "abc",
  "accesses": 296584511,
  "accesses_per_sec": 8897535.35,
  "wall_seconds": 33.3
}
`)
	e, err := LoadBenchBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Schema != "cheetah-bench/v7" || e.AccessesPerSec != 8897535.35 {
		t.Fatalf("parsed entry mismatch: %+v", e)
	}
}

func TestLoadBenchBaselineRejectsNonBenchFiles(t *testing.T) {
	cases := map[string]string{
		"missing schema": `{"accesses_per_sec": 1}`,
		"wrong schema":   `{"schema": "cheetah-sweep-cache/v2"}`,
		"not json":       `accesses_per_sec: 1`,
	}
	for name, content := range cases {
		if _, err := LoadBenchBaseline(writeBaseline(t, content)); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
	if _, err := LoadBenchBaseline(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file: want error, got none")
	}
}

func TestCheckBenchGate(t *testing.T) {
	baseline := BenchEntry{Schema: BenchSchema, Accesses: 1000, AccessesPerSec: 1e6, WallSeconds: 30}
	entry := func(aps float64) BenchEntry {
		return BenchEntry{Schema: BenchSchema, Accesses: 1000, AccessesPerSec: aps, WallSeconds: 30}
	}

	tests := []struct {
		name     string
		current  BenchEntry
		ok, skip bool
	}{
		{"equal throughput passes", entry(1e6), true, false},
		{"improvement passes", entry(2.5e6), true, false},
		{"regression inside budget passes", entry(0.85e6), true, false},
		{"regression at the edge passes", entry(0.801e6), true, false},
		{"regression past budget fails", entry(0.79e6), false, false},
		{"collapse fails", entry(1e3), false, false},
		{"zero accesses skips", BenchEntry{AccessesPerSec: 1e6, WallSeconds: 30}, true, true},
		{"zero throughput skips", BenchEntry{Accesses: 1000, WallSeconds: 30}, true, true},
		{"too-short sweep skips",
			BenchEntry{Accesses: 1000, AccessesPerSec: 0.1e6, WallSeconds: 0.2}, true, true},
	}
	for _, tc := range tests {
		v := CheckBenchGate(baseline, tc.current, DefaultMaxRegression)
		if v.OK != tc.ok || v.Skipped != tc.skip {
			t.Errorf("%s: got OK=%v Skipped=%v (%s), want OK=%v Skipped=%v",
				tc.name, v.OK, v.Skipped, v.Reason, tc.ok, tc.skip)
		}
		if v.Reason == "" {
			t.Errorf("%s: verdict has no reason", tc.name)
		}
	}
}

// A pre-v6 baseline has no throughput stamp; the gate must skip rather
// than fail, so the gate can land before the baseline is regenerated.
func TestCheckBenchGateSkipsUnstampedBaseline(t *testing.T) {
	old := BenchEntry{Schema: "cheetah-bench/v5", WallSeconds: 30}
	cur := BenchEntry{Schema: BenchSchema, Accesses: 1000, AccessesPerSec: 1e6, WallSeconds: 30}
	v := CheckBenchGate(old, cur, DefaultMaxRegression)
	if !v.OK || !v.Skipped {
		t.Fatalf("got OK=%v Skipped=%v (%s), want skip", v.OK, v.Skipped, v.Reason)
	}
	if !strings.Contains(v.Reason, "v5") {
		t.Errorf("reason should name the unstamped schema: %s", v.Reason)
	}
}
