package harness

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"repro/internal/pmu"
)

// TestEnumerateCellsDeterministic: the sweep plan must be identical
// across calls (sorted, deduplicated) and cover every cell kind,
// because shard assignment and the result cache key off it.
func TestEnumerateCellsDeterministic(t *testing.T) {
	t.Parallel()
	c := Config{Scale: 0.05, Threads: 4}
	a := EnumerateCells(c)
	b := EnumerateCells(c)
	if len(a) == 0 {
		t.Fatal("empty enumeration")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two enumerations of the same config differ")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].ID() < a[j].ID() }) {
		t.Error("enumeration is not sorted by ID")
	}
	kinds := map[string]int{}
	ids := map[string]bool{}
	for _, cell := range a {
		if err := cell.Validate(); err != nil {
			t.Errorf("enumerated cell fails validation: %v", err)
		}
		if ids[cell.ID()] {
			t.Errorf("duplicate cell %s", cell.ID())
		}
		ids[cell.ID()] = true
		kinds[cell.Kind]++
	}
	for _, kind := range []string{KindNative, KindProfiled, KindPredator, KindSheriff, KindRule} {
		if kinds[kind] == 0 {
			t.Errorf("no %s cells in plan (kinds: %v)", kind, kinds)
		}
	}
}

// TestCellJSONRoundTrip: a cell must survive the wire exactly — its ID
// (the cache key input) has to be reproducible on the other side.
func TestCellJSONRoundTrip(t *testing.T) {
	t.Parallel()
	for _, cell := range EnumerateCells(Config{Scale: 0.05, Threads: 4}) {
		b, err := json.Marshal(cell)
		if err != nil {
			t.Fatal(err)
		}
		var back Cell
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != cell {
			t.Fatalf("cell changed across JSON round trip:\nbefore %+v\nafter  %+v", cell, back)
		}
		if back.ID() != cell.ID() {
			t.Fatalf("ID changed across round trip: %q vs %q", cell.ID(), back.ID())
		}
	}
}

// TestCellValidateBounds: decoded cells are external input; every field
// must be range-checked.
func TestCellValidateBounds(t *testing.T) {
	t.Parallel()
	good := Cell{Kind: KindNative, Workload: "figure1", Threads: 4, Cores: 48, Scale: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid cell rejected: %v", err)
	}
	bad := []Cell{
		{Kind: "exec-anything", Workload: "figure1", Threads: 4, Cores: 48, Scale: 0.1},
		{Kind: KindNative, Workload: "", Threads: 4, Cores: 48, Scale: 0.1},
		{Kind: KindNative, Workload: "figure1", Threads: 0, Cores: 48, Scale: 0.1},
		{Kind: KindNative, Workload: "figure1", Threads: 1 << 20, Cores: 48, Scale: 0.1},
		{Kind: KindNative, Workload: "figure1", Threads: 4, Cores: -1, Scale: 0.1},
		{Kind: KindNative, Workload: "figure1", Threads: 4, Cores: 48, Scale: 0},
		{Kind: KindNative, Workload: "figure1", Threads: 4, Cores: 48, Scale: -3},
		{Kind: KindNative, Workload: "figure1", Threads: 4, Cores: 48, Scale: 1e30},
		{Kind: KindProfiled, Workload: "figure1", Threads: 4, Cores: 48, Scale: 0.1,
			PMU: pmu.Config{Period: 1 << 60}},
		{Kind: KindProfiled, Workload: "figure1", Threads: 4, Cores: 48, Scale: 0.1,
			PMU: pmu.Config{Mode: 7}},
	}
	for _, cell := range bad {
		if err := cell.Validate(); err == nil {
			t.Errorf("invalid cell accepted: %+v", cell)
		}
	}
}

// TestRunCellErrors: a worker must get an error, never a crash, for
// cells it cannot run.
func TestRunCellErrors(t *testing.T) {
	t.Parallel()
	if _, err := RunCell(Cell{Kind: KindNative, Workload: "no_such_app", Threads: 2, Cores: 8, Scale: 0.05}); err == nil {
		t.Error("unknown workload: want error")
	}
	if _, err := RunCell(Cell{Kind: "bogus", Workload: "figure1", Threads: 2, Cores: 8, Scale: 0.05}); err == nil {
		t.Error("invalid cell: want error")
	}
	// A trace cell whose file does not exist panics inside workload
	// Build; RunCell must convert that to an error.
	if _, err := RunCell(Cell{Kind: KindNative, Workload: "trace:/no/such.trace", Threads: 2, Cores: 8, Scale: 0.05}); err == nil {
		t.Error("missing trace file: want error")
	}
}

// TestPreloadedRunnerMatchesLocal is the merge path in miniature: run
// every enumerated cell with RunCell (as sweep workers would), preload
// a fresh runner with the results, and the assembled sweep must be
// byte-identical to an ordinary in-process run — including a JSON round
// trip of every payload, since that is what the wire and cache do.
func TestPreloadedRunnerMatchesLocal(t *testing.T) {
	t.Parallel()
	c := Config{Scale: 0.04, Threads: 4}

	serialCfg := c
	serialCfg.Workers = 1
	want := RunAll(serialCfg)

	r := NewRunner(0)
	for _, cell := range EnumerateCells(c) {
		res, err := RunCell(cell)
		if err != nil {
			t.Fatalf("RunCell(%s): %v", cell.ID(), err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal %s: %v", cell.ID(), err)
		}
		var back CellResult
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", cell.ID(), err)
		}
		if err := r.Preload(cell, back); err != nil {
			t.Fatalf("preload %s: %v", cell.ID(), err)
		}
	}
	executed := r.CellsRun()
	got := RunAllWith(r, c)
	if r.CellsRun() != executed {
		t.Errorf("merge executed %d cells locally, want 0 (all preloaded)", r.CellsRun()-executed)
	}
	if wf, gf := want.Format(), got.Format(); wf != gf {
		t.Errorf("preloaded sweep diverges from local:\n%s", firstDiff(wf, gf))
	}
	if !reflect.DeepEqual(want.Metrics(), got.Metrics()) {
		t.Errorf("metrics diverge:\nlocal:     %v\npreloaded: %v", want.Metrics(), got.Metrics())
	}
}

// TestPreloadRejectsDuplicatesAndGarbage: Preload is fed from external
// sources and must refuse what would corrupt a merge.
func TestPreloadRejectsDuplicatesAndGarbage(t *testing.T) {
	t.Parallel()
	r := NewRunner(0)
	cell := Cell{Kind: KindNative, Workload: "figure1", Threads: 2, Cores: 8, Scale: 0.05}
	if err := r.Preload(cell, CellResult{}); err != nil {
		t.Fatalf("first preload: %v", err)
	}
	if err := r.Preload(cell, CellResult{}); err == nil {
		t.Error("duplicate preload accepted")
	}
	if err := r.Preload(Cell{Kind: "bogus"}, CellResult{}); err == nil {
		t.Error("invalid cell accepted")
	}
}
