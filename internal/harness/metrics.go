package harness

import "repro/internal/obs"

// Harness observability: one counter bump per cell submit/execute and
// one histogram observation per executed cell. Nothing here touches
// cell identity — cellKey and the memo map are unchanged, so memoized
// results and sweep cache keys are byte-identical with metrics on.
var (
	mCellsExecuted = obs.GetCounter("cheetah_harness_cells_run_total",
		"Distinct experiment cells executed (memo misses).")
	mCellsMemoized = obs.GetCounter("cheetah_harness_cells_memoized_total",
		"Cell submissions served from the in-process memo (hits).")
	mCellSeconds = obs.GetHistogram("cheetah_harness_cell_seconds",
		"Wall-clock duration of executed cells.", nil)
)
