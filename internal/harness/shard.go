package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/trace"
	"repro/internal/workload"
)

// Phase-sharded trace replay: one giant trace split into contiguous
// phase ranges, each range an ordinary `trace:<path>@lo-hi` cell. Every
// shard replays its range on a fresh system (ProgramRange skips the
// out-of-range phases entirely), so shards are independent,
// deterministic, and executable by any mix of local goroutines or sweep
// worker processes; FormatShardedReplay stitches the reports back in
// phase order. Because each cell is deterministic, the merged output is
// byte-identical however the shards were scheduled — proven for 1/2/4
// workers and against worker-kill requeues by internal/sweep's tests.

// TraceShard is one planned phase range of a sharded trace replay.
type TraceShard struct {
	// Cell is the runnable cell: a profiled `trace:<path>@<lo>-<hi>`
	// pseudo-workload.
	Cell Cell
	// Lo and Hi are the inclusive phase range.
	Lo, Hi int
	// Accesses is the range's indexed access count, the planner's load
	// estimate.
	Accesses uint64
}

// TraceShardPlan splits the indexed trace behind an un-ranged
// `trace:<path>` workload name into at most shards contiguous phase
// ranges of roughly equal access counts. Fewer shards come back when
// the trace has fewer phases. The trace must be indexed: planning reads
// only the index.
func TraceShardPlan(name string, shards int, c Config) ([]TraceShard, error) {
	if !workload.IsTraceName(name) {
		return nil, fmt.Errorf("harness: %q is not a trace workload", name)
	}
	path := workload.TracePath(name)
	if path != strings.TrimPrefix(name, workload.TracePrefix) {
		return nil, fmt.Errorf("harness: cannot shard already-ranged trace workload %q", name)
	}
	if shards < 1 {
		return nil, fmt.Errorf("harness: shard count %d out of range", shards)
	}
	sr, err := trace.OpenStream(path)
	if err != nil {
		return nil, err
	}
	phases := sr.Phases()
	if len(phases) == 0 {
		return nil, fmt.Errorf("harness: trace %s has no phases to shard", path)
	}
	if shards > len(phases) {
		shards = len(phases)
	}
	// Cut at cumulative-weight quantiles. The +1 per phase keeps empty
	// phases from collapsing ranges to nothing and guarantees the total
	// weight is positive, so exactly `shards` non-empty ranges come out.
	var total uint64
	for _, ph := range phases {
		total += ph.Accesses + 1
	}
	cfg := c.withDefaults()
	hash := TraceContentHash(path)
	var plan []TraceShard
	var cum uint64
	start := 0
	for i, ph := range phases {
		cum += ph.Accesses + 1
		// Close the current shard once cumulative weight crosses its
		// quantile — or when the remaining shards need every remaining
		// phase. The final shard closes only at the last phase.
		building := shards - len(plan) // shards still to emit, incl. this one
		phasesLeft := len(phases) - i - 1
		boundary := uint64(len(plan)+1) * total / uint64(shards)
		cut := i == len(phases)-1 ||
			(building > 1 && (cum >= boundary || phasesLeft < building))
		if cut {
			lo, hi := phases[start].Index, ph.Index
			var acc uint64
			for _, p := range phases[start : i+1] {
				acc += p.Accesses
			}
			plan = append(plan, TraceShard{
				Cell: Cell{
					Kind:      KindProfiled,
					Workload:  fmt.Sprintf("%s%s@%d-%d", workload.TracePrefix, path, lo, hi),
					Threads:   cfg.Threads,
					Cores:     cfg.Cores,
					Scale:     cfg.Scale,
					PMU:       cfg.PMU,
					Sched:     canonSched(cfg.Sched),
					Machine:   canonMachine(cfg.Machine),
					TraceHash: hash,
				},
				Lo: lo, Hi: hi, Accesses: acc,
			})
			start = i + 1
		}
	}
	return plan, nil
}

// RunShardsLocal executes a shard plan in this process with up to
// workers concurrent goroutines, returning results keyed by cell ID —
// the same shape sweep.RunCells produces, so callers merge either
// source identically.
func RunShardsLocal(plan []TraceShard, workers int) (map[string]CellResult, error) {
	if workers < 1 {
		workers = 1
	}
	results := make(map[string]CellResult, len(plan))
	errs := make([]error, len(plan))
	var mu sync.Mutex
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range plan {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := RunCell(plan[i].Cell)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			results[plan[i].Cell.ID()] = res
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// FormatShardedReplay merges per-shard results into the canonical
// sharded report: each shard's detection report and runtime in plan
// (phase) order. The format is deliberately a pure function of the
// plan and the shard payloads, so any execution order or worker count
// yields identical bytes.
func FormatShardedReplay(plan []TraceShard, results map[string]CellResult) (string, error) {
	ordered := append([]TraceShard(nil), plan...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Lo < ordered[j].Lo })
	var b strings.Builder
	for _, sh := range ordered {
		res, ok := results[sh.Cell.ID()]
		if !ok {
			return "", fmt.Errorf("harness: no result for shard %d-%d (%s)", sh.Lo, sh.Hi, sh.Cell.ID())
		}
		if res.Report == nil {
			return "", fmt.Errorf("harness: shard %d-%d result has no report", sh.Lo, sh.Hi)
		}
		fmt.Fprintf(&b, "== shard phases %d-%d (%d accesses) ==\n", sh.Lo, sh.Hi, sh.Accesses)
		b.WriteString(res.Report.Format())
		fmt.Fprintf(&b, "runtime %d cycles across %d phases\n\n", res.Result.TotalCycles, len(res.Result.Phases))
	}
	return b.String(), nil
}
