package harness

import (
	"encoding/json"
	"strings"
	"sync"

	"repro/internal/core"
)

// Results bundles every table and figure of the paper's evaluation, as
// produced by one RunAll sweep.
type Results struct {
	Fig1    []Fig1Row
	Fig4    []Fig4Row
	Fig5App string
	Fig5    *core.Report
	// Fig5Text is the formatted case-study report, including the
	// word-level access breakdown of the top instance.
	Fig5Text string
	Fig7     []Fig7Row
	Table1   []Table1Row
	Compare  []CompareRow
	Periods  []PeriodRow
	Rules    []RuleRow
}

// RunAll regenerates the full evaluation: Figure 1, Figure 4, Figure 5
// (linear_regression), Figure 7, Table 1, the tool comparison, and both
// ablations. The experiments share one runner, so identical cells are
// executed once and all cells from all experiments compete for the same
// c.Workers pool slots.
func RunAll(c Config) *Results { return RunAllWith(runnerFor(c), c) }

// RunAllWith is RunAll on a caller-supplied runner, letting callers reuse
// a runner's memoized cells across sweeps or read its statistics
// afterwards (cmd/fsbench records CellsRun in the bench trajectory).
func RunAllWith(r *Runner, c Config) *Results {
	c = c.withDefaults()
	res := &Results{Fig5App: "linear_regression"}
	var wg sync.WaitGroup
	launch := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	// Experiments submit cells and wait; the pool bounds actual work.
	launch(func() { res.Fig1 = r.figure1(c) })
	launch(func() { res.Fig4 = r.figure4(c) })
	launch(func() { res.Fig5, res.Fig5Text = r.figure5(res.Fig5App, c) })
	launch(func() { res.Fig7 = r.figure7(c) })
	launch(func() { res.Table1 = r.table1(c) })
	launch(func() { res.Compare = r.compare(c) })
	launch(func() { res.Periods = r.periodAblation(c) })
	launch(func() { res.Rules = r.ruleAblation(c) })
	wg.Wait()
	return res
}

// Format renders every experiment in the fixed order cmd/fsbench prints,
// separated by blank lines. The output is deterministic: it must be
// byte-identical across worker counts.
func (rs *Results) Format() string {
	sections := []string{
		FormatFigure1(rs.Fig1),
		FormatFigure4(rs.Fig4),
		"Figure 5: Cheetah report for " + rs.Fig5App + "\n\n" + rs.Fig5Text,
		FormatFigure7(rs.Fig7),
		FormatTable1(rs.Table1),
		FormatCompare(rs.Compare),
		FormatPeriodAblation(rs.Periods),
		FormatRuleAblation(rs.Rules),
	}
	return strings.Join(sections, "\n")
}

// Metrics extracts the headline quantity of each experiment — the numbers
// the paper reports in prose — keyed by a stable name, for the
// machine-readable bench trajectory.
func (rs *Results) Metrics() map[string]float64 {
	m := make(map[string]float64)
	if n := len(rs.Fig1); n > 0 {
		m["fig1_slowdown_8t"] = rs.Fig1[n-1].Slowdown()
	}
	if len(rs.Fig4) > 0 {
		avg, avgEx := AverageOverhead(rs.Fig4)
		m["fig4_avg_overhead"] = avg
		m["fig4_avg_overhead_excl_outliers"] = avgEx
	}
	if rs.Fig5 != nil && len(rs.Fig5.Instances) > 0 {
		m["fig5_predicted_improvement"] = rs.Fig5.Instances[0].Assessment.Improvement
	}
	worst := 0.0
	for _, r := range rs.Fig7 {
		if imp := r.Improvement(); imp > worst {
			worst = imp
		}
	}
	if len(rs.Fig7) > 0 {
		m["fig7_worst_missed_impact"] = worst
	}
	worst = 0
	for _, r := range rs.Table1 {
		if d := r.AbsDiff(); d > worst {
			worst = d
		}
	}
	if len(rs.Table1) > 0 {
		m["table1_worst_absdiff"] = worst
	}
	for _, r := range rs.Compare {
		if r.App == "linear_regression" {
			m["compare_predator_overhead_lr"] = r.PredatorOverhead
			m["compare_cheetah_overhead_lr"] = r.CheetahOverhead
		}
	}
	maxDetecting := 0.0
	for _, r := range rs.Periods {
		if r.Detected && float64(r.Period) > maxDetecting {
			maxDetecting = float64(r.Period)
		}
	}
	if len(rs.Periods) > 0 {
		m["ablation_max_detecting_period"] = maxDetecting
	}
	for _, r := range rs.Rules {
		if r.App == "linear_regression" && r.GroundTruth > 0 {
			m["ablation_two_entry_over_truth_lr"] = float64(r.TwoEntry) / float64(r.GroundTruth)
		}
	}
	return m
}

// BenchEntry is the trajectory record cmd/fsbench writes to
// BENCH_harness.json: enough to track both result drift (Metrics) and
// performance drift (WallSeconds, CellsRun) across PRs.
type BenchEntry struct {
	// Schema versions the record layout.
	Schema string `json:"schema"`
	// GitCommit is the source revision the sweep ran at ("unknown"
	// outside a git checkout), keying each trajectory point to a PR.
	GitCommit string `json:"git_commit"`
	// Timestamp is the sweep's completion time in RFC3339 UTC, so the
	// trajectory is plottable on a real time axis.
	Timestamp string `json:"timestamp"`
	// Workers is the pool bound the sweep ran with.
	Workers int `json:"workers"`
	// CellsRun counts distinct executed cells (shared cells count once).
	CellsRun int `json:"cells_run"`
	// WallSeconds is the end-to-end RunAll time.
	WallSeconds float64 `json:"wall_seconds"`
	// Scale and Threads record the sweep configuration.
	Scale   float64 `json:"scale"`
	Threads int     `json:"threads"`
	// Sched is the engine scheduler the sweep ran under ("sorted" when
	// unset), so scheduler wall-clock comparisons land in the trajectory.
	Sched string `json:"sched"`
	// Machine is the machine-model preset the sweep simulated
	// ("opteron48" when unset). Unlike Sched it changes the results, not
	// just the wall clock, so trajectory comparisons must group by it.
	Machine string `json:"machine"`
	// TraceFormat is the binary trace framing version the build writes
	// (trace.BinaryVersion), so trajectory entries pin which format
	// recorded/imported traces in that revision's artifacts use.
	TraceFormat int `json:"trace_format"`
	// ReplayMode is the trace replay mode the sweep ran under ("auto",
	// "full" or "stream"), so streamed-replay timing points are
	// distinguishable in the trajectory.
	ReplayMode string `json:"replay_mode"`
	// Accesses is the total simulated memory accesses behind the sweep's
	// results. The count is summed from the per-thread records every cell
	// result carries, so it is complete regardless of where the cells ran:
	// in this process, in worker processes, or in an earlier sweep whose
	// results the cache served.
	Accesses uint64 `json:"accesses"`
	// AccessesPerSec is the sweep's simulation throughput: Accesses
	// divided by wall-clock time. On a cold sweep this measures the
	// engine (the CI regression gate runs it cold); on a warm re-sweep it
	// measures cache speedup instead, since the accesses behind cached
	// results were simulated earlier.
	AccessesPerSec float64 `json:"accesses_per_sec"`
	// Metrics holds each experiment's headline quantity.
	Metrics map[string]float64 `json:"metrics"`
}

// BenchSchema is the current BenchEntry schema identifier; v2 added the
// git_commit and timestamp stamps, v3 the engine scheduler, v4 the
// binary trace framing version, v5 the trace replay mode, v6 the
// accesses/sec throughput stamp, v7 the raw access count (aggregated
// across worker processes and cache hits, where v6 stamped 0) and the
// batched engine's throughput baseline for the CI regression gate, and
// v8 the machine-model preset the sweep simulated.
const BenchSchema = "cheetah-bench/v8"

// MarshalIndent renders the entry as indented JSON with a trailing
// newline, the on-disk format of BENCH_harness.json.
func (e BenchEntry) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
