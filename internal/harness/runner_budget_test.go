package harness

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/exec"
)

// budgetRunner builds a serial runner whose run hook counts executions
// per key instead of simulating anything, so eviction behaviour is
// observable without paying for real cells.
func budgetRunner() (*Runner, *sync.Map) {
	r := NewRunner(1)
	var execs sync.Map
	r.run = func(k cellKey) cellOut {
		n, _ := execs.LoadOrStore(k.workload, new(int))
		*(n.(*int))++
		return cellOut{res: exec.Result{TotalCycles: 1}}
	}
	return r, &execs
}

func execCount(execs *sync.Map, workload string) int {
	n, ok := execs.Load(workload)
	if !ok {
		return 0
	}
	return *(n.(*int))
}

// TestCellBudgetEvictsLRU: a budgeted runner retains at most budget
// finished cells, evicting the least recently submitted; resubmitting
// an evicted key re-executes it, resubmitting a retained key does not.
func TestCellBudgetEvictsLRU(t *testing.T) {
	r, execs := budgetRunner()
	r.SetCellBudget(2)

	key := func(i int) cellKey { return cellKey{kind: cellNative, workload: fmt.Sprintf("w%d", i)} }
	for i := 0; i < 5; i++ {
		r.submit(key(i)).wait()
	}
	if got := r.CellsRun(); got > 2 {
		t.Fatalf("retained %d cells, budget is 2", got)
	}
	// w4 is the most recent survivor: serving it again must be a memo hit.
	r.submit(key(4)).wait()
	if n := execCount(execs, "w4"); n != 1 {
		t.Fatalf("retained cell w4 executed %d times, want 1", n)
	}
	// w0 was evicted long ago: serving it again must re-execute.
	r.submit(key(0)).wait()
	if n := execCount(execs, "w0"); n != 2 {
		t.Fatalf("evicted cell w0 executed %d times, want 2 (evict + resubmit)", n)
	}
}

// TestCellBudgetSparesInFlight: cells still running are never evicted,
// even when the memo is over budget — eviction forgets results, it
// must not orphan running work.
func TestCellBudgetSparesInFlight(t *testing.T) {
	r := NewRunner(4)
	block := make(chan struct{})
	r.run = func(k cellKey) cellOut {
		<-block
		return cellOut{}
	}
	r.SetCellBudget(1)

	var cells []*cell
	for i := 0; i < 3; i++ {
		cells = append(cells, r.submit(cellKey{kind: cellNative, workload: fmt.Sprintf("w%d", i)}))
	}
	// All three are blocked in flight; the budget of 1 must not drop any.
	if got := r.CellsRun(); got != 3 {
		t.Fatalf("retained %d cells, want all 3 in-flight cells", got)
	}
	close(block)
	for _, c := range cells {
		c.wait()
	}
	// Any later submit trims the now-finished backlog down to budget.
	r.submit(cellKey{kind: cellNative, workload: "w0"}).wait()
	if got := r.CellsRun(); got > 1 {
		t.Fatalf("retained %d cells after completion, budget is 1", got)
	}
}

// TestUnbudgetedRunnerRetainsEverything: the pre-existing contract —
// NewRunner memoizes forever unless a budget is opted into.
func TestUnbudgetedRunnerRetainsEverything(t *testing.T) {
	r, execs := budgetRunner()
	for i := 0; i < 50; i++ {
		r.submit(cellKey{kind: cellNative, workload: fmt.Sprintf("w%d", i)}).wait()
	}
	for i := 0; i < 50; i++ {
		r.submit(cellKey{kind: cellNative, workload: fmt.Sprintf("w%d", i)}).wait()
	}
	if got := r.CellsRun(); got != 50 {
		t.Fatalf("retained %d cells, want 50", got)
	}
	if n := execCount(execs, "w25"); n != 1 {
		t.Fatalf("unbudgeted cell executed %d times, want 1", n)
	}
}
