package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// writePlanTrace writes a synthetic indexed trace and returns its
// trace:<path> name plus the streaming view of its phase table.
func writePlanTrace(t *testing.T, phases int) (string, []trace.StreamPhase) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := trace.NewIndexedEncoder(f)
	err = trace.WriteSynthetic(enc, trace.SynthConfig{Accesses: 1 << 12, Threads: 4, Phases: phases})
	if err == nil {
		err = enc.Close()
	}
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		t.Fatal(err)
	}
	sr, err := trace.OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	return "trace:" + path, sr.Phases()
}

// TestTraceShardPlanTilesPhases: for every feasible shard count the plan
// is a contiguous, gap-free tiling of the trace's phase range, each
// shard's access estimate sums the phases it covers, and every cell is a
// ranged trace workload carrying the planner's config.
func TestTraceShardPlanTilesPhases(t *testing.T) {
	name, phases := writePlanTrace(t, 10)
	var total uint64
	for _, ph := range phases {
		total += ph.Accesses
	}
	for _, shards := range []int{1, 2, 3, 4, 7, len(phases), len(phases) + 5} {
		plan, err := TraceShardPlan(name, shards, Config{Threads: 4, Scale: 0.05})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		want := shards
		if want > len(phases) {
			want = len(phases)
		}
		if len(plan) != want {
			t.Fatalf("shards=%d: planned %d ranges, want %d", shards, len(plan), want)
		}
		next := phases[0].Index
		var acc uint64
		for i, sh := range plan {
			if sh.Lo != next {
				t.Errorf("shards=%d: shard %d starts at %d, want %d (gap or overlap)", shards, i, sh.Lo, next)
			}
			if sh.Hi < sh.Lo {
				t.Errorf("shards=%d: shard %d inverted range %d-%d", shards, i, sh.Lo, sh.Hi)
			}
			next = sh.Hi + 1
			acc += sh.Accesses
			if !workload.IsTraceName(sh.Cell.Workload) || !strings.Contains(sh.Cell.Workload, "@") {
				t.Errorf("shards=%d: shard %d cell %q is not a ranged trace workload", shards, i, sh.Cell.Workload)
			}
		}
		if last := phases[len(phases)-1].Index; next != last+1 {
			t.Errorf("shards=%d: plan ends at %d, want %d", shards, next-1, last)
		}
		if acc != total {
			t.Errorf("shards=%d: plan accesses %d, want %d", shards, acc, total)
		}
	}
}

// TestTraceShardPlanRejects: non-trace names, already-ranged names, bad
// shard counts and unindexed traces are all diagnosed.
func TestTraceShardPlanRejects(t *testing.T) {
	name, _ := writePlanTrace(t, 4)
	cfg := Config{Threads: 4, Scale: 0.05}
	if _, err := TraceShardPlan("figure1", 2, cfg); err == nil {
		t.Error("non-trace workload accepted")
	}
	if _, err := TraceShardPlan(name+"@0-1", 2, cfg); err == nil {
		t.Error("already-ranged trace accepted")
	}
	if _, err := TraceShardPlan(name, 0, cfg); err == nil {
		t.Error("zero shards accepted")
	}

	// A sequential (unindexed) v2 trace cannot be planned.
	flat := filepath.Join(t.TempDir(), "flat.trace")
	f, err := os.Create(flat)
	if err != nil {
		t.Fatal(err)
	}
	enc := trace.NewBinaryEncoder(f)
	err = trace.WriteSynthetic(enc, trace.SynthConfig{Accesses: 1 << 8, Threads: 2, Phases: 2})
	if err == nil {
		err = enc.Close()
	}
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TraceShardPlan("trace:"+flat, 2, cfg); err == nil {
		t.Error("unindexed trace accepted for phase sharding")
	}
}

// TestFormatShardedReplayIsOrderInvariant: the merged report is a pure
// function of the plan and shard payloads — permuting the plan slice
// (as concurrent completion does to map iteration) changes nothing, and
// a missing or empty shard result is an error, not a silent hole.
func TestFormatShardedReplayIsOrderInvariant(t *testing.T) {
	name, _ := writePlanTrace(t, 6)
	plan, err := TraceShardPlan(name, 3, Config{Threads: 4, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunShardsLocal(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FormatShardedReplay(plan, results)
	if err != nil {
		t.Fatal(err)
	}
	reversed := make([]TraceShard, len(plan))
	for i, sh := range plan {
		reversed[len(plan)-1-i] = sh
	}
	got, err := FormatShardedReplay(reversed, results)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("reversed plan changes merged report:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	short := make(map[string]CellResult)
	for k, v := range results {
		short[k] = v
	}
	delete(short, plan[0].Cell.ID())
	if _, err := FormatShardedReplay(plan, short); err == nil {
		t.Error("missing shard result not diagnosed")
	}
	short[plan[0].Cell.ID()] = CellResult{}
	if _, err := FormatShardedReplay(plan, short); err == nil {
		t.Error("report-less shard result not diagnosed")
	}
}
