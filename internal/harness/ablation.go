package harness

import (
	"fmt"

	cheetah "repro"
	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/shadow"
	"repro/internal/workload"
)

// PeriodRow is one sampling period of the period ablation: the
// detection-quality/overhead trade-off behind the paper's choice of 64K.
type PeriodRow struct {
	Period uint64
	// Samples accepted by the profiler.
	Samples uint64
	// Detected reports whether linear_regression's instance was found.
	Detected bool
	// Predict is the assessed improvement (0 when undetected).
	Predict float64
	// Overhead is the profiled/native runtime ratio minus one.
	Overhead float64
}

// PeriodAblation sweeps the sampling period on linear_regression, showing
// detection degrading and overhead falling as samples get sparser.
func PeriodAblation(c Config) []PeriodRow { return runnerFor(c).periodAblation(c) }

func (r *Runner) periodAblation(c Config) []PeriodRow {
	c = c.withDefaults()
	w, _ := workload.ByName("linear_regression")
	periods := []uint64{1024, 4096, 16384, 65536, 262144, 1048576}
	native := r.native("linear_regression", c, false)
	profs := make([]*cell, len(periods))
	for i, period := range periods {
		cc := c
		cc.PMU = pmu.Config{
			Period:        period,
			Jitter:        period / 8,
			HandlerCycles: 4500,
			SetupCycles:   6000,
		}
		profs[i] = r.profiled("linear_regression", cc, false)
	}
	base := native.wait().res.TotalCycles
	rows := make([]PeriodRow, 0, len(periods))
	for i, period := range periods {
		prof := profs[i].wait()
		row := PeriodRow{
			Period:   period,
			Samples:  prof.rep.Samples,
			Overhead: float64(prof.res.TotalCycles)/float64(base) - 1,
		}
		if in := findInstance(prof.rep, w.FSSite); in != nil {
			row.Detected = true
			row.Predict = in.Assessment.Improvement
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatPeriodAblation renders the sweep.
func FormatPeriodAblation(rows []PeriodRow) string {
	header := []string{"period(instr)", "samples", "detected", "predict", "overhead"}
	var out [][]string
	for _, r := range rows {
		predict := "-"
		if r.Detected {
			predict = fmt.Sprintf("%.2fX", r.Predict)
		}
		out = append(out, []string{
			fmt.Sprintf("%d", r.Period),
			fmt.Sprintf("%d", r.Samples),
			reportMark(r.Detected),
			predict,
			pct(r.Overhead),
		})
	}
	return "Ablation: sampling period vs detection and overhead (linear_regression)\n" +
		renderTable(header, out)
}

// RuleRow compares invalidation-counting rules against the machine's
// coherence ground truth on a full (unsampled) access stream.
type RuleRow struct {
	App string
	// GroundTruth is the MESI simulator's invalidation count.
	GroundTruth uint64
	// TwoEntry is Cheetah's two-entry-table count (§2.3).
	TwoEntry uint64
	// Ownership is the Zhao et al. full-ownership-bitmap count.
	Ownership uint64
	// TwoEntryBytes and OwnershipBytes are per-line footprints at the
	// run's thread count.
	TwoEntryBytes, OwnershipBytes int
}

// RuleAblation feeds the full access stream of each application into both
// counting rules and compares them with the coherence simulator's ground
// truth, quantifying the accuracy the two-entry table trades for its
// fixed footprint.
func RuleAblation(c Config) []RuleRow { return runnerFor(c).ruleAblation(c) }

func (r *Runner) ruleAblation(c Config) []RuleRow {
	c = c.withDefaults()
	apps := []string{"figure1", "linear_regression", "streamcluster"}
	cells := make([]*cell, len(apps))
	for i, app := range apps {
		cells[i] = r.rule(app, c)
	}
	rows := make([]RuleRow, len(apps))
	for i := range cells {
		rows[i] = cells[i].wait().rule
	}
	return rows
}

// FormatRuleAblation renders the rule comparison.
func FormatRuleAblation(rows []RuleRow) string {
	header := []string{"application", "ground truth", "two-entry", "ownership", "two-entry B/line", "ownership B/line"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.GroundTruth),
			fmt.Sprintf("%d", r.TwoEntry),
			fmt.Sprintf("%d", r.Ownership),
			fmt.Sprintf("%d", r.TwoEntryBytes),
			fmt.Sprintf("%d", r.OwnershipBytes),
		})
	}
	return "Ablation: invalidation rules vs coherence ground truth (full instrumentation)\n" +
		renderTable(header, out)
}

// twoEntryCounter feeds every parallel-phase heap/global access into the
// shadow two-entry tables — Cheetah's rule at full instrumentation.
type twoEntryCounter struct {
	exec.BaseProbe
	sys           *cheetah.System
	mem           *shadow.Memory
	parallel      bool
	invalidations uint64
}

func newTwoEntryCounter(sys *cheetah.System) *twoEntryCounter {
	return &twoEntryCounter{sys: sys, mem: shadow.NewMemoryGeom(sys.Model().Geometry())}
}

// PhaseStart implements exec.Probe, matching Cheetah's parallel-phase
// gating so the comparison isolates the counting rule.
func (t *twoEntryCounter) PhaseStart(ph exec.PhaseInfo) { t.parallel = ph.Parallel }

// Access implements exec.Probe.
func (t *twoEntryCounter) Access(a mem.Access, instrs uint64) uint64 {
	if !t.parallel {
		return 0
	}
	if !t.sys.Heap().Contains(a.Addr) && !t.sys.Globals().Contains(a.Addr) {
		return 0
	}
	if t.mem.Record(a) {
		t.invalidations++
	}
	return 0
}
