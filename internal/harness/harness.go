// Package harness regenerates every table and figure in the paper's
// evaluation (§4): the Figure 1 motivation microbenchmark, the Figure 4
// overhead study, the Figure 5 report case study, the Figure 7
// missed-instances study, Table 1's assessment precision, the §4.2.3
// comparison with Predator, and the design-choice ablations listed in
// DESIGN.md.
//
// Every "Real" number is measured by running the broken and fixed
// variants through the same simulator; every "Predict" number comes from
// Cheetah's assessment of the broken run alone, exactly as in the paper.
package harness

import (
	"fmt"
	"strings"

	cheetah "repro"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/workload"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies workload sizes (1.0 = evaluation default).
	Scale float64
	// Threads is the per-phase worker count (16 in the paper).
	Threads int
	// Cores is the machine size (48 in the paper).
	Cores int
	// PMU overrides the sampling configuration for profiled runs; zero
	// value uses DetectionPMU.
	PMU pmu.Config
	// Workers bounds how many experiment cells run concurrently: 0 means
	// GOMAXPROCS on a shared runner that memoizes cells across all
	// package-level experiment calls; any other value uses a private
	// runner (negative = GOMAXPROCS width), re-executing cells — what
	// benchmarks and the determinism tests need. 1 forces serial
	// execution. Results are identical at any worker count — the
	// simulator is deterministic and cells share no state — so Workers
	// trades only wall-clock time and caching.
	Workers int
	// Sched selects the engine's thread scheduler for every cell
	// (exec.SchedSorted, exec.SchedHeap or exec.SchedCalendar; empty =
	// sorted). Schedulers
	// produce byte-identical results — the cross-scheduler equivalence
	// suite proves it — so, like Workers, Sched trades only wall-clock
	// time.
	Sched string
	// Machine selects the machine-model preset every cell simulates
	// (machine.Names; empty = the canonical opteron48). Unlike Workers
	// and Sched this changes results: the model is part of cell identity.
	Machine string
}

// withDefaults fills zero fields with the paper's evaluation setup.
func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Threads == 0 {
		c.Threads = 16
	}
	if c.Cores == 0 {
		c.Cores = 48
	}
	if c.PMU.Period == 0 {
		c.PMU = DetectionPMU()
	}
	return c
}

// OverheadPMU returns the profiling configuration for the Figure 4
// overhead study: IBS cycle-counting mode (the hardware default,
// IbsOpCntCtl=0) with the paper's 64K period, so the trap rate per unit
// of runtime matches the paper's regardless of each workload's simulated
// CPI.
func OverheadPMU() pmu.Config {
	return pmu.Config{
		Period:        64 * 1024,
		Mode:          pmu.CountCycles,
		Jitter:        8 * 1024,
		HandlerCycles: 2600,
		SetupCycles:   4700,
	}
}

// DetectionPMU returns the sampling configuration for detection-quality
// experiments. The simulated workloads are about three orders of
// magnitude shorter than the paper's >=5s runs, so the period is scaled
// down (with handler cost scaled proportionally) to keep the
// samples-per-unit-work density comparable; the 64K period itself is
// exercised by the overhead study and the sampling-period ablation.
func DetectionPMU() pmu.Config {
	return pmu.Config{
		Period:        64,
		Jitter:        24,
		HandlerCycles: 4,
		SetupCycles:   0,
	}
}

// build constructs a fresh system and the workload program on it.
func build(name string, c Config, fixed bool) (*cheetah.System, cheetah.Program) {
	w, ok := workload.ByName(name)
	if !ok {
		panic(fmt.Sprintf("harness: unknown workload %q", name))
	}
	ccfg := cheetah.Config{Cores: c.Cores}
	if m := canonMachine(c.Machine); m != "" {
		model, ok := machine.Preset(m)
		if !ok {
			panic(fmt.Sprintf("harness: unknown machine preset %q", m))
		}
		ccfg.Machine = model
	}
	sys := cheetah.New(ccfg)
	prog := w.Build(sys, workload.Params{Threads: c.Threads, Scale: c.Scale, Fixed: fixed})
	return sys, prog
}

// pct formats a ratio as a percentage string.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// renderTable renders rows as an aligned text table.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
