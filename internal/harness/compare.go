package harness

import (
	"fmt"

	"repro/internal/workload"
)

// CompareRow summarizes one application under the three detectors
// (§4.2.3 and §6.1): whether each reports the app's false sharing, and at
// what runtime overhead.
type CompareRow struct {
	App string
	// HasFS and site describe the ground truth built into the workload.
	FS   workload.FSKind
	Site string
	// Reported flags per tool.
	Cheetah, Predator, Sheriff bool
	// Overheads relative to native (1.0 = no overhead), per tool.
	CheetahOverhead, PredatorOverhead, SheriffOverhead float64
}

// compareApps is the §4.2.3 comparison set: both significant-FS apps, the
// three minor-FS apps Predator alone flags, and an FS-free control.
var compareApps = []string{
	"linear_regression", "streamcluster",
	"histogram", "reverse_index", "word_count",
	"blackscholes",
}

// Compare runs Cheetah, the Predator-style instrumenter and the
// Sheriff-style page-diff detector over the comparison applications.
func Compare(c Config) []CompareRow { return runnerFor(c).compare(c) }

func (r *Runner) compare(c Config) []CompareRow {
	c = c.withDefaults()
	type group struct {
		native, prof, pred, sher *cell
	}
	cells := make([]group, len(compareApps))
	for i, app := range compareApps {
		cells[i] = group{
			native: r.native(app, c, false),
			prof:   r.profiled(app, c, false),
			pred:   r.predator(app, c, false),
			sher:   r.sheriff(app, c, false),
		}
	}
	rows := make([]CompareRow, 0, len(compareApps))
	for i, app := range compareApps {
		w, _ := workload.ByName(app)
		native := cells[i].native.wait().res.TotalCycles
		prof := cells[i].prof.wait()
		pred := cells[i].pred.wait()
		sher := cells[i].sher.wait()

		row := CompareRow{
			App:              app,
			FS:               w.FS,
			Site:             w.FSSite,
			CheetahOverhead:  float64(prof.res.TotalCycles) / float64(native),
			PredatorOverhead: float64(pred.res.TotalCycles) / float64(native),
			SheriffOverhead:  float64(sher.res.TotalCycles) / float64(native),
		}
		if w.FS != workload.NoFS {
			row.Cheetah = reportsSite(prof.rep, w.FSSite)
			row.Predator = findingsContain(pred.findings, w.FSSite)
			row.Sheriff = findingsContain(sher.findings, w.FSSite)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatCompare renders the tool comparison.
func FormatCompare(rows []CompareRow) string {
	header := []string{"application", "ground truth", "cheetah", "predator", "sheriff",
		"cheetah-ovh", "predator-ovh", "sheriff-ovh"}
	var out [][]string
	for _, r := range rows {
		truth := "no FS"
		switch r.FS {
		case workload.SignificantFS:
			truth = "significant FS"
		case workload.MinorFS:
			truth = "minor FS"
		}
		mark := func(found bool) string {
			if r.FS == workload.NoFS {
				return "-"
			}
			return reportMark(found)
		}
		out = append(out, []string{
			r.App, truth,
			mark(r.Cheetah), mark(r.Predator), mark(r.Sheriff),
			fmt.Sprintf("%.2fx", r.CheetahOverhead),
			fmt.Sprintf("%.2fx", r.PredatorOverhead),
			fmt.Sprintf("%.2fx", r.SheriffOverhead),
		})
	}
	return "Comparison with state-of-the-art (paper §4.2.3, §6.1)\n" +
		renderTable(header, out)
}
