package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	cheetah "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/workload"
)

// This file is the experiment runner: every cell of the evaluation — one
// (workload, variant, thread count, measurement mode) combination — is a
// self-contained job with no shared mutable state (each builds its own
// System, simulator and probes), so cells execute concurrently on a
// bounded worker pool and results are reassembled in the deterministic
// order each experiment defines. Identical cells requested by different
// experiments (Figure 4's native runs are Table 1's baselines; Figure 5's
// case-study report is the Compare matrix's Cheetah run) are executed
// once and shared, which cuts a full RunAll by roughly a fifth even
// before any parallel speedup.
//
// Determinism: the simulator is fully deterministic, so a cell's output
// depends only on its key — never on scheduling. A Runner with Workers=1
// executes cells strictly one at a time and must produce byte-identical
// reports to any parallel configuration (harness tests enforce this).

// cellKind selects what a cell measures.
type cellKind uint8

const (
	// cellNative is an unprofiled run: the ground-truth runtime.
	cellNative cellKind = iota
	// cellProfiled runs under the Cheetah profiler with the key's PMU.
	cellProfiled
	// cellPredator runs under the Predator-style full instrumenter.
	cellPredator
	// cellSheriff runs under the Sheriff-style page-diff detector.
	cellSheriff
	// cellRule is a fully-instrumented traced run feeding the rule
	// ablation: both counting rules plus the coherence ground truth.
	cellRule
)

// cellKey identifies one experiment cell. It is the memoization key, so
// it must capture everything the simulated outcome depends on.
type cellKey struct {
	kind     cellKind
	workload string
	threads  int
	cores    int
	scale    float64
	fixed    bool
	// pmu is the sampling configuration for profiled cells; zero for
	// native and baseline cells, so runs that differ only in profiler
	// configuration share their native baselines.
	pmu pmu.Config
	// sched is the engine scheduler, canonicalized ("" = sorted). Results
	// are scheduler-independent by proven invariant, but the key stays
	// honest: a cell records every input of the run that produced it.
	sched string
	// traceHash is the content hash of the trace file for `trace:`
	// workloads ("" otherwise): the cell's outcome depends on the file's
	// bytes, so the bytes join the memoization key.
	traceHash string
}

// cellOut is a finished cell's payload; which fields are set depends on
// the kind. Consumers treat the report and findings as read-only — cells
// are shared between experiments.
type cellOut struct {
	res      exec.Result
	rep      *core.Report
	findings []baseline.Finding
	rule     RuleRow
}

// cell is a memoized in-flight or finished job.
type cell struct {
	key  cellKey
	done chan struct{}
	out  cellOut
}

// wait blocks until the cell has run and returns its output.
func (c *cell) wait() cellOut {
	<-c.done
	return c.out
}

// Runner schedules experiment cells over a bounded worker pool.
type Runner struct {
	sem chan struct{}
	// run executes one cell. It is runCell on ordinary runners; the
	// enumerating runner behind EnumerateCells swaps in a stub so a sweep
	// can be planned without simulating anything.
	run func(cellKey) cellOut

	mu    sync.Mutex
	cells map[cellKey]*cell
	// traceHashes memoizes trace-file content hashes per path for this
	// runner's lifetime. A runner already memoizes whole cells forever,
	// so re-hashing the file on every submit could never change which
	// result is served — it would only re-read the file; one hash per
	// path per runner keeps sweeps over large imported traces cheap.
	traceHashes map[string]string
}

// NewRunner creates a runner executing at most workers cells at once.
// workers <= 0 means GOMAXPROCS; workers == 1 forces serial execution.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		sem:   make(chan struct{}, workers),
		run:   runCell,
		cells: make(map[cellKey]*cell),
	}
}

// defaultRunner backs the package-level experiment functions when the
// caller does not pin a worker count: sharing one memoized runner lets
// different experiments (and different tests of this package) reuse each
// other's cells.
var defaultRunner = sync.OnceValue(func() *Runner { return NewRunner(0) })

// runnerFor picks the runner for a config: the shared default for
// Workers == 0, a private runner for any other value (negative =
// GOMAXPROCS width). Benchmarks and the determinism tests rely on
// private runners actually re-executing their cells.
func runnerFor(c Config) *Runner {
	if c.Workers == 0 {
		return defaultRunner()
	}
	return NewRunner(c.Workers)
}

// CellsRun returns the number of distinct cells executed so far (shared
// cells count once) — the denominator for the dedup ratio in the bench
// trajectory.
func (r *Runner) CellsRun() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

// Accesses returns the total simulated memory accesses behind this
// runner's finished cells — executed locally or preloaded from worker
// processes and result caches (the per-thread counts ride exec.Result,
// so the sum is deterministic and survives the wire). Cells still in
// flight are skipped; call after the sweep completes for the full
// total.
func (r *Runner) Accesses() uint64 {
	r.mu.Lock()
	cells := make([]*cell, 0, len(r.cells))
	for _, c := range r.cells {
		cells = append(cells, c)
	}
	r.mu.Unlock()
	var n uint64
	for _, c := range cells {
		select {
		case <-c.done:
			n += c.out.res.Accesses()
		default:
		}
	}
	return n
}

// submit returns the memoized cell for k, launching it on the pool the
// first time the key is seen. Trace workloads get their content hash
// folded into the key here, so every path that submits cells — the
// experiments, EnumerateCells, benchmarks — shares one identity rule.
func (r *Runner) submit(k cellKey) *cell {
	if k.traceHash == "" {
		k.traceHash = r.traceHashFor(k.workload)
	}
	r.mu.Lock()
	c, ok := r.cells[k]
	if !ok {
		c = &cell{key: k, done: make(chan struct{})}
		r.cells[k] = c
		go func() {
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			start := time.Now()
			c.out = r.run(c.key)
			end := time.Now()
			mCellsExecuted.Inc()
			mCellSeconds.Observe(end.Sub(start).Seconds())
			if obs.TracingEnabled() {
				obs.Span("harness", "cell", start, end, 0, map[string]any{
					"workload": c.key.workload, "kind": int(c.key.kind),
					"threads": c.key.threads, "cores": c.key.cores,
				})
			}
			close(c.done)
		}()
	} else {
		mCellsMemoized.Inc()
	}
	r.mu.Unlock()
	return c
}

// traceHashFor returns the memoized content hash for a trace workload
// ("" for registered workloads), hashing the file once per path per
// runner.
func (r *Runner) traceHashFor(name string) string {
	if !workload.IsTraceName(name) {
		return ""
	}
	r.mu.Lock()
	h, ok := r.traceHashes[name]
	r.mu.Unlock()
	if ok {
		return h
	}
	h = traceHashFor(name)
	r.mu.Lock()
	if r.traceHashes == nil {
		r.traceHashes = make(map[string]string)
	}
	r.traceHashes[name] = h
	r.mu.Unlock()
	return h
}

// runCell executes one cell on a fresh system.
func runCell(k cellKey) cellOut {
	w, ok := workload.ByName(k.workload)
	if !ok {
		panic(fmt.Sprintf("harness: unknown workload %q", k.workload))
	}
	sys := cheetah.New(cheetah.Config{Cores: k.cores, Engine: exec.Config{Sched: k.sched}})
	prog := w.Build(sys, workload.Params{Threads: k.threads, Scale: k.scale, Fixed: k.fixed})
	switch k.kind {
	case cellProfiled:
		rep, res := sys.Profile(prog, cheetah.ProfileOptions{PMU: k.pmu})
		return cellOut{res: res, rep: rep}
	case cellPredator:
		det := baseline.NewPredator(baseline.DefaultPredatorConfig(), sys.Heap(), sys.Globals())
		res := sys.RunWith(prog, det)
		return cellOut{res: res, findings: det.Findings()}
	case cellSheriff:
		det := baseline.NewSheriff(baseline.DefaultSheriffConfig(), sys.Heap(), sys.Globals())
		res := sys.RunWith(prog, det)
		return cellOut{res: res, findings: det.Findings()}
	case cellRule:
		two := newTwoEntryCounter(sys)
		own := baseline.NewOwnership()
		// The engine result rides along even though rule rows don't use
		// it: its per-thread access counts join the sweep's throughput
		// accounting like every other cell's.
		res, sim := sys.RunTraced(prog, two, own)
		var truth uint64
		for _, n := range sim.TotalLineInvalidations() {
			truth += n
		}
		return cellOut{res: res, rule: RuleRow{
			App:            k.workload,
			GroundTruth:    truth,
			TwoEntry:       two.invalidations,
			Ownership:      own.Invalidations,
			TwoEntryBytes:  baseline.TwoEntryBytesPerLine(),
			OwnershipBytes: baseline.OwnershipBytesPerLine(k.threads),
		}}
	default:
		return cellOut{res: sys.Run(prog)}
	}
}

// native submits an unprofiled run of the workload under c.
func (r *Runner) native(name string, c Config, fixed bool) *cell {
	return r.submit(cellKey{
		kind: cellNative, workload: name,
		threads: c.Threads, cores: c.Cores, scale: c.Scale, fixed: fixed,
		sched: canonSched(c.Sched),
	})
}

// profiled submits a Cheetah-profiled run using c.PMU.
func (r *Runner) profiled(name string, c Config, fixed bool) *cell {
	return r.submit(cellKey{
		kind: cellProfiled, workload: name,
		threads: c.Threads, cores: c.Cores, scale: c.Scale, fixed: fixed,
		pmu: c.PMU, sched: canonSched(c.Sched),
	})
}

// predator submits a Predator-baseline run.
func (r *Runner) predator(name string, c Config, fixed bool) *cell {
	return r.submit(cellKey{
		kind: cellPredator, workload: name,
		threads: c.Threads, cores: c.Cores, scale: c.Scale, fixed: fixed,
		sched: canonSched(c.Sched),
	})
}

// sheriff submits a Sheriff-baseline run.
func (r *Runner) sheriff(name string, c Config, fixed bool) *cell {
	return r.submit(cellKey{
		kind: cellSheriff, workload: name,
		threads: c.Threads, cores: c.Cores, scale: c.Scale, fixed: fixed,
		sched: canonSched(c.Sched),
	})
}

// rule submits a fully-instrumented traced run for the rule ablation.
// Rule cells are memoized like any other, so the ablation's expensive
// traced runs are shared across sweeps and shardable across processes.
func (r *Runner) rule(name string, c Config) *cell {
	return r.submit(cellKey{
		kind: cellRule, workload: name,
		threads: c.Threads, cores: c.Cores, scale: c.Scale,
		sched: canonSched(c.Sched),
	})
}
