package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	cheetah "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/workload"
)

// This file is the experiment runner: every cell of the evaluation — one
// (workload, variant, thread count, measurement mode) combination — is a
// self-contained job with no shared mutable state (each builds its own
// System, simulator and probes), so cells execute concurrently on a
// bounded worker pool and results are reassembled in the deterministic
// order each experiment defines. Identical cells requested by different
// experiments (Figure 4's native runs are Table 1's baselines; Figure 5's
// case-study report is the Compare matrix's Cheetah run) are executed
// once and shared, which cuts a full RunAll by roughly a fifth even
// before any parallel speedup.
//
// Determinism: the simulator is fully deterministic, so a cell's output
// depends only on its key — never on scheduling. A Runner with Workers=1
// executes cells strictly one at a time and must produce byte-identical
// reports to any parallel configuration (harness tests enforce this).

// cellKind selects what a cell measures.
type cellKind uint8

const (
	// cellNative is an unprofiled run: the ground-truth runtime.
	cellNative cellKind = iota
	// cellProfiled runs under the Cheetah profiler with the key's PMU.
	cellProfiled
	// cellPredator runs under the Predator-style full instrumenter.
	cellPredator
	// cellSheriff runs under the Sheriff-style page-diff detector.
	cellSheriff
	// cellRule is a fully-instrumented traced run feeding the rule
	// ablation: both counting rules plus the coherence ground truth.
	cellRule
)

// cellKey identifies one experiment cell. It is the memoization key, so
// it must capture everything the simulated outcome depends on.
type cellKey struct {
	kind     cellKind
	workload string
	threads  int
	cores    int
	scale    float64
	fixed    bool
	// pmu is the sampling configuration for profiled cells; zero for
	// native and baseline cells, so runs that differ only in profiler
	// configuration share their native baselines.
	pmu pmu.Config
	// sched is the engine scheduler, canonicalized ("" = sorted). Results
	// are scheduler-independent by proven invariant, but the key stays
	// honest: a cell records every input of the run that produced it.
	sched string
	// machine is the machine-model preset, canonicalized ("" = the
	// canonical opteron48).
	machine string
	// traceHash is the content hash of the trace file for `trace:`
	// workloads ("" otherwise): the cell's outcome depends on the file's
	// bytes, so the bytes join the memoization key.
	traceHash string
}

// cellOut is a finished cell's payload; which fields are set depends on
// the kind. Consumers treat the report and findings as read-only — cells
// are shared between experiments.
type cellOut struct {
	res      exec.Result
	rep      *core.Report
	findings []baseline.Finding
	rule     RuleRow
}

// cell is a memoized in-flight or finished job.
type cell struct {
	key  cellKey
	done chan struct{}
	out  cellOut
	// lastUse is the runner's use-sequence number from the most recent
	// submit of this key, the recency signal the cell budget evicts by.
	lastUse uint64
}

// wait blocks until the cell has run and returns its output.
func (c *cell) wait() cellOut {
	<-c.done
	return c.out
}

// Runner schedules experiment cells over a bounded worker pool.
type Runner struct {
	sem chan struct{}
	// run executes one cell. It is runCell on ordinary runners; the
	// enumerating runner behind EnumerateCells swaps in a stub so a sweep
	// can be planned without simulating anything.
	run func(cellKey) cellOut

	mu    sync.Mutex
	cells map[cellKey]*cell
	// budget caps how many memoized cells the runner retains; 0 means
	// unbounded. When an insert pushes the map past the cap, finished
	// least-recently-used cells are evicted (in-flight cells and cells a
	// caller already holds a pointer to are unaffected — eviction only
	// forgets the memo, never a running job). A run-once sweep never
	// hits the cap; a daemon submitting jobs for months must not grow
	// without bound, which is why the shared default runner is capped.
	budget int
	// useSeq is a monotonic counter stamped onto cells at each submit;
	// it orders cells by recency without reading clocks under the lock.
	useSeq uint64
	// traceHashes memoizes trace-file content hashes per path for this
	// runner's lifetime. A runner already memoizes whole cells forever,
	// so re-hashing the file on every submit could never change which
	// result is served — it would only re-read the file; one hash per
	// path per runner keeps sweeps over large imported traces cheap.
	traceHashes map[string]string
}

// NewRunner creates a runner executing at most workers cells at once.
// workers <= 0 means GOMAXPROCS; workers == 1 forces serial execution.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		sem:   make(chan struct{}, workers),
		run:   runCell,
		cells: make(map[cellKey]*cell),
	}
}

// DefaultCellBudget caps the shared default runner's memo. Generous
// enough that every cell of a full RunAll sweep (a few hundred) stays
// resident with room to spare, small enough that a process serving
// unbounded distinct jobs (cheetahd) cannot leak memory through the
// package-level entry points.
const DefaultCellBudget = 4096

// defaultRunner backs the package-level experiment functions when the
// caller does not pin a worker count: sharing one memoized runner lets
// different experiments (and different tests of this package) reuse each
// other's cells. It carries a cell budget because it lives as long as
// the process does.
var defaultRunner = sync.OnceValue(func() *Runner {
	r := NewRunner(0)
	r.SetCellBudget(DefaultCellBudget)
	return r
})

// runnerFor picks the runner for a config: the shared default for
// Workers == 0, a private runner for any other value (negative =
// GOMAXPROCS width). Benchmarks and the determinism tests rely on
// private runners actually re-executing their cells.
func runnerFor(c Config) *Runner {
	if c.Workers == 0 {
		return defaultRunner()
	}
	return NewRunner(c.Workers)
}

// SetCellBudget caps the number of memoized cells the runner retains;
// n <= 0 removes the cap. Over-budget inserts evict the finished
// least-recently-submitted cells. Evicting a cell only drops the memo:
// callers holding the *cell still read its result, and a later submit
// of the same key re-executes. With a budget set, CellsRun and Accesses
// count only the retained cells, so they undercount a long-lived
// process's lifetime totals (the obs counters keep the true totals).
func (r *Runner) SetCellBudget(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 0 {
		n = 0
	}
	r.budget = n
	r.evictLocked()
}

// evictLocked drops finished least-recently-used cells until the memo
// fits the budget. In-flight cells are never dropped (their done
// channel is still open), so a burst of distinct concurrent jobs can
// transiently exceed the budget rather than lose running work.
func (r *Runner) evictLocked() {
	for r.budget > 0 && len(r.cells) > r.budget {
		var victim *cell
		for _, c := range r.cells {
			select {
			case <-c.done:
			default:
				continue // still running
			}
			if victim == nil || c.lastUse < victim.lastUse {
				victim = c
			}
		}
		if victim == nil {
			return // everything over budget is in flight
		}
		delete(r.cells, victim.key)
	}
}

// CellsRun returns the number of distinct cells executed so far (shared
// cells count once) — the denominator for the dedup ratio in the bench
// trajectory. On a budgeted runner this is the retained count, not the
// lifetime count.
func (r *Runner) CellsRun() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

// Accesses returns the total simulated memory accesses behind this
// runner's finished cells — executed locally or preloaded from worker
// processes and result caches (the per-thread counts ride exec.Result,
// so the sum is deterministic and survives the wire). Cells still in
// flight are skipped; call after the sweep completes for the full
// total.
func (r *Runner) Accesses() uint64 {
	r.mu.Lock()
	cells := make([]*cell, 0, len(r.cells))
	for _, c := range r.cells {
		cells = append(cells, c)
	}
	r.mu.Unlock()
	var n uint64
	for _, c := range cells {
		select {
		case <-c.done:
			n += c.out.res.Accesses()
		default:
		}
	}
	return n
}

// submit returns the memoized cell for k, launching it on the pool the
// first time the key is seen. Trace workloads get their content hash
// folded into the key here, so every path that submits cells — the
// experiments, EnumerateCells, benchmarks — shares one identity rule.
func (r *Runner) submit(k cellKey) *cell {
	if k.traceHash == "" {
		k.traceHash = r.traceHashFor(k.workload)
	}
	r.mu.Lock()
	r.useSeq++
	c, ok := r.cells[k]
	if ok {
		c.lastUse = r.useSeq
		mCellsMemoized.Inc()
	} else {
		c = &cell{key: k, done: make(chan struct{}), lastUse: r.useSeq}
		r.cells[k] = c
		go func() {
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			start := time.Now()
			c.out = r.run(c.key)
			end := time.Now()
			mCellsExecuted.Inc()
			mCellSeconds.Observe(end.Sub(start).Seconds())
			if obs.TracingEnabled() {
				obs.Span("harness", "cell", start, end, 0, map[string]any{
					"workload": c.key.workload, "kind": int(c.key.kind),
					"threads": c.key.threads, "cores": c.key.cores,
				})
			}
			close(c.done)
		}()
	}
	// Trim on every submit, not just inserts: cells that were in flight
	// (and so unevictable) during an over-budget burst get collected by
	// the next submit after they finish.
	r.evictLocked()
	r.mu.Unlock()
	return c
}

// traceHashFor returns the memoized content hash for a trace workload
// ("" for registered workloads), hashing the file once per path per
// runner.
func (r *Runner) traceHashFor(name string) string {
	if !workload.IsTraceName(name) {
		return ""
	}
	r.mu.Lock()
	h, ok := r.traceHashes[name]
	r.mu.Unlock()
	if ok {
		return h
	}
	h = traceHashFor(name)
	r.mu.Lock()
	if r.traceHashes == nil {
		r.traceHashes = make(map[string]string)
	}
	r.traceHashes[name] = h
	r.mu.Unlock()
	return h
}

// runCell executes one cell on a fresh system.
func runCell(k cellKey) cellOut {
	w, ok := workload.ByName(k.workload)
	if !ok {
		panic(fmt.Sprintf("harness: unknown workload %q", k.workload))
	}
	ccfg := cheetah.Config{Cores: k.cores, Engine: exec.Config{Sched: k.sched}}
	if k.machine != "" {
		m, ok := machine.Preset(k.machine)
		if !ok {
			panic(fmt.Sprintf("harness: unknown machine preset %q", k.machine))
		}
		ccfg.Machine = m
	}
	sys := cheetah.New(ccfg)
	prog := w.Build(sys, workload.Params{Threads: k.threads, Scale: k.scale, Fixed: k.fixed})
	switch k.kind {
	case cellProfiled:
		rep, res := sys.Profile(prog, cheetah.ProfileOptions{PMU: k.pmu})
		return cellOut{res: res, rep: rep}
	case cellPredator:
		det := baseline.NewPredator(baseline.DefaultPredatorConfig(), sys.Heap(), sys.Globals())
		res := sys.RunWith(prog, det)
		return cellOut{res: res, findings: det.Findings()}
	case cellSheriff:
		det := baseline.NewSheriff(baseline.DefaultSheriffConfig(), sys.Heap(), sys.Globals())
		res := sys.RunWith(prog, det)
		return cellOut{res: res, findings: det.Findings()}
	case cellRule:
		two := newTwoEntryCounter(sys)
		own := baseline.NewOwnership()
		// The engine result rides along even though rule rows don't use
		// it: its per-thread access counts join the sweep's throughput
		// accounting like every other cell's.
		res, sim := sys.RunTraced(prog, two, own)
		var truth uint64
		for _, n := range sim.TotalLineInvalidations() {
			truth += n
		}
		return cellOut{res: res, rule: RuleRow{
			App:            k.workload,
			GroundTruth:    truth,
			TwoEntry:       two.invalidations,
			Ownership:      own.Invalidations,
			TwoEntryBytes:  baseline.TwoEntryBytesPerLine(),
			OwnershipBytes: baseline.OwnershipBytesPerLine(k.threads),
		}}
	default:
		return cellOut{res: sys.Run(prog)}
	}
}

// native submits an unprofiled run of the workload under c.
func (r *Runner) native(name string, c Config, fixed bool) *cell {
	return r.submit(cellKey{
		kind: cellNative, workload: name,
		threads: c.Threads, cores: c.Cores, scale: c.Scale, fixed: fixed,
		sched: canonSched(c.Sched), machine: canonMachine(c.Machine),
	})
}

// profiled submits a Cheetah-profiled run using c.PMU.
func (r *Runner) profiled(name string, c Config, fixed bool) *cell {
	return r.submit(cellKey{
		kind: cellProfiled, workload: name,
		threads: c.Threads, cores: c.Cores, scale: c.Scale, fixed: fixed,
		pmu: c.PMU, sched: canonSched(c.Sched), machine: canonMachine(c.Machine),
	})
}

// predator submits a Predator-baseline run.
func (r *Runner) predator(name string, c Config, fixed bool) *cell {
	return r.submit(cellKey{
		kind: cellPredator, workload: name,
		threads: c.Threads, cores: c.Cores, scale: c.Scale, fixed: fixed,
		sched: canonSched(c.Sched), machine: canonMachine(c.Machine),
	})
}

// sheriff submits a Sheriff-baseline run.
func (r *Runner) sheriff(name string, c Config, fixed bool) *cell {
	return r.submit(cellKey{
		kind: cellSheriff, workload: name,
		threads: c.Threads, cores: c.Cores, scale: c.Scale, fixed: fixed,
		sched: canonSched(c.Sched), machine: canonMachine(c.Machine),
	})
}

// rule submits a fully-instrumented traced run for the rule ablation.
// Rule cells are memoized like any other, so the ablation's expensive
// traced runs are shared across sweeps and shardable across processes.
func (r *Runner) rule(name string, c Config) *cell {
	return r.submit(cellKey{
		kind: cellRule, workload: name,
		threads: c.Threads, cores: c.Cores, scale: c.Scale,
		sched: canonSched(c.Sched), machine: canonMachine(c.Machine),
	})
}
