package harness

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// TestParallelHarnessMatchesSerial guards the concurrent runner: a
// parallel sweep must be indistinguishable from a forced-serial one —
// byte-identical formatted output and identical row data. Both sweeps use
// private runners (Workers != 0 bypasses the shared memoizing runner), so
// each genuinely executes its cells.
func TestParallelHarnessMatchesSerial(t *testing.T) {
	t.Parallel()
	c := Config{Scale: 0.1, Threads: 8}
	if testing.Short() {
		c.Scale = 0.04
	}

	serialCfg := c
	serialCfg.Workers = 1
	parallelCfg := c
	parallelCfg.Workers = 8

	serial := RunAll(serialCfg)
	parallel := RunAll(parallelCfg)

	sf, pf := serial.Format(), parallel.Format()
	if sf != pf {
		t.Errorf("parallel Format() diverges from serial:\n%s", firstDiff(sf, pf))
	}
	if !reflect.DeepEqual(serial.Fig1, parallel.Fig1) {
		t.Errorf("Fig1 rows diverge:\nserial:   %+v\nparallel: %+v", serial.Fig1, parallel.Fig1)
	}
	if !reflect.DeepEqual(serial.Fig4, parallel.Fig4) {
		t.Errorf("Fig4 rows diverge:\nserial:   %+v\nparallel: %+v", serial.Fig4, parallel.Fig4)
	}
	if !reflect.DeepEqual(serial.Table1, parallel.Table1) {
		t.Errorf("Table1 rows diverge:\nserial:   %+v\nparallel: %+v", serial.Table1, parallel.Table1)
	}
	if !reflect.DeepEqual(serial.Fig7, parallel.Fig7) {
		t.Errorf("Fig7 rows diverge:\nserial:   %+v\nparallel: %+v", serial.Fig7, parallel.Fig7)
	}
	if !reflect.DeepEqual(serial.Compare, parallel.Compare) {
		t.Errorf("Compare rows diverge:\nserial:   %+v\nparallel: %+v", serial.Compare, parallel.Compare)
	}
	if !reflect.DeepEqual(serial.Metrics(), parallel.Metrics()) {
		t.Errorf("metrics diverge:\nserial:   %v\nparallel: %v", serial.Metrics(), parallel.Metrics())
	}
}

// TestCalendarSchedulerMatchesHeap is the harness layer of the
// cross-scheduler equivalence suite: a full sweep run under the
// calendar scheduler must print byte-identical tables and figures to
// the heap-scheduled sweep. Both use private runners, so each genuinely
// executes its cells under its scheduler.
func TestCalendarSchedulerMatchesHeap(t *testing.T) {
	t.Parallel()
	c := Config{Scale: 0.1, Threads: 8, Workers: -1}
	if testing.Short() {
		c.Scale = 0.04
	}

	heapCfg := c
	heapCfg.Sched = "heap"
	calCfg := c
	calCfg.Sched = "calendar"

	heapRes := RunAll(heapCfg)
	calRes := RunAll(calCfg)

	hf, cf := heapRes.Format(), calRes.Format()
	if hf != cf {
		t.Errorf("calendar Format() diverges from heap:\n%s", firstDiff(hf, cf))
	}
	if !reflect.DeepEqual(heapRes.Metrics(), calRes.Metrics()) {
		t.Errorf("metrics diverge:\nheap:     %v\ncalendar: %v", heapRes.Metrics(), calRes.Metrics())
	}
}

// TestSharedCellsAreExecutedOnce checks the runner's memoization: a full
// sweep requests the same native baselines from several experiments, so
// distinct executed cells must number well below total requests.
func TestSharedCellsAreExecutedOnce(t *testing.T) {
	t.Parallel()
	r := NewRunner(0)
	c := Config{Scale: 0.04, Threads: 8}
	RunAllWith(r, c)
	cells := r.CellsRun()
	if cells == 0 {
		t.Fatal("no cells executed")
	}
	// Re-running the same sweep on the same runner must execute nothing new.
	RunAllWith(r, c)
	if again := r.CellsRun(); again != cells {
		t.Errorf("re-run executed %d new cells, want 0", again-cells)
	}
}

// firstDiff renders the first line where a and b disagree.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return "line " + strconv.Itoa(i+1) + ":\nserial:   " + al[i] + "\nparallel: " + bl[i]
		}
	}
	return "outputs differ in length: serial " + strconv.Itoa(len(al)) +
		" lines, parallel " + strconv.Itoa(len(bl))
}
