// Package baseline implements the comparison detectors from the paper's
// related work: a Predator-style full-instrumentation detector (Liu et
// al., PPoPP'14 — "the state-of-the-art in false sharing detection ...
// but with approximately 6x performance overhead", §4.2.3) and a
// Sheriff-style page-protection detector (Liu & Berger, OOPSLA'11).
//
// Both observe executions through the same probe interface as Cheetah's
// PMU, so overhead comparisons are apples-to-apples: each charges its
// instrumentation cost to the monitored thread's virtual clock.
package baseline

import (
	"sort"

	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/shadow"
	"repro/internal/symtab"
)

// Finding is one sharing instance detected by a baseline tool.
type Finding struct {
	// Object is the base address of the resolved object (allocation or
	// global), or the line base when unresolved.
	Object mem.Addr
	// Site is the allocation site or symbol name.
	Site string
	// Invalidations is the number of invalidations observed.
	Invalidations uint64
	// FalseSharing distinguishes false from true sharing.
	FalseSharing bool
	// Writes counts writes to the object.
	Writes uint64
}

// PredatorConfig tunes the instrumentation-based detector.
type PredatorConfig struct {
	// PerAccessCycles is the instrumentation cost charged for every
	// memory access — the source of Predator's ~6x slowdown.
	PerAccessCycles uint64
	// MinInvalidations is the reporting threshold; Predator reports many
	// more instances than Cheetah, so it is low.
	MinInvalidations uint64
}

// DefaultPredatorConfig reproduces the paper's ~6x overhead on
// memory-bound code.
func DefaultPredatorConfig() PredatorConfig {
	return PredatorConfig{PerAccessCycles: 90, MinInvalidations: 2}
}

// Predator is an exec.Probe that instruments every memory access (no
// sampling) and tracks invalidations with the same two-entry-table rule.
// Unlike Cheetah it also records accesses in serial phases, which is why
// Predator "may wrongly report them as true sharing instances" for
// main-thread initialization (§2.4) — reproduced here deliberately.
type Predator struct {
	exec.BaseProbe
	cfg  PredatorConfig
	heap *heap.Heap
	syms *symtab.Table

	shadow *shadow.Memory
}

// NewPredator creates the detector with the given resolvers. The baseline
// tools model the published implementations, which hard-code 64-byte
// lines, so Predator's shadow memory stays on the canonical geometry no
// matter what machine model the surrounding simulation uses.
func NewPredator(cfg PredatorConfig, h *heap.Heap, syms *symtab.Table) *Predator {
	if cfg.PerAccessCycles == 0 {
		cfg = DefaultPredatorConfig()
	}
	return &Predator{cfg: cfg, heap: h, syms: syms, shadow: shadow.NewMemory()}
}

// ProgramStart implements exec.Probe.
func (p *Predator) ProgramStart(name string, cores int) { p.shadow = shadow.NewMemory() }

// Access implements exec.Probe: every access is recorded and charged.
func (p *Predator) Access(a mem.Access, instrs uint64) uint64 {
	if p.inScope(a.Addr) {
		p.shadow.Record(a)
	}
	return p.cfg.PerAccessCycles
}

func (p *Predator) inScope(addr mem.Addr) bool {
	return (p.heap != nil && p.heap.Contains(addr)) ||
		(p.syms != nil && p.syms.Contains(addr))
}

// Findings aggregates per-object results, classifying false vs true
// sharing by word footprints exactly as Cheetah does.
func (p *Predator) Findings() []Finding {
	type agg struct {
		f              Finding
		accesses       uint64
		sharedAccesses uint64
		threads        map[mem.ThreadID]struct{}
	}
	byObj := map[mem.Addr]*agg{}
	p.shadow.ForEach(func(l *shadow.Line) {
		if !l.Detailed() {
			return
		}
		base := mem.LineAddr(l.Index)
		objAddr, site := p.resolve(base)
		a := byObj[objAddr]
		if a == nil {
			a = &agg{f: Finding{Object: objAddr, Site: site}, threads: map[mem.ThreadID]struct{}{}}
			byObj[objAddr] = a
		}
		a.f.Invalidations += l.Invalidations
		a.f.Writes += l.Writes
		a.accesses += l.Accesses
		for i := 0; i < l.Words(); i++ {
			w := l.Word(i)
			if w.Threads() == 0 {
				continue
			}
			// Predator records serial phases too, so read-only reduction
			// passes (a main thread summing per-thread results) touch
			// every word; classifying by write sharing keeps those
			// patterns from masking false sharing.
			shared := w.Writers() > 1
			w.ForEachThread(func(tid mem.ThreadID, s *shadow.WordStats) {
				a.threads[tid] = struct{}{}
				if shared {
					a.sharedAccesses += s.Accesses()
				}
			})
		}
	})
	var out []Finding
	for _, a := range byObj {
		if a.f.Invalidations < p.cfg.MinInvalidations || len(a.threads) < 2 {
			continue
		}
		sharedFrac := float64(a.sharedAccesses) / float64(a.accesses)
		a.f.FalseSharing = sharedFrac <= 0.5
		out = append(out, a.f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Invalidations > out[j].Invalidations })
	return out
}

// resolve maps a line base to an object and its site label.
func (p *Predator) resolve(base mem.Addr) (mem.Addr, string) {
	if p.heap != nil {
		if obj, ok := p.heap.Lookup(base); ok {
			return obj.Addr, obj.Stack.Site().String()
		}
	}
	if p.syms != nil {
		if sym, ok := p.syms.Resolve(base); ok {
			return sym.Addr, sym.Name
		}
	}
	return base, "?"
}
