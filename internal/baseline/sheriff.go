package baseline

import (
	"sort"

	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/symtab"
)

// SheriffConfig tunes the page-protection detector.
type SheriffConfig struct {
	// PerWriteCycles is the cost charged per write (page-protection fault
	// amortized over a page's writes plus twin-page diffing), yielding
	// Sheriff's ~20% overhead (paper §6.1).
	PerWriteCycles uint64
	// MinWritesPerThread is the per-thread write threshold for a line to
	// count as write-shared.
	MinWritesPerThread uint64
}

// DefaultSheriffConfig reproduces Sheriff's ~20% overhead profile.
func DefaultSheriffConfig() SheriffConfig {
	return SheriffConfig{PerWriteCycles: 10, MinWritesPerThread: 2}
}

// Sheriff is an exec.Probe modelling Sheriff-detect (Liu & Berger,
// OOPSLA'11): it turns threads into processes and diffs twin pages at
// synchronization boundaries, so it observes only writes and only detects
// write-write false sharing. Reads cost nothing (memory is private until
// written); every write is charged the amortized protection cost.
type Sheriff struct {
	exec.BaseProbe
	cfg  SheriffConfig
	heap *heap.Heap
	syms *symtab.Table

	// writes maps cache line -> thread -> word-write bitmap and count,
	// reconstructed from the per-phase "diffs".
	lines      map[uint64]*sheriffLine
	inParallel bool
}

type sheriffLine struct {
	byThread map[mem.ThreadID]*sheriffWrites
}

type sheriffWrites struct {
	count uint64
	words uint16 // bitmap of written words in the line
}

// NewSheriff creates the detector.
func NewSheriff(cfg SheriffConfig, h *heap.Heap, syms *symtab.Table) *Sheriff {
	if cfg.PerWriteCycles == 0 {
		cfg = DefaultSheriffConfig()
	}
	return &Sheriff{cfg: cfg, heap: h, syms: syms, lines: make(map[uint64]*sheriffLine)}
}

// ProgramStart implements exec.Probe.
func (s *Sheriff) ProgramStart(name string, cores int) {
	s.lines = make(map[uint64]*sheriffLine)
}

// PhaseStart implements exec.Probe; Sheriff only isolates threads in
// parallel regions.
func (s *Sheriff) PhaseStart(ph exec.PhaseInfo) { s.inParallel = ph.Parallel }

// Access implements exec.Probe.
func (s *Sheriff) Access(a mem.Access, instrs uint64) uint64 {
	if !a.Kind.IsWrite() {
		return 0
	}
	if s.inParallel && s.inScope(a.Addr) {
		line := a.Addr.Line()
		l := s.lines[line]
		if l == nil {
			l = &sheriffLine{byThread: make(map[mem.ThreadID]*sheriffWrites)}
			s.lines[line] = l
		}
		w := l.byThread[a.Thread]
		if w == nil {
			w = &sheriffWrites{}
			l.byThread[a.Thread] = w
		}
		w.count++
		w.words |= 1 << uint(a.Addr.WordInLine())
	}
	return s.cfg.PerWriteCycles
}

func (s *Sheriff) inScope(addr mem.Addr) bool {
	return (s.heap != nil && s.heap.Contains(addr)) ||
		(s.syms != nil && s.syms.Contains(addr))
}

// Findings reports write-write falsely-shared objects: lines written by
// multiple threads whose written-word bitmaps are disjoint. Read-write
// false sharing is invisible to Sheriff, one of its known shortcomings
// (§6.1).
func (s *Sheriff) Findings() []Finding {
	byObj := map[mem.Addr]*Finding{}
	for line, l := range s.lines {
		if len(l.byThread) < 2 {
			continue
		}
		var union uint16
		overlap := false
		var writes, minWrites uint64 = 0, ^uint64(0)
		for _, w := range l.byThread {
			if union&w.words != 0 {
				overlap = true
			}
			union |= w.words
			writes += w.count
			if w.count < minWrites {
				minWrites = w.count
			}
		}
		if overlap || minWrites < s.cfg.MinWritesPerThread {
			continue // true sharing, or too little traffic to matter
		}
		base := mem.LineAddr(line)
		objAddr, site := s.resolve(base)
		f := byObj[objAddr]
		if f == nil {
			f = &Finding{Object: objAddr, Site: site, FalseSharing: true}
			byObj[objAddr] = f
		}
		// Sheriff counts interleaved write-write conflicts; use the write
		// volume as the severity proxy.
		f.Writes += writes
		f.Invalidations += writes / 2
	}
	out := make([]Finding, 0, len(byObj))
	for _, f := range byObj {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Writes > out[j].Writes })
	return out
}

func (s *Sheriff) resolve(base mem.Addr) (mem.Addr, string) {
	if s.heap != nil {
		if obj, ok := s.heap.Lookup(base); ok {
			return obj.Addr, obj.Stack.Site().String()
		}
	}
	if s.syms != nil {
		if sym, ok := s.syms.Resolve(base); ok {
			return sym.Addr, sym.Name
		}
	}
	return base, "?"
}
