package baseline_test

import (
	"strings"
	"testing"

	cheetah "repro"
	"repro/internal/baseline"
	"repro/internal/heap"
	"repro/internal/mem"
)

// rig builds a system plus an FS-prone program: threads write adjacent
// words of one heap object (false sharing) and optionally a common word
// (true sharing).
type rig struct {
	sys  *cheetah.System
	obj  mem.Addr
	prog cheetah.Program
}

func newRig(threads, iters, stride int, trueSharing bool) *rig {
	sys := cheetah.New(cheetah.Config{Cores: 8})
	obj := sys.Heap().Malloc(mem.MainThread, 4096,
		heap.Stack(heap.Frame{File: "rig.c", Line: 11}))
	shared := sys.Heap().Malloc(mem.MainThread, 64,
		heap.Stack(heap.Frame{File: "rig.c", Line: 12}))
	bodies := make([]cheetah.Body, threads)
	for i := 0; i < threads; i++ {
		mine := obj.Add(i * stride)
		bodies[i] = func(t *cheetah.T) {
			for j := 0; j < iters; j++ {
				t.Store(mine)
				t.Compute(3)
				if trueSharing && j%4 == 0 {
					t.Store(shared)
				}
			}
		}
	}
	return &rig{sys: sys, obj: obj, prog: cheetah.Program{
		Name:   "rig",
		Phases: []cheetah.Phase{cheetah.ParallelPhase("work", bodies...)},
	}}
}

func TestPredatorDetectsFalseSharing(t *testing.T) {
	r := newRig(4, 5000, 4, false)
	det := baseline.NewPredator(baseline.DefaultPredatorConfig(), r.sys.Heap(), r.sys.Globals())
	r.sys.RunWith(r.prog, det)
	findings := det.Findings()
	found := false
	for _, f := range findings {
		if f.Object == r.obj && f.FalseSharing {
			found = true
			if f.Invalidations == 0 {
				t.Error("finding without invalidations")
			}
		}
	}
	if !found {
		t.Fatalf("Predator missed the falsely-shared object; findings: %+v", findings)
	}
}

func TestPredatorClassifiesTrueSharing(t *testing.T) {
	// All threads write the SAME word of one line.
	sys := cheetah.New(cheetah.Config{Cores: 8})
	obj := sys.Heap().Malloc(mem.MainThread, 64, heap.Stack(heap.Frame{File: "ts.c", Line: 1}))
	bodies := make([]cheetah.Body, 4)
	for i := range bodies {
		bodies[i] = func(t *cheetah.T) {
			for j := 0; j < 5000; j++ {
				t.Store(obj)
				t.Compute(3)
			}
		}
	}
	det := baseline.NewPredator(baseline.DefaultPredatorConfig(), sys.Heap(), sys.Globals())
	sys.RunWith(cheetah.Program{Name: "ts", Phases: []cheetah.Phase{
		cheetah.ParallelPhase("work", bodies...),
	}}, det)
	for _, f := range det.Findings() {
		if f.Object == obj && f.FalseSharing {
			t.Fatal("true sharing classified as false sharing")
		}
	}
}

func TestPredatorOverheadIsHigh(t *testing.T) {
	// Predator's full instrumentation costs several x; Cheetah's sampling
	// costs a few percent (paper §4.2.3).
	r := newRig(4, 20000, 4, false)
	native := r.sys.Run(r.prog).TotalCycles
	det := baseline.NewPredator(baseline.DefaultPredatorConfig(), r.sys.Heap(), r.sys.Globals())
	instrumented := r.sys.RunWith(r.prog, det).TotalCycles
	slowdown := float64(instrumented) / float64(native)
	if slowdown < 1.5 {
		t.Errorf("Predator slowdown %.2fx, want substantial", slowdown)
	}
}

func TestPredatorSeesSerialPhases(t *testing.T) {
	// Unlike Cheetah, Predator records serial-phase accesses; a heavily
	// written object whose writes all come from the main thread must
	// still not be reported (single thread).
	sys := cheetah.New(cheetah.Config{Cores: 4})
	obj := sys.Heap().Malloc(mem.MainThread, 64, heap.Stack(heap.Frame{File: "s.c", Line: 1}))
	det := baseline.NewPredator(baseline.DefaultPredatorConfig(), sys.Heap(), sys.Globals())
	sys.RunWith(cheetah.Program{Name: "serialonly", Phases: []cheetah.Phase{
		cheetah.SerialPhase("init", func(t *cheetah.T) {
			for j := 0; j < 10000; j++ {
				t.Store(obj.Add((j % 16) * 4))
			}
		}),
	}}, det)
	if fs := det.Findings(); len(fs) != 0 {
		t.Errorf("single-threaded writes reported: %+v", fs)
	}
}

func TestSheriffDetectsWriteWriteFalseSharing(t *testing.T) {
	r := newRig(4, 5000, 4, false)
	det := baseline.NewSheriff(baseline.DefaultSheriffConfig(), r.sys.Heap(), r.sys.Globals())
	r.sys.RunWith(r.prog, det)
	found := false
	for _, f := range det.Findings() {
		if f.Object == r.obj && f.FalseSharing {
			found = true
		}
	}
	if !found {
		t.Fatal("Sheriff missed write-write false sharing")
	}
}

func TestSheriffIgnoresReadWriteSharing(t *testing.T) {
	// One thread writes, the others only read: invisible to Sheriff's
	// twin-page diffing (its documented shortcoming, §6.1).
	sys := cheetah.New(cheetah.Config{Cores: 8})
	obj := sys.Heap().Malloc(mem.MainThread, 64, heap.Stack(heap.Frame{File: "rw.c", Line: 1}))
	bodies := make([]cheetah.Body, 4)
	bodies[0] = func(t *cheetah.T) {
		for j := 0; j < 5000; j++ {
			t.Store(obj)
		}
	}
	for i := 1; i < 4; i++ {
		off := i * 4
		bodies[i] = func(t *cheetah.T) {
			for j := 0; j < 5000; j++ {
				t.Load(obj.Add(off))
			}
		}
	}
	det := baseline.NewSheriff(baseline.DefaultSheriffConfig(), sys.Heap(), sys.Globals())
	sys.RunWith(cheetah.Program{Name: "rw", Phases: []cheetah.Phase{
		cheetah.ParallelPhase("work", bodies...),
	}}, det)
	if fs := det.Findings(); len(fs) != 0 {
		t.Errorf("read-write sharing reported by Sheriff: %+v", fs)
	}
}

func TestSheriffSkipsOverlappingWrites(t *testing.T) {
	r := newRig(4, 5000, 4, true) // adds same-word writes (true sharing)
	det := baseline.NewSheriff(baseline.DefaultSheriffConfig(), r.sys.Heap(), r.sys.Globals())
	r.sys.RunWith(r.prog, det)
	for _, f := range det.Findings() {
		if strings.Contains(f.Site, "rig.c:12") {
			t.Errorf("overlapping-write (true sharing) line reported: %+v", f)
		}
	}
}

func TestSheriffModestOverhead(t *testing.T) {
	r := newRig(4, 20000, 4, false)
	native := r.sys.Run(r.prog).TotalCycles
	det := baseline.NewSheriff(baseline.DefaultSheriffConfig(), r.sys.Heap(), r.sys.Globals())
	protected := r.sys.RunWith(r.prog, det).TotalCycles
	slowdown := float64(protected) / float64(native)
	if slowdown > 2.5 {
		t.Errorf("Sheriff slowdown %.2fx, want modest (~20%% on typical code)", slowdown)
	}
}

func TestOwnershipRuleCountsInvalidations(t *testing.T) {
	r := newRig(2, 1000, 4, false)
	own := baseline.NewOwnership()
	r.sys.RunWith(r.prog, own)
	if own.Invalidations == 0 {
		t.Fatal("ownership tracker counted no invalidations in an FS storm")
	}
}

func TestOwnershipSingleThreadNoInvalidations(t *testing.T) {
	sys := cheetah.New(cheetah.Config{Cores: 4})
	obj := sys.Heap().Malloc(mem.MainThread, 64, heap.Stack(heap.Frame{File: "o.c", Line: 1}))
	own := baseline.NewOwnership()
	sys.RunWith(cheetah.Program{Name: "one", Phases: []cheetah.Phase{
		cheetah.ParallelPhase("work", func(t *cheetah.T) {
			for j := 0; j < 5000; j++ {
				t.Store(obj)
				t.Load(obj)
			}
		}),
	}}, own)
	if own.Invalidations != 0 {
		t.Errorf("single-thread run counted %d invalidations", own.Invalidations)
	}
}

func TestOwnershipReadersInvalidatedByWrite(t *testing.T) {
	// Readers join the owner set; a write by anyone else invalidates.
	sys := cheetah.New(cheetah.Config{Cores: 8})
	obj := sys.Heap().Malloc(mem.MainThread, 64, heap.Stack(heap.Frame{File: "o.c", Line: 2}))
	reader := func(t *cheetah.T) {
		for j := 0; j < 2000; j++ {
			t.Load(obj)
			t.Compute(5)
		}
	}
	writer := func(t *cheetah.T) {
		for j := 0; j < 2000; j++ {
			t.Store(obj.Add(4))
			t.Compute(5)
		}
	}
	own := baseline.NewOwnership()
	sys.RunWith(cheetah.Program{Name: "rwo", Phases: []cheetah.Phase{
		cheetah.ParallelPhase("work", reader, reader, writer),
	}}, own)
	if own.Invalidations == 0 {
		t.Error("reader/writer interleaving produced no invalidations")
	}
}

func TestFootprintHelpers(t *testing.T) {
	if got := baseline.TwoEntryBytesPerLine(); got != 16 {
		t.Errorf("two-entry footprint = %d, want 16", got)
	}
	if got := baseline.OwnershipBytesPerLine(16); got != 8 {
		t.Errorf("ownership footprint at 16 threads = %d, want 8", got)
	}
	if got := baseline.OwnershipBytesPerLine(224); got != 32 {
		t.Errorf("ownership footprint at 224 threads = %d, want 32", got)
	}
	// The paper's scalability point: the ownership bitmap grows with
	// thread count while the two-entry table is constant.
	if baseline.OwnershipBytesPerLine(1024) <= baseline.TwoEntryBytesPerLine() {
		t.Error("ownership footprint should exceed two-entry at 1024 threads")
	}
}
