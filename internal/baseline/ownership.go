package baseline

import (
	"repro/internal/exec"
	"repro/internal/mem"
)

// Ownership implements the invalidation-counting scheme of Zhao et al.
// (VEE'11) that Cheetah's two-entry table replaces (§2.3): each cache
// line keeps the full set of owning threads — one bit per thread — and a
// write to a line owned by others counts as an invalidation and resets
// ownership to the writer. The paper's critique is memory: "this approach
// cannot easily scale to more than 32 threads because of excessive memory
// consumption". The rule ablation compares its counts and footprint with
// the two-entry table's.
type Ownership struct {
	exec.BaseProbe
	lines map[uint64]*ownerSet
	// Invalidations is the total count across lines.
	Invalidations uint64
	// parallel gates recording, matching Cheetah's parallel-phase rule so
	// the comparison is about the counting rule alone.
	parallel bool
}

// ownerSet is the per-line ownership bitmap, growing one bit per thread.
type ownerSet struct {
	bits  []uint64
	count int
}

func (o *ownerSet) has(t mem.ThreadID) bool {
	w := int(t) >> 6
	return w < len(o.bits) && o.bits[w]&(1<<uint(t&63)) != 0
}

func (o *ownerSet) add(t mem.ThreadID) {
	w := int(t) >> 6
	for len(o.bits) <= w {
		o.bits = append(o.bits, 0)
	}
	if o.bits[w]&(1<<uint(t&63)) == 0 {
		o.bits[w] |= 1 << uint(t&63)
		o.count++
	}
}

func (o *ownerSet) resetTo(t mem.ThreadID) {
	for i := range o.bits {
		o.bits[i] = 0
	}
	o.count = 0
	o.add(t)
}

// NewOwnership creates the tracker.
func NewOwnership() *Ownership {
	return &Ownership{lines: make(map[uint64]*ownerSet)}
}

// ProgramStart implements exec.Probe.
func (z *Ownership) ProgramStart(string, int) {
	z.lines = make(map[uint64]*ownerSet)
	z.Invalidations = 0
}

// PhaseStart implements exec.Probe.
func (z *Ownership) PhaseStart(ph exec.PhaseInfo) { z.parallel = ph.Parallel }

// Access implements exec.Probe, applying the ownership rule to every
// access (full instrumentation, no sampling).
func (z *Ownership) Access(a mem.Access, instrs uint64) uint64 {
	if !z.parallel {
		return 0
	}
	line := a.Addr.Line()
	o := z.lines[line]
	if o == nil {
		o = &ownerSet{}
		z.lines[line] = o
	}
	if a.Kind.IsWrite() {
		if o.count > 0 && !(o.count == 1 && o.has(a.Thread)) {
			z.Invalidations++
		}
		o.resetTo(a.Thread)
	} else {
		o.add(a.Thread)
	}
	return 0
}

// OwnershipBytesPerLine reports the tracker's per-line footprint in bytes
// for the given thread count — the scaling cost the paper criticizes (one
// bit per thread, rounded to words).
func OwnershipBytesPerLine(threads int) int {
	return ((threads + 63) / 64) * 8
}

// TwoEntryBytesPerLine is the two-entry table's fixed footprint: two
// (thread id, access type) entries.
func TwoEntryBytesPerLine() int { return 2 * 8 }
