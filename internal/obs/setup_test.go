package obs_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// signalHelperEnv re-execs this test binary as a process that wires
// Setup and then spins emitting spans until killed — the only way to
// exercise the SIGINT/SIGTERM path for real, since the handler has to
// terminate its process.
const signalHelperEnv = "OBS_TEST_SIGNAL_HELPER"

func TestMain(m *testing.M) {
	if dir := os.Getenv(signalHelperEnv); dir != "" {
		signalHelperMain(dir)
		return
	}
	os.Exit(m.Run())
}

func signalHelperMain(dir string) {
	cleanup, _, err := obs.Setup("", filepath.Join(dir, "spans.jsonl"), filepath.Join(dir, "trace.json"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cleanup()
	start := time.Now()
	obs.Span("test", "warmup", start, start.Add(time.Millisecond), 0, nil)
	fmt.Println("ready") // parent waits for this before signalling
	for i := 0; ; i++ {
		s := time.Now()
		obs.Span("test", fmt.Sprintf("spin-%d", i), s, s.Add(time.Microsecond), 0, nil)
		time.Sleep(time.Millisecond)
	}
}

// TestSetupFinalizesTracesOnSignal: killing a traced run mid-flight must
// still leave a loadable Chrome trace (closed JSON array) and a span
// log of complete lines — the interrupted sweep is exactly the one
// whose traces get read.
func TestSetupFinalizesTracesOnSignal(t *testing.T) {
	for _, sig := range []syscall.Signal{syscall.SIGINT, syscall.SIGTERM} {
		t.Run(sig.String(), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), signalHelperEnv+"="+dir)
			cmd.Stderr = os.Stderr
			out, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer cmd.Process.Kill()

			// Wait until the helper is actively tracing, then kill it.
			line, err := bufio.NewReader(out).ReadString('\n')
			if err != nil || strings.TrimSpace(line) != "ready" {
				t.Fatalf("helper never became ready: %q, %v", line, err)
			}
			if err := cmd.Process.Signal(sig); err != nil {
				t.Fatal(err)
			}
			werr := cmd.Wait()
			if ee, ok := werr.(*exec.ExitError); !ok || ee.Success() {
				t.Fatalf("helper should die from the signal, got %v", werr)
			}

			// The Chrome trace must parse as a complete JSON array with
			// the helper's spans in it.
			data, err := os.ReadFile(filepath.Join(dir, "trace.json"))
			if err != nil {
				t.Fatal(err)
			}
			var events []map[string]any
			if err := json.Unmarshal(data, &events); err != nil {
				t.Fatalf("chrome trace left unloadable after %v: %v\n%s", sig, err, data)
			}
			if len(events) == 0 {
				t.Fatalf("chrome trace finalized empty after %v", sig)
			}

			// Every span-log line must be complete JSON (a torn final
			// line means the writer was not flushed).
			raw, err := os.ReadFile(filepath.Join(dir, "spans.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
			if len(lines) == 0 || lines[0] == "" {
				t.Fatalf("span log empty after %v", sig)
			}
			for i, ln := range lines {
				var span map[string]any
				if err := json.Unmarshal([]byte(ln), &span); err != nil {
					t.Fatalf("span log line %d torn after %v: %v\n%q", i+1, sig, err, ln)
				}
			}
		})
	}
}
