package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// A scrape that is mid-render when the server closes must still receive
// its complete body: Close drains in-flight requests via Shutdown
// instead of severing connections. The gauge function blocks the
// render until the test has already asked the server to close.
func TestCloseWaitsForInFlightScrape(t *testing.T) {
	reg := NewRegistry()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	reg.GaugeFunc("obs_test_slow_gauge", "blocks until released", func() float64 {
		if !once {
			once = true
			close(entered)
			<-release
		}
		return 42
	})

	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}

	type scrape struct {
		body string
		code int
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- scrape{body: string(b), code: resp.StatusCode, err: err}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never reached the gauge function")
	}

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// Give Close a moment to enter Shutdown, then let the scrape finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}

	select {
	case s := <-got:
		if s.err != nil {
			t.Fatalf("scrape interrupted by shutdown: %v", s.err)
		}
		if s.code != http.StatusOK {
			t.Fatalf("scrape status = %d, want 200", s.code)
		}
		if !strings.Contains(s.body, "obs_test_slow_gauge 42") {
			t.Fatalf("scrape body missing gauge value:\n%s", s.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never completed")
	}
}

// After Close returns, new connections must be refused — the graceful
// window only covers requests already in flight.
func TestCloseStopsNewScrapes(t *testing.T) {
	reg := NewRegistry()
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("scrape after Close succeeded, want connection refused")
	}
}
