package obs

// Setup wires the opt-in CLI observability surface in one call: a
// metrics/pprof HTTP server when metricsAddr is non-empty, and the
// global span tracer when either trace path is. addr is the bound
// listen address ("" when no server was requested), so callers can
// print the live URL even for ":0". The returned cleanup — never nil —
// stops the server, detaches the tracer, and finalizes the trace
// files; call it once on exit.
func Setup(metricsAddr, spanLog, chromeTrace string) (cleanup func(), addr string, err error) {
	var srv *Server
	if metricsAddr != "" {
		if srv, err = StartServer(metricsAddr, Default()); err != nil {
			return func() {}, "", err
		}
	}
	tr, err := OpenTracer(spanLog, chromeTrace)
	if err != nil {
		srv.Close()
		return func() {}, "", err
	}
	SetTracer(tr)
	return func() {
		SetTracer(nil)
		if tr != nil {
			tr.Close()
		}
		srv.Close()
	}, srv.Addr(), nil
}
