package obs

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Setup wires the opt-in CLI observability surface in one call: a
// metrics/pprof HTTP server when metricsAddr is non-empty, and the
// global span tracer when either trace path is. addr is the bound
// listen address ("" when no server was requested), so callers can
// print the live URL even for ":0". The returned cleanup — never nil,
// idempotent — stops the server, detaches the tracer, and finalizes the
// trace files; call it once on exit.
//
// Setup also finalizes on SIGINT/SIGTERM: an interrupted sweep is
// precisely the run whose traces are worth reading, so teardown runs
// before the process dies and the files stay loadable (the Chrome trace
// in particular needs its closing bracket). The signal is then
// re-raised so the process still reports the conventional
// killed-by-signal exit status.
func Setup(metricsAddr, spanLog, chromeTrace string) (cleanup func(), addr string, err error) {
	var srv *Server
	if metricsAddr != "" {
		if srv, err = StartServer(metricsAddr, Default()); err != nil {
			return func() {}, "", err
		}
	}
	tr, err := OpenTracer(spanLog, chromeTrace)
	if err != nil {
		srv.Close()
		return func() {}, "", err
	}
	SetTracer(tr)

	var once sync.Once
	finalize := func() {
		once.Do(func() {
			SetTracer(nil)
			if tr != nil {
				tr.Close()
			}
			srv.Close()
		})
	}
	sigc := make(chan os.Signal, 1)
	quit := make(chan struct{})
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-sigc:
			finalize()
			signal.Stop(sigc)
			// With the handler stopped, re-sending restores the default
			// disposition: the process dies with the signal's status.
			// The Exit below is the fallback for the window before the
			// re-raised signal is delivered.
			if p, perr := os.FindProcess(os.Getpid()); perr == nil {
				_ = p.Signal(sig)
			}
			if s, ok := sig.(syscall.Signal); ok {
				os.Exit(128 + int(s))
			}
			os.Exit(1)
		case <-quit:
		}
	}()

	var stop sync.Once
	return func() {
		stop.Do(func() {
			signal.Stop(sigc)
			close(quit)
		})
		finalize()
	}, srv.Addr(), nil
}
