package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestGoldenSnapshot pins the exact rendered output of a small registry
// in both exposition formats. If this changes, scrapers and dashboards
// see the change too — update deliberately.
func TestGoldenSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cheetah_test_ops_total", "Test operations.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("cheetah_test_depth", "Test queue depth.")
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("cheetah_test_ratio", "Test sampled ratio.", func() float64 { return 0.25 })
	h := r.Histogram("cheetah_test_seconds", "Test durations.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(100)

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	wantProm := `# HELP cheetah_test_depth Test queue depth.
# TYPE cheetah_test_depth gauge
cheetah_test_depth 5
# HELP cheetah_test_ops_total Test operations.
# TYPE cheetah_test_ops_total counter
cheetah_test_ops_total 42
# HELP cheetah_test_ratio Test sampled ratio.
# TYPE cheetah_test_ratio gauge
cheetah_test_ratio 0.25
# HELP cheetah_test_seconds Test durations.
# TYPE cheetah_test_seconds histogram
cheetah_test_seconds_bucket{le="0.1"} 1
cheetah_test_seconds_bucket{le="1"} 3
cheetah_test_seconds_bucket{le="10"} 3
cheetah_test_seconds_bucket{le="+Inf"} 4
cheetah_test_seconds_sum 101.05
cheetah_test_seconds_count 4
`
	if prom.String() != wantProm {
		t.Errorf("prometheus snapshot mismatch:\ngot:\n%s\nwant:\n%s", prom.String(), wantProm)
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{
  "cheetah_test_depth": 5,
  "cheetah_test_ops_total": 42,
  "cheetah_test_ratio": 0.25,
  "cheetah_test_seconds": {"count": 4, "sum": 101.05, "buckets": {"0.1": 1, "1": 3, "10": 3, "+Inf": 4}}
}
`
	if js.String() != wantJSON {
		t.Errorf("json snapshot mismatch:\ngot:\n%s\nwant:\n%s", js.String(), wantJSON)
	}
	// The JSON rendering must also be valid JSON.
	var parsed map[string]any
	if err := json.Unmarshal([]byte(js.String()), &parsed); err != nil {
		t.Fatalf("rendered JSON does not parse: %v", err)
	}
	if parsed["cheetah_test_ops_total"].(float64) != 42 {
		t.Errorf("parsed counter = %v, want 42", parsed["cheetah_test_ops_total"])
	}
}

// TestPrometheusConformance checks the text exposition against the
// format rules a real Prometheus scraper enforces: every sample line
// matches the grammar, every metric has exactly one TYPE line appearing
// before its samples, counters end in _total, histograms expose
// cumulative non-decreasing buckets with a trailing +Inf equal to
// _count, and no name is emitted twice.
func TestPrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_events_total", "Events.").Add(3)
	r.Gauge("app_depth", "Depth.").Set(-4)
	r.GaugeFunc("app_frac", "Fraction.", func() float64 { return 1.5e-3 })
	h := r.Histogram("app_lat_seconds", "Latency.", nil)
	for i := 0; i < 50; i++ {
		h.Observe(float64(i) * 0.01)
	}
	RegisterRuntimeMetrics(r) // conformance must hold with runtime gauges too

	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}

	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (-?[0-9.eE+]+|\+Inf|NaN)$`)
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	helpRe := regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)

	typed := map[string]string{}
	seenSample := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := typed[m[1]]; dup {
				t.Fatalf("duplicate TYPE for %s", m[1])
			}
			typed[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if !helpRe.MatchString(line) {
				t.Fatalf("malformed HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("sample line does not match exposition grammar: %q", line)
		}
		name := m[1]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if bt := strings.TrimSuffix(name, suf); bt != name && typed[bt] == "histogram" {
				base = bt
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no preceding TYPE line", line)
		}
		if seenSample[name] && typed[base] != "histogram" {
			t.Fatalf("metric %s emitted twice", name)
		}
		seenSample[name] = true
		if typed[base] == "counter" && !strings.HasSuffix(base, "_total") {
			t.Errorf("counter %s does not end in _total", base)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Histogram invariants: buckets cumulative and non-decreasing,
	// +Inf bucket == _count.
	var lastCum uint64
	var infVal, countVal uint64
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "app_lat_seconds_bucket{le=\"+Inf\"}") {
			v, _ := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			infVal = v
			if v < lastCum {
				t.Errorf("+Inf bucket %d below prior cumulative %d", v, lastCum)
			}
		} else if strings.HasPrefix(line, "app_lat_seconds_bucket") {
			v, _ := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			if v < lastCum {
				t.Errorf("bucket sequence not cumulative: %d after %d", v, lastCum)
			}
			lastCum = v
		} else if strings.HasPrefix(line, "app_lat_seconds_count ") {
			countVal, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		}
	}
	if infVal != countVal || countVal != 50 {
		t.Errorf("+Inf bucket %d, count %d, want both 50", infVal, countVal)
	}
}

func TestRegistryIdempotentAndMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Error("re-registering a counter returned a different handle")
	}
	a.Add(5)
	if r.CounterValue("x_total") != 5 {
		t.Errorf("CounterValue = %d, want 5", r.CounterValue("x_total"))
	}
	if r.CounterValue("missing") != 0 {
		t.Error("CounterValue(missing) != 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		r.Gauge("x_total", "x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid name did not panic")
			}
		}()
		r.Counter("9bad name", "x")
	}()
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.SetMax(5)
	if g.Value() != 10 {
		t.Errorf("SetMax lowered gauge to %d", g.Value())
	}
	g.SetMax(20)
	if g.Value() != 20 {
		t.Errorf("SetMax failed to raise gauge: %d", g.Value())
	}
}

func TestHistogramSumPrecision(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s_seconds", "", []float64{1})
	h.Observe(0.1)
	h.Observe(0.2)
	if math.Abs(h.Sum()-0.3) > 1e-12 {
		t.Errorf("Sum = %v, want 0.3", h.Sum())
	}
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2", h.Count())
	}
}
