package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

var runtimeOnce sync.Once

// RegisterRuntimeMetrics adds sampled Go-runtime and process gauges to
// reg: goroutines, heap alloc/sys, cumulative GC cycles and pause time,
// and (on Linux) resident set size read from /proc/self/statm. Values
// are sampled lazily at render time, so registration costs nothing on
// any hot path. Idempotent; StartServer calls it automatically.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == defaultRegistry {
		// Guard the common case against racing first registrations.
		runtimeOnce.Do(func() { registerRuntimeMetrics(reg) })
		return
	}
	registerRuntimeMetrics(reg)
}

func registerRuntimeMetrics(reg *Registry) {
	reg.GaugeFunc("go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	reg.GaugeFunc("go_heap_sys_bytes", "Bytes of heap obtained from the OS.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapSys)
	})
	reg.GaugeFunc("go_gc_cycles", "Completed GC cycles since process start.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.NumGC)
	})
	reg.GaugeFunc("go_gc_pause_seconds", "Cumulative GC stop-the-world pause time.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.PauseTotalNs) / 1e9
	})
	if runtime.GOOS == "linux" {
		reg.GaugeFunc("process_resident_memory_bytes", "Resident set size from /proc/self/statm.", func() float64 {
			return float64(residentBytes())
		})
	}
}

// residentBytes reads RSS from /proc/self/statm (second field, pages).
func residentBytes() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
