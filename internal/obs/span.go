package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one record in the span log. The field set is the Chrome
// trace-event format (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// so the same records serialize both as JSONL (one object per line) and
// as a Chrome trace array loadable in chrome://tracing or Perfetto.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"` // "X" complete span, "i" instant
	TS   int64          `json:"ts"` // microseconds since tracer start
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: "t" thread
	Args map[string]any `json:"args,omitempty"`
}

// Tracer serializes span/event records to up to two sinks: a JSONL
// writer (one event per line) and a Chrome trace-event writer (a JSON
// array). Either may be nil. All methods are safe for concurrent use;
// a nil *Tracer is a valid no-op receiver so call sites need no guards.
type Tracer struct {
	mu          sync.Mutex
	jsonl       io.Writer
	chrome      io.Writer
	chromeCount int
	start       time.Time
	pid         int
	closers     []io.Closer
}

// NewTracer builds a tracer over the given sinks (either may be nil).
func NewTracer(jsonl, chrome io.Writer) *Tracer {
	return &Tracer{jsonl: jsonl, chrome: chrome, start: time.Now(), pid: os.Getpid()}
}

// OpenTracer opens a tracer writing JSONL to jsonlPath and a Chrome
// trace array to chromePath; empty paths disable that sink. Returns nil
// (a valid no-op tracer) if both paths are empty.
func OpenTracer(jsonlPath, chromePath string) (*Tracer, error) {
	if jsonlPath == "" && chromePath == "" {
		return nil, nil
	}
	var jw, cw io.Writer
	var closers []io.Closer
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return nil, fmt.Errorf("obs: span log: %w", err)
		}
		jw = f
		closers = append(closers, f)
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			for _, c := range closers {
				c.Close()
			}
			return nil, fmt.Errorf("obs: chrome trace: %w", err)
		}
		cw = f
		closers = append(closers, f)
	}
	t := NewTracer(jw, cw)
	t.closers = closers
	return t, nil
}

// Span records a completed span from start to end on virtual track tid.
func (t *Tracer) Span(cat, name string, start, end time.Time, tid int, args map[string]any) {
	if t == nil {
		return
	}
	dur := end.Sub(start).Microseconds()
	if dur < 0 {
		dur = 0
	}
	t.emit(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: start.Sub(t.start).Microseconds(), Dur: dur,
		PID: t.pid, TID: tid, Args: args,
	})
}

// Event records an instant event on virtual track tid.
func (t *Tracer) Event(cat, name string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.emit(TraceEvent{
		Name: name, Cat: cat, Ph: "i",
		TS: time.Since(t.start).Microseconds(),
		PID: t.pid, TID: tid, S: "t", Args: args,
	})
}

func (t *Tracer) emit(ev TraceEvent) {
	b, err := json.Marshal(ev) // map keys marshal sorted: deterministic
	if err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jsonl != nil {
		t.jsonl.Write(b)
		io.WriteString(t.jsonl, "\n")
	}
	if t.chrome != nil {
		if t.chromeCount == 0 {
			io.WriteString(t.chrome, "[\n")
		} else {
			io.WriteString(t.chrome, ",\n")
		}
		t.chrome.Write(b)
		t.chromeCount++
	}
}

// Close finalizes the Chrome trace array and closes any files the
// tracer opened. Safe on a nil tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.chrome != nil {
		if t.chromeCount == 0 {
			io.WriteString(t.chrome, "[")
		}
		io.WriteString(t.chrome, "\n]\n")
		t.chrome = nil
	}
	t.jsonl = nil
	closers := t.closers
	t.closers = nil
	t.mu.Unlock()
	var first error
	for _, c := range closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// defaultTracer is the process-wide tracer instrumentation sites emit
// through, so subsystems need no tracer plumbed through their configs.
// When unset (the default), emission is one atomic load and a branch.
var defaultTracer atomic.Pointer[Tracer]

// SetTracer installs t as the process-wide tracer (nil to disable).
func SetTracer(t *Tracer) { defaultTracer.Store(t) }

// CurrentTracer returns the installed tracer, possibly nil (which is
// still a valid no-op receiver).
func CurrentTracer() *Tracer { return defaultTracer.Load() }

// Span records a completed span on the process-wide tracer, if any.
func Span(cat, name string, start, end time.Time, tid int, args map[string]any) {
	defaultTracer.Load().Span(cat, name, start, end, tid, args)
}

// Event records an instant event on the process-wide tracer, if any.
func Event(cat, name string, tid int, args map[string]any) {
	defaultTracer.Load().Event(cat, name, tid, args)
}

// TracingEnabled reports whether a process-wide tracer is installed,
// letting call sites skip building args maps when tracing is off.
func TracingEnabled() bool { return defaultTracer.Load() != nil }
