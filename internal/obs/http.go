package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in live observability endpoint: Prometheus text at
// /metrics, expvar-style JSON at /metrics.json, Go profiling under
// /debug/pprof/, and a /healthz liveness probe. It binds its own
// listener and mux (never http.DefaultServeMux) so importing this
// package has zero side effects on programs that don't opt in.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer binds addr (e.g. "127.0.0.1:9137", or ":0" for an
// ephemeral port) and serves reg in the background until Close.
func StartServer(addr string, reg *Registry) (*Server, error) {
	RegisterRuntimeMetrics(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
