package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in live observability endpoint: Prometheus text at
// /metrics, expvar-style JSON at /metrics.json, Go profiling under
// /debug/pprof/, and a /healthz liveness probe. It binds its own
// listener and mux (never http.DefaultServeMux) so importing this
// package has zero side effects on programs that don't opt in.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Register mounts the observability routes — /metrics, /metrics.json,
// /healthz, and /debug/pprof/* — onto mux, serving reg. StartServer
// uses it for the standalone endpoint; long-lived services (cheetahd)
// call it to serve metrics and profiling from the same mux as their
// API, so one port carries both.
func Register(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartServer binds addr (e.g. "127.0.0.1:9137", or ":0" for an
// ephemeral port) and serves reg in the background until Close.
func StartServer(addr string, reg *Registry) (*Server, error) {
	RegisterRuntimeMetrics(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	Register(mux, reg)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// closeDeadline bounds how long Close waits for in-flight scrapes. Long
// enough for any real /metrics render, short enough that a wedged
// connection cannot stall process exit noticeably.
const closeDeadline = 2 * time.Second

// Shutdown stops the server gracefully: the listener closes at once (no
// new scrapes), but requests already in flight run to completion until
// ctx expires, at which point the survivors are dropped. Safe on nil.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Deadline passed with connections still open: drop them. The
		// graceful window is best-effort, exit must not hang.
		s.srv.Close()
	}
	return err
}

// Close stops the server, letting in-flight scrapes finish within a
// short deadline instead of severing them mid-response — a Prometheus
// scrape racing process exit gets its complete body. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), closeDeadline)
	defer cancel()
	return s.Shutdown(ctx)
}
