package obs

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTracerJSONLAndChrome(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "spans.jsonl")
	chromePath := filepath.Join(dir, "trace.json")
	tr, err := OpenTracer(jsonlPath, chromePath)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	tr.Span("sweep", "cell", base, base.Add(1500*time.Microsecond), 3,
		map[string]any{"id": "c1", "attempt": 1})
	tr.Event("sweep", "requeue", 0, map[string]any{"id": "c2"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// JSONL: one valid object per line with the trace-event fields.
	raw, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	var span TraceEvent
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if span.Ph != "X" || span.Name != "cell" || span.Cat != "sweep" || span.TID != 3 {
		t.Errorf("span fields wrong: %+v", span)
	}
	if span.Dur < 1400 || span.Dur > 1600 {
		t.Errorf("span dur = %dµs, want ~1500", span.Dur)
	}
	if span.Args["id"] != "c1" {
		t.Errorf("span args = %v", span.Args)
	}
	var inst TraceEvent
	if err := json.Unmarshal([]byte(lines[1]), &inst); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if inst.Ph != "i" || inst.S != "t" {
		t.Errorf("instant fields wrong: %+v", inst)
	}

	// Chrome file: a single well-formed JSON array of the same events.
	rawC, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var arr []TraceEvent
	if err := json.Unmarshal(rawC, &arr); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v", err)
	}
	if len(arr) != 2 || arr[0].Name != "cell" || arr[1].Name != "requeue" {
		t.Errorf("chrome trace contents wrong: %+v", arr)
	}
}

func TestTracerEmptyChromeStillValidJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	tr, err := OpenTracer("", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	var arr []TraceEvent
	if err := json.Unmarshal(raw, &arr); err != nil {
		t.Fatalf("empty chrome trace not valid JSON: %v", err)
	}
	if len(arr) != 0 {
		t.Errorf("expected empty array, got %d events", len(arr))
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Span("a", "b", time.Now(), time.Now(), 0, nil) // must not panic
	tr.Event("a", "b", 0, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr2, err := OpenTracer("", ""); err != nil || tr2 != nil {
		t.Fatalf("OpenTracer(\"\",\"\") = %v, %v; want nil, nil", tr2, err)
	}

	// Global helpers with no tracer installed are no-ops too.
	SetTracer(nil)
	Span("a", "b", time.Now(), time.Now(), 0, nil)
	Event("a", "b", 0, nil)
	if TracingEnabled() {
		t.Error("TracingEnabled with nil tracer")
	}
}

func TestGlobalTracerInstall(t *testing.T) {
	jsonlPath := filepath.Join(t.TempDir(), "g.jsonl")
	tr, err := OpenTracer(jsonlPath, "")
	if err != nil {
		t.Fatal(err)
	}
	SetTracer(tr)
	defer SetTracer(nil)
	if !TracingEnabled() {
		t.Fatal("TracingEnabled false after SetTracer")
	}
	Event("t", "ping", 0, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(jsonlPath)
	if !strings.Contains(string(raw), `"ping"`) {
		t.Errorf("global event not written: %q", raw)
	}
}

func TestStartServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv_hits_total", "Hits.").Add(9)
	s, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	get := func(path string) (string, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String(), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "srv_hits_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "go_goroutines") {
		t.Errorf("/metrics missing runtime gauges")
	}
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}

	body, ct = get("/metrics.json")
	var parsed map[string]any
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if parsed["srv_hits_total"].(float64) != 9 {
		t.Errorf("/metrics.json counter = %v", parsed["srv_hits_total"])
	}
	if !strings.Contains(ct, "application/json") {
		t.Errorf("/metrics.json content-type = %q", ct)
	}

	body, _ = get("/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}
