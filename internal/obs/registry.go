// Package obs is the runtime observability layer: a zero-dependency
// registry of counters, gauges and histograms, rendered as both
// expvar-style JSON and Prometheus text exposition; a structured
// span/event tracer emitting JSONL and Chrome trace-event files; and an
// opt-in HTTP endpoint serving the metrics next to net/http/pprof.
//
// Design constraints, in order:
//
//  1. Instrumentation must be strictly off the report path. Nothing in
//     this package feeds back into simulation, cell identity or the
//     content-addressed result cache; every byte-identical determinism
//     suite passes with metrics enabled because metrics cannot reach the
//     bytes being compared.
//  2. Hot-path cost is one atomic add, no allocations, no locks. Metric
//     handles are resolved once at package init (or per subsystem
//     setup); Counter.Add / Gauge.Set are plain atomics. Registry locks
//     are taken only at registration and render time.
//  3. Output is deterministic: metrics render in sorted name order with
//     stable float formatting, so snapshots golden-pin cleanly.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v    atomic.Uint64
	name string
	help string
}

// Add increments the counter by n. One atomic add; safe and alloc-free
// on hot paths.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Stored as an int64.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v is larger, for high-water marks.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// gaugeFunc is a gauge sampled at render time (runtime/GC/RSS probes).
type gaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: Observe is a bucket search plus two atomics.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is the default histogram bucketing for second-valued
// durations: 1ms to ~100s in powers of ~4.
var DurationBuckets = []float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10, 30, 120}

// metric is the registry's uniform view of one registered metric.
type metric struct {
	kind string // "counter", "gauge", "gaugefunc", "histogram"
	c    *Counter
	g    *Gauge
	gf   *gaugeFunc
	h    *Histogram
	help string
}

// Registry holds a flat namespace of metrics. All methods are safe for
// concurrent use; registration is idempotent (re-registering a name
// returns the existing metric, and panics only on a kind mismatch,
// which is a programming error).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// defaultRegistry is the process-wide registry package-level helpers
// use; subsystems register their metrics here at init.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, kind string, m metric) metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[name]; ok {
		if old.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, old.kind))
		}
		return old
	}
	r.metrics[name] = m
	return m
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	return r.register(name, "counter", metric{kind: "counter", c: c, help: help}).c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	return r.register(name, "gauge", metric{kind: "gauge", g: g, help: help}).g
}

// GaugeFunc registers a gauge whose value is sampled by fn at render
// time. Re-registering a name keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	gf := &gaugeFunc{name: name, help: help, fn: fn}
	r.register(name, "gaugefunc", metric{kind: "gaugefunc", gf: gf, help: help})
}

// Histogram registers (or returns the existing) histogram under name
// with the given ascending upper bounds (nil uses DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	h := &Histogram{name: name, help: help, bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	return r.register(name, "histogram", metric{kind: "histogram", h: h, help: help}).h
}

// Counter registers a counter on the default registry.
func GetCounter(name, help string) *Counter { return defaultRegistry.Counter(name, help) }

// GetGauge registers a gauge on the default registry.
func GetGauge(name, help string) *Gauge { return defaultRegistry.Gauge(name, help) }

// GetHistogram registers a histogram on the default registry.
func GetHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, help, bounds)
}

// CounterValue returns the named counter's current value (0 if absent
// or not a counter) — the hook bench stamping and monotonicity tests
// read through.
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok || m.c == nil {
		return 0
	}
	return m.c.Value()
}

// names returns the registered metric names sorted.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (r *Registry) get(name string) (metric, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	return m, ok
}

// formatFloat renders a float the same way everywhere: shortest
// round-trippable representation, so golden snapshots are stable.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, name := range r.names() {
		m, ok := r.get(name)
		if !ok {
			continue
		}
		typ := m.kind
		if typ == "gaugefunc" {
			typ = "gauge"
		}
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, strings.ReplaceAll(m.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		switch m.kind {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", name, m.c.Value())
		case "gauge":
			fmt.Fprintf(&b, "%s %d\n", name, m.g.Value())
		case "gaugefunc":
			fmt.Fprintf(&b, "%s %s\n", name, formatFloat(m.gf.fn()))
		case "histogram":
			h := m.h
			var cum uint64
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatFloat(ub), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
			fmt.Fprintf(&b, "%s_sum %s\n", name, formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", name, h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders every metric as one JSON object keyed by metric
// name (expvar style), sorted, with histograms as nested objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{")
	first := true
	for _, name := range r.names() {
		m, ok := r.get(name)
		if !ok {
			continue
		}
		if !first {
			b.WriteString(",")
		}
		first = false
		fmt.Fprintf(&b, "\n  %q: ", name)
		switch m.kind {
		case "counter":
			fmt.Fprintf(&b, "%d", m.c.Value())
		case "gauge":
			fmt.Fprintf(&b, "%d", m.g.Value())
		case "gaugefunc":
			b.WriteString(jsonFloat(m.gf.fn()))
		case "histogram":
			h := m.h
			fmt.Fprintf(&b, "{\"count\": %d, \"sum\": %s, \"buckets\": {", h.Count(), jsonFloat(h.Sum()))
			var cum uint64
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%q: %d, ", formatFloat(ub), cum)
			}
			fmt.Fprintf(&b, "\"+Inf\": %d}}", h.Count())
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonFloat renders a float as a JSON number (NaN/Inf become null,
// which JSON cannot represent as numbers).
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return formatFloat(v)
}
