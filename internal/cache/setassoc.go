package cache

import "math/bits"

// setAssoc is a set-associative cache of line indices with LRU replacement.
// It tracks only presence (tags), not data — the simulator needs to know
// where a line can be found, not its contents.
type setAssoc struct {
	sets int
	ways int
	// tags[set*ways+way] holds the line index or tagEmpty.
	tags []uint64
	// lru[set*ways+way] holds a recency stamp; larger is more recent.
	lru   []uint64
	clock uint64
}

const tagEmpty = ^uint64(0)

func newSetAssoc(sets, ways int) *setAssoc {
	if sets <= 0 || ways <= 0 {
		panic("cache: set-associative structure needs positive sets and ways")
	}
	c := &setAssoc{
		sets: sets,
		ways: ways,
		tags: make([]uint64, sets*ways),
		lru:  make([]uint64, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = tagEmpty
	}
	return c
}

func (c *setAssoc) setFor(line uint64) int { return int(line % uint64(c.sets)) }

// touch reports whether line is present, refreshing its LRU stamp if so.
func (c *setAssoc) touch(line uint64) bool {
	base := c.setFor(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.clock++
			c.lru[base+w] = c.clock
			return true
		}
	}
	return false
}

// insert adds line, evicting the LRU way of its set when full. Inserting a
// line that is already present just refreshes it.
func (c *setAssoc) insert(line uint64) {
	base := c.setFor(line) * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.clock++
			c.lru[i] = c.clock
			return
		}
		if c.tags[i] == tagEmpty {
			victim = i
			// An empty way always wins over evicting a resident line.
			c.clock++
			c.tags[i] = line
			c.lru[i] = c.clock
			return
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.clock++
	c.tags[victim] = line
	c.lru[victim] = c.clock
}

// remove drops line if present (coherence invalidation or write-back).
func (c *setAssoc) remove(line uint64) {
	base := c.setFor(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.tags[base+w] = tagEmpty
			c.lru[base+w] = 0
			return
		}
	}
}

// bitset is a fixed-capacity set of core indices.
type bitset struct {
	words []uint64
}

func newBitset(n int) bitset {
	return bitset{words: make([]uint64, (n+63)/64)}
}

func (b bitset) set(i int)      { b.words[i>>6] |= 1 << uint(i&63) }
func (b bitset) unset(i int)    { b.words[i>>6] &^= 1 << uint(i&63) }
func (b bitset) get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b.words {
		n += popcount(w)
	}
	return n
}

// countExcept returns the number of set bits other than i.
func (b bitset) countExcept(i int) int {
	n := b.count()
	if b.get(i) {
		n--
	}
	return n
}

// forEach calls fn for every set bit, in increasing order.
func (b bitset) forEach(fn func(int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := trailingZeros(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
