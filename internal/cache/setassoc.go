package cache

import "math/bits"

// setAssoc is a set-associative cache of line indices with LRU replacement.
// It tracks only presence (tags), not data — the simulator needs to know
// where a line can be found, not its contents.
type setAssoc struct {
	sets int
	ways int
	// mask is sets-1 when sets is a power of two (the common case for the
	// private caches), letting setFor skip the modulo; -1 otherwise.
	mask int
	// keys[set*ways+way] holds line+1, so the zero value of a freshly
	// allocated (and therefore zeroed) array already means "empty way" —
	// simulators are built per experiment cell, and skipping an explicit
	// sentinel fill measurably cuts cell setup cost.
	keys []uint64
	// lru[set*ways+way] holds a recency stamp; larger is more recent.
	lru   []uint64
	clock uint64
}

func newSetAssoc(sets, ways int) *setAssoc {
	if sets <= 0 || ways <= 0 {
		panic("cache: set-associative structure needs positive sets and ways")
	}
	// One backing allocation serves both arrays: simulators are built per
	// experiment cell, and halving the allocation count (and zeroing
	// passes) measurably cuts cell setup cost.
	n := sets * ways
	backing := make([]uint64, 2*n)
	c := &setAssoc{
		sets: sets,
		ways: ways,
		mask: -1,
		keys: backing[:n:n],
		lru:  backing[n:],
	}
	if sets&(sets-1) == 0 {
		c.mask = sets - 1
	}
	return c
}

func (c *setAssoc) setFor(line uint64) int {
	if c.mask >= 0 {
		return int(line) & c.mask
	}
	return int(line % uint64(c.sets))
}

// touch reports whether line is present, refreshing its LRU stamp if so.
// A hit found in a later way is swapped to the set's first way so bursty
// re-touches match on the first comparison; replacement semantics are
// unaffected, since recency lives in the stamps, not the positions.
func (c *setAssoc) touch(line uint64) bool {
	base := c.setFor(line) * c.ways
	keys := c.keys[base : base+c.ways]
	key := line + 1
	for w := range keys {
		if keys[w] == key {
			c.clock++
			if w != 0 {
				lru := c.lru[base : base+c.ways]
				keys[0], keys[w] = keys[w], keys[0]
				lru[0], lru[w] = lru[w], lru[0]
				c.lru[base] = c.clock
				return true
			}
			c.lru[base+w] = c.clock
			return true
		}
	}
	return false
}

// insert adds line, evicting the LRU way of its set when full. Inserting a
// line that is already present just refreshes it.
func (c *setAssoc) insert(line uint64) {
	base := c.setFor(line) * c.ways
	key := line + 1
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.keys[i] == key {
			c.clock++
			c.lru[i] = c.clock
			return
		}
		if c.keys[i] == 0 {
			victim = i
			// An empty way always wins over evicting a resident line.
			c.clock++
			c.keys[i] = key
			c.lru[i] = c.clock
			return
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.clock++
	c.keys[victim] = key
	c.lru[victim] = c.clock
}

// remove drops line if present (coherence invalidation or write-back).
func (c *setAssoc) remove(line uint64) {
	base := c.setFor(line) * c.ways
	key := line + 1
	for w := 0; w < c.ways; w++ {
		if c.keys[base+w] == key {
			c.keys[base+w] = 0
			c.lru[base+w] = 0
			return
		}
	}
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
