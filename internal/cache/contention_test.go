package cache

import (
	"testing"

	"repro/internal/mem"
)

// contentionSim builds a simulator with the given contention model and
// returns a note function over raw line numbers, driving the tracker the
// way the coherence paths do.
func contentionSim(window uint64, cap int, penalty uint32) (*Sim, func(now, line uint64) uint32) {
	cfg := DefaultConfig(2)
	cfg.Lat.ContentionWindow = window
	cfg.Lat.ContentionCap = cap
	cfg.Lat.ContentionPenalty = penalty
	s := New(cfg)
	return s, func(now, line uint64) uint32 {
		_, cold := s.dir.entry(line, 0)
		return s.noteContention(now, line, cold)
	}
}

func TestContentionTrackerOtherLinesOnly(t *testing.T) {
	_, note := contentionSim(100, 256, 10)
	if got := note(0, 1); got != 0 {
		t.Errorf("first event extra = %d, want 0", got)
	}
	// Same line again: the prior event is same-line, no queueing.
	if got := note(50, 1); got != 0 {
		t.Errorf("same-line extra = %d, want 0", got)
	}
	// A different line sees the two line-1 events in its window.
	if got := note(60, 2); got != 20 {
		t.Errorf("other-line extra = %d, want 20", got)
	}
	// At t=200 everything has expired.
	if got := note(200, 3); got != 0 {
		t.Errorf("post-expiry extra = %d, want 0", got)
	}
}

func TestContentionTrackerCap(t *testing.T) {
	_, note := contentionSim(1000, 3, 7)
	for i := uint64(0); i < 10; i++ {
		note(i, i)
	}
	if got := note(10, 99); got != 3*7 {
		t.Errorf("capped extra = %d, want %d", got, 3*7)
	}
}

func TestContentionTrackerDisabled(t *testing.T) {
	_, note := contentionSim(0, 256, 100)
	if got := note(5, 1); got != 0 {
		t.Errorf("disabled tracker extra = %d, want 0", got)
	}
}

func TestContentionTrackerCompaction(t *testing.T) {
	s, note := contentionSim(10, 256, 1)
	// Many events, each expiring before the next: the ring must stay small
	// and the per-line counts must be decremented on eviction rather than
	// accumulate.
	for i := uint64(0); i < 10000; i++ {
		note(i*100, i)
	}
	if len(s.contention.events) > 200 {
		t.Errorf("tracker ring grew to %d slots, want eviction to bound it", len(s.contention.events))
	}
	stale := 0
	s.dir.forEach(func(line uint64, h *dirHot, c *dirCold) {
		if c.contention > 0 {
			stale++
		}
	})
	if stale > 2 {
		t.Errorf("%d lines retain in-window contention counts, want eviction", stale)
	}
}

func TestSingleLinePingPongPaysNoQueueing(t *testing.T) {
	// One pair ping-ponging a single line is serialized by the hold
	// mechanism but must not pay the interconnect-queueing term — queueing
	// models competition BETWEEN concurrent line transfers.
	s := New(DefaultConfig(2))
	now := uint64(0)
	var worst uint32
	for i := 0; i < 500; i++ {
		lat := s.Access(i%2, 0x4000, true, now)
		now += uint64(lat)
		if i > 4 && lat > worst {
			worst = lat
		}
	}
	// Worst steal = hold wait + remote transfer, no queueing on top.
	bound := uint32(2)*(s.cfg.Lat.Hold+s.cfg.Lat.Remote) + s.cfg.Lat.Remote
	if worst > bound {
		t.Errorf("single-pair steal latency %d exceeds hold+transfer bound %d", worst, bound)
	}
}

func TestCoherenceLatencyGrowsWithTrafficRate(t *testing.T) {
	// Several core pairs ping-ponging distinct lines concurrently produce
	// higher per-transfer latency than one pair — the interconnect
	// queueing behind Table 1's thread scaling. Concurrency is emulated by
	// giving all pairs the same timestamps.
	perTransfer := func(pairs int) float64 {
		s := New(DefaultConfig(2 * pairs))
		var cycles uint64
		var transfers int
		now := uint64(0)
		// A cadence longer than hold+remote leaves no hold wait, so any
		// latency above Remote comes from the queueing term.
		cadence := uint64(2 * (s.cfg.Lat.Hold + s.cfg.Lat.Remote))
		for round := 0; round < 500; round++ {
			for p := 0; p < pairs; p++ {
				core := 2*p + round%2
				lat := s.Access(core, mem.Addr(0x10000+p*mem.LineSize), true, now)
				if round >= 2 { // skip warm-up
					cycles += uint64(lat)
					transfers++
				}
			}
			now += cadence
		}
		return float64(cycles) / float64(transfers)
	}
	one := perTransfer(1)
	eight := perTransfer(8)
	if eight <= one*1.2 {
		t.Errorf("contention scaling absent: 1 pair %.0f cycles/transfer, 8 pairs %.0f", one, eight)
	}
}

func TestRareCoherenceEventsNotInflated(t *testing.T) {
	// Events far apart in time (low rate) must pay no queueing penalty,
	// regardless of how many cores participate — the streamcluster case.
	s := New(DefaultConfig(16))
	now := uint64(0)
	var maxLat uint32
	for round := 0; round < 100; round++ {
		for core := 0; core < 16; core++ {
			lat := s.Access(core, 0x5000, true, now)
			now += 5000 // long quiet gap between coherence events
			if round > 0 && lat > maxLat {
				maxLat = lat
			}
		}
	}
	if maxLat > s.cfg.Lat.Remote {
		t.Errorf("rare-event transfer latency %d exceeds base remote %d", maxLat, s.cfg.Lat.Remote)
	}
}

func TestPrivateTrafficUnaffectedByContentionModel(t *testing.T) {
	s := newTestSim(8)
	// Generate heavy contention on one line.
	for i := 0; i < 1000; i++ {
		s.Access(i%8, 0x100, true)
	}
	// A private line still costs an L1 hit.
	s.Access(0, 0x20000, true)
	if lat := s.Access(0, 0x20000, true); lat != s.cfg.Lat.L1Hit {
		t.Errorf("private store latency = %d under contention, want L1 hit %d", lat, s.cfg.Lat.L1Hit)
	}
}
