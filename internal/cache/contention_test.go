package cache

import (
	"testing"

	"repro/internal/mem"
)

func TestContentionTrackerOtherLinesOnly(t *testing.T) {
	c := newContentionTracker(100, 256)
	if got := c.note(0, 1, 10); got != 0 {
		t.Errorf("first event extra = %d, want 0", got)
	}
	// Same line again: the prior event is same-line, no queueing.
	if got := c.note(50, 1, 10); got != 0 {
		t.Errorf("same-line extra = %d, want 0", got)
	}
	// A different line sees the two line-1 events in its window.
	if got := c.note(60, 2, 10); got != 20 {
		t.Errorf("other-line extra = %d, want 20", got)
	}
	// At t=200 everything has expired.
	if got := c.note(200, 3, 10); got != 0 {
		t.Errorf("post-expiry extra = %d, want 0", got)
	}
}

func TestContentionTrackerCap(t *testing.T) {
	c := newContentionTracker(1000, 3)
	for i := uint64(0); i < 10; i++ {
		c.note(i, i, 1)
	}
	if got := c.note(10, 99, 7); got != 3*7 {
		t.Errorf("capped extra = %d, want %d", got, 3*7)
	}
}

func TestContentionTrackerDisabled(t *testing.T) {
	c := newContentionTracker(0, 256)
	if got := c.note(5, 1, 100); got != 0 {
		t.Errorf("disabled tracker extra = %d, want 0", got)
	}
}

func TestContentionTrackerCompaction(t *testing.T) {
	c := newContentionTracker(10, 256)
	// Many events, each expiring before the next: the dead prefix must be
	// compacted rather than grow unboundedly.
	for i := uint64(0); i < 10000; i++ {
		c.note(i*100, i, 1)
	}
	if len(c.events) > 200 {
		t.Errorf("tracker retained %d events, want compaction", len(c.events))
	}
	if len(c.perLine) > 2 {
		t.Errorf("perLine retained %d entries, want eviction", len(c.perLine))
	}
}

func TestSingleLinePingPongPaysNoQueueing(t *testing.T) {
	// One pair ping-ponging a single line is serialized by the hold
	// mechanism but must not pay the interconnect-queueing term — queueing
	// models competition BETWEEN concurrent line transfers.
	s := New(DefaultConfig(2))
	now := uint64(0)
	var worst uint32
	for i := 0; i < 500; i++ {
		lat := s.Access(i%2, 0x4000, true, now)
		now += uint64(lat)
		if i > 4 && lat > worst {
			worst = lat
		}
	}
	// Worst steal = hold wait + remote transfer, no queueing on top.
	bound := uint32(2)*(s.cfg.Lat.Hold+s.cfg.Lat.Remote) + s.cfg.Lat.Remote
	if worst > bound {
		t.Errorf("single-pair steal latency %d exceeds hold+transfer bound %d", worst, bound)
	}
}

func TestCoherenceLatencyGrowsWithTrafficRate(t *testing.T) {
	// Several core pairs ping-ponging distinct lines concurrently produce
	// higher per-transfer latency than one pair — the interconnect
	// queueing behind Table 1's thread scaling. Concurrency is emulated by
	// giving all pairs the same timestamps.
	perTransfer := func(pairs int) float64 {
		s := New(DefaultConfig(2 * pairs))
		var cycles uint64
		var transfers int
		now := uint64(0)
		// A cadence longer than hold+remote leaves no hold wait, so any
		// latency above Remote comes from the queueing term.
		cadence := uint64(2 * (s.cfg.Lat.Hold + s.cfg.Lat.Remote))
		for round := 0; round < 500; round++ {
			for p := 0; p < pairs; p++ {
				core := 2*p + round%2
				lat := s.Access(core, mem.Addr(0x10000+p*mem.LineSize), true, now)
				if round >= 2 { // skip warm-up
					cycles += uint64(lat)
					transfers++
				}
			}
			now += cadence
		}
		return float64(cycles) / float64(transfers)
	}
	one := perTransfer(1)
	eight := perTransfer(8)
	if eight <= one*1.2 {
		t.Errorf("contention scaling absent: 1 pair %.0f cycles/transfer, 8 pairs %.0f", one, eight)
	}
}

func TestRareCoherenceEventsNotInflated(t *testing.T) {
	// Events far apart in time (low rate) must pay no queueing penalty,
	// regardless of how many cores participate — the streamcluster case.
	s := New(DefaultConfig(16))
	now := uint64(0)
	var maxLat uint32
	for round := 0; round < 100; round++ {
		for core := 0; core < 16; core++ {
			lat := s.Access(core, 0x5000, true, now)
			now += 5000 // long quiet gap between coherence events
			if round > 0 && lat > maxLat {
				maxLat = lat
			}
		}
	}
	if maxLat > s.cfg.Lat.Remote {
		t.Errorf("rare-event transfer latency %d exceeds base remote %d", maxLat, s.cfg.Lat.Remote)
	}
}

func TestPrivateTrafficUnaffectedByContentionModel(t *testing.T) {
	s := newTestSim(8)
	// Generate heavy contention on one line.
	for i := 0; i < 1000; i++ {
		s.Access(i%8, 0x100, true)
	}
	// A private line still costs an L1 hit.
	s.Access(0, 0x20000, true)
	if lat := s.Access(0, 0x20000, true); lat != s.cfg.Lat.L1Hit {
		t.Errorf("private store latency = %d under contention, want L1 hit %d", lat, s.cfg.Lat.L1Hit)
	}
}
