package cache

// This file holds the directory's storage layer: a sharded open-addressed
// hash table mapping cache lines to directory entries, plus the inline
// sharer set. The directory lookup is the hottest operation in the whole
// reproduction — every simulated memory access performs one — so entries
// are stored inline in the probe array (no per-line pointer chasing or
// allocation) and the table never deletes, which keeps probing tombstone-
// free. Sharding bounds the cost of a rehash to one shard's entries and
// keeps probe chains short as the touched-line set grows.

// dirShardBits selects the shard from the top of the mixed hash; 64
// shards keep rehash pauses small without bloating empty simulators.
const dirShardBits = 6

// dirShards is the shard count.
const dirShards = 1 << dirShardBits

// dirInitialSlots is the initial per-shard capacity (power of two).
const dirInitialSlots = 64

// mix64 is a Murmur3-style finalizer: full-avalanche, so sequential line
// numbers spread evenly over shards and slots.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// dirShard is one open-addressed slice of the directory. Keys (line+1;
// zero marks a free slot) live in their own compact array so a probe
// touches eight keys per cache line instead of striding over full
// entries; slots[i] holds the entry for keys[i].
type dirShard struct {
	mask  uint64
	used  int
	keys  []uint64
	slots []dirEntry
}

// probe returns the slot index for key: either its entry or the free slot
// where it would be inserted. Linear probing; the load factor stays under
// 3/4 so chains are short.
func (sh *dirShard) probe(h, key uint64) int {
	i := (h >> dirShardBits) & sh.mask
	for {
		k := sh.keys[i]
		if k == key || k == 0 {
			return int(i)
		}
		i = (i + 1) & sh.mask
	}
}

// grow rehashes the shard into n slots (a power of two).
func (sh *dirShard) grow(n int) {
	oldKeys, oldSlots := sh.keys, sh.slots
	sh.keys = make([]uint64, n)
	sh.slots = make([]dirEntry, n)
	sh.mask = uint64(n - 1)
	for i, k := range oldKeys {
		if k != 0 {
			j := sh.probe(mix64(k-1), k)
			sh.keys[j] = k
			sh.slots[j] = oldSlots[i]
		}
	}
}

// dirTable is the sharded directory.
type dirTable struct {
	cores int
	// gen increments whenever a grow moves entries, invalidating any
	// cached entry pointers (the simulator's per-core hints).
	gen    uint64
	shards [dirShards]dirShard
}

func newDirTable(cores int) *dirTable {
	return &dirTable{cores: cores}
}

// entry returns the directory entry for line, creating it on first use.
// Returned pointers are valid until the next entry() call (a grow moves
// entries); the simulator never holds one across accesses.
func (t *dirTable) entry(line uint64) *dirEntry {
	h := mix64(line)
	sh := &t.shards[h&(dirShards-1)]
	if sh.keys == nil {
		sh.grow(dirInitialSlots)
	}
	key := line + 1
	i := sh.probe(h, key)
	if sh.keys[i] == key {
		return &sh.slots[i]
	}
	if (sh.used+1)*4 > len(sh.keys)*3 {
		sh.grow(len(sh.keys) * 2)
		t.gen++
		i = sh.probe(h, key)
	}
	sh.used++
	sh.keys[i] = key
	e := &sh.slots[i]
	e.state = invalid
	e.sharers = newSharerSet(t.cores)
	return e
}

// find returns the entry for line, or nil if the line was never touched.
func (t *dirTable) find(line uint64) *dirEntry {
	h := mix64(line)
	sh := &t.shards[h&(dirShards-1)]
	if sh.keys == nil {
		return nil
	}
	i := sh.probe(h, line+1)
	if sh.keys[i] == 0 {
		return nil
	}
	return &sh.slots[i]
}

// forEach visits every live entry with its line number.
func (t *dirTable) forEach(fn func(line uint64, e *dirEntry)) {
	for s := range t.shards {
		sh := &t.shards[s]
		for i, k := range sh.keys {
			if k != 0 {
				fn(k-1, &sh.slots[i])
			}
		}
	}
}

// sharerSet is a fixed-capacity set of core indices stored inline: one
// word covers machines up to 64 cores (the evaluation's 48-core Opteron)
// with zero allocation per directory entry; larger machines spill to a
// slice.
type sharerSet struct {
	lo   uint64
	rest []uint64
}

func newSharerSet(cores int) sharerSet {
	if cores <= 64 {
		return sharerSet{}
	}
	return sharerSet{rest: make([]uint64, (cores-64+63)/64)}
}

func (b *sharerSet) set(i int) {
	if i < 64 {
		b.lo |= 1 << uint(i)
		return
	}
	i -= 64
	b.rest[i>>6] |= 1 << uint(i&63)
}

func (b *sharerSet) unset(i int) {
	if i < 64 {
		b.lo &^= 1 << uint(i)
		return
	}
	i -= 64
	b.rest[i>>6] &^= 1 << uint(i&63)
}

func (b *sharerSet) get(i int) bool {
	if i < 64 {
		return b.lo&(1<<uint(i)) != 0
	}
	i -= 64
	return b.rest[i>>6]&(1<<uint(i&63)) != 0
}

func (b *sharerSet) clear() {
	b.lo = 0
	for i := range b.rest {
		b.rest[i] = 0
	}
}

func (b *sharerSet) count() int {
	n := popcount(b.lo)
	for _, w := range b.rest {
		n += popcount(w)
	}
	return n
}

// countExcept returns the number of set bits other than i.
func (b *sharerSet) countExcept(i int) int {
	n := b.count()
	if b.get(i) {
		n--
	}
	return n
}

// forEach calls fn for every set bit, in increasing order.
func (b *sharerSet) forEach(fn func(int)) {
	w := b.lo
	for w != 0 {
		fn(trailingZeros(w))
		w &= w - 1
	}
	for wi, w := range b.rest {
		for w != 0 {
			fn(64 + wi*64 + trailingZeros(w))
			w &= w - 1
		}
	}
}
