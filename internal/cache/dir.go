package cache

import "sort"

// This file holds the directory's storage layer: a paged table mapping
// cache lines to directory entries, plus the inline sharer set. The
// directory lookup is the hottest operation in the whole reproduction —
// every simulated memory access performs one — so the layout is built
// around how simulated programs actually touch memory: they stream
// through mostly-contiguous line ranges. Lines are grouped into pages of
// 256; a page is one flat pair of hot/cold arrays indexed directly by
// the low line bits, so a lookup is a page-hint check (or one map access
// on a page switch) plus an array index — no hashing, no probe walk —
// and consecutive lines land in adjacent memory, which the hardware
// prefetcher rides along a stream. Pages never move once allocated, so
// entry pointers (and the simulator's per-core hints) stay valid for the
// simulation's lifetime; the table's gen counter therefore never ticks.

// dirPageShift sets the page granule: 256 lines (16 KiB of simulated
// memory) balances per-page allocation cost against density for sparse
// access patterns.
const dirPageShift = 8

// dirPageLines is the number of cache lines covered by one page.
const dirPageLines = 1 << dirPageShift

// dirPage is the directory state for one aligned 256-line range. The
// per-line payload is split by temperature — hot[i] holds the
// MESI/sharer/availability state every access reads, cold[i] the
// ground-truth counters and pending-transfer queue only coherence events
// touch. touched marks lines the program has actually accessed: the
// zero value of a slot already encodes the pristine state (invalid, no
// sharers, zero counters), so first use only sets a bit.
type dirPage struct {
	hot     [dirPageLines]dirHot
	cold    [dirPageLines]dirCold
	touched [dirPageLines / 64]uint64
}

// dirTable is the paged directory.
type dirTable struct {
	cores int
	// gen is the hint-invalidation epoch. Paged storage never relocates
	// entries, so it stays zero; the field remains so the simulator's
	// hint contract (compare against gen) is explicit.
	gen   uint64
	pages map[uint64]*dirPage
	used  int
	// hints caches each core's last two page lookups. One way covers a
	// core streaming within a page; the second covers the other common
	// shape, a loop alternating between two regions (two arrays, or an
	// array and a shared accumulator), which would thrash a single-entry
	// hint on every access.
	hints []pageHint
}

// pageHint is a two-way page cache: way 0 is the most recent miss fill,
// hits are served in place, a miss shifts way 0 into way 1.
type pageHint struct {
	pg [2]uint64
	p  [2]*dirPage
}

func newDirTable(cores int) *dirTable {
	t := &dirTable{
		cores: cores,
		pages: make(map[uint64]*dirPage),
		hints: make([]pageHint, cores),
	}
	for i := range t.hints {
		t.hints[i].pg[0] = ^uint64(0)
		t.hints[i].pg[1] = ^uint64(0)
	}
	return t
}

func (t *dirTable) newPage() *dirPage {
	p := &dirPage{}
	if t.cores > 64 {
		// The inline sharer word only covers 64 cores; larger machines
		// need the spill slice allocated up front so the zero-value
		// slot invariant holds.
		for i := range p.hot {
			p.hot[i].sharers = newSharerSet(t.cores)
		}
	}
	return p
}

// entry returns the hot and cold state for line, creating its page on
// first use. core selects the per-core page hint; it is a locality key
// only and has no semantic effect. Returned pointers stay valid for the
// table's lifetime.
func (t *dirTable) entry(line uint64, core int) (*dirHot, *dirCold) {
	pg := line >> dirPageShift
	h := &t.hints[core]
	var p *dirPage
	switch pg {
	case h.pg[0]:
		p = h.p[0]
	case h.pg[1]:
		p = h.p[1]
	default:
		p = t.pages[pg]
		if p == nil {
			p = t.newPage()
			t.pages[pg] = p
		}
		h.pg[1], h.p[1] = h.pg[0], h.p[0]
		h.pg[0], h.p[0] = pg, p
	}
	i := int(line) & (dirPageLines - 1)
	if w, b := i>>6, uint64(1)<<uint(i&63); p.touched[w]&b == 0 {
		p.touched[w] |= b
		t.used++
	}
	return &p.hot[i], &p.cold[i]
}

// find returns the state for line, or nils if the line was never touched.
func (t *dirTable) find(line uint64) (*dirHot, *dirCold) {
	p := t.pages[line>>dirPageShift]
	if p == nil {
		return nil, nil
	}
	i := int(line) & (dirPageLines - 1)
	if p.touched[i>>6]&(1<<uint(i&63)) == 0 {
		return nil, nil
	}
	return &p.hot[i], &p.cold[i]
}

// forEach visits every touched line with its state, in increasing line
// order — page keys are sorted so the walk is deterministic regardless
// of map iteration order. It runs once per simulation teardown, so the
// sort is off the access path.
func (t *dirTable) forEach(fn func(line uint64, h *dirHot, c *dirCold)) {
	keys := make([]uint64, 0, len(t.pages))
	for pg := range t.pages {
		keys = append(keys, pg)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, pg := range keys {
		p := t.pages[pg]
		base := pg << dirPageShift
		for w, bits := range p.touched {
			for bits != 0 {
				i := w*64 + trailingZeros(bits)
				bits &= bits - 1
				fn(base+uint64(i), &p.hot[i], &p.cold[i])
			}
		}
	}
}

// sharerSet is a fixed-capacity set of core indices stored inline: one
// word covers machines up to 64 cores (the evaluation's 48-core Opteron)
// with zero allocation per directory entry; larger machines spill to a
// slice.
type sharerSet struct {
	lo   uint64
	rest []uint64
}

func newSharerSet(cores int) sharerSet {
	if cores <= 64 {
		return sharerSet{}
	}
	return sharerSet{rest: make([]uint64, (cores-64+63)/64)}
}

func (b *sharerSet) set(i int) {
	if i < 64 {
		b.lo |= 1 << uint(i)
		return
	}
	i -= 64
	b.rest[i>>6] |= 1 << uint(i&63)
}

func (b *sharerSet) unset(i int) {
	if i < 64 {
		b.lo &^= 1 << uint(i)
		return
	}
	i -= 64
	b.rest[i>>6] &^= 1 << uint(i&63)
}

func (b *sharerSet) get(i int) bool {
	if i < 64 {
		return b.lo&(1<<uint(i)) != 0
	}
	i -= 64
	return b.rest[i>>6]&(1<<uint(i&63)) != 0
}

func (b *sharerSet) clear() {
	b.lo = 0
	for i := range b.rest {
		b.rest[i] = 0
	}
}

func (b *sharerSet) count() int {
	n := popcount(b.lo)
	for _, w := range b.rest {
		n += popcount(w)
	}
	return n
}

// countExcept returns the number of set bits other than i.
func (b *sharerSet) countExcept(i int) int {
	n := b.count()
	if b.get(i) {
		n--
	}
	return n
}

// forEach calls fn for every set bit, in increasing order.
func (b *sharerSet) forEach(fn func(int)) {
	w := b.lo
	for w != 0 {
		fn(trailingZeros(w))
		w &= w - 1
	}
	for wi, w := range b.rest {
		for w != 0 {
			fn(64 + wi*64 + trailingZeros(w))
			w &= w - 1
		}
	}
}
