package cache

import (
	"testing"

	"repro/internal/mem"
)

// TestSharerSetSpillOps exercises every sharerSet operation across the
// inline/spill boundary: the single lo word covers cores 0-63, anything
// above lives in the rest slice, and indices on both sides must behave
// identically.
func TestSharerSetSpillOps(t *testing.T) {
	const cores = 192
	b := newSharerSet(cores)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 191}
	for _, i := range idx {
		b.set(i)
	}
	for _, i := range idx {
		if !b.get(i) {
			t.Errorf("get(%d) = false after set", i)
		}
	}
	if got := b.count(); got != len(idx) {
		t.Errorf("count = %d, want %d", got, len(idx))
	}
	if got := b.countExcept(64); got != len(idx)-1 {
		t.Errorf("countExcept(64) = %d, want %d", got, len(idx)-1)
	}
	if got := b.countExcept(2); got != len(idx) {
		t.Errorf("countExcept(2) = %d, want %d (2 is not set)", got, len(idx))
	}
	var seen []int
	b.forEach(func(i int) { seen = append(seen, i) })
	if len(seen) != len(idx) {
		t.Fatalf("forEach visited %v, want %v", seen, idx)
	}
	for k, i := range idx {
		if seen[k] != i {
			t.Errorf("forEach order: visited %v, want ascending %v", seen, idx)
			break
		}
	}
	b.unset(63)
	b.unset(128)
	if b.get(63) || b.get(128) {
		t.Errorf("unset left bits behind: get(63)=%v get(128)=%v", b.get(63), b.get(128))
	}
	if got := b.count(); got != len(idx)-2 {
		t.Errorf("count after unset = %d, want %d", got, len(idx)-2)
	}
	b.clear()
	if got := b.count(); got != 0 {
		t.Errorf("count after clear = %d, want 0", got)
	}
	for _, i := range idx {
		if b.get(i) {
			t.Errorf("get(%d) = true after clear", i)
		}
	}
}

// TestDirectoryBeyond64Cores is the regression gate for machines larger
// than the inline sharer word: on a 96-core simulator a line read by
// every core tracks all 96 sharers, and the subsequent write upgrade
// invalidates every one of them — including cores 64-95, which live in
// the spilled part of the set.
func TestDirectoryBeyond64Cores(t *testing.T) {
	const cores = 96
	s := newTestSim(cores)
	a := mem.Addr(0x9000)
	for core := 0; core < cores; core++ {
		s.Access(core, a, false)
	}
	st, _, sharers := s.directoryState(a.Line())
	if st != shared || sharers != cores {
		t.Fatalf("after %d reads directory = (%v, sharers=%d), want (shared, %d)",
			cores, st, sharers, cores)
	}
	lat := s.Access(cores-1, a, true)
	want := s.cfg.Lat.Upgrade + uint32(cores-2)*s.cfg.Lat.PerSharer
	if lat != want {
		t.Errorf("upgrade latency at %d sharers = %d, want %d", cores, lat, want)
	}
	if got := s.LineInvalidations(a); got != 1 {
		t.Errorf("invalidations = %d, want 1", got)
	}
	st, owner, sharers := s.directoryState(a.Line())
	if st != modified || owner != cores-1 || sharers != 1 {
		t.Errorf("directory = (%v, owner=%d, sharers=%d), want (modified, %d, 1)",
			st, owner, sharers, cores-1)
	}
	// Invalidated sharers from both halves of the set re-read: each must
	// have truly lost its copy, paying a coherence transfer rather than a
	// local hit. Core 0 lives in the inline word, core 70 in the spill.
	if lat := s.Access(0, a, false); lat == s.cfg.Lat.L1Hit {
		t.Errorf("inline core 0 read hit locally after invalidation")
	}
	if lat := s.Access(70, a, false); lat == s.cfg.Lat.L1Hit {
		t.Errorf("spilled core 70 read hit locally after invalidation")
	}
}
