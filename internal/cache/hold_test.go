package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestHoldBoundsPingPongRate(t *testing.T) {
	// Two cores hammering one line: total cost over N round-trips is
	// bounded by roughly N x (hold + remote), NOT N x per-access misses —
	// the batching that keeps Figure 1 at ~13x rather than ~100x.
	s := newTestSim(2)
	a := mem.Addr(0x1000)
	const rounds = 400
	var total uint64
	for i := 0; i < rounds; i++ {
		total += uint64(s.Access(i%2, a, true))
	}
	perRound := float64(total) / rounds
	ceiling := float64(s.cfg.Lat.Hold+s.cfg.Lat.Remote) * 1.2
	if perRound > ceiling {
		t.Errorf("ping-pong per-access cost %.0f exceeds hold+remote ceiling %.0f", perRound, ceiling)
	}
}

func TestOwnerBatchesDuringInFlightSteal(t *testing.T) {
	// While core 1's steal is in flight (its completion time is in the
	// future), core 0 — the current owner — keeps hitting L1.
	s := New(DefaultConfig(2))
	a := mem.Addr(0x2000)
	now := uint64(0)
	lat := s.Access(0, a, true, now) // cold fill, core 0 owns
	now += uint64(lat)
	steal := s.Access(1, a, true, now) // in flight until now+steal
	if steal <= s.cfg.Lat.L1Hit {
		t.Fatalf("steal latency %d suspiciously low", steal)
	}
	// Owner accesses before the steal commits: cheap.
	for i := 0; i < 5; i++ {
		now += 10
		if lat := s.Access(0, a, true, now); lat != s.cfg.Lat.L1Hit {
			t.Fatalf("owner access %d during in-flight steal cost %d, want L1 hit", i, lat)
		}
	}
}

func TestPendingTransfersCommitInOrder(t *testing.T) {
	// Three cores queue steals on one line; each becomes owner in request
	// order, verified by L1 hits after their respective completion times.
	s := New(DefaultConfig(4))
	a := mem.Addr(0x3000)
	now := uint64(0)
	now += uint64(s.Access(0, a, true, now))
	l1 := uint64(s.Access(1, a, true, now))
	l2 := uint64(s.Access(2, a, true, now+1))
	if l2 <= l1 {
		t.Errorf("second queued steal latency %d not after first %d", l2, l1)
	}
	// After core 1's transfer completes (but before core 2's), core 1
	// owns the line.
	mid := now + l1 + 1
	if lat := s.Access(1, a, true, mid); lat != s.cfg.Lat.L1Hit {
		t.Errorf("first stealer not owner at its completion time: lat %d", lat)
	}
}

func TestSequentialPrefetcher(t *testing.T) {
	s := New(DefaultConfig(2))
	now := uint64(0)
	// First miss: full memory latency.
	if lat := s.Access(0, 0x10000, false, now); lat != s.cfg.Lat.Memory {
		t.Fatalf("first stream miss = %d, want memory %d", lat, s.cfg.Lat.Memory)
	}
	// Sequential misses: prefetched, L3 latency.
	for i := 1; i < 10; i++ {
		now += 300
		lat := s.Access(0, mem.Addr(0x10000+i*mem.LineSize), false, now)
		if lat != s.cfg.Lat.L3Hit {
			t.Errorf("stream miss %d = %d, want prefetched L3 %d", i, lat, s.cfg.Lat.L3Hit)
		}
	}
	// A random jump pays full memory latency again.
	now += 300
	if lat := s.Access(0, 0x900000, false, now); lat != s.cfg.Lat.Memory {
		t.Errorf("random miss = %d, want memory %d", lat, s.cfg.Lat.Memory)
	}
	if s.Stats().Prefetched != 9 {
		t.Errorf("Prefetched = %d, want 9", s.Stats().Prefetched)
	}
}

func TestPrefetcherIsPerCore(t *testing.T) {
	// Core 1's stream does not warm core 0's prefetcher state.
	s := New(DefaultConfig(2))
	s.Access(1, 0x20000, false, 0)
	s.Access(1, 0x20000+64, false, 300)
	// Core 0 misses on the next line of core 1's stream in a DIFFERENT
	// un-prefetched region: full memory cost (not L3: line not in L3 yet).
	if lat := s.Access(0, 0x40000, false, 600); lat != s.cfg.Lat.Memory {
		t.Errorf("core 0 cold miss = %d, want memory", lat)
	}
}

func TestLatencyNeverZeroProperty(t *testing.T) {
	// Any access sequence yields positive, bounded latency, and the
	// ground-truth invalidation count never exceeds total writes.
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(DefaultConfig(4))
		now := uint64(0)
		writes := uint64(0)
		steps := int(n%300) + 10
		for i := 0; i < steps; i++ {
			core := rng.Intn(4)
			addr := mem.Addr(rng.Intn(32) * 16)
			write := rng.Intn(2) == 0
			if write {
				writes++
			}
			lat := s.Access(core, addr, write, now)
			if lat == 0 || lat > 10_000_000 {
				return false
			}
			now += uint64(lat)
		}
		var inv uint64
		for _, v := range s.TotalLineInvalidations() {
			inv += v
		}
		return inv <= writes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUpgradeStartsHoldTenure(t *testing.T) {
	// A shared->modified upgrade also grants a hold: an immediate steal
	// by another core waits.
	s := New(DefaultConfig(3))
	a := mem.Addr(0x5000)
	now := uint64(0)
	s.Access(0, a, false, now) // shared in core 0
	now += 300
	s.Access(1, a, false, now) // shared in core 1
	now += 300
	up := s.Access(0, a, true, now) // upgrade: invalidates core 1
	now += uint64(up)
	steal := s.Access(2, a, true, now)
	if steal <= s.cfg.Lat.Remote {
		t.Errorf("steal right after upgrade = %d, want hold wait above remote %d",
			steal, s.cfg.Lat.Remote)
	}
}

func TestStatsCyclesMatchReturnedLatencies(t *testing.T) {
	f := func(ops []uint16) bool {
		s := newTestSim(4)
		var sum uint64
		for _, o := range ops {
			lat := s.Access(int(o%4), mem.Addr(o%128)*8, o%3 == 0)
			sum += uint64(lat)
		}
		return s.Stats().Cycles == sum && s.Stats().Accesses == uint64(len(ops))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
