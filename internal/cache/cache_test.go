package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// tsim wraps Sim with a serial clock that advances by each access's
// latency, satisfying Access's non-decreasing-time contract in tests.
type tsim struct {
	*Sim
	now uint64
}

func newTestSim(cores int) *tsim {
	return &tsim{Sim: New(DefaultConfig(cores))}
}

// Access issues an access at the current clock and advances it.
func (t *tsim) Access(core int, addr mem.Addr, write bool) uint32 {
	lat := t.Sim.Access(core, addr, write, t.now)
	t.now += uint64(lat)
	return lat
}

func TestLocalHitAfterFill(t *testing.T) {
	s := newTestSim(2)
	a := mem.Addr(0x1000)
	first := s.Access(0, a, false)
	if first != s.cfg.Lat.Memory {
		t.Errorf("cold read latency = %d, want memory latency %d", first, s.cfg.Lat.Memory)
	}
	second := s.Access(0, a, false)
	if second != s.cfg.Lat.L1Hit {
		t.Errorf("warm read latency = %d, want L1 hit %d", second, s.cfg.Lat.L1Hit)
	}
}

func TestWriteAfterLocalReadIsSilentUpgrade(t *testing.T) {
	s := newTestSim(2)
	a := mem.Addr(0x2000)
	s.Access(0, a, false)
	lat := s.Access(0, a, true)
	if lat != s.cfg.Lat.L1Hit {
		t.Errorf("E->M upgrade latency = %d, want L1 hit %d", lat, s.cfg.Lat.L1Hit)
	}
	if s.stats.Invalidations != 0 {
		t.Errorf("silent upgrade recorded %d invalidations, want 0", s.stats.Invalidations)
	}
}

func TestWriteInvalidatesRemoteDirtyCopy(t *testing.T) {
	s := newTestSim(2)
	a := mem.Addr(0x3000)
	s.Access(0, a, true)
	lat := s.Access(1, a, true)
	// The steal waits out the owner's hold, then pays the transfer.
	if lat < s.cfg.Lat.Remote || lat > s.cfg.Lat.Remote+s.cfg.Lat.Hold {
		t.Errorf("remote dirty write latency = %d, want within [remote, remote+hold]", lat)
	}
	if got := s.LineInvalidations(a); got != 1 {
		t.Errorf("invalidations = %d, want 1", got)
	}
	// The transfer commits at its completion time: a later access by the
	// stealer must find it the owner.
	if lat2 := s.Access(1, a, true); lat2 != s.cfg.Lat.L1Hit {
		t.Errorf("post-transfer write latency = %d, want L1 hit", lat2)
	}
	st, owner, sharers := s.directoryState(a.Line())
	if st != modified || owner != 1 || sharers != 1 {
		t.Errorf("directory = (%v, owner=%d, sharers=%d), want (modified, 1, 1)", st, owner, sharers)
	}
}

func TestWriteUpgradeInvalidatesSharers(t *testing.T) {
	s := newTestSim(4)
	a := mem.Addr(0x4000)
	for core := 0; core < 4; core++ {
		s.Access(core, a, false)
	}
	st, _, sharers := s.directoryState(a.Line())
	if st != shared || sharers != 4 {
		t.Fatalf("after 4 reads directory = (%v, sharers=%d), want (shared, 4)", st, sharers)
	}
	lat := s.Access(0, a, true)
	want := s.cfg.Lat.Upgrade + 2*s.cfg.Lat.PerSharer
	if lat != want {
		t.Errorf("upgrade latency = %d, want %d", lat, want)
	}
	if got := s.LineInvalidations(a); got != 1 {
		t.Errorf("invalidations = %d, want 1", got)
	}
	st, owner, sharers := s.directoryState(a.Line())
	if st != modified || owner != 0 || sharers != 1 {
		t.Errorf("directory = (%v, owner=%d, sharers=%d), want (modified, 0, 1)", st, owner, sharers)
	}
}

func TestPingPongAccumulatesInvalidations(t *testing.T) {
	s := newTestSim(2)
	a := mem.Addr(0x5000)
	const rounds = 100
	for i := 0; i < rounds; i++ {
		s.Access(i%2, a, true)
	}
	// Every write after the first hits a dirty remote copy.
	if got := s.LineInvalidations(a); got != rounds-1 {
		t.Errorf("ping-pong invalidations = %d, want %d", got, rounds-1)
	}
}

func TestFalseSharingLatencyDominates(t *testing.T) {
	// Two cores writing adjacent words in one line must cost far more than
	// two cores writing separate lines — the effect in paper Figure 1.
	shared := newTestSim(2)
	var sharedCycles uint64
	for i := 0; i < 1000; i++ {
		sharedCycles += uint64(shared.Access(0, mem.Addr(0x6000), true))
		sharedCycles += uint64(shared.Access(1, mem.Addr(0x6004), true))
	}
	private := newTestSim(2)
	var privateCycles uint64
	for i := 0; i < 1000; i++ {
		privateCycles += uint64(private.Access(0, mem.Addr(0x7000), true))
		privateCycles += uint64(private.Access(1, mem.Addr(0x7040), true))
	}
	if sharedCycles < 5*privateCycles {
		t.Errorf("false-sharing cycles %d not >> private cycles %d", sharedCycles, privateCycles)
	}
}

func TestReadOfRemoteDirtyDowngrades(t *testing.T) {
	s := newTestSim(2)
	a := mem.Addr(0x8000)
	s.Access(0, a, true)
	lat := s.Access(1, a, false)
	if lat < s.cfg.Lat.Remote || lat > s.cfg.Lat.Remote+s.cfg.Lat.Hold {
		t.Errorf("read of remote dirty latency = %d, want within [remote, remote+hold]", lat)
	}
	// After the downgrade commits, both cores share the line cleanly.
	if lat2 := s.Access(1, a, false); lat2 != s.cfg.Lat.L1Hit {
		t.Errorf("post-downgrade read latency = %d, want L1 hit", lat2)
	}
	st, _, sharers := s.directoryState(a.Line())
	if st != shared || sharers != 2 {
		t.Errorf("directory = (%v, sharers=%d), want (shared, 2)", st, sharers)
	}
	if s.stats.Invalidations != 0 {
		t.Errorf("read downgrade recorded %d invalidations, want 0", s.stats.Invalidations)
	}
}

func TestL3HitAfterWriteBack(t *testing.T) {
	s := newTestSim(3)
	a := mem.Addr(0x9000)
	s.Access(0, a, true)  // dirty in core 0
	s.Access(1, a, false) // transfer, write-back to L3
	lat := s.Access(2, a, false)
	if lat != s.cfg.Lat.L3Hit {
		t.Errorf("third-core read latency = %d, want L3 hit %d", lat, s.cfg.Lat.L3Hit)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newTestSim(2)
	var want uint64
	for i := 0; i < 50; i++ {
		want += uint64(s.Access(i%2, mem.Addr(0x100*uint64(i)), i%3 == 0))
	}
	st := s.Stats()
	if st.Accesses != 50 {
		t.Errorf("Accesses = %d, want 50", st.Accesses)
	}
	if st.Cycles != want {
		t.Errorf("Cycles = %d, want %d", st.Cycles, want)
	}
}

func TestAccessPanicsOnBadCore(t *testing.T) {
	s := newTestSim(2)
	defer func() {
		if recover() == nil {
			t.Error("Access with out-of-range core did not panic")
		}
	}()
	s.Access(2, 0, false)
}

func TestSetAssocEviction(t *testing.T) {
	c := newSetAssoc(2, 2) // lines mapping to the same set collide after 2
	// Lines 0, 2, 4 all map to set 0.
	c.insert(0)
	c.insert(2)
	if !c.touch(0) || !c.touch(2) {
		t.Fatal("resident lines not found")
	}
	c.insert(4) // evicts LRU (line 0, refreshed order: 0 then 2 touched after)
	present := 0
	for _, l := range []uint64{0, 2, 4} {
		if c.touch(l) {
			present++
		}
	}
	if present != 2 {
		t.Errorf("after eviction %d lines present, want 2", present)
	}
	if !c.touch(4) {
		t.Error("just-inserted line was evicted")
	}
}

func TestSetAssocRemove(t *testing.T) {
	c := newSetAssoc(4, 2)
	c.insert(8)
	c.remove(8)
	if c.touch(8) {
		t.Error("removed line still present")
	}
	// Removing an absent line is a no-op.
	c.remove(12)
}

func TestSetAssocInsertIdempotent(t *testing.T) {
	c := newSetAssoc(2, 2)
	c.insert(0)
	c.insert(0)
	c.insert(2)
	if !c.touch(0) || !c.touch(2) {
		t.Error("double insert displaced resident lines")
	}
}

func TestBitsetBasics(t *testing.T) {
	b := newSharerSet(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.set(i)
	}
	if b.count() != 4 {
		t.Errorf("count = %d, want 4", b.count())
	}
	if !b.get(64) || b.get(65) {
		t.Error("get misreports membership")
	}
	if b.countExcept(63) != 3 {
		t.Errorf("countExcept(63) = %d, want 3", b.countExcept(63))
	}
	if b.countExcept(65) != 4 {
		t.Errorf("countExcept(65) = %d, want 4", b.countExcept(65))
	}
	var got []int
	b.forEach(func(i int) { got = append(got, i) })
	want := []int{0, 63, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("forEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forEach visited %v, want %v", got, want)
		}
	}
	b.unset(64)
	if b.get(64) || b.count() != 3 {
		t.Error("unset did not remove the bit")
	}
	b.clear()
	if b.count() != 0 {
		t.Error("clear left bits set")
	}
}

func TestBitsetProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		b := newSharerSet(256)
		ref := map[int]bool{}
		for _, r := range raw {
			i := int(r) % 256
			if r%2 == 0 {
				b.set(i)
				ref[i] = true
			} else {
				b.unset(i)
				delete(ref, i)
			}
		}
		if b.count() != len(ref) {
			return false
		}
		for i := 0; i < 256; i++ {
			if b.get(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDirectoryInvariants drives random access sequences and checks MESI
// directory invariants after every step: a modified line has exactly one
// sharer (its owner); a shared line has at least one sharer; latency is
// always one of the model's legal values.
func TestDirectoryInvariants(t *testing.T) {
	const cores = 8
	s := newTestSim(cores)
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 20000; step++ {
		core := rng.Intn(cores)
		addr := mem.Addr(rng.Intn(64) * 8) // small, highly contended region
		write := rng.Intn(2) == 0
		lat := s.Access(core, addr, write)
		if lat == 0 {
			t.Fatalf("step %d: zero latency", step)
		}
		// Transfers commit asynchronously, so the committed state is
		// checked: a modified line has exactly one sharer (its owner), a
		// shared line at least one and no owner.
		st, owner, sharers := s.directoryState(addr.Line())
		switch st {
		case modified:
			if sharers != 1 {
				t.Fatalf("step %d: modified line with %d sharers", step, sharers)
			}
		case shared:
			if sharers < 1 {
				t.Fatalf("step %d: shared line with no sharers", step)
			}
			if owner != -1 {
				t.Fatalf("step %d: shared line with owner %d", step, owner)
			}
		case invalid:
			t.Fatalf("step %d: accessed line is invalid", step)
		}
	}
}

// TestInvalidationGroundTruthMatchesWriteInterleavings verifies that for a
// strictly alternating two-writer pattern the ground truth equals the
// analytic count under the paper's assumptions.
func TestInvalidationGroundTruthMatchesWriteInterleavings(t *testing.T) {
	f := func(n uint8) bool {
		rounds := int(n%100) + 2
		s := newTestSim(2)
		a := mem.Addr(0xAB00)
		for i := 0; i < rounds; i++ {
			s.Access(i%2, a, true)
		}
		return s.LineInvalidations(a) == uint64(rounds-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
