// Package cache implements a directory-based MESI cache-coherence
// simulator for a multicore machine with per-core private caches and a
// shared last-level cache.
//
// The simulator plays the role of the paper's experimental hardware (a
// 48-core AMD Opteron with private L1/L2 and a shared L3): it turns each
// memory access into a latency in cycles and maintains the ground-truth
// count of coherence invalidations per cache line. False sharing manifests
// here exactly as it does on real hardware — writes to a line cached by
// other cores invalidate their copies, so the next access by those cores
// pays a remote cache-to-cache transfer instead of a private-cache hit.
//
// The latency channel is what the PMU simulator exposes to Cheetah
// (paper Observation 2: "the latency of memory accesses with false sharing
// are significantly higher than that of other accesses").
//
// Every experiment in the reproduction spends most of its cycles inside
// Access, so the directory is a sharded open-addressed table (dir.go)
// rather than a Go map, per-line state (sharer set, invalidation count,
// contention count, pending-transfer queue) lives inline in the entry,
// and the steady state of an access allocates nothing.
package cache

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/mem"
)

// Latencies configures the cost model in cycles; it is the machine
// package's latency table, re-exported so cache-sim call sites keep
// reading naturally.
type Latencies = machine.Latencies

// DefaultLatencies returns the calibrated cost model used throughout the
// reproduction.
func DefaultLatencies() Latencies { return machine.DefaultLatencies() }

// Config sizes the simulated machine. Cache sizes are given in lines per
// set-associative structure.
type Config struct {
	// Cores is the number of cores; each simulated thread is bound to a
	// core (paper Assumption 1: one thread per core, private caches).
	Cores int
	// L1Sets and L1Ways size each private L1 (default 64 KB: 128 sets x 8
	// ways x 64 B).
	L1Sets, L1Ways int
	// L2Sets and L2Ways size each private L2 (default 512 KB).
	L2Sets, L2Ways int
	// L3Sets and L3Ways size the shared L3 (default 10 MB).
	L3Sets, L3Ways int
	// Lat is the latency model.
	Lat Latencies
	// Geom is the cache-line geometry; the zero value means the canonical
	// 64-byte lines.
	Geom mem.Geometry
	// CoresPerSocket splits the cores across sockets for cross-socket
	// transfer pricing; zero (or >= Cores) means a single socket.
	CoresPerSocket int
	// CrossSocketMult scales Lat.Remote for dirty-line transfers whose
	// requester and owner sit on different sockets; 0 or 1 disables the
	// scaling.
	CrossSocketMult float64
	// Protocol selects the coherence-protocol variant (MESI default).
	Protocol machine.Protocol
}

// DefaultConfig returns a machine resembling the paper's evaluation
// platform, with the requested number of cores.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:  cores,
		L1Sets: 128, L1Ways: 8, // 64 KB private L1
		L2Sets: 1024, L2Ways: 8, // 512 KB private L2
		L3Sets: 10240, L3Ways: 16, // 10 MB shared L3
		Lat: DefaultLatencies(),
	}
}

// ConfigFor derives the cache configuration from a machine model: core
// count, latency table, line geometry, topology, and protocol. For the
// canonical default model it behaves exactly like DefaultConfig(48).
func ConfigFor(m machine.Model) Config {
	cfg := DefaultConfig(m.Cores())
	cfg.Lat = m.Lat
	cfg.Geom = m.Geometry()
	if m.Sockets > 1 {
		cfg.CoresPerSocket = m.CoresPerSocket
		cfg.CrossSocketMult = m.CrossSocketMult
	}
	cfg.Protocol = m.Protocol
	return cfg
}

// lineState is the directory-visible MESI state of a cache line.
type lineState uint8

const (
	invalid  lineState = iota
	shared             // one or more clean copies
	modified           // exactly one dirty copy (covers Exclusive: silent E->M)
)

func (s lineState) String() string {
	switch s {
	case shared:
		return "shared"
	case modified:
		return "modified"
	default:
		return "invalid"
	}
}

// dirHot is the per-line state every access reads: which cores hold a
// copy and in what state, when ownership can next transfer, and whether
// transfers are in flight. It lives in the directory's dense hot array
// (dir.go), parallel to the key array; everything only coherence events
// touch is banished to dirCold so the hot slots pack tight.
type dirHot struct {
	sharers sharerSet
	// availableAt is the earliest time the line's ownership can next be
	// transferred; steals arriving earlier stall (Hold semantics).
	availableAt uint64
	owner       int32 // valid when state == modified
	state       lineState
	// pend mirrors "the cold pending queue is non-empty", so the access
	// fast path never touches the cold array.
	pend bool
}

// dirCold is the per-line state only coherence events and report
// generation touch, kept out of the access fast path's cache lines.
type dirCold struct {
	// invals is the ground-truth count of invalidation events on the line.
	invals uint64
	// pending holds in-flight transfers in completion-time order: a steal
	// is granted at its effective time, and until then the current owner
	// keeps servicing its own accesses from L1. This is what bounds the
	// false-sharing ping-pong rate on real machines: owners batch cheap
	// accesses while a remote request is in flight.
	pending []pendingTransfer
	// pendHead indexes the first live element of pending; the queue pops
	// by advancing it and resets to reuse the backing array, so the
	// steady state allocates nothing.
	pendHead int32
	// contention is the number of in-window contention-tracker events on
	// the line (maintained by noteContention/evictContention).
	contention int32
}

// pendingTransfer is one in-flight ownership change.
type pendingTransfer struct {
	core int32
	// read marks a downgrade-to-shared (remote read of a dirty line)
	// rather than an ownership steal.
	read bool
	// effectiveAt is the transfer's completion time.
	effectiveAt uint64
}

// Stats aggregates machine-wide counters.
type Stats struct {
	// Accesses is the total number of loads and stores processed.
	Accesses uint64
	// Cycles is the total latency of all accesses.
	Cycles uint64
	// Invalidations is the total number of coherence invalidation events
	// (each event invalidates all remote copies of one line once).
	Invalidations uint64
	// RemoteTransfers counts cache-to-cache dirty-line transfers.
	RemoteTransfers uint64
	// Forwards counts clean shared-line cache-to-cache transfers under
	// MESIF (always zero under MESI).
	Forwards uint64
	// L1Hits, L2Hits, L3Hits and MemoryAccesses break down where accesses
	// were satisfied.
	L1Hits, L2Hits, L3Hits, MemoryAccesses uint64
	// Prefetched counts LLC misses served early by the sequential
	// prefetcher.
	Prefetched uint64
}

// Sim is the coherence simulator. It is not safe for concurrent use; the
// execution engine serializes accesses in virtual-time order. Concurrent
// experiments each run their own Sim.
type Sim struct {
	cfg Config
	// l1 and l2 are per-core private caches; l3 is shared.
	l1, l2 []*setAssoc
	l3     *setAssoc
	dir    *dirTable
	stats  Stats
	// contention tracks cores active in recent coherence events for the
	// interconnect-queueing latency term.
	contention contentionTracker
	// lastMiss tracks each core's last LLC-missed line for the sequential
	// hardware prefetcher: a miss on the line following a core's previous
	// miss is served at L3 latency (the prefetcher already fetched it),
	// as on real machines where streaming loads and stores do not pay
	// full memory latency.
	lastMiss []uint64
	// hints caches each core's last two directory lookups: accesses are
	// bursty per line (sixteen 4-byte words per streamed line), and many
	// bodies alternate between two lines (streamed data plus a private
	// accumulator), which would thrash a single-entry hint. hintGen
	// guards against slot movement: a directory grow bumps dir.gen,
	// voiding every hint.
	hints   []dirHint
	hintGen uint64
	// lineShift is the configured geometry's log2(line size); addresses
	// map to directory lines through it.
	lineShift uint
	// coresPerSocket is nonzero when the topology has more than one
	// socket and cross-socket transfers price differently; remoteCross is
	// the pre-scaled Remote latency for those transfers.
	coresPerSocket int
	remoteCross    uint32
	// mesif enables Forward-state shared-line forwarding.
	mesif bool
}

// dirHint is one core's two most recent directory lookups. A miss
// shifts way 0 into way 1 and installs the new line at way 0; a hit in
// either way is served in place (no promotion), so a strict two-line
// alternation settles with each line in its own way and zero traffic.
type dirHint struct {
	line [2]uint64
	hot  [2]*dirHot
	cold [2]*dirCold
}

// contentionTracker measures the machine-wide rate of coherence traffic:
// it keeps recent coherence events (timestamp and cache line) in a ring
// buffer and, for a new event, reports how many in-window events concern
// *other* lines. The latency term derived from it models interconnect
// queueing between concurrent line transfers: same-line serialization is
// already captured by the hold/pending mechanism, so a single ping-pong
// pair pays no queueing, while a program whose threads ping-pong many
// distinct lines sees every transfer slow down.
//
// The per-line in-window counts live in the directory entries themselves
// (dirEntry.contention), so tracking an event costs two ring operations
// and no map traffic.
type contentionTracker struct {
	window uint64
	cap    int
	// events is a power-of-two ring buffer of in-window events.
	events []contentionEvent
	head   int
	size   int
}

type contentionEvent struct {
	time uint64
	line uint64
}

func newContentionTracker(window uint64, cap int) contentionTracker {
	if cap <= 0 {
		cap = 256
	}
	return contentionTracker{window: window, cap: cap}
}

// push appends an event, growing the ring when full.
func (c *contentionTracker) push(ev contentionEvent) {
	if c.size == len(c.events) {
		n := len(c.events) * 2
		if n == 0 {
			n = 64
		}
		grown := make([]contentionEvent, n)
		for i := 0; i < c.size; i++ {
			grown[i] = c.events[(c.head+i)&(len(c.events)-1)]
		}
		c.events = grown
		c.head = 0
	}
	c.events[(c.head+c.size)&(len(c.events)-1)] = ev
	c.size++
}

// evictContention drops events older than the window ending at now,
// decrementing the per-line counts they contributed.
func (s *Sim) evictContention(now uint64) {
	c := &s.contention
	cutoff := uint64(0)
	if now > c.window {
		cutoff = now - c.window
	}
	for c.size > 0 {
		ev := c.events[c.head&(len(c.events)-1)]
		if ev.time >= cutoff {
			break
		}
		c.head = (c.head + 1) & (len(c.events) - 1)
		c.size--
		if _, cold := s.dir.find(ev.line); cold != nil {
			cold.contention--
		}
	}
}

// noteContention records a coherence event on the line at time now and
// returns the extra latency due to in-flight transfers of other lines.
func (s *Sim) noteContention(now uint64, line uint64, cold *dirCold) uint32 {
	c := &s.contention
	if c.window == 0 {
		return 0
	}
	s.evictContention(now)
	others := c.size - int(cold.contention)
	c.push(contentionEvent{time: now, line: line})
	cold.contention++
	if others > c.cap {
		others = c.cap
	}
	return s.cfg.Lat.ContentionPenalty * uint32(others)
}

// New creates a simulator for the given configuration.
func New(cfg Config) *Sim {
	if cfg.Cores <= 0 {
		panic(fmt.Sprintf("cache: invalid core count %d", cfg.Cores))
	}
	s := &Sim{
		cfg:        cfg,
		l1:         make([]*setAssoc, cfg.Cores),
		l2:         make([]*setAssoc, cfg.Cores),
		l3:         newSetAssoc(cfg.L3Sets, cfg.L3Ways),
		dir:        newDirTable(cfg.Cores),
		contention: newContentionTracker(cfg.Lat.ContentionWindow, cfg.Lat.ContentionCap),
	}
	// Private caches are allocated on a core's first access: workloads
	// rarely touch all cores of the 48-core machine, and zeroing every
	// core's arrays would dominate the setup cost of the small simulators
	// experiment cells build in bulk.
	s.lastMiss = make([]uint64, cfg.Cores)
	for i := range s.lastMiss {
		s.lastMiss[i] = ^uint64(0)
	}
	s.hints = make([]dirHint, cfg.Cores)
	for i := range s.hints {
		s.hints[i].line = [2]uint64{^uint64(0), ^uint64(0)}
	}
	s.lineShift = cfg.Geom.OrDefault().LineShift
	if cfg.CoresPerSocket > 0 && cfg.CoresPerSocket < cfg.Cores {
		s.coresPerSocket = cfg.CoresPerSocket
		mult := cfg.CrossSocketMult
		if mult <= 0 {
			mult = 1
		}
		s.remoteCross = uint32(math.Round(float64(cfg.Lat.Remote) * mult))
	}
	s.mesif = cfg.Protocol == machine.MESIF
	return s
}

// Cores returns the number of simulated cores.
func (s *Sim) Cores() int { return s.cfg.Cores }

// DirLines returns the number of live directory entries — distinct cache
// lines the simulated program has touched. An occupancy probe for
// observability; O(shards), no allocation.
func (s *Sim) DirLines() int { return s.dir.used }

// Stats returns a copy of the aggregate counters.
func (s *Sim) Stats() Stats { return s.stats }

// LineInvalidations returns the ground-truth number of invalidation events
// observed on the cache line containing addr.
func (s *Sim) LineInvalidations(addr mem.Addr) uint64 {
	if _, cold := s.dir.find(uint64(addr) >> s.lineShift); cold != nil {
		return cold.invals
	}
	return 0
}

// TotalLineInvalidations returns the per-line invalidation table as a
// fresh snapshot (lines with zero invalidations are omitted). Building
// the snapshot walks the directory, so callers should hold on to the
// result rather than call in a loop.
func (s *Sim) TotalLineInvalidations() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	s.dir.forEach(func(line uint64, h *dirHot, c *dirCold) {
		if c.invals > 0 {
			out[line] = c.invals
		}
	})
	return out
}

// Access simulates one memory access by the given core at virtual time
// now (cycles) and returns its latency in cycles. Write upgrades and dirty
// remote copies trigger invalidations, recorded in the per-line ground
// truth. Callers must present accesses in non-decreasing now order, which
// the virtual-time engine guarantees.
func (s *Sim) Access(core int, addr mem.Addr, write bool, now uint64) uint32 {
	if core < 0 || core >= s.cfg.Cores {
		panic(fmt.Sprintf("cache: core %d out of range [0,%d)", core, s.cfg.Cores))
	}
	if s.l1[core] == nil {
		s.l1[core] = newSetAssoc(s.cfg.L1Sets, s.cfg.L1Ways)
		s.l2[core] = newSetAssoc(s.cfg.L2Sets, s.cfg.L2Ways)
	}
	line := uint64(addr) >> s.lineShift
	var h *dirHot
	var c *dirCold
	hint := &s.hints[core]
	if s.hintGen == s.dir.gen {
		if hint.line[0] == line {
			h, c = hint.hot[0], hint.cold[0]
		} else if hint.line[1] == line {
			h, c = hint.hot[1], hint.cold[1]
		}
	}
	if h == nil {
		h, c = s.dir.entry(line, core)
		if s.hintGen != s.dir.gen {
			// A grow moved slots; every cached pointer is void.
			for i := range s.hints {
				s.hints[i] = dirHint{line: [2]uint64{^uint64(0), ^uint64(0)}}
			}
			s.hintGen = s.dir.gen
		}
		hint.line[1], hint.hot[1], hint.cold[1] = hint.line[0], hint.hot[0], hint.cold[0]
		hint.line[0], hint.hot[0], hint.cold[0] = line, h, c
	}
	if h.pend {
		s.commitPending(h, c, line, now)
	}

	// Fast path for the private-satisfiable cases that dominate every
	// workload: the dirty owner re-accessing its line, or a sharer
	// re-reading a clean one. Exactly mirrors the corresponding read/write
	// branches below, minus their switch and call overhead.
	priv := false
	if h.state == modified {
		priv = int(h.owner) == core
	} else if h.state == shared {
		priv = !write && h.sharers.get(core)
	}
	if priv {
		var lat uint32
		// First-way probe inlined: touch swaps hits to way 0, so a bursty
		// re-access matches here without the full touch call.
		l1 := s.l1[core]
		if base := l1.setFor(line) * l1.ways; l1.keys[base] == line+1 {
			l1.clock++
			l1.lru[base] = l1.clock
			s.stats.L1Hits++
			lat = s.cfg.Lat.L1Hit
		} else if l1.touch(line) {
			s.stats.L1Hits++
			lat = s.cfg.Lat.L1Hit
		} else {
			lat = s.privateFill(core, line)
		}
		s.stats.Accesses++
		s.stats.Cycles += uint64(lat)
		return lat
	}

	var lat uint32
	if write {
		lat = s.write(core, line, h, c, now)
	} else {
		lat = s.read(core, line, h, c, now)
	}
	s.stats.Accesses++
	s.stats.Cycles += uint64(lat)
	return lat
}

// read services a load. The L1 probe is deferred into the branches that
// can actually hold a private copy: coherence invariantly evicts a line
// from a core's private caches whenever the core leaves the sharer set
// or loses ownership, so probing L1 on the remote/invalid paths is a
// guaranteed miss — pure wasted walk on the hottest ping-pong branches.
func (s *Sim) read(core int, line uint64, e *dirHot, c *dirCold, now uint64) uint32 {
	switch e.state {
	case modified:
		if int(e.owner) == core {
			// Local dirty copy.
			if s.l1[core].touch(line) {
				s.stats.L1Hits++
				return s.cfg.Lat.L1Hit
			}
			return s.privateFill(core, line)
		}
		// Dirty in a remote private cache: request a downgrade-to-shared
		// transfer. It completes after the owner's hold expires; until
		// then the owner keeps servicing its own accesses from L1.
		s.stats.RemoteTransfers++
		return s.enqueueTransfer(e, c, line, core, true, now)
	case shared:
		if e.sharers.get(core) {
			if s.l1[core].touch(line) {
				s.stats.L1Hits++
				return s.cfg.Lat.L1Hit
			}
			return s.privateFill(core, line)
		}
		// Another core shares it cleanly. Under MESIF the Forward-state
		// holder serves the miss cache-to-cache at the Forward latency;
		// under MESI the line comes from the L3 (or memory on LLC miss).
		e.sharers.set(core)
		s.fill(core, line)
		if s.mesif {
			s.stats.Forwards++
			return s.cfg.Lat.Forward
		}
		return s.llcFetch(core, line)
	default: // invalid: no cached copies anywhere
		e.state = shared
		e.sharers.set(core)
		s.fill(core, line)
		return s.llcFetch(core, line)
	}
}

// write services a store. The L1 probe is deferred exactly as in read.
func (s *Sim) write(core int, line uint64, e *dirHot, c *dirCold, now uint64) uint32 {
	switch e.state {
	case modified:
		if int(e.owner) == core {
			if s.l1[core].touch(line) {
				s.stats.L1Hits++
				return s.cfg.Lat.L1Hit
			}
			return s.privateFill(core, line)
		}
		// Dirty elsewhere: request an ownership steal — the classic
		// false-sharing ping-pong step. The steal is granted only after
		// the current owner's hold expires and earlier in-flight
		// transfers complete.
		s.recordInvalidation(c, 1)
		s.stats.RemoteTransfers++
		return s.enqueueTransfer(e, c, line, core, false, now)
	case shared:
		others := e.sharers.countExcept(core)
		holds := e.sharers.get(core)
		if others > 0 {
			// Upgrade: invalidate every other sharer.
			s.recordInvalidation(c, others)
			e.sharers.forEach(func(c int) {
				if c != core {
					s.evictRemote(c, line)
				}
			})
			e.state = modified
			e.owner = int32(core)
			e.sharers.clear()
			e.sharers.set(core)
			s.fill(core, line)
			lat := s.cfg.Lat.Upgrade + uint32(others-1)*s.cfg.Lat.PerSharer +
				s.noteContention(now, line, c)
			e.availableAt = now + uint64(lat) + uint64(s.cfg.Lat.Hold)
			return lat
		}
		// Sole sharer: silent upgrade (Exclusive -> Modified).
		e.state = modified
		e.owner = int32(core)
		if holds {
			if s.l1[core].touch(line) {
				s.stats.L1Hits++
				return s.cfg.Lat.L1Hit
			}
			return s.privateFill(core, line)
		}
		e.sharers.set(core)
		s.fill(core, line)
		return s.llcFetch(core, line)
	default: // invalid
		e.state = modified
		e.owner = int32(core)
		e.sharers.set(core)
		s.fill(core, line)
		return s.llcFetch(core, line)
	}
}

// recordInvalidation logs n remote-copy invalidations of the line as a
// single coherence event for ground-truth purposes (one event per
// invalidating write, matching the detector's counting rule).
func (s *Sim) recordInvalidation(c *dirCold, n int) {
	if n <= 0 {
		return
	}
	s.stats.Invalidations++
	c.invals++
}

// evictRemote removes a line from another core's private caches.
func (s *Sim) evictRemote(core int, line uint64) {
	s.l1[core].remove(line)
	s.l2[core].remove(line)
}

// fill installs a line into core's private L1 and L2.
func (s *Sim) fill(core int, line uint64) {
	s.l1[core].insert(line)
	s.l2[core].insert(line)
}

// privateFill services an L1 miss that hits the private L2.
func (s *Sim) privateFill(core int, line uint64) uint32 {
	if s.l2[core].touch(line) {
		s.l1[core].insert(line)
		s.stats.L2Hits++
		return s.cfg.Lat.L2Hit
	}
	// Not in L2 either (capacity eviction): refetch from the LLC.
	s.fill(core, line)
	return s.llcFetch(core, line)
}

// llcFetch returns the latency of fetching a line from the shared L3,
// falling back to memory on an LLC miss, and installs it in the L3. A
// miss on the line sequentially following core's previous miss is served
// at L3 latency: the stride prefetcher already has it in flight.
func (s *Sim) llcFetch(core int, line uint64) uint32 {
	if s.l3.touch(line) {
		s.stats.L3Hits++
		return s.cfg.Lat.L3Hit
	}
	s.l3.insert(line)
	s.stats.MemoryAccesses++
	sequential := line == s.lastMiss[core]+1
	s.lastMiss[core] = line
	if sequential {
		s.stats.Prefetched++
		return s.cfg.Lat.L3Hit
	}
	return s.cfg.Lat.Memory
}

// enqueueTransfer requests a line transfer (steal or downgrade) by core
// at time now and returns the requester's stall latency. The transfer
// starts when the current tenure and all earlier in-flight transfers have
// drained (availableAt), costs the cache-to-cache time plus the
// interconnect-queueing term, and takes effect at its completion time via
// the pending queue. The line becomes stealable again a full Hold after
// this transfer completes.
func (s *Sim) enqueueTransfer(e *dirHot, c *dirCold, line uint64, core int, read bool, now uint64) uint32 {
	start := now
	if e.availableAt > start {
		start = e.availableAt
	}
	// Transfers originate from the dirty owner (both call sites are in
	// modified state); one that crosses a socket boundary pays the scaled
	// interconnect-hop cost.
	remote := s.cfg.Lat.Remote
	if s.coresPerSocket > 0 && core/s.coresPerSocket != int(e.owner)/s.coresPerSocket {
		remote = s.remoteCross
	}
	end := start + uint64(remote) + uint64(s.noteContention(now, line, c))
	e.availableAt = end + uint64(s.cfg.Lat.Hold)
	// Drained queue: rewind so the backing array is reused.
	if n := int(c.pendHead); n > 0 && n == len(c.pending) {
		c.pending = c.pending[:0]
		c.pendHead = 0
	}
	c.pending = append(c.pending, pendingTransfer{core: int32(core), read: read, effectiveAt: end})
	e.pend = true
	return uint32(end - now)
}

// commitPending applies every in-flight transfer that has completed by
// time now, in completion order, and refreshes the hot pend mirror.
func (s *Sim) commitPending(e *dirHot, c *dirCold, line uint64, now uint64) {
	for int(c.pendHead) < len(c.pending) && c.pending[c.pendHead].effectiveAt <= now {
		p := c.pending[c.pendHead]
		c.pendHead++
		dst := int(p.core)
		if p.read {
			// Downgrade: the previous owner keeps a clean shared copy,
			// the reader joins the sharer set, and the write-back leaves
			// a copy in the LLC.
			if e.state == modified {
				e.sharers.set(int(e.owner))
			}
			e.state = shared
			e.sharers.set(dst)
			s.fill(dst, line)
			s.l3.insert(line)
			continue
		}
		// Steal: every other copy is invalidated and the requester
		// becomes the dirty owner.
		if e.state == modified && int(e.owner) != dst {
			s.evictRemote(int(e.owner), line)
		}
		e.sharers.forEach(func(c int) {
			if c != dst {
				s.evictRemote(c, line)
			}
		})
		e.state = modified
		e.owner = p.core
		e.sharers.clear()
		e.sharers.set(dst)
		s.fill(dst, line)
	}
	e.pend = int(c.pendHead) < len(c.pending)
}

// directoryState exposes a line's MESI state for tests.
func (s *Sim) directoryState(line uint64) (lineState, int, int) {
	e, _ := s.dir.find(line)
	if e == nil {
		return invalid, -1, 0
	}
	owner := -1
	if e.state == modified {
		owner = int(e.owner)
	}
	return e.state, owner, e.sharers.count()
}
