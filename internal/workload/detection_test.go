package workload

import (
	"strings"
	"testing"

	cheetah "repro"
	"repro/internal/pmu"
)

// denseProfile profiles a workload at reduced scale with dense sampling,
// returning the report.
func denseProfile(t *testing.T, name string, threads int, scale float64) *cheetah.Report {
	t.Helper()
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	sys := cheetah.New(cheetah.Config{})
	prog := w.Build(sys, Params{Threads: threads, Scale: scale})
	rep, _ := sys.Profile(prog, cheetah.ProfileOptions{
		PMU: pmu.Config{Period: 64, Jitter: 24, HandlerCycles: 0, SetupCycles: 0},
	})
	return rep
}

// reportsFSSite reports whether a significant instance matches the
// workload's documented FS site.
func reportsFSSite(rep *cheetah.Report, site string) bool {
	for _, in := range rep.Instances {
		if in.Object.Name == site {
			return true
		}
		for _, f := range in.Object.Stack {
			if strings.HasPrefix(site, f.File) && strings.HasSuffix(site, ":"+itoa(f.Line)) {
				return true
			}
		}
	}
	return false
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestSignificantFSWorkloadsDetected(t *testing.T) {
	for _, tc := range []struct {
		name  string
		scale float64
	}{
		{"linear_regression", 0.5},
		{"streamcluster", 0.5},
		{"figure1", 0.2},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			w, _ := ByName(tc.name)
			rep := denseProfile(t, tc.name, 8, tc.scale)
			if !reportsFSSite(rep, w.FSSite) {
				t.Errorf("%s: FS at %s not reported (instances %d, candidates %d, samples %d)",
					tc.name, w.FSSite, len(rep.Instances), len(rep.Candidates), rep.Samples)
			}
			for _, in := range rep.Instances {
				if !in.FalseSharing {
					t.Errorf("%s: reported instance not classified FS", tc.name)
				}
				if in.Assessment.Improvement < 1 {
					t.Errorf("%s: improvement %.3f < 1", tc.name, in.Assessment.Improvement)
				}
			}
		})
	}
}

func TestFSFreeWorkloadsProduceNoInstances(t *testing.T) {
	// Every NoFS workload must come out clean even under dense sampling —
	// the no-false-positives property.
	for _, w := range All() {
		if w.FS != NoFS {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			rep := denseProfile(t, w.Name, 8, 0.05)
			if len(rep.Instances) != 0 {
				in := rep.Instances[0]
				t.Errorf("%s: spurious instance at %v (%s, improve %.3f, inv %d)",
					w.Name, in.Object.Start, in.Object.Kind, in.Assessment.Improvement,
					in.Invalidations)
			}
		})
	}
}

func TestMinorFSWorkloadsBelowSignificance(t *testing.T) {
	// The Figure 7 apps' minor instances must not be reported as
	// significant even with dense sampling: their predicted improvement
	// stays below the threshold.
	scale := 0.3
	if testing.Short() {
		// Absence assertions hold a fortiori at smaller scales (fewer
		// invalidations can only push instances further below threshold).
		scale = 0.15
	}
	for _, name := range []string{"histogram", "reverse_index", "word_count"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, _ := ByName(name)
			rep := denseProfile(t, name, 8, scale)
			if reportsFSSite(rep, w.FSSite) {
				t.Errorf("%s: minor FS at %s reported as significant", name, w.FSSite)
			}
		})
	}
}

func TestFixedVariantsNotReported(t *testing.T) {
	// After padding, nothing significant remains.
	scale := 0.3
	if testing.Short() {
		scale = 0.15 // absence assertions hold a fortiori at smaller scales
	}
	for _, name := range []string{"linear_regression", "streamcluster", "figure1"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, _ := ByName(name)
			sys := cheetah.New(cheetah.Config{})
			prog := w.Build(sys, Params{Threads: 8, Scale: scale, Fixed: true})
			rep, _ := sys.Profile(prog, cheetah.ProfileOptions{
				PMU: pmu.Config{Period: 64, Jitter: 24, HandlerCycles: 0, SetupCycles: 0},
			})
			if reportsFSSite(rep, w.FSSite) {
				t.Errorf("%s: padded layout still reported", name)
			}
		})
	}
}

func TestStreamclusterUsesThreadPool(t *testing.T) {
	// The pgain rounds drive a persistent pool (the real program creates
	// its workers once); distinct worker ids equal the per-phase count.
	w, _ := ByName("streamcluster")
	sys := cheetah.New(cheetah.Config{})
	res := sys.Run(w.Build(sys, Params{Threads: 6, Scale: 0.02}))
	distinct := map[int32]bool{}
	records := 0
	for _, th := range res.Threads {
		if th.ID != 0 {
			distinct[int32(th.ID)] = true
			records++
		}
	}
	if len(distinct) != 6 {
		t.Errorf("distinct workers = %d, want 6", len(distinct))
	}
	if records != 6*streamclusterRounds {
		t.Errorf("worker phase records = %d, want %d", records, 6*streamclusterRounds)
	}
}
