package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	cheetah "repro"
)

func TestByNameSynthesizesTraceWorkloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mini.trace")
	text := "#cheetah-trace v1\n" +
		"#program 4 mini\n" +
		"#phase 0 p work\n" +
		"1 w 0x10000040 4 1 0 0\n" +
		"2 w 0x10000044 4 1 0 0\n" +
		"#threadend 1 0 1\n" +
		"#threadend 2 0 1\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	name := TracePrefix + path
	if !IsTraceName(name) || IsTraceName("figure1") {
		t.Error("IsTraceName misclassifies names")
	}
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("ByName(%q) not found", name)
	}
	if w.Name != name || w.Suite != "trace" {
		t.Errorf("synthesized workload = %q suite %q", w.Name, w.Suite)
	}
	sys := cheetah.New(cheetah.Config{Cores: 4})
	prog := w.Build(sys, Params{Threads: 16, Scale: 3}) // params ignored by replay
	if prog.Name != "mini" || len(prog.Phases) != 1 {
		t.Errorf("replayed program %q with %d phases, want mini/1", prog.Name, len(prog.Phases))
	}
	res := sys.Run(prog)
	if len(res.Threads) != 2 {
		t.Errorf("replayed %d threads, want 2", len(res.Threads))
	}
}

func TestTraceWorkloadBuildPanicsOnMissingFile(t *testing.T) {
	w, ok := ByName(TracePrefix + "/no/such/file.trace")
	if !ok {
		t.Fatal("trace pseudo-workload not synthesized")
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("Build on a missing trace did not panic")
		} else if !strings.Contains(r.(string), "opening trace") {
			t.Errorf("panic %v does not name the trace", r)
		}
	}()
	w.Build(cheetah.New(cheetah.Config{Cores: 4}), Params{})
}

func TestRegisteredNamesExcludeTracePseudoWorkloads(t *testing.T) {
	for _, n := range Names() {
		if IsTraceName(n) {
			t.Errorf("registry lists pseudo-workload %q", n)
		}
	}
}
