package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	cheetah "repro"
)

func TestByNameSynthesizesTraceWorkloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mini.trace")
	text := "#cheetah-trace v1\n" +
		"#program 4 mini\n" +
		"#phase 0 p work\n" +
		"1 w 0x10000040 4 1 0 0\n" +
		"2 w 0x10000044 4 1 0 0\n" +
		"#threadend 1 0 1\n" +
		"#threadend 2 0 1\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	name := TracePrefix + path
	if !IsTraceName(name) || IsTraceName("figure1") {
		t.Error("IsTraceName misclassifies names")
	}
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("ByName(%q) not found", name)
	}
	if w.Name != name || w.Suite != "trace" {
		t.Errorf("synthesized workload = %q suite %q", w.Name, w.Suite)
	}
	sys := cheetah.New(cheetah.Config{Cores: 4})
	prog := w.Build(sys, Params{Threads: 16, Scale: 3}) // params ignored by replay
	if prog.Name != "mini" || len(prog.Phases) != 1 {
		t.Errorf("replayed program %q with %d phases, want mini/1", prog.Name, len(prog.Phases))
	}
	res := sys.Run(prog)
	if len(res.Threads) != 2 {
		t.Errorf("replayed %d threads, want 2", len(res.Threads))
	}
}

func TestTraceWorkloadBuildPanicsOnMissingFile(t *testing.T) {
	w, ok := ByName(TracePrefix + "/no/such/file.trace")
	if !ok {
		t.Fatal("trace pseudo-workload not synthesized")
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("Build on a missing trace did not panic")
		} else if !strings.Contains(r.(string), "opening trace") {
			t.Errorf("panic %v does not name the trace", r)
		}
	}()
	w.Build(cheetah.New(cheetah.Config{Cores: 4}), Params{})
}

func TestRegisteredNamesExcludeTracePseudoWorkloads(t *testing.T) {
	for _, n := range Names() {
		if IsTraceName(n) {
			t.Errorf("registry lists pseudo-workload %q", n)
		}
	}
}

// TestSplitTraceName pins the name grammar: only a well-formed
// `@<lo>-<hi>` suffix with 0 <= lo <= hi is a phase range; anything
// else — including '@' inside file names — stays part of the path.
func TestSplitTraceName(t *testing.T) {
	cases := []struct {
		name   string
		path   string
		lo, hi int
		ranged bool
	}{
		{"trace:big.trace", "big.trace", 0, 0, false},
		{"trace:big.trace@0-63", "big.trace", 0, 63, true},
		{"trace:big.trace@7-7", "big.trace", 7, 7, true},
		{"trace:dir@v2/big.trace@1-2", "dir@v2/big.trace", 1, 2, true},
		{"trace:odd@name.trace", "odd@name.trace", 0, 0, false},
		{"trace:big.trace@5-2", "big.trace@5-2", 0, 0, false},
		{"trace:big.trace@-1-3", "big.trace@-1-3", 0, 0, false},
		{"trace:big.trace@a-b", "big.trace@a-b", 0, 0, false},
		{"trace:big.trace@12", "big.trace@12", 0, 0, false},
		{"trace:big.trace@-", "big.trace@-", 0, 0, false},
	}
	for _, tc := range cases {
		path, lo, hi, ranged := splitTraceName(tc.name)
		if path != tc.path || lo != tc.lo || hi != tc.hi || ranged != tc.ranged {
			t.Errorf("splitTraceName(%q) = (%q, %d, %d, %v), want (%q, %d, %d, %v)",
				tc.name, path, lo, hi, ranged, tc.path, tc.lo, tc.hi, tc.ranged)
		}
	}
}

// TestSetTraceReplayMode: the three modes round-trip, unknown modes are
// rejected without clobbering the current one, and the default is auto.
func TestSetTraceReplayMode(t *testing.T) {
	defer func() {
		if err := SetTraceReplayMode(ReplayAuto); err != nil {
			t.Fatal(err)
		}
	}()
	if got := TraceReplayMode(); got != ReplayAuto {
		t.Fatalf("default replay mode %q, want %q", got, ReplayAuto)
	}
	for _, mode := range []string{ReplayAuto, ReplayFull, ReplayStream} {
		if err := SetTraceReplayMode(mode); err != nil {
			t.Fatalf("SetTraceReplayMode(%q): %v", mode, err)
		}
		if got := TraceReplayMode(); got != mode {
			t.Errorf("TraceReplayMode() = %q after setting %q", got, mode)
		}
	}
	if err := SetTraceReplayMode("mmap"); err == nil {
		t.Error("unknown mode accepted")
	}
	if got := TraceReplayMode(); got != ReplayStream {
		t.Errorf("failed Set clobbered mode: %q", got)
	}
}
