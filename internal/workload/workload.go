// Package workload provides synthetic analogs of the 17 Phoenix and
// PARSEC applications in the paper's evaluation (Figure 4), plus the
// introduction's false sharing microbenchmark (Figure 1).
//
// Each analog reproduces the properties the experiments depend on: the
// application's fork-join phase structure, thread count, the rough ratio
// of memory traffic to compute, and — crucially — its sharing pattern.
// Applications with false sharing (linear_regression, streamcluster) and
// with minor false sharing (histogram, reverse_index, word_count) provide
// both the original ("broken") layout and the padded fix, so experiments
// measure real speedups rather than assuming them.
//
// Work is partitioned over the configured thread count with constant
// total work, matching how the paper's benchmarks scale.
package workload

import (
	"fmt"
	"sort"

	cheetah "repro"
	"repro/internal/mem"
)

// Params configures one workload instantiation.
type Params struct {
	// Threads is the number of worker threads per parallel phase; zero
	// means the workload default (16, as in the paper's evaluation).
	Threads int
	// Scale multiplies the total work; zero means 1.0. Unit tests use
	// small scales, experiments use 1.0.
	Scale float64
	// Fixed selects the padded (false-sharing-free) layout for workloads
	// that have one.
	Fixed bool
}

// withDefaults fills zero fields.
func (p Params) withDefaults(defThreads int) Params {
	if p.Threads == 0 {
		p.Threads = defThreads
	}
	if p.Scale == 0 {
		p.Scale = 1
	}
	return p
}

// scaled returns n*Scale, at least 1.
func (p Params) scaled(n int) int {
	v := int(float64(n) * p.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// FSKind describes a workload's false sharing, for experiment assertions.
type FSKind uint8

const (
	// NoFS means the workload has no false sharing.
	NoFS FSKind = iota
	// SignificantFS means fixing it yields a large speedup
	// (linear_regression, streamcluster).
	SignificantFS
	// MinorFS means false sharing exists (Predator-style full
	// instrumentation finds it) but its impact is negligible — the
	// Figure 7 applications.
	MinorFS
)

// Workload is one benchmark analog.
type Workload struct {
	// Name matches the paper's application name.
	Name string
	// Suite is "phoenix" or "parsec".
	Suite string
	// FS classifies the workload's false sharing.
	FS FSKind
	// FSSite is the allocation site (file:line) or global name of the
	// falsely-shared object, when FS != NoFS.
	FSSite string
	// DefaultThreads is the per-phase worker count (16 in the paper).
	DefaultThreads int
	// TotalThreads returns the number of threads the program creates in
	// total for the given per-phase count (kmeans creates 224, x264
	// 1024, per paper §4.1).
	TotalThreads func(perPhase int) int
	// Build allocates the workload's data on the system and returns its
	// program.
	Build func(sys *cheetah.System, p Params) cheetah.Program
}

// registry holds all workloads keyed by name.
var registry = map[string]*Workload{}

// register adds a workload at init time.
func register(w *Workload) {
	if w.DefaultThreads == 0 {
		w.DefaultThreads = 16
	}
	if w.TotalThreads == nil {
		w.TotalThreads = func(perPhase int) int { return perPhase }
	}
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", w.Name))
	}
	registry[w.Name] = w
}

// ByName returns the named workload. Names of the form `trace:<path>`
// resolve to a pseudo-workload replaying the trace file at <path>.
func ByName(name string) (*Workload, bool) {
	if IsTraceName(name) {
		return traceWorkload(name), true
	}
	w, ok := registry[name]
	return w, ok
}

// All returns every registered workload sorted by name — the Figure 4
// x-axis order.
func All() []*Workload {
	out := make([]*Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns all workload names in sorted order.
func Names() []string {
	ws := All()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// splitRange divides [0, total) into threads contiguous chunks and
// returns chunk i as [lo, hi).
func splitRange(total, threads, i int) (lo, hi int) {
	chunk := total / threads
	lo = i * chunk
	hi = lo + chunk
	if i == threads-1 {
		hi = total
	}
	return lo, hi
}

// rng returns a deterministic SplitMix64 generator.
func rng(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// streamLoads issues n sequential 4-byte loads over region, wrapping at
// bytes, starting from offset start — the inner loop of scan-heavy
// workloads.
func streamLoads(t *cheetah.T, region mem.Addr, bytes, start, n int) {
	off := start % bytes
	for i := 0; i < n; i++ {
		t.Load(region.Add(off))
		off += mem.WordSize
		if off >= bytes {
			off = 0
		}
	}
}
