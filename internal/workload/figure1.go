// The introduction's false sharing microbenchmark (paper Figure 1).
package workload

import (
	cheetah "repro"
	"repro/internal/mem"
)

func init() {
	register(figure1())
}

// Figure1Iterations is the per-element increment count at Scale=1,
// standing in for the paper's 10,000,000 (scaled to simulation size).
const Figure1Iterations = 120_000

// figure1 models the paper's Figure 1(a) program:
//
//	int array[total];
//	void threadFunc(int start) {
//	    for (index = start; index < start+window; index++)
//	        for (j = 0; j < 10000000; j++)
//	            array[index]++;
//	}
//
// Every thread increments adjacent 4-byte elements of a global array, all
// within the same cache lines: the canonical false sharing storm. The
// fixed variant pads each thread's element to its own line, yielding the
// linear-speedup "Expectation" of Figure 1(b).
func figure1() *Workload {
	return &Workload{
		Name:           "figure1",
		Suite:          "micro",
		FS:             SignificantFS,
		FSSite:         "array",
		DefaultThreads: 8,
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(8)
			iters := p.scaled(Figure1Iterations)
			stride := 4
			if p.Fixed {
				stride = mem.LineSize
			}
			// The array has one element per thread at the maximum thread
			// count; with fewer threads each thread handles a window of
			// elements, keeping total work constant (the paper's
			// window = total/numThreads).
			total := 8
			if p.Threads > total {
				total = p.Threads
			}
			array := sys.Globals().Define("array", uint64(total*stride))

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(total, p.Threads, i)
				bodies[i] = func(t *cheetah.T) {
					for idx := lo; idx < hi; idx++ {
						elem := array.Add(idx * stride)
						for j := 0; j < iters; j++ {
							// array[index]++ is a load, an add, and a store.
							t.Load(elem)
							t.Compute(1)
							t.Store(elem)
						}
					}
				}
			}
			return cheetah.Program{Name: "figure1", Phases: []cheetah.Phase{
				cheetah.ParallelPhase("threadFunc", bodies...),
			}}
		},
	}
}
