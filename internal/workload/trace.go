// Trace pseudo-workloads: any recorded memory-access trace replays
// through the harness like a built-in benchmark.
package workload

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	cheetah "repro"
	"repro/internal/trace"
)

// TracePrefix marks trace pseudo-workload names: `trace:<path>` resolves
// to a workload that replays the trace file at <path>. ByName synthesizes
// these on demand, so the harness and both commands can sweep replayed
// traces like any registered cell.
//
// A `@<lo>-<hi>` suffix restricts replay to the inclusive phase range —
// `trace:big.trace@0-63` — the unit of cross-worker trace sharding.
// Ranged names require an indexed trace (they always stream).
const TracePrefix = "trace:"

// IsTraceName reports whether name denotes a trace pseudo-workload.
func IsTraceName(name string) bool { return strings.HasPrefix(name, TracePrefix) }

// splitTraceName splits a trace workload name into its file path and
// optional phase range. Only a well-formed `@<lo>-<hi>` suffix with
// lo <= hi is treated as a range; anything else stays part of the path
// (file names may contain '@').
func splitTraceName(name string) (path string, lo, hi int, ranged bool) {
	path = strings.TrimPrefix(name, TracePrefix)
	at := strings.LastIndexByte(path, '@')
	if at < 0 {
		return path, 0, 0, false
	}
	spec := path[at+1:]
	dash := strings.IndexByte(spec, '-')
	if dash <= 0 {
		return path, 0, 0, false
	}
	l, err1 := strconv.Atoi(spec[:dash])
	h, err2 := strconv.Atoi(spec[dash+1:])
	if err1 != nil || err2 != nil || l < 0 || h < l {
		return path, 0, 0, false
	}
	return path[:at], l, h, true
}

// TracePath returns the trace file path a trace workload name refers
// to, stripped of any phase-range suffix.
func TracePath(name string) string {
	path, _, _, _ := splitTraceName(name)
	return path
}

// Replay modes select how trace pseudo-workloads load their file.
const (
	// ReplayAuto streams indexed traces and fully loads the rest.
	ReplayAuto = "auto"
	// ReplayFull always decodes the whole trace into memory.
	ReplayFull = "full"
	// ReplayStream always streams; non-indexed traces fail.
	ReplayStream = "stream"
)

var replayMode = struct {
	sync.Mutex
	mode string
}{mode: ReplayAuto}

// SetTraceReplayMode selects the process-wide replay mode for trace
// pseudo-workloads. The mode is deliberately not part of the workload
// name: a cell's identity (and so the sweep cache key) is the same
// whichever way the trace is loaded, because the resulting report is
// proven byte-identical.
func SetTraceReplayMode(mode string) error {
	switch mode {
	case ReplayAuto, ReplayFull, ReplayStream:
	default:
		return fmt.Errorf("workload: unknown replay mode %q (want %s, %s or %s)",
			mode, ReplayAuto, ReplayFull, ReplayStream)
	}
	replayMode.Lock()
	replayMode.mode = mode
	replayMode.Unlock()
	return nil
}

// TraceReplayMode returns the current process-wide replay mode.
func TraceReplayMode() string {
	replayMode.Lock()
	defer replayMode.Unlock()
	return replayMode.mode
}

// traceWorkload synthesizes the pseudo-workload for one trace file. The
// replayed program's structure (threads, phases, work) comes entirely
// from the trace, so Params.Threads, Scale and Fixed are ignored; the
// detection report matches the recorded run's byte for byte when the
// system's core count and the PMU configuration match the recording
// (full traces only). Build panics on unreadable or malformed trace
// files — the same contract as registered workloads, whose Build cannot
// fail; callers wanting a diagnostic run ValidateTraceName first.
func traceWorkload(name string) *Workload {
	path, lo, hi, ranged := splitTraceName(name)
	return &Workload{
		Name:           name,
		Suite:          "trace",
		DefaultThreads: 16,
		TotalThreads:   func(perPhase int) int { return perPhase },
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			mode := TraceReplayMode()
			stream := ranged || mode == ReplayStream ||
				(mode == ReplayAuto && trace.FileIsIndexed(path))
			if !stream {
				rp, err := trace.ReadFile(path)
				if err != nil {
					panic(fmt.Sprintf("workload: opening trace: %v", err))
				}
				if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
					panic(fmt.Sprintf("workload: preparing trace %s: %v", path, err))
				}
				return rp.Program()
			}
			sr, err := trace.OpenStream(path)
			if err != nil {
				panic(fmt.Sprintf("workload: opening trace: %v", err))
			}
			if err := sr.Prepare(sys.Heap(), sys.Globals()); err != nil {
				panic(fmt.Sprintf("workload: preparing trace %s: %v", path, err))
			}
			if ranged {
				return sr.ProgramRange(lo, hi)
			}
			return sr.Program()
		},
	}
}

// ValidateTraceName rehearses the load path Build would take for the
// named trace workload under the current replay mode, returning the
// error Build would panic with.
func ValidateTraceName(name string) error {
	path, _, _, ranged := splitTraceName(name)
	mode := TraceReplayMode()
	if ranged || mode == ReplayStream || (mode == ReplayAuto && trace.FileIsIndexed(path)) {
		return trace.ValidateStream(path)
	}
	return trace.Validate(path)
}
