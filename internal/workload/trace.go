// Trace pseudo-workloads: any recorded memory-access trace replays
// through the harness like a built-in benchmark.
package workload

import (
	"fmt"
	"strings"

	cheetah "repro"
	"repro/internal/trace"
)

// TracePrefix marks trace pseudo-workload names: `trace:<path>` resolves
// to a workload that replays the trace file at <path>. ByName synthesizes
// these on demand, so the harness and both commands can sweep replayed
// traces like any registered cell.
const TracePrefix = "trace:"

// IsTraceName reports whether name denotes a trace pseudo-workload.
func IsTraceName(name string) bool { return strings.HasPrefix(name, TracePrefix) }

// traceWorkload synthesizes the pseudo-workload for one trace file. The
// replayed program's structure (threads, phases, work) comes entirely
// from the trace, so Params.Threads, Scale and Fixed are ignored; the
// detection report matches the recorded run's byte for byte when the
// system's core count and the PMU configuration match the recording
// (full traces only). Build panics on unreadable or malformed trace
// files — the same contract as registered workloads, whose Build cannot
// fail; callers wanting a diagnostic run trace.Validate first.
func traceWorkload(name string) *Workload {
	path := strings.TrimPrefix(name, TracePrefix)
	return &Workload{
		Name:           name,
		Suite:          "trace",
		DefaultThreads: 16,
		TotalThreads:   func(perPhase int) int { return perPhase },
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			rp, err := trace.ReadFile(path)
			if err != nil {
				panic(fmt.Sprintf("workload: opening trace: %v", err))
			}
			if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
				panic(fmt.Sprintf("workload: preparing trace %s: %v", path, err))
			}
			return rp.Program()
		},
	}
}
