package workload

import (
	"testing"

	cheetah "repro"
)

// paperApps is the Figure 4 application list.
var paperApps = []string{
	"blackscholes", "bodytrack", "canneal", "facesim", "fluidanimate",
	"freqmine", "histogram", "kmeans", "linear_regression",
	"matrix_multiply", "pca", "string_match", "reverse_index",
	"streamcluster", "swaptions", "word_count", "x264",
}

func TestRegistryCoversPaperApplications(t *testing.T) {
	for _, name := range paperApps {
		if _, ok := ByName(name); !ok {
			t.Errorf("workload %q missing from registry", name)
		}
	}
	if _, ok := ByName("figure1"); !ok {
		t.Error("figure1 microbenchmark missing")
	}
	if got := len(All()); got != len(paperApps)+1 {
		t.Errorf("registry has %d workloads, want %d", got, len(paperApps)+1)
	}
}

// tinyRun builds and runs a workload natively at small scale.
func tinyRun(t *testing.T, name string, p Params) cheetah.Result {
	t.Helper()
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	sys := cheetah.New(cheetah.Config{Cores: 17})
	prog := w.Build(sys, p)
	if prog.Name != name {
		t.Errorf("program name %q, want %q", prog.Name, name)
	}
	return sys.Run(prog)
}

func TestAllWorkloadsRunAtSmallScale(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			res := tinyRun(t, w.Name, Params{Threads: 4, Scale: 0.01})
			if res.TotalCycles == 0 {
				t.Fatal("zero runtime")
			}
			if len(res.Phases) == 0 {
				t.Fatal("no phases recorded")
			}
			// Count distinct spawned (non-main) threads and check against
			// the workload's advertised total (pooled threads reappear in
			// several phases but are created once).
			workers := map[int32]bool{}
			for _, th := range res.Threads {
				if th.ID != 0 {
					workers[int32(th.ID)] = true
				}
			}
			if want := w.TotalThreads(4); len(workers) != want {
				t.Errorf("spawned %d worker threads, want %d", len(workers), want)
			}
		})
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range []string{"linear_regression", "canneal", "streamcluster"} {
		r1 := tinyRun(t, name, Params{Threads: 4, Scale: 0.01})
		r2 := tinyRun(t, name, Params{Threads: 4, Scale: 0.01})
		if r1.TotalCycles != r2.TotalCycles {
			t.Errorf("%s: nondeterministic runtimes %d vs %d", name, r1.TotalCycles, r2.TotalCycles)
		}
	}
}

func TestSignificantFSWorkloadsBenefitFromFix(t *testing.T) {
	for _, tc := range []struct {
		name    string
		minGain float64
	}{
		{"linear_regression", 1.3},
		{"streamcluster", 1.005},
		{"figure1", 2.0},
	} {
		broken := tinyRun(t, tc.name, Params{Threads: 8, Scale: 0.05})
		fixed := tinyRun(t, tc.name, Params{Threads: 8, Scale: 0.05, Fixed: true})
		gain := float64(broken.TotalCycles) / float64(fixed.TotalCycles)
		if gain < tc.minGain {
			t.Errorf("%s: fix gains only %.3fx, want >= %.3fx", tc.name, gain, tc.minGain)
		}
	}
}

func TestMinorFSWorkloadsGainLittle(t *testing.T) {
	// The Figure 7 property: fixing these yields <1% (paper: <0.2%).
	for _, name := range []string{"histogram", "reverse_index", "word_count"} {
		broken := tinyRun(t, name, Params{Threads: 8, Scale: 0.05})
		fixed := tinyRun(t, name, Params{Threads: 8, Scale: 0.05, Fixed: true})
		gain := float64(broken.TotalCycles) / float64(fixed.TotalCycles)
		if gain > 1.01 {
			t.Errorf("%s: fix gains %.4fx, want negligible", name, gain)
		}
		if gain < 0.99 {
			t.Errorf("%s: fix slows down by %.4fx", name, gain)
		}
	}
}

func TestFigure1RealityVsExpectation(t *testing.T) {
	// Figure 1(b): with false sharing, 8 threads run far slower than the
	// linear-speedup expectation.
	single := tinyRun(t, "figure1", Params{Threads: 1, Scale: 0.05})
	eight := tinyRun(t, "figure1", Params{Threads: 8, Scale: 0.05})
	expectation := float64(single.TotalCycles) / 8
	slowdown := float64(eight.TotalCycles) / expectation
	if slowdown < 4 {
		t.Errorf("8-thread reality only %.1fx over expectation, want >= 4x", slowdown)
	}
	// And the fixed variant must roughly meet the expectation.
	fixed := tinyRun(t, "figure1", Params{Threads: 8, Scale: 0.05, Fixed: true})
	ratio := float64(fixed.TotalCycles) / expectation
	if ratio > 2 {
		t.Errorf("fixed 8-thread run %.1fx over linear-speedup expectation", ratio)
	}
}

func TestThreadCountScalesWork(t *testing.T) {
	// Total work constant: more threads => shorter runtime for FS-free
	// workloads.
	two := tinyRun(t, "blackscholes", Params{Threads: 2, Scale: 0.05})
	eight := tinyRun(t, "blackscholes", Params{Threads: 8, Scale: 0.05})
	speedup := float64(two.TotalCycles) / float64(eight.TotalCycles)
	// The serial input phase caps the speedup (Amdahl), as in the real app.
	if speedup < 1.7 {
		t.Errorf("8 vs 2 threads speedup %.2fx, want >= 1.7x", speedup)
	}
}

func TestTotalThreadCounts(t *testing.T) {
	// kmeans creates 14x and x264 64x its per-phase threads — the paper's
	// 224 and 1024 at 16 threads (§4.1).
	km, _ := ByName("kmeans")
	if got := km.TotalThreads(16); got != 224 {
		t.Errorf("kmeans TotalThreads(16) = %d, want 224", got)
	}
	xx, _ := ByName("x264")
	if got := xx.TotalThreads(16); got != 1024 {
		t.Errorf("x264 TotalThreads(16) = %d, want 1024", got)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults(16)
	if p.Threads != 16 || p.Scale != 1 {
		t.Errorf("defaults = %+v", p)
	}
	if got := (Params{Scale: 0.001}).scaled(100); got != 1 {
		t.Errorf("scaled floor = %d, want 1", got)
	}
}

func TestSplitRangeCoversAll(t *testing.T) {
	for _, total := range []int{7, 16, 100, 101} {
		for _, threads := range []int{1, 3, 8} {
			covered := 0
			prevHi := 0
			for i := 0; i < threads; i++ {
				lo, hi := splitRange(total, threads, i)
				if lo != prevHi {
					t.Fatalf("splitRange(%d,%d,%d) gap: lo=%d prevHi=%d", total, threads, i, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != total {
				t.Errorf("splitRange(%d,%d) covers %d", total, threads, covered)
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName returned a workload for an unknown name")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %q before %q", names[i-1], names[i])
		}
	}
}
