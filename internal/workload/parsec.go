// PARSEC benchmark analogs (Bienia, 2011), run with the native-input
// characteristics the paper uses: realistic phase structure, thread
// counts, and sharing patterns.
package workload

import (
	cheetah "repro"
	"repro/internal/heap"
	"repro/internal/mem"
)

func init() {
	register(blackscholes())
	register(bodytrack())
	register(canneal())
	register(facesim())
	register(fluidanimate())
	register(freqmine())
	register(streamcluster())
	register(swaptions())
	register(x264())
}

// StreamclusterSite is the allocation site of the under-padded work_mem
// object (paper §4.2.2: "allocated at line 985 of the streamcluster.cpp
// file").
const StreamclusterSite = "streamcluster.cpp:985"

// streamclusterRounds is the number of pgain rounds, each a fork-join
// parallel phase separated by serial re-clustering.
const streamclusterRounds = 5

// streamcluster models PARSEC's streamcluster. The work_mem object holds
// one accumulator entry per thread; the original code pads entries with a
// CACHE_LINE macro set to 32 bytes, smaller than the actual 64-byte line,
// so adjacent threads' entries share lines — the paper's second case
// study. Work is dominated by reading the point block, so the false
// sharing is real but its impact modest (Table 1: 1.015x-1.035x), and it
// shrinks as threads increase because the serial re-clustering between
// rounds dilutes the parallel phases.
func streamcluster() *Workload {
	return &Workload{
		Name:   "streamcluster",
		Suite:  "parsec",
		FS:     SignificantFS,
		FSSite: StreamclusterSite,
		// The pgain phases drive a persistent thread pool, so only one
		// set of workers is ever created.
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			pointsTotal := p.scaled(320_000)
			const dims = 16
			h := sys.Heap()
			block := h.Malloc(mem.MainThread, uint64(pointsTotal*dims/8*4),
				heap.Stack(heap.Frame{Func: "main", File: "streamcluster.cpp", Line: 1862}))
			stride := 32 // CACHE_LINE assumed 32 bytes: the bug
			if p.Fixed {
				stride = mem.LineSize
			}
			workMem := h.Malloc(mem.MainThread, uint64(p.Threads*stride),
				heap.Stack(
					heap.Frame{Func: "pgain", File: "streamcluster.cpp", Line: 985},
					heap.Frame{Func: "localSearch", File: "streamcluster.cpp", Line: 1379},
				))

			phases := []cheetah.Phase{
				cheetah.SerialPhase("read_input", func(t *cheetah.T) {
					// Parsing scans each just-written value repeatedly, so
					// the serial latency profile is dominated by warm
					// accesses; the varying compute tail keeps the loop
					// irregular so sampling cannot alias with it.
					for i := 0; i < pointsTotal/4; i++ {
						t.Store(block.Add(i * 4))
						for scan := 0; scan < 5; scan++ {
							t.Load(block.Add(i * 4))
						}
						t.Compute(3 + i&3)
					}
				}),
			}
			for round := 0; round < streamclusterRounds; round++ {
				bodies := make([]cheetah.Body, p.Threads)
				for i := 0; i < p.Threads; i++ {
					lo, hi := splitRange(pointsTotal, p.Threads, i)
					mine := workMem.Add(i * stride)
					bodies[i] = func(t *cheetah.T) {
						for j := lo; j < hi; j++ {
							// Distance computation over the point block.
							t.Load(block.Add((j % (pointsTotal / 2)) * 4))
							t.Compute(6)
							if j%1000 == 0 {
								// Flush the locally accumulated gains into
								// this thread's work_mem entry: a burst of
								// read-modify-writes on the falsely-shared
								// line.
								for rep := 0; rep < 8; rep++ {
									for f := 0; f < 3; f++ {
										t.Load8(mine.Add(f * 8))
										t.Store8(mine.Add(f * 8))
									}
								}
							}
						}
					}
				}
				phases = append(phases,
					cheetah.PooledPhase("pgain", bodies...),
					cheetah.SerialPhase("reclustering", func(t *cheetah.T) {
						// Re-clustering iterates over the medians, a small
						// warm working set.
						for i := 0; i < p.scaled(20_000); i++ {
							t.Load(block.Add((i % 4096) * 4))
							t.Compute(6)
						}
					}),
				)
			}
			return cheetah.Program{Name: "streamcluster", Phases: phases}
		},
	}
}

// blackscholes models PARSEC's blackscholes: embarrassingly parallel
// option pricing over private slices.
func blackscholes() *Workload {
	return &Workload{
		Name:  "blackscholes",
		Suite: "parsec",
		FS:    NoFS,
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			options := p.scaled(320_000)
			h := sys.Heap()
			in := h.Malloc(mem.MainThread, uint64(options*24),
				heap.Stack(heap.Frame{Func: "main", File: "blackscholes.c", Line: 310}))
			out := h.Malloc(mem.MainThread, uint64(options*4),
				heap.Stack(heap.Frame{Func: "main", File: "blackscholes.c", Line: 317}))

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(options, p.Threads, i)
				bodies[i] = func(t *cheetah.T) {
					for j := lo; j < hi; j++ {
						t.Load(in.Add(j * 24))
						t.Load(in.Add(j*24 + 8))
						t.Load(in.Add(j*24 + 16))
						t.Compute(40) // CNDF evaluation
						t.Store(out.Add(j * 4))
					}
				}
			}
			return cheetah.Program{Name: "blackscholes", Phases: []cheetah.Phase{
				cheetah.SerialPhase("parse_options", func(t *cheetah.T) {
					for i := 0; i < options; i += 8 {
						t.Store(in.Add(i * 24))
						t.Compute(4)
					}
				}),
				cheetah.ParallelPhase("bs_thread", bodies...),
			}}
		},
	}
}

// bodytrack models PARSEC's bodytrack: per-frame parallel phases reading
// a shared read-only model and writing private particle weights.
func bodytrack() *Workload {
	const frames = 4
	return &Workload{
		Name:  "bodytrack",
		Suite: "parsec",
		FS:    NoFS,
		TotalThreads: func(perPhase int) int {
			return perPhase * frames
		},
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			particles := p.scaled(512_000)
			h := sys.Heap()
			model := h.Malloc(mem.MainThread, 1<<16,
				heap.Stack(heap.Frame{Func: "main", File: "TrackingModel.cpp", Line: 231}))
			weights := make([]mem.Addr, p.Threads)
			for i := range weights {
				weights[i] = h.Malloc(mem.ThreadID(i+1), uint64(particles/p.Threads*4+64),
					heap.Stack(heap.Frame{Func: "Exec", File: "WorkPoolPthread.h", Line: 107}))
			}
			phases := []cheetah.Phase{
				cheetah.SerialPhase("load_model", func(t *cheetah.T) {
					for i := 0; i < 1<<16; i += 64 {
						t.Store(model.Add(i))
					}
				}),
			}
			for f := 0; f < frames; f++ {
				bodies := make([]cheetah.Body, p.Threads)
				for i := 0; i < p.Threads; i++ {
					lo, hi := splitRange(particles, p.Threads, i)
					w := weights[i]
					bodies[i] = func(t *cheetah.T) {
						r := rng(uint64(lo ^ hi))
						for j := lo; j < hi; j++ {
							t.Load(model.Add(int(r()%(1<<14)) * 4))
							t.Compute(12)
							t.Store(w.Add((j - lo) * 4))
						}
					}
				}
				phases = append(phases,
					cheetah.ParallelPhase("particle_weights", bodies...),
					cheetah.SerialPhase("resample", func(t *cheetah.T) {
						for i := 0; i < p.scaled(4_000); i++ {
							t.Load(model.Add((i % (1 << 12)) * 4))
							t.Compute(10)
						}
					}),
				)
			}
			return cheetah.Program{Name: "bodytrack", Phases: phases}
		},
	}
}

// canneal models PARSEC's canneal: random element swaps over a large
// netlist, cache-unfriendly scattered accesses with occasional true
// sharing between threads.
func canneal() *Workload {
	return &Workload{
		Name:  "canneal",
		Suite: "parsec",
		FS:    NoFS,
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			swaps := p.scaled(40_000)
			const netlist = 1 << 22 // 4 MB of elements
			h := sys.Heap()
			elements := h.Malloc(mem.MainThread, netlist,
				heap.Stack(heap.Frame{Func: "main", File: "main.cpp", Line: 146}))

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				seed := uint64(i + 1)
				bodies[i] = func(t *cheetah.T) {
					r := rng(seed)
					for j := 0; j < swaps; j++ {
						a := int(r() % (netlist / 4))
						b := int(r() % (netlist / 4))
						t.Load(elements.Add(a * 4))
						t.Load(elements.Add(b * 4))
						t.Compute(10)
						t.Store(elements.Add(a * 4))
						t.Store(elements.Add(b * 4))
					}
				}
			}
			return cheetah.Program{Name: "canneal", Phases: []cheetah.Phase{
				cheetah.SerialPhase("load_netlist", func(t *cheetah.T) {
					for i := 0; i < netlist; i += 256 {
						t.Store(elements.Add(i))
					}
				}),
				cheetah.ParallelPhase("annealer_thread", bodies...),
			}}
		},
	}
}

// facesim models PARSEC's facesim: iteration over large private mesh
// partitions with heavy floating-point work.
func facesim() *Workload {
	return &Workload{
		Name:  "facesim",
		Suite: "parsec",
		FS:    NoFS,
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			nodes := p.scaled(320_000)
			h := sys.Heap()
			mesh := h.Malloc(mem.MainThread, uint64(nodes*12),
				heap.Stack(heap.Frame{Func: "main", File: "FACE_DRIVER.cpp", Line: 88}))

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(nodes, p.Threads, i)
				bodies[i] = func(t *cheetah.T) {
					for j := lo; j < hi; j++ {
						t.Load(mesh.Add(j * 12))
						t.Load(mesh.Add(j*12 + 4))
						t.Compute(18) // force computation
						t.Store(mesh.Add(j*12 + 8))
					}
				}
			}
			return cheetah.Program{Name: "facesim", Phases: []cheetah.Phase{
				cheetah.SerialPhase("load_mesh", func(t *cheetah.T) {
					for i := 0; i < nodes; i += 16 {
						t.Store(mesh.Add(i * 12))
					}
				}),
				cheetah.ParallelPhase("update_position", bodies...),
			}}
		},
	}
}

// fluidanimate models PARSEC's fluidanimate: grid-partitioned particle
// simulation; partitions are cache-line aligned so neighbour reads cause
// no false sharing.
func fluidanimate() *Workload {
	const steps = 2
	return &Workload{
		Name:  "fluidanimate",
		Suite: "parsec",
		FS:    NoFS,
		TotalThreads: func(perPhase int) int {
			return perPhase * steps
		},
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			cells := p.scaled(160_000)
			h := sys.Heap()
			grid := h.Malloc(mem.MainThread, uint64(cells*16),
				heap.Stack(heap.Frame{Func: "InitSim", File: "pthreads.cpp", Line: 402}))

			phases := []cheetah.Phase{
				cheetah.SerialPhase("init_sim", func(t *cheetah.T) {
					for i := 0; i < cells; i += 8 {
						t.Store(grid.Add(i * 16))
					}
				}),
			}
			for s := 0; s < steps; s++ {
				bodies := make([]cheetah.Body, p.Threads)
				for i := 0; i < p.Threads; i++ {
					lo, hi := splitRange(cells, p.Threads, i)
					bodies[i] = func(t *cheetah.T) {
						for j := lo; j < hi; j++ {
							t.Load(grid.Add(j * 16))
							// Neighbour cell (may belong to the adjacent
							// partition: true sharing reads at boundaries).
							if j+1 < cells {
								t.Load(grid.Add((j + 1) * 16))
							}
							t.Compute(14)
							t.Store(grid.Add(j*16 + 8))
						}
					}
				}
				phases = append(phases, cheetah.ParallelPhase("compute_forces", bodies...))
			}
			return cheetah.Program{Name: "fluidanimate", Phases: phases}
		},
	}
}

// freqmine models PARSEC's freqmine: FP-tree mining dominated by private
// tree traversals.
func freqmine() *Workload {
	return &Workload{
		Name:  "freqmine",
		Suite: "parsec",
		FS:    NoFS,
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			transactions := p.scaled(240_000)
			h := sys.Heap()
			db := h.Malloc(mem.MainThread, uint64(transactions*8),
				heap.Stack(heap.Frame{Func: "main", File: "fp_tree.cpp", Line: 2661}))
			trees := make([]mem.Addr, p.Threads)
			for i := range trees {
				trees[i] = h.Malloc(mem.ThreadID(i+1), 1<<16,
					heap.Stack(heap.Frame{Func: "FP_growth", File: "fp_tree.cpp", Line: 1801}))
			}

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(transactions, p.Threads, i)
				tree := trees[i]
				bodies[i] = func(t *cheetah.T) {
					r := rng(uint64(lo * 3))
					for j := lo; j < hi; j++ {
						t.Load(db.Add(j * 8))
						node := int(r() % (1 << 13))
						t.Load(tree.Add(node * 8))
						t.Store(tree.Add(node * 8))
						t.Compute(8)
					}
				}
			}
			return cheetah.Program{Name: "freqmine", Phases: []cheetah.Phase{
				cheetah.SerialPhase("scan_db", func(t *cheetah.T) {
					for i := 0; i < transactions; i += 16 {
						t.Store(db.Add(i * 8))
					}
				}),
				cheetah.ParallelPhase("fp_growth", bodies...),
			}}
		},
	}
}

// swaptions models PARSEC's swaptions: Monte-Carlo HJM simulation with
// heavy compute over thread-private buffers.
func swaptions() *Workload {
	return &Workload{
		Name:  "swaptions",
		Suite: "parsec",
		FS:    NoFS,
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			sims := p.scaled(800_000)
			h := sys.Heap()
			bufs := make([]mem.Addr, p.Threads)
			for i := range bufs {
				bufs[i] = h.Malloc(mem.ThreadID(i+1), 1<<14,
					heap.Stack(heap.Frame{Func: "worker", File: "HJM_Securities.cpp", Line: 99}))
			}
			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(sims, p.Threads, i)
				buf := bufs[i]
				bodies[i] = func(t *cheetah.T) {
					r := rng(uint64(hi * 7))
					for j := lo; j < hi; j++ {
						slot := int(r() % (1 << 11))
						t.Load(buf.Add(slot * 8))
						t.Compute(30) // path simulation
						t.Store(buf.Add(slot * 8))
					}
				}
			}
			return cheetah.Program{Name: "swaptions", Phases: []cheetah.Phase{
				cheetah.ParallelPhase("HJM_Swaption_Blocking", bodies...),
			}}
		},
	}
}

// x264 models PARSEC's x264: a long pipeline of per-frame parallel
// phases. Its defining property for the overhead experiment is thread
// count: the paper measures 1024 threads over the run, so per-thread PMU
// setup dominates Cheetah's overhead (paper §4.1, §5).
func x264() *Workload {
	const frames = 64
	return &Workload{
		Name:  "x264",
		Suite: "parsec",
		FS:    NoFS,
		TotalThreads: func(perPhase int) int {
			return perPhase * frames
		},
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			mbPerFrame := p.scaled(128_000)
			h := sys.Heap()
			ref := h.Malloc(mem.MainThread, 1<<20,
				heap.Stack(heap.Frame{Func: "main", File: "encoder/encoder.c", Line: 1590}))
			outs := make([]mem.Addr, p.Threads)
			for i := range outs {
				outs[i] = h.Malloc(mem.ThreadID(i+1), 1<<16,
					heap.Stack(heap.Frame{Func: "x264_slice_write", File: "encoder/encoder.c", Line: 1910}))
			}

			phases := []cheetah.Phase{
				cheetah.SerialPhase("read_frame", func(t *cheetah.T) {
					for i := 0; i < 1<<18; i += 256 {
						t.Store(ref.Add(i))
					}
				}),
			}
			for f := 0; f < frames; f++ {
				bodies := make([]cheetah.Body, p.Threads)
				for i := 0; i < p.Threads; i++ {
					lo, hi := splitRange(mbPerFrame, p.Threads, i)
					out := outs[i]
					bodies[i] = func(t *cheetah.T) {
						r := rng(uint64(lo + f))
						for j := lo; j < hi; j++ {
							// Motion estimation against the reference frame.
							t.Load(ref.Add(int(r()%(1<<17)) * 4))
							t.Compute(10)
							t.Store(out.Add(((j - lo) % (1 << 13)) * 4))
						}
					}
				}
				phases = append(phases, cheetah.ParallelPhase("encode_frame", bodies...))
			}
			return cheetah.Program{Name: "x264", Phases: phases}
		},
	}
}
