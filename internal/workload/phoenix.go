// Phoenix benchmark analogs (Ranger et al., HPCA'07), the MapReduce-style
// suite used throughout the paper's evaluation. The paper modified some of
// these (e.g. linear_regression) to run long enough to collect samples;
// the analogs bake comparable work in at Scale=1.
package workload

import (
	cheetah "repro"
	"repro/internal/heap"
	"repro/internal/mem"
)

func init() {
	register(linearRegression())
	register(histogram())
	register(kmeans())
	register(matrixMultiply())
	register(pca())
	register(stringMatch())
	register(reverseIndex())
	register(wordCount())
}

// LinearRegressionSite is the allocation site of the falsely-shared
// tid_args object, as reported in paper Figure 5.
const LinearRegressionSite = "linear_regression-pthread.c:139"

// lregArgsStride is the per-thread struct size in the broken layout: the
// lreg_args struct packs its five long long accumulators (SX, SY, SXX,
// SYY, SXY) back to back, so at 40 bytes per entry adjacent threads'
// accumulators share cache lines.
const lregArgsStride = 40

// linearRegression models Phoenix's linear_regression: a serial phase
// that loads the input points, then one parallel phase where each thread
// scans its partition and accumulates the five regression sums into its
// own entry of the shared tid_args array (paper Figure 6). The broken
// layout packs entries at 32 bytes — two threads per cache line — which
// is the paper's flagship false sharing instance; the fix pads each entry
// to a full cache line plus padding ("By adding 64 bytes of useless
// content", §4.2.1).
func linearRegression() *Workload {
	return &Workload{
		Name:   "linear_regression",
		Suite:  "phoenix",
		FS:     SignificantFS,
		FSSite: LinearRegressionSite,
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			// The paper lengthens linear_regression's parallel work "by
			// adding more loop iterations" (§4 Evaluated Applications);
			// repeats is that multiplier, keeping the serial input phase
			// short relative to the parallel phase.
			totalPoints := p.scaled(12_000)
			const repeats = 40
			stride := lregArgsStride
			if p.Fixed {
				stride = 2 * mem.LineSize // 64B struct + 64B padding
			}
			h := sys.Heap()
			// Input points: two 4-byte coordinates each.
			points := h.Malloc(mem.MainThread, uint64(totalPoints*8),
				heap.Stack(heap.Frame{Func: "main", File: "linear_regression-pthread.c", Line: 114}))
			// The falsely-shared per-thread argument array.
			args := h.Malloc(mem.MainThread, uint64(p.Threads*stride),
				heap.Stack(
					heap.Frame{Func: "main", File: "linear_regression-pthread.c", Line: 139},
					heap.Frame{Func: "__libc_start_main", File: "libc-start.c", Line: 308},
				))

			// Serial phase: parse the input file into the points array (the
			// paper's mmap + fault-in). Parsing scans each point's
			// characters repeatedly (atoi-style), so the serial latency
			// profile is dominated by warm accesses — the property
			// AverCycles_serial relies on (§3.1). The varying compute tail
			// keeps the loop length irregular so sampling cannot alias
			// with it.
			load := cheetah.SerialPhase("load_input", func(t *cheetah.T) {
				for i := 0; i < totalPoints; i++ {
					t.Store(points.Add(i * 8))
					t.Store(points.Add(i*8 + 4))
					for scan := 0; scan < 6; scan++ {
						t.Load(points.Add(i * 8))
						t.Load(points.Add(i*8 + 4))
					}
					t.Compute(2 + i&3)
				}
			})

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(totalPoints, p.Threads, i)
				mine := args.Add(i * stride)
				bodies[i] = func(t *cheetah.T) {
					for r := 0; r < repeats; r++ {
						for j := lo; j < hi; j++ {
							// Load the point.
							t.Load(points.Add(j * 8))
							t.Load(points.Add(j*8 + 4))
							// SX += x; SXX += x*x; SY += y; SYY += y*y;
							// SXY += x*y — read-modify-write of the five
							// accumulators in this thread's lreg_args entry.
							for f := 0; f < 5; f++ {
								t.Load8(mine.Add(f * 8))
								t.Store8(mine.Add(f * 8))
							}
							t.Compute(2)
						}
					}
				}
			}
			work := cheetah.ParallelPhase("linear_regression_pthread", bodies...)

			// Final serial phase: combine per-thread sums.
			combine := cheetah.SerialPhase("combine", func(t *cheetah.T) {
				for i := 0; i < p.Threads; i++ {
					for f := 0; f < 5; f++ {
						t.Load8(args.Add(i*stride + f*8))
					}
					t.Compute(20)
				}
			})
			return cheetah.Program{Name: "linear_regression", Phases: []cheetah.Phase{load, work, combine}}
		},
	}
}

// histogram models Phoenix's histogram: threads scan private slices of a
// bitmap and count pixel values into thread-private tables. The broken
// layout also keeps a packed per-thread progress counter array that
// threads update periodically — real false sharing with negligible
// impact, which Predator finds and Cheetah deliberately misses (Figure 7).
func histogram() *Workload {
	return &Workload{
		Name:   "histogram",
		Suite:  "phoenix",
		FS:     MinorFS,
		FSSite: "histogram-pthread.c:213",
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			pixels := p.scaled(800_000)
			h := sys.Heap()
			img := h.Malloc(mem.MainThread, uint64(pixels*4),
				heap.Stack(heap.Frame{Func: "main", File: "histogram-pthread.c", Line: 157}))
			// Thread-private histograms: 3 channels x 256 bins, padded to
			// superblock-separated allocations per thread.
			hists := make([]mem.Addr, p.Threads)
			for i := range hists {
				hists[i] = h.Malloc(mem.ThreadID(i+1), 3*256*4,
					heap.Stack(heap.Frame{Func: "calc_hist", File: "histogram-pthread.c", Line: 189}))
			}
			counterStride := 8
			if p.Fixed {
				counterStride = mem.LineSize
			}
			counters := h.Malloc(mem.MainThread, uint64(p.Threads*counterStride),
				heap.Stack(heap.Frame{Func: "main", File: "histogram-pthread.c", Line: 213}))

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(pixels, p.Threads, i)
				hist := hists[i]
				counter := counters.Add(i * counterStride)
				bodies[i] = func(t *cheetah.T) {
					r := rng(uint64(lo))
					for j := lo; j < hi; j++ {
						t.Load(img.Add(j * 4))
						bin := int(r() % 256)
						t.Load(hist.Add(bin * 4))
						t.Store(hist.Add(bin * 4))
						t.Compute(2)
						if j%8192 == 0 {
							// Packed progress counter: the minor FS.
							t.Store(counter)
						}
					}
				}
			}
			return cheetah.Program{Name: "histogram", Phases: []cheetah.Phase{
				cheetah.SerialPhase("read_bitmap", func(t *cheetah.T) {
					for i := 0; i < pixels; i += 16 {
						t.Store(img.Add(i * 4))
						t.Compute(4)
					}
				}),
				cheetah.ParallelPhase("calc_hist", bodies...),
				cheetah.SerialPhase("merge", func(t *cheetah.T) {
					for i := 0; i < p.Threads; i++ {
						for b := 0; b < 3*256; b += 8 {
							t.Load(hists[i].Add(b * 4))
						}
						t.Compute(64)
					}
				}),
			}}
		},
	}
}

// kmeans models Phoenix's kmeans: an iterative fork-join loop. Each of
// the 14 iterations spawns a fresh set of worker threads (16 x 14 = 224
// threads, the count the paper cites when explaining kmeans' profiling
// overhead) that assign points to the nearest of K centroids, followed by
// a serial recompute phase.
func kmeans() *Workload {
	const iterations = 14
	return &Workload{
		Name:  "kmeans",
		Suite: "phoenix",
		FS:    NoFS,
		TotalThreads: func(perPhase int) int {
			return perPhase * iterations
		},
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			points := p.scaled(48_000)
			const dims = 8
			const k = 16
			h := sys.Heap()
			data := h.Malloc(mem.MainThread, uint64(points*dims*4),
				heap.Stack(heap.Frame{Func: "main", File: "kmeans-pthread.c", Line: 201}))
			centroids := h.Malloc(mem.MainThread, uint64(k*dims*4),
				heap.Stack(heap.Frame{Func: "main", File: "kmeans-pthread.c", Line: 208}))
			// Per-thread partial sums, each its own allocation (no FS).
			sums := make([]mem.Addr, p.Threads)
			for i := range sums {
				sums[i] = h.Malloc(mem.ThreadID(i+1), uint64(k*dims*4),
					heap.Stack(heap.Frame{Func: "find_clusters", File: "kmeans-pthread.c", Line: 156}))
			}

			phases := []cheetah.Phase{
				cheetah.SerialPhase("init", func(t *cheetah.T) {
					for i := 0; i < points*dims; i += 8 {
						t.Store(data.Add(i * 4))
						t.Compute(2)
					}
				}),
			}
			for it := 0; it < iterations; it++ {
				bodies := make([]cheetah.Body, p.Threads)
				for i := 0; i < p.Threads; i++ {
					lo, hi := splitRange(points, p.Threads, i)
					sum := sums[i]
					bodies[i] = func(t *cheetah.T) {
						r := rng(uint64(lo))
						for j := lo; j < hi; j++ {
							// Distance to a sample of centroids.
							t.Load(data.Add(j * dims * 4))
							c := int(r() % k)
							t.Load(centroids.Add(c * dims * 4))
							t.Compute(3 * dims)
							t.Store(sum.Add(c * dims * 4))
						}
					}
				}
				phases = append(phases,
					cheetah.ParallelPhase("find_clusters", bodies...),
					cheetah.SerialPhase("recompute_centroids", func(t *cheetah.T) {
						for c := 0; c < k*dims; c++ {
							t.Store(centroids.Add(c * 4))
							t.Compute(p.Threads)
						}
					}),
				)
			}
			return cheetah.Program{Name: "kmeans", Phases: phases}
		},
	}
}

// matrixMultiply models Phoenix's matrix_multiply: threads compute
// disjoint row blocks of C = A x B; A rows and C rows are effectively
// private, B is shared read-only.
func matrixMultiply() *Workload {
	return &Workload{
		Name:  "matrix_multiply",
		Suite: "phoenix",
		FS:    NoFS,
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			n := p.scaled(192) // n x n matrices
			h := sys.Heap()
			a := h.Malloc(mem.MainThread, uint64(n*n*4),
				heap.Stack(heap.Frame{Func: "main", File: "matrix_multiply-pthread.c", Line: 133}))
			b := h.Malloc(mem.MainThread, uint64(n*n*4),
				heap.Stack(heap.Frame{Func: "main", File: "matrix_multiply-pthread.c", Line: 134}))
			c := h.Malloc(mem.MainThread, uint64(n*n*4),
				heap.Stack(heap.Frame{Func: "main", File: "matrix_multiply-pthread.c", Line: 135}))

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(n, p.Threads, i)
				bodies[i] = func(t *cheetah.T) {
					for row := lo; row < hi; row++ {
						for col := 0; col < n; col++ {
							// Strided dot product sampling every 8th term.
							for kk := 0; kk < n; kk += 8 {
								t.Load(a.Add((row*n + kk) * 4))
								t.Load(b.Add((kk*n + col) * 4))
								t.Compute(4)
							}
							t.Store(c.Add((row*n + col) * 4))
						}
					}
				}
			}
			return cheetah.Program{Name: "matrix_multiply", Phases: []cheetah.Phase{
				cheetah.SerialPhase("init", func(t *cheetah.T) {
					for i := 0; i < n*n; i += 16 {
						t.Store(a.Add(i * 4))
						t.Store(b.Add(i * 4))
					}
				}),
				cheetah.ParallelPhase("multiply", bodies...),
			}}
		},
	}
}

// pca models Phoenix's pca: two parallel phases (column means, then
// covariance) over a shared read-only matrix with thread-private
// accumulators.
func pca() *Workload {
	return &Workload{
		Name:  "pca",
		Suite: "phoenix",
		FS:    NoFS,
		TotalThreads: func(perPhase int) int {
			return perPhase * 2 // two parallel phases: mean and covariance
		},
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			rows := p.scaled(48_000)
			const cols = 32
			h := sys.Heap()
			matrix := h.Malloc(mem.MainThread, uint64(rows*cols*4),
				heap.Stack(heap.Frame{Func: "main", File: "pca-pthread.c", Line: 310}))
			acc := make([]mem.Addr, p.Threads)
			for i := range acc {
				acc[i] = h.Malloc(mem.ThreadID(i+1), cols*8,
					heap.Stack(heap.Frame{Func: "pca_mean", File: "pca-pthread.c", Line: 172}))
			}
			phase := func(name string, computePerCell int) cheetah.Phase {
				bodies := make([]cheetah.Body, p.Threads)
				for i := 0; i < p.Threads; i++ {
					lo, hi := splitRange(rows, p.Threads, i)
					mine := acc[i]
					bodies[i] = func(t *cheetah.T) {
						for r := lo; r < hi; r++ {
							for c := 0; c < cols; c += 4 {
								t.Load(matrix.Add((r*cols + c) * 4))
								t.Compute(computePerCell)
							}
							t.Store8(mine.Add((r % cols) * 8))
						}
					}
				}
				return cheetah.ParallelPhase(name, bodies...)
			}
			return cheetah.Program{Name: "pca", Phases: []cheetah.Phase{
				cheetah.SerialPhase("generate_points", func(t *cheetah.T) {
					for i := 0; i < rows*cols; i += 32 {
						t.Store(matrix.Add(i * 4))
					}
				}),
				phase("pca_mean", 3),
				phase("pca_cov", 6),
			}}
		},
	}
}

// stringMatch models Phoenix's string_match: threads scan private chunks
// of the key file and compare against a small read-only dictionary.
func stringMatch() *Workload {
	return &Workload{
		Name:  "string_match",
		Suite: "phoenix",
		FS:    NoFS,
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			keys := p.scaled(800_000)
			h := sys.Heap()
			file := h.Malloc(mem.MainThread, uint64(keys*4),
				heap.Stack(heap.Frame{Func: "main", File: "string_match-pthread.c", Line: 128}))
			dict := h.Malloc(mem.MainThread, 4096,
				heap.Stack(heap.Frame{Func: "main", File: "string_match-pthread.c", Line: 131}))

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(keys, p.Threads, i)
				bodies[i] = func(t *cheetah.T) {
					r := rng(uint64(hi))
					for j := lo; j < hi; j++ {
						t.Load(file.Add(j * 4))
						t.Load(dict.Add(int(r()%1024) * 4))
						t.Compute(5)
					}
				}
			}
			return cheetah.Program{Name: "string_match", Phases: []cheetah.Phase{
				cheetah.SerialPhase("load_keys", func(t *cheetah.T) {
					for i := 0; i < keys; i += 16 {
						t.Store(file.Add(i * 4))
					}
				}),
				cheetah.ParallelPhase("string_match_map", bodies...),
			}}
		},
	}
}

// reverseIndex models Phoenix's reverse_index: threads parse private file
// chunks and append links into shared buckets. The packed bucket-header
// array (one 16-byte header per bucket, consecutive buckets owned by
// different threads) is real but minor false sharing (Figure 7).
func reverseIndex() *Workload {
	return &Workload{
		Name:   "reverse_index",
		Suite:  "phoenix",
		FS:     MinorFS,
		FSSite: "reverse_index-pthread.c:331",
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			links := p.scaled(600_000)
			h := sys.Heap()
			files := h.Malloc(mem.MainThread, uint64(links*8),
				heap.Stack(heap.Frame{Func: "main", File: "reverse_index-pthread.c", Line: 288}))
			// Packed per-thread output cursors: each thread periodically
			// bumps its own 16-byte entry, so adjacent threads share
			// cache lines — real but minor false sharing.
			cursorStride := 16
			if p.Fixed {
				cursorStride = mem.LineSize
			}
			cursors := h.Malloc(mem.MainThread, uint64(p.Threads*cursorStride),
				heap.Stack(heap.Frame{Func: "main", File: "reverse_index-pthread.c", Line: 331}))
			// Per-thread output areas.
			outs := make([]mem.Addr, p.Threads)
			for i := range outs {
				outs[i] = h.Malloc(mem.ThreadID(i+1), uint64(links/p.Threads*8+64),
					heap.Stack(heap.Frame{Func: "insert_sorted", File: "reverse_index-pthread.c", Line: 517}))
			}

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(links, p.Threads, i)
				out := outs[i]
				cursor := cursors.Add(i * cursorStride)
				bodies[i] = func(t *cheetah.T) {
					for j := lo; j < hi; j++ {
						t.Load(files.Add(j * 8))
						t.Store(out.Add((j - lo) * 8))
						t.Compute(6)
						if j%4096 == 0 {
							// Output cursor update: minor false sharing.
							t.Store(cursor)
						}
					}
				}
			}
			return cheetah.Program{Name: "reverse_index", Phases: []cheetah.Phase{
				cheetah.SerialPhase("scan_dirs", func(t *cheetah.T) {
					for i := 0; i < links; i += 32 {
						t.Store(files.Add(i * 8))
					}
				}),
				cheetah.ParallelPhase("process_files", bodies...),
			}}
		},
	}
}

// wordCount models Phoenix's word_count: threads tokenize private chunks
// into thread-private hash tables, with a packed per-thread length array
// updated on rehash — minor false sharing (Figure 7).
func wordCount() *Workload {
	return &Workload{
		Name:   "word_count",
		Suite:  "phoenix",
		FS:     MinorFS,
		FSSite: "word_count-pthread.c:136",
		Build: func(sys *cheetah.System, p Params) cheetah.Program {
			p = p.withDefaults(16)
			words := p.scaled(800_000)
			h := sys.Heap()
			text := h.Malloc(mem.MainThread, uint64(words*4),
				heap.Stack(heap.Frame{Func: "main", File: "word_count-pthread.c", Line: 99}))
			tables := make([]mem.Addr, p.Threads)
			for i := range tables {
				tables[i] = h.Malloc(mem.ThreadID(i+1), 1<<14,
					heap.Stack(heap.Frame{Func: "wordcount_map", File: "word_count-pthread.c", Line: 181}))
			}
			lenStride := 4
			if p.Fixed {
				lenStride = mem.LineSize
			}
			lengths := h.Malloc(mem.MainThread, uint64(p.Threads*lenStride),
				heap.Stack(heap.Frame{Func: "main", File: "word_count-pthread.c", Line: 136}))

			bodies := make([]cheetah.Body, p.Threads)
			for i := 0; i < p.Threads; i++ {
				lo, hi := splitRange(words, p.Threads, i)
				table := tables[i]
				myLen := lengths.Add(i * lenStride)
				bodies[i] = func(t *cheetah.T) {
					r := rng(uint64(lo + 7))
					for j := lo; j < hi; j++ {
						t.Load(text.Add(j * 4))
						slot := int(r() % (1 << 12))
						t.Load(table.Add(slot * 4))
						t.Store(table.Add(slot * 4))
						t.Compute(4)
						if j%8192 == 0 {
							t.Store(myLen)
						}
					}
				}
			}
			return cheetah.Program{Name: "word_count", Phases: []cheetah.Phase{
				cheetah.SerialPhase("read_file", func(t *cheetah.T) {
					for i := 0; i < words; i += 16 {
						t.Store(text.Add(i * 4))
					}
				}),
				cheetah.ParallelPhase("wordcount_map", bodies...),
				cheetah.SerialPhase("merge", func(t *cheetah.T) {
					for i := 0; i < p.Threads; i++ {
						for s := 0; s < 1<<12; s += 64 {
							t.Load(tables[i].Add(s * 4))
						}
						t.Compute(128)
					}
				}),
			}}
		},
	}
}
