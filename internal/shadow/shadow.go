// Package shadow implements Cheetah's shadow-memory structures (paper
// §2.2-2.4): per-cache-line state with the two-entry invalidation table,
// and word-granularity per-thread access tracking used to distinguish
// false sharing from true sharing.
//
// The paper indexes two large mmap'd arrays by bit-shifted address; this
// reproduction keys the same per-line state by cache-line index in a hash
// map, which is equivalent for detection purposes and proportional to the
// touched working set rather than the reserved address space. Line
// geometry comes from the machine model: NewMemory assumes the canonical
// 64-byte lines, NewMemoryGeom tracks whatever line size the configured
// machine declares.
package shadow

import "repro/internal/mem"

// DetailThreshold is the write count after which a line gets detailed
// tracking: "Cheetah first tracks the number of writes on a cache line,
// and only tracks detailed information for cache lines with more than two
// writes" (§2.3). This avoids tracking write-once memory.
const DetailThreshold = 2

// WordStats aggregates one thread's sampled activity on one 4-byte word.
type WordStats struct {
	// Reads and Writes count sampled accesses attributed to the word.
	Reads, Writes uint64
	// Cycles is the summed sampled latency of those accesses.
	Cycles uint64
}

// Accesses returns reads plus writes.
func (w WordStats) Accesses() uint64 { return w.Reads + w.Writes }

// threadStats is one thread's slot in a Word's dense per-thread array.
// The present flag is the membership marker: a zero WordStats is a
// legitimate record (a zero-cost footprint touch from a wide access), so
// presence cannot be inferred from the stats themselves.
type threadStats struct {
	WordStats
	present bool
}

// Word tracks per-thread activity on one word of a susceptible line.
// Stats live in a dense slice indexed by thread id relative to the lowest
// id seen, replacing the former map[ThreadID]*WordStats: thread ids on a
// word cluster tightly (a parallel phase hands out consecutive ids), so
// the dense form turns the hot trackWords lookup from a mapaccess into an
// array index and collapses per-thread allocations into one slice.
type Word struct {
	base     mem.ThreadID
	byThread []threadStats
	n        int32
}

// Threads returns the number of distinct threads that touched the word.
func (w *Word) Threads() int {
	if w == nil {
		return 0
	}
	return int(w.n)
}

// SharedByMultipleThreads reports whether more than one thread accessed
// the word — the paper's true-sharing marker ("When more than one thread
// access a word, Cheetah marks this word to be shared by multiple
// threads", §2.4).
func (w *Word) SharedByMultipleThreads() bool { return w.Threads() > 1 }

// Writers returns the number of distinct threads that wrote the word.
func (w *Word) Writers() int {
	if w == nil {
		return 0
	}
	n := 0
	for i := range w.byThread {
		if w.byThread[i].present && w.byThread[i].Writes > 0 {
			n++
		}
	}
	return n
}

// Totals sums activity across threads.
func (w *Word) Totals() WordStats {
	var t WordStats
	if w == nil {
		return t
	}
	for i := range w.byThread {
		if !w.byThread[i].present {
			continue
		}
		t.Reads += w.byThread[i].Reads
		t.Writes += w.byThread[i].Writes
		t.Cycles += w.byThread[i].Cycles
	}
	return t
}

// Stats returns the per-thread record for tid, or nil if the thread never
// touched the word.
func (w *Word) Stats(tid mem.ThreadID) *WordStats {
	if w == nil {
		return nil
	}
	i := int(tid - w.base)
	if i < 0 || i >= len(w.byThread) || !w.byThread[i].present {
		return nil
	}
	return &w.byThread[i].WordStats
}

// ForEachThread visits every thread that touched the word in ascending
// thread-id order.
func (w *Word) ForEachThread(fn func(tid mem.ThreadID, s *WordStats)) {
	if w == nil {
		return
	}
	for i := range w.byThread {
		if w.byThread[i].present {
			fn(w.base+mem.ThreadID(i), &w.byThread[i].WordStats)
		}
	}
}

// stats returns the per-thread record, allocating on first use.
func (w *Word) stats(tid mem.ThreadID) *WordStats {
	if len(w.byThread) == 0 {
		if cap(w.byThread) == 0 {
			w.byThread = make([]threadStats, 1, 4)
		} else {
			w.byThread = w.byThread[:1]
		}
		w.base = tid
		w.byThread[0] = threadStats{present: true}
		w.n = 1
		return &w.byThread[0].WordStats
	}
	i := int(tid - w.base)
	switch {
	case i < 0:
		// New lowest id: shift existing entries up.
		grow := -i
		nw := make([]threadStats, len(w.byThread)+grow, max(cap(w.byThread), len(w.byThread)+grow))
		copy(nw[grow:], w.byThread)
		w.byThread = nw
		w.base = tid
		i = 0
	case i >= len(w.byThread):
		if i < cap(w.byThread) {
			w.byThread = w.byThread[:i+1]
		} else {
			nw := make([]threadStats, i+1, max(i+1, 2*cap(w.byThread)))
			copy(nw, w.byThread)
			w.byThread = nw
		}
	}
	ts := &w.byThread[i]
	if !ts.present {
		ts.present = true
		w.n++
	}
	return &ts.WordStats
}

// tableEntry is one slot of the per-line two-entry table (§2.3). Each
// thread occupies at most one slot.
type tableEntry struct {
	tid   mem.ThreadID
	kind  mem.AccessKind
	valid bool
}

// Line is the shadow state of one cache line.
type Line struct {
	// Index is the cache-line index (address >> line shift).
	Index uint64
	// Writes and Reads count all sampled accesses to the line, including
	// those before detailed tracking started.
	Writes, Reads uint64
	// Invalidations is the number of cache invalidations computed by the
	// two-entry-table rule.
	Invalidations uint64
	// Accesses and Cycles aggregate sampled accesses and their latency
	// during detailed tracking.
	Accesses, Cycles uint64
	// table is the two-entry invalidation table.
	table [2]tableEntry
	// words is allocated when detailed tracking starts, sized by the
	// memory's line geometry.
	words []Word
	// detailed marks lines past the write threshold.
	detailed bool
}

// Detailed reports whether the line crossed the write threshold and is
// being tracked at word granularity.
func (l *Line) Detailed() bool { return l.detailed }

// Word returns the tracked word state at index i, or nil when the line has
// no detailed tracking.
func (l *Line) Word(i int) *Word {
	if l.words == nil {
		return nil
	}
	return &l.words[i]
}

// Words returns the number of tracked words (0, or the geometry's words
// per line once tracking started).
func (l *Line) Words() int { return len(l.words) }

// record applies one sampled access to the line, implementing the §2.3
// two-entry-table rules and the §2.4 word tracking. It reports whether the
// access incurred a cache invalidation.
func (l *Line) record(a mem.Access, g mem.Geometry) bool {
	if a.Kind.IsWrite() {
		l.Writes++
	} else {
		l.Reads++
	}
	if !l.detailed {
		if l.Writes <= DetailThreshold {
			return false
		}
		l.detailed = true
		l.words = make([]Word, g.WordsPerLine())
	}

	l.Accesses++
	l.Cycles += uint64(a.Latency)
	l.trackWords(a, g)

	if !a.Kind.IsWrite() {
		l.recordRead(a.Thread)
		return false
	}
	return l.recordWrite(a.Thread)
}

// recordRead applies the read rule: record the read only when the table
// is not full and holds no entry from this thread.
func (l *Line) recordRead(tid mem.ThreadID) {
	if l.table[0].valid && l.table[0].tid == tid {
		return
	}
	if l.table[1].valid {
		return // full
	}
	if !l.table[0].valid {
		l.table[0] = tableEntry{tid: tid, kind: mem.Read, valid: true}
		return
	}
	// One entry from a different thread: occupy the second slot.
	l.table[1] = tableEntry{tid: tid, kind: mem.Read, valid: true}
}

// recordWrite applies the write rule and reports whether the write incurs
// an invalidation: it does whenever the table holds an entry from another
// thread (a full table always does, since the two entries belong to
// different threads by construction).
func (l *Line) recordWrite(tid mem.ThreadID) bool {
	full := l.table[0].valid && l.table[1].valid
	empty := !l.table[0].valid
	switch {
	case full:
		// At least one entry is another thread's (Assumption 1).
	case empty:
		// First recorded access: no one to invalidate.
		l.table[0] = tableEntry{tid: tid, kind: mem.Write, valid: true}
		return false
	default: // exactly one entry
		if l.table[0].tid == tid {
			// Same thread: nothing to update, no invalidation.
			return false
		}
	}
	// Invalidation: flush the table and record this write so the table
	// stays non-empty.
	l.Invalidations++
	l.table[0] = tableEntry{tid: tid, kind: mem.Write, valid: true}
	l.table[1] = tableEntry{}
	return true
}

// trackWords attributes the access to its words: the full access count and
// latency go to the first word; any additional word covered by the access
// width is marked as touched by the thread (zero-cost touch), so sharing
// classification sees the true footprint without double-counting.
func (l *Line) trackWords(a mem.Access, g mem.Geometry) {
	first := g.WordInLine(a.Addr)
	s := l.words[first].stats(a.Thread)
	if a.Kind.IsWrite() {
		s.Writes++
	} else {
		s.Reads++
	}
	s.Cycles += uint64(a.Latency)

	size := int(a.Size)
	if size == 0 {
		size = mem.WordSize
	}
	for off := mem.WordSize; off < size; off += mem.WordSize {
		w := a.Addr.Add(off)
		if g.Line(w) != g.Line(a.Addr) {
			break // access spills into the next line; out of scope here
		}
		l.words[g.WordInLine(w)].stats(a.Thread)
	}
}

// Memory is the shadow map over all tracked cache lines.
type Memory struct {
	geom  mem.Geometry
	lines map[uint64]*Line
	// last caches the most recently recorded line: sampled accesses are
	// bursty per line (sixteen words per line), so most Records repeat
	// the previous lookup. Lines are heap-allocated, so the pointer
	// stays valid across map growth.
	last *Line
}

// NewMemory creates an empty shadow memory over canonical 64-byte lines.
func NewMemory() *Memory {
	return NewMemoryGeom(mem.DefaultGeometry())
}

// NewMemoryGeom creates an empty shadow memory over the given line
// geometry (the zero Geometry means the canonical default).
func NewMemoryGeom(g mem.Geometry) *Memory {
	return &Memory{geom: g.OrDefault(), lines: make(map[uint64]*Line)}
}

// Geometry returns the line geometry the memory tracks under.
func (m *Memory) Geometry() mem.Geometry { return m.geom }

// Record applies one sampled access and reports whether it incurred a
// cache invalidation under the detection rules.
func (m *Memory) Record(a mem.Access) bool {
	line := m.geom.Line(a.Addr)
	if l := m.last; l != nil && l.Index == line {
		return l.record(a, m.geom)
	}
	l := m.lines[line]
	if l == nil {
		l = &Line{Index: line}
		m.lines[line] = l
	}
	m.last = l
	return l.record(a, m.geom)
}

// Line returns the shadow state for the cache line containing addr, or nil
// if the line was never sampled.
func (m *Memory) Line(addr mem.Addr) *Line { return m.lines[m.geom.Line(addr)] }

// LineByIndex returns the shadow state for a cache-line index.
func (m *Memory) LineByIndex(idx uint64) *Line { return m.lines[idx] }

// Len returns the number of tracked lines.
func (m *Memory) Len() int { return len(m.lines) }

// ForEach visits every tracked line. Iteration order is unspecified.
func (m *Memory) ForEach(fn func(*Line)) {
	for _, l := range m.lines {
		fn(l)
	}
}

// Reset drops all state.
func (m *Memory) Reset() {
	m.lines = make(map[uint64]*Line)
	m.last = nil
}
