package shadow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func acc(addr mem.Addr, tid mem.ThreadID, kind mem.AccessKind) mem.Access {
	return mem.Access{Addr: addr, Thread: tid, Kind: kind, Size: 4, Latency: 10}
}

func TestDetailThresholdGatesTracking(t *testing.T) {
	m := NewMemory()
	a := mem.Addr(0x1000)
	m.Record(acc(a, 1, mem.Write))
	m.Record(acc(a, 2, mem.Write))
	l := m.Line(a)
	if l.Detailed() {
		t.Fatal("line detailed after only 2 writes")
	}
	if l.Writes != 2 {
		t.Errorf("Writes = %d, want 2", l.Writes)
	}
	m.Record(acc(a, 1, mem.Write))
	if !l.Detailed() {
		t.Fatal("line not detailed after 3rd write")
	}
	// The first two writes contributed only to the coarse counter.
	if l.Accesses != 1 {
		t.Errorf("detailed Accesses = %d, want 1", l.Accesses)
	}
}

func TestReadsAloneNeverStartDetailTracking(t *testing.T) {
	m := NewMemory()
	a := mem.Addr(0x2000)
	for i := 0; i < 100; i++ {
		m.Record(acc(a, mem.ThreadID(i%4), mem.Read))
	}
	l := m.Line(a)
	if l.Detailed() {
		t.Error("read-only line became detailed")
	}
	if l.Reads != 100 {
		t.Errorf("Reads = %d, want 100", l.Reads)
	}
}

// detailedLine returns a line already past the threshold via writes from
// thread 99 to word 15, which the tests below ignore.
func detailedLine(m *Memory, base mem.Addr) *Line {
	warm := base.Add(60)
	for i := 0; i < 3; i++ {
		m.Record(acc(warm, 99, mem.Write))
	}
	return m.Line(base)
}

func TestWriteWriteInvalidation(t *testing.T) {
	m := NewMemory()
	base := mem.Addr(0x3000)
	l := detailedLine(m, base)
	inv0 := l.Invalidations

	// The warm-up left {99, W} in the table, so thread 1's write
	// invalidates; thread 2's subsequent write invalidates again.
	if !m.Record(acc(base, 1, mem.Write)) {
		t.Error("write over remote-thread entry not flagged as invalidation")
	}
	if !m.Record(acc(base.Add(4), 2, mem.Write)) {
		t.Error("write-after-remote-write not flagged as invalidation")
	}
	if l.Invalidations != inv0+2 {
		// First write hits the table entry left by the warm-up thread 99 —
		// that is also an invalidation.
		t.Errorf("Invalidations = %d, want %d", l.Invalidations, inv0+2)
	}
}

func TestSameThreadWritesNoInvalidation(t *testing.T) {
	m := NewMemory()
	base := mem.Addr(0x4000)
	// All writes from one thread: threshold crossing but no invalidations.
	for i := 0; i < 50; i++ {
		if m.Record(acc(base, 7, mem.Write)) {
			t.Fatal("single-thread write stream produced invalidation")
		}
	}
	if l := m.Line(base); l.Invalidations != 0 {
		t.Errorf("Invalidations = %d, want 0", l.Invalidations)
	}
}

func TestReadThenRemoteWriteInvalidates(t *testing.T) {
	m := NewMemory()
	base := mem.Addr(0x5000)
	detailedLine(m, base)
	m.Record(acc(base, 1, mem.Write))       // table: {1,W} after flush
	m.Record(acc(base.Add(8), 2, mem.Read)) // table: {1,W},{2,R}
	// A write from thread 1 now sees a full table: invalidation.
	if !m.Record(acc(base, 1, mem.Write)) {
		t.Error("write to full table not flagged as invalidation")
	}
}

func TestReadRecordingRules(t *testing.T) {
	m := NewMemory()
	base := mem.Addr(0x6000)
	l := detailedLine(m, base)
	// Table currently holds {99, W}. A read from 99 is skipped; a read
	// from 1 occupies slot 2; a read from 2 is dropped (full).
	m.Record(acc(base, 99, mem.Read))
	m.Record(acc(base, 1, mem.Read))
	m.Record(acc(base, 2, mem.Read))
	// A write from thread 1 hits a full table -> invalidation even though
	// thread 1 itself is in the table ("at least one of the existing
	// entries in this table is from a different thread").
	if !m.Record(acc(base, 1, mem.Write)) {
		t.Error("write with full table not flagged")
	}
	_ = l
}

func TestPingPongInvalidationCount(t *testing.T) {
	m := NewMemory()
	base := mem.Addr(0x7000)
	const rounds = 100
	for i := 0; i < rounds; i++ {
		m.Record(acc(base, mem.ThreadID(i%2+1), mem.Write))
	}
	l := m.Line(base)
	// Tracking starts at the 3rd write; every tracked write alternates
	// threads, so every tracked write except the first invalidates.
	want := uint64(rounds - DetailThreshold - 1)
	if l.Invalidations != want {
		t.Errorf("Invalidations = %d, want %d", l.Invalidations, want)
	}
}

func TestWordTrackingDistinguishesSharing(t *testing.T) {
	m := NewMemory()
	base := mem.Addr(0x8000)
	// False sharing: threads 1 and 2 write disjoint words.
	for i := 0; i < 20; i++ {
		m.Record(acc(base, 1, mem.Write))
		m.Record(acc(base.Add(4), 2, mem.Write))
	}
	l := m.Line(base)
	if w := l.Word(0); w.SharedByMultipleThreads() {
		t.Error("word 0 written only by thread 1 marked shared")
	}
	if w := l.Word(1); w.SharedByMultipleThreads() {
		t.Error("word 1 written only by thread 2 marked shared")
	}
	// True sharing: both threads hit word 8.
	for i := 0; i < 10; i++ {
		m.Record(acc(base.Add(32), 1, mem.Write))
		m.Record(acc(base.Add(32), 2, mem.Write))
	}
	if w := l.Word(8); !w.SharedByMultipleThreads() {
		t.Error("word 8 written by two threads not marked shared")
	}
}

func TestWordStatsAccumulate(t *testing.T) {
	m := NewMemory()
	base := mem.Addr(0x9000)
	detailedLine(m, base)
	for i := 0; i < 5; i++ {
		m.Record(mem.Access{Addr: base, Thread: 1, Kind: mem.Write, Size: 4, Latency: 100})
		m.Record(mem.Access{Addr: base, Thread: 1, Kind: mem.Read, Size: 4, Latency: 20})
	}
	w := l0word(m, base, 0)
	s := w.Stats(1)
	if s == nil {
		t.Fatal("no stats for thread 1")
	}
	if s.Writes != 5 || s.Reads != 5 {
		t.Errorf("stats = %+v", *s)
	}
	if s.Cycles != 5*100+5*20 {
		t.Errorf("Cycles = %d, want 600", s.Cycles)
	}
	tot := w.Totals()
	if tot.Accesses() != 10 {
		t.Errorf("Totals().Accesses() = %d, want 10", tot.Accesses())
	}
}

func l0word(m *Memory, base mem.Addr, i int) *Word {
	return m.Line(base).Word(i)
}

func TestWideAccessTouchesBothWords(t *testing.T) {
	m := NewMemory()
	base := mem.Addr(0xA000)
	detailedLine(m, base)
	// An 8-byte store at word 2 covers words 2 and 3.
	m.Record(mem.Access{Addr: base.Add(8), Thread: 1, Kind: mem.Write, Size: 8, Latency: 50})
	m.Record(mem.Access{Addr: base.Add(12), Thread: 2, Kind: mem.Write, Size: 4, Latency: 50})
	l := m.Line(base)
	if l.Word(3).Threads() != 2 {
		t.Errorf("word 3 threads = %d, want 2 (8-byte footprint)", l.Word(3).Threads())
	}
	// But the access count lands on the first word only.
	if got := l.Word(2).Totals().Writes; got != 1 {
		t.Errorf("word 2 writes = %d, want 1", got)
	}
	if got := l.Word(3).Totals().Writes; got != 1 {
		t.Errorf("word 3 writes = %d (footprint touch must not count)", got)
	}
}

func TestAccessSpillingPastLineIsClipped(t *testing.T) {
	m := NewMemory()
	base := mem.Addr(0xB000)
	detailedLine(m, base)
	// 8-byte access at the last word of the line: the spill into the next
	// line is ignored by this line's tracker.
	m.Record(mem.Access{Addr: base.Add(60), Thread: 1, Kind: mem.Write, Size: 8, Latency: 10})
	if next := m.Line(base.Add(64)); next != nil {
		t.Error("spill created state on the next line")
	}
}

func TestTableInvariantTwoDistinctThreads(t *testing.T) {
	// Property: the two-entry table never holds two entries of the same
	// thread, and a full table always triggers invalidation on any write.
	f := func(ops []uint16) bool {
		m := NewMemory()
		base := mem.Addr(0xC000)
		for _, o := range ops {
			tid := mem.ThreadID(o%5) + 1
			kind := mem.Read
			if o%2 == 0 {
				kind = mem.Write
			}
			m.Record(acc(base.Add(int(o%16)*4), tid, kind))
			l := m.Line(base)
			if l.table[0].valid && l.table[1].valid &&
				l.table[0].tid == l.table[1].tid {
				return false
			}
			if l.table[1].valid && !l.table[0].valid {
				return false // slot 2 filled while slot 1 empty
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidationsNeverExceedTrackedWrites(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemory()
		base := mem.Addr(0xD000)
		steps := int(n%500) + 10
		var trackedWrites uint64
		l := (*Line)(nil)
		for i := 0; i < steps; i++ {
			a := acc(base.Add(rng.Intn(16)*4), mem.ThreadID(rng.Intn(6)), mem.AccessKind(rng.Intn(2)))
			m.Record(a)
			l = m.Line(base)
			if l.Detailed() && a.Kind.IsWrite() {
				trackedWrites++
			}
		}
		return l == nil || l.Invalidations <= trackedWrites
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryResetAndLen(t *testing.T) {
	m := NewMemory()
	for i := 0; i < 10; i++ {
		m.Record(acc(mem.Addr(i*64), 1, mem.Write))
	}
	if m.Len() != 10 {
		t.Errorf("Len = %d, want 10", m.Len())
	}
	n := 0
	m.ForEach(func(*Line) { n++ })
	if n != 10 {
		t.Errorf("ForEach visited %d, want 10", n)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Error("Reset left lines behind")
	}
}

func TestZeroSizeAccessDefaultsToWord(t *testing.T) {
	m := NewMemory()
	base := mem.Addr(0xE000)
	detailedLine(m, base)
	m.Record(mem.Access{Addr: base, Thread: 1, Kind: mem.Write, Latency: 5})
	if m.Line(base).Word(0).Totals().Writes != 1 {
		t.Error("zero-size access not tracked")
	}
}
