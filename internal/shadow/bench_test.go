package shadow

import (
	"testing"

	"repro/internal/mem"
)

// BenchmarkRecordDetailedFalseSharing drives the word tracker the way a
// false-sharing workload does: many threads hammer disjoint words of a
// fresh set of lines, all of which go detailed. This is the path where
// per-word per-thread stats storage allocates (the ROADMAP's "mapaccess
// remnants in Word.ByThread"), so the benchmark reports allocations; one
// op is a full populate of 64 lines x 16 threads x 4 rounds.
func BenchmarkRecordDetailedFalseSharing(b *testing.B) {
	const (
		lines   = 64
		threads = 16
		rounds  = 4
	)
	b.ReportAllocs()
	for b.Loop() {
		m := NewMemory()
		for r := 0; r < rounds; r++ {
			for line := 0; line < lines; line++ {
				for t := 0; t < threads; t++ {
					addr := mem.Addr(line*64 + (t%16)*4)
					m.Record(mem.Access{Addr: addr, Thread: mem.ThreadID(t), Kind: mem.Write, Size: 4, Latency: 10})
				}
			}
		}
	}
}

// BenchmarkWordStatsLookup isolates the per-thread stats lookup on an
// already-detailed line, the inner loop of Line.trackWords.
func BenchmarkWordStatsLookup(b *testing.B) {
	m := NewMemory()
	base := mem.Addr(0x1000)
	for i := 0; i < 3; i++ {
		m.Record(mem.Access{Addr: base, Thread: 1, Kind: mem.Write, Size: 4, Latency: 10})
	}
	b.ReportAllocs()
	i := 0
	for b.Loop() {
		tid := mem.ThreadID(i % 8)
		m.Record(mem.Access{Addr: base.Add((i % 16) * 4), Thread: tid, Kind: mem.Write, Size: 4, Latency: 10})
		i++
	}
}
