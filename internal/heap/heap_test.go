package heap

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newTestHeap() *Heap { return New(DefaultConfig()) }

func site(line int) CallStack {
	return Stack(Frame{File: "test.c", Line: line})
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		size uint64
		unit uint64
	}{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {32, 32}, {33, 64},
		{64, 64}, {100, 128}, {4000, 4096}, {4096, 4096}, {4097, 8192},
	}
	for _, c := range cases {
		_, unit := classFor(c.size)
		if unit != c.unit {
			t.Errorf("classFor(%d) unit = %d, want %d", c.size, unit, c.unit)
		}
	}
}

func TestMallocReturnsDistinctAlignedAddresses(t *testing.T) {
	h := newTestHeap()
	seen := map[mem.Addr]bool{}
	for i := 0; i < 1000; i++ {
		a := h.Malloc(1, 48, site(i))
		if seen[a] {
			t.Fatalf("address %v returned twice", a)
		}
		seen[a] = true
		if uint64(a)%64 != 0 {
			t.Errorf("48-byte object at %v not aligned to its 64-byte class", a)
		}
	}
}

func TestLookupResolvesInteriorPointers(t *testing.T) {
	h := newTestHeap()
	a := h.Malloc(2, 4000, site(139))
	obj, ok := h.Lookup(a.Add(1234))
	if !ok {
		t.Fatal("interior pointer not resolved")
	}
	if obj.Addr != a || obj.Size != 4000 || obj.ClassSize != 4096 {
		t.Errorf("object = %+v", obj)
	}
	if obj.Stack.Site().Line != 139 {
		t.Errorf("callsite line = %d, want 139", obj.Stack.Site().Line)
	}
	if obj.Thread != 2 {
		t.Errorf("thread = %d, want 2", obj.Thread)
	}
}

func TestLookupOutsideHeap(t *testing.T) {
	h := newTestHeap()
	if _, ok := h.Lookup(h.Base() - 1); ok {
		t.Error("resolved address below heap")
	}
	if _, ok := h.Lookup(h.Base()); ok {
		t.Error("resolved never-allocated heap address")
	}
}

func TestHoardPropertyNoCrossThreadLineSharing(t *testing.T) {
	// The defining Hoard property the paper relies on: "two objects in the
	// same cache line will never be allocated to two different threads".
	h := newTestHeap()
	lineOwner := map[uint64]mem.ThreadID{}
	for round := 0; round < 2000; round++ {
		thread := mem.ThreadID(round % 7)
		size := uint64(8 + (round*13)%120)
		a := h.Malloc(thread, size, site(round))
		_, unit := classFor(size)
		for off := uint64(0); off < unit; off += mem.LineSize {
			line := a.Add(int(off)).Line()
			if owner, ok := lineOwner[line]; ok && owner != thread {
				if unit >= mem.LineSize {
					continue // whole lines owned exclusively; cannot collide
				}
				t.Fatalf("line %d shared by threads %d and %d", line, owner, thread)
			}
			if unit < mem.LineSize {
				lineOwner[line] = thread
			}
		}
	}
}

func TestFreeAndReuseSameThread(t *testing.T) {
	h := newTestHeap()
	a := h.Malloc(3, 64, site(1))
	h.Free(a)
	b := h.Malloc(3, 64, site(2))
	if a != b {
		t.Errorf("freed slot not reused: %v then %v", a, b)
	}
	obj, ok := h.Lookup(b)
	if !ok || obj.Stack.Site().Line != 2 {
		t.Errorf("reused slot metadata stale: %+v", obj)
	}
}

func TestFreedObjectStillResolvable(t *testing.T) {
	h := newTestHeap()
	a := h.Malloc(1, 256, site(7))
	h.Free(a)
	obj, ok := h.Lookup(a)
	if !ok {
		t.Fatal("freed object not resolvable")
	}
	if obj.Live {
		t.Error("freed object reported live")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	h := newTestHeap()
	a := h.Malloc(1, 32, site(1))
	h.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	h.Free(a)
}

func TestInteriorFreePanics(t *testing.T) {
	h := newTestHeap()
	a := h.Malloc(1, 128, site(1))
	defer func() {
		if recover() == nil {
			t.Error("interior free did not panic")
		}
	}()
	h.Free(a.Add(8))
}

func TestLargeObjects(t *testing.T) {
	h := newTestHeap()
	a := h.Malloc(1, 300_000, site(1))
	obj, ok := h.Lookup(a.Add(299_999))
	if !ok {
		t.Fatal("large object tail not resolvable")
	}
	if obj.Addr != a || obj.Size != 300_000 {
		t.Errorf("object = %+v", obj)
	}
	b := h.Malloc(2, 100, site(2))
	if b < obj.End() {
		t.Errorf("next allocation %v overlaps large object ending %v", b, obj.End())
	}
}

func TestStackTruncatedToFiveFrames(t *testing.T) {
	frames := make([]Frame, 9)
	for i := range frames {
		frames[i] = Frame{File: "deep.c", Line: i}
	}
	s := Stack(frames...)
	if len(s) != MaxStackDepth {
		t.Errorf("stack depth = %d, want %d", len(s), MaxStackDepth)
	}
	h := newTestHeap()
	a := h.Malloc(1, 8, CallStack(frames))
	obj, _ := h.Lookup(a)
	if len(obj.Stack) != MaxStackDepth {
		t.Errorf("recorded stack depth = %d, want %d", len(obj.Stack), MaxStackDepth)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := newTestHeap()
	a := h.Malloc(1, 100, site(1)) // unit 128
	h.Malloc(1, 16, site(2))
	st := h.Stats()
	if st.Allocs != 2 || st.Frees != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.LiveBytes != 128+16 {
		t.Errorf("LiveBytes = %d, want %d", st.LiveBytes, 128+16)
	}
	h.Free(a)
	st = h.Stats()
	if st.Frees != 1 || st.LiveBytes != 16 {
		t.Errorf("after free stats = %+v", st)
	}
}

func TestExhaustionPanics(t *testing.T) {
	h := New(Config{Base: 0x40000000, Size: 2 * superblockSize})
	defer func() {
		if recover() == nil {
			t.Error("exhausted heap did not panic")
		}
	}()
	for i := 0; i < 10; i++ {
		h.Malloc(mem.ThreadID(i), superblockSize, site(i))
	}
}

func TestUnalignedBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unaligned base did not panic")
		}
	}()
	New(Config{Base: 0x40000100, Size: 1 << 20})
}

func TestFrameString(t *testing.T) {
	f := Frame{File: "linear_regression-pthread.c", Line: 139}
	if got := f.String(); got != "linear_regression-pthread.c:139" {
		t.Errorf("Frame.String() = %q", got)
	}
	f.Func = "main"
	if got := f.String(); got != "linear_regression-pthread.c:139 (main)" {
		t.Errorf("Frame.String() = %q", got)
	}
}

// TestAllocatorProperty drives random alloc/free sequences and checks the
// core invariants: returned units never overlap live objects, lookups
// resolve every interior address to the right object, and cross-thread
// cache-line sharing never occurs for sub-line classes.
func TestAllocatorProperty(t *testing.T) {
	type step struct {
		Thread  uint8
		Size    uint16
		DoAlloc bool
	}
	f := func(steps []step) bool {
		h := newTestHeap()
		type live struct {
			addr mem.Addr
			end  mem.Addr
			th   mem.ThreadID
		}
		var lives []live
		for i, s := range steps {
			if s.DoAlloc || len(lives) == 0 {
				th := mem.ThreadID(s.Thread % 5)
				size := uint64(s.Size%2048) + 1
				a := h.Malloc(th, size, site(i))
				o, ok := h.Lookup(a)
				if !ok || o.Addr != a || !o.Live {
					return false
				}
				// No overlap with any live object.
				for _, l := range lives {
					if a < l.end && o.End() > l.addr {
						return false
					}
				}
				lives = append(lives, live{addr: a, end: o.End(), th: th})
			} else {
				idx := int(s.Size) % len(lives)
				h.Free(lives[idx].addr)
				lives = append(lives[:idx], lives[idx+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
