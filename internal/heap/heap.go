// Package heap implements the custom memory allocator Cheetah interposes
// on application allocations (paper §2.2).
//
// Like the paper's allocator — built on Heap Layers and adapting Hoard's
// per-thread heap organization — this allocator:
//
//   - pre-allocates one fixed-size region and satisfies every request from
//     it (the paper uses mmap), so the heap range is known and shadow
//     memory can be indexed by simple arithmetic;
//   - manages objects in power-of-two size classes;
//   - gives each thread its own superblocks, so objects allocated by two
//     different threads never share a cache line and the allocator cannot
//     itself introduce inter-object false sharing;
//   - records the call site (up to five frames, §2.4) and requested size of
//     every allocation, so the reporter can name the file and line of a
//     falsely-shared heap object.
//
// Addresses are simulated (package mem); no real memory is addressed.
package heap

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Frame is one call-stack entry of an allocation site.
type Frame struct {
	// Func is the function name (may be empty).
	Func string
	// File and Line locate the call, e.g. "linear_regression-pthread.c:139".
	File string
	Line int
}

// String formats the frame as file:line, the form used in paper Figure 5.
func (f Frame) String() string {
	if f.Func != "" {
		return fmt.Sprintf("%s:%d (%s)", f.File, f.Line, f.Func)
	}
	return fmt.Sprintf("%s:%d", f.File, f.Line)
}

// MaxStackDepth is the paper's call-stack collection limit: "we only
// collect five function entries on the call stack for performance
// reasons" (§2.4).
const MaxStackDepth = 5

// CallStack is an allocation call stack, innermost frame first, truncated
// to MaxStackDepth entries.
type CallStack []Frame

// Stack builds a CallStack, truncating to MaxStackDepth.
func Stack(frames ...Frame) CallStack {
	if len(frames) > MaxStackDepth {
		frames = frames[:MaxStackDepth]
	}
	return CallStack(frames)
}

// Site returns the innermost frame, or a zero Frame for an empty stack.
func (s CallStack) Site() Frame {
	if len(s) == 0 {
		return Frame{}
	}
	return s[0]
}

// Object describes one live or freed heap allocation.
type Object struct {
	// Addr is the object's base address.
	Addr mem.Addr
	// Size is the requested size in bytes.
	Size uint64
	// ClassSize is the power-of-two allocation unit actually reserved.
	ClassSize uint64
	// Thread is the allocating thread.
	Thread mem.ThreadID
	// Stack is the allocation call stack.
	Stack CallStack
	// Seq is a monotonically increasing allocation sequence number.
	Seq uint64
	// Live reports whether the object is currently allocated.
	Live bool
}

// End returns the first address past the object's reserved unit.
func (o Object) End() mem.Addr { return o.Addr.Add(int(o.ClassSize)) }

// Contains reports whether addr falls inside the object's reserved unit.
func (o Object) Contains(addr mem.Addr) bool { return addr >= o.Addr && addr < o.End() }

const (
	// MinClass is the smallest allocation unit.
	MinClass = 16
	// superblockSize is the size of each per-thread, per-class superblock.
	superblockSize = 64 * 1024
)

// Config sizes the heap.
type Config struct {
	// Base is the first address of the pre-allocated region. The paper's
	// report shows heap objects around 0x40000000 (Figure 5).
	Base mem.Addr
	// Size is the region size in bytes; allocation beyond it panics, as
	// exhausting the paper's pre-allocated mmap block would.
	Size uint64
}

// DefaultConfig returns a 1 GB simulated heap at the address range seen in
// the paper's sample report.
func DefaultConfig() Config {
	return Config{Base: 0x40000000, Size: 1 << 30}
}

// Heap is the allocator. It is not safe for concurrent use; the
// deterministic engine serializes workload setup, and Malloc during
// execution happens from engine callbacks which are single-threaded.
type Heap struct {
	cfg       Config
	nextSuper mem.Addr
	// subheaps maps (thread, class index) to the superblock currently
	// being carved for that pair.
	subheaps map[subheapKey]*superblock
	// supers maps superblock index (from Base) to its state, for lookup.
	supers map[uint64]*superblock
	// seq counts allocations.
	seq uint64
	// liveBytes and allocs track usage.
	liveBytes uint64
	allocs    uint64
	frees     uint64
}

type subheapKey struct {
	thread mem.ThreadID
	class  uint8
}

// superblock is a contiguous chunk dedicated to one thread and one size
// class.
type superblock struct {
	base      mem.Addr
	class     uint8
	classSize uint64
	thread    mem.ThreadID
	// next is the bump pointer for never-allocated slots.
	next mem.Addr
	// free holds freed slot addresses for reuse.
	free []mem.Addr
	// objects maps slot index to its metadata (nil when never allocated).
	objects []*Object
}

// New creates a heap over the configured region.
func New(cfg Config) *Heap {
	if cfg.Size == 0 {
		cfg = DefaultConfig()
	}
	if uint64(cfg.Base)%superblockSize != 0 {
		panic(fmt.Sprintf("heap: base %v not aligned to superblock size", cfg.Base))
	}
	return &Heap{
		cfg:       cfg,
		nextSuper: cfg.Base,
		subheaps:  make(map[subheapKey]*superblock),
		supers:    make(map[uint64]*superblock),
	}
}

// Base returns the first heap address.
func (h *Heap) Base() mem.Addr { return h.cfg.Base }

// Limit returns the first address past the heap region.
func (h *Heap) Limit() mem.Addr { return h.cfg.Base.Add(int(h.cfg.Size)) }

// Contains reports whether addr lies in the heap region.
func (h *Heap) Contains(addr mem.Addr) bool {
	return addr >= h.cfg.Base && addr < h.Limit()
}

// classFor returns the size-class index and unit for a request: the
// smallest power of two >= size, at least MinClass.
func classFor(size uint64) (uint8, uint64) {
	if size == 0 {
		size = 1
	}
	class := uint8(0)
	unit := uint64(MinClass)
	for unit < size {
		unit <<= 1
		class++
	}
	return class, unit
}

// Malloc allocates size bytes on behalf of thread, recording the call
// stack. It returns the object's base address.
func (h *Heap) Malloc(thread mem.ThreadID, size uint64, stack CallStack) mem.Addr {
	class, unit := classFor(size)
	if unit > superblockSize {
		// Large objects get dedicated superblock runs.
		return h.mallocLarge(thread, size, unit, stack)
	}
	key := subheapKey{thread: thread, class: class}
	sb := h.subheaps[key]
	if sb == nil || (len(sb.free) == 0 && sb.next >= sb.base.Add(superblockSize)) {
		sb = h.newSuperblock(thread, class, unit, superblockSize)
		h.subheaps[key] = sb
	}
	var addr mem.Addr
	if n := len(sb.free); n > 0 {
		addr = sb.free[n-1]
		sb.free = sb.free[:n-1]
	} else {
		addr = sb.next
		sb.next = sb.next.Add(int(unit))
	}
	return h.record(sb, addr, thread, size, unit, stack)
}

// mallocLarge serves requests bigger than a superblock with a dedicated
// run of superblocks.
func (h *Heap) mallocLarge(thread mem.ThreadID, size, unit uint64, stack CallStack) mem.Addr {
	span := (unit + superblockSize - 1) / superblockSize * superblockSize
	sb := h.newSuperblock(thread, 0xFF, unit, span)
	addr := sb.base
	sb.next = sb.base.Add(int(unit))
	return h.record(sb, addr, thread, size, unit, stack)
}

// newSuperblock carves a fresh superblock (or large-object span) from the
// region.
func (h *Heap) newSuperblock(thread mem.ThreadID, class uint8, classSize, span uint64) *superblock {
	if h.nextSuper.Add(int(span)) > h.Limit() {
		panic(fmt.Sprintf("heap: out of memory (region %d bytes exhausted)", h.cfg.Size))
	}
	sb := &superblock{
		base:      h.nextSuper,
		class:     class,
		classSize: classSize,
		thread:    thread,
		next:      h.nextSuper,
	}
	slots := span / classSize
	if slots == 0 {
		slots = 1
	}
	sb.objects = make([]*Object, slots)
	for i := uint64(0); i < span/superblockSize; i++ {
		h.supers[h.superIndex(h.nextSuper.Add(int(i*superblockSize)))] = sb
	}
	h.nextSuper = h.nextSuper.Add(int(span))
	return sb
}

func (h *Heap) superIndex(addr mem.Addr) uint64 {
	return uint64(addr-h.cfg.Base) / superblockSize
}

// record stores allocation metadata and returns the address.
func (h *Heap) record(sb *superblock, addr mem.Addr, thread mem.ThreadID, size, unit uint64, stack CallStack) mem.Addr {
	if len(stack) > MaxStackDepth {
		stack = stack[:MaxStackDepth]
	}
	h.seq++
	obj := &Object{
		Addr: addr, Size: size, ClassSize: unit,
		Thread: thread, Stack: stack, Seq: h.seq, Live: true,
	}
	slot := uint64(addr-sb.base) / sb.classSize
	sb.objects[slot] = obj
	h.allocs++
	h.liveBytes += unit
	return addr
}

// Free releases the object at addr. Freeing an unknown or already-freed
// address panics, surfacing workload bugs immediately.
func (h *Heap) Free(addr mem.Addr) {
	obj, sb := h.lookup(addr)
	if obj == nil || !obj.Live {
		panic(fmt.Sprintf("heap: invalid free of %v", addr))
	}
	if obj.Addr != addr {
		panic(fmt.Sprintf("heap: free of interior pointer %v (object at %v)", addr, obj.Addr))
	}
	obj.Live = false
	h.frees++
	h.liveBytes -= obj.ClassSize
	sb.free = append(sb.free, addr)
}

// Lookup resolves an address to the object whose reserved unit contains
// it. Freed objects remain resolvable (their metadata is retained until
// the slot is reused), matching the paper's report of allocation sites at
// the end of an execution.
func (h *Heap) Lookup(addr mem.Addr) (Object, bool) {
	obj, _ := h.lookup(addr)
	if obj == nil {
		return Object{}, false
	}
	return *obj, true
}

func (h *Heap) lookup(addr mem.Addr) (*Object, *superblock) {
	if !h.Contains(addr) {
		return nil, nil
	}
	sb := h.supers[h.superIndex(addr)]
	if sb == nil {
		return nil, nil
	}
	slot := uint64(addr-sb.base) / sb.classSize
	if slot >= uint64(len(sb.objects)) {
		return nil, nil
	}
	obj := sb.objects[slot]
	if obj == nil || !obj.Contains(addr) {
		return nil, nil
	}
	return obj, sb
}

// Objects returns a copy of every allocation the heap knows about — live
// and freed-but-still-resolvable — in ascending address order. Trace
// recording snapshots this at program start so a replayed trace can
// resolve the same addresses to the same allocation sites.
func (h *Heap) Objects() []Object {
	seen := make(map[*superblock]bool, len(h.supers))
	var out []Object
	for _, sb := range h.supers {
		if seen[sb] {
			continue
		}
		seen[sb] = true
		for _, obj := range sb.objects {
			if obj != nil {
				out = append(out, *obj)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Restore installs a previously recorded object at its original address,
// rebuilding the superblock bookkeeping around it, so that Lookup resolves
// exactly as it did in the recorded run. Objects must not collide with
// existing allocations; later Mallocs carve fresh superblocks past every
// restored span. Unlike Malloc, Restore validates its input and returns an
// error instead of panicking: trace files are external input.
func (h *Heap) Restore(o Object) error {
	if o.ClassSize < MinClass || o.ClassSize&(o.ClassSize-1) != 0 {
		return fmt.Errorf("heap: restore %v: class size %d is not a power of two >= %d", o.Addr, o.ClassSize, MinClass)
	}
	if o.Size > o.ClassSize {
		return fmt.Errorf("heap: restore %v: size %d exceeds class size %d", o.Addr, o.Size, o.ClassSize)
	}
	if !h.Contains(o.Addr) || o.End() > h.Limit() {
		return fmt.Errorf("heap: restore %v..%v: outside heap region %v..%v", o.Addr, o.End(), h.Base(), h.Limit())
	}
	span := uint64(superblockSize)
	if o.ClassSize > superblockSize {
		if uint64(o.Addr)%superblockSize != 0 {
			return fmt.Errorf("heap: restore %v: large object not superblock-aligned", o.Addr)
		}
		span = (o.ClassSize + superblockSize - 1) / superblockSize * superblockSize
	}
	idx := h.superIndex(o.Addr)
	base := h.cfg.Base.Add(int(idx * superblockSize))
	sb := h.supers[idx]
	switch {
	case sb == nil:
		class, unit := classFor(o.ClassSize)
		if unit != o.ClassSize {
			class = 0xFF
		}
		if o.ClassSize > superblockSize {
			class = 0xFF
			base = o.Addr
		}
		sb = &superblock{
			base:      base,
			class:     class,
			classSize: o.ClassSize,
			thread:    o.Thread,
			next:      base,
			objects:   make([]*Object, span/o.ClassSize),
		}
		for i := uint64(0); i < span/superblockSize; i++ {
			at := idx + i
			if h.supers[at] != nil {
				return fmt.Errorf("heap: restore %v: span collides with existing superblock", o.Addr)
			}
			h.supers[at] = sb
		}
	case sb.classSize != o.ClassSize:
		return fmt.Errorf("heap: restore %v: class size %d conflicts with superblock class %d", o.Addr, o.ClassSize, sb.classSize)
	}
	offset := uint64(o.Addr - sb.base)
	if offset%o.ClassSize != 0 {
		return fmt.Errorf("heap: restore %v: not aligned to class size %d within superblock", o.Addr, o.ClassSize)
	}
	slot := offset / o.ClassSize
	if slot >= uint64(len(sb.objects)) {
		return fmt.Errorf("heap: restore %v: slot %d out of range", o.Addr, slot)
	}
	if sb.objects[slot] != nil {
		return fmt.Errorf("heap: restore %v: slot already occupied by object at %v", o.Addr, sb.objects[slot].Addr)
	}
	obj := o
	if len(obj.Stack) > MaxStackDepth {
		obj.Stack = obj.Stack[:MaxStackDepth]
	}
	sb.objects[slot] = &obj
	if end := o.End(); end > sb.next {
		sb.next = end
	}
	if spanEnd := sb.base.Add(int(span)); spanEnd > h.nextSuper {
		h.nextSuper = spanEnd
	}
	if o.Seq > h.seq {
		h.seq = o.Seq
	}
	h.allocs++
	if o.Live {
		h.liveBytes += o.ClassSize
	}
	return nil
}

// Stats reports allocator usage.
type Stats struct {
	Allocs, Frees uint64
	LiveBytes     uint64
	RegionUsed    uint64
}

// Stats returns current allocator counters.
func (h *Heap) Stats() Stats {
	return Stats{
		Allocs: h.allocs, Frees: h.frees,
		LiveBytes:  h.liveBytes,
		RegionUsed: uint64(h.nextSuper - h.cfg.Base),
	}
}
