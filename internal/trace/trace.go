// Package trace makes memory-access traces a first-class Program source:
// any simulated execution can be recorded to a portable trace file, and
// any trace file can be replayed through the unchanged simulator and
// profiler as if it were a hand-written workload.
//
// This mirrors how the real Cheetah consumes PMU address samples from
// arbitrary binaries (paper §2.1, §3.1): the trace is the interchange
// format between the machine that observed the accesses and the machine
// that analyzes them.
//
// # Format
//
// A trace is a stream of events in one of two framings sharing the same
// schema version:
//
//   - a line-oriented text form in the style of a perf mem script dump.
//     Data rows are `tid op addr size ip lat phase`; metadata rows
//     (program identity, heap objects with allocation call stacks, global
//     symbols, phase structure, per-thread instruction totals) are
//     `#`-prefixed directives, so naive line tools can process the data
//     rows alone.
//   - a compact binary framing (magic-prefixed, varint-encoded) for large
//     traces. The binary framing is itself versioned: v2 delta-encodes
//     the hot columns per thread as zigzag varints, and the decoder
//     auto-detects v1 or v2 from the magic, so old corpus files decode
//     forever.
//
// The `ip` column is the simulated instruction pointer: the thread's
// retired instruction count at the access. Consecutive ip values encode
// the compute between two accesses, which is what lets the replayer
// rebuild an exec.Program whose instruction stream — and therefore whose
// PMU sampling, cache behaviour and detection report — is identical to
// the recorded run's. The `lat` column carries the recorded access
// latency for external analysis; replay recomputes latencies through the
// simulator rather than trusting the file.
//
// Both encoder and decoder stream: neither ever holds the whole trace in
// memory (the replayer accumulates only the compacted per-thread
// operation lists it needs to build a Program).
//
// # Round-trip guarantee
//
// Recording every access of a workload (Recorder) and replaying the trace
// on a machine with the same core count and profiling the result with the
// same PMU configuration yields a detection report byte-identical to
// profiling the original program directly. Sampled traces
// (SampledRecorder) trade that guarantee for small files; they replay as
// an approximation that preserves each access's instruction offset.
package trace

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/heap"
	"repro/internal/mem"
)

// Version is the trace schema version, shared by both framings.
const Version = 1

// Kind discriminates trace events.
type Kind uint8

const (
	// KindProgram identifies the recorded program (name, core count).
	// It is the first event of every well-formed trace.
	KindProgram Kind = iota + 1
	// KindSymbol declares one global variable (layout metadata; the
	// recorders emit it at end of stream, reflecting end-of-run state).
	KindSymbol
	// KindObject declares one heap allocation with its call stack
	// (layout metadata, emitted like KindSymbol).
	KindObject
	// KindPhase declares a serial or parallel phase at the point it
	// starts.
	KindPhase
	// KindThreadEnd records a thread leaving a phase with its final
	// retired instruction count.
	KindThreadEnd
	// KindAccess is one memory access: the `tid op addr size ip lat
	// phase` data row.
	KindAccess
	// KindNote is free-form provenance metadata (`key=value` text): the
	// importers record skip/drop tallies and source descriptions here.
	// Notes never influence replay; decoders that predate them reject
	// the trace (schema growth is versioned by presence, not by bumping
	// Version — old corpus files never carry notes).
	KindNote
)

// Decoder sanity caps. Traces are external input, so structural fields
// are bounded before any allocation is sized from them.
const (
	// MaxStringLen bounds names, file paths and text lines.
	MaxStringLen = 1 << 20
	// MaxPhaseIndex bounds phase indices.
	MaxPhaseIndex = 1 << 16
	// MaxThreadID bounds thread ids.
	MaxThreadID = 1 << 20
	// MaxInstrs bounds instruction counts (the access ip column and
	// thread-end totals). Replay turns ip deltas into simulated compute
	// and PMU counter advances, so an unbounded value would make a
	// hostile trace replay effectively forever; 2^40 instructions is
	// orders of magnitude past the largest paper-scale run.
	MaxInstrs = 1 << 40
	// MaxFrames bounds call-stack depth in object events (the paper's
	// collector keeps five; imported traces get slack).
	MaxFrames = 64
)

// Event is one element of a trace stream. Kind selects which fields are
// meaningful; unrelated fields are zero.
type Event struct {
	Kind Kind

	// Name is the program name (KindProgram), symbol name (KindSymbol),
	// phase name (KindPhase) or note text (KindNote).
	Name string
	// Cores is the recorded machine size (KindProgram).
	Cores int

	// TID is the accessing (KindAccess) or ending (KindThreadEnd)
	// thread.
	TID mem.ThreadID
	// Write distinguishes stores from loads (KindAccess).
	Write bool
	// Addr is the accessed address (KindAccess), or the base address of
	// a symbol (KindSymbol) or object (KindObject).
	Addr mem.Addr
	// Size is the access width in bytes (KindAccess), or the
	// symbol/object requested size (KindSymbol, KindObject).
	Size uint64
	// IP is the thread's retired instruction count at the access
	// (KindAccess).
	IP uint64
	// Lat is the recorded access latency in cycles (KindAccess).
	Lat uint32
	// Phase is the phase the event belongs to (KindAccess,
	// KindThreadEnd), or the declared index (KindPhase).
	Phase int

	// Parallel marks parallel phases (KindPhase).
	Parallel bool

	// Instrs is the thread's final retired instruction count
	// (KindThreadEnd).
	Instrs uint64

	// Class, Seq, Live and Stack carry heap-object metadata
	// (KindObject): the power-of-two allocation unit, the allocation
	// sequence number, liveness at snapshot time, and the allocation
	// call stack.
	Class uint64
	Seq   uint64
	Live  bool
	Stack heap.CallStack
}

// Encoder writes a stream of events in one framing. Close flushes
// buffered output but does not close the underlying writer.
type Encoder interface {
	Encode(ev Event) error
	Close() error
}

// Decoder reads a stream of events, auto-detecting the framing.
type Decoder struct {
	next func() (Event, error)
	err  error
	// bd is set for binary streams, for framing/index introspection.
	bd *binaryDecoder
}

// NewDecoder wraps r, detecting text or binary framing from the first
// byte. The framing error, if any, surfaces from the first Next call.
func NewDecoder(r io.Reader) *Decoder {
	br := bufio.NewReaderSize(r, 1<<16)
	d := &Decoder{}
	head, err := br.Peek(1)
	switch {
	case err != nil:
		d.err = fmt.Errorf("trace: empty or unreadable input: %w", err)
	case head[0] == '#':
		d.next, d.err = newTextDecoder(br)
	case head[0] == 0x00:
		d.bd, d.err = newBinaryDecoder(br)
		if d.err == nil {
			d.next = d.bd.next
		}
	default:
		d.err = fmt.Errorf("trace: unrecognized framing (first byte %#02x; want '#' for text or 0x00 for binary)", head[0])
	}
	return d
}

// Framing names the detected framing ("text", "binary v1", ...); empty
// until detection succeeds.
func (d *Decoder) Framing() string {
	if d.bd != nil {
		return fmt.Sprintf("binary v%d", d.bd.version)
	}
	if d.next != nil {
		return "text"
	}
	return ""
}

// Indexed reports whether the stream ended at a valid seekable index
// block. Meaningful only after Next has returned io.EOF.
func (d *Decoder) Indexed() bool { return d.bd != nil && d.bd.sawIndex }

// Next returns the next event, or io.EOF at a clean end of stream. After
// any non-nil error the decoder is exhausted.
func (d *Decoder) Next() (Event, error) {
	if d.err != nil {
		return Event{}, d.err
	}
	ev, err := d.next()
	if err != nil {
		d.err = err
	}
	return ev, err
}
