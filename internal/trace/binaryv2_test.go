package trace

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mem"
)

// decodeEvents drains a decoder, failing the test on any non-EOF error.
func decodeEvents(t *testing.T, data []byte) []Event {
	t.Helper()
	d := NewDecoder(bytes.NewReader(data))
	var out []Event
	for {
		ev, err := d.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		out = append(out, ev)
	}
}

// syntheticAccessTrace builds a deterministic, realistically-shaped event
// stream: a few threads striding through nearby addresses with slowly
// growing instruction counts — the column behaviour the v2 delta framing
// is designed around.
func syntheticAccessTrace(accesses int) []Event {
	evs := []Event{
		{Kind: KindProgram, Name: "synthetic", Cores: 8},
		{Kind: KindPhase, Phase: 0, Parallel: true, Name: "work"},
	}
	const threads = 4
	var ip [threads]uint64
	var addr [threads]uint64
	for i := range addr {
		addr[i] = 0x40000000 + uint64(i)*512
		ip[i] = 1
	}
	for i := 0; i < accesses; i++ {
		tid := i % threads
		ip[tid] += uint64(2 + i%3)
		addr[tid] += uint64((i % 5) * 4)
		if i%64 == 0 {
			addr[tid] = 0x40000000 + uint64(tid)*512
		}
		evs = append(evs, Event{
			Kind: KindAccess, TID: mem.ThreadID(1 + tid), Write: i%3 == 0,
			Addr: mem.Addr(addr[tid]), Size: 4, IP: ip[tid],
			Lat: uint32(3 + i%200), Phase: 0,
		})
	}
	for tid := 0; tid < threads; tid++ {
		evs = append(evs, Event{Kind: KindThreadEnd, TID: mem.ThreadID(1 + tid), Phase: 0, Instrs: ip[tid]})
	}
	return evs
}

// TestBinaryV2RoundTripsAndShrinks: the same event stream encoded in v1
// and v2 must decode to identical events, and the v2 form must be
// measurably smaller — the whole point of the delta framing.
func TestBinaryV2RoundTripsAndShrinks(t *testing.T) {
	evs := append(sampleEvents(), syntheticAccessTrace(20000)[2:]...)

	var v1, v2 bytes.Buffer
	e1, e2 := NewBinaryEncoderV1(&v1), NewBinaryEncoder(&v2)
	for _, ev := range evs {
		if err := e1.Encode(ev); err != nil {
			t.Fatalf("v1 encode: %v", err)
		}
		if err := e2.Encode(ev); err != nil {
			t.Fatalf("v2 encode: %v", err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	got1 := decodeEvents(t, v1.Bytes())
	got2 := decodeEvents(t, v2.Bytes())
	if !reflect.DeepEqual(got1, got2) {
		t.Fatal("v1 and v2 framings decoded to different event streams")
	}
	if !reflect.DeepEqual(got2, evs) {
		t.Fatal("v2 round trip altered the event stream")
	}
	ratio := float64(v2.Len()) / float64(v1.Len())
	t.Logf("binary framing sizes: v1 %d bytes, v2 %d bytes (ratio %.2f)", v1.Len(), v2.Len(), ratio)
	if ratio > 0.6 {
		t.Errorf("v2 framing is not measurably smaller: %d vs %d bytes (ratio %.2f)",
			v2.Len(), v1.Len(), ratio)
	}
}

// TestV1CorpusDecodesUnderV2Reader: every checked-in v1 trace must keep
// decoding under the auto-detecting reader, and re-encoding it in v2
// must round-trip the identical event stream. This is the compatibility
// gate the nightly CI job runs by name.
func TestV1CorpusDecodesUnderV2Reader(t *testing.T) {
	dir := filepath.Join("testdata", "corpus-v1")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading v1 corpus: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("v1 corpus is empty")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if len(data) < 8 || string(data[:8]) != string(binaryMagicFor(BinaryV1)) {
				t.Fatalf("%s is not a v1 binary trace", e.Name())
			}
			evs := decodeEvents(t, data)
			if len(evs) == 0 {
				t.Fatal("corpus trace decoded to zero events")
			}
			var v2 bytes.Buffer
			enc := NewBinaryEncoder(&v2)
			for _, ev := range evs {
				if err := enc.Encode(ev); err != nil {
					t.Fatalf("re-encoding in v2: %v", err)
				}
			}
			if err := enc.Close(); err != nil {
				t.Fatal(err)
			}
			if got := decodeEvents(t, v2.Bytes()); !reflect.DeepEqual(got, evs) {
				t.Error("v2 re-encoding altered the event stream")
			}
			t.Logf("%s: v1 %d bytes -> v2 %d bytes (ratio %.2f)",
				e.Name(), len(data), v2.Len(), float64(v2.Len())/float64(len(data)))
			// The corpus also replays: a Replay must build without error.
			if _, err := Read(bytes.NewReader(data)); err != nil {
				t.Errorf("v1 corpus trace does not replay: %v", err)
			}
		})
	}
}

// TestBinaryDecodeErrorsAreSticky is the decoder-robustness regression
// test: after a bounds error mid-record the inner decoder must return
// the same error forever, even when the bytes that follow would parse as
// a valid record from the unsynchronized offset.
func TestBinaryDecodeErrorsAreSticky(t *testing.T) {
	for _, version := range []int{BinaryV1, BinaryV2} {
		t.Run(map[int]string{BinaryV1: "v1", BinaryV2: "v2"}[version], func(t *testing.T) {
			// A poisoned access record: the addr column exceeds its limit
			// mid-record, leaving the ip/size/lat/phase columns unread.
			b := append([]byte{}, binaryMagicFor(version)...)
			b = append(b, byte(KindAccess))
			b = appendUvarintForTest(b, 1) // tid
			b = append(b, 1)               // write
			if version == BinaryV2 {
				b = appendZigzag(b, 1<<63) // addr delta -> 2^63 > 2^62
			} else {
				b = appendUvarintForTest(b, 1<<63) // addr
			}
			// Followed by bytes that decode as a perfectly valid thread-end
			// record — exactly what a non-sticky decoder would misparse.
			b = append(b, byte(KindThreadEnd))
			b = appendUvarintForTest(b, 1)  // tid
			b = appendUvarintForTest(b, 0)  // phase
			b = appendUvarintForTest(b, 42) // instrs

			d, err := newBinaryDecoder(bufio.NewReader(bytes.NewReader(b)))
			if err != nil {
				t.Fatalf("magic rejected: %v", err)
			}
			_, err1 := d.next()
			if err1 == nil {
				t.Fatal("poisoned record decoded without error")
			}
			ev, err2 := d.next()
			if err2 == nil {
				t.Fatalf("decoder resynchronized after an error and produced %+v", ev)
			}
			if err2 != err1 {
				t.Errorf("second error %v is not the latched first error %v", err2, err1)
			}
			if _, err3 := d.next(); err3 != err1 {
				t.Errorf("third call returned %v, want the latched error", err3)
			}
		})
	}
}

// TestTextDecodeErrorsAreSticky: the line decoder must latch a parse
// error too, not skip the bad line and resume on the next one.
func TestTextDecodeErrorsAreSticky(t *testing.T) {
	in := "#cheetah-trace v1\n" +
		"#program 4 x\n" +
		"1 q 0x40 4 1 0 0\n" + // bad op
		"1 w 0x40 4 1 0 0\n" // valid line a lax decoder would resume on
	next, err := newTextDecoder(bufio.NewReader(strings.NewReader(in)))
	if err != nil {
		t.Fatalf("header rejected: %v", err)
	}
	if _, err := next(); err != nil {
		t.Fatalf("#program: %v", err)
	}
	_, err1 := next()
	if err1 == nil {
		t.Fatal("bad line decoded without error")
	}
	if _, err2 := next(); err2 != err1 {
		t.Errorf("second call returned %v, want the latched error %v", err2, err1)
	}
}

// TestBinaryV2DeltaWraparound: deltas are wrapping by design; a delta
// that wraps the column past its limit must be rejected, and legitimate
// backwards movement (a thread revisiting a lower address) must decode
// exactly.
func TestBinaryV2DeltaWraparound(t *testing.T) {
	evs := []Event{
		{Kind: KindProgram, Name: "wrap", Cores: 2},
		{Kind: KindPhase, Phase: 0, Parallel: true, Name: "w"},
		{Kind: KindAccess, TID: 1, Addr: 0x40001000, Size: 4, IP: 10, Lat: 5, Phase: 0},
		{Kind: KindAccess, TID: 1, Addr: 0x40000004, Size: 8, IP: 12, Lat: 3, Phase: 0},
		{Kind: KindAccess, TID: 1, Addr: 0x40001000, Size: 4, IP: 900, Lat: 3, Phase: 0},
	}
	var buf bytes.Buffer
	enc := NewBinaryEncoder(&buf)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if got := decodeEvents(t, buf.Bytes()); !reflect.DeepEqual(got, evs) {
		t.Errorf("backwards-moving columns did not round-trip:\n%+v\nwant\n%+v", got, evs)
	}

	// A crafted negative delta from the zero state wraps to 2^64-4: the
	// bound check must reject it, not hand the replayer a wild address.
	b := append([]byte{}, binaryMagicFor(BinaryV2)...)
	b = append(b, byte(KindAccess))
	b = appendUvarintForTest(b, 1)          // tid
	b = append(b, 0)                        // read
	b = appendZigzag(b, 0xFFFFFFFFFFFFFFFC) // addr delta -4 from 0
	b = appendZigzag(b, 1)                  // ip
	b = appendZigzag(b, 4)                  // size
	b = appendZigzag(b, 0)                  // lat
	b = appendZigzag(b, 0)                  // phase
	d := NewDecoder(bytes.NewReader(b))
	if _, err := d.Next(); err == nil {
		t.Error("decoder accepted a wrapped-negative address")
	}
}
