package trace

import "repro/internal/obs"

// Streaming-replay observability: window churn counters mirror what
// WindowStats reports per replay, aggregated process-wide. Loads are
// rare (one per phase per replay), so the cost is off any hot path.
var (
	mWindowLoads = obs.GetCounter("cheetah_trace_window_loads_total",
		"Streaming-replay phase windows loaded from disk.")
	mWindowOps = obs.GetCounter("cheetah_trace_window_ops_total",
		"Operations decoded into streaming-replay windows.")
	mWindowOpsMax = obs.GetGauge("cheetah_trace_window_ops_max",
		"Largest operation count ever resident in one streaming window.")
)
