package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// noteEvents is an indexable stream carrying provenance notes of the
// shape the PMU importers emit.
func noteEvents() []Event {
	evs := indexableEvents()
	notes := []Event{
		{Kind: KindNote, Name: "import.source=perf-script"},
		{Kind: KindNote, Name: "import.skipped_kernel=3"},
	}
	return append(append([]Event{evs[0]}, notes...), evs[1:]...)
}

// TestNoteRoundTrip: #note records must survive every framing
// byte-exactly, surface through ReadMeta, and stay invisible to replay.
func TestNoteRoundTrip(t *testing.T) {
	evs := noteEvents()
	encodings := map[string][]byte{}

	var text bytes.Buffer
	enc := Encoder(NewTextEncoder(&text))
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Fatalf("text encode: %v", err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	encodings["text"] = text.Bytes()

	var bin bytes.Buffer
	enc = NewBinaryEncoder(&bin)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Fatalf("binary encode: %v", err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	encodings["binary"] = bin.Bytes()
	encodings["indexed"] = indexedBytes(t, evs)

	wantNotes := []string{"import.source=perf-script", "import.skipped_kernel=3"}
	for name, data := range encodings {
		got := decodeEvents(t, data)
		if !reflect.DeepEqual(got, evs) {
			t.Errorf("%s framing did not round-trip the noted stream", name)
		}
		m, err := ReadMeta(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s ReadMeta: %v", name, err)
		}
		if !reflect.DeepEqual(m.Notes, wantNotes) {
			t.Errorf("%s Notes = %v, want %v", name, m.Notes, wantNotes)
		}
		// Notes are provenance, not semantics: replay must build the
		// same program as the unnoted stream.
		if _, err := Read(bytes.NewReader(data)); err != nil {
			t.Errorf("%s Read with notes: %v", name, err)
		}
	}

	// The index-only metadata path must surface the notes without a
	// record scan, and streaming replay must validate a noted trace.
	path := writeTemp(t, encodings["indexed"])
	m, err := ReadMetaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Indexed {
		t.Error("ReadMetaFile did not take the indexed path")
	}
	if !reflect.DeepEqual(m.Notes, wantNotes) {
		t.Errorf("indexed ReadMetaFile Notes = %v, want %v", m.Notes, wantNotes)
	}
	if err := ValidateStream(path); err != nil {
		t.Errorf("ValidateStream on noted trace: %v", err)
	}
}

// TestPayloadCRCFaultInjection: a flipped record byte under a fully
// valid index must fail streaming load with CorruptPayloadError — the
// satellite guarantee that index checksums extend to the payloads. One
// corruption per span kind: an access record (segment CRC) and a layout
// record (region CRC).
func TestPayloadCRCFaultInjection(t *testing.T) {
	base := indexedBytes(t, indexableEvents())
	idx, err := readIndexAt(bytes.NewReader(base), int64(len(base)))
	if err != nil {
		t.Fatal(err)
	}
	if !idx.hasCRC {
		t.Fatal("IndexedEncoder wrote an index without payload CRCs")
	}

	flip := func(off uint64) []byte {
		data := append([]byte(nil), base...)
		data[off] ^= 0x40
		return data
	}
	cases := map[string]uint64{
		// Mid-segment: inside the phase-1 record span, past its first
		// record so the phase header still parses.
		"segment record": idx.segs[1].off + idx.segs[1].length/2,
		// Layout region: after the magic header, before the first
		// segment (the program/symbol/object records).
		"layout record": idx.segs[0].off - 2,
	}
	for name, off := range cases {
		t.Run(name, func(t *testing.T) {
			path := writeTemp(t, flip(off))
			err := ValidateStream(path)
			if err == nil {
				t.Fatal("ValidateStream accepted a corrupt payload under a valid index")
			}
			var ce *CorruptPayloadError
			if !errors.As(err, &ce) {
				t.Fatalf("error is %T (%v), want CorruptPayloadError", err, err)
			}
			if ce.Want == ce.Got {
				t.Errorf("CorruptPayloadError reports matching CRCs: %+v", ce)
			}
		})
	}

	// The same corrupt files still carry an intact index, so the cheap
	// index-only reads must keep working — corruption is a payload-read
	// failure, not an open failure.
	path := writeTemp(t, flip(idx.segs[1].off+idx.segs[1].length/2))
	if _, err := readIndexAt(bytes.NewReader(flip(idx.segs[1].off)), int64(len(base))); err != nil {
		t.Errorf("index block no longer parses after payload-only corruption: %v", err)
	}
	if !FileIsIndexed(path) {
		t.Error("FileIsIndexed = false after payload-only corruption")
	}
}
