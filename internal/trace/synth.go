package trace

import "repro/internal/mem"

// SynthConfig sizes a synthetic trace. Zero fields take the defaults.
type SynthConfig struct {
	// Name is the recorded program name (default "synth").
	Name string
	// Accesses is the approximate total access count (default 1<<16).
	Accesses uint64
	// Threads is the worker count per parallel phase (default 8).
	Threads int
	// Phases is the number of parallel phases (default 256). More phases
	// with the same total means smaller phases — a smaller streaming
	// window relative to the file.
	Phases int
}

func (cfg SynthConfig) withDefaults() SynthConfig {
	if cfg.Name == "" {
		cfg.Name = "synth"
	}
	if cfg.Accesses == 0 {
		cfg.Accesses = 1 << 16
	}
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if cfg.Phases == 0 {
		cfg.Phases = 256
	}
	return cfg
}

// WriteSynthetic emits a deterministic pooled fork-join trace sized by
// cfg: an init phase, then cfg.Phases parallel phases whose threads
// false-share cache lines of one global array. Its purpose is growing
// arbitrarily large traces whose per-phase window stays tiny, for the
// bounded-memory regression gates; the access pattern keeps the
// detector busy (adjacent threads share lines) without mattering in
// itself. All addresses land in the default globals segment, so replay
// never synthesizes foreign objects.
func WriteSynthetic(enc Encoder, cfg SynthConfig) error {
	cfg = cfg.withDefaults()
	// One 8-byte slot per thread, two threads per 64-byte line: the
	// classic false-sharing layout, inside the default globals segment.
	const base = mem.Addr(0x10000000)
	arrayBytes := uint64(cfg.Threads+1) * 8

	emit := func(ev Event) error { return enc.Encode(ev) }
	if err := emit(Event{Kind: KindProgram, Name: cfg.Name, Cores: 8}); err != nil {
		return err
	}

	// Serial init: the main thread touches every slot once.
	if err := emit(Event{Kind: KindPhase, Phase: 0, Name: "init"}); err != nil {
		return err
	}
	ip := uint64(0)
	for i := 0; i <= cfg.Threads; i++ {
		ip += 2
		if err := emit(Event{
			Kind: KindAccess, TID: mem.MainThread, Write: true,
			Addr: base.Add(i * 8), Size: 8, IP: ip, Lat: 4, Phase: 0,
		}); err != nil {
			return err
		}
	}
	if err := emit(Event{Kind: KindThreadEnd, TID: mem.MainThread, Phase: 0, Instrs: ip + 1}); err != nil {
		return err
	}

	per := cfg.Accesses / uint64(cfg.Phases*cfg.Threads)
	if per == 0 {
		per = 1
	}
	for p := 1; p <= cfg.Phases; p++ {
		if err := emit(Event{Kind: KindPhase, Phase: p, Name: "work", Parallel: true}); err != nil {
			return err
		}
		// The ip column restarts per phase: replay derives compute gaps
		// from consecutive ips within one phase of one thread.
		ips := make([]uint64, cfg.Threads+1)
		for t := 1; t <= cfg.Threads; t++ {
			slot := base.Add(t * 8)
			for k := uint64(0); k < per; k++ {
				ips[t] += 3
				if err := emit(Event{
					Kind: KindAccess, TID: mem.ThreadID(t), Write: k%2 == 0,
					Addr: slot, Size: 8, IP: ips[t], Lat: 4, Phase: p,
				}); err != nil {
					return err
				}
			}
		}
		for t := 1; t <= cfg.Threads; t++ {
			if err := emit(Event{Kind: KindThreadEnd, TID: mem.ThreadID(t), Phase: p, Instrs: ips[t] + 2}); err != nil {
				return err
			}
		}
	}
	return emit(Event{Kind: KindSymbol, Name: "synth_shared", Addr: base, Size: arrayBytes})
}
