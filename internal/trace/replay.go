package trace

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/symtab"
)

// replayOp is one reconstructed thread operation: the compute gap since
// the previous access (derived from consecutive ip values) followed by
// the access itself.
type replayOp struct {
	gap   uint64
	addr  mem.Addr
	size  uint8
	write bool
}

// replayThread accumulates one thread's stream within one phase.
type replayThread struct {
	ops []replayOp
	// lastIP is the retired instruction count at the last access.
	lastIP uint64
	// endInstrs is the thread's final instruction count (from the
	// threadend event); compute past the last access is reconstructed
	// from it.
	endInstrs uint64
	sawEnd    bool
}

// replayPhase is one reconstructed phase.
type replayPhase struct {
	name     string
	parallel bool
	declared bool
	threads  map[mem.ThreadID]*replayThread
}

func (p *replayPhase) thread(tid mem.ThreadID) *replayThread {
	t := p.threads[tid]
	if t == nil {
		t = &replayThread{}
		p.threads[tid] = t
	}
	return t
}

// tids returns the phase's thread ids in ascending order — the order the
// engine originally created them in, so replay reassigns the same ids.
func (p *replayPhase) tids() []mem.ThreadID {
	out := make([]mem.ThreadID, 0, len(p.threads))
	for tid := range p.threads {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Replay is a decoded trace, ready to be turned back into a runnable
// program. Use Read to build one, Prepare to install its memory layout
// into a system, and Program to obtain the reconstructed program.
type Replay struct {
	// Name and Cores identify the recorded program and machine size.
	// Detection reports replayed on a machine with Cores cores under the
	// recording PMU configuration are byte-identical to the original
	// run's (for full traces).
	Name  string
	Cores int
	// Symbols and Objects are the recorded memory layout (end-of-run
	// snapshot).
	Symbols []symtab.Symbol
	Objects []heap.Object
	// Accesses counts the trace's data records.
	Accesses uint64
	// Notes are the trace's provenance notes (`key=value` text) in stream
	// order — importer skip tallies, the recording machine model, etc.
	// Notes carry no replayable records, so they never affect the
	// reconstructed program; callers interpret the keys they know.
	Notes []string

	phases   map[int]*replayPhase
	maxPhase int
	prepared bool
}

// ReadFile decodes the trace file at path.
func ReadFile(path string) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Validate rehearses the whole replay pipeline — decode, memory-layout
// restore and synthesis, program assembly — against a scratch default
// memory layout, returning the error any stage would surface. Callers
// that cannot tolerate a late failure (the workload registry's Build
// cannot return errors and panics instead) validate up front.
func Validate(path string) error {
	rp, err := ReadFile(path)
	if err != nil {
		return err
	}
	if err := rp.Prepare(heap.New(heap.Config{}), symtab.New(symtab.Config{})); err != nil {
		return err
	}
	rp.Program()
	return nil
}

// Read decodes a whole trace (text or binary framing) into a Replay. The
// stream is processed record by record; only the compacted per-thread
// operation lists are retained.
func Read(r io.Reader) (*Replay, error) {
	rp := &Replay{phases: make(map[int]*replayPhase), maxPhase: -1}
	d := NewDecoder(r)
	sawProgram := false
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case KindProgram:
			if sawProgram {
				return nil, fmt.Errorf("trace: duplicate #program record")
			}
			sawProgram = true
			rp.Name = ev.Name
			rp.Cores = ev.Cores
		case KindSymbol:
			rp.Symbols = append(rp.Symbols, symtab.Symbol{Name: ev.Name, Addr: ev.Addr, Size: ev.Size})
		case KindObject:
			rp.Objects = append(rp.Objects, heap.Object{
				Addr: ev.Addr, Size: ev.Size, ClassSize: ev.Class,
				Thread: ev.TID, Seq: ev.Seq, Live: ev.Live, Stack: ev.Stack,
			})
		case KindNote:
			rp.Notes = append(rp.Notes, ev.Name)
		case KindPhase:
			ph := rp.phase(ev.Phase)
			ph.name = ev.Name
			ph.parallel = ev.Parallel
			ph.declared = true
		case KindThreadEnd:
			t := rp.phase(ev.Phase).thread(ev.TID)
			t.endInstrs = ev.Instrs
			t.sawEnd = true
		case KindAccess:
			if ev.Size > 255 {
				return nil, fmt.Errorf("trace: access size %d unsupported (max 255)", ev.Size)
			}
			rp.Accesses++
			t := rp.phase(ev.Phase).thread(ev.TID)
			var gap uint64
			if ev.IP > t.lastIP {
				gap = ev.IP - t.lastIP - 1
				t.lastIP = ev.IP
			}
			// Size 0 (imported traces with unknown width) replays as a
			// word access; everything else keeps its recorded width.
			size := uint8(ev.Size)
			if size == 0 {
				size = 4
			}
			t.ops = append(t.ops, replayOp{gap: gap, addr: ev.Addr, size: size, write: ev.Write})
		}
	}
	if !sawProgram {
		return nil, fmt.Errorf("trace: missing #program record")
	}
	if rp.Cores == 0 {
		rp.Cores = 1
	}
	// A phase declared serial must be exactly the main thread.
	for idx, ph := range rp.phases {
		if !ph.declared || ph.parallel {
			continue
		}
		for tid := range ph.threads {
			if tid != mem.MainThread {
				return nil, fmt.Errorf("trace: serial phase %d has records for thread %d", idx, tid)
			}
		}
	}
	return rp, nil
}

func (rp *Replay) phase(idx int) *replayPhase {
	ph := rp.phases[idx]
	if ph == nil {
		ph = &replayPhase{threads: make(map[mem.ThreadID]*replayThread)}
		rp.phases[idx] = ph
	}
	if idx > rp.maxPhase {
		rp.maxPhase = idx
	}
	return ph
}

// Prepare installs the trace's memory layout into a system's heap and
// symbol table. Traces recorded by this package restore exactly: every
// object reappears at its original address with its original call
// stack, and in-segment addresses replay verbatim. Foreign addresses
// outside every simulated segment (real-hardware stacks and mmap
// ranges) are synthesized into fresh heap objects with `trace:N` call
// sites. Prepare must run before Program.
//
// Trace files are external input, so Prepare converts any panic from
// the layout machinery (e.g. heap exhaustion while synthesizing foreign
// runs) into an error.
func (rp *Replay) Prepare(h *heap.Heap, syms *symtab.Table) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("trace: preparing replay: %v", r)
		}
	}()
	for _, s := range rp.Symbols {
		if err := syms.Restore(s); err != nil {
			return err
		}
	}
	for _, o := range rp.Objects {
		if err := h.Restore(o); err != nil {
			return err
		}
	}
	if err := rp.synthesize(h, syms); err != nil {
		return err
	}
	rp.prepared = true
	return nil
}

// lineRun is a maximal run of consecutive touched cache lines.
type lineRun struct {
	start mem.Addr // base address of the first line
	bytes uint64
	// mappedTo is the synthesized object base the run was remapped onto
	// (heap synthesis only).
	mappedTo mem.Addr
}

func (r lineRun) contains(a mem.Addr) bool { return a >= r.start && a < r.start.Add(int(r.bytes)) }

// synthesize handles addresses outside every simulated segment —
// foreign traces recorded on real hardware (stacks, 0x7f.. mmap ranges).
// Contiguous runs of touched out-of-segment cache lines become fresh
// heap objects with `trace:N` call sites, and their accesses are
// remapped onto them so the profiler can attribute the sharing.
// Addresses inside the heap or globals segments are left verbatim
// whether or not an object covers them: the profiler accepts them by
// region exactly as it did during recording (unresolved ones report as
// unknown objects), which is what keeps replayed reports identical.
func (rp *Replay) synthesize(h *heap.Heap, syms *symtab.Table) error {
	var heapLines []uint64
	seen := make(map[uint64]bool)
	rp.eachOp(func(op *replayOp) {
		if h.Contains(op.addr) || syms.Contains(op.addr) {
			return
		}
		if line := op.addr.Line(); !seen[line] {
			seen[line] = true
			heapLines = append(heapLines, line)
		}
	})
	if len(heapLines) == 0 {
		return nil
	}
	heapRuns := lineRuns(heapLines)
	for i := range heapRuns {
		site := heap.Stack(heap.Frame{Func: "trace", File: "trace", Line: i + 1})
		heapRuns[i].mappedTo = h.Malloc(mem.MainThread, heapRuns[i].bytes, site)
	}
	rp.eachOp(func(op *replayOp) {
		op.addr = remapForeign(heapRuns, op.addr)
	})
	return nil
}

// remapForeign translates an address covered by a synthesized run onto
// its replacement object; addresses outside every run pass through.
func remapForeign(runs []lineRun, addr mem.Addr) mem.Addr {
	j := sort.Search(len(runs), func(j int) bool {
		return runs[j].start.Add(int(runs[j].bytes)) > addr
	})
	if j < len(runs) && runs[j].contains(addr) {
		return runs[j].mappedTo + (addr - runs[j].start)
	}
	return addr
}

// eachOp visits every access operation in deterministic order.
func (rp *Replay) eachOp(fn func(op *replayOp)) {
	for idx := 0; idx <= rp.maxPhase; idx++ {
		ph := rp.phases[idx]
		if ph == nil {
			continue
		}
		for _, tid := range ph.tids() {
			ops := ph.threads[tid].ops
			for i := range ops {
				fn(&ops[i])
			}
		}
	}
}

// lineRuns groups sorted line indices into maximal contiguous runs.
func lineRuns(lines []uint64) []lineRun {
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	var runs []lineRun
	for i := 0; i < len(lines); {
		j := i + 1
		for j < len(lines) && lines[j] == lines[j-1]+1 {
			j++
		}
		runs = append(runs, lineRun{
			start: mem.LineAddr(lines[i]),
			bytes: uint64(j-i) * mem.LineSize,
		})
		i = j
	}
	return runs
}

// Program reconstructs the deterministic fork-join program. Phases keep
// their recorded indices (gaps become empty phases the engine skips),
// each phase's bodies reissue its threads' exact access streams with the
// recorded compute gaps in ascending-thread-id order, and phases whose
// threads reappear in other parallel phases become pooled — so the
// engine reassigns the original thread ids and the unchanged simulator
// reproduces the recorded execution.
func (rp *Replay) Program() exec.Program {
	if !rp.prepared {
		panic("trace: Replay.Program called before Prepare")
	}
	// A thread id seen in more than one parallel phase is a pooled
	// worker; every phase it appears in ran on the persistent pool.
	appearances := make(map[mem.ThreadID]int)
	for _, ph := range rp.phases {
		if !rp.isParallel(ph) {
			continue
		}
		for tid := range ph.threads {
			appearances[tid]++
		}
	}
	prog := exec.Program{Name: rp.Name}
	for idx := 0; idx <= rp.maxPhase; idx++ {
		ph := rp.phases[idx]
		if ph == nil {
			// Preserve recorded phase indices across gaps; the engine
			// skips body-less phases without notifying probes.
			prog.Phases = append(prog.Phases, exec.Phase{})
			continue
		}
		name := ph.name
		if name == "" {
			name = fmt.Sprintf("phase%d", idx)
		}
		if !rp.isParallel(ph) {
			t := ph.threads[mem.MainThread]
			body := bodyFor(t)
			prog.Phases = append(prog.Phases, exec.SerialPhase(name, body))
			continue
		}
		pooled := false
		bodies := make([]exec.Body, 0, len(ph.threads))
		for _, tid := range ph.tids() {
			if appearances[tid] > 1 {
				pooled = true
			}
			bodies = append(bodies, bodyFor(ph.threads[tid]))
		}
		prog.Phases = append(prog.Phases, exec.Phase{Name: name, Bodies: bodies, Pooled: pooled})
	}
	return prog
}

// isParallel reports whether a phase replays as parallel: declared
// phases say so themselves; undeclared (foreign) phases are serial only
// when their sole thread is the main thread.
func (rp *Replay) isParallel(ph *replayPhase) bool {
	if ph.declared {
		return ph.parallel
	}
	if len(ph.threads) != 1 {
		return true
	}
	_, onlyMain := ph.threads[mem.MainThread]
	return !onlyMain
}

// bodyFor builds the thread body replaying t's operation stream. t may
// be nil (a declared serial phase with no records), which yields an
// empty body.
func bodyFor(rt *replayThread) exec.Body {
	if rt == nil {
		return func(*exec.T) {}
	}
	ops := rt.ops
	// endInstrs counts the accesses themselves; lastIP is the instruction
	// index of the final access, so the difference is pure trailing
	// compute.
	trailing := uint64(0)
	if rt.sawEnd && rt.endInstrs > rt.lastIP {
		trailing = rt.endInstrs - rt.lastIP
	}
	return func(t *exec.T) {
		for i := range ops {
			op := &ops[i]
			if op.gap > 0 {
				t.Compute(int(op.gap))
			}
			if op.write {
				t.StoreN(op.addr, op.size)
			} else {
				t.LoadN(op.addr, op.size)
			}
		}
		if trailing > 0 {
			t.Compute(int(trailing))
		}
	}
}
