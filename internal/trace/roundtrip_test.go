package trace_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	cheetah "repro"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// densePMU is the dense sampling configuration the detection tests use.
func densePMU() pmu.Config {
	return pmu.Config{Period: 64, Jitter: 24, HandlerCycles: 4, SetupCycles: 0}
}

// canonicalReport renders everything the detection report contains —
// instance formatting, word-level classification, EQ(1)-EQ(4) assessment
// numbers, and the candidate list — as one string for byte-for-byte
// comparison.
func canonicalReport(rep *cheetah.Report) string {
	var b strings.Builder
	b.WriteString(rep.Format())
	for i := range rep.Instances {
		b.WriteString(rep.Instances[i].FormatWords())
	}
	fmt.Fprintf(&b, "candidates %d\n", len(rep.Candidates))
	for _, c := range rep.Candidates {
		fmt.Fprintf(&b, "  %v..%v fs=%v inv=%d acc=%d cyc=%d swf=%f improve=%f\n",
			c.Object.Start, c.Object.End, c.FalseSharing, c.Invalidations,
			c.Accesses, c.Cycles, c.SharedWordFraction, c.Assessment.Improvement)
	}
	return b.String()
}

// recordProfile profiles the workload with a full recorder attached and
// returns the report, the run result and the trace bytes.
func recordProfile(t *testing.T, name string, threads int, scale float64, cores int, binary bool) (*cheetah.Report, cheetah.Result, []byte) {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	sys := cheetah.New(cheetah.Config{Cores: cores})
	prog := w.Build(sys, workload.Params{Threads: threads, Scale: scale})
	var buf bytes.Buffer
	var enc trace.Encoder
	if binary {
		enc = trace.NewBinaryEncoder(&buf)
	} else {
		enc = trace.NewTextEncoder(&buf)
	}
	rec := trace.NewRecorder(enc, sys.Heap(), sys.Globals())
	prof := sys.NewProfiler(cheetah.ProfileOptions{PMU: densePMU()})
	res := sys.RunWith(prog, append(prof.Probes(), rec)...)
	if err := rec.Err(); err != nil {
		t.Fatalf("recording: %v", err)
	}
	return prof.Report(), res, buf.Bytes()
}

// replayProfile replays a trace on a fresh system and profiles it.
func replayProfile(t *testing.T, data []byte) (*cheetah.Report, cheetah.Result) {
	t.Helper()
	rp, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	sys := cheetah.New(cheetah.Config{Cores: rp.Cores})
	if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
		t.Fatalf("preparing trace: %v", err)
	}
	rep, res := sys.Profile(rp.Program(), cheetah.ProfileOptions{PMU: densePMU()})
	return rep, res
}

// TestRoundTripByteIdentical is the subsystem's headline invariant:
// record any workload, replay the trace, and the detection report is
// byte-identical to profiling the original program — across workloads
// with globals (figure1), heap objects (linear_regression), a persistent
// thread pool (streamcluster), and minor false sharing (histogram), in
// both framings.
func TestRoundTripByteIdentical(t *testing.T) {
	cases := []struct {
		name   string
		scale  float64
		binary bool
		// wantFS asserts the recorded run itself detected something, so
		// identity is established on a non-trivial report.
		wantFS bool
	}{
		{name: "figure1", scale: 0.1, binary: false, wantFS: true},
		{name: "linear_regression", scale: 0.2, binary: true, wantFS: true},
		{name: "streamcluster", scale: 0.1, binary: false, wantFS: false},
		{name: "histogram", scale: 0.1, binary: true, wantFS: false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			scale := tc.scale
			if testing.Short() {
				scale /= 2
			}
			rep1, res1, data := recordProfile(t, tc.name, 4, scale, 8, tc.binary)
			if tc.wantFS && !testing.Short() && len(rep1.Instances) == 0 {
				t.Errorf("recorded run reported no instances; identity check is trivial")
			}
			rep2, res2 := replayProfile(t, data)
			if res1.TotalCycles != res2.TotalCycles {
				t.Errorf("runtime: recorded %d cycles, replayed %d", res1.TotalCycles, res2.TotalCycles)
			}
			if len(res1.Threads) != len(res2.Threads) {
				t.Errorf("thread records: recorded %d, replayed %d", len(res1.Threads), len(res2.Threads))
			}
			want, got := canonicalReport(rep1), canonicalReport(rep2)
			if want != got {
				t.Errorf("replayed report differs from recorded run\n--- recorded ---\n%s\n--- replayed ---\n%s", want, got)
			}
		})
	}
}

// TestRoundTripWithUnallocatedHeapAccesses: a program that touches
// heap-region addresses no object covers (the profiler accepts them by
// region and reports them as unknown objects) must still round-trip
// byte-identically — the replayer may not remap in-segment addresses.
func TestRoundTripWithUnallocatedHeapAccesses(t *testing.T) {
	build := func(sys *cheetah.System) cheetah.Program {
		obj := sys.Heap().Malloc(0, 16, nil)
		bodies := make([]cheetah.Body, 3)
		for i := range bodies {
			i := i
			bodies[i] = func(tt *cheetah.T) {
				for j := 0; j < 3000; j++ {
					// Word i of the allocated object, plus a stray
					// store far past it: same superblock, no object.
					tt.Store(obj.Add(i * 4))
					tt.Store(obj.Add(4096 + i*4))
					tt.Compute(2)
				}
			}
		}
		return cheetah.Program{Name: "stray", Phases: []cheetah.Phase{
			cheetah.ParallelPhase("work", bodies...),
		}}
	}
	sys := cheetah.New(cheetah.Config{Cores: 8})
	prog := build(sys)
	var buf bytes.Buffer
	rec := trace.NewRecorder(trace.NewTextEncoder(&buf), sys.Heap(), sys.Globals())
	prof := sys.NewProfiler(cheetah.ProfileOptions{PMU: densePMU()})
	res1 := sys.RunWith(prog, append(prof.Probes(), rec)...)
	if err := rec.Err(); err != nil {
		t.Fatalf("recording: %v", err)
	}
	rep1 := prof.Report()
	if rep1.Samples == 0 {
		t.Fatal("no samples in recorded run")
	}
	rep2, res2 := replayProfile(t, buf.Bytes())
	if res1.TotalCycles != res2.TotalCycles {
		t.Errorf("runtime: recorded %d cycles, replayed %d", res1.TotalCycles, res2.TotalCycles)
	}
	if want, got := canonicalReport(rep1), canonicalReport(rep2); want != got {
		t.Errorf("replayed report differs\n--- recorded ---\n%s\n--- replayed ---\n%s", want, got)
	}
}

// TestRoundTripWithMidRunAllocation: objects allocated during execution
// (from a serial-phase body, the engine's single-threaded window) must
// appear in the trace's layout snapshot — it is taken at program end —
// so the replayed report still names their allocation sites.
func TestRoundTripWithMidRunAllocation(t *testing.T) {
	build := func(sys *cheetah.System) cheetah.Program {
		var obj mem.Addr
		setup := cheetah.SerialPhase("setup", func(tt *cheetah.T) {
			obj = sys.Heap().Malloc(0, 16,
				heap.Stack(heap.Frame{File: "midrun.c", Line: 77}))
			for i := 0; i < 8; i++ {
				tt.Store(obj.Add(i % 4 * 4))
				tt.Compute(2)
			}
		})
		bodies := make([]cheetah.Body, 3)
		for i := range bodies {
			i := i
			bodies[i] = func(tt *cheetah.T) {
				for j := 0; j < 4000; j++ {
					tt.Store(obj.Add(i * 4))
					tt.Compute(1)
				}
			}
		}
		return cheetah.Program{Name: "midrun", Phases: []cheetah.Phase{
			setup, cheetah.ParallelPhase("work", bodies...),
		}}
	}
	sys := cheetah.New(cheetah.Config{Cores: 8})
	prog := build(sys)
	var buf bytes.Buffer
	rec := trace.NewRecorder(trace.NewTextEncoder(&buf), sys.Heap(), sys.Globals())
	prof := sys.NewProfiler(cheetah.ProfileOptions{PMU: densePMU()})
	sys.RunWith(prog, append(prof.Probes(), rec)...)
	if err := rec.Err(); err != nil {
		t.Fatalf("recording: %v", err)
	}
	rep1 := prof.Report()
	if !strings.Contains(buf.String(), "midrun.c:77") {
		t.Fatal("mid-run allocation missing from trace layout snapshot")
	}
	rep2, _ := replayProfile(t, buf.Bytes())
	if want, got := canonicalReport(rep1), canonicalReport(rep2); want != got {
		t.Errorf("replayed report differs\n--- recorded ---\n%s\n--- replayed ---\n%s", want, got)
	}
	if len(rep1.Instances) == 0 {
		t.Error("mid-run-allocated object not reported; identity check is trivial")
	}
}

// TestRecorderDoesNotPerturbProfile: a profile with a recorder attached
// must equal a plain profile — the recorder charges zero cycles.
func TestRecorderDoesNotPerturbProfile(t *testing.T) {
	w, _ := workload.ByName("figure1")
	sys1 := cheetah.New(cheetah.Config{Cores: 8})
	prog1 := w.Build(sys1, workload.Params{Threads: 4, Scale: 0.05})
	plain, _ := sys1.Profile(prog1, cheetah.ProfileOptions{PMU: densePMU()})

	rep, _, _ := recordProfile(t, "figure1", 4, 0.05, 8, false)
	if canonicalReport(plain) != canonicalReport(rep) {
		t.Error("attaching the recorder changed the detection report")
	}
}

// TestSampledTraceReplays: sampled traces are much smaller and still
// replay to a runnable program that profiles without error.
func TestSampledTraceReplays(t *testing.T) {
	w, _ := workload.ByName("figure1")
	sys := cheetah.New(cheetah.Config{Cores: 8})
	prog := w.Build(sys, workload.Params{Threads: 4, Scale: 0.05})
	var full, sampled bytes.Buffer
	rec := trace.NewRecorder(trace.NewTextEncoder(&full), sys.Heap(), sys.Globals())
	sr := trace.NewSampledRecorder(densePMU(), trace.NewTextEncoder(&sampled), sys.Heap(), sys.Globals())
	sys.RunWith(prog, append([]exec.Probe{rec}, sr.Probes()...)...)
	if err := rec.Err(); err != nil {
		t.Fatalf("full recorder: %v", err)
	}
	if err := sr.Err(); err != nil {
		t.Fatalf("sampled recorder: %v", err)
	}
	if sampled.Len() >= full.Len() {
		t.Errorf("sampled trace (%d bytes) not smaller than full trace (%d bytes)", sampled.Len(), full.Len())
	}
	rep, res := replayProfile(t, sampled.Bytes())
	if res.TotalCycles == 0 {
		t.Error("sampled replay did not run")
	}
	if rep.Samples == 0 {
		t.Error("sampled replay produced no samples under dense profiling")
	}
}

// TestSampledRecorderDoesNotPerturbRun: the sampled recorder's private
// PMU must charge nothing to the observed execution.
func TestSampledRecorderDoesNotPerturbRun(t *testing.T) {
	w, _ := workload.ByName("figure1")
	sys1 := cheetah.New(cheetah.Config{Cores: 8})
	res1 := sys1.Run(w.Build(sys1, workload.Params{Threads: 4, Scale: 0.05}))

	sys2 := cheetah.New(cheetah.Config{Cores: 8})
	prog2 := w.Build(sys2, workload.Params{Threads: 4, Scale: 0.05})
	var buf bytes.Buffer
	sr := trace.NewSampledRecorder(pmu.Config{Period: 64, Jitter: 24, HandlerCycles: 999, SetupCycles: 999},
		trace.NewTextEncoder(&buf), sys2.Heap(), sys2.Globals())
	res2 := sys2.RunWith(prog2, sr.Probes()...)
	if res1.TotalCycles != res2.TotalCycles {
		t.Errorf("sampled recorder perturbed the run: %d vs %d cycles", res1.TotalCycles, res2.TotalCycles)
	}
}
