package trace

import (
	"fmt"
	"io"
	"os"
)

// Meta summarizes a trace without building a Replay: identity, framing,
// and structural counts. It exists for header inspection (`cheetah
// -trace-info`) and shard planning, where decoding every access into
// operation lists — what ReadFile does — would cost the whole file's
// memory for an answer a scan (or, for indexed traces, the index alone)
// provides.
type Meta struct {
	// Name and Cores are the recorded program identity.
	Name  string
	Cores int
	// Framing is the detected framing ("text", "binary v2", ...).
	Framing string
	// Indexed reports a seekable v3 index block.
	Indexed bool
	// Accesses, Symbols and Objects count the trace's records.
	Accesses uint64
	Symbols  uint64
	Objects  uint64
	// Phases counts declared phases; MaxPhase is the highest phase index
	// seen on any record (-1 for a trace with no phase activity).
	Phases   int
	MaxPhase int
	// Threads counts distinct thread ids with access or thread-end
	// records.
	Threads int
	// Notes are the trace's provenance notes (`key=value` text) in
	// stream order; the importers record skip/drop tallies here.
	Notes []string
}

// ReadMeta scans a whole trace stream for its metadata, retaining
// nothing but counters: memory is O(threads + phases) however large the
// trace. It applies the same structural checks as Read (missing or
// duplicate program record, zero core count).
func ReadMeta(r io.Reader) (*Meta, error) {
	m := &Meta{MaxPhase: -1}
	d := NewDecoder(r)
	sawProgram := false
	phases := make(map[int]bool)
	threads := make(map[int64]bool)
	phase := func(idx int) {
		if idx > m.MaxPhase {
			m.MaxPhase = idx
		}
	}
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case KindProgram:
			if sawProgram {
				return nil, fmt.Errorf("trace: duplicate #program record")
			}
			sawProgram = true
			m.Name = ev.Name
			m.Cores = ev.Cores
		case KindSymbol:
			m.Symbols++
		case KindObject:
			m.Objects++
		case KindPhase:
			if !phases[ev.Phase] {
				phases[ev.Phase] = true
				m.Phases++
			}
			phase(ev.Phase)
		case KindThreadEnd:
			threads[int64(ev.TID)] = true
			phase(ev.Phase)
		case KindAccess:
			m.Accesses++
			threads[int64(ev.TID)] = true
			phase(ev.Phase)
		case KindNote:
			m.Notes = append(m.Notes, ev.Name)
		}
	}
	if !sawProgram {
		return nil, fmt.Errorf("trace: missing #program record")
	}
	if m.Cores == 0 {
		m.Cores = 1
	}
	m.Threads = len(threads)
	m.Framing = d.Framing()
	m.Indexed = d.Indexed()
	return m, nil
}

// ReadMetaFile returns the trace's metadata, lazily: an indexed trace
// answers from its index and layout regions without touching the access
// records at all; anything else falls back to the ReadMeta scan.
func ReadMetaFile(path string) (*Meta, error) {
	if FileIsIndexed(path) {
		if sh, err := sharedFor(path); err == nil {
			m := &Meta{
				Name: sh.name, Cores: sh.cores,
				Framing: fmt.Sprintf("binary v%d", BinaryV3), Indexed: true,
				Accesses: sh.idx.accesses, Symbols: sh.symbols, Objects: sh.objects,
				Phases: len(sh.segs), MaxPhase: sh.maxPhase,
				Threads: len(threadUnion(sh)),
				Notes:   sh.notes,
			}
			return m, nil
		}
		// A broken index falls through to the sequential scan, which
		// reports the stream's own error if the records are broken too.
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMeta(f)
}

func threadUnion(sh *streamShared) map[int64]bool {
	tids := make(map[int64]bool)
	for _, ss := range sh.segs {
		for _, tid := range ss.tids {
			tids[int64(tid)] = true
		}
	}
	return tids
}
