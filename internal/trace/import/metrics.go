package traceimport

import "repro/internal/obs"

// Import observability: converted-sample and per-reason skip counters,
// labeled by name only (one process rarely imports both formats, and
// the per-trace breakdown lives in the output's provenance notes).
// Imports run once per invocation, so everything here is off any hot
// path.
var (
	mSamples = obs.GetCounter("cheetah_import_samples_total",
		"PMU dump rows converted into trace accesses.")
	mSkipParse = obs.GetCounter("cheetah_import_skipped_parse_total",
		"PMU dump rows dropped because their fields did not parse.")
	mSkipNonMem = obs.GetCounter("cheetah_import_skipped_nonmem_total",
		"PMU dump rows dropped because they are not memory loads/stores.")
	mSkipKernel = obs.GetCounter("cheetah_import_skipped_kernel_total",
		"PMU dump rows dropped for kernel-half, null, or out-of-range addresses.")
)

// recordMetrics publishes one finished import's tally.
func recordMetrics(st *Stats) {
	mSamples.Add(uint64(st.Samples))
	mSkipParse.Add(uint64(st.SkippedParse))
	mSkipNonMem.Add(uint64(st.SkippedNonMem))
	mSkipKernel.Add(uint64(st.SkippedKernel))
}
