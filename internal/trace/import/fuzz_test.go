package traceimport_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	traceimport "repro/internal/trace/import"
)

// fuzzImportSeeds: the real fixtures plus near-valid corruptions of the
// shapes each parser keys on.
func fuzzImportSeeds(f *testing.F, fixture string, extra ...string) {
	f.Helper()
	if data, err := os.ReadFile(filepath.Join("testdata", fixture)); err == nil {
		f.Add(data)
		if len(data) > 40 {
			f.Add(data[:len(data)-17]) // truncated mid-line
		}
	}
	for _, s := range extra {
		f.Add([]byte(s))
	}
}

// fuzzImport drives one importer: any input must either error or
// produce a trace that the native decoder accepts in full — an importer
// must never emit an undecodable or replay-rejected stream.
func fuzzImport(t *testing.T, data []byte, imp func(*bytes.Reader, trace.Encoder) (traceimport.Stats, error)) {
	var out bytes.Buffer
	st, err := imp(bytes.NewReader(data), trace.NewBinaryEncoder(&out))
	if err != nil {
		return
	}
	if st.Samples == 0 {
		t.Error("import succeeded with zero samples")
	}
	rp, err := trace.Read(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Errorf("imported trace does not decode: %v", err)
		return
	}
	if rp.Accesses == 0 || rp.Cores <= 0 {
		t.Errorf("imported trace is degenerate: %d accesses, %d cores", rp.Accesses, rp.Cores)
	}
}

func FuzzImportPerf(f *testing.F) {
	fuzzImportSeeds(f, "perf-mem.script",
		"app 1 [000] 1.000000: cpu/mem-loads,ldlat=30/P: 55d8 7f2a 10\n",
		"app 1/2 [000] 1.000000: 3 cpu/mem-stores/P: 55d8 [unknown] 7f2a\n",
		"app 1 1.000000: cycles: 55d8 7f2a 10\n",
		"1.5: x:\n",
		"# comment\n\napp NaN [x] 1.0.0: mem-loads:\n",
	)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzImport(t, data, func(r *bytes.Reader, enc trace.Encoder) (traceimport.Stats, error) {
			return traceimport.ImportPerfScript(r, enc, traceimport.Options{})
		})
	})
}

func FuzzImportIBS(f *testing.F) {
	fuzzImportSeeds(f, "ibs-samples.csv",
		"tsc,tid,ibs_ld_op,ibs_st_op,ibs_dc_lin_ad\n100,1,1,0,0x7ffd10\n",
		"tsc,tid,op,addr\n100,1,ld,0x7ffd10\n",
		"tsc,tid,op,addr\n100,1,xx,0x7ffd10\n",
		"tsc,cpu\n1,2\n",
		"tsc,tid,op,addr,lat\n18446744073709551615,1,st,ffffffffffffffff,99\n",
	)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzImport(t, data, func(r *bytes.Reader, enc trace.Encoder) (traceimport.Stats, error) {
			return traceimport.ImportIBS(r, enc, traceimport.Options{})
		})
	})
}
