package traceimport

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// ImportPerfScript converts `perf script` text output of a `perf mem
// record` session into a native trace written to enc.
//
// The supported invocation is:
//
//	perf mem record -- <command>
//	perf script -F comm,tid,time,event,ip,addr,weight
//
// which renders one sample per line:
//
//	<comm> <tid> [<cpu>] <time>: <event>: <ip> <addr> <weight> ...
//
// e.g.
//
//	lr_worker  4821 181999.324867: cpu/mem-loads,ldlat=30/P: 55d8f9d0a1b2 7f2a1c044040 120
//
// Parsing is token-based and tolerant of the fields perf interleaves in
// other configurations: a `pid/tid` pair is accepted where a tid is
// expected (the tid half is used), bracketed `[cpu]` tokens and a
// leading period count are skipped, and symbol decorations after the
// raw ip/addr values (`func+0x10`, `[unknown]`, `(/usr/bin/app)`) are
// ignored. Lines whose event is not a memory load/store (e.g. plain
// `cycles:` samples) and samples with kernel-half or null data
// addresses are counted in Stats.Skipped rather than failing the
// import, so a mixed-event dump imports its memory samples.
//
// The weight column, when present, becomes the access latency; replay
// recomputes latencies through the simulator, so it is carried for
// external analysis only. perf does not report the access width, so
// imported accesses replay at word width.
func ImportPerfScript(r io.Reader, enc trace.Encoder, o Options) (Stats, error) {
	const (
		nsPerSec     = 1e9
		defaultScale = 0.01 // instructions per nanosecond (see Options.TimeScale)
		defaultGapNs = 1e6  // 1 ms of sample silence starts a new phase
		defaultName  = "perf-import"
	)
	sc := lineScanner(r)
	var (
		st      Stats
		samples []sample
		comm    string
		lineno  int
	)
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, rowComm, skip := parsePerfLine(line)
		if skip != skipNone {
			st.count(skip)
			continue
		}
		if comm == "" {
			comm = rowComm
		}
		if len(samples) >= MaxSamples {
			return st, fmt.Errorf("import: line %d: more than %d samples", lineno, MaxSamples)
		}
		s.t *= nsPerSec
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("import: line %d: %w", lineno+1, err)
	}
	name := comm
	if name == "" {
		name = defaultName
	}
	if o.ProgramName == "" {
		o.ProgramName = name
	}
	err := convert(samples, enc, o, name, "perf-script", defaultScale, defaultGapNs, &st)
	return st, err
}

// parsePerfLine parses one perf script sample line. A non-skipNone
// reason marks a line that is recognizable but not convertible (wrong
// event kind, unusable address, missing fields) — the caller tallies
// it by reason instead of failing the import.
func parsePerfLine(line string) (s sample, comm string, skip skipReason) {
	toks := strings.Fields(line)
	// Locate the timestamp: the first `seconds.fraction:` token.
	timeIdx := -1
	var t float64
	for i, tok := range toks {
		v, isTime := parsePerfTime(tok)
		if isTime {
			timeIdx, t = i, v
			break
		}
	}
	if timeIdx < 0 {
		return sample{}, "", skipParse
	}
	// The tid precedes the timestamp, possibly as `pid/tid`, with an
	// optional bracketed cpu between them; the comm precedes the tid.
	tid, tidIdx := uint64(0), -1
	for i := timeIdx - 1; i >= 0; i-- {
		tok := toks[i]
		if strings.HasPrefix(tok, "[") && strings.HasSuffix(tok, "]") {
			continue // [cpu]
		}
		if slash := strings.IndexByte(tok, '/'); slash >= 0 {
			tok = tok[slash+1:]
		}
		v, err := strconv.ParseUint(tok, 10, 32)
		if err != nil {
			return sample{}, "", skipParse
		}
		tid, tidIdx = v, i
		break
	}
	if tidIdx < 0 {
		return sample{}, "", skipParse
	}
	if tidIdx > 0 {
		comm = strings.Join(toks[:tidIdx], " ")
	}
	// The event name: the next `name:` token after the timestamp (an
	// intervening bare integer is a period count).
	evIdx := -1
	var write bool
	for i := timeIdx + 1; i < len(toks); i++ {
		tok := toks[i]
		if _, err := strconv.ParseUint(tok, 10, 64); err == nil {
			continue // period
		}
		if !strings.HasSuffix(tok, ":") {
			return sample{}, "", skipParse
		}
		name := strings.ToLower(strings.TrimSuffix(tok, ":"))
		switch {
		case strings.Contains(name, "load"):
			write = false
		case strings.Contains(name, "store"):
			write = true
		default:
			return sample{}, "", skipNonMem
		}
		evIdx = i
		break
	}
	if evIdx < 0 {
		return sample{}, "", skipParse
	}
	// After the event: the first two bare-hex tokens are ip and addr
	// (symbol decorations between and after them are skipped), then the
	// first decimal token after the addr is the weight.
	var hexes []uint64
	addrIdx := -1
	for i := evIdx + 1; i < len(toks) && len(hexes) < 2; i++ {
		if v, err := parseHexToken(toks[i]); err == nil {
			hexes = append(hexes, v)
			addrIdx = i
		}
	}
	if len(hexes) < 2 {
		return sample{}, "", skipParse
	}
	// hexes[0] is the instruction pointer; the simulated ip column is a
	// retired-instruction count synthesized from timestamps, so the real
	// code address is not carried into the trace.
	addr := hexes[1]
	if !usableAddr(addr) {
		return sample{}, "", skipKernel
	}
	weight := uint64(0)
	for i := addrIdx + 1; i < len(toks); i++ {
		if v, err := strconv.ParseUint(toks[i], 10, 64); err == nil {
			weight = v
			break
		}
	}
	if weight > 1<<32-1 {
		weight = 1<<32 - 1
	}
	return sample{tid: tid, t: t, addr: addr, lat: uint32(weight), write: write}, comm, skipNone
}

// parsePerfTime parses a `seconds.fraction:` timestamp token.
func parsePerfTime(tok string) (float64, bool) {
	if !strings.HasSuffix(tok, ":") || !strings.Contains(tok, ".") {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(tok, ":"), 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// parseHexToken parses a bare or 0x-prefixed hex value, rejecting
// decorated tokens (symbols, offsets, brackets).
func parseHexToken(tok string) (uint64, error) {
	tok = strings.TrimPrefix(strings.ToLower(tok), "0x")
	if tok == "" {
		return 0, fmt.Errorf("empty")
	}
	return strconv.ParseUint(tok, 16, 64)
}
