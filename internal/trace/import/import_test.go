package traceimport_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	cheetah "repro"
	"repro/internal/exec"
	"repro/internal/pmu"
	"repro/internal/trace"
	traceimport "repro/internal/trace/import"
)

func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// importToText runs an importer over a fixture and returns the native
// text-framed trace it produces.
func importToText(t *testing.T, fixture string, imp func(*bytes.Reader, trace.Encoder) (traceimport.Stats, error)) ([]byte, traceimport.Stats) {
	t.Helper()
	var out bytes.Buffer
	st, err := imp(bytes.NewReader(readFixture(t, fixture)), trace.NewTextEncoder(&out))
	if err != nil {
		t.Fatalf("import %s: %v", fixture, err)
	}
	return out.Bytes(), st
}

func importPerf(r *bytes.Reader, enc trace.Encoder) (traceimport.Stats, error) {
	return traceimport.ImportPerfScript(r, enc, traceimport.Options{})
}

func importIBS(r *bytes.Reader, enc trace.Encoder) (traceimport.Stats, error) {
	return traceimport.ImportIBS(r, enc, traceimport.Options{})
}

// TestImportPerfScriptFixture pins the perf importer's synthesis on the
// checked-in fixture: thread remapping, phase splitting, skip counting,
// and byte-exact output against the golden trace.
func TestImportPerfScriptFixture(t *testing.T) {
	got, st := importToText(t, "perf-mem.script", importPerf)
	if st.Threads != 4 {
		t.Errorf("Threads = %d, want 4", st.Threads)
	}
	// Two sample bursts plus the tolerated stragglers after a long gap.
	if st.Phases != 3 {
		t.Errorf("Phases = %d, want 3", st.Phases)
	}
	// The cycles: event and the kernel-address sample must be skipped,
	// each under its own reason.
	if st.Skipped != 2 || st.SkippedNonMem != 1 || st.SkippedKernel != 1 || st.SkippedParse != 0 {
		t.Errorf("skip tally = %d (parse %d, nonmem %d, kernel %d), want 2 (0, 1, 1)",
			st.Skipped, st.SkippedParse, st.SkippedNonMem, st.SkippedKernel)
	}
	if st.Samples != 114 {
		t.Errorf("Samples = %d, want 114", st.Samples)
	}
	compareGolden(t, "perf-mem.golden.trace", got)

	rp, err := trace.Read(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("imported trace does not decode: %v", err)
	}
	if rp.Name != "fs_app" {
		t.Errorf("program name = %q, want the dump's comm %q", rp.Name, "fs_app")
	}
	if rp.Cores != 4 {
		t.Errorf("cores = %d, want 4 (one per sampled thread)", rp.Cores)
	}

	// The skip tally must ride along in the trace itself as notes, so
	// `cheetah -trace-info` can report it long after the import.
	m, err := trace.ReadMeta(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("ReadMeta on imported trace: %v", err)
	}
	wantNotes := []string{
		"import.source=perf-script",
		"import.skipped_nonmem=1",
		"import.skipped_kernel=1",
	}
	if fmt.Sprint(m.Notes) != fmt.Sprint(wantNotes) {
		t.Errorf("Notes = %v, want %v", m.Notes, wantNotes)
	}
}

// TestImportIBSFixture pins the IBS importer on its fixture.
func TestImportIBSFixture(t *testing.T) {
	got, st := importToText(t, "ibs-samples.csv", importIBS)
	if st.Threads != 2 {
		t.Errorf("Threads = %d, want 2", st.Threads)
	}
	if st.Phases != 2 {
		t.Errorf("Phases = %d, want 2", st.Phases)
	}
	// 10 non-memory op rows plus the kernel-address row.
	if st.Skipped != 11 || st.SkippedNonMem != 10 || st.SkippedKernel != 1 || st.SkippedParse != 0 {
		t.Errorf("skip tally = %d (parse %d, nonmem %d, kernel %d), want 11 (0, 10, 1)",
			st.Skipped, st.SkippedParse, st.SkippedNonMem, st.SkippedKernel)
	}
	compareGolden(t, "ibs-samples.golden.trace", got)

	rp, err := trace.Read(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("imported trace does not decode: %v", err)
	}
	if rp.Cores != 2 {
		t.Errorf("cores = %d, want 2", rp.Cores)
	}
}

// compareGolden diffs got against the checked-in golden file;
// CHEETAH_REGEN_IMPORT_GOLDEN=1 rewrites it instead.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("CHEETAH_REGEN_IMPORT_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (set CHEETAH_REGEN_IMPORT_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("imported trace differs from %s (set CHEETAH_REGEN_IMPORT_GOLDEN=1 after intentional changes)\ngot %d bytes, want %d", name, len(got), len(want))
	}
}

// profileImported replays an imported trace under a fixed PMU and
// scheduler and renders the detection report.
func profileImported(t *testing.T, data []byte, sched string) string {
	t.Helper()
	rp, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("reading imported trace: %v", err)
	}
	sys := cheetah.New(cheetah.Config{Cores: rp.Cores, Engine: exec.Config{Sched: sched}})
	if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
		t.Fatalf("preparing imported trace: %v", err)
	}
	rep, res := sys.Profile(rp.Program(), cheetah.ProfileOptions{
		PMU: pmu.Config{Period: 64, Jitter: 24, HandlerCycles: 4},
	})
	var b strings.Builder
	b.WriteString(rep.Format())
	for i := range rep.Instances {
		b.WriteString(rep.Instances[i].FormatWords())
	}
	fmt.Fprintf(&b, "runtime %d cycles across %d phases\n", res.TotalCycles, len(res.Phases))
	return b.String()
}

// TestImportedTraceReplaysDeterministically is the acceptance bar: an
// imported real-PMU trace replays to a byte-identical detection report
// across runs and across schedulers, in both framings.
func TestImportedTraceReplaysDeterministically(t *testing.T) {
	for _, fixture := range []struct {
		name string
		imp  func(*bytes.Reader, trace.Encoder) (traceimport.Stats, error)
	}{
		{"perf-mem.script", importPerf},
		{"ibs-samples.csv", importIBS},
	} {
		fixture := fixture
		t.Run(fixture.name, func(t *testing.T) {
			text, _ := importToText(t, fixture.name, fixture.imp)
			var bin bytes.Buffer
			if _, err := fixture.imp(bytes.NewReader(readFixture(t, fixture.name)), trace.NewBinaryEncoder(&bin)); err != nil {
				t.Fatalf("binary import: %v", err)
			}

			base := profileImported(t, text, "")
			if again := profileImported(t, text, ""); again != base {
				t.Error("two replays of the same imported trace diverge")
			}
			if cal := profileImported(t, text, exec.SchedCalendar); cal != base {
				t.Error("calendar-scheduler replay diverges from heap replay")
			}
			if b := profileImported(t, bin.Bytes(), ""); b != base {
				t.Error("binary-framed import replays differently from text-framed import")
			}
			if !strings.Contains(base, "fs_app") && fixture.name == "perf-mem.script" {
				t.Errorf("report does not name the imported program:\n%s", base)
			}
		})
	}
}

// TestImportErrors: structurally unusable inputs fail with diagnostics
// instead of producing empty traces.
func TestImportErrors(t *testing.T) {
	cases := []struct {
		name string
		imp  func(*bytes.Reader, trace.Encoder) (traceimport.Stats, error)
		in   string
		want string
	}{
		{"perf empty", importPerf, "", "no usable memory samples"},
		{"perf no mem events", importPerf,
			"app 1 [000] 1.000000: cycles: 55d8 7f2a 0\n", "no usable memory samples"},
		{"ibs empty", importIBS, "", "no IBS header"},
		{"ibs missing columns", importIBS, "tsc,cpu,pid\n1,2,3\n", "missing required columns"},
		{"ibs header only", importIBS,
			"tsc,tid,ibs_ld_op,ibs_st_op,ibs_dc_lin_ad\n", "no usable memory samples"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			_, err := tc.imp(bytes.NewReader([]byte(tc.in)), trace.NewTextEncoder(&out))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestImportOptions: explicit cores/name/phase-gap options override the
// synthesized defaults.
func TestImportOptions(t *testing.T) {
	var out bytes.Buffer
	_, err := traceimport.ImportPerfScript(bytes.NewReader(readFixture(t, "perf-mem.script")),
		trace.NewTextEncoder(&out),
		traceimport.Options{ProgramName: "renamed", Cores: 16, PhaseGap: -1})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := trace.Read(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name != "renamed" {
		t.Errorf("name = %q, want %q", rp.Name, "renamed")
	}
	if rp.Cores != 16 {
		t.Errorf("cores = %d, want 16", rp.Cores)
	}
	if strings.Count(out.String(), "#phase") != 1 {
		t.Errorf("PhaseGap<0 should disable splitting; got %d phases", strings.Count(out.String(), "#phase"))
	}
}
