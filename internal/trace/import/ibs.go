package traceimport

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// ImportIBS converts AMD IBS op-sample dump rows (the CSV produced by
// IBS decoding tools in the style of the AMD Research IBS toolkit) into
// a native trace written to enc.
//
// The input is a comma-separated file whose first non-empty, non-`#`
// line is a header naming the columns. Column names are matched
// case-insensitively against the spellings the common decoders emit:
//
//   - thread id (required): tid, thread, thread_id
//   - timestamp (required): tsc, timestamp, time, cycles
//   - data linear address (required): ibs_dc_lin_ad, dc_lin_ad,
//     dc_lin_addr, lin_ad, lin_addr, addr, address
//   - load/store (required): either a single op column (op, mem_op;
//     values ld/st/load/store) or separate 0/1 flag columns
//     (ibs_ld_op/ld_op/load and ibs_st_op/st_op/store)
//   - load latency (optional): ibs_dc_miss_lat, dc_miss_lat, miss_lat,
//     lat, latency, weight
//   - access width in bytes (optional): ibs_op_mem_width, mem_width,
//     width, size
//
// Rows that decode to neither a load nor a store (non-memory ops
// tagged along in the dump), rows with kernel-half or null linear
// addresses, and rows with malformed numeric cells are counted in
// Stats.Skipped. Numeric cells accept decimal or 0x-prefixed hex; the
// address column additionally accepts bare hex.
func ImportIBS(r io.Reader, enc trace.Encoder, o Options) (Stats, error) {
	const (
		defaultScale  = 0.1 // instructions per cycle (see Options.TimeScale)
		defaultGapTSC = 1e6 // a million idle cycles starts a new phase
		defaultName   = "ibs-import"
	)
	sc := lineScanner(r)
	var (
		st      Stats
		cols    *ibsColumns
		samples []sample
		lineno  int
	)
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if cols == nil {
			c, err := parseIBSHeader(line)
			if err != nil {
				return Stats{}, fmt.Errorf("import: line %d: %w", lineno, err)
			}
			cols = c
			continue
		}
		s, skip := cols.parseRow(line)
		if skip != skipNone {
			st.count(skip)
			continue
		}
		if len(samples) >= MaxSamples {
			return st, fmt.Errorf("import: line %d: more than %d samples", lineno, MaxSamples)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("import: line %d: %w", lineno+1, err)
	}
	if cols == nil {
		return Stats{}, fmt.Errorf("import: no IBS header row found")
	}
	err := convert(samples, enc, o, defaultName, "ibs-csv", defaultScale, defaultGapTSC, &st)
	return st, err
}

// ibsColumns maps the header's column layout. Indices are -1 when the
// column is absent.
type ibsColumns struct {
	tid, time, addr int
	op, ld, st      int
	lat, width      int
	n               int
}

// maxIBSColumns bounds the column count: header rows past it are
// structural errors, data rows past it are skipped, and neither is
// split first — a megabyte-long comma run must not cost a megabyte of
// field allocations per row.
const maxIBSColumns = 4096

// ibsColumnNames lists the accepted spellings per logical column.
var ibsColumnNames = map[string][]string{
	"tid":   {"tid", "thread", "thread_id"},
	"time":  {"tsc", "timestamp", "time", "cycles"},
	"addr":  {"ibs_dc_lin_ad", "dc_lin_ad", "dc_lin_addr", "lin_ad", "lin_addr", "addr", "address"},
	"op":    {"op", "mem_op"},
	"ld":    {"ibs_ld_op", "ld_op", "load"},
	"st":    {"ibs_st_op", "st_op", "store"},
	"lat":   {"ibs_dc_miss_lat", "dc_miss_lat", "miss_lat", "lat", "latency", "weight"},
	"width": {"ibs_op_mem_width", "mem_width", "width", "size"},
}

func parseIBSHeader(line string) (*ibsColumns, error) {
	if strings.Count(line, ",") >= maxIBSColumns {
		return nil, fmt.Errorf("IBS header has more than %d columns", maxIBSColumns)
	}
	fields := strings.Split(line, ",")
	c := &ibsColumns{tid: -1, time: -1, addr: -1, op: -1, ld: -1, st: -1, lat: -1, width: -1, n: len(fields)}
	dst := map[string]*int{
		"tid": &c.tid, "time": &c.time, "addr": &c.addr,
		"op": &c.op, "ld": &c.ld, "st": &c.st,
		"lat": &c.lat, "width": &c.width,
	}
	for i, f := range fields {
		name := strings.ToLower(strings.TrimSpace(f))
		for logical, spellings := range ibsColumnNames {
			if *dst[logical] != -1 {
				continue
			}
			for _, s := range spellings {
				if name == s {
					*dst[logical] = i
					break
				}
			}
		}
	}
	var missing []string
	for _, req := range []struct {
		what string
		ok   bool
	}{
		{"thread id (tid)", c.tid != -1},
		{"timestamp (tsc)", c.time != -1},
		{"linear address (dc_lin_ad)", c.addr != -1},
		{"load/store (op, or ld_op+st_op)", c.op != -1 || (c.ld != -1 && c.st != -1)},
	} {
		if !req.ok {
			missing = append(missing, req.what)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("IBS header %q is missing required columns: %s", line, strings.Join(missing, "; "))
	}
	return c, nil
}

// parseRow converts one data row; a non-skipNone reason marks a row
// that is not a convertible memory sample.
func (c *ibsColumns) parseRow(line string) (sample, skipReason) {
	if n := strings.Count(line, ","); n+1 < c.n || n >= maxIBSColumns {
		return sample{}, skipParse
	}
	fields := strings.Split(line, ",")
	cell := func(i int) string { return strings.TrimSpace(fields[i]) }

	var write bool
	switch {
	case c.op != -1:
		switch strings.ToLower(cell(c.op)) {
		case "ld", "load", "l", "r":
			write = false
		case "st", "store", "s", "w":
			write = true
		default:
			return sample{}, skipNonMem
		}
	default:
		ld, err1 := parseIBSUint(cell(c.ld), false)
		st, err2 := parseIBSUint(cell(c.st), false)
		if err1 != nil || err2 != nil {
			return sample{}, skipParse
		}
		switch {
		case st != 0:
			write = true
		case ld != 0:
			write = false
		default:
			return sample{}, skipNonMem // neither flag set
		}
	}

	tid, err := parseIBSUint(cell(c.tid), false)
	if err != nil || tid > 1<<31 {
		return sample{}, skipParse
	}
	t, err := parseIBSUint(cell(c.time), false)
	if err != nil {
		return sample{}, skipParse
	}
	addr, err := parseIBSUint(cell(c.addr), true)
	if err != nil {
		return sample{}, skipParse
	}
	if !usableAddr(addr) {
		return sample{}, skipKernel
	}
	s := sample{tid: tid, t: float64(t), addr: addr, write: write}
	if c.lat != -1 {
		if v, err := parseIBSUint(cell(c.lat), false); err == nil {
			if v > 1<<32-1 {
				v = 1<<32 - 1
			}
			s.lat = uint32(v)
		}
	}
	if c.width != -1 {
		if v, err := parseIBSUint(cell(c.width), false); err == nil && v > 0 && v <= 128 {
			s.size = uint8(v)
		}
	}
	return s, skipNone
}

// parseIBSUint parses a numeric cell: decimal or 0x-prefixed hex, plus
// bare hex when the column is an address.
func parseIBSUint(s string, bareHex bool) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty cell")
	}
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return v, nil
	}
	if bareHex {
		return strconv.ParseUint(s, 16, 64)
	}
	return 0, fmt.Errorf("bad numeric cell %q", s)
}
