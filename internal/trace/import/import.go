// Package traceimport converts real-PMU memory-sample dumps — `perf mem
// record` output rendered by `perf script`, and AMD IBS dump rows — into
// the native trace format, so any binary that can be sampled on real
// hardware becomes a `trace:<path>` pseudo-workload for the simulator,
// the harness and both CLIs.
//
// This is the missing half of the paper's pipeline (§2.1, §3.1): Cheetah
// proper consumes IBS address samples from arbitrary programs; our
// recorders (PR 2) only produced traces of simulated runs. An importer
// has strictly less information than a recorder — no heap layout, no
// phase markers, no retired-instruction counts — so it synthesizes what
// replay needs:
//
//   - thread ids: real OS tids are remapped to dense simulated ids
//     (1, 2, ...) in order of first appearance.
//   - phases: one parallel phase per burst of samples; a gap in the
//     global sample timeline longer than Options.PhaseGap starts a new
//     phase (real programs alternate compute bursts and barriers, and
//     sample-free gaps are the visible shadow of that structure).
//   - instruction counts: the trace ip column is a retired-instruction
//     count, which no PMU dump carries per sample. Each sample's ip is
//     synthesized from its timestamp offset within the phase via
//     Options.TimeScale, kept strictly increasing per thread — so replay
//     reconstructs compute gaps proportional to real inter-sample time.
//   - memory layout: none is emitted. Every imported address is foreign
//     to the simulated segments, so the replayer's existing synthesis
//     turns each touched run of cache lines into a `trace:N` heap object
//     (replay.go), exactly as it already does for foreign recorded
//     traces.
//
// Imported traces are approximations in the same sense as sampled
// recordings: they replay deterministically (the acceptance bar is a
// byte-identical report across runs and schedulers), but they do not
// reproduce a ground-truth simulated run, because the original hardware
// execution was never simulated.
//
// Input is parsed line by line; only the compact parsed samples are held
// in memory (the converter needs the whole sample population to count
// threads for the core count and to place phase boundaries before the
// first record is written).
package traceimport

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Limits on imported input. Dumps are user-supplied files, so structural
// fields are bounded before they size anything.
const (
	// MaxLineLen bounds one input line.
	MaxLineLen = 1 << 20
	// MaxSamples bounds the parsed sample population (a perf.data worth
	// of mem samples is typically a few million rows).
	MaxSamples = 1 << 26
	// maxSyntheticPhases keeps gap-splitting from fragmenting a trace
	// into more phases than the format allows.
	maxSyntheticPhases = trace.MaxPhaseIndex
)

// Options tunes an import. The zero value is a sensible default for
// both formats.
type Options struct {
	// ProgramName overrides the synthesized program name (the dump's
	// command name when it carries one, else a format default).
	ProgramName string
	// Cores is the simulated machine size; 0 derives it from the number
	// of distinct sampled threads (at least 2, at most 256).
	Cores int
	// TimeScale converts one native time unit of the dump into simulated
	// instructions: nanoseconds for perf script (default 0.01
	// instructions per ns), cycles for IBS (default 0.1 instructions per
	// cycle). The defaults deliberately compress real time so that
	// typical sample spacings (microseconds apart for perf, hundreds of
	// cycles for IBS) land tens of simulated instructions apart — the
	// spacing our own PMU-sampled recordings have — which keeps the cost
	// and cycle-mode trap density of replaying proportional to the
	// number of samples rather than to the profiled program's wall
	// time. Raise the scale to make replayed compute gaps track real
	// time more faithfully.
	TimeScale float64
	// PhaseGap is the sample-timeline gap that starts a new synthesized
	// phase, in the dump's native time units. 0 uses the format default
	// (1 ms for perf, 1M cycles for IBS); negative disables splitting.
	PhaseGap float64
}

// Stats reports what an import did.
type Stats struct {
	// Samples is the number of memory samples converted.
	Samples int
	// Skipped counts input rows that were recognized but not convertible.
	// It is the sum of the three reason counters below.
	Skipped int
	// SkippedParse counts rows whose fields did not parse (malformed
	// timestamps, truncated lines, bad numeric cells).
	SkippedParse int
	// SkippedNonMem counts well-formed rows that are not memory
	// loads/stores (e.g. plain cycles: samples, non-memory IBS ops).
	SkippedNonMem int
	// SkippedKernel counts memory rows with kernel-half, null, or
	// out-of-range data addresses.
	SkippedKernel int
	// Threads is the number of distinct sampled threads.
	Threads int
	// Phases is the number of synthesized phases.
	Phases int
}

// skipReason classifies why a parser rejected one input row.
type skipReason int

const (
	skipNone   skipReason = iota // row converted
	skipParse                    // malformed fields
	skipNonMem                   // not a memory load/store
	skipKernel                   // kernel-half, null, or out-of-range address
)

// count folds one rejection into the Stats tally.
func (st *Stats) count(r skipReason) {
	st.Skipped++
	switch r {
	case skipParse:
		st.SkippedParse++
	case skipNonMem:
		st.SkippedNonMem++
	case skipKernel:
		st.SkippedKernel++
	}
}

// notes renders the skip tally as `key=value` provenance notes for the
// output trace, so a converted file carries its own loss accounting
// (`cheetah -trace-info` prints them). The source tag is always
// present; zero counters are omitted.
func (st *Stats) notes(source string) []string {
	notes := []string{"import.source=" + source}
	for _, c := range []struct {
		key string
		n   int
	}{
		{"import.skipped_parse", st.SkippedParse},
		{"import.skipped_nonmem", st.SkippedNonMem},
		{"import.skipped_kernel", st.SkippedKernel},
	} {
		if c.n > 0 {
			notes = append(notes, fmt.Sprintf("%s=%d", c.key, c.n))
		}
	}
	return notes
}

// sample is one parsed memory sample in format-independent form.
type sample struct {
	tid   uint64  // real OS thread id
	t     float64 // native-unit timestamp
	addr  uint64
	lat   uint32
	size  uint8
	write bool
}

// convert turns parsed samples into the native event stream, filling
// st's conversion counters in place (its skip tally, already final —
// the caller parses every row before converting — is stamped into the
// stream as provenance notes).
func convert(samples []sample, enc trace.Encoder, o Options, defaultName, source string, defaultScale, defaultGap float64, st *Stats) error {
	if len(samples) == 0 {
		return fmt.Errorf("import: no usable memory samples in input")
	}
	scale := o.TimeScale
	if scale == 0 {
		scale = defaultScale
	}
	if scale < 0 {
		return fmt.Errorf("import: negative TimeScale %v", o.TimeScale)
	}
	gap := o.PhaseGap
	if gap == 0 {
		gap = defaultGap
	}

	// Stable-sort by timestamp: dumps are normally time-ordered already,
	// and ties keep file order, so the conversion is deterministic for
	// any input.
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].t < samples[j].t })

	// Dense thread ids in order of first appearance.
	tids := make(map[uint64]mem.ThreadID)
	for _, s := range samples {
		if _, ok := tids[s.tid]; !ok {
			tids[s.tid] = mem.ThreadID(1 + len(tids))
		}
	}
	st.Threads = len(tids)

	name := o.ProgramName
	if name == "" {
		name = defaultName
	}
	cores := o.Cores
	if cores == 0 {
		cores = st.Threads
		if cores < 2 {
			cores = 2
		}
		if cores > 256 {
			cores = 256
		}
	}
	if err := enc.Encode(trace.Event{Kind: trace.KindProgram, Name: name, Cores: cores}); err != nil {
		return err
	}
	for _, note := range st.notes(source) {
		if err := enc.Encode(trace.Event{Kind: trace.KindNote, Name: note}); err != nil {
			return err
		}
	}

	// Walk the timeline, opening a new phase at every over-gap jump and
	// synthesizing per-thread instruction counts within each phase.
	type threadPos struct {
		ip uint64
	}
	var (
		phase      = -1
		phaseStart float64
		pos        map[mem.ThreadID]*threadPos
		order      []mem.ThreadID
	)
	endPhase := func() error {
		for _, tid := range order {
			p := pos[tid]
			if err := enc.Encode(trace.Event{
				Kind: trace.KindThreadEnd, TID: tid, Phase: phase, Instrs: p.ip,
			}); err != nil {
				return err
			}
		}
		return nil
	}
	openPhase := func(t float64) error {
		if phase >= 0 {
			if err := endPhase(); err != nil {
				return err
			}
		}
		phase++
		if phase > maxSyntheticPhases {
			return fmt.Errorf("import: more than %d synthesized phases; raise Options.PhaseGap", maxSyntheticPhases)
		}
		phaseStart = t
		pos = make(map[mem.ThreadID]*threadPos)
		order = order[:0]
		return enc.Encode(trace.Event{
			Kind: trace.KindPhase, Phase: phase, Parallel: true,
			Name: fmt.Sprintf("imported%d", phase),
		})
	}
	lastT := 0.0
	for i, s := range samples {
		if i == 0 || (gap > 0 && s.t-lastT > gap) {
			if err := openPhase(s.t); err != nil {
				return err
			}
		}
		lastT = s.t
		tid := tids[s.tid]
		p := pos[tid]
		if p == nil {
			p = &threadPos{}
			pos[tid] = p
			order = append(order, tid)
		}
		// The synthesized ip: elapsed phase time scaled to instructions,
		// floored to stay strictly increasing per thread. Every access
		// consumes at least one instruction.
		ip := uint64((s.t - phaseStart) * scale)
		if ip <= p.ip {
			ip = p.ip + 1
		}
		if ip > trace.MaxInstrs {
			return fmt.Errorf("import: synthesized instruction count %d exceeds %d; lower Options.TimeScale", ip, uint64(trace.MaxInstrs))
		}
		p.ip = ip
		if err := enc.Encode(trace.Event{
			Kind: trace.KindAccess, TID: tid, Write: s.write,
			Addr: mem.Addr(s.addr), Size: uint64(s.size), IP: ip,
			Lat: s.lat, Phase: phase,
		}); err != nil {
			return err
		}
		st.Samples++
	}
	if err := endPhase(); err != nil {
		return err
	}
	st.Phases = phase + 1
	if err := enc.Close(); err != nil {
		return err
	}
	recordMetrics(st)
	return nil
}

// lineScanner wraps input with the shared line limit.
func lineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineLen)
	return sc
}

// usableAddr reports whether a sampled data address can become a
// simulated access: kernel-half and zero addresses are dropped (the
// paper's driver filters them the same way), and anything past the
// simulated address-space bound cannot be represented.
func usableAddr(a uint64) bool {
	return a != 0 && a <= 1<<62
}
