// Out-of-core streaming replay.
//
// StreamReplay is the bounded-memory counterpart of Replay: instead of
// decoding the whole trace into per-thread operation lists up front, it
// uses the v3 index (index.go) to load one phase's records at a time.
// The engine runs phases strictly in order and completes every body of
// a phase before starting the next, so a window holding exactly one
// phase never thrashes: each phase's segment is read from disk once per
// replay, and peak memory is the largest single phase plus the layout,
// however long the trace is.
//
// The reconstructed program is identical to Replay.Program()'s — same
// thread ids, same operation streams, same pooling — so the detection
// report is byte-identical to full in-memory replay (proven by
// stream_equiv_test.go). ProgramRange additionally replays only a
// contiguous phase range, the unit of cross-worker trace sharding in
// internal/harness.
package trace

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/symtab"
)

// streamSeg is the open-time view of one indexed phase: the metadata
// needed to build program structure without touching the segment again.
type streamSeg struct {
	name     string
	parallel bool
	tids     []mem.ThreadID // ascending; mirrors the index thread list
}

// segGeom keys the foreign-address prescan cache: the prescan result
// depends only on which addresses fall outside the simulated segments,
// i.e. on the heap and globals geometry.
type segGeom struct {
	heapBase, heapLimit mem.Addr
	symBase, symLimit   mem.Addr
}

// streamShared is the per-file state every StreamReplay of one trace
// shares: the validated index and open-time metadata. It holds no
// record data, so several cells replaying the same giant trace
// concurrently cost one metadata copy, not N.
type streamShared struct {
	path  string
	size  int64
	mtime time.Time
	idx   *traceIndex

	name             string
	cores            int
	notes            []string
	symbols, objects uint64
	segs             []streamSeg
	phaseSeg         map[int]int // phase index -> position in idx.segs
	maxPhase         int
	// appearances counts, per thread id, the parallel phases the thread
	// has records in; >1 marks a pooled worker (same rule as Replay).
	appearances map[mem.ThreadID]int

	mu sync.Mutex
	// prescans caches sorted foreign line indices per memory geometry.
	prescans map[segGeom][]uint64
}

// streamCache shares streamShared values across opens of the same path,
// keyed by path and invalidated on size/mtime change.
var streamCache = struct {
	sync.Mutex
	m    map[string]*streamCacheEntry
	tick uint64
}{m: make(map[string]*streamCacheEntry)}

type streamCacheEntry struct {
	sh      *streamShared
	lastUse uint64
}

// maxSharedTraces bounds the metadata cache; least-recently-used
// entries beyond it are dropped.
const maxSharedTraces = 16

func sharedFor(path string) (*streamShared, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	streamCache.Lock()
	streamCache.tick++
	if e := streamCache.m[path]; e != nil && e.sh.size == st.Size() && e.sh.mtime.Equal(st.ModTime()) {
		e.lastUse = streamCache.tick
		sh := e.sh
		streamCache.Unlock()
		return sh, nil
	}
	streamCache.Unlock()

	sh, err := openShared(path)
	if err != nil {
		return nil, err
	}
	streamCache.Lock()
	streamCache.tick++
	streamCache.m[path] = &streamCacheEntry{sh: sh, lastUse: streamCache.tick}
	for len(streamCache.m) > maxSharedTraces {
		oldPath, oldUse := "", ^uint64(0)
		for p, e := range streamCache.m {
			if e.lastUse < oldUse {
				oldPath, oldUse = p, e.lastUse
			}
		}
		delete(streamCache.m, oldPath)
	}
	streamCache.Unlock()
	return sh, nil
}

// openShared reads and cross-checks a trace's index and open-time
// metadata: the layout regions are decoded once (verifying the indexed
// record counts and capturing the program identity), and each segment's
// first record is decoded to confirm it is the indexed phase and to
// capture its name and parallelism.
func openShared(path string) (*streamShared, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	idx, err := readIndexAt(f, st.Size())
	if err != nil {
		return nil, err
	}
	sh := &streamShared{
		path: path, size: st.Size(), mtime: st.ModTime(), idx: idx,
		phaseSeg:    make(map[int]int, len(idx.segs)),
		maxPhase:    -1,
		appearances: make(map[mem.ThreadID]int),
		prescans:    make(map[segGeom][]uint64),
	}

	sawProgram := false
	for ri := range idx.regions {
		r := &idx.regions[ri]
		cr := &crcReader{r: io.NewSectionReader(f, int64(r.off), int64(r.length))}
		d := newSeededDecoder(cr, nil, r.meta)
		var nsyms, nobjs uint64
		for {
			ev, err := d.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, verifySpanCRC(path, -1, r.off, cr, r.crc, idx.hasCRC, err)
			}
			switch ev.Kind {
			case KindProgram:
				if sawProgram {
					return nil, fmt.Errorf("trace: duplicate #program record")
				}
				sawProgram = true
				sh.name, sh.cores = ev.Name, ev.Cores
			case KindSymbol:
				nsyms++
			case KindObject:
				nobjs++
			case KindNote:
				sh.notes = append(sh.notes, ev.Name)
			default:
				return nil, fmt.Errorf("trace: index: layout region at %d contains a kind-%d record", r.off, ev.Kind)
			}
		}
		if err := verifySpanCRC(path, -1, r.off, cr, r.crc, idx.hasCRC, nil); err != nil {
			return nil, err
		}
		if nsyms != r.syms || nobjs != r.objs {
			return nil, fmt.Errorf("trace: index: region at %d claims %d symbols / %d objects, stream has %d / %d",
				r.off, r.syms, r.objs, nsyms, nobjs)
		}
		sh.symbols += nsyms
		sh.objects += nobjs
	}
	if !sawProgram {
		return nil, fmt.Errorf("trace: missing #program record")
	}
	if sh.cores == 0 {
		sh.cores = 1
	}

	sh.segs = make([]streamSeg, len(idx.segs))
	for si := range idx.segs {
		seg := &idx.segs[si]
		if seg.maxSize > 255 {
			return nil, fmt.Errorf("trace: access size %d unsupported (max 255)", seg.maxSize)
		}
		d := newSeededDecoder(io.NewSectionReader(f, int64(seg.off), int64(seg.length)), seg.threads, seg.meta)
		ev, err := d.next()
		if err != nil {
			return nil, fmt.Errorf("trace: index: segment for phase %d: %w", seg.phase, err)
		}
		if ev.Kind != KindPhase || ev.Phase != seg.phase {
			return nil, fmt.Errorf("trace: index: segment for phase %d does not start at its phase record", seg.phase)
		}
		ss := &sh.segs[si]
		ss.name, ss.parallel = ev.Name, ev.Parallel
		ss.tids = make([]mem.ThreadID, len(seg.threads))
		for i, t := range seg.threads {
			ss.tids[i] = t.tid
			if !ss.parallel && t.tid != mem.MainThread {
				return nil, fmt.Errorf("trace: serial phase %d has records for thread %d", seg.phase, t.tid)
			}
		}
		sh.phaseSeg[seg.phase] = si
		if seg.phase > sh.maxPhase {
			sh.maxPhase = seg.phase
		}
		if ss.parallel {
			for _, tid := range ss.tids {
				sh.appearances[tid]++
			}
		}
	}
	return sh, nil
}

// restoreLayout replays the layout regions in stream order into the
// system's heap and symbol table — exactly what Replay.Prepare restores,
// without retaining anything.
func (sh *streamShared) restoreLayout(h *heap.Heap, syms *symtab.Table) error {
	f, err := os.Open(sh.path)
	if err != nil {
		return err
	}
	defer f.Close()
	for ri := range sh.idx.regions {
		r := &sh.idx.regions[ri]
		d := newSeededDecoder(io.NewSectionReader(f, int64(r.off), int64(r.length)), nil, r.meta)
		for {
			ev, err := d.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			switch ev.Kind {
			case KindProgram: // identity, captured at open
			case KindSymbol:
				if err := syms.Restore(symtab.Symbol{Name: ev.Name, Addr: ev.Addr, Size: ev.Size}); err != nil {
					return err
				}
			case KindObject:
				if err := h.Restore(heap.Object{
					Addr: ev.Addr, Size: ev.Size, ClassSize: ev.Class,
					Thread: ev.TID, Seq: ev.Seq, Live: ev.Live, Stack: ev.Stack,
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// covered returns the merged address intervals the heap and globals
// segments cover under geom.
func (g segGeom) covered() [][2]mem.Addr {
	iv := [][2]mem.Addr{{g.heapBase, g.heapLimit}, {g.symBase, g.symLimit}}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	out := iv[:1]
	if iv[1][0] <= out[0][1] { // adjacent or overlapping: merge
		if iv[1][1] > out[0][1] {
			out[0][1] = iv[1][1]
		}
	} else {
		out = iv
	}
	return out
}

// inOneInterval reports whether [lo, hi] lies inside a single covered
// interval — the proof that every address between them is in-segment.
func inOneInterval(iv [][2]mem.Addr, lo, hi mem.Addr) bool {
	for _, r := range iv {
		if lo >= r[0] && hi < r[1] {
			return true
		}
	}
	return false
}

// foreignLines returns the sorted cache-line indices of every access
// address outside the heap and globals segments — the input Replay's
// synthesize computes from its in-memory op lists. Segments whose
// indexed [addrMin, addrMax] provably lies in-segment are skipped
// without touching disk; the rest are scanned once, and the result is
// cached per geometry (recorder-written traces skip everything, so
// replaying them never pays a prescan pass).
func (sh *streamShared) foreignLines(h *heap.Heap, syms *symtab.Table) ([]uint64, error) {
	geom := segGeom{h.Base(), h.Limit(), syms.Base(), syms.Limit()}
	sh.mu.Lock()
	lines, ok := sh.prescans[geom]
	sh.mu.Unlock()
	if ok {
		return lines, nil
	}

	iv := geom.covered()
	var scan []int
	for si := range sh.idx.segs {
		seg := &sh.idx.segs[si]
		if seg.accesses == 0 {
			continue
		}
		if !inOneInterval(iv, mem.Addr(seg.addrMin), mem.Addr(seg.addrMax)) {
			scan = append(scan, si)
		}
	}
	lines = []uint64{}
	if len(scan) > 0 {
		f, err := os.Open(sh.path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		seen := make(map[uint64]bool)
		for _, si := range scan {
			seg := &sh.idx.segs[si]
			d := newSeededDecoder(io.NewSectionReader(f, int64(seg.off), int64(seg.length)), seg.threads, seg.meta)
			for {
				ev, err := d.next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, err
				}
				if ev.Kind != KindAccess || h.Contains(ev.Addr) || syms.Contains(ev.Addr) {
					continue
				}
				if line := ev.Addr.Line(); !seen[line] {
					seen[line] = true
					lines = append(lines, line)
				}
			}
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	}
	sh.mu.Lock()
	sh.prescans[geom] = lines
	sh.mu.Unlock()
	return lines, nil
}

// StreamReplay replays an indexed trace with bounded memory: Prepare
// restores the layout exactly as Replay.Prepare does, and the program
// loads one phase's operations at a time as the engine reaches it.
type StreamReplay struct {
	sh *streamShared

	// Name, Cores, Accesses and Notes mirror Replay's fields.
	Name     string
	Cores    int
	Accesses uint64
	Notes    []string

	// runs remaps foreign addresses, identical to full replay's
	// synthesized runs (same sites in the same order).
	runs     []lineRun
	prepared bool

	mu     sync.Mutex
	winSeg int // segment index currently resident, -1 before the first load
	win    map[mem.ThreadID]*replayThread
	// loads counts segment loads; maxWindowOps is the largest operation
	// count ever resident — the bounded-memory evidence tests assert on.
	loads        int
	maxWindowOps uint64
}

// OpenStream opens an indexed binary v3 trace for streaming replay. It
// reads only the index and layout metadata (lazily shared across opens
// of the same file); the access records stay on disk until the engine
// reaches their phase. Non-indexed traces fail here — use ReadFile.
func OpenStream(path string) (*StreamReplay, error) {
	sh, err := sharedFor(path)
	if err != nil {
		return nil, err
	}
	return &StreamReplay{
		sh: sh, Name: sh.name, Cores: sh.cores, Accesses: sh.idx.accesses,
		Notes:  sh.notes,
		winSeg: -1,
	}, nil
}

// Prepare installs the trace's memory layout into the system, exactly
// as Replay.Prepare: symbols and objects restore at their recorded
// addresses, and foreign out-of-segment address runs are synthesized
// into fresh heap objects with `trace:N` call sites. Must run before
// Program or ProgramRange.
func (s *StreamReplay) Prepare(h *heap.Heap, syms *symtab.Table) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("trace: preparing replay: %v", r)
		}
	}()
	if err := s.sh.restoreLayout(h, syms); err != nil {
		return err
	}
	lines, err := s.sh.foreignLines(h, syms)
	if err != nil {
		return err
	}
	if len(lines) > 0 {
		// Copy: lineRuns sorts in place and the cached slice is shared.
		runs := lineRuns(append([]uint64(nil), lines...))
		for i := range runs {
			site := heap.Stack(heap.Frame{Func: "trace", File: "trace", Line: i + 1})
			runs[i].mappedTo = h.Malloc(mem.MainThread, runs[i].bytes, site)
		}
		s.runs = runs
	}
	s.prepared = true
	return nil
}

// loadPhase decodes one segment into fresh per-thread operation lists,
// cross-checking every record against the index's claims.
func (s *StreamReplay) loadPhase(si int) (map[mem.ThreadID]*replayThread, error) {
	sh := s.sh
	seg := &sh.idx.segs[si]
	f, err := os.Open(sh.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := &crcReader{r: io.NewSectionReader(f, int64(seg.off), int64(seg.length))}
	d := newSeededDecoder(cr, seg.threads, seg.meta)
	// checked wraps every failure so a corrupt payload under a valid
	// index surfaces as CorruptPayloadError rather than whatever decode
	// or count error the damage happens to trip first.
	checked := func(cause error) error {
		return verifySpanCRC(sh.path, seg.phase, seg.off, cr, seg.crc, sh.idx.hasCRC, cause)
	}

	win := make(map[mem.ThreadID]*replayThread, len(seg.threads))
	counts := make(map[mem.ThreadID]uint64, len(seg.threads))
	for _, t := range seg.threads {
		win[t.tid] = &replayThread{}
	}
	ev, err := d.next()
	if err != nil {
		return nil, checked(err)
	}
	if ev.Kind != KindPhase || ev.Phase != seg.phase {
		return nil, checked(fmt.Errorf("trace: segment for phase %d does not start at its phase record", seg.phase))
	}
	var total uint64
	for {
		ev, err := d.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, checked(err)
		}
		if ev.Kind != KindAccess && ev.Kind != KindThreadEnd {
			return nil, checked(fmt.Errorf("trace: phase %d segment contains a kind-%d record", seg.phase, ev.Kind))
		}
		if ev.Phase != seg.phase {
			return nil, checked(fmt.Errorf("trace: phase %d segment contains a record for phase %d", seg.phase, ev.Phase))
		}
		rt := win[ev.TID]
		if rt == nil {
			return nil, checked(fmt.Errorf("trace: phase %d segment has records for unindexed thread %d", seg.phase, ev.TID))
		}
		if ev.Kind == KindThreadEnd {
			rt.endInstrs = ev.Instrs
			rt.sawEnd = true
			continue
		}
		if ev.Size > 255 {
			return nil, checked(fmt.Errorf("trace: access size %d unsupported (max 255)", ev.Size))
		}
		var gap uint64
		if ev.IP > rt.lastIP {
			gap = ev.IP - rt.lastIP - 1
			rt.lastIP = ev.IP
		}
		size := uint8(ev.Size)
		if size == 0 {
			size = 4
		}
		rt.ops = append(rt.ops, replayOp{gap: gap, addr: remapForeign(s.runs, ev.Addr), size: size, write: ev.Write})
		counts[ev.TID]++
		total++
	}
	if total != seg.accesses {
		return nil, checked(fmt.Errorf("trace: phase %d segment has %d accesses, index claims %d", seg.phase, total, seg.accesses))
	}
	for _, t := range seg.threads {
		if counts[t.tid] != t.accesses {
			return nil, checked(fmt.Errorf("trace: phase %d thread %d has %d accesses, index claims %d",
				seg.phase, t.tid, counts[t.tid], t.accesses))
		}
	}
	if err := checked(nil); err != nil {
		return nil, err
	}
	return win, nil
}

// acquire returns tid's operations for segment si, loading the segment
// into the window if it is not resident. The engine finishes every body
// of a phase before starting the next, so each segment loads exactly
// once per sequential replay. A load failure here means the file
// changed or broke after open-time validation — a contract violation
// reported by panic, like workload Build errors.
func (s *StreamReplay) acquire(si int, tid mem.ThreadID) *replayThread {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.winSeg != si {
		win, err := s.loadPhase(si)
		if err != nil {
			panic(fmt.Sprintf("trace: streaming replay of %s: loading phase %d: %v",
				s.sh.path, s.sh.idx.segs[si].phase, err))
		}
		s.win = win
		s.winSeg = si
		s.loads++
		var ops uint64
		for _, rt := range win {
			ops += uint64(len(rt.ops))
		}
		if ops > s.maxWindowOps {
			s.maxWindowOps = ops
		}
		mWindowLoads.Inc()
		mWindowOps.Add(ops)
		mWindowOpsMax.SetMax(int64(ops))
		if obs.TracingEnabled() {
			obs.Event("trace", "window-load", 0, map[string]any{
				"path": s.sh.path, "phase": s.sh.idx.segs[si].phase, "ops": ops,
			})
		}
	}
	return s.win[tid]
}

// streamBody defers the segment load to the moment the engine actually
// runs the thread, keeping program construction allocation-free.
func (s *StreamReplay) streamBody(si int, tid mem.ThreadID) exec.Body {
	return func(t *exec.T) {
		bodyFor(s.acquire(si, tid))(t)
	}
}

// Program reconstructs the full program; the result is structurally
// identical to Replay.Program()'s for the same trace, but its bodies
// stream their operations from disk phase by phase.
func (s *StreamReplay) Program() exec.Program {
	return s.ProgramRange(0, s.sh.maxPhase)
}

// ProgramRange reconstructs the program with only phases lo..hi
// (inclusive) populated; the rest become empty phases the engine skips
// without advancing the clock. Phase indices, thread ids and pooling
// are those of the full program, so a range replays exactly as that
// slice of the full run on a fresh system — the unit of phase-sharded
// sweeps.
func (s *StreamReplay) ProgramRange(lo, hi int) exec.Program {
	if !s.prepared {
		panic("trace: StreamReplay.Program called before Prepare")
	}
	prog := exec.Program{Name: s.Name}
	for idx := 0; idx <= s.sh.maxPhase; idx++ {
		si, ok := s.sh.phaseSeg[idx]
		if !ok || idx < lo || idx > hi {
			prog.Phases = append(prog.Phases, exec.Phase{})
			continue
		}
		ss := &s.sh.segs[si]
		name := ss.name
		if name == "" {
			name = fmt.Sprintf("phase%d", idx)
		}
		if !ss.parallel {
			prog.Phases = append(prog.Phases, exec.SerialPhase(name, s.streamBody(si, mem.MainThread)))
			continue
		}
		pooled := false
		bodies := make([]exec.Body, 0, len(ss.tids))
		for _, tid := range ss.tids {
			if s.sh.appearances[tid] > 1 {
				pooled = true
			}
			bodies = append(bodies, s.streamBody(si, tid))
		}
		prog.Phases = append(prog.Phases, exec.Phase{Name: name, Bodies: bodies, Pooled: pooled})
	}
	return prog
}

// MaxPhase returns the highest phase index in the trace.
func (s *StreamReplay) MaxPhase() int { return s.sh.maxPhase }

// StreamPhase describes one indexed phase, for shard planning.
type StreamPhase struct {
	Index    int
	Name     string
	Parallel bool
	Accesses uint64
}

// Phases lists the trace's indexed phases in ascending phase order.
func (s *StreamReplay) Phases() []StreamPhase {
	out := make([]StreamPhase, 0, len(s.sh.segs))
	for idx := 0; idx <= s.sh.maxPhase; idx++ {
		si, ok := s.sh.phaseSeg[idx]
		if !ok {
			continue
		}
		out = append(out, StreamPhase{
			Index: idx, Name: s.sh.segs[si].name,
			Parallel: s.sh.segs[si].parallel, Accesses: s.sh.idx.segs[si].accesses,
		})
	}
	return out
}

// WindowStats reports how many segment loads the replay performed and
// the largest operation count ever resident — the evidence that memory
// stayed bounded by the largest phase rather than the whole trace.
func (s *StreamReplay) WindowStats() (loads int, maxOps uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loads, s.maxWindowOps
}

// ValidateStream rehearses the whole streaming pipeline — index
// validation, layout restore against a scratch default layout, a full
// decode of every segment, program assembly — returning the error any
// stage would surface. The streaming counterpart of Validate.
func ValidateStream(path string) error {
	s, err := OpenStream(path)
	if err != nil {
		return err
	}
	if err := s.Prepare(heap.New(heap.Config{}), symtab.New(symtab.Config{})); err != nil {
		return err
	}
	for si := range s.sh.idx.segs {
		if _, err := s.loadPhase(si); err != nil {
			return err
		}
	}
	s.Program()
	return nil
}
