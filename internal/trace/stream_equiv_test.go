package trace_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	cheetah "repro"
	"repro/internal/exec"
	"repro/internal/exec/progen"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/trace"
)

// streamEquivSeed pins the randomized suite: failures reproduce from
// (seed, case index) alone, and small indices are small programs.
const streamEquivSeed = 0x57E4_CA1E

// streamEquivCases returns the suite size: at least 200 randomized
// programs in -short (CI's push gate), at least 2000 in the nightly
// full run.
func streamEquivCases() int {
	if testing.Short() {
		return 200
	}
	return 2000
}

// recordIndexed generates case i touching either in-segment addresses
// (heap objects and a global, so replay restores them at their recorded
// addresses and the recorded run itself is a valid baseline) or raw
// foreign addresses (exercising the replayer's address synthesis, where
// only replay-vs-replay identity is defined), runs it on a profiled
// 8-core system with an indexed recorder attached, and returns the
// trace file path plus the recorded run's canonical report.
func recordIndexed(t *testing.T, dir string, i int, inSegment bool) (string, string) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("case%d.trace", i))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := trace.NewIndexedEncoder(f)
	sys := cheetah.New(cheetah.Config{Cores: 8})
	var addrs []mem.Addr
	if inSegment {
		addrs = []mem.Addr{
			sys.Heap().Malloc(0, 256, heap.Stack(heap.Frame{File: "equiv.c", Line: 10, Func: "alloc_a"})),
			sys.Heap().Malloc(1, 512, heap.Stack(heap.Frame{File: "equiv.c", Line: 20, Func: "alloc_b"})),
			sys.Globals().Define("equiv_global", 128),
		}
	} else {
		addrs = []mem.Addr{0x1000, 0x1040, 0x2040, 0x8000}
	}
	prog := progen.Generate(progen.Config{
		Seed: streamEquivSeed, Case: i, Addrs: addrs, MaxThreads: 8,
	})
	rec := trace.NewRecorder(enc, sys.Heap(), sys.Globals())
	prof := sys.NewProfiler(cheetah.ProfileOptions{PMU: densePMU()})
	res := sys.RunWith(prog, append(prof.Probes(), rec)...)
	// The recorder closes the encoder at program end; Err surfaces both
	// stream and indexing failures.
	if err := rec.Err(); err != nil {
		t.Fatalf("case %d: recording: %v", i, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, canonicalReport(prof.Report()) + fmt.Sprintf("runtime %d cycles\n", res.TotalCycles)
}

// fullReplayReport replays the whole trace in memory under sched.
func fullReplayReport(t *testing.T, path, sched string) string {
	t.Helper()
	rp, err := trace.ReadFile(path)
	if err != nil {
		t.Fatalf("full replay: %v", err)
	}
	sys := cheetah.New(cheetah.Config{Cores: rp.Cores, Engine: exec.Config{Sched: sched}})
	if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
		t.Fatalf("full replay prepare: %v", err)
	}
	rep, res := sys.Profile(rp.Program(), cheetah.ProfileOptions{PMU: densePMU()})
	return canonicalReport(rep) + fmt.Sprintf("runtime %d cycles\n", res.TotalCycles)
}

// streamReplayReport replays the trace phase-by-phase through the
// windowed streaming replayer under sched.
func streamReplayReport(t *testing.T, path, sched string) string {
	t.Helper()
	sr, err := trace.OpenStream(path)
	if err != nil {
		t.Fatalf("stream replay: %v", err)
	}
	sys := cheetah.New(cheetah.Config{Cores: sr.Cores, Engine: exec.Config{Sched: sched}})
	if err := sr.Prepare(sys.Heap(), sys.Globals()); err != nil {
		t.Fatalf("stream replay prepare: %v", err)
	}
	rep, res := sys.Profile(sr.Program(), cheetah.ProfileOptions{PMU: densePMU()})
	return canonicalReport(rep) + fmt.Sprintf("runtime %d cycles\n", res.TotalCycles)
}

// TestStreamedReplayEquivalence is the tentpole's equivalence suite:
// for randomized generated programs, the streamed (windowed,
// out-of-core) replay of the recorded indexed trace must produce a
// detection report and runtime byte-identical to the full in-memory
// replay — and to the recorded run itself — under both engine
// schedulers. ≥200 cases in -short, ≥2000 nightly; cases grow from
// trivially small, so the first failing index is already near-minimal.
func TestStreamedReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < streamEquivCases(); i++ {
		// Even cases touch in-segment addresses (recorded == replay holds
		// and is asserted); odd cases touch raw foreign addresses, where
		// replay synthesizes fresh objects — the recorded run is not a
		// baseline there, but full and streamed replay must still agree.
		inSegment := i%2 == 0
		path, recorded := recordIndexed(t, dir, i, inSegment)

		full := fullReplayReport(t, path, exec.SchedHeap)
		if inSegment && full != recorded {
			t.Fatalf("case %d (seed %#x): full replay differs from recorded run\n--- recorded ---\n%s\n--- full ---\n%s",
				i, streamEquivSeed, recorded, full)
		}
		stream := streamReplayReport(t, path, exec.SchedHeap)
		if stream != full {
			t.Fatalf("case %d (seed %#x): streamed replay differs from full replay (heap sched)\n--- full ---\n%s\n--- stream ---\n%s",
				i, streamEquivSeed, full, stream)
		}
		fullCal := fullReplayReport(t, path, exec.SchedCalendar)
		streamCal := streamReplayReport(t, path, exec.SchedCalendar)
		if streamCal != fullCal {
			t.Fatalf("case %d (seed %#x): streamed replay differs from full replay (calendar sched)\n--- full ---\n%s\n--- stream ---\n%s",
				i, streamEquivSeed, fullCal, streamCal)
		}
		// The trace files accumulate in dir; drop each case's file once
		// proven so the nightly 2000-case run stays light on disk.
		os.Remove(path)
	}
}

// TestStreamedRangeConcatenation: replaying phase ranges on fresh
// systems and concatenating the sub-reports must reproduce the phase
// structure of the whole run — the invariant phase-sharded sweeps rest
// on. Full-fidelity shard merging is proven end-to-end in
// internal/sweep; this pins the trace-level contract: every phase of
// the full replay appears in exactly one range replay, with the ranges'
// total access counts summing to the trace's.
func TestStreamedRangeConcatenation(t *testing.T) {
	dir := t.TempDir()
	cases := 25
	if testing.Short() {
		cases = 10
	}
	split := 0
	for i := 0; i < cases; i++ {
		path, _ := recordIndexed(t, dir, 40+i, false)

		sr, err := trace.OpenStream(path)
		if err != nil {
			t.Fatal(err)
		}
		if sr.MaxPhase() < 1 {
			continue // single-phase program: nothing to split
		}
		split++
		mid := sr.MaxPhase() / 2

		runRange := func(lo, hi int) cheetah.Result {
			s, err := trace.OpenStream(path)
			if err != nil {
				t.Fatal(err)
			}
			sys := cheetah.New(cheetah.Config{Cores: s.Cores})
			if err := s.Prepare(sys.Heap(), sys.Globals()); err != nil {
				t.Fatal(err)
			}
			return sys.Run(s.ProgramRange(lo, hi))
		}
		lowRes := runRange(0, mid)
		highRes := runRange(mid+1, sr.MaxPhase())
		fullRes := runRange(0, sr.MaxPhase())
		if len(lowRes.Phases)+len(highRes.Phases) != len(fullRes.Phases) {
			t.Fatalf("case %d: split replays cover %d+%d phases, full replay has %d",
				40+i, len(lowRes.Phases), len(highRes.Phases), len(fullRes.Phases))
		}
		os.Remove(path)
	}
	if split == 0 {
		t.Fatal("no multi-phase cases generated; the range suite is vacuous")
	}
}
