package trace_test

import (
	"os"
	"path/filepath"
	"testing"

	cheetah "repro"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestRegenerateV1Corpus rewrites testdata/corpus-v1 — the checked-in v1
// binary traces that TestV1CorpusDecodesUnderV2Reader (and the nightly
// compatibility CI step) guard. It is a generator, not a test: it only
// runs with CHEETAH_REGEN_V1_CORPUS=1, and the files it writes are
// committed. The corpus must only ever be regenerated with an encoder
// that still writes the v1 framing byte-for-byte.
func TestRegenerateV1Corpus(t *testing.T) {
	if os.Getenv("CHEETAH_REGEN_V1_CORPUS") == "" {
		t.Skip("set CHEETAH_REGEN_V1_CORPUS=1 to regenerate the v1 corpus")
	}
	dir := filepath.Join("testdata", "corpus-v1")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	// A recorded real workload: every access of a small figure1 run.
	w, ok := workload.ByName("figure1")
	if !ok {
		t.Fatal("figure1 workload missing")
	}
	sys := cheetah.New(cheetah.Config{Cores: 8})
	prog := w.Build(sys, workload.Params{Threads: 4, Scale: 0.02})
	f, err := os.Create(filepath.Join(dir, "figure1.trace"))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(trace.NewBinaryEncoderV1(f), sys.Heap(), sys.Globals())
	sys.RunWith(prog, rec)
	if err := rec.Err(); err != nil {
		t.Fatalf("recording: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// A handcrafted stream exercising every record kind and the odd
	// corners (escaped stack frames, dead objects, empty names).
	evs := []trace.Event{
		{Kind: trace.KindProgram, Name: "corpus handcrafted", Cores: 4},
		{Kind: trace.KindPhase, Phase: 0, Parallel: false, Name: "init"},
		{Kind: trace.KindAccess, TID: 0, Write: true, Addr: 0x10000040, Size: 4, IP: 2, Lat: 3, Phase: 0},
		{Kind: trace.KindThreadEnd, TID: 0, Phase: 0, Instrs: 6},
		{Kind: trace.KindPhase, Phase: 1, Parallel: true, Name: "work"},
		{Kind: trace.KindAccess, TID: 1, Write: false, Addr: 0x40000000, Size: 8, IP: 10, Lat: 180, Phase: 1},
		{Kind: trace.KindAccess, TID: 2, Write: true, Addr: 0x40000008, Size: 4, IP: 11, Lat: 200, Phase: 1},
		{Kind: trace.KindThreadEnd, TID: 1, Phase: 1, Instrs: 20},
		{Kind: trace.KindThreadEnd, TID: 2, Phase: 1, Instrs: 15},
		{Kind: trace.KindSymbol, Name: "main_array", Addr: 0x10000040, Size: 4096},
		{Kind: trace.KindObject, Addr: 0x40000000, Size: 640, Class: 1024, TID: 1, Seq: 7, Live: true,
			Stack: heap.CallStack{
				{File: "linear_regression-pthread.c", Line: 139, Func: "main"},
				{File: "dir with space/file,odd:name.c", Line: 7, Func: "fn%1"},
			}},
		{Kind: trace.KindObject, Addr: 0x40010000, Size: 16, Class: 16, TID: mem.MainThread, Seq: 8},
	}
	f, err = os.Create(filepath.Join(dir, "handcrafted.trace"))
	if err != nil {
		t.Fatal(err)
	}
	enc := trace.NewBinaryEncoderV1(f)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
