package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/heap"
	"repro/internal/mem"
)

// textHeader is the first line of every text trace.
const textHeader = "#cheetah-trace v1"

// TextEncoder writes the line-oriented framing: `#`-prefixed metadata
// directives plus `tid op addr size ip lat phase` data rows.
type TextEncoder struct {
	w   *bufio.Writer
	err error
}

// NewTextEncoder creates a text encoder over w. The header line is
// written immediately; any error surfaces from Encode or Close.
func NewTextEncoder(w io.Writer) *TextEncoder {
	e := &TextEncoder{w: bufio.NewWriterSize(w, 1<<16)}
	_, e.err = e.w.WriteString(textHeader + "\n")
	return e
}

// Encode implements Encoder.
func (e *TextEncoder) Encode(ev Event) error {
	if e.err != nil {
		return e.err
	}
	switch ev.Kind {
	case KindProgram:
		e.err = e.writeNamed("#program %d %s\n", ev.Cores, ev.Name)
	case KindSymbol:
		e.err = e.writeNamed("#symbol %v %d %s\n", ev.Addr, ev.Size, ev.Name)
	case KindObject:
		_, e.err = fmt.Fprintf(e.w, "#object %v %d %d %d %d %d %s\n",
			ev.Addr, ev.Size, ev.Class, ev.TID, ev.Seq, b2i(ev.Live), formatStack(ev.Stack))
	case KindPhase:
		mode := "s"
		if ev.Parallel {
			mode = "p"
		}
		e.err = e.writeNamed("#phase %d "+mode+" %s\n", ev.Phase, ev.Name)
	case KindThreadEnd:
		_, e.err = fmt.Fprintf(e.w, "#threadend %d %d %d\n", ev.TID, ev.Phase, ev.Instrs)
	case KindNote:
		e.err = e.writeNamed("#note %s\n", ev.Name)
	case KindAccess:
		op := byte('r')
		if ev.Write {
			op = 'w'
		}
		_, e.err = fmt.Fprintf(e.w, "%d %c %v %d %d %d %d\n",
			ev.TID, op, ev.Addr, ev.Size, ev.IP, ev.Lat, ev.Phase)
	default:
		return fmt.Errorf("trace: encode: unknown event kind %d", ev.Kind)
	}
	return e.err
}

// writeNamed formats a directive whose final %s operand is a free-text
// name occupying the rest of the line; names must therefore be
// newline-free.
func (e *TextEncoder) writeNamed(format string, args ...any) error {
	if name, ok := args[len(args)-1].(string); ok && strings.ContainsAny(name, "\n\r") {
		return fmt.Errorf("trace: encode: name %q contains a line break", name)
	}
	_, err := fmt.Fprintf(e.w, format, args...)
	return err
}

// Close implements Encoder, flushing buffered output.
func (e *TextEncoder) Close() error {
	if e.err != nil {
		return e.err
	}
	e.err = e.w.Flush()
	return e.err
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// formatStack renders a call stack as comma-joined `file:line:func`
// frames with %-escaping, or "-" for an empty stack.
func formatStack(s heap.CallStack) string {
	if len(s) == 0 {
		return "-"
	}
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = escapeField(f.File) + ":" + strconv.Itoa(f.Line) + ":" + escapeField(f.Func)
	}
	return strings.Join(parts, ",")
}

// escapeField %-escapes the characters the frame syntax reserves.
func escapeField(s string) string {
	if !strings.ContainsAny(s, "%:, \t\n\r") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '%', ':', ',', ' ', '\t', '\n', '\r':
			fmt.Fprintf(&b, "%%%02X", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// unescapeField reverses escapeField, rejecting malformed escapes.
func unescapeField(s string) (string, error) {
	if !strings.Contains(s, "%") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+3 > len(s) {
			return "", fmt.Errorf("truncated %% escape in %q", s)
		}
		v, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
		if err != nil {
			return "", fmt.Errorf("bad %% escape in %q", s)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}

// parseStack reverses formatStack.
func parseStack(s string) (heap.CallStack, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > MaxFrames {
		return nil, fmt.Errorf("stack has %d frames (max %d)", len(parts), MaxFrames)
	}
	stack := make(heap.CallStack, 0, len(parts))
	for _, p := range parts {
		fields := strings.Split(p, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("frame %q is not file:line:func", p)
		}
		file, err := unescapeField(fields[0])
		if err != nil {
			return nil, err
		}
		line, err := strconv.Atoi(fields[1])
		if err != nil || line < 0 {
			return nil, fmt.Errorf("frame %q has bad line number", p)
		}
		fn, err := unescapeField(fields[2])
		if err != nil {
			return nil, err
		}
		stack = append(stack, heap.Frame{File: file, Line: line, Func: fn})
	}
	return stack, nil
}

// newTextDecoder validates the header and returns a streaming line
// decoder.
func newTextDecoder(br *bufio.Reader) (func() (Event, error), error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), MaxStringLen)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: missing header: %w", scanErr(sc))
	}
	if got := strings.TrimRight(sc.Text(), "\r"); got != textHeader {
		return nil, fmt.Errorf("trace: bad header %q (want %q)", got, textHeader)
	}
	lineno := 1
	// sticky latches the first failure (including io.EOF): a parse error
	// leaves the decoder mid-stream, so later calls must keep returning
	// it rather than resynchronize on whatever line happens to follow.
	var sticky error
	return func() (Event, error) {
		if sticky != nil {
			return Event{}, sticky
		}
		for sc.Scan() {
			lineno++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			ev, err := parseTextLine(line)
			if err != nil {
				sticky = fmt.Errorf("trace: line %d: %w", lineno, err)
				return Event{}, sticky
			}
			return ev, nil
		}
		if err := scanErr(sc); err != nil {
			sticky = fmt.Errorf("trace: line %d: %w", lineno+1, err)
		} else {
			sticky = io.EOF
		}
		return Event{}, sticky
	}, nil
}

func scanErr(sc *bufio.Scanner) error { return sc.Err() }

// parseTextLine parses one non-blank line.
func parseTextLine(line string) (Event, error) {
	if line[0] == '#' {
		return parseDirective(line)
	}
	f := strings.Fields(line)
	if len(f) != 7 {
		return Event{}, fmt.Errorf("data row has %d fields, want 7 (tid op addr size ip lat phase)", len(f))
	}
	tid, err := parseTID(f[0])
	if err != nil {
		return Event{}, err
	}
	var write bool
	switch f[1] {
	case "r", "R":
		write = false
	case "w", "W":
		write = true
	default:
		return Event{}, fmt.Errorf("op %q is neither r nor w", f[1])
	}
	addr, err := strconv.ParseUint(f[2], 0, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad addr %q", f[2])
	}
	size, err := strconv.ParseUint(f[3], 10, 16)
	if err != nil {
		return Event{}, fmt.Errorf("bad size %q", f[3])
	}
	ip, err := parseInstrs(f[4], "ip")
	if err != nil {
		return Event{}, err
	}
	lat, err := strconv.ParseUint(f[5], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("bad lat %q", f[5])
	}
	phase, err := parsePhase(f[6])
	if err != nil {
		return Event{}, err
	}
	return Event{
		Kind: KindAccess, TID: tid, Write: write, Addr: mem.Addr(addr),
		Size: size, IP: ip, Lat: uint32(lat), Phase: phase,
	}, nil
}

// parseDirective parses a `#`-prefixed metadata line.
func parseDirective(line string) (Event, error) {
	word, rest, _ := strings.Cut(line, " ")
	switch word {
	case "#program":
		coresStr, name, _ := strings.Cut(rest, " ")
		cores, err := strconv.ParseUint(coresStr, 10, 16)
		if err != nil || cores == 0 {
			return Event{}, fmt.Errorf("bad core count %q", coresStr)
		}
		return Event{Kind: KindProgram, Cores: int(cores), Name: strings.TrimSpace(name)}, nil
	case "#symbol":
		f := strings.SplitN(rest, " ", 3)
		if len(f) < 3 {
			return Event{}, fmt.Errorf("#symbol needs addr size name")
		}
		addr, err := strconv.ParseUint(f[0], 0, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad symbol addr %q", f[0])
		}
		size, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad symbol size %q", f[1])
		}
		return Event{Kind: KindSymbol, Addr: mem.Addr(addr), Size: size, Name: strings.TrimSpace(f[2])}, nil
	case "#object":
		f := strings.Fields(rest)
		if len(f) != 7 {
			return Event{}, fmt.Errorf("#object needs addr size class thread seq live stack")
		}
		addr, err := strconv.ParseUint(f[0], 0, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad object addr %q", f[0])
		}
		size, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad object size %q", f[1])
		}
		class, err := strconv.ParseUint(f[2], 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad object class %q", f[2])
		}
		tid, err := parseTID(f[3])
		if err != nil {
			return Event{}, err
		}
		seq, err := strconv.ParseUint(f[4], 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad object seq %q", f[4])
		}
		if f[5] != "0" && f[5] != "1" {
			return Event{}, fmt.Errorf("bad object live flag %q", f[5])
		}
		stack, err := parseStack(f[6])
		if err != nil {
			return Event{}, err
		}
		return Event{
			Kind: KindObject, Addr: mem.Addr(addr), Size: size, Class: class,
			TID: tid, Seq: seq, Live: f[5] == "1", Stack: stack,
		}, nil
	case "#phase":
		f := strings.SplitN(rest, " ", 3)
		if len(f) < 2 {
			return Event{}, fmt.Errorf("#phase needs index mode [name]")
		}
		idx, err := parsePhase(f[0])
		if err != nil {
			return Event{}, err
		}
		var parallel bool
		switch f[1] {
		case "s":
			parallel = false
		case "p":
			parallel = true
		default:
			return Event{}, fmt.Errorf("phase mode %q is neither s nor p", f[1])
		}
		name := ""
		if len(f) == 3 {
			name = strings.TrimSpace(f[2])
		}
		return Event{Kind: KindPhase, Phase: idx, Parallel: parallel, Name: name}, nil
	case "#threadend":
		f := strings.Fields(rest)
		if len(f) != 3 {
			return Event{}, fmt.Errorf("#threadend needs tid phase instrs")
		}
		tid, err := parseTID(f[0])
		if err != nil {
			return Event{}, err
		}
		phase, err := parsePhase(f[1])
		if err != nil {
			return Event{}, err
		}
		instrs, err := parseInstrs(f[2], "instruction count")
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: KindThreadEnd, TID: tid, Phase: phase, Instrs: instrs}, nil
	case "#note":
		return Event{Kind: KindNote, Name: strings.TrimSpace(rest)}, nil
	default:
		return Event{}, fmt.Errorf("unknown directive %q", word)
	}
}

func parseTID(s string) (mem.ThreadID, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil || v > MaxThreadID {
		return 0, fmt.Errorf("bad thread id %q", s)
	}
	return mem.ThreadID(v), nil
}

func parseInstrs(s, what string) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil || v > MaxInstrs {
		return 0, fmt.Errorf("bad %s %q (max %d)", what, s, uint64(MaxInstrs))
	}
	return v, nil
}

func parsePhase(s string) (int, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil || v > MaxPhaseIndex {
		return 0, fmt.Errorf("bad phase index %q", s)
	}
	return int(v), nil
}
