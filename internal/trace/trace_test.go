package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	cheetah "repro"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/pmu"
)

// sampleEvents covers every event kind with awkward payloads (spaces,
// escapes, empty stacks, large values).
func sampleEvents() []Event {
	return []Event{
		{Kind: KindProgram, Name: "linear regression v2", Cores: 48},
		{Kind: KindSymbol, Name: "main_array", Addr: 0x10000040, Size: 4096},
		{Kind: KindObject, Addr: 0x40000000, Size: 640, Class: 1024, TID: 3, Seq: 7, Live: true,
			Stack: heap.CallStack{
				{File: "linear_regression-pthread.c", Line: 139, Func: "main"},
				{File: "dir with space/file,odd:name.c", Line: 7, Func: "fn%1"},
			}},
		{Kind: KindObject, Addr: 0x40010000, Size: 16, Class: 16, TID: 0, Seq: 8, Live: false},
		{Kind: KindPhase, Phase: 0, Parallel: false, Name: "init"},
		{Kind: KindPhase, Phase: 1, Parallel: true, Name: "map workers"},
		{Kind: KindAccess, TID: 0, Write: true, Addr: 0x10000040, Size: 4, IP: 1, Lat: 3, Phase: 0},
		{Kind: KindAccess, TID: 5, Write: false, Addr: 0x40000004, Size: 8, IP: 123456789, Lat: 180, Phase: 1},
		{Kind: KindThreadEnd, TID: 0, Phase: 0, Instrs: 42},
		{Kind: KindThreadEnd, TID: 5, Phase: 1, Instrs: 999999999},
	}
}

func encodeAll(t *testing.T, enc Encoder, evs []Event) {
	t.Helper()
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Fatalf("encode %+v: %v", ev, err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func decodeAll(t *testing.T, r io.Reader) []Event {
	t.Helper()
	d := NewDecoder(r)
	var out []Event
	for {
		ev, err := d.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decode after %d events: %v", len(out), err)
		}
		out = append(out, ev)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, framing := range []string{"text", "binary"} {
		t.Run(framing, func(t *testing.T) {
			var buf bytes.Buffer
			var enc Encoder
			if framing == "text" {
				enc = NewTextEncoder(&buf)
			} else {
				enc = NewBinaryEncoder(&buf)
			}
			want := sampleEvents()
			encodeAll(t, enc, want)
			got := decodeAll(t, bytes.NewReader(buf.Bytes()))
			if len(got) != len(want) {
				t.Fatalf("decoded %d events, want %d", len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("event %d:\n got %+v\nwant %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestTextDataRowsAreToolFriendly(t *testing.T) {
	// The data rows must be plain space-separated `tid op addr size ip
	// lat phase` so awk-style tools can consume them, with metadata on
	// `#` lines.
	var buf bytes.Buffer
	enc := NewTextEncoder(&buf)
	encodeAll(t, enc, sampleEvents())
	var data, meta int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			meta++
			continue
		}
		data++
		if n := len(strings.Fields(line)); n != 7 {
			t.Errorf("data row %q has %d fields, want 7", line, n)
		}
	}
	if data != 2 || meta < 7 {
		t.Errorf("got %d data rows and %d meta rows", data, meta)
	}
}

func TestDecoderRejectsMalformedInput(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad first byte":    "hello\n",
		"bad header":        "#cheetah-trace v99\n",
		"short data row":    "#cheetah-trace v1\n1 r 0x10\n",
		"bad op":            "#cheetah-trace v1\n1 x 0x10 4 1 0 0\n",
		"bad tid":           "#cheetah-trace v1\nbig r 0x10 4 1 0 0\n",
		"huge phase":        "#cheetah-trace v1\n1 r 0x10 4 1 0 999999999\n",
		"unknown directive": "#cheetah-trace v1\n#wat 1 2 3\n",
		"bad frame":         "#cheetah-trace v1\n#object 0x40000000 16 16 0 1 1 nocolonhere\n",
		"bad escape":        "#cheetah-trace v1\n#object 0x40000000 16 16 0 1 1 a%zz:1:f\n",
		"truncated binary":  string([]byte{0x00, 'C', 'H', 'T', 'R', 'B', '1', '\n', byte(KindAccess), 0x05}),
		"bad magic":         string([]byte{0x00, 'X', 'X', 'X', 'X', 'X', 'X', '\n'}),
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			d := NewDecoder(strings.NewReader(in))
			for i := 0; i < 1000; i++ {
				_, err := d.Next()
				if err == io.EOF {
					t.Fatalf("decoder accepted malformed input")
				}
				if err != nil {
					return // rejected, as required
				}
			}
			t.Fatal("decoder neither errored nor terminated")
		})
	}
}

func TestReadRequiresProgramRecord(t *testing.T) {
	_, err := Read(strings.NewReader("#cheetah-trace v1\n0 r 0x10000040 4 1 0 0\n"))
	if err == nil || !strings.Contains(err.Error(), "#program") {
		t.Errorf("Read without #program: err = %v, want missing-program error", err)
	}
}

func TestReadRejectsMultiThreadSerialPhase(t *testing.T) {
	in := "#cheetah-trace v1\n" +
		"#program 4 demo\n" +
		"#phase 0 s init\n" +
		"0 r 0x10000040 4 1 0 0\n" +
		"3 r 0x10000044 4 1 0 0\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Error("Read accepted a serial phase with a non-main thread")
	}
}

// TestForeignTraceSynthesis: a minimal imported trace — no metadata
// preamble beyond #program, raw 0x7f... addresses, zero ips — must
// replay: contiguous address runs become synthesized heap objects with
// `trace:N` call sites, and the profiler resolves samples to them.
func TestForeignTraceSynthesis(t *testing.T) {
	var b strings.Builder
	b.WriteString("#cheetah-trace v1\n#program 8 imported\n")
	// Two threads ping-ponging writes on one foreign cache line, plus a
	// second line far away: two synthesized objects.
	for i := 0; i < 400; i++ {
		tid := 1 + i%2
		addr := 0x7ffe00001000 + (i%2)*4
		fmtLine(&b, tid, "w", addr, i/2+1)
	}
	for i := 0; i < 50; i++ {
		fmtLine(&b, 3, "r", 0x7ffe00100000+(i%16)*4, i+1)
	}
	rp, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	sys := cheetah.New(cheetah.Config{Cores: rp.Cores})
	if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	rep, res := sys.Profile(rp.Program(), cheetah.ProfileOptions{
		PMU: pmu.Config{Period: 8, Jitter: 2},
	})
	if res.TotalCycles == 0 {
		t.Fatal("replayed foreign trace did not run")
	}
	if rep.Samples == 0 {
		t.Fatal("no samples accepted: synthesized objects not resolvable")
	}
	found := false
	for _, in := range append(append([]cheetah.Instance{}, rep.Instances...), rep.Candidates...) {
		for _, f := range in.Object.Stack {
			if f.File == "trace" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no reported object carries a synthesized trace:N call site")
	}
}

func fmtLine(b *strings.Builder, tid int, op string, addr, ip int) {
	b.WriteString(
		// tid op addr size ip lat phase — lat 0: replay recomputes it.
		func() string {
			return strings.Join([]string{
				itoa(tid), op, "0x" + hex(addr), "4", itoa(ip), "0", "1",
			}, " ") + "\n"
		}())
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func hex(n int) string {
	if n == 0 {
		return "0"
	}
	const digits = "0123456789abcdef"
	var d []byte
	for n > 0 {
		d = append([]byte{digits[n%16]}, d...)
		n /= 16
	}
	return string(d)
}

// TestReplayPreservesSubWordSizes: byte and halfword accesses from
// imported traces keep their recorded width on the replayed accesses
// (size 0 maps to a word), and widths above 255 are rejected.
func TestReplayPreservesSubWordSizes(t *testing.T) {
	in := "#cheetah-trace v1\n" +
		"#program 4 bytes\n" +
		"#phase 0 p work\n" +
		"1 w 0x10000040 1 1 0 0\n" +
		"2 r 0x10000041 2 1 0 0\n" +
		"1 w 0x10000044 0 2 0 0\n"
	rp, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	sys := cheetah.New(cheetah.Config{Cores: 4})
	if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	var buf bytes.Buffer
	rec := NewRecorder(NewTextEncoder(&buf), sys.Heap(), sys.Globals())
	sys.RunWith(rp.Program(), rec)
	got := buf.String()
	for _, want := range []string{"1 w 0x10000040 1 ", "2 r 0x10000041 2 ", "1 w 0x10000044 4 "} {
		if !strings.Contains(got, want) {
			t.Errorf("re-recorded trace missing %q:\n%s", want, got)
		}
	}

	if _, err := Read(strings.NewReader("#cheetah-trace v1\n#program 4 x\n1 w 0x10 256 1 0 0\n")); err == nil {
		t.Error("Read accepted a 256-byte access")
	}
}

// TestDecodersBoundInstructionCounts: ip and thread-end instruction
// totals convert into simulated compute on replay, so values past
// MaxInstrs must be rejected by both framings — otherwise a hostile
// trace passes Validate and then replays effectively forever.
func TestDecodersBoundInstructionCounts(t *testing.T) {
	hugeIP := "#cheetah-trace v1\n#program 4 x\n1 w 0x40000000 4 4611686018427387904 0 0\n"
	if _, err := Read(strings.NewReader(hugeIP)); err == nil {
		t.Error("text decoder accepted ip 2^62")
	}
	hugeEnd := "#cheetah-trace v1\n#program 4 x\n#threadend 1 0 18446744073709551615\n"
	if _, err := Read(strings.NewReader(hugeEnd)); err == nil {
		t.Error("text decoder accepted thread-end instrs 2^64-1")
	}
	b := append([]byte{}, binaryMagicFor(BinaryV1)...)
	b = append(b, byte(KindAccess))
	b = appendUvarintForTest(b, 1)          // tid
	b = append(b, 1)                        // write
	b = appendUvarintForTest(b, 0x40000000) // addr
	b = appendUvarintForTest(b, 4)          // size
	b = appendUvarintForTest(b, 1<<62)      // ip
	d := NewDecoder(bytes.NewReader(b))
	if _, err := d.Next(); err == nil {
		t.Error("binary decoder accepted ip 2^62")
	}
}

// TestSymtabRestoreRejectsWrappingSize: a symbol whose Addr+Size wraps
// uint64 must be rejected, not inserted with End < Addr (which would
// corrupt the table's sorted invariant and break Resolve).
func TestSymtabRestoreRejectsWrappingSize(t *testing.T) {
	in := "#cheetah-trace v1\n#program 4 wrap\n" +
		"#symbol 0x10000000 18446744073709551600 x\n" +
		"#phase 0 p w\n1 w 0x10000000 4 1 0 0\n"
	rp, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	sys := cheetah.New(cheetah.Config{Cores: 4})
	if err := rp.Prepare(sys.Heap(), sys.Globals()); err == nil {
		t.Error("Prepare accepted a symbol with wrapping size")
	}
	if _, ok := sys.Globals().Resolve(0x10000000); ok {
		t.Error("wrapping symbol was inserted into the table")
	}
}

// TestBinaryDecoderBoundsAreInclusiveMaxima: field values one past the
// representable range must error, not silently truncate.
func TestBinaryDecoderBoundsAreInclusiveMaxima(t *testing.T) {
	record := func(lat uint64) []byte {
		b := append([]byte{}, binaryMagicFor(BinaryV1)...)
		b = append(b, byte(KindAccess))
		b = appendUvarintForTest(b, 1)    // tid
		b = append(b, 1)                  // write
		b = appendUvarintForTest(b, 0x40) // addr
		b = appendUvarintForTest(b, 4)    // size
		b = appendUvarintForTest(b, 1)    // ip
		b = appendUvarintForTest(b, lat)  // lat
		return appendUvarintForTest(b, 0) // phase
	}
	d := NewDecoder(bytes.NewReader(record(1 << 32)))
	if _, err := d.Next(); err == nil {
		t.Error("decoder accepted lat 2^32 (would truncate to 0)")
	}
	d = NewDecoder(bytes.NewReader(record(1<<32 - 1)))
	ev, err := d.Next()
	if err != nil {
		t.Fatalf("decoder rejected max lat: %v", err)
	}
	if ev.Lat != 1<<32-1 {
		t.Errorf("lat = %d, want %d", ev.Lat, uint32(1<<32-1))
	}
}

func appendUvarintForTest(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// TestPrepareConvertsLayoutPanicsToErrors: a trace whose restored
// layout exhausts the heap makes the synthesis Malloc panic internally;
// Prepare must surface that as an error — trace files are external
// input.
func TestPrepareConvertsLayoutPanicsToErrors(t *testing.T) {
	// Restore an object at the top of the 1 GB default heap (pushing the
	// bump pointer to the limit), then access a foreign address so
	// synthesis must allocate — and cannot.
	in := "#cheetah-trace v1\n" +
		"#program 4 exhaust\n" +
		"#object 0x7fff0000 16 16 0 1 1 -\n" +
		"#phase 0 p work\n" +
		"1 w 0x900000000 4 1 0 0\n"
	rp, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	sys := cheetah.New(cheetah.Config{Cores: 4})
	err = rp.Prepare(sys.Heap(), sys.Globals())
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("Prepare on exhausted heap: err = %v, want out-of-memory error", err)
	}
}

// TestValidateRunsWholePipeline: Validate must reject traces that
// decode cleanly but cannot be restored (duplicate objects), and accept
// good files.
func TestValidateRunsWholePipeline(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "overlap.trace")
	overlap := "#cheetah-trace v1\n" +
		"#program 4 dup\n" +
		"#object 0x40000000 16 16 0 1 1 -\n" +
		"#object 0x40000000 16 16 0 2 1 -\n" +
		"#phase 0 p work\n" +
		"1 w 0x40000000 4 1 0 0\n"
	if err := os.WriteFile(bad, []byte(overlap), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "occupied") {
		t.Errorf("Validate(overlapping objects) = %v, want slot-occupied error", err)
	}
	good := filepath.Join(dir, "good.trace")
	if err := os.WriteFile(good, []byte("#cheetah-trace v1\n#program 4 ok\n#phase 0 p w\n1 w 0x40000000 4 1 0 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Validate(good); err != nil {
		t.Errorf("Validate(good trace) = %v", err)
	}
	if err := Validate(filepath.Join(dir, "missing.trace")); err == nil {
		t.Error("Validate(missing file) = nil")
	}
}

// TestReplayPreservesPhaseGaps: empty phases in the middle of a program
// keep later phases at their recorded indices.
func TestReplayPreservesPhaseGaps(t *testing.T) {
	in := "#cheetah-trace v1\n" +
		"#program 4 gappy\n" +
		"#phase 0 s init\n" +
		"0 w 0x10000040 4 1 0 0\n" +
		"#threadend 0 0 1\n" +
		"#phase 3 p late\n" +
		"1 w 0x10000040 4 1 0 3\n" +
		"2 w 0x10000044 4 1 0 3\n" +
		"#threadend 1 3 1\n" +
		"#threadend 2 3 1\n"
	rp, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	sys := cheetah.New(cheetah.Config{Cores: rp.Cores})
	if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	prog := rp.Program()
	if len(prog.Phases) != 4 {
		t.Fatalf("program has %d phases, want 4 (two empty)", len(prog.Phases))
	}
	res := sys.Run(prog)
	if len(res.Phases) != 2 {
		t.Fatalf("engine ran %d phases, want 2", len(res.Phases))
	}
	if res.Phases[1].Index != 3 {
		t.Errorf("late phase ran at index %d, want recorded index 3", res.Phases[1].Index)
	}
}

// TestMemoryLayoutRestoreRoundTrip: heap objects and symbols recorded
// from one system reappear exactly in a fresh one.
func TestMemoryLayoutRestoreRoundTrip(t *testing.T) {
	sys := cheetah.New(cheetah.Config{Cores: 4})
	sym := sys.Globals().Define("counters", 256)
	big := sys.Heap().Malloc(2, 100_000, heap.Stack(heap.Frame{File: "big.c", Line: 1}))
	small := sys.Heap().Malloc(1, 24, heap.Stack(heap.Frame{File: "small.c", Line: 2, Func: "alloc"}))
	freed := sys.Heap().Malloc(1, 24, heap.Stack(heap.Frame{File: "small.c", Line: 3}))
	sys.Heap().Free(freed)

	var buf bytes.Buffer
	enc := NewTextEncoder(&buf)
	rec := NewRecorder(enc, sys.Heap(), sys.Globals())
	rec.ProgramStart("layout", 4)
	rec.ProgramEnd(0)
	if err := rec.Err(); err != nil {
		t.Fatalf("recording layout: %v", err)
	}

	rp, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	sys2 := cheetah.New(cheetah.Config{Cores: 4})
	if err := rp.Prepare(sys2.Heap(), sys2.Globals()); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	for _, addr := range []mem.Addr{big, small, freed} {
		o1, ok1 := sys.Heap().Lookup(addr)
		o2, ok2 := sys2.Heap().Lookup(addr)
		if !ok1 || !ok2 {
			t.Fatalf("object at %v: lookup ok %v/%v", addr, ok1, ok2)
		}
		if !reflect.DeepEqual(o1, o2) {
			t.Errorf("object at %v differs:\n got %+v\nwant %+v", addr, o2, o1)
		}
	}
	s1, ok1 := sys.Globals().Resolve(sym)
	s2, ok2 := sys2.Globals().Resolve(sym)
	if !ok1 || !ok2 || s1 != s2 {
		t.Errorf("symbol at %v differs: %+v/%v vs %+v/%v", sym, s1, ok1, s2, ok2)
	}
}
