package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/heap"
	"repro/internal/mem"
)

// Binary framing versions. The framing carries the same schema as the
// text form; the version selects only how records are laid out on disk.
// v1 encodes every column as an absolute uvarint; v2 delta-encodes the
// hot columns (per-thread addr/ip/size/lat/phase on access records,
// addr/seq runs on the metadata snapshot) as zigzag varints, which
// shrinks typical traces severalfold. The decoder auto-detects the
// version from the magic, so v1 corpus files decode forever.
const (
	BinaryV1 = 1
	BinaryV2 = 2
	// BinaryV3 is v2's record layout plus an optional seekable index
	// block at end of stream (see index.go). NewIndexedEncoder writes it;
	// sequential decoding is identical to v2, so a v3 trace replays
	// through every existing path unchanged.
	BinaryV3 = 3
	// BinaryVersion is the framing NewBinaryEncoder writes.
	BinaryVersion = BinaryV2
	// binaryMaxVersion is the newest framing the decoder accepts.
	binaryMaxVersion = BinaryV3
)

// binaryMagicFor returns the magic opening a binary trace of the given
// framing version. The leading NUL distinguishes binary from text
// framing ('#') in one byte.
func binaryMagicFor(version int) []byte {
	return []byte{0x00, 'C', 'H', 'T', 'R', 'B', '0' + byte(version), '\n'}
}

// BinaryEncoder writes the compact varint framing.
type BinaryEncoder struct {
	w       *bufio.Writer
	buf     []byte
	err     error
	version int
	// written is the logical byte offset past the last record handed to
	// the bufio writer (buffered or flushed) — the index writer's source
	// of record offsets, maintained here so no counting wrapper has to
	// sit under the buffer.
	written uint64
	// Per-thread column predictors (v2). Values, not pointers: the map is
	// bounded by the distinct thread ids of the trace being written.
	prev map[mem.ThreadID]accessState
	meta metaState
	// onRecord, when set, observes the exact bytes of each encoded record
	// after it is written. The index writer hooks it to checksum record
	// payloads span by span without re-reading the stream.
	onRecord func([]byte)
}

// accessState is one thread's last-seen access columns, the prediction
// context for v2 delta encoding. The zero value is the defined initial
// context, so a thread's first access encodes its absolute values.
type accessState struct {
	addr  uint64
	ip    uint64
	size  uint64
	lat   uint64
	phase uint64
}

// v2 access-record flag bits. Bit 0 is the store/load bit (shared with
// v1's write byte); the "same" bits elide columns whose value repeats
// the thread's previous access — in practice most accesses keep their
// width, phase and (for cache hits) latency, so a typical access record
// is kind + tid + flags + two short deltas.
const (
	accessWrite     = 1 << 0
	accessSameSize  = 1 << 1
	accessSameLat   = 1 << 2
	accessSamePhase = 1 << 3
	accessFlagsMask = accessWrite | accessSameSize | accessSameLat | accessSamePhase
)

// metaState is the prediction context for the layout snapshot: symbol
// and object records each delta-encode their base address against the
// previous record of the same kind (the snapshot is emitted in address
// order, so the deltas are short), and objects additionally
// delta-encode the allocation sequence number.
type metaState struct {
	symAddr uint64
	objAddr uint64
	objSeq  uint64
}

// NewBinaryEncoder creates a binary encoder over w in the current
// framing version. The magic is written immediately; any error surfaces
// from Encode or Close.
func NewBinaryEncoder(w io.Writer) *BinaryEncoder {
	return newBinaryEncoder(w, BinaryVersion)
}

// NewBinaryEncoderV1 creates an encoder writing the legacy v1 framing —
// absolute-value varints, no cross-record state. New traces should use
// NewBinaryEncoder; v1 writing is kept so compatibility tooling and
// tests can regenerate v1 streams.
func NewBinaryEncoderV1(w io.Writer) *BinaryEncoder {
	return newBinaryEncoder(w, BinaryV1)
}

func newBinaryEncoder(w io.Writer, version int) *BinaryEncoder {
	e := &BinaryEncoder{
		w:       bufio.NewWriterSize(w, 1<<16),
		buf:     make([]byte, 0, 256),
		version: version,
		prev:    make(map[mem.ThreadID]accessState),
	}
	magic := binaryMagicFor(version)
	_, e.err = e.w.Write(magic)
	e.written = uint64(len(magic))
	return e
}

// Encode implements Encoder.
func (e *BinaryEncoder) Encode(ev Event) error {
	if e.err != nil {
		return e.err
	}
	b := append(e.buf[:0], byte(ev.Kind))
	switch ev.Kind {
	case KindProgram:
		b = binary.AppendUvarint(b, uint64(ev.Cores))
		b = appendString(b, ev.Name)
	case KindSymbol:
		if e.version >= BinaryV2 {
			b = appendZigzag(b, uint64(ev.Addr)-e.meta.symAddr)
			e.meta.symAddr = uint64(ev.Addr)
		} else {
			b = binary.AppendUvarint(b, uint64(ev.Addr))
		}
		b = binary.AppendUvarint(b, ev.Size)
		b = appendString(b, ev.Name)
	case KindObject:
		if e.version >= BinaryV2 {
			b = appendZigzag(b, uint64(ev.Addr)-e.meta.objAddr)
			e.meta.objAddr = uint64(ev.Addr)
		} else {
			b = binary.AppendUvarint(b, uint64(ev.Addr))
		}
		b = binary.AppendUvarint(b, ev.Size)
		b = binary.AppendUvarint(b, ev.Class)
		b = binary.AppendUvarint(b, uint64(ev.TID))
		if e.version >= BinaryV2 {
			b = appendZigzag(b, ev.Seq-e.meta.objSeq)
			e.meta.objSeq = ev.Seq
		} else {
			b = binary.AppendUvarint(b, ev.Seq)
		}
		b = append(b, byte(b2i(ev.Live)))
		b = binary.AppendUvarint(b, uint64(len(ev.Stack)))
		for _, f := range ev.Stack {
			b = appendString(b, f.File)
			b = binary.AppendUvarint(b, uint64(f.Line))
			b = appendString(b, f.Func)
		}
	case KindPhase:
		b = binary.AppendUvarint(b, uint64(ev.Phase))
		b = append(b, byte(b2i(ev.Parallel)))
		b = appendString(b, ev.Name)
	case KindThreadEnd:
		b = binary.AppendUvarint(b, uint64(ev.TID))
		b = binary.AppendUvarint(b, uint64(ev.Phase))
		b = binary.AppendUvarint(b, ev.Instrs)
	case KindNote:
		b = appendString(b, ev.Name)
	case KindAccess:
		b = binary.AppendUvarint(b, uint64(ev.TID))
		if e.version >= BinaryV2 {
			st := e.prev[ev.TID]
			flags := byte(b2i(ev.Write))
			if ev.Size == st.size {
				flags |= accessSameSize
			}
			if uint64(ev.Lat) == st.lat {
				flags |= accessSameLat
			}
			if uint64(ev.Phase) == st.phase {
				flags |= accessSamePhase
			}
			b = append(b, flags)
			b = appendZigzag(b, uint64(ev.Addr)-st.addr)
			b = appendZigzag(b, ev.IP-st.ip)
			if flags&accessSameSize == 0 {
				b = appendZigzag(b, ev.Size-st.size)
			}
			if flags&accessSameLat == 0 {
				b = appendZigzag(b, uint64(ev.Lat)-st.lat)
			}
			if flags&accessSamePhase == 0 {
				b = appendZigzag(b, uint64(ev.Phase)-st.phase)
			}
			e.prev[ev.TID] = accessState{
				addr: uint64(ev.Addr), ip: ev.IP, size: ev.Size,
				lat: uint64(ev.Lat), phase: uint64(ev.Phase),
			}
		} else {
			b = append(b, byte(b2i(ev.Write)))
			b = binary.AppendUvarint(b, uint64(ev.Addr))
			b = binary.AppendUvarint(b, ev.Size)
			b = binary.AppendUvarint(b, ev.IP)
			b = binary.AppendUvarint(b, uint64(ev.Lat))
			b = binary.AppendUvarint(b, uint64(ev.Phase))
		}
	default:
		return fmt.Errorf("trace: encode: unknown event kind %d", ev.Kind)
	}
	e.buf = b[:0]
	_, e.err = e.w.Write(b)
	e.written += uint64(len(b))
	if e.err == nil && e.onRecord != nil {
		e.onRecord(b)
	}
	return e.err
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendZigzag writes a wrapping column delta as a zigzag varint: the
// difference is computed in wrapping uint64 arithmetic, reinterpreted as
// signed so small moves in either direction encode in one or two bytes,
// and the decoder reverses it with a wrapping add — an exact round trip
// for every uint64 value.
func appendZigzag(b []byte, delta uint64) []byte {
	d := int64(delta)
	return binary.AppendUvarint(b, uint64(d<<1)^uint64(d>>63))
}

// Close implements Encoder, flushing buffered output.
func (e *BinaryEncoder) Close() error {
	if e.err != nil {
		return e.err
	}
	e.err = e.w.Flush()
	return e.err
}

// binaryDecoder streams the varint framing back into events.
type binaryDecoder struct {
	br      *bufio.Reader
	version int
	// err latches the first failure: once any record fails to decode the
	// stream position is unsynchronized (and in v2 the prediction state
	// may be half-updated), so every later call must return the same
	// error rather than misparse from a random offset.
	err error
	// prev and meta mirror the encoder's prediction context (v2).
	prev map[mem.ThreadID]accessState
	meta metaState
	// sawIndex records that the stream ended at a valid index block
	// (v3), for metadata inspection.
	sawIndex bool
}

// newBinaryDecoder validates the magic, detects the framing version and
// returns a streaming decoder.
func newBinaryDecoder(br *bufio.Reader) (*binaryDecoder, error) {
	head := make([]byte, len(binaryMagicFor(BinaryV1)))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: truncated binary magic: %w", err)
	}
	version := 0
	for v := BinaryV1; v <= binaryMaxVersion; v++ {
		if string(head) == string(binaryMagicFor(v)) {
			version = v
			break
		}
	}
	if version == 0 {
		return nil, fmt.Errorf("trace: bad binary magic %q", head)
	}
	d := &binaryDecoder{br: br, version: version, prev: make(map[mem.ThreadID]accessState)}
	return d, nil
}

// next returns the next event. All errors — including io.EOF — are
// terminal: the decoder latches the first one and returns it forever.
func (d *binaryDecoder) next() (Event, error) {
	if d.err != nil {
		return Event{}, d.err
	}
	ev, err := d.decode()
	if err != nil {
		d.err = err
		return Event{}, err
	}
	return ev, nil
}

func (d *binaryDecoder) decode() (Event, error) {
	kind, err := d.br.ReadByte()
	if err == io.EOF {
		return Event{}, io.EOF
	}
	if err != nil {
		return Event{}, fmt.Errorf("trace: %w", err)
	}
	if kind == kindIndexBlock && d.version >= BinaryV3 {
		// Sequential readers skip the index: consume the payload,
		// validate the footer, and require a clean end of file — so an
		// indexed trace decodes to exactly its record stream, and any
		// truncation or trailing garbage is a terminal error.
		if err := d.skipIndexBlock(); err != nil {
			return Event{}, err
		}
		d.sawIndex = true
		return Event{}, io.EOF
	}
	ev := Event{Kind: Kind(kind)}
	switch ev.Kind {
	case KindProgram:
		cores, err := d.uvarint("cores", 1<<16-1)
		if err != nil {
			return Event{}, err
		}
		if cores == 0 {
			return Event{}, fmt.Errorf("trace: zero core count")
		}
		ev.Cores = int(cores)
		if ev.Name, err = d.string("program name"); err != nil {
			return Event{}, err
		}
	case KindSymbol:
		addr, err := d.column("addr", 1<<62, &d.meta.symAddr)
		if err != nil {
			return Event{}, err
		}
		ev.Addr = mem.Addr(addr)
		if err := d.fields(
			field{"size", 1 << 40, func(v uint64) { ev.Size = v }},
		); err != nil {
			return Event{}, err
		}
		if ev.Name, err = d.string("symbol name"); err != nil {
			return Event{}, err
		}
	case KindObject:
		addr, err := d.column("addr", 1<<62, &d.meta.objAddr)
		if err != nil {
			return Event{}, err
		}
		ev.Addr = mem.Addr(addr)
		if err := d.fields(
			field{"size", 1 << 40, func(v uint64) { ev.Size = v }},
			field{"class", 1 << 40, func(v uint64) { ev.Class = v }},
			field{"thread", MaxThreadID, func(v uint64) { ev.TID = mem.ThreadID(v) }},
		); err != nil {
			return Event{}, err
		}
		if ev.Seq, err = d.column("seq", 1<<62, &d.meta.objSeq); err != nil {
			return Event{}, err
		}
		live, err := d.br.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated object: %w", err)
		}
		ev.Live = live != 0
		nframes, err := d.uvarint("frame count", MaxFrames)
		if err != nil {
			return Event{}, err
		}
		if nframes > 0 {
			ev.Stack = make(heap.CallStack, 0, nframes)
		}
		for i := uint64(0); i < nframes; i++ {
			var f heap.Frame
			if f.File, err = d.string("frame file"); err != nil {
				return Event{}, err
			}
			line, err := d.uvarint("frame line", 1<<31)
			if err != nil {
				return Event{}, err
			}
			f.Line = int(line)
			if f.Func, err = d.string("frame func"); err != nil {
				return Event{}, err
			}
			ev.Stack = append(ev.Stack, f)
		}
	case KindPhase:
		idx, err := d.uvarint("phase index", MaxPhaseIndex)
		if err != nil {
			return Event{}, err
		}
		ev.Phase = int(idx)
		par, err := d.br.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated phase: %w", err)
		}
		ev.Parallel = par != 0
		if ev.Name, err = d.string("phase name"); err != nil {
			return Event{}, err
		}
	case KindThreadEnd:
		if err := d.fields(
			field{"thread id", MaxThreadID, func(v uint64) { ev.TID = mem.ThreadID(v) }},
			field{"phase index", MaxPhaseIndex, func(v uint64) { ev.Phase = int(v) }},
			field{"instrs", MaxInstrs, func(v uint64) { ev.Instrs = v }},
		); err != nil {
			return Event{}, err
		}
	case KindNote:
		var err error
		if ev.Name, err = d.string("note"); err != nil {
			return Event{}, err
		}
	case KindAccess:
		tid, err := d.uvarint("thread id", MaxThreadID)
		if err != nil {
			return Event{}, err
		}
		ev.TID = mem.ThreadID(tid)
		if d.version >= BinaryV2 {
			flags, err := d.br.ReadByte()
			if err != nil {
				return Event{}, fmt.Errorf("trace: truncated access: %w", err)
			}
			if flags&^byte(accessFlagsMask) != 0 {
				return Event{}, fmt.Errorf("trace: unknown access flag bits %#02x", flags)
			}
			ev.Write = flags&accessWrite != 0
			st := d.prev[ev.TID]
			if err := d.accessColumns(&ev, &st, flags); err != nil {
				return Event{}, err
			}
			d.prev[ev.TID] = st
			break
		}
		write, err := d.br.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated access: %w", err)
		}
		ev.Write = write != 0
		if err := d.fields(
			field{"addr", 1 << 62, func(v uint64) { ev.Addr = mem.Addr(v) }},
			field{"size", 1<<16 - 1, func(v uint64) { ev.Size = v }},
			field{"ip", MaxInstrs, func(v uint64) { ev.IP = v }},
			field{"lat", 1<<32 - 1, func(v uint64) { ev.Lat = uint32(v) }},
			field{"phase index", MaxPhaseIndex, func(v uint64) { ev.Phase = int(v) }},
		); err != nil {
			return Event{}, err
		}
	default:
		return Event{}, fmt.Errorf("trace: unknown event kind %d", kind)
	}
	return ev, nil
}

// accessColumns decodes the v2 delta-encoded access columns against the
// thread's prediction state, updating it in place. Columns whose "same"
// flag is set repeat the state value and occupy no bytes.
func (d *binaryDecoder) accessColumns(ev *Event, st *accessState, flags byte) error {
	for _, c := range []struct {
		name string
		max  uint64
		prev *uint64
		same bool
	}{
		{"addr", 1 << 62, &st.addr, false},
		{"ip", MaxInstrs, &st.ip, false},
		{"size", 1<<16 - 1, &st.size, flags&accessSameSize != 0},
		{"lat", 1<<32 - 1, &st.lat, flags&accessSameLat != 0},
		{"phase index", MaxPhaseIndex, &st.phase, flags&accessSamePhase != 0},
	} {
		if c.same {
			continue
		}
		if _, err := d.column(c.name, c.max, c.prev); err != nil {
			return err
		}
	}
	ev.Addr = mem.Addr(st.addr)
	ev.IP = st.ip
	ev.Size = st.size
	ev.Lat = uint32(st.lat)
	ev.Phase = int(st.phase)
	return nil
}

// column reads one bounded column value: a delta-encoded zigzag varint
// applied to *prev in v2, an absolute uvarint in v1. On success *prev is
// updated to the decoded value.
func (d *binaryDecoder) column(what string, max uint64, prev *uint64) (uint64, error) {
	if d.version < BinaryV2 {
		v, err := d.uvarint(what, max)
		if err != nil {
			return 0, err
		}
		*prev = v
		return v, nil
	}
	z, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, fmt.Errorf("trace: truncated %s delta: %w", what, err)
	}
	delta := uint64(int64(z>>1) ^ -int64(z&1))
	// Wrapping add mirrors the encoder's wrapping subtract exactly; the
	// bound check below keeps hostile deltas from smuggling in values the
	// absolute v1 column would have rejected.
	v := *prev + delta
	if v > max {
		return 0, fmt.Errorf("trace: %s %d exceeds limit %d", what, v, max)
	}
	*prev = v
	return v, nil
}

// field is one bounded uvarint field of a binary record.
type field struct {
	name string
	max  uint64
	set  func(uint64)
}

func (d *binaryDecoder) fields(fs ...field) error {
	for _, f := range fs {
		v, err := d.uvarint(f.name, f.max)
		if err != nil {
			return err
		}
		f.set(v)
	}
	return nil
}

func (d *binaryDecoder) uvarint(what string, max uint64) (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, fmt.Errorf("trace: truncated %s: %w", what, err)
	}
	if v > max {
		return 0, fmt.Errorf("trace: %s %d exceeds limit %d", what, v, max)
	}
	return v, nil
}

func (d *binaryDecoder) string(what string) (string, error) {
	n, err := d.uvarint(what+" length", MaxStringLen)
	if err != nil {
		return "", err
	}
	// Read incrementally rather than allocating n upfront: the length is
	// attacker-controlled and the stream may be shorter.
	buf := make([]byte, 0, min(n, 4096))
	for uint64(len(buf)) < n {
		c, err := d.br.ReadByte()
		if err != nil {
			return "", fmt.Errorf("trace: truncated %s: %w", what, err)
		}
		buf = append(buf, c)
	}
	return string(buf), nil
}
