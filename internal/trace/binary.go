package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/heap"
	"repro/internal/mem"
)

// binaryMagic opens every binary trace. The leading NUL distinguishes
// binary from text framing ('#') in one byte.
var binaryMagic = []byte{0x00, 'C', 'H', 'T', 'R', 'B', '0' + Version, '\n'}

// BinaryEncoder writes the compact varint framing.
type BinaryEncoder struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewBinaryEncoder creates a binary encoder over w. The magic is written
// immediately; any error surfaces from Encode or Close.
func NewBinaryEncoder(w io.Writer) *BinaryEncoder {
	e := &BinaryEncoder{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
	_, e.err = e.w.Write(binaryMagic)
	return e
}

// Encode implements Encoder.
func (e *BinaryEncoder) Encode(ev Event) error {
	if e.err != nil {
		return e.err
	}
	b := append(e.buf[:0], byte(ev.Kind))
	switch ev.Kind {
	case KindProgram:
		b = binary.AppendUvarint(b, uint64(ev.Cores))
		b = appendString(b, ev.Name)
	case KindSymbol:
		b = binary.AppendUvarint(b, uint64(ev.Addr))
		b = binary.AppendUvarint(b, ev.Size)
		b = appendString(b, ev.Name)
	case KindObject:
		b = binary.AppendUvarint(b, uint64(ev.Addr))
		b = binary.AppendUvarint(b, ev.Size)
		b = binary.AppendUvarint(b, ev.Class)
		b = binary.AppendUvarint(b, uint64(ev.TID))
		b = binary.AppendUvarint(b, ev.Seq)
		b = append(b, byte(b2i(ev.Live)))
		b = binary.AppendUvarint(b, uint64(len(ev.Stack)))
		for _, f := range ev.Stack {
			b = appendString(b, f.File)
			b = binary.AppendUvarint(b, uint64(f.Line))
			b = appendString(b, f.Func)
		}
	case KindPhase:
		b = binary.AppendUvarint(b, uint64(ev.Phase))
		b = append(b, byte(b2i(ev.Parallel)))
		b = appendString(b, ev.Name)
	case KindThreadEnd:
		b = binary.AppendUvarint(b, uint64(ev.TID))
		b = binary.AppendUvarint(b, uint64(ev.Phase))
		b = binary.AppendUvarint(b, ev.Instrs)
	case KindAccess:
		b = binary.AppendUvarint(b, uint64(ev.TID))
		b = append(b, byte(b2i(ev.Write)))
		b = binary.AppendUvarint(b, uint64(ev.Addr))
		b = binary.AppendUvarint(b, ev.Size)
		b = binary.AppendUvarint(b, ev.IP)
		b = binary.AppendUvarint(b, uint64(ev.Lat))
		b = binary.AppendUvarint(b, uint64(ev.Phase))
	default:
		return fmt.Errorf("trace: encode: unknown event kind %d", ev.Kind)
	}
	e.buf = b[:0]
	_, e.err = e.w.Write(b)
	return e.err
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Close implements Encoder, flushing buffered output.
func (e *BinaryEncoder) Close() error {
	if e.err != nil {
		return e.err
	}
	e.err = e.w.Flush()
	return e.err
}

// binaryDecoder streams the varint framing back into events.
type binaryDecoder struct {
	br *bufio.Reader
}

// newBinaryDecoder validates the magic and returns a streaming decoder.
func newBinaryDecoder(br *bufio.Reader) (func() (Event, error), error) {
	head := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: truncated binary magic: %w", err)
	}
	for i, c := range binaryMagic {
		if head[i] != c {
			return nil, fmt.Errorf("trace: bad binary magic %q", head)
		}
	}
	d := &binaryDecoder{br: br}
	return d.next, nil
}

func (d *binaryDecoder) next() (Event, error) {
	kind, err := d.br.ReadByte()
	if err == io.EOF {
		return Event{}, io.EOF
	}
	if err != nil {
		return Event{}, fmt.Errorf("trace: %w", err)
	}
	ev := Event{Kind: Kind(kind)}
	switch ev.Kind {
	case KindProgram:
		cores, err := d.uvarint("cores", 1<<16-1)
		if err != nil {
			return Event{}, err
		}
		if cores == 0 {
			return Event{}, fmt.Errorf("trace: zero core count")
		}
		ev.Cores = int(cores)
		if ev.Name, err = d.string("program name"); err != nil {
			return Event{}, err
		}
	case KindSymbol:
		if err := d.fields(
			field{"addr", 1 << 62, func(v uint64) { ev.Addr = mem.Addr(v) }},
			field{"size", 1 << 40, func(v uint64) { ev.Size = v }},
		); err != nil {
			return Event{}, err
		}
		var err error
		if ev.Name, err = d.string("symbol name"); err != nil {
			return Event{}, err
		}
	case KindObject:
		if err := d.fields(
			field{"addr", 1 << 62, func(v uint64) { ev.Addr = mem.Addr(v) }},
			field{"size", 1 << 40, func(v uint64) { ev.Size = v }},
			field{"class", 1 << 40, func(v uint64) { ev.Class = v }},
			field{"thread", MaxThreadID, func(v uint64) { ev.TID = mem.ThreadID(v) }},
			field{"seq", 1 << 62, func(v uint64) { ev.Seq = v }},
		); err != nil {
			return Event{}, err
		}
		live, err := d.br.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated object: %w", err)
		}
		ev.Live = live != 0
		nframes, err := d.uvarint("frame count", MaxFrames)
		if err != nil {
			return Event{}, err
		}
		if nframes > 0 {
			ev.Stack = make(heap.CallStack, 0, nframes)
		}
		for i := uint64(0); i < nframes; i++ {
			var f heap.Frame
			if f.File, err = d.string("frame file"); err != nil {
				return Event{}, err
			}
			line, err := d.uvarint("frame line", 1<<31)
			if err != nil {
				return Event{}, err
			}
			f.Line = int(line)
			if f.Func, err = d.string("frame func"); err != nil {
				return Event{}, err
			}
			ev.Stack = append(ev.Stack, f)
		}
	case KindPhase:
		idx, err := d.uvarint("phase index", MaxPhaseIndex)
		if err != nil {
			return Event{}, err
		}
		ev.Phase = int(idx)
		par, err := d.br.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated phase: %w", err)
		}
		ev.Parallel = par != 0
		if ev.Name, err = d.string("phase name"); err != nil {
			return Event{}, err
		}
	case KindThreadEnd:
		if err := d.fields(
			field{"thread id", MaxThreadID, func(v uint64) { ev.TID = mem.ThreadID(v) }},
			field{"phase index", MaxPhaseIndex, func(v uint64) { ev.Phase = int(v) }},
			field{"instrs", MaxInstrs, func(v uint64) { ev.Instrs = v }},
		); err != nil {
			return Event{}, err
		}
	case KindAccess:
		tid, err := d.uvarint("thread id", MaxThreadID)
		if err != nil {
			return Event{}, err
		}
		ev.TID = mem.ThreadID(tid)
		write, err := d.br.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated access: %w", err)
		}
		ev.Write = write != 0
		if err := d.fields(
			field{"addr", 1 << 62, func(v uint64) { ev.Addr = mem.Addr(v) }},
			field{"size", 1<<16 - 1, func(v uint64) { ev.Size = v }},
			field{"ip", MaxInstrs, func(v uint64) { ev.IP = v }},
			field{"lat", 1<<32 - 1, func(v uint64) { ev.Lat = uint32(v) }},
			field{"phase index", MaxPhaseIndex, func(v uint64) { ev.Phase = int(v) }},
		); err != nil {
			return Event{}, err
		}
	default:
		return Event{}, fmt.Errorf("trace: unknown event kind %d", kind)
	}
	return ev, nil
}

// field is one bounded uvarint field of a binary record.
type field struct {
	name string
	max  uint64
	set  func(uint64)
}

func (d *binaryDecoder) fields(fs ...field) error {
	for _, f := range fs {
		v, err := d.uvarint(f.name, f.max)
		if err != nil {
			return err
		}
		f.set(v)
	}
	return nil
}

func (d *binaryDecoder) uvarint(what string, max uint64) (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, fmt.Errorf("trace: truncated %s: %w", what, err)
	}
	if v > max {
		return 0, fmt.Errorf("trace: %s %d exceeds limit %d", what, v, max)
	}
	return v, nil
}

func (d *binaryDecoder) string(what string) (string, error) {
	n, err := d.uvarint(what+" length", MaxStringLen)
	if err != nil {
		return "", err
	}
	// Read incrementally rather than allocating n upfront: the length is
	// attacker-controlled and the stream may be shorter.
	buf := make([]byte, 0, min(n, 4096))
	for uint64(len(buf)) < n {
		c, err := d.br.ReadByte()
		if err != nil {
			return "", fmt.Errorf("trace: truncated %s: %w", what, err)
		}
		buf = append(buf, c)
	}
	return string(buf), nil
}
