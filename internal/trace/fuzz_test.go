package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/heap"
	"repro/internal/symtab"
)

// fuzzSeeds returns representative valid traces in both framings plus
// classic near-valid corruptions; checked-in seeds live under
// testdata/fuzz. The decoders' contract under fuzzing: malformed input
// must produce an error, never a panic, and decoding must terminate.
func fuzzSeeds(t interface{ Helper() }) [][]byte {
	t.Helper()
	textSeed := []byte("#cheetah-trace v1\n" +
		"#program 8 seed workload\n" +
		"#symbol 0x10000040 64 array\n" +
		"#object 0x40000000 24 32 1 1 1 app.c:42:main,lib.c:7:alloc\n" +
		"#object 0x40010000 16 16 0 2 0 -\n" +
		"#phase 0 s init\n" +
		"0 w 0x10000040 4 1 3 0\n" +
		"#threadend 0 0 5\n" +
		"#phase 1 p work\n" +
		"1 r 0x40000000 4 10 3 1\n" +
		"1 w 0x40000004 8 12 180 1\n" +
		"2 w 0x40000008 4 11 200 1\n" +
		"#threadend 1 1 20\n" +
		"#threadend 2 1 15\n")
	encode := func(enc Encoder) []byte {
		for _, ev := range sampleEvents() {
			if err := enc.Encode(ev); err != nil {
				panic(err)
			}
		}
		if err := enc.Close(); err != nil {
			panic(err)
		}
		return nil
	}
	var bin, binV1 bytes.Buffer
	encode(NewBinaryEncoder(&bin))
	encode(NewBinaryEncoderV1(&binV1))
	binSeed := bin.Bytes()
	truncated := append([]byte{}, binSeed[:len(binSeed)-3]...)
	flipped := append([]byte{}, binSeed...)
	flipped[len(flipped)/2] ^= 0xFF

	// An indexed v3 trace plus the classic corruptions of its index: the
	// footer, offsets and payload are all attacker-controlled inputs.
	var v3 bytes.Buffer
	idxEnc := NewIndexedEncoder(&v3)
	for _, ev := range indexableEvents() {
		if err := idxEnc.Encode(ev); err != nil {
			panic(err)
		}
	}
	if err := idxEnc.Close(); err != nil {
		panic(err)
	}
	idxSeed := v3.Bytes()
	idxTruncated := append([]byte{}, idxSeed[:len(idxSeed)-footerSize/2]...)
	idxFlipped := append([]byte{}, idxSeed...)
	idxFlipped[len(idxFlipped)-footerSize-2] ^= 0xFF // inside the payload
	idxBadOffset := append([]byte{}, idxSeed...)
	idxBadOffset[len(idxBadOffset)-footerSize] ^= 0xFF

	return [][]byte{
		textSeed,
		binSeed,
		binV1.Bytes(),
		truncated,
		flipped,
		idxSeed,
		idxTruncated,
		idxFlipped,
		idxBadOffset,
		[]byte("#cheetah-trace v1\n"),
		[]byte("#cheetah-trace v2\n"),
		[]byte{0x00},
		[]byte("1 r 0x10 4 1 0 0\n"),
	}
}

// FuzzDecode drives the framing-autodetecting decoder: every input must
// either decode to a finite event stream or error — never panic or hang.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		for {
			_, err := d.Next()
			if err == io.EOF || err != nil {
				return
			}
		}
	})
}

// FuzzIndexOpen drives the seekable-index reader and the windowed
// streaming replayer: arbitrary bytes on disk must either open cleanly
// or error — and when they do open, preparing and loading every phase
// window must never panic, because the index payload (offsets, counts,
// prediction snapshots) is untrusted input that the loader seeks by.
func FuzzIndexOpen(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.trace")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenStream(path)
		if err != nil {
			return
		}
		if err := s.Prepare(heap.New(heap.Config{}), symtab.New(symtab.Config{})); err != nil {
			return
		}
		for si := range s.sh.segs {
			// Window loads may fail (the records under a syntactically
			// valid index can still be garbage) but must not panic.
			_, _ = s.loadPhase(si)
		}
	})
}

// FuzzRead drives the full replay construction (decode, semantic
// validation, program assembly): malformed traces must error cleanly,
// and well-formed ones must yield a buildable Replay.
func FuzzRead(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rp, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rp.Cores <= 0 {
			t.Errorf("accepted trace with %d cores", rp.Cores)
		}
	})
}
