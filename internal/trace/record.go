package trace

import (
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/symtab"
)

// recorderState is the shared machinery of both recorders: it tracks
// the current phase, streams events to the encoder, and emits the
// memory-layout metadata (objects, symbols) at program end. The first
// encoding error is latched and later writes are skipped; probes cannot
// fail an execution, so callers check Err after the run.
type recorderState struct {
	enc   Encoder
	heap  *heap.Heap
	syms  *symtab.Table
	phase int
	err   error
	// machine is the non-canonical machine-model preset the recording run
	// simulates; empty (the canonical default) stamps nothing, so traces
	// from default runs stay byte-identical to pre-model recordings.
	machine string
}

func (r *recorderState) emit(ev Event) {
	if r.err != nil {
		return
	}
	r.err = r.enc.Encode(ev)
}

func (r *recorderState) programStart(name string, cores int) {
	r.phase = 0
	r.emit(Event{Kind: KindProgram, Name: name, Cores: cores})
	if r.machine != "" {
		r.emit(Event{Kind: KindNote, Name: "machine=" + r.machine})
	}
}

// emitLayout snapshots the memory layout at program end, so objects a
// program allocates mid-run are captured too. End-of-run is also when
// the profiler resolves sampled addresses (§2.4 reports "at the end of
// an execution"), so restoring this snapshot up front on replay yields
// the same resolution the recorded run saw.
func (r *recorderState) emitLayout() {
	if r.syms != nil {
		for _, s := range r.syms.Symbols() {
			r.emit(Event{Kind: KindSymbol, Name: s.Name, Addr: s.Addr, Size: s.Size})
		}
	}
	if r.heap != nil {
		for _, o := range r.heap.Objects() {
			r.emit(Event{
				Kind: KindObject, Addr: o.Addr, Size: o.Size, Class: o.ClassSize,
				TID: o.Thread, Seq: o.Seq, Live: o.Live, Stack: o.Stack,
			})
		}
	}
}

func (r *recorderState) phaseStart(ph exec.PhaseInfo) {
	r.phase = ph.Index
	r.emit(Event{Kind: KindPhase, Phase: ph.Index, Parallel: ph.Parallel, Name: ph.Name})
}

func (r *recorderState) threadEnd(th exec.ThreadInfo) {
	r.emit(Event{Kind: KindThreadEnd, TID: th.ID, Phase: th.Phase, Instrs: th.Instrs})
}

func (r *recorderState) access(a mem.Access, instrs uint64) {
	r.emit(Event{
		Kind: KindAccess, TID: a.Thread, Write: a.Kind.IsWrite(),
		Addr: a.Addr, Size: uint64(a.Size), IP: instrs, Lat: a.Latency,
		Phase: r.phase,
	})
}

func (r *recorderState) programEnd() {
	r.emitLayout()
	if r.err == nil {
		r.err = r.enc.Close()
	}
}

// Recorder is an exec.Probe that writes every simulated access of an
// execution to a trace — the full-fidelity mode behind the round-trip
// guarantee. It charges zero overhead cycles, so attaching it does not
// perturb the run: a trace recorded alongside a profiler replays to that
// profiler's exact report.
type Recorder struct {
	exec.BaseProbe
	s recorderState
}

// NewRecorder creates a full recorder streaming to enc. h and syms (both
// optional) supply the layout metadata that lets a replayed trace
// resolve objects to allocation sites and global names.
func NewRecorder(enc Encoder, h *heap.Heap, syms *symtab.Table) *Recorder {
	return &Recorder{s: recorderState{enc: enc, heap: h, syms: syms}}
}

// Err returns the first error encountered while writing the trace.
func (r *Recorder) Err() error { return r.s.err }

// SetMachine records the machine-model fingerprint to stamp into the
// trace as a `machine=<preset>` provenance note (machine.Fingerprint;
// empty = canonical default, stamped as nothing). Call before the run.
func (r *Recorder) SetMachine(fp string) { r.s.machine = fp }

// ProgramStart implements exec.Probe.
func (r *Recorder) ProgramStart(name string, cores int) { r.s.programStart(name, cores) }

// PhaseStart implements exec.Probe.
func (r *Recorder) PhaseStart(ph exec.PhaseInfo) { r.s.phaseStart(ph) }

// ThreadEnd implements exec.Probe.
func (r *Recorder) ThreadEnd(th exec.ThreadInfo) { r.s.threadEnd(th) }

// Access implements exec.Probe, recording the access at zero cost.
func (r *Recorder) Access(a mem.Access, instrs uint64) uint64 {
	r.s.access(a, instrs)
	return 0
}

// ProgramEnd implements exec.Probe, flushing the encoder.
func (r *Recorder) ProgramEnd(uint64) { r.s.programEnd() }

// SampledRecorder hooks the PMU delivery path instead of the engine:
// only addresses an IBS/PEBS-style sampler would deliver are written,
// which is what recording on real hardware yields. Sampled traces are
// compact and replayable (each access keeps its instruction offset), but
// they do not carry the full access stream, so replaying one approximates
// rather than reproduces the original detection report.
type SampledRecorder struct {
	exec.BaseProbe
	s   recorderState
	pmu *pmu.PMU
}

// NewSampledRecorder creates a sampled recorder with its own PMU using
// cfg's period, mode and jitter. Handler and setup costs are forced to
// zero so the recording PMU never perturbs the run it observes.
func NewSampledRecorder(cfg pmu.Config, enc Encoder, h *heap.Heap, syms *symtab.Table) *SampledRecorder {
	cfg.HandlerCycles = 0
	cfg.SetupCycles = 0
	sr := &SampledRecorder{s: recorderState{enc: enc, heap: h, syms: syms}}
	sr.pmu = pmu.New(cfg, sr)
	return sr
}

// Probes returns the probe chain to attach to an engine: the sampling
// PMU and the recorder's phase tracker.
func (sr *SampledRecorder) Probes() []exec.Probe { return []exec.Probe{sr.pmu, sr} }

// Err returns the first error encountered while writing the trace.
func (sr *SampledRecorder) Err() error { return sr.s.err }

// SetMachine records the machine-model fingerprint to stamp into the
// trace, as Recorder.SetMachine.
func (sr *SampledRecorder) SetMachine(fp string) { sr.s.machine = fp }

// Sample implements pmu.Handler, recording each delivered sample.
func (sr *SampledRecorder) Sample(a mem.Access, instrs uint64) { sr.s.access(a, instrs) }

// ProgramStart implements exec.Probe.
func (sr *SampledRecorder) ProgramStart(name string, cores int) { sr.s.programStart(name, cores) }

// PhaseStart implements exec.Probe.
func (sr *SampledRecorder) PhaseStart(ph exec.PhaseInfo) { sr.s.phaseStart(ph) }

// ThreadEnd implements exec.Probe.
func (sr *SampledRecorder) ThreadEnd(th exec.ThreadInfo) { sr.s.threadEnd(th) }

// ProgramEnd implements exec.Probe, flushing the encoder.
func (sr *SampledRecorder) ProgramEnd(uint64) { sr.s.programEnd() }
