// Seekable index blocks: binary framing v3.
//
// A v3 trace is a v2 record stream (identical encoding, new magic)
// optionally terminated by one index record and a fixed-size footer:
//
//	[magic][records...][kindIndexBlock][payload len][payload][footer]
//
// The footer is 16 bytes: the little-endian byte offset of the index
// record, then the 8-byte magic "CHTRIX1\n" — so a seeking reader finds
// the index from the end of the file in one read, and a sequential
// reader (or a v3 stream whose writer could not index it) decodes the
// records exactly as v2.
//
// The payload partitions the record stream into layout regions (program
// identity, symbol/object snapshots) and phase segments (one KindPhase
// record plus its accesses and thread ends). Each segment carries its
// byte range, per-thread record counts, and the v2 delta-prediction
// snapshots (per-thread access state, running symbol/object state) that
// let a reader start decoding cold from the segment's first byte — the
// basis of the windowed streaming replayer in stream.go.
//
// Indexes come from external files, so the reader validates everything
// before use: the regions and segments must exactly tile the record
// area in order, counts must be consistent, and every snapshot value
// must satisfy the same bounds the sequential decoder enforces. All
// failures are terminal errors, never panics.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/mem"
)

// kindIndexBlock is the record kind byte introducing the index. It is
// far outside the Kind enum, so a v2 decoder hitting one (impossible:
// v2 files never contain it) would fail loudly rather than misparse.
const kindIndexBlock = 0x58

// footerMagic closes an indexed trace; footerSize is the fixed tail
// (8-byte offset + magic) a seeking reader grabs first.
var footerMagic = []byte("CHTRIX1\n")

const footerSize = 16

// indexFormat versions the payload layout itself. Format 2 adds a
// CRC32-Castagnoli checksum per layout region and per phase segment,
// covering the span's raw record bytes, so corrupt payloads under a
// structurally valid index fail at load instead of decoding to garbage.
// Format-1 indexes (pre-checksum corpus files) still parse; they simply
// skip verification.
const (
	indexFormatV1 = 1
	indexFormat   = 2
)

// castagnoli is the CRC32C table shared by the index writer and the
// span verifiers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptPayloadError reports a span whose record bytes fail their
// indexed checksum: the index is structurally valid but the payload
// under it was damaged. Callers distinguish it with errors.As.
type CorruptPayloadError struct {
	Path  string
	Phase int // -1 for a layout region
	Off   uint64
	Want  uint32
	Got   uint32
}

func (e *CorruptPayloadError) Error() string {
	span := "layout region"
	if e.Phase >= 0 {
		span = fmt.Sprintf("phase %d segment", e.Phase)
	}
	return fmt.Sprintf("trace: %s: %s at offset %d fails its checksum (want %08x, got %08x)",
		e.Path, span, e.Off, e.Want, e.Got)
}

// maxIndexPayload bounds the index block before any allocation is sized
// from it; generous for ~65k phases with wide thread sets.
const maxIndexPayload = 1 << 28

// ErrNoIndex reports a trace without a (valid) seekable index; callers
// fall back to sequential decoding.
var ErrNoIndex = errors.New("trace: no index block")

// ErrUnindexable reports a record stream the IndexedEncoder could not
// index (see NewIndexedEncoder); the written file is still a valid,
// sequentially decodable v3 trace.
var ErrUnindexable = errors.New("trace: stream not indexable")

// layoutRegion describes a run of metadata records (program identity,
// symbols, objects) between phase segments: the header every trace
// starts with, the end-of-run layout snapshot the recorders emit, and
// any interleaved metadata a hand-written trace carries.
type layoutRegion struct {
	off, length uint64
	syms, objs  uint64
	// meta is the symbol/object delta-prediction state at the region's
	// first byte.
	meta metaState
	// crc is the CRC32C of the region's record bytes (format ≥ 2).
	crc uint32
}

// segThread is one thread's entry in a phase segment.
type segThread struct {
	tid      mem.ThreadID
	accesses uint64
	// state is the thread's access-column prediction state at the
	// segment's first byte.
	state accessState
}

// indexSegment describes one phase's byte range and enough context to
// decode it in isolation.
type indexSegment struct {
	phase       int
	off, length uint64
	accesses    uint64
	// maxSize is the largest access width in the segment, so a reader
	// can reject un-replayable sizes without decoding.
	maxSize uint64
	// addrMin and addrMax bound the segment's access addresses (both
	// zero when accesses is zero), letting replay skip the
	// foreign-address prescan when every access provably lands inside
	// the simulated segments.
	addrMin, addrMax uint64
	meta             metaState
	// crc is the CRC32C of the segment's record bytes (format ≥ 2).
	crc uint32
	// threads lists every thread with records in the segment, ascending.
	threads []segThread
}

// traceIndex is a parsed, validated index block.
type traceIndex struct {
	accesses uint64
	regions  []layoutRegion
	segs     []indexSegment
	// hasCRC reports whether the index carries span checksums (payload
	// format ≥ 2); format-1 indexes load without verification.
	hasCRC bool
}

// IndexedEncoder writes the v3 framing: a v2-compatible record stream
// followed by a seekable index block. It observes the stream as it
// passes through and requires the structure every recorder in this
// package produces — records of a phase contiguous after its KindPhase
// record, phase indices distinct, the program record before the first
// phase. Streams violating that (certain hand-crafted traces) are
// written without an index and Close reports ErrUnindexable; the file
// remains a valid sequential trace.
type IndexedEncoder struct {
	b *BinaryEncoder

	idx    traceIndex
	phases map[int]bool

	// Exactly one of the two is open at any time; regions and segments
	// alternate as metadata and phase records arrive.
	inSeg      bool
	curRegion  layoutRegion
	curSeg     indexSegment
	curThreads map[mem.ThreadID]*segThread
	// curCRC accumulates the open span's record-byte checksum, fed by
	// the encoder's onRecord hook so no bytes are hashed twice.
	curCRC uint32

	// reason latches why the stream cannot be indexed ("" = indexable).
	reason string
}

// NewIndexedEncoder creates a binary v3 encoder over w. The magic is
// written immediately; the index block and footer are written by Close.
func NewIndexedEncoder(w io.Writer) *IndexedEncoder {
	e := &IndexedEncoder{
		b:      newBinaryEncoder(w, BinaryV3),
		phases: make(map[int]bool),
	}
	e.b.onRecord = func(rec []byte) {
		e.curCRC = crc32.Update(e.curCRC, castagnoli, rec)
	}
	e.openRegion()
	return e
}

func (e *IndexedEncoder) openRegion() {
	e.inSeg = false
	e.curRegion = layoutRegion{off: e.b.written, meta: e.b.meta}
	e.curCRC = 0
}

// closeCurrent finalizes the open region or segment at the current
// write offset. Empty layout regions are dropped (they carry nothing).
func (e *IndexedEncoder) closeCurrent() {
	if e.inSeg {
		seg := e.curSeg
		seg.length = e.b.written - seg.off
		seg.crc = e.curCRC
		seg.threads = make([]segThread, 0, len(e.curThreads))
		for _, t := range e.curThreads {
			seg.threads = append(seg.threads, *t)
		}
		sort.Slice(seg.threads, func(i, j int) bool { return seg.threads[i].tid < seg.threads[j].tid })
		e.idx.segs = append(e.idx.segs, seg)
		return
	}
	r := e.curRegion
	r.length = e.b.written - r.off
	r.crc = e.curCRC
	if r.length > 0 {
		e.idx.regions = append(e.idx.regions, r)
	}
}

func (e *IndexedEncoder) fail(reason string) {
	if e.reason == "" {
		e.reason = reason
	}
}

func (e *IndexedEncoder) thread(tid mem.ThreadID) *segThread {
	t := e.curThreads[tid]
	if t == nil {
		t = &segThread{tid: tid, state: e.b.prev[tid]}
		e.curThreads[tid] = t
	}
	return t
}

// observe runs before the record is encoded, so e.b.written is the
// record's start offset and e.b.prev/e.b.meta are the prediction state
// a mid-file decoder must be seeded with.
func (e *IndexedEncoder) observe(ev Event) {
	switch ev.Kind {
	case KindProgram:
		if e.inSeg || len(e.idx.segs) > 0 {
			e.fail("program record after the first phase")
		}
	case KindSymbol, KindObject:
		if e.inSeg {
			e.closeCurrent()
			e.openRegion()
		}
		if ev.Kind == KindSymbol {
			e.curRegion.syms++
		} else {
			e.curRegion.objs++
		}
	case KindNote:
		// Notes are layout metadata: uncounted, but they must live in a
		// region so segments keep containing only their phase's records.
		if e.inSeg {
			e.closeCurrent()
			e.openRegion()
		}
	case KindPhase:
		e.closeCurrent()
		if e.phases[ev.Phase] {
			e.fail(fmt.Sprintf("phase %d declared twice", ev.Phase))
		}
		e.phases[ev.Phase] = true
		e.inSeg = true
		e.curSeg = indexSegment{phase: ev.Phase, off: e.b.written, meta: e.b.meta}
		e.curThreads = make(map[mem.ThreadID]*segThread)
		e.curCRC = 0
	case KindThreadEnd:
		if !e.inSeg || ev.Phase != e.curSeg.phase {
			e.fail("thread-end record outside its phase's segment")
			return
		}
		e.thread(ev.TID)
	case KindAccess:
		if !e.inSeg || ev.Phase != e.curSeg.phase {
			e.fail("access record outside its phase's segment")
			return
		}
		e.thread(ev.TID).accesses++
		s := &e.curSeg
		if s.accesses == 0 || uint64(ev.Addr) < s.addrMin {
			s.addrMin = uint64(ev.Addr)
		}
		if uint64(ev.Addr) > s.addrMax {
			s.addrMax = uint64(ev.Addr)
		}
		if ev.Size > s.maxSize {
			s.maxSize = ev.Size
		}
		s.accesses++
		e.idx.accesses++
	}
}

// Encode implements Encoder.
func (e *IndexedEncoder) Encode(ev Event) error {
	if e.b.err != nil {
		return e.b.err
	}
	e.observe(ev)
	return e.b.Encode(ev)
}

// Close implements Encoder: it appends the index block and footer, then
// flushes. If the stream was unindexable, the records alone are flushed
// and the error wraps ErrUnindexable.
func (e *IndexedEncoder) Close() error {
	if e.b.err != nil {
		return e.b.err
	}
	e.closeCurrent()
	if e.reason != "" {
		if err := e.b.Close(); err != nil {
			return err
		}
		return fmt.Errorf("%w: %s", ErrUnindexable, e.reason)
	}
	indexOff := e.b.written
	payload := appendIndexPayload(nil, &e.idx)
	rec := []byte{kindIndexBlock}
	rec = binary.AppendUvarint(rec, uint64(len(payload)))
	rec = append(rec, payload...)
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[:8], indexOff)
	copy(foot[8:], footerMagic)
	rec = append(rec, foot[:]...)
	if _, err := e.b.w.Write(rec); err != nil {
		e.b.err = err
		return err
	}
	return e.b.Close()
}

func appendIndexPayload(b []byte, idx *traceIndex) []byte {
	b = append(b, indexFormat)
	b = binary.AppendUvarint(b, idx.accesses)
	b = binary.AppendUvarint(b, uint64(len(idx.regions)))
	for _, r := range idx.regions {
		for _, v := range []uint64{r.off, r.length, r.syms, r.objs, r.meta.symAddr, r.meta.objAddr, r.meta.objSeq} {
			b = binary.AppendUvarint(b, v)
		}
		b = binary.AppendUvarint(b, uint64(r.crc))
	}
	b = binary.AppendUvarint(b, uint64(len(idx.segs)))
	for _, s := range idx.segs {
		for _, v := range []uint64{uint64(s.phase), s.off, s.length, s.accesses,
			s.maxSize, s.addrMin, s.addrMax, s.meta.symAddr, s.meta.objAddr, s.meta.objSeq} {
			b = binary.AppendUvarint(b, v)
		}
		b = binary.AppendUvarint(b, uint64(s.crc))
		b = binary.AppendUvarint(b, uint64(len(s.threads)))
		for _, t := range s.threads {
			for _, v := range []uint64{uint64(t.tid), t.accesses,
				t.state.addr, t.state.ip, t.state.size, t.state.lat, t.state.phase} {
				b = binary.AppendUvarint(b, v)
			}
		}
	}
	return b
}

// byteCursor decodes bounded uvarints from an in-memory payload.
type byteCursor struct {
	p []byte
	i int
}

func (c *byteCursor) uvarint(what string, max uint64) (uint64, error) {
	v, n := binary.Uvarint(c.p[c.i:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: index: truncated or oversized %s", what)
	}
	c.i += n
	if v > max {
		return 0, fmt.Errorf("trace: index: %s %d exceeds limit %d", what, v, max)
	}
	return v, nil
}

const maxOffset = 1 << 62

// parseIndexPayload decodes and bounds-checks one payload. Structural
// consistency (tiling, count sums) is checked by validate.
func parseIndexPayload(p []byte) (*traceIndex, error) {
	c := &byteCursor{p: p}
	if len(p) == 0 || (p[0] != indexFormatV1 && p[0] != indexFormat) {
		return nil, fmt.Errorf("trace: index: unknown payload format")
	}
	c.i = 1
	idx := &traceIndex{hasCRC: p[0] >= indexFormat}
	var err error
	if idx.accesses, err = c.uvarint("total accesses", maxOffset); err != nil {
		return nil, err
	}
	nregions, err := c.uvarint("region count", 2*MaxPhaseIndex+2)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nregions; i++ {
		var r layoutRegion
		for _, f := range []struct {
			what string
			max  uint64
			dst  *uint64
		}{
			{"region offset", maxOffset, &r.off},
			{"region length", maxOffset, &r.length},
			{"region symbol count", maxOffset, &r.syms},
			{"region object count", maxOffset, &r.objs},
			{"region symbol state", 1 << 62, &r.meta.symAddr},
			{"region object state", 1 << 62, &r.meta.objAddr},
			{"region seq state", 1 << 62, &r.meta.objSeq},
		} {
			if *f.dst, err = c.uvarint(f.what, f.max); err != nil {
				return nil, err
			}
		}
		if idx.hasCRC {
			crc, err := c.uvarint("region checksum", 1<<32-1)
			if err != nil {
				return nil, err
			}
			r.crc = uint32(crc)
		}
		idx.regions = append(idx.regions, r)
	}
	nsegs, err := c.uvarint("segment count", MaxPhaseIndex+1)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nsegs; i++ {
		var s indexSegment
		var phase uint64
		for _, f := range []struct {
			what string
			max  uint64
			dst  *uint64
		}{
			{"segment phase", MaxPhaseIndex, &phase},
			{"segment offset", maxOffset, &s.off},
			{"segment length", maxOffset, &s.length},
			{"segment accesses", maxOffset, &s.accesses},
			{"segment max size", 1<<16 - 1, &s.maxSize},
			{"segment min addr", 1 << 62, &s.addrMin},
			{"segment max addr", 1 << 62, &s.addrMax},
			{"segment symbol state", 1 << 62, &s.meta.symAddr},
			{"segment object state", 1 << 62, &s.meta.objAddr},
			{"segment seq state", 1 << 62, &s.meta.objSeq},
		} {
			if *f.dst, err = c.uvarint(f.what, f.max); err != nil {
				return nil, err
			}
		}
		s.phase = int(phase)
		if idx.hasCRC {
			crc, err := c.uvarint("segment checksum", 1<<32-1)
			if err != nil {
				return nil, err
			}
			s.crc = uint32(crc)
		}
		nthreads, err := c.uvarint("segment thread count", MaxThreadID+1)
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nthreads; j++ {
			var t segThread
			var tid uint64
			for _, f := range []struct {
				what string
				max  uint64
				dst  *uint64
			}{
				{"thread id", MaxThreadID, &tid},
				{"thread accesses", maxOffset, &t.accesses},
				{"thread addr state", 1 << 62, &t.state.addr},
				{"thread ip state", MaxInstrs, &t.state.ip},
				{"thread size state", 1<<16 - 1, &t.state.size},
				{"thread lat state", 1<<32 - 1, &t.state.lat},
				{"thread phase state", MaxPhaseIndex, &t.state.phase},
			} {
				if *f.dst, err = c.uvarint(f.what, f.max); err != nil {
					return nil, err
				}
			}
			t.tid = mem.ThreadID(tid)
			s.threads = append(s.threads, t)
		}
		idx.segs = append(idx.segs, s)
	}
	if c.i != len(p) {
		return nil, fmt.Errorf("trace: index: %d trailing payload bytes", len(p)-c.i)
	}
	return idx, nil
}

// validate checks the parsed index's structural claims against the
// file: regions and segments must tile [dataStart, indexOff) exactly,
// in order, without overlap; counts must be mutually consistent.
func (idx *traceIndex) validate(dataStart, indexOff uint64) error {
	pos := dataStart
	ri, si := 0, 0
	for ri < len(idx.regions) || si < len(idx.segs) {
		switch {
		case ri < len(idx.regions) && idx.regions[ri].off == pos:
			r := &idx.regions[ri]
			if r.length == 0 || r.length > indexOff-pos {
				return fmt.Errorf("trace: index: region at %d has bad length %d", pos, r.length)
			}
			pos += r.length
			ri++
		case si < len(idx.segs) && idx.segs[si].off == pos:
			s := &idx.segs[si]
			if s.length == 0 || s.length > indexOff-pos {
				return fmt.Errorf("trace: index: segment at %d has bad length %d", pos, s.length)
			}
			pos += s.length
			si++
		default:
			return fmt.Errorf("trace: index: spans are overlapping, out of order, or leave a gap at offset %d", pos)
		}
	}
	if pos != indexOff {
		return fmt.Errorf("trace: index: spans end at %d, want %d", pos, indexOff)
	}
	phases := make(map[int]bool, len(idx.segs))
	var total uint64
	for i := range idx.segs {
		s := &idx.segs[i]
		if phases[s.phase] {
			return fmt.Errorf("trace: index: phase %d indexed twice", s.phase)
		}
		phases[s.phase] = true
		var segSum uint64
		for j := range s.threads {
			t := &s.threads[j]
			if j > 0 && t.tid <= s.threads[j-1].tid {
				return fmt.Errorf("trace: index: phase %d thread list not strictly ascending", s.phase)
			}
			segSum += t.accesses
		}
		if segSum != s.accesses {
			return fmt.Errorf("trace: index: phase %d thread accesses sum to %d, segment claims %d",
				s.phase, segSum, s.accesses)
		}
		if s.accesses > 0 && s.addrMin > s.addrMax {
			return fmt.Errorf("trace: index: phase %d address bounds inverted", s.phase)
		}
		total += s.accesses
	}
	if total != idx.accesses {
		return fmt.Errorf("trace: index: segments sum to %d accesses, index claims %d", total, idx.accesses)
	}
	return nil
}

// skipIndexBlock consumes the index payload and footer from the
// sequential decoder's position (the byte after the kindIndexBlock
// kind) and requires a clean end of stream.
func (d *binaryDecoder) skipIndexBlock() error {
	n, err := d.uvarint("index payload length", maxIndexPayload)
	if err != nil {
		return err
	}
	if _, err := io.CopyN(io.Discard, d.br, int64(n)); err != nil {
		return fmt.Errorf("trace: truncated index payload: %w", err)
	}
	var foot [footerSize]byte
	if _, err := io.ReadFull(d.br, foot[:]); err != nil {
		return fmt.Errorf("trace: truncated index footer: %w", err)
	}
	if !bytes.Equal(foot[8:], footerMagic) {
		return fmt.Errorf("trace: bad index footer magic %q", foot[8:])
	}
	if _, err := d.br.ReadByte(); err != io.EOF {
		return fmt.Errorf("trace: data after index footer")
	}
	return nil
}

// readIndexAt locates, parses and validates the index of a binary v3
// trace via random access. ErrNoIndex (wrapped) reports a well-formed
// trace that simply has no index; other errors report corruption.
func readIndexAt(r io.ReaderAt, size int64) (*traceIndex, error) {
	magic := binaryMagicFor(BinaryV3)
	head := make([]byte, len(magic))
	if size < int64(len(magic)) {
		return nil, fmt.Errorf("trace: file too short for a binary trace")
	}
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if !bytes.Equal(head, magic) {
		return nil, fmt.Errorf("%w (not a binary v3 trace)", ErrNoIndex)
	}
	if size < int64(len(magic)+footerSize+2) {
		return nil, fmt.Errorf("%w (no footer)", ErrNoIndex)
	}
	var foot [footerSize]byte
	if _, err := r.ReadAt(foot[:], size-footerSize); err != nil {
		return nil, fmt.Errorf("trace: reading index footer: %w", err)
	}
	if !bytes.Equal(foot[8:], footerMagic) {
		return nil, fmt.Errorf("%w (no footer)", ErrNoIndex)
	}
	indexOff := binary.LittleEndian.Uint64(foot[:8])
	if indexOff < uint64(len(magic)) || indexOff >= uint64(size-footerSize) {
		return nil, fmt.Errorf("trace: index offset %d outside the file", indexOff)
	}
	blockLen := uint64(size-footerSize) - indexOff
	if blockLen > maxIndexPayload+16 {
		return nil, fmt.Errorf("trace: index block length %d exceeds limit", blockLen)
	}
	block := make([]byte, blockLen)
	if _, err := r.ReadAt(block, int64(indexOff)); err != nil {
		return nil, fmt.Errorf("trace: reading index block: %w", err)
	}
	if block[0] != kindIndexBlock {
		return nil, fmt.Errorf("trace: index offset does not point at an index record")
	}
	payloadLen, n := binary.Uvarint(block[1:])
	if n <= 0 {
		return nil, fmt.Errorf("trace: index: truncated payload length")
	}
	if uint64(1+n)+payloadLen != blockLen {
		return nil, fmt.Errorf("trace: index record length inconsistent with footer offset")
	}
	idx, err := parseIndexPayload(block[1+n:])
	if err != nil {
		return nil, err
	}
	if err := idx.validate(uint64(len(magic)), indexOff); err != nil {
		return nil, err
	}
	return idx, nil
}

// FileIsIndexed reports whether path looks like an indexed binary v3
// trace (v3 magic plus a valid footer). It reads only the file's head
// and tail; full index validation happens at OpenStream.
func FileIsIndexed(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return false
	}
	magic := binaryMagicFor(BinaryV3)
	if st.Size() < int64(len(magic)+footerSize+2) {
		return false
	}
	head := make([]byte, len(magic))
	var foot [footerSize]byte
	if _, err := f.ReadAt(head, 0); err != nil || !bytes.Equal(head, magic) {
		return false
	}
	if _, err := f.ReadAt(foot[:], st.Size()-footerSize); err != nil {
		return false
	}
	return bytes.Equal(foot[8:], footerMagic)
}

// crcReader computes a running CRC32C over everything read through it,
// so span verification rides along with decoding instead of re-reading
// the bytes.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// verifySpanCRC drains cr to the span's end and compares the checksum.
// On mismatch it returns a CorruptPayloadError — preferred over cause
// (the decode error, if any), since a failed checksum explains why
// decoding went wrong. With verification disabled (format-1 index) or a
// matching checksum, cause passes through.
func verifySpanCRC(path string, phase int, off uint64, cr *crcReader, want uint32, enabled bool, cause error) error {
	if !enabled {
		return cause
	}
	io.Copy(io.Discard, cr)
	if cr.crc != want {
		return &CorruptPayloadError{Path: path, Phase: phase, Off: off, Want: want, Got: cr.crc}
	}
	return cause
}

// newSeededDecoder returns a record decoder whose delta-prediction
// context is preloaded from index snapshots, for decoding a segment or
// region from the middle of a v3 file.
func newSeededDecoder(r io.Reader, threads []segThread, meta metaState) *binaryDecoder {
	d := &binaryDecoder{
		br:      bufio.NewReaderSize(r, 1<<16),
		version: BinaryV3,
		prev:    make(map[mem.ThreadID]accessState, len(threads)),
		meta:    meta,
	}
	for _, t := range threads {
		d.prev[t.tid] = t.state
	}
	return d
}
