package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/symtab"
)

// indexableEvents is a well-ordered multi-phase stream the IndexedEncoder
// can index: program first, each phase's records contiguous, distinct
// phase indices, a layout record between phases (forcing a mid-file
// region), a pooled thread (tid 1 in two parallel phases), and one
// foreign address outside the default heap/globals segments.
func indexableEvents() []Event {
	return []Event{
		{Kind: KindProgram, Name: "indexable", Cores: 8},
		{Kind: KindSymbol, Name: "globals", Addr: 0x10000000, Size: 4096},
		{Kind: KindObject, Addr: 0x40000000, Size: 256, Class: 256, TID: 0, Seq: 1, Live: true},
		{Kind: KindPhase, Phase: 0, Parallel: false, Name: "init"},
		{Kind: KindAccess, TID: 0, Write: true, Addr: 0x10000040, Size: 8, IP: 3, Lat: 4, Phase: 0},
		{Kind: KindThreadEnd, TID: 0, Phase: 0, Instrs: 10},
		{Kind: KindPhase, Phase: 1, Parallel: true, Name: "work"},
		{Kind: KindAccess, TID: 1, Write: true, Addr: 0x40000000, Size: 4, IP: 5, Lat: 9, Phase: 1},
		{Kind: KindAccess, TID: 2, Write: false, Addr: 0x40000004, Size: 4, IP: 5, Lat: 200, Phase: 1},
		{Kind: KindAccess, TID: 1, Write: true, Addr: 0x90000000, Size: 4, IP: 8, Lat: 3, Phase: 1},
		{Kind: KindThreadEnd, TID: 1, Phase: 1, Instrs: 20},
		{Kind: KindThreadEnd, TID: 2, Phase: 1, Instrs: 20},
		{Kind: KindSymbol, Name: "late", Addr: 0x10001000, Size: 64},
		{Kind: KindPhase, Phase: 2, Parallel: true, Name: "reduce"},
		{Kind: KindAccess, TID: 1, Write: false, Addr: 0x40000040, Size: 4, IP: 4, Lat: 5, Phase: 2},
		{Kind: KindThreadEnd, TID: 1, Phase: 2, Instrs: 9},
	}
}

// indexedBytes encodes evs through the IndexedEncoder, failing the test
// if the stream turns out unindexable.
func indexedBytes(t *testing.T, evs []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewIndexedEncoder(&buf)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Fatalf("encode %+v: %v", ev, err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestIndexedTraceRoundTrip: a v3 indexed trace must decode sequentially
// to the exact event stream a plain v2 encode produces, and its index
// must parse, validate, and agree with the stream's totals.
func TestIndexedTraceRoundTrip(t *testing.T) {
	evs := indexableEvents()
	data := indexedBytes(t, evs)

	var v2 bytes.Buffer
	enc := NewBinaryEncoder(&v2)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}

	got := decodeEvents(t, data)
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("indexed v3 trace did not round-trip the event stream")
	}
	if !reflect.DeepEqual(got, decodeEvents(t, v2.Bytes())) {
		t.Fatal("v3 and v2 framings decoded to different event streams")
	}

	d := NewDecoder(bytes.NewReader(data))
	for {
		if _, err := d.Next(); err != nil {
			break
		}
	}
	if f := d.Framing(); f != "binary v3" {
		t.Errorf("Framing() = %q, want binary v3", f)
	}
	if !d.Indexed() {
		t.Error("Indexed() = false after decoding an indexed trace")
	}

	idx, err := readIndexAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("readIndexAt: %v", err)
	}
	var wantAccesses uint64
	phases := map[int]bool{}
	for _, ev := range evs {
		if ev.Kind == KindAccess {
			wantAccesses++
		}
		if ev.Kind == KindPhase {
			phases[ev.Phase] = true
		}
	}
	if idx.accesses != wantAccesses {
		t.Errorf("index claims %d accesses, stream has %d", idx.accesses, wantAccesses)
	}
	if len(idx.segs) != len(phases) {
		t.Errorf("index has %d segments, stream declares %d phases", len(idx.segs), len(phases))
	}

	path := writeTemp(t, data)
	if !FileIsIndexed(path) {
		t.Error("FileIsIndexed = false for an indexed trace")
	}
	if err := ValidateStream(path); err != nil {
		t.Errorf("ValidateStream: %v", err)
	}
}

// TestUnindexableStreamFallsBack: a stream violating the indexable shape
// (sampleEvents interleaves phase records) must still be written as a
// valid sequential v3 trace, with Close reporting ErrUnindexable and no
// index block present.
func TestUnindexableStreamFallsBack(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	enc := NewIndexedEncoder(&buf)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	err := enc.Close()
	if !errors.Is(err, ErrUnindexable) {
		t.Fatalf("Close = %v, want ErrUnindexable", err)
	}
	if got := decodeEvents(t, buf.Bytes()); !reflect.DeepEqual(got, evs) {
		t.Fatal("unindexable v3 trace did not decode sequentially")
	}
	if _, err := readIndexAt(bytes.NewReader(buf.Bytes()), int64(buf.Len())); !errors.Is(err, ErrNoIndex) {
		t.Errorf("readIndexAt = %v, want ErrNoIndex", err)
	}
	path := writeTemp(t, buf.Bytes())
	if FileIsIndexed(path) {
		t.Error("FileIsIndexed = true for a trace without an index")
	}
}

// indexSpans locates the index record inside an indexed trace: the
// record's start offset and the payload's byte range.
func indexSpans(t *testing.T, data []byte) (indexOff, payloadStart, payloadEnd uint64) {
	t.Helper()
	foot := data[len(data)-footerSize:]
	indexOff = binary.LittleEndian.Uint64(foot[:8])
	payloadLen, n := binary.Uvarint(data[indexOff+1:])
	if n <= 0 {
		t.Fatal("bad payload length in test fixture")
	}
	payloadStart = indexOff + 1 + uint64(n)
	return indexOff, payloadStart, payloadStart + payloadLen
}

// reindex rewrites data's index block after applying mutate to the
// parsed index — the tool for crafting structurally-corrupt indexes that
// are byte-level well-formed.
func reindex(t *testing.T, data []byte, mutate func(idx *traceIndex)) []byte {
	t.Helper()
	indexOff, payloadStart, payloadEnd := indexSpans(t, data)
	idx, err := parseIndexPayload(data[payloadStart:payloadEnd])
	if err != nil {
		t.Fatalf("parsing fixture index: %v", err)
	}
	mutate(idx)
	out := append([]byte{}, data[:indexOff]...)
	payload := appendIndexPayload(nil, idx)
	out = append(out, kindIndexBlock)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[:8], indexOff)
	copy(foot[8:], footerMagic)
	return append(out, foot[:]...)
}

// TestIndexFaultInjection: corrupted or inconsistent index blocks must
// surface as terminal errors from both the seeking reader and the
// streaming opener — never a panic, never a silent wrong replay — while
// the sequential decoder never resynchronizes past damage.
func TestIndexFaultInjection(t *testing.T) {
	base := indexedBytes(t, indexableEvents())

	structural := map[string]func(idx *traceIndex){
		"segments-out-of-order": func(idx *traceIndex) {
			idx.segs[0], idx.segs[1] = idx.segs[1], idx.segs[0]
		},
		"overlapping-spans": func(idx *traceIndex) {
			idx.segs[1].off--
		},
		"gap-in-tiling": func(idx *traceIndex) {
			idx.regions[0].length--
		},
		"total-access-mismatch": func(idx *traceIndex) {
			idx.accesses++
		},
		"thread-sum-mismatch": func(idx *traceIndex) {
			idx.segs[1].threads[0].accesses++
		},
		"segment-count-mismatch": func(idx *traceIndex) {
			idx.segs[1].accesses--
			idx.segs[1].threads[0].accesses--
			idx.accesses -= 2
		},
		"duplicate-phase": func(idx *traceIndex) {
			idx.segs[1].phase = idx.segs[0].phase
		},
		"inverted-address-bounds": func(idx *traceIndex) {
			idx.segs[1].addrMin, idx.segs[1].addrMax = 100, 1
		},
		"thread-order-violation": func(idx *traceIndex) {
			th := idx.segs[1].threads
			th[0], th[1] = th[1], th[0]
		},
		"phase-out-of-range": func(idx *traceIndex) {
			idx.segs[2].phase = MaxPhaseIndex + 1
		},
	}
	raw := map[string]func([]byte) []byte{
		"bad-format-byte": func(d []byte) []byte {
			out := append([]byte{}, d...)
			_, ps, _ := indexSpans(t, out)
			out[ps] ^= 0xFF
			return out
		},
		"truncated-footer": func(d []byte) []byte {
			return d[:len(d)-3]
		},
		"flipped-footer-magic": func(d []byte) []byte {
			out := append([]byte{}, d...)
			out[len(out)-1] ^= 0xFF
			return out
		},
		"footer-offset-outside-file": func(d []byte) []byte {
			out := append([]byte{}, d...)
			binary.LittleEndian.PutUint64(out[len(out)-footerSize:], uint64(len(out)))
			return out
		},
		"footer-offset-into-records": func(d []byte) []byte {
			out := append([]byte{}, d...)
			binary.LittleEndian.PutUint64(out[len(out)-footerSize:], 9)
			return out
		},
		"trailing-garbage": func(d []byte) []byte {
			return append(append([]byte{}, d...), 0)
		},
		"truncated-payload": func(d []byte) []byte {
			off, _, _ := indexSpans(t, d)
			return d[:off+5]
		},
	}

	check := func(t *testing.T, data []byte, wantIndexError bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on corrupted index: %v", r)
			}
		}()
		if _, err := readIndexAt(bytes.NewReader(data), int64(len(data))); err == nil && wantIndexError {
			t.Error("readIndexAt accepted a corrupted index")
		} else if wantIndexError && errors.Is(err, ErrNoIndex) {
			t.Errorf("corruption reported as benign ErrNoIndex: %v", err)
		}
		path := writeTemp(t, data)
		if err := ValidateStream(path); err == nil {
			t.Error("ValidateStream accepted a corrupted trace")
		}
		// The sequential decoder must terminate with EOF or a latched
		// error, never resync or loop.
		d := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 1<<20; i++ {
			if _, err := d.Next(); err != nil {
				return
			}
		}
		t.Error("sequential decode did not terminate")
	}

	for name, mutate := range structural {
		t.Run(name, func(t *testing.T) {
			check(t, reindex(t, base, mutate), true)
		})
	}
	for name, corrupt := range raw {
		t.Run(name, func(t *testing.T) {
			// Footer-level damage may legitimately read as "no index";
			// only payload-intact cases must report corruption loudly.
			check(t, corrupt(base), false)
		})
	}

	// A wrong-but-in-bounds prediction snapshot is indistinguishable from
	// record corruption under delta framing (there are no checksums): the
	// replay may differ, but nothing may panic, hang, or resynchronize.
	t.Run("wrong-thread-state", func(t *testing.T) {
		data := reindex(t, base, func(idx *traceIndex) {
			idx.segs[1].threads[0].state.addr = 1 << 61
		})
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on poisoned thread state: %v", r)
			}
		}()
		_ = ValidateStream(writeTemp(t, data))
	})
}

// TestNonIndexedFormatsUnchanged: v1 corpus files, v2 buffers and text
// traces must be untouched by the index machinery — not detected as
// indexed, rejected by OpenStream, decoded exactly as before.
func TestNonIndexedFormatsUnchanged(t *testing.T) {
	var v2 bytes.Buffer
	encodeAll(t, NewBinaryEncoder(&v2), sampleEvents())
	var text bytes.Buffer
	encodeAll(t, NewTextEncoder(&text), sampleEvents())
	cases := map[string][]byte{"binary-v2": v2.Bytes(), "text": text.Bytes()}

	dir := filepath.Join("testdata", "corpus-v1")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading v1 corpus: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		cases["corpus-"+e.Name()] = data
	}

	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if len(decodeEvents(t, data)) == 0 {
				t.Fatal("trace decoded to zero events")
			}
			path := writeTemp(t, data)
			if FileIsIndexed(path) {
				t.Error("FileIsIndexed = true for a non-indexed trace")
			}
			if _, err := OpenStream(path); err == nil {
				t.Error("OpenStream accepted a non-indexed trace")
			}
		})
	}
}

// TestStreamWindowStats is the bounded-memory evidence: replaying a
// multi-phase trace loads each segment exactly once, and the largest
// resident window stays well under the whole trace's operation count.
func TestStreamWindowStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "synth.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewIndexedEncoder(f)
	cfg := SynthConfig{Accesses: 1 << 12, Threads: 4, Phases: 16}
	if err := WriteSynthetic(enc, cfg); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare(heap.New(heap.Config{}), symtab.New(symtab.Config{})); err != nil {
		t.Fatal(err)
	}
	// Drive the window exactly as the engine does: phases in order, every
	// thread of a phase before the next phase.
	for si := range s.sh.idx.segs {
		for _, tid := range s.sh.segs[si].tids {
			if rt := s.acquire(si, tid); rt == nil {
				t.Fatalf("segment %d has no thread %d", si, tid)
			}
		}
	}
	loads, maxOps := s.WindowStats()
	if want := len(s.sh.idx.segs); loads != want {
		t.Errorf("replay performed %d segment loads, want %d (one per phase)", loads, want)
	}
	if maxOps == 0 || maxOps >= s.Accesses {
		t.Errorf("max resident window %d ops is not bounded below the whole trace (%d)", maxOps, s.Accesses)
	}
	// Re-acquiring the resident segment must not reload it.
	last := len(s.sh.idx.segs) - 1
	s.acquire(last, mem.MainThread+1)
	if l, _ := s.WindowStats(); l != loads {
		t.Errorf("re-acquire of the resident segment reloaded it (%d -> %d loads)", loads, l)
	}
}

// TestReadMetaFileAgreesWithScan: the lazy metadata path over the index
// must report the same quantities a full sequential scan does.
func TestReadMetaFileAgreesWithScan(t *testing.T) {
	data := indexedBytes(t, indexableEvents())
	path := writeTemp(t, data)

	viaIndex, err := ReadMetaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	viaScan, err := ReadMeta(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !viaIndex.Indexed {
		t.Error("ReadMetaFile did not mark an indexed trace as indexed")
	}
	if !reflect.DeepEqual(viaIndex, viaScan) {
		t.Errorf("metadata mismatch:\nindex: %+v\nscan:  %+v", viaIndex, viaScan)
	}
}
