// Package atomicfile writes files atomically: content is staged to a
// temp file in the destination directory and renamed into place on
// commit, so readers never observe a partially-written file and an
// interrupted writer leaves the destination untouched. It is the one
// implementation behind every atomic write in the repo (sweep cache
// entries, bench trajectory files, imported traces).
package atomicfile

import (
	"os"
	"path/filepath"
)

// W stages one atomic write. It is an io.Writer over the temp file;
// call Commit to rename into place or Abort to discard. Exactly one of
// the two should be called (both are idempotent, and Abort after a
// successful Commit is a no-op).
type W struct {
	f    *os.File
	path string
	done bool
}

// Create stages a write to path, placing the temp file in path's
// directory so the final rename cannot cross filesystems.
func Create(path string) (*W, error) {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return nil, err
	}
	return &W{f: f, path: path}, nil
}

// Write implements io.Writer.
func (w *W) Write(p []byte) (int, error) { return w.f.Write(p) }

// File exposes the underlying temp file for callers that need more
// than io.Writer (e.g. Chmod).
func (w *W) File() *os.File { return w.f }

// Commit closes the temp file and renames it over the destination.
func (w *W) Commit() error {
	if w.done {
		return nil
	}
	w.done = true
	if err := w.f.Close(); err != nil {
		os.Remove(w.f.Name())
		return err
	}
	if err := os.Rename(w.f.Name(), w.path); err != nil {
		os.Remove(w.f.Name())
		return err
	}
	return nil
}

// Abort discards the staged write, leaving the destination untouched.
func (w *W) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.f.Name())
}

// WriteFile atomically replaces path's content with data at the given
// permissions.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	w, err := Create(path)
	if err != nil {
		return err
	}
	defer w.Abort()
	if _, err := w.Write(data); err != nil {
		return err
	}
	if err := w.File().Chmod(perm); err != nil {
		return err
	}
	return w.Commit()
}
