package machine

import (
	"sort"
	"testing"

	"repro/internal/mem"
)

// TestDefaultMatchesPaperMachine pins the canonical preset to the
// constants the pre-model codebase hard-coded: any drift here silently
// changes every default-machine report.
func TestDefaultMatchesPaperMachine(t *testing.T) {
	m := Default()
	if m.Name != DefaultName {
		t.Errorf("Name = %q, want %q", m.Name, DefaultName)
	}
	if m.Cores() != 48 {
		t.Errorf("Cores = %d, want 48", m.Cores())
	}
	if m.Sockets != 1 {
		t.Errorf("Sockets = %d, want 1", m.Sockets)
	}
	if m.LineSize != mem.LineSize {
		t.Errorf("LineSize = %d, want %d", m.LineSize, mem.LineSize)
	}
	if m.Protocol != MESI {
		t.Errorf("Protocol = %v, want MESI", m.Protocol)
	}
	if g := m.Geometry(); g != mem.DefaultGeometry() {
		t.Errorf("Geometry = %+v, want default", g)
	}
	if m.Fingerprint() != "" {
		t.Errorf("Fingerprint = %q, want empty (canonical default)", m.Fingerprint())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPresetsResolveAndValidate(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names not sorted: %v", names)
	}
	for _, name := range names {
		m, ok := Preset(name)
		if !ok {
			t.Fatalf("Preset(%q) missing", name)
		}
		if m.Name != name {
			t.Errorf("Preset(%q).Name = %q", name, m.Name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("Preset(%q).Validate: %v", name, err)
		}
		if name != DefaultName && m.Fingerprint() != name {
			t.Errorf("Preset(%q).Fingerprint = %q", name, m.Fingerprint())
		}
	}
	if _, ok := Preset(""); !ok {
		t.Error("Preset(\"\") should resolve to the default")
	}
	if _, ok := Preset("pdp11"); ok {
		t.Error("unknown preset resolved")
	}
}

func TestCanon(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""}, {DefaultName, ""}, {"numa2x24", "numa2x24"}, {"line128", "line128"},
	} {
		if got := Canon(tc.in); got != tc.want {
			t.Errorf("Canon(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSocketOf(t *testing.T) {
	m, _ := Preset("numa2x24")
	if m.Sockets != 2 || m.CoresPerSocket != 24 || m.Cores() != 48 {
		t.Fatalf("numa2x24 topology = %dx%d", m.Sockets, m.CoresPerSocket)
	}
	for core, want := range map[int]int{0: 0, 23: 0, 24: 1, 47: 1} {
		if got := m.SocketOf(core); got != want {
			t.Errorf("SocketOf(%d) = %d, want %d", core, got, want)
		}
	}
	if Default().SocketOf(47) != 0 {
		t.Error("single-socket model reported a second socket")
	}
}

func TestWithCoresPreservesSockets(t *testing.T) {
	m, _ := Preset("numa2x24")
	small := m.WithCores(4)
	if small.Sockets != 2 || small.CoresPerSocket != 2 {
		t.Errorf("WithCores(4) topology = %dx%d, want 2x2", small.Sockets, small.CoresPerSocket)
	}
	if small.SocketOf(1) != 0 || small.SocketOf(2) != 1 {
		t.Error("WithCores(4) socket mapping wrong")
	}
	// Odd counts round the per-socket size up.
	odd := m.WithCores(5)
	if odd.CoresPerSocket != 3 {
		t.Errorf("WithCores(5).CoresPerSocket = %d, want 3", odd.CoresPerSocket)
	}
	if got := Default().WithCores(96).Cores(); got != 96 {
		t.Errorf("WithCores(96).Cores = %d", got)
	}
	if got := m.WithCores(0); got != m {
		t.Error("WithCores(0) should be a no-op")
	}
}

func TestLine128Geometry(t *testing.T) {
	m, _ := Preset("line128")
	g := m.Geometry()
	if g.LineSize != 128 || g.LineShift != 7 || g.WordsPerLine() != 32 {
		t.Errorf("geometry = %+v (words %d)", g, g.WordsPerLine())
	}
	a := mem.Addr(0x1084)
	if g.Line(a) != 0x21 || g.LineBase(a) != 0x1080 || g.LineOffset(a) != 4 || g.WordInLine(a) != 1 {
		t.Errorf("address math wrong: line=%#x base=%v off=%d word=%d",
			g.Line(a), g.LineBase(a), g.LineOffset(a), g.WordInLine(a))
	}
	if g.LineAddr(0x21) != 0x1080 {
		t.Errorf("LineAddr(0x21) = %v", g.LineAddr(0x21))
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	base := Default()
	for name, mut := range map[string]func(*Model){
		"no sockets":    func(m *Model) { m.Sockets = 0 },
		"bad line size": func(m *Model) { m.LineSize = 96 },
		"negative mult": func(m *Model) { m.CrossSocketMult = -1 },
		"bad protocol":  func(m *Model) { m.Protocol = 9 },
	} {
		m := base
		mut(&m)
		if m.Validate() == nil {
			t.Errorf("%s: Validate accepted %+v", name, m)
		}
	}
}

func TestGeometryConstruction(t *testing.T) {
	if _, err := mem.NewGeometry(64); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{0, 2, 48, 8192, -64} {
		if _, err := mem.NewGeometry(bad); err == nil {
			t.Errorf("NewGeometry(%d) accepted", bad)
		}
	}
	var zero mem.Geometry
	if zero.OrDefault() != mem.DefaultGeometry() {
		t.Error("zero Geometry OrDefault mismatch")
	}
}
