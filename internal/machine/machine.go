// Package machine describes the hardware model a simulation runs under:
// topology (sockets x cores-per-socket, cross-socket transfer cost), cache
// line geometry, the latency table, and the coherence-protocol variant.
//
// The paper's evaluation is pinned to one machine — a 48-core AMD Opteron
// with 64-byte lines — and that machine used to be smeared across the
// codebase as constants. A machine.Model gathers it into one value that
// every layer derives its configuration from: internal/mem and
// internal/shadow take line geometry from it, internal/cache derives its
// Config from it, cheetah.Config carries it, and harness cell identity
// fingerprints it. The canonical preset ("opteron48") reproduces the old
// constants bit-for-bit, and Fingerprint returns "" for it so existing
// cell IDs, sweep cache keys, and golden files are unchanged.
package machine

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mem"
)

// Protocol selects the coherence-protocol variant the cache simulator
// models.
type Protocol uint8

const (
	// MESI is the baseline protocol: a read of a line that is Shared in
	// other caches but absent locally is served by the LLC or memory.
	MESI Protocol = iota
	// MESIF adds Intel-style shared-line forwarding: one sharer holds the
	// line in Forward state and serves other cores' read misses
	// cache-to-cache at Latencies.Forward cycles instead of an LLC or
	// memory fetch.
	MESIF
)

func (p Protocol) String() string {
	switch p {
	case MESIF:
		return "MESIF"
	default:
		return "MESI"
	}
}

// Latencies configures the coherence cost model in cycles. The defaults
// approximate the paper's Opteron-class machine; absolute values only need
// to preserve the ordering hit < LLC < remote transfer <= memory.
type Latencies struct {
	// L1Hit is a load/store hit in the private L1.
	L1Hit uint32
	// L2Hit is a private L2 hit (L1 miss).
	L2Hit uint32
	// L3Hit is a shared last-level-cache hit.
	L3Hit uint32
	// Memory is a DRAM access.
	Memory uint32
	// Remote is a cache-to-cache transfer of a line that is dirty in
	// another core's private cache — the dominant cost of false sharing.
	// Cross-socket transfers scale this by Model.CrossSocketMult.
	Remote uint32
	// Hold is the minimum ownership tenure of a dirty line: once a core
	// acquires a line in Modified state, a remote request cannot complete
	// a steal until Hold cycles later (the coherence round-trip during
	// which the owner keeps hitting its L1). This is what bounds the
	// ping-pong rate on real hardware: owners batch cheap accesses
	// between steals, so a false-sharing storm costs ~(Hold+Remote) per
	// steal rather than a transfer per write.
	Hold uint32
	// Upgrade is the cost of invalidating other sharers when writing a
	// line held in Shared state.
	Upgrade uint32
	// PerSharer is the additional invalidation cost per extra sharer,
	// modelling coherence-traffic contention as thread counts grow.
	PerSharer uint32
	// Forward is a clean cache-to-cache transfer of a Shared line under
	// MESIF: the Forward-state holder serves the miss instead of the LLC
	// or memory. Unused under MESI.
	Forward uint32
	// ContentionPenalty is the additional cost, per recent coherence
	// event, added to every remote transfer and upgrade. It models
	// queueing on the coherence interconnect (HyperTransport on the
	// paper's Opteron): the higher the machine-wide rate of coherence
	// traffic, the longer each transfer takes. This is what makes false
	// sharing hurt more at higher thread counts (paper Table 1:
	// linear_regression's fix gains 2x at 2 threads but 6.7x at 16),
	// while programs with rare coherence events (streamcluster) see no
	// inflation.
	ContentionPenalty uint32
	// ContentionWindow is the length, in cycles, of the sliding window
	// over which coherence events are counted. Zero disables contention
	// modelling.
	ContentionWindow uint64
	// ContentionCap bounds the number of window events that add latency,
	// keeping the queueing term finite under pathological storms.
	ContentionCap int
}

// DefaultLatencies returns the calibrated cost model used throughout the
// reproduction.
func DefaultLatencies() Latencies {
	return Latencies{
		L1Hit:             4,
		L2Hit:             12,
		L3Hit:             40,
		Memory:            200,
		Remote:            120,
		Hold:              190,
		Upgrade:           80,
		PerSharer:         6,
		Forward:           60,
		ContentionPenalty: 130,
		ContentionWindow:  400,
		ContentionCap:     256,
	}
}

// DefaultName is the canonical preset: the paper's evaluation machine.
// Models with this name fingerprint to the empty string, keeping cell IDs
// and cache keys from before the machine-model layer existed.
const DefaultName = "opteron48"

// Model is a complete machine description. The zero value is not directly
// usable; obtain models from Default, Preset, or by deriving from one.
type Model struct {
	// Name is the preset name the model was derived from ("" for ad-hoc
	// models). It is what rides cell identity and the wire.
	Name string
	// Sockets and CoresPerSocket describe the topology; total cores is
	// their product. A transfer between cores on different sockets scales
	// Lat.Remote by CrossSocketMult.
	Sockets        int
	CoresPerSocket int
	// LineSize is the cache-line size in bytes (power of two).
	LineSize int
	// Protocol is the coherence-protocol variant.
	Protocol Protocol
	// CrossSocketMult scales Lat.Remote for transfers that cross a socket
	// boundary; 1 (or 0, treated as 1) prices remote transfers uniformly.
	CrossSocketMult float64
	// Lat is the latency table.
	Lat Latencies
}

// Default returns the canonical opteron48 model: 1 socket x 48 cores,
// 64-byte lines, MESI, the calibrated latency table — exactly the machine
// the pre-model codebase hard-coded.
func Default() Model {
	return Model{
		Name:            DefaultName,
		Sockets:         1,
		CoresPerSocket:  48,
		LineSize:        mem.LineSize,
		Protocol:        MESI,
		CrossSocketMult: 1,
		Lat:             DefaultLatencies(),
	}
}

// presets is the registry of named machine models.
var presets = map[string]func() Model{
	DefaultName: Default,
	// numa2x24: the same 48 cores split across two sockets, with
	// cross-socket dirty-line transfers 1.5x the on-socket cost —
	// a HyperTransport hop.
	"numa2x24": func() Model {
		m := Default()
		m.Name = "numa2x24"
		m.Sockets = 2
		m.CoresPerSocket = 24
		m.CrossSocketMult = 1.5
		return m
	},
	// line128: the canonical machine with 128-byte cache lines
	// (adjacent-line prefetcher territory); false-sharing verdicts shift
	// because twice as many objects share a line.
	"line128": func() Model {
		m := Default()
		m.Name = "line128"
		m.LineSize = 128
		return m
	},
	// mesif48: the canonical machine under MESIF — clean shared lines are
	// forwarded cache-to-cache instead of re-fetched from the LLC or
	// memory.
	"mesif48": func() Model {
		m := Default()
		m.Name = "mesif48"
		m.Protocol = MESIF
		return m
	},
}

// Names returns the preset names in sorted order.
func Names() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Preset returns the named model, or false if the name is unknown. The
// empty string resolves to the canonical default.
func Preset(name string) (Model, bool) {
	if name == "" {
		return Default(), true
	}
	f, ok := presets[name]
	if !ok {
		return Model{}, false
	}
	return f(), true
}

// Canon maps a preset name to its canonical identity string: "" for the
// default machine (and for ""), the name itself otherwise. Cell IDs, cache
// keys, and trace metadata use this so the default machine is
// indistinguishable from the pre-model era.
func Canon(name string) string {
	if name == "" || name == DefaultName {
		return ""
	}
	return name
}

// IsZero reports whether m is the zero Model (no machine configured).
func (m Model) IsZero() bool { return m == (Model{}) }

// Cores returns the total core count.
func (m Model) Cores() int { return m.Sockets * m.CoresPerSocket }

// Geometry returns the model's cache-line geometry.
func (m Model) Geometry() mem.Geometry {
	g, err := mem.NewGeometry(m.LineSize)
	if err != nil {
		return mem.DefaultGeometry()
	}
	return g
}

// SocketOf returns the socket housing the given core: cores are numbered
// socket-major, so cores [0, CoresPerSocket) are socket 0.
func (m Model) SocketOf(core int) int {
	if m.CoresPerSocket <= 0 {
		return 0
	}
	s := core / m.CoresPerSocket
	if s >= m.Sockets {
		s = m.Sockets - 1
	}
	return s
}

// Fingerprint returns the string that represents this model in cell
// identity and trace metadata: "" for the canonical default, the preset
// name otherwise.
func (m Model) Fingerprint() string {
	if m.IsZero() {
		return ""
	}
	return Canon(m.Name)
}

// WithCores returns a copy of the model resized to n total cores,
// preserving the socket count (cores are distributed evenly, rounding the
// per-socket count up). Resizing the canonical default keeps its identity:
// core count is carried separately in cell identity, as it always was.
func (m Model) WithCores(n int) Model {
	if n <= 0 || n == m.Cores() {
		return m
	}
	sockets := m.Sockets
	if sockets <= 0 {
		sockets = 1
	}
	m.Sockets = sockets
	m.CoresPerSocket = (n + sockets - 1) / sockets
	return m
}

// Validate checks the model is internally consistent.
func (m Model) Validate() error {
	if m.Sockets <= 0 || m.CoresPerSocket <= 0 {
		return fmt.Errorf("machine: bad topology %dx%d", m.Sockets, m.CoresPerSocket)
	}
	if _, err := mem.NewGeometry(m.LineSize); err != nil {
		return err
	}
	if m.CrossSocketMult < 0 || math.IsNaN(m.CrossSocketMult) || math.IsInf(m.CrossSocketMult, 0) {
		return fmt.Errorf("machine: bad cross-socket multiplier %v", m.CrossSocketMult)
	}
	if m.Protocol != MESI && m.Protocol != MESIF {
		return fmt.Errorf("machine: unknown protocol %d", m.Protocol)
	}
	return nil
}
