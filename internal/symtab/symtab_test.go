package symtab

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestDefineAndResolve(t *testing.T) {
	tab := New(DefaultConfig())
	a := tab.Define("counter_array", 256)
	b := tab.Define("flags", 8)
	sym, ok := tab.Resolve(a.Add(100))
	if !ok || sym.Name != "counter_array" {
		t.Errorf("Resolve inside counter_array = (%+v, %v)", sym, ok)
	}
	sym, ok = tab.Resolve(b)
	if !ok || sym.Name != "flags" {
		t.Errorf("Resolve flags = (%+v, %v)", sym, ok)
	}
	if _, ok := tab.Resolve(b.Add(int(sym.Size))); ok {
		t.Error("resolved address past last symbol")
	}
}

func TestDefineAlignsToCacheLine(t *testing.T) {
	tab := New(DefaultConfig())
	tab.Define("small", 3)
	b := tab.Define("next", 10)
	if uint64(b)%mem.LineSize != 0 {
		t.Errorf("aligned Define returned %v, not line-aligned", b)
	}
}

func TestDefineUnalignedPacksTightly(t *testing.T) {
	tab := New(DefaultConfig())
	a := tab.DefineUnaligned("x", 4)
	b := tab.DefineUnaligned("y", 4)
	if b != a.Add(4) {
		t.Errorf("unaligned globals not adjacent: %v then %v", a, b)
	}
	if a.Line() != b.Line() {
		t.Error("adjacent small globals expected to share a cache line")
	}
}

func TestResolveBoundaries(t *testing.T) {
	tab := New(DefaultConfig())
	a := tab.Define("v", 64)
	if _, ok := tab.Resolve(a - 1); ok {
		t.Error("resolved address before symbol")
	}
	if sym, ok := tab.Resolve(a.Add(63)); !ok || sym.Name != "v" {
		t.Error("last byte of symbol not resolved")
	}
	if _, ok := tab.Resolve(a.Add(64)); ok {
		t.Error("first byte past symbol resolved")
	}
}

func TestContains(t *testing.T) {
	tab := New(Config{Base: 0x1000, Size: 0x1000})
	if !tab.Contains(0x1000) || !tab.Contains(0x1FFF) {
		t.Error("segment bounds not contained")
	}
	if tab.Contains(0xFFF) || tab.Contains(0x2000) {
		t.Error("outside addresses contained")
	}
}

func TestExhaustionPanics(t *testing.T) {
	tab := New(Config{Base: 0x1000, Size: 128})
	defer func() {
		if recover() == nil {
			t.Error("exhausted segment did not panic")
		}
	}()
	tab.Define("a", 64)
	tab.Define("b", 64)
	tab.Define("c", 64)
}

func TestSymbolsCopy(t *testing.T) {
	tab := New(DefaultConfig())
	tab.Define("a", 8)
	syms := tab.Symbols()
	syms[0].Name = "mutated"
	if got, _ := tab.Resolve(tab.Base()); got.Name != "a" {
		t.Error("Symbols() exposed internal state")
	}
}

func TestResolveProperty(t *testing.T) {
	// Every defined symbol resolves at every interior offset to itself.
	f := func(sizes []uint8) bool {
		tab := New(DefaultConfig())
		type def struct {
			name string
			addr mem.Addr
			size uint64
		}
		var defs []def
		for i, s := range sizes {
			if i >= 50 {
				break
			}
			size := uint64(s%200) + 1
			name := string(rune('a' + i%26))
			addr := tab.Define(name, size)
			defs = append(defs, def{name, addr, size})
		}
		for _, d := range defs {
			for _, off := range []uint64{0, d.size / 2, d.size - 1} {
				sym, ok := tab.Resolve(d.addr.Add(int(off)))
				if !ok || sym.Addr != d.addr {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroSizeDefine(t *testing.T) {
	tab := New(DefaultConfig())
	a := tab.Define("empty", 0)
	if sym, ok := tab.Resolve(a); !ok || sym.Size != 1 {
		t.Errorf("zero-size define: %+v %v", sym, ok)
	}
}
