// Package symtab models the binary symbol table Cheetah searches to name
// global variables involved in false sharing (paper §2.4: "For global
// variables, Cheetah reports names and addresses by searching through the
// symbol table in the binary executable").
//
// Workloads register their global variables as named address ranges inside
// a dedicated globals segment; the reporter resolves sampled addresses to
// those names.
package symtab

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Symbol is one global variable: a named address range.
type Symbol struct {
	// Name is the source-level variable name.
	Name string
	// Addr is the variable's base address.
	Addr mem.Addr
	// Size is the variable size in bytes.
	Size uint64
}

// End returns the first address past the symbol.
func (s Symbol) End() mem.Addr { return s.Addr.Add(int(s.Size)) }

// Contains reports whether addr falls inside the symbol.
func (s Symbol) Contains(addr mem.Addr) bool { return addr >= s.Addr && addr < s.End() }

// Config places the globals segment in the simulated address space.
type Config struct {
	// Base is the segment's first address.
	Base mem.Addr
	// Size is the segment size in bytes.
	Size uint64
}

// DefaultConfig returns a 256 MB globals segment below the default heap.
func DefaultConfig() Config {
	return Config{Base: 0x10000000, Size: 1 << 28}
}

// Table is a registry of global variables laid out in a segment. Define
// registers variables bump-allocated within the segment; Resolve maps
// addresses back to symbols.
type Table struct {
	cfg  Config
	next mem.Addr
	// syms is kept sorted by base address for binary-search resolution.
	syms []Symbol
}

// New creates an empty symbol table over the configured segment.
func New(cfg Config) *Table {
	if cfg.Size == 0 {
		cfg = DefaultConfig()
	}
	return &Table{cfg: cfg, next: cfg.Base}
}

// Base returns the segment's first address.
func (t *Table) Base() mem.Addr { return t.cfg.Base }

// Limit returns the first address past the segment.
func (t *Table) Limit() mem.Addr { return t.cfg.Base.Add(int(t.cfg.Size)) }

// Contains reports whether addr lies in the globals segment.
func (t *Table) Contains(addr mem.Addr) bool {
	return addr >= t.cfg.Base && addr < t.Limit()
}

// Define lays out a new global variable of the given size, cache-line
// aligned as a linker would align large data, and returns its address.
func (t *Table) Define(name string, size uint64) mem.Addr {
	if size == 0 {
		size = 1
	}
	// Align to the cache line, as linkers do for data above line size; it
	// also keeps distinct globals from incidentally sharing lines, so any
	// false sharing a workload exhibits on globals is internal to one
	// variable, which is the interesting case.
	addr := mem.Addr((uint64(t.next) + mem.LineSize - 1) &^ (mem.LineSize - 1))
	if addr.Add(int(size)) > t.Limit() {
		panic(fmt.Sprintf("symtab: globals segment exhausted defining %q (%d bytes)", name, size))
	}
	t.syms = append(t.syms, Symbol{Name: name, Addr: addr, Size: size})
	t.next = addr.Add(int(size))
	return addr
}

// DefineUnaligned lays out a global at the next raw address with no
// alignment, allowing workloads to model adjacent globals that share a
// cache line (a classic inter-variable false sharing source).
func (t *Table) DefineUnaligned(name string, size uint64) mem.Addr {
	if size == 0 {
		size = 1
	}
	addr := t.next
	if addr.Add(int(size)) > t.Limit() {
		panic(fmt.Sprintf("symtab: globals segment exhausted defining %q (%d bytes)", name, size))
	}
	t.syms = append(t.syms, Symbol{Name: name, Addr: addr, Size: size})
	t.next = addr.Add(int(size))
	return addr
}

// Restore installs a previously recorded symbol at its exact original
// address, so a replayed trace resolves global accesses to the same
// variable names. Unlike Define it performs no layout of its own and
// returns an error (rather than panicking) on overlap or out-of-segment
// addresses: trace files are external input.
func (t *Table) Restore(s Symbol) error {
	if s.Size == 0 {
		s.Size = 1
	}
	// The size bound is computed subtraction-first: s.End() (Addr+Size)
	// can wrap uint64 for hostile sizes and sneak past an End>Limit
	// comparison.
	if !t.Contains(s.Addr) || s.Size > uint64(t.Limit()-s.Addr) {
		return fmt.Errorf("symtab: restore %q at %v (%d bytes): outside globals segment %v..%v",
			s.Name, s.Addr, s.Size, t.Base(), t.Limit())
	}
	i := sort.Search(len(t.syms), func(i int) bool { return t.syms[i].End() > s.Addr })
	if i < len(t.syms) && t.syms[i].Addr < s.End() {
		return fmt.Errorf("symtab: restore %q at %v..%v: overlaps existing symbol %q at %v",
			s.Name, s.Addr, s.End(), t.syms[i].Name, t.syms[i].Addr)
	}
	t.syms = append(t.syms, Symbol{})
	copy(t.syms[i+1:], t.syms[i:])
	t.syms[i] = s
	if s.End() > t.next {
		t.next = s.End()
	}
	return nil
}

// Resolve returns the symbol containing addr.
func (t *Table) Resolve(addr mem.Addr) (Symbol, bool) {
	i := sort.Search(len(t.syms), func(i int) bool { return t.syms[i].End() > addr })
	if i < len(t.syms) && t.syms[i].Contains(addr) {
		return t.syms[i], true
	}
	return Symbol{}, false
}

// Symbols returns a copy of all registered symbols in address order.
func (t *Table) Symbols() []Symbol {
	out := make([]Symbol, len(t.syms))
	copy(out, t.syms)
	return out
}
