package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// fuzzSeeds returns representative valid wire frames and cache entries
// plus classic near-valid corruptions; checked-in seeds live under
// testdata/fuzz. The codecs' contract under fuzzing: cache files and
// worker streams are external input, so malformed bytes must produce
// an error — never a panic, a hang or an unbounded allocation — and
// every accepted payload must pass the harness field-bound validators.
func fuzzSeeds(t interface{ Helper() }) [][]byte {
	t.Helper()
	cell := sampleCell()
	res := sampleResult()
	var frames bytes.Buffer
	for _, m := range []*Message{
		{Type: MsgHello, Proto: ProtoVersion},
		{Type: MsgRun, Seq: 1, Cell: &cell},
		{Type: MsgResult, Seq: 1, Result: &res},
		{Type: MsgError, Seq: 2, Error: "boom"},
		{Type: MsgShutdown},
	} {
		if err := WriteMessage(&frames, m); err != nil {
			panic(err)
		}
	}
	frameSeed := frames.Bytes()
	truncated := append([]byte{}, frameSeed[:len(frameSeed)-5]...)
	flipped := append([]byte{}, frameSeed...)
	flipped[len(flipped)/2] ^= 0xFF

	entry, err := json.Marshal(cacheEntry{Schema: CacheSchema, Cell: cell.ID(), Result: res})
	if err != nil {
		panic(err)
	}
	return [][]byte{
		frameSeed,
		truncated,
		flipped,
		entry,
		[]byte("0\n\n"),
		[]byte("99999999\n"),
		[]byte("17\n{\"type\":\"launch\"}\n"),
		[]byte(`{"schema":"cheetah-sweep-cache/v1","cell":"x","result":{"result":{}}}`),
		[]byte{0x00},
	}
}

// FuzzCellResultDecode drives both decode paths external data reaches:
// the wire frame reader (a worker's stream) and the cache entry
// decoder (a file on disk). Every input must either decode to bounded,
// validated payloads or error out cleanly.
func FuzzCellResultDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	wantID := sampleCell().ID()
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			m, err := ReadMessage(br)
			if err != nil {
				break
			}
			// Anything the reader accepts must satisfy the validators —
			// ReadMessage's contract is that no unvalidated frame
			// escapes it.
			if err := m.Validate(); err != nil {
				t.Errorf("ReadMessage returned an invalid frame: %v", err)
			}
		}
		if res, err := decodeCacheEntry(data, wantID); err == nil {
			if err := res.Validate(); err != nil {
				t.Errorf("decodeCacheEntry returned an invalid result: %v", err)
			}
		}
	})
}

// TestFuzzSeedsAreWellFormed keeps the valid seeds actually valid (a
// regression here would quietly gut the fuzz corpus): the frame seed
// must parse to completion and the cache seed must decode.
func TestFuzzSeedsAreWellFormed(t *testing.T) {
	t.Parallel()
	seeds := fuzzSeeds(t)
	br := bufio.NewReader(bytes.NewReader(seeds[0]))
	frames := 0
	for {
		_, err := ReadMessage(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		frames++
	}
	if frames != 5 {
		t.Errorf("frame seed decodes to %d frames, want 5", frames)
	}
	if _, err := decodeCacheEntry(seeds[3], sampleCell().ID()); err != nil {
		t.Errorf("cache seed rejected: %v", err)
	}
}
