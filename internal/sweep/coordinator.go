package sweep

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

// Stats summarizes what a sharded sweep actually did, for logs and the
// bench trajectory.
type Stats struct {
	// Cells is the total number of distinct cells the sweep comprises.
	Cells int
	// Cached is how many were satisfied from the result cache.
	Cached int
	// Executed is how many ran on workers this sweep.
	Executed int
	// Retries counts cell assignments that had to be re-run elsewhere
	// after a worker died or reported a cell-level error.
	Retries int
	// Workers is how many workers completed the hello handshake.
	Workers int
	// Respawns counts replacement local workers spawned after deaths.
	Respawns int
	// Accesses is the total simulated memory accesses behind the sweep's
	// results, summed from the per-thread counts every cell result
	// carries — worker-executed and cache-served alike. It feeds the
	// bench trajectory's throughput stamp, which the in-process engine
	// counter cannot: in a sharded sweep the simulation runs in worker
	// processes, and in a warm re-sweep it ran in an earlier one.
	Accesses uint64
}

// Config configures a sharded sweep.
type Config struct {
	// Harness is the experiment configuration; the merged output is
	// byte-identical to harness.RunAll(Harness) at any sharding.
	Harness harness.Config
	// Procs is how many worker transports to spawn via Spawn.
	Procs int
	// Spawn creates the i'th local worker transport (typically a
	// subprocess running `fsbench -worker`). Required when Procs > 0.
	Spawn func(i int) (io.ReadWriteCloser, error)
	// Listener optionally accepts remote TCP workers for the duration
	// of the sweep (shards on other machines dial in with
	// `fsbench -worker -connect`). The coordinator closes it when the
	// sweep ends. With a listener and Procs == 0 the sweep waits until
	// at least one worker connects.
	Listener net.Listener
	// Cache is the optional on-disk result cache; hits skip execution
	// entirely and finished cells are stored as they arrive, so an
	// interrupted sweep resumes where it stopped.
	Cache *Cache
	// MaxAttempts bounds how many times one cell may be assigned before
	// the sweep fails (default 3): a cell that crashes every worker it
	// touches must not loop forever.
	MaxAttempts int
	// MaxRespawns bounds how many replacement workers the coordinator
	// spawns (via Spawn) after local workers die mid-sweep, so a 4-proc
	// sweep that loses 3 workers recovers its parallelism instead of
	// limping serially on the survivor. 0 means the default of 2×Procs;
	// negative disables re-spawning. Only spawned local workers are
	// replaced — remote TCP workers reconnect on their own terms — and a
	// replacement that dies consumes another unit of the same budget, so
	// a spawn command that always crashes cannot respawn forever.
	MaxRespawns int
	// CellTimeout bounds how long one assigned cell may go without a
	// reply (0 = wait forever). A worker that exceeds it — a hung remote
	// shard, a wedged subprocess — is retired exactly like a dead one:
	// its transport is closed and the in-flight cell is requeued on the
	// survivors. The timeout must comfortably exceed the slowest cell's
	// runtime; a too-tight value merely burns attempts (MaxAttempts
	// still bounds the damage).
	CellTimeout time.Duration
	// Log receives human-readable progress diagnostics (optional).
	Log io.Writer
	// ProgressEvery emits a periodic progress line to Log while the
	// sweep runs (done/pending/requeued counts and the cache hit rate).
	// 0 disables it — the default, so batch logs stay quiet.
	ProgressEvery time.Duration
}

// event is what worker goroutines report to the coordinator loop.
type event struct {
	kind    eventKind
	cell    harness.Cell
	hasCell bool
	res     harness.CellResult
	errText string
	err     error
	// wasLive distinguishes a worker dying after its handshake from one
	// that never joined, for the live/joining accounting.
	wasLive bool
	// local marks workers created via Spawn (subprocesses), the only
	// kind the coordinator can re-spawn.
	local bool
}

type eventKind uint8

const (
	evUp eventKind = iota + 1
	// evDown: the worker is gone (transport error, bad handshake or
	// protocol violation); hasCell marks an in-flight assignment that
	// needs requeueing.
	evDown
	evResult
	// evCellError: the worker survives but the cell failed there.
	evCellError
)

// Run executes a full sharded sweep: enumerate cells, satisfy what the
// cache can, farm the rest out to workers, then merge by preloading a
// runner and replaying the experiment assembly in this process.
func Run(cfg Config) (*harness.Results, Stats, error) {
	cells := harness.EnumerateCells(cfg.Harness)
	results, stats, err := RunCells(cfg, cells)
	if err != nil {
		return nil, stats, err
	}

	r := harness.NewRunner(cfg.Harness.Workers)
	for _, cell := range cells {
		res, ok := results[cell.ID()]
		if !ok {
			return nil, stats, fmt.Errorf("sweep: cell %s has no result after sweep", cell.ID())
		}
		if err := r.Preload(cell, res); err != nil {
			return nil, stats, fmt.Errorf("sweep: preloading %s: %w", cell.ID(), err)
		}
	}
	return harness.RunAllWith(r, cfg.Harness), stats, nil
}

// RunCells distributes an explicit cell list over the configured
// workers and returns the finished results keyed by cell ID — the
// execution engine of Run, exposed so callers with their own plans
// (phase-sharded trace replays) get the same cache, retry, respawn and
// timeout machinery without the experiment-assembly merge.
func RunCells(cfg Config, cells []harness.Cell) (map[string]harness.CellResult, Stats, error) {
	var stats Stats
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Procs > 0 && cfg.Spawn == nil {
		return nil, stats, fmt.Errorf("sweep: Procs = %d with no Spawn function", cfg.Procs)
	}
	if cfg.Procs <= 0 && cfg.Listener == nil {
		return nil, stats, fmt.Errorf("sweep: no workers: need Procs > 0 or a Listener")
	}
	if cfg.Listener != nil {
		defer cfg.Listener.Close()
	}

	// Dedupe by cell ID before planning: a caller-supplied list with the
	// same cell twice (a daemon submitting overlapping jobs) must behave
	// like a single copy. Without this, the completion accounting counts
	// the duplicate but the result loop drops it, and the sweep waits
	// forever for a cell that will never finish twice.
	seen := make(map[string]bool, len(cells))
	deduped := cells[:0:0]
	for _, cell := range cells {
		if id := cell.ID(); !seen[id] {
			seen[id] = true
			deduped = append(deduped, cell)
		}
	}
	cells = deduped

	stats.Cells = len(cells)
	results := make(map[string]harness.CellResult, len(cells))
	var pending []harness.Cell
	for _, cell := range cells {
		if cfg.Cache != nil {
			if res, ok := cfg.Cache.Get(cell); ok {
				results[cell.ID()] = res
				stats.Cached++
				stats.Accesses += res.Result.Accesses()
				mCellsCached.Inc()
				continue
			}
		}
		pending = append(pending, cell)
	}
	co := &coordinator{
		cfg:    cfg,
		queue:  make(chan harness.Cell, len(pending)),
		events: make(chan event),
		done:   make(chan struct{}),
	}
	mCellsEnqueued.Add(uint64(len(pending)))
	if len(pending) > 0 {
		if err := co.execute(pending, results, &stats); err != nil {
			return nil, stats, err
		}
	}
	return results, stats, nil
}

// coordinator holds the moving parts of one sweep's execution phase.
type coordinator struct {
	cfg    Config
	queue  chan harness.Cell
	events chan event
	done   chan struct{}

	wg sync.WaitGroup

	mu         sync.Mutex
	transports []io.Closer
	// nextWorker numbers workers for span attribution (the tid column
	// of cell spans in the Chrome trace).
	nextWorker int
	// closed refuses new workers: set on abort and by the cleanup path
	// before wg.Wait (wg.Add racing Wait is WaitGroup misuse).
	closed bool
}

// execute distributes pending cells over workers until every result is
// in, retrying assignments lost to dead workers on the survivors.
func (co *coordinator) execute(pending []harness.Cell, results map[string]harness.CellResult, stats *Stats) error {
	for _, cell := range pending {
		co.queue <- cell
	}
	joining := 0
	spawnIdx := 0
	spawn := func() bool {
		t, err := co.cfg.Spawn(spawnIdx)
		spawnIdx++
		if err != nil {
			co.logf("sweep: spawning worker %d: %v", spawnIdx-1, err)
			return false
		}
		co.addWorker(t, true)
		joining++
		return true
	}
	for i := 0; i < co.cfg.Procs; i++ {
		// Spawning fewer workers than asked is survivable as long as at
		// least one comes up; the all-dead check below handles total
		// failure.
		spawn()
	}
	if joining == 0 && co.cfg.Listener == nil {
		// No worker ever came up and none can arrive: fail now rather
		// than blocking forever on an event stream nobody will feed.
		return fmt.Errorf("sweep: no workers could be spawned")
	}
	if co.cfg.Listener != nil {
		go co.acceptLoop()
	}

	defer func() {
		close(co.done)
		// Stop accepting the moment the sweep completes: a remote worker
		// dialing in after the last result would otherwise be welcomed
		// into a finished sweep and fed nothing. Closing the listener
		// here (not just when RunCells returns) also unblocks the accept
		// loop promptly; it sees net.ErrClosed and exits quietly.
		if co.cfg.Listener != nil {
			co.cfg.Listener.Close()
		}
		// Refuse late-arriving TCP workers before waiting: wg.Add after
		// Wait has started is WaitGroup misuse.
		co.mu.Lock()
		co.closed = true
		co.mu.Unlock()
		close(co.queue)
		co.wg.Wait()
	}()

	respawnBudget := co.cfg.MaxRespawns
	if respawnBudget == 0 {
		respawnBudget = 2 * co.cfg.Procs
	}
	attempts := make(map[string]int, len(pending))
	live := 0
	remaining := len(pending)
	var progress <-chan time.Time
	if co.cfg.ProgressEvery > 0 {
		tick := time.NewTicker(co.cfg.ProgressEvery)
		defer tick.Stop()
		progress = tick.C
	}
	mQueueDepth.Set(int64(remaining))
	for remaining > 0 {
		var ev event
		select {
		case ev = <-co.events:
		case <-progress:
			co.logf("%s", progressLine(*stats, remaining, live))
			continue
		}
		switch ev.kind {
		case evUp:
			joining--
			live++
			stats.Workers++
			mWorkersSpawned.Inc()
			mWorkersLive.Set(int64(live))
			obs.Event("sweep", "worker-up", 0, nil)
		case evDown:
			if ev.err != nil {
				co.logf("sweep: worker lost: %v", ev.err)
				mWorkersLost.Inc()
				obs.Event("sweep", "worker-down", 0, nil)
			}
			if ev.wasLive {
				live--
				mWorkersLive.Set(int64(live))
			} else {
				joining--
			}
			if ev.hasCell {
				// A timed-out worker's in-flight cell may already have
				// completed via its requeued copy by the time the timeout
				// fires; requeueing again would re-execute a finished cell
				// and burn an attempt for nothing.
				if _, done := results[ev.cell.ID()]; !done {
					stats.Retries++
					if err := co.requeue(ev.cell, attempts, fmt.Errorf("worker died running it")); err != nil {
						co.abort()
						return err
					}
				}
			}
			// Replace a dead local worker while work remains and the
			// budget lasts, so the sweep keeps its parallelism instead of
			// finishing on whatever happens to survive.
			if ev.local && co.cfg.Spawn != nil && remaining > 0 && stats.Respawns < respawnBudget {
				if spawn() {
					stats.Respawns++
					mWorkersRespawned.Inc()
					obs.Event("sweep", "worker-respawn", 0, nil)
					co.logf("sweep: re-spawned worker %d to replace a dead one (%d/%d respawns used)",
						spawnIdx-1, stats.Respawns, respawnBudget)
				}
			}
			if live == 0 && joining == 0 && co.cfg.Listener == nil {
				co.abort()
				return fmt.Errorf("sweep: all workers are gone with %d cells unfinished", remaining)
			}
		case evResult:
			id := ev.cell.ID()
			if _, dup := results[id]; dup {
				// A late reply from a worker whose assignment was requeued
				// (timeout fired, both copies ran): the first result won,
				// this one must not touch the accounting again.
				mCellsLateDropped.Inc()
				break
			}
			results[id] = ev.res
			stats.Executed++
			stats.Accesses += ev.res.Result.Accesses()
			remaining--
			mCellsCompleted.Inc()
			mQueueDepth.Set(int64(remaining))
			if co.cfg.Cache != nil {
				if err := co.cfg.Cache.Put(ev.cell, ev.res); err != nil {
					co.logf("sweep: caching %s: %v", id, err)
				}
			}
		case evCellError:
			// Same late-race guard as evResult: if a requeued copy already
			// completed this cell, a straggler's error report is stale —
			// retrying would re-run work the sweep already has.
			if _, done := results[ev.cell.ID()]; done {
				mCellsLateDropped.Inc()
				break
			}
			stats.Retries++
			if err := co.requeue(ev.cell, attempts, fmt.Errorf("%s", ev.errText)); err != nil {
				co.abort()
				return err
			}
		}
	}
	mWorkersLive.Set(0)
	return nil
}

// progressLine formats the periodic -progress diagnostic. The cache hit
// rate is clamped to 0% when no cells are known yet — a bare ratio would
// print NaN% before the first cell completes (0/0).
func progressLine(stats Stats, remaining, live int) string {
	hitRate := 0.0
	if stats.Cells > 0 {
		hitRate = 100 * float64(stats.Cached) / float64(stats.Cells)
	}
	return fmt.Sprintf("sweep: progress: %d/%d cells done (%d cached, %.0f%% hit rate), %d pending, %d retries, %d workers live",
		stats.Cells-remaining, stats.Cells, stats.Cached, hitRate,
		remaining, stats.Retries, live)
}

// requeue puts a failed assignment back on the queue, failing the sweep
// once the cell has exhausted its attempts.
func (co *coordinator) requeue(cell harness.Cell, attempts map[string]int, cause error) error {
	id := cell.ID()
	attempts[id]++
	if attempts[id] >= co.cfg.MaxAttempts {
		return fmt.Errorf("sweep: cell %s failed %d times, last: %v", id, attempts[id], cause)
	}
	co.logf("sweep: retrying %s (%v)", id, cause)
	mCellsRequeued.Inc()
	if obs.TracingEnabled() {
		obs.Event("sweep", "cell-requeue", 0, map[string]any{
			"cell": id, "attempt": attempts[id], "cause": cause.Error(),
		})
	}
	co.queue <- cell
	return nil
}

// abort closes every transport so worker goroutines blocked on reads
// unwind; subprocesses see stdin EOF (and are killed if they linger).
func (co *coordinator) abort() {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.closed = true
	for _, t := range co.transports {
		t.Close()
	}
	co.transports = nil
}

// addWorker registers a transport and starts its goroutine. The closed
// check and wg.Add share the critical section, so a worker either joins
// before the cleanup's wg.Wait observes the counter or not at all.
func (co *coordinator) addWorker(t io.ReadWriteCloser, local bool) {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		t.Close()
		return
	}
	co.transports = append(co.transports, t)
	co.nextWorker++
	id := co.nextWorker
	co.wg.Add(1)
	co.mu.Unlock()
	go co.runWorker(t, local, id)
}

// acceptLoop turns incoming TCP connections into workers until the
// listener closes — which execute's cleanup does the moment the sweep
// completes, so no worker is accepted into a finished sweep. The
// resulting net.ErrClosed is the loop's normal exit, not worth a log
// line; any other accept error is real and reported.
func (co *coordinator) acceptLoop() {
	for {
		conn, err := co.cfg.Listener.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				co.logf("sweep: accept: %v", err)
			}
			return
		}
		co.addWorker(conn, false)
	}
}

// send delivers an event unless the coordinator loop has already
// finished.
func (co *coordinator) send(ev event) {
	select {
	case co.events <- ev:
	case <-co.done:
	}
}

// runWorker drives one transport: handshake, then assign cells from the
// queue one at a time until the queue closes or the worker fails. Any
// transport or protocol failure retires the worker; an in-flight cell
// rides along on the evDown event for requeueing.
func (co *coordinator) runWorker(t io.ReadWriteCloser, local bool, id int) {
	defer co.wg.Done()
	defer t.Close()
	br := bufio.NewReader(t)
	bw := bufio.NewWriter(t)

	hello, err := ReadMessage(br)
	if err != nil {
		co.send(event{kind: evDown, local: local, err: fmt.Errorf("handshake: %w", err)})
		return
	}
	if hello.Type != MsgHello || hello.Proto != ProtoVersion {
		co.send(event{kind: evDown, local: local,
			err: fmt.Errorf("handshake: got %q proto %q, want %q", hello.Type, hello.Proto, ProtoVersion)})
		return
	}
	co.send(event{kind: evUp})

	seq := uint64(0)
	for cell := range co.queue {
		seq++
		start := time.Now()
		err := WriteMessage(bw, &Message{Type: MsgRun, Seq: seq, Cell: &cell})
		if err == nil {
			err = bw.Flush()
		}
		var m *Message
		if err == nil {
			m, err = co.readReply(br, t)
		}
		if obs.TracingEnabled() {
			obs.Span("sweep", "cell", start, time.Now(), id, map[string]any{
				"cell": cell.ID(), "ok": err == nil && m != nil && m.Type == MsgResult,
			})
		}
		if err == nil && (m.Seq != seq || (m.Type != MsgResult && m.Type != MsgError)) {
			err = fmt.Errorf("protocol violation: %q frame seq %d, want reply to seq %d", m.Type, m.Seq, seq)
		}
		if err != nil {
			co.send(event{kind: evDown, wasLive: true, local: local, cell: cell, hasCell: true, err: err})
			return
		}
		if m.Type == MsgResult {
			mCellSeconds.Observe(time.Since(start).Seconds())
			co.send(event{kind: evResult, cell: cell, res: *m.Result})
		} else {
			co.send(event{kind: evCellError, cell: cell, errText: m.Error})
		}
	}
	// Queue drained: ask the worker to exit and let the deferred Close
	// reap it.
	if err := WriteMessage(bw, &Message{Type: MsgShutdown}); err == nil {
		bw.Flush()
	}
	co.send(event{kind: evDown, wasLive: true, local: local})
}

// readReply reads one reply frame, enforcing the per-cell timeout when
// one is configured. On timeout the transport is closed — which
// unblocks the pending read — and a timeout error is returned, so the
// caller retires the worker and requeues its in-flight cell exactly
// like a transport failure.
func (co *coordinator) readReply(br *bufio.Reader, t io.Closer) (*Message, error) {
	if co.cfg.CellTimeout <= 0 {
		return ReadMessage(br)
	}
	type reply struct {
		m   *Message
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		m, err := ReadMessage(br)
		ch <- reply{m, err}
	}()
	timer := time.NewTimer(co.cfg.CellTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.m, r.err
	case <-timer.C:
		t.Close()
		<-ch // the closed transport unblocks the reader goroutine
		mCellTimeouts.Inc()
		obs.Event("sweep", "cell-timeout", 0, nil)
		return nil, fmt.Errorf("no reply within the %v cell timeout", co.cfg.CellTimeout)
	}
}

func (co *coordinator) logf(format string, args ...any) {
	if co.cfg.Log != nil {
		fmt.Fprintf(co.cfg.Log, format+"\n", args...)
	}
}
