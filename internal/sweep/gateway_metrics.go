package sweep

import "repro/internal/obs"

// Gateway observability: the job queue's admission and dedupe
// lifecycle, one layer above the per-sweep cell metrics. Everything is
// touched per job or per cell — never per simulated access.
var (
	mGWJobsSubmitted = obs.GetCounter("cheetah_gateway_jobs_submitted_total",
		"Jobs admitted to the queue.")
	mGWJobsRejected = obs.GetCounter("cheetah_gateway_jobs_rejected_total",
		"Jobs rejected because the queue was at its cell bound.")
	mGWJobsCompleted = obs.GetCounter("cheetah_gateway_jobs_completed_total",
		"Jobs that finished with every cell succeeding.")
	mGWJobsFailed = obs.GetCounter("cheetah_gateway_jobs_failed_total",
		"Jobs that finished with at least one cell error.")
	mGWJobsRunning = obs.GetGauge("cheetah_gateway_jobs_running",
		"Jobs currently executing.")
	mGWQueueDepth = obs.GetGauge("cheetah_gateway_queue_depth",
		"Cells admitted but not yet finished, summed over all jobs.")
	mGWCellsExecuted = obs.GetCounter("cheetah_gateway_cells_executed_total",
		"Cells the gateway actually executed on a worker.")
	mGWCellsCached = obs.GetCounter("cheetah_gateway_cells_cached_total",
		"Cells served from the shared result cache.")
	mGWCellsDeduped = obs.GetCounter("cheetah_gateway_cells_deduped_total",
		"Cells that joined another job's identical in-flight execution.")
	mGWJobSeconds = obs.GetHistogram("cheetah_gateway_job_seconds",
		"Wall-clock seconds per job, submission to terminal state.",
		obs.DurationBuckets)
)
