package sweep

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// The cross-process tests re-execute this test binary as a real worker
// subprocess: TestMain intercepts the re-exec before any test runs.
// workerEnv selects plain serving; dieAfterEnv makes the worker exit(1)
// after serving that many cells — the fault-injection "kill" (from the
// coordinator's perspective an abrupt self-kill and an external SIGKILL
// are the same event: the pipe breaks mid-sweep).
const (
	workerEnv   = "SWEEP_TEST_WORKER"
	dieAfterEnv = "SWEEP_TEST_DIE_AFTER"
)

func TestMain(m *testing.M) {
	switch os.Getenv(workerEnv) {
	case "":
		os.Exit(m.Run())
	case "serve":
		if err := Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "test worker: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	case "die-after":
		n, _ := strconv.Atoi(os.Getenv(dieAfterEnv))
		serveThenDie(n)
	}
}

// serveThenDie behaves like Serve for n cells, then drops dead without
// draining its assignment — simulating a worker killed mid-sweep.
func serveThenDie(n int) {
	br := bufio.NewReader(os.Stdin)
	bw := bufio.NewWriter(os.Stdout)
	if err := WriteMessage(bw, &Message{Type: MsgHello, Proto: ProtoVersion}); err != nil {
		os.Exit(1)
	}
	bw.Flush()
	for served := 0; ; served++ {
		m, err := ReadMessage(br)
		if err != nil || m.Type != MsgRun {
			os.Exit(1)
		}
		if served >= n {
			os.Exit(1) // dies holding an assigned cell
		}
		res, err := harness.RunCell(*m.Cell)
		if err != nil {
			os.Exit(1)
		}
		if err := WriteMessage(bw, &Message{Type: MsgResult, Seq: m.Seq, Result: &res}); err != nil {
			os.Exit(1)
		}
		bw.Flush()
	}
}

// spawnSelf reexecutes the test binary as a worker with extra env.
func spawnSelf(t *testing.T, extraEnv ...string) func(int) (io.ReadWriteCloser, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(int) (io.ReadWriteCloser, error) {
		return SpawnWorkerProc(exe, nil, append([]string{workerEnv + "=serve"}, extraEnv...), os.Stderr)
	}
}

func testConfig(t *testing.T) harness.Config {
	c := harness.Config{Scale: 0.05, Threads: 4}
	if testing.Short() {
		c.Scale = 0.02
	}
	return c
}

// TestShardedSweepMatchesSerial is the subsystem's headline invariant:
// the same sweep sharded across 1, 2 and 4 real worker processes must
// merge into the exact metrics map and byte-identical report tables the
// in-process serial runner produces. Short mode (CI -race) runs a
// smaller scale and only the 2-process sharding.
func TestShardedSweepMatchesSerial(t *testing.T) {
	c := testConfig(t)
	serialCfg := c
	serialCfg.Workers = 1
	serial := harness.RunAll(serialCfg)
	serialText := serial.Format()
	serialMetrics := serial.Metrics()

	procCounts := []int{1, 2, 4}
	if testing.Short() {
		procCounts = []int{2}
	}
	for _, procs := range procCounts {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			res, stats, err := Run(Config{Harness: c, Procs: procs, Spawn: spawnSelf(t)})
			if err != nil {
				t.Fatalf("sharded sweep: %v", err)
			}
			if stats.Executed != stats.Cells || stats.Cached != 0 {
				t.Errorf("stats = %+v, want all %d cells executed", stats, stats.Cells)
			}
			if got := res.Format(); got != serialText {
				t.Errorf("sharded report diverges from serial:\n%s", firstDiff(serialText, got))
			}
			if got := res.Metrics(); !reflect.DeepEqual(got, serialMetrics) {
				t.Errorf("metrics diverge:\nserial:  %v\nsharded: %v", serialMetrics, got)
			}
		})
	}
}

// TestSweepResumesFromCache: a re-sweep over a warm cache must execute
// zero cells (no worker processes even spawn) and still produce the
// identical report — the crashed-sweep resume guarantee.
func TestSweepResumesFromCache(t *testing.T) {
	c := testConfig(t)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Harness: c, Procs: 2, Spawn: spawnSelf(t), Cache: cache}
	first, stats, err := Run(cfg)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	if stats.Executed == 0 || stats.Cached != 0 {
		t.Fatalf("cold sweep stats = %+v, want all executed", stats)
	}

	cfg.Spawn = func(int) (io.ReadWriteCloser, error) {
		t.Error("resumed sweep spawned a worker")
		return nil, fmt.Errorf("no workers in resume test")
	}
	second, stats, err := Run(cfg)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	if stats.Executed != 0 || stats.Cached != stats.Cells {
		t.Errorf("warm sweep stats = %+v, want all %d cells cached", stats, stats.Cells)
	}
	if f, s := first.Format(), second.Format(); f != s {
		t.Errorf("resumed report diverges:\n%s", firstDiff(f, s))
	}
}

// TestWorkerDeathRetries is the fault-injection case: one of two
// workers dies mid-sweep with cells in flight; the coordinator must
// requeue its work onto the survivor and still merge the identical
// report.
func TestWorkerDeathRetries(t *testing.T) {
	c := testConfig(t)
	serialCfg := c
	serialCfg.Workers = 1
	serialText := harness.RunAll(serialCfg).Format()

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := func(i int) (io.ReadWriteCloser, error) {
		if i == 0 {
			// Worker 0 serves two cells, then dies holding a third.
			return SpawnWorkerProc(exe, nil,
				[]string{workerEnv + "=die-after", dieAfterEnv + "=2"}, os.Stderr)
		}
		return SpawnWorkerProc(exe, nil, []string{workerEnv + "=serve"}, os.Stderr)
	}
	res, stats, err := Run(Config{Harness: c, Procs: 2, Spawn: spawn})
	if err != nil {
		t.Fatalf("sweep with dying worker: %v", err)
	}
	if stats.Retries == 0 {
		t.Error("no retries recorded; the dying worker should have lost an in-flight cell")
	}
	if got := res.Format(); got != serialText {
		t.Errorf("report after worker death diverges from serial:\n%s", firstDiff(serialText, got))
	}
}

// stallingWorker handshakes, then swallows every assignment without
// ever replying — a hung remote shard. It keeps reading so it notices
// the coordinator abandoning it (the transport closing) and exits,
// like a remote worker whose connection is torn down.
func stallingWorker(t io.ReadWriteCloser) {
	defer t.Close()
	bw := bufio.NewWriter(t)
	if err := WriteMessage(bw, &Message{Type: MsgHello, Proto: ProtoVersion}); err != nil {
		return
	}
	bw.Flush()
	br := bufio.NewReader(t)
	for {
		if _, err := ReadMessage(br); err != nil {
			return
		}
	}
}

// TestCellTimeoutRequeues is the hung-shard fault injection: one of two
// workers accepts a cell and never replies. With CellTimeout set the
// coordinator must retire it, requeue the cell on the healthy worker,
// and still merge the byte-identical report — without the timeout the
// sweep would hang forever.
func TestCellTimeoutRequeues(t *testing.T) {
	t.Parallel()
	c := testConfig(t)
	serialCfg := c
	serialCfg.Workers = 1
	serialText := harness.RunAll(serialCfg).Format()

	spawn := func(i int) (io.ReadWriteCloser, error) {
		coordSide, workerSide := net.Pipe()
		if i == 0 {
			go stallingWorker(workerSide)
		} else {
			go Serve(workerSide, workerSide)
		}
		return coordSide, nil
	}
	// The timeout must exceed the slowest healthy cell by a wide margin
	// (a spurious trip would just burn an attempt, but the test asserts
	// on retry accounting); the stall is detected concurrently with the
	// healthy worker draining the queue.
	res, stats, err := Run(Config{Harness: c, Procs: 2, Spawn: spawn,
		CellTimeout: 3 * time.Second, MaxAttempts: 5})
	if err != nil {
		t.Fatalf("sweep with stalled worker: %v", err)
	}
	if stats.Retries == 0 {
		t.Error("no retries recorded; the stalled worker's cell should have been requeued")
	}
	if got := res.Format(); got != serialText {
		t.Errorf("report after stalled worker diverges from serial:\n%s", firstDiff(serialText, got))
	}
}

// TestAllWorkersDeadFails: when every worker is gone and cells remain,
// the sweep must fail with a diagnosis instead of hanging.
func TestAllWorkersDeadFails(t *testing.T) {
	c := testConfig(t)
	_, _, err := Run(Config{Harness: c, Procs: 1,
		Spawn: spawnSelf(t, workerEnv+"=die-after", dieAfterEnv+"=0")})
	if err == nil {
		t.Fatal("sweep with no surviving workers succeeded")
	}
	if !strings.Contains(err.Error(), "workers") {
		t.Errorf("error does not diagnose worker loss: %v", err)
	}
}

// TestNoSpawnableWorkersFails: if every Spawn call errors and no
// listener can supply workers, the sweep must fail immediately instead
// of blocking forever on an event stream nobody feeds.
func TestNoSpawnableWorkersFails(t *testing.T) {
	t.Parallel()
	c := testConfig(t)
	spawn := func(int) (io.ReadWriteCloser, error) {
		return nil, fmt.Errorf("forced spawn failure")
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := Run(Config{Harness: c, Procs: 2, Spawn: spawn})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("sweep with unspawnable workers succeeded")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sweep with unspawnable workers hung")
	}
}

// TestTCPWorkers: remote shards dial a listening coordinator; the
// merged report still matches serial. Uses in-process dialers — the
// subprocess transport is covered above; this exercises the TCP path.
func TestTCPWorkers(t *testing.T) {
	c := testConfig(t)
	serialCfg := c
	serialCfg.Workers = 1
	serialText := harness.RunAll(serialCfg).Format()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		go func() {
			// Dial until the worker is accepted; Serve returns when the
			// coordinator shuts the connection down.
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			Serve(conn, conn)
		}()
	}
	res, stats, err := Run(Config{Harness: c, Listener: ln})
	if err != nil {
		t.Fatalf("TCP sweep: %v", err)
	}
	if stats.Executed != stats.Cells {
		t.Errorf("stats = %+v, want all %d cells executed", stats, stats.Cells)
	}
	if got := res.Format(); got != serialText {
		t.Errorf("TCP-sharded report diverges from serial:\n%s", firstDiff(serialText, got))
	}
}

// firstDiff renders the first line where a and b disagree.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := min(len(al), len(bl))
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\na: %s\nb: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("outputs differ in length: %d vs %d lines", len(al), len(bl))
}

// TestDeadWorkersAreRespawned is the worker-loss recovery fault
// injection: 3 of 4 subprocess workers die early in the sweep. The
// coordinator must spawn replacements — not limp serially on the lone
// survivor — and still merge the byte-identical report.
func TestDeadWorkersAreRespawned(t *testing.T) {
	c := testConfig(t)
	serialCfg := c
	serialCfg.Workers = 1
	serialText := harness.RunAll(serialCfg).Format()

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := func(i int) (io.ReadWriteCloser, error) {
		if i < 3 {
			// The first three workers each serve one cell, then die
			// holding their second.
			return SpawnWorkerProc(exe, nil,
				[]string{workerEnv + "=die-after", dieAfterEnv + "=1"}, os.Stderr)
		}
		return SpawnWorkerProc(exe, nil, []string{workerEnv + "=serve"}, os.Stderr)
	}
	res, stats, err := Run(Config{Harness: c, Procs: 4, Spawn: spawn, MaxAttempts: 8})
	if err != nil {
		t.Fatalf("sweep with dying workers: %v", err)
	}
	if stats.Respawns != 3 {
		t.Errorf("Respawns = %d, want 3 (one per dead worker)", stats.Respawns)
	}
	if stats.Workers != 7 {
		t.Errorf("Workers = %d, want 7 (4 originals + 3 replacements)", stats.Workers)
	}
	if stats.Retries < 3 {
		t.Errorf("Retries = %d, want >= 3 (each death lost an in-flight cell)", stats.Retries)
	}
	if got := res.Format(); got != serialText {
		t.Errorf("report after respawns diverges from serial:\n%s", firstDiff(serialText, got))
	}
}

// TestRespawnBudgetBoundsChurn: when every spawned worker dies at its
// first cell, re-spawning must stop at the configured bound and the
// sweep must fail with a diagnosis instead of spawning forever.
func TestRespawnBudgetBoundsChurn(t *testing.T) {
	c := testConfig(t)
	spawned := 0
	_, stats, err := Run(Config{Harness: c, Procs: 1, MaxRespawns: 2, MaxAttempts: 100,
		Spawn: func(i int) (io.ReadWriteCloser, error) {
			spawned++
			exe, exeErr := os.Executable()
			if exeErr != nil {
				return nil, exeErr
			}
			return SpawnWorkerProc(exe, nil,
				[]string{workerEnv + "=die-after", dieAfterEnv + "=0"}, os.Stderr)
		}})
	if err == nil {
		t.Fatal("sweep with only crashing workers succeeded")
	}
	if !strings.Contains(err.Error(), "workers") {
		t.Errorf("error does not diagnose worker loss: %v", err)
	}
	if stats.Respawns != 2 {
		t.Errorf("Respawns = %d, want exactly the budget of 2", stats.Respawns)
	}
	if spawned != 3 {
		t.Errorf("Spawn called %d times, want 3 (1 original + 2 respawns)", spawned)
	}

	// A negative budget disables re-spawning entirely.
	spawned = 0
	_, stats, err = Run(Config{Harness: c, Procs: 1, MaxRespawns: -1,
		Spawn: func(i int) (io.ReadWriteCloser, error) {
			spawned++
			exe, exeErr := os.Executable()
			if exeErr != nil {
				return nil, exeErr
			}
			return SpawnWorkerProc(exe, nil,
				[]string{workerEnv + "=die-after", dieAfterEnv + "=0"}, os.Stderr)
		}})
	if err == nil {
		t.Fatal("sweep with crashing worker and respawns disabled succeeded")
	}
	if stats.Respawns != 0 || spawned != 1 {
		t.Errorf("MaxRespawns=-1: Respawns = %d, Spawn calls = %d, want 0 and 1", stats.Respawns, spawned)
	}
}

// TestSweepAccountsAccesses: Stats.Accesses — the numerator of the bench
// throughput stamp — must match the serial runner's total on a sweep
// sharded across worker processes, and must stay populated on a fully
// cache-served re-sweep. Both paths stamped 0 before the counts were
// summed from the result payloads: the per-worker engine counters never
// crossed the wire, and cached cells never touched an engine at all.
func TestSweepAccountsAccesses(t *testing.T) {
	c := testConfig(t)
	serialCfg := c
	serialCfg.Workers = 1
	r := harness.NewRunner(1)
	harness.RunAllWith(r, serialCfg)
	want := r.Accesses()
	if want == 0 {
		t.Fatal("serial runner reports zero accesses; the reference is broken")
	}

	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Harness: c, Procs: 2, Spawn: spawnSelf(t), Cache: cache}
	_, stats, err := Run(cfg)
	if err != nil {
		t.Fatalf("sharded sweep: %v", err)
	}
	if stats.Accesses != want {
		t.Errorf("sharded sweep accounted %d accesses, serial runner %d", stats.Accesses, want)
	}

	// Re-sweep over the warm cache: nothing executes, yet the accesses
	// behind the served results must still be accounted.
	cfg.Spawn = func(int) (io.ReadWriteCloser, error) {
		t.Error("warm re-sweep spawned a worker")
		return nil, fmt.Errorf("no workers in warm re-sweep")
	}
	_, stats, err = Run(cfg)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	if stats.Executed != 0 {
		t.Fatalf("warm sweep executed %d cells, want 0", stats.Executed)
	}
	if stats.Accesses != want {
		t.Errorf("warm sweep accounted %d accesses, want %d", stats.Accesses, want)
	}
}
