package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

// This file is the job-queue layer behind the cheetahd gateway: many
// concurrent detection jobs — each a set of harness cells — multiplexed
// onto one bounded executor pool. Where the coordinator in this package
// drives ONE sweep to completion and exits, the JobQueue is built for a
// long-lived process: admission is bounded (a full queue rejects rather
// than buffering without limit), concurrency is budgeted per tenant so
// one client cannot starve the rest, identical cells running at the
// same moment collapse to a single execution (singleflight), and
// finished cells land in the shared content-addressed cache so later
// jobs are served from disk. Determinism carries over untouched: a
// cell's result depends only on its identity, so deduping and caching
// can never change a job's bytes.

// Admission errors. Callers (the HTTP gateway) map these to 429 and 503.
var (
	// ErrQueueFull rejects a submission that would push the queue past
	// MaxQueuedCells — backpressure instead of unbounded buffering.
	ErrQueueFull = errors.New("sweep: job queue full")
	// ErrShuttingDown rejects submissions after Shutdown has begun.
	ErrShuttingDown = errors.New("sweep: job queue shutting down")
)

// QueueConfig configures a JobQueue.
type QueueConfig struct {
	// Workers bounds how many cells execute concurrently across all
	// jobs and tenants (default 4).
	Workers int
	// MaxQueuedCells bounds the cells admitted but not yet finished,
	// summed over every queued and running job (default 1024). A
	// submission that would exceed it fails with ErrQueueFull.
	MaxQueuedCells int
	// TenantBudget bounds how many cells one tenant executes
	// concurrently (default: Workers, i.e. no per-tenant throttling).
	// Waiting for budget consumes no worker slot.
	TenantBudget int
	// Cache is the optional shared result cache; hits skip execution and
	// misses are stored, so identical jobs submitted days apart cost one
	// execution.
	Cache *Cache
	// Exec runs one cell (default harness.RunCell — a fresh, isolated
	// system per cell, never the process-wide memoizing runner). A
	// ProcPool's Exec shards cells over worker subprocesses instead.
	Exec func(harness.Cell) (harness.CellResult, error)
	// Log receives human-readable diagnostics (optional).
	Log io.Writer
}

func (c QueueConfig) withDefaults() QueueConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxQueuedCells <= 0 {
		c.MaxQueuedCells = 1024
	}
	if c.TenantBudget <= 0 || c.TenantBudget > c.Workers {
		c.TenantBudget = c.Workers
	}
	if c.Exec == nil {
		c.Exec = harness.RunCell
	}
	return c
}

// JobSpec describes one submitted job.
type JobSpec struct {
	// Tenant attributes the job to a concurrency budget ("" = "default").
	Tenant string
	// Label is a human-readable name for logs and the job listing.
	Label string
	// Cells is the work; duplicates within one job are collapsed.
	Cells []harness.Cell
}

// JobState is a job's lifecycle position.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobEvent is one step of a job's progress, streamed to subscribers
// (the gateway forwards them as SSE) and retained for late joiners.
type JobEvent struct {
	Kind string `json:"kind"` // queued|running|cell-done|done|failed
	Cell string `json:"cell,omitempty"`
	// Via says how a finished cell was satisfied: executed, cached, or
	// deduped (another in-flight job ran it).
	Via   string `json:"via,omitempty"`
	Err   string `json:"error,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// Job is one submitted detection job. All methods are safe for
// concurrent use; results become available once Done() is closed.
type Job struct {
	ID     string
	Tenant string
	Label  string
	Cells  []harness.Cell

	queue *JobQueue
	done  chan struct{}

	mu      sync.Mutex
	state   JobState
	err     error
	results map[string]harness.CellResult
	events  []JobEvent
	subs    map[int]chan JobEvent
	nextSub int
	nDone   int
	// finishedAt is when the job reached a terminal state; the queue's
	// GC measures retention from it.
	finishedAt time.Time
}

// State returns the job's current lifecycle position.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job has finished (done or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the failure cause, nil while running or on success.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Results returns the finished cell results keyed by cell ID. Complete
// only after Done() closes; the map is shared, treat it as read-only.
func (j *Job) Results() map[string]harness.CellResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.results
}

// Progress returns (finished, total) cell counts.
func (j *Job) Progress() (done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nDone, len(j.Cells)
}

// Subscribe returns every event so far plus a live channel for the
// rest, and a cancel function. The channel closes after the job's
// terminal event. A slow subscriber drops events rather than blocking
// the job (SSE consumers resync from the snapshot on reconnect).
func (j *Job) Subscribe() (past []JobEvent, live <-chan JobEvent, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	past = append([]JobEvent(nil), j.events...)
	ch := make(chan JobEvent, 256)
	if j.state == JobDone || j.state == JobFailed {
		close(ch)
		return past, ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	return past, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
	}
}

// emit records an event and fans it out. terminal closes all
// subscriber channels after delivery.
func (j *Job) emit(ev JobEvent, terminal bool) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	for id, ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, it resyncs from the snapshot
		}
		if terminal {
			delete(j.subs, id)
			close(ch)
		}
	}
	j.mu.Unlock()
}

// flight is one in-flight cell execution shared by every job that
// wants that cell — the singleflight memo entry.
type flight struct {
	done chan struct{}
	res  harness.CellResult
	err  error
}

// QueueStats is a snapshot of the queue's lifetime accounting.
type QueueStats struct {
	Submitted, Rejected, Completed, Failed uint64
	// CellsExecuted ran on a worker; CellsCached came from the disk
	// cache; CellsDeduped piggybacked on another job's in-flight
	// execution. The three sum to every finished cell across all jobs.
	CellsExecuted, CellsCached, CellsDeduped uint64
	// JobsEvicted counts terminal jobs GC dropped from the job table.
	JobsEvicted uint64
	// QueuedCells is the current admitted-but-unfinished total, the
	// quantity MaxQueuedCells bounds.
	QueuedCells int
}

// JobQueue multiplexes detection jobs onto a bounded executor pool.
type JobQueue struct {
	cfg QueueConfig

	wg sync.WaitGroup

	// global bounds total concurrent executions; tenants bounds each
	// tenant's share. Acquisition order is tenant → global, so a tenant
	// at its budget queues without holding a worker slot.
	global chan struct{}

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	order    []string // submission order, for listings
	inflight map[string]*flight
	tenants  map[string]chan struct{}
	pending  int // admitted-but-unfinished cells (bounded)
	nextID   uint64
	stats    QueueStats
}

// NewJobQueue builds a queue ready to accept submissions.
func NewJobQueue(cfg QueueConfig) *JobQueue {
	cfg = cfg.withDefaults()
	q := &JobQueue{
		cfg:      cfg,
		global:   make(chan struct{}, cfg.Workers),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*flight),
		tenants:  make(map[string]chan struct{}),
	}
	mGWQueueDepth.Set(0)
	return q
}

// Submit admits a job, returning ErrQueueFull when the cell bound is
// hit and ErrShuttingDown after Shutdown. The job starts immediately;
// track it via the returned handle.
func (q *JobQueue) Submit(spec JobSpec) (*Job, error) {
	if len(spec.Cells) == 0 {
		return nil, fmt.Errorf("sweep: job with no cells")
	}
	for _, c := range spec.Cells {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: invalid cell in job: %w", err)
		}
	}
	// Collapse duplicates within the job, same identity rule as the
	// coordinator: one result per distinct cell ID.
	seen := make(map[string]bool, len(spec.Cells))
	cells := make([]harness.Cell, 0, len(spec.Cells))
	for _, c := range spec.Cells {
		if id := c.ID(); !seen[id] {
			seen[id] = true
			cells = append(cells, c)
		}
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = "default"
	}

	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if q.pending+len(cells) > q.cfg.MaxQueuedCells {
		q.stats.Rejected++
		q.mu.Unlock()
		mGWJobsRejected.Inc()
		return nil, fmt.Errorf("%w: %d cells queued, submission of %d would exceed the bound of %d",
			ErrQueueFull, q.pending, len(cells), q.cfg.MaxQueuedCells)
	}
	q.nextID++
	job := &Job{
		ID:     fmt.Sprintf("j%06d", q.nextID),
		Tenant: tenant,
		Label:  spec.Label,
		Cells:  cells,
		queue:  q,
		done:   make(chan struct{}),
		state:  JobQueued,
		subs:   make(map[int]chan JobEvent),
	}
	q.jobs[job.ID] = job
	q.order = append(q.order, job.ID)
	q.pending += len(cells)
	depth := q.pending
	q.stats.Submitted++
	q.stats.QueuedCells = q.pending
	tenantSem, ok := q.tenants[tenant]
	if !ok {
		tenantSem = make(chan struct{}, q.cfg.TenantBudget)
		q.tenants[tenant] = tenantSem
	}
	q.wg.Add(1)
	q.mu.Unlock()

	mGWJobsSubmitted.Inc()
	mGWQueueDepth.Set(int64(depth))
	job.emit(JobEvent{Kind: "queued", Total: len(cells)}, false)
	go q.runJob(job, tenantSem)
	return job, nil
}

// Get returns a job by ID.
func (q *JobQueue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (q *JobQueue) Jobs() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.jobs[id])
	}
	return out
}

// Stats returns a snapshot of the queue's accounting.
func (q *JobQueue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.QueuedCells = q.pending
	return s
}

// GC evicts terminal (done or failed) jobs that reached their terminal
// state at least ttl ago, returning the evicted IDs in submission
// order. Evicted jobs disappear from Get and Jobs — the gateway serves
// 404 for them afterwards — but their cell results live on in the
// shared cache, so resubmitting the same work stays cheap. A ttl of
// zero evicts every terminal job. Running and queued jobs are never
// touched.
func (q *JobQueue) GC(ttl time.Duration) []string {
	cutoff := time.Now().Add(-ttl)
	q.mu.Lock()
	defer q.mu.Unlock()
	var evicted []string
	kept := q.order[:0]
	for _, id := range q.order {
		if q.jobs[id].terminalBefore(cutoff) {
			delete(q.jobs, id)
			evicted = append(evicted, id)
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
	// Zero the tail so evicted IDs don't pin the backing array.
	tail := q.order[len(q.order):cap(q.order)]
	for i := range tail {
		tail[i] = ""
	}
	q.stats.JobsEvicted += uint64(len(evicted))
	return evicted
}

// terminalBefore reports whether the job finished (done or failed) at
// or before cutoff.
func (j *Job) terminalBefore(cutoff time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone && j.state != JobFailed {
		return false
	}
	return !j.finishedAt.After(cutoff)
}

// Shutdown stops admitting jobs and waits for the running ones until
// ctx expires.
func (q *JobQueue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sweep: jobs still running at shutdown deadline: %w", ctx.Err())
	}
}

// runJob drives one job: every cell through the singleflight/cache/
// execute pipeline concurrently, then the terminal event.
func (q *JobQueue) runJob(job *Job, tenantSem chan struct{}) {
	defer q.wg.Done()
	start := time.Now()
	mGWJobsRunning.Add(1)
	defer mGWJobsRunning.Add(-1)
	job.mu.Lock()
	job.state = JobRunning
	job.mu.Unlock()
	job.emit(JobEvent{Kind: "running", Total: len(job.Cells)}, false)

	results := make(map[string]harness.CellResult, len(job.Cells))
	var (
		resMu    sync.Mutex
		cellWG   sync.WaitGroup
		firstErr error
	)
	for _, cell := range job.Cells {
		cellWG.Add(1)
		go func(cell harness.Cell) {
			defer cellWG.Done()
			res, via, err := q.cellResult(cell, tenantSem)

			q.mu.Lock()
			q.pending--
			depth := q.pending
			q.mu.Unlock()
			mGWQueueDepth.Set(int64(depth))

			resMu.Lock()
			defer resMu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("cell %s: %w", cell.ID(), err)
				}
				return
			}
			results[cell.ID()] = res
			job.mu.Lock()
			job.nDone++
			done := job.nDone
			job.mu.Unlock()
			job.emit(JobEvent{Kind: "cell-done", Cell: cell.ID(), Via: via,
				Done: done, Total: len(job.Cells)}, false)
		}(cell)
	}
	cellWG.Wait()

	elapsed := time.Since(start)
	mGWJobSeconds.Observe(elapsed.Seconds())
	if obs.TracingEnabled() {
		obs.Span("gateway", "job", start, time.Now(), 0, map[string]any{
			"job": job.ID, "tenant": job.Tenant, "cells": len(job.Cells),
		})
	}

	job.mu.Lock()
	job.results = results
	if firstErr != nil {
		job.state = JobFailed
		job.err = firstErr
	} else {
		job.state = JobDone
	}
	job.finishedAt = time.Now()
	nDone := job.nDone
	job.mu.Unlock()
	q.mu.Lock()
	if firstErr != nil {
		q.stats.Failed++
	} else {
		q.stats.Completed++
	}
	q.mu.Unlock()
	if firstErr != nil {
		mGWJobsFailed.Inc()
		q.logf("gateway: job %s (%s) failed after %v: %v", job.ID, job.Tenant, elapsed.Round(time.Millisecond), firstErr)
		job.emit(JobEvent{Kind: "failed", Err: firstErr.Error(),
			Done: nDone, Total: len(job.Cells)}, true)
	} else {
		mGWJobsCompleted.Inc()
		job.emit(JobEvent{Kind: "done", Done: len(job.Cells), Total: len(job.Cells)}, true)
	}
	close(job.done)
}

// cellResult satisfies one cell: join an identical in-flight execution
// if one exists (deduped), else serve from the cache (cached), else
// acquire tenant and global budget and execute. via reports which path
// won, for the job's progress events and the dedupe assertions in
// tests.
func (q *JobQueue) cellResult(cell harness.Cell, tenantSem chan struct{}) (res harness.CellResult, via string, err error) {
	id := cell.ID()
	q.mu.Lock()
	if f, ok := q.inflight[id]; ok {
		q.stats.CellsDeduped++
		q.mu.Unlock()
		mGWCellsDeduped.Inc()
		<-f.done
		return f.res, "deduped", f.err
	}
	f := &flight{done: make(chan struct{})}
	q.inflight[id] = f
	q.mu.Unlock()

	defer func() {
		f.res, f.err = res, err
		q.mu.Lock()
		delete(q.inflight, id)
		q.mu.Unlock()
		close(f.done)
	}()

	if q.cfg.Cache != nil {
		if hit, ok := q.cfg.Cache.Get(cell); ok {
			q.mu.Lock()
			q.stats.CellsCached++
			q.mu.Unlock()
			mGWCellsCached.Inc()
			return hit, "cached", nil
		}
	}

	// Tenant budget first, worker slot second: a tenant over budget
	// waits without occupying a slot another tenant could use.
	tenantSem <- struct{}{}
	defer func() { <-tenantSem }()
	q.global <- struct{}{}
	defer func() { <-q.global }()

	res, err = q.cfg.Exec(cell)
	if err != nil {
		return harness.CellResult{}, "", err
	}
	q.mu.Lock()
	q.stats.CellsExecuted++
	q.mu.Unlock()
	mGWCellsExecuted.Inc()
	if q.cfg.Cache != nil {
		if perr := q.cfg.Cache.Put(cell, res); perr != nil {
			q.logf("gateway: caching %s: %v", id, perr)
		}
	}
	return res, "executed", nil
}

func (q *JobQueue) logf(format string, args ...any) {
	if q.cfg.Log != nil {
		fmt.Fprintf(q.cfg.Log, format+"\n", args...)
	}
}
