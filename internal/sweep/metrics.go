package sweep

import "repro/internal/obs"

// Sweep observability: the coordinator's cell lifecycle
// (enqueue→assign→result, with requeue/timeout/respawn detours) and
// worker population, aggregated process-wide. Everything here is
// touched per cell or per worker event — never per simulated access —
// so the cost is invisible next to cell execution.
var (
	mCellsEnqueued = obs.GetCounter("cheetah_sweep_cells_enqueued_total",
		"Cells queued for worker execution (cache misses).")
	mCellsCached = obs.GetCounter("cheetah_sweep_cells_cached_total",
		"Cells satisfied from the on-disk result cache.")
	mCellsCompleted = obs.GetCounter("cheetah_sweep_cells_completed_total",
		"Cells completed by workers.")
	mCellsRequeued = obs.GetCounter("cheetah_sweep_cells_requeued_total",
		"Cell assignments requeued after a worker death or cell error.")
	mCellTimeouts = obs.GetCounter("cheetah_sweep_cell_timeouts_total",
		"Cell assignments abandoned for exceeding the cell timeout.")
	mCellsLateDropped = obs.GetCounter("cheetah_sweep_cells_late_dropped_total",
		"Stale replies (results or errors) dropped because a requeued copy already completed the cell.")
	mWorkersSpawned = obs.GetCounter("cheetah_sweep_workers_spawned_total",
		"Workers that completed the hello handshake.")
	mWorkersLost = obs.GetCounter("cheetah_sweep_workers_lost_total",
		"Workers retired by transport failure, protocol violation, or timeout.")
	mWorkersRespawned = obs.GetCounter("cheetah_sweep_workers_respawned_total",
		"Replacement local workers spawned after mid-sweep deaths.")
	mWorkersLive = obs.GetGauge("cheetah_sweep_workers_live",
		"Workers currently past their handshake and serving cells.")
	mQueueDepth = obs.GetGauge("cheetah_sweep_queue_depth",
		"Cells not yet finished in the running sweep.")
	mCellSeconds = obs.GetHistogram("cheetah_sweep_cell_seconds",
		"Wall-clock seconds per remote cell execution (assignment to reply).",
		obs.DurationBuckets)
)
