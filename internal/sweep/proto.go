// Package sweep shards harness experiment cells across OS processes. A
// coordinator enumerates the cells of a sweep, farms the uncached ones
// out to worker processes over a length-prefixed JSON wire protocol
// (stdin/stdout pipes for local subprocesses, TCP for remote shards),
// caches finished cells content-addressed on disk, and merges the
// results through harness.Runner.Preload into the exact rows and report
// text the in-process runner produces — byte-identical at any worker
// count, which the package's tests and a CI cmp step enforce.
package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/harness"
)

// ProtoVersion is exchanged in the hello message; coordinator and
// workers must agree exactly, since cell payloads are schema-less JSON.
const ProtoVersion = "cheetah-sweep/v1"

// MaxFrame bounds one wire frame (and one cache file). Real cell
// results are a few KB to a few MB; the bound exists so a corrupt
// length prefix cannot make the reader allocate unboundedly.
const MaxFrame = 64 << 20

// maxFrameDigits bounds the decimal length prefix; 8 digits cover
// MaxFrame with room to reject absurd prefixes before parsing them.
const maxFrameDigits = 8

// Message types.
const (
	// MsgHello is the first frame a worker sends: its protocol version.
	MsgHello = "hello"
	// MsgRun assigns one cell (coordinator -> worker).
	MsgRun = "run"
	// MsgResult returns a finished cell (worker -> coordinator).
	MsgResult = "result"
	// MsgError reports a cell-level failure (worker -> coordinator);
	// the worker stays alive and the coordinator decides whether to
	// retry elsewhere.
	MsgError = "error"
	// MsgShutdown asks a worker to exit cleanly.
	MsgShutdown = "shutdown"
)

// Message is one protocol frame. Which fields are set depends on Type.
type Message struct {
	Type string `json:"type"`
	// Proto carries the protocol version in hello messages.
	Proto string `json:"proto,omitempty"`
	// Seq pairs run frames with their result/error frames: workers echo
	// the sequence number of the run they are answering.
	Seq uint64 `json:"seq,omitempty"`
	// Cell is the assignment payload of run frames.
	Cell *harness.Cell `json:"cell,omitempty"`
	// Result is the payload of result frames.
	Result *harness.CellResult `json:"result,omitempty"`
	// Error is the diagnostic of error frames.
	Error string `json:"error,omitempty"`
}

// maxErrorLen bounds the diagnostic string of error frames.
const maxErrorLen = 1 << 14

// Validate checks the per-type required fields and delegates payload
// bounds to the harness validators. Every decoded frame passes through
// here — worker streams and cache files are external input.
func (m *Message) Validate() error {
	switch m.Type {
	case MsgHello:
		if m.Proto == "" || len(m.Proto) > 128 {
			return fmt.Errorf("sweep: hello with bad proto length %d", len(m.Proto))
		}
	case MsgRun:
		if m.Cell == nil {
			return fmt.Errorf("sweep: run frame without cell")
		}
		if err := m.Cell.Validate(); err != nil {
			return err
		}
	case MsgResult:
		if m.Result == nil {
			return fmt.Errorf("sweep: result frame without result")
		}
		if err := m.Result.Validate(); err != nil {
			return err
		}
	case MsgError:
		if m.Error == "" || len(m.Error) > maxErrorLen {
			return fmt.Errorf("sweep: error frame with bad diagnostic length %d", len(m.Error))
		}
	case MsgShutdown:
	default:
		return fmt.Errorf("sweep: unknown frame type %q", m.Type)
	}
	return nil
}

// WriteMessage frames m as a decimal byte-length line followed by the
// JSON payload and a trailing newline. The trailing newline is
// redundant for framing but keeps streams inspectable with line tools.
func WriteMessage(w io.Writer, m *Message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if len(b) > MaxFrame {
		return fmt.Errorf("sweep: frame of %d bytes exceeds limit %d", len(b), MaxFrame)
	}
	if _, err := fmt.Fprintf(w, "%d\n", len(b)); err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = w.Write([]byte{'\n'})
	return err
}

// ReadMessage reads and validates one frame. It returns io.EOF only on
// a clean boundary (no bytes read); any partial or malformed frame is a
// non-EOF error. The length prefix is bounded before any allocation.
func ReadMessage(br *bufio.Reader) (*Message, error) {
	n, err := readFrameLen(br)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, n+1) // +1 for the trailing newline
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("sweep: truncated frame: %w", err)
	}
	if payload[n] != '\n' {
		return nil, fmt.Errorf("sweep: frame missing trailing newline")
	}
	m := new(Message)
	dec := json.NewDecoder(bytes.NewReader(payload[:n]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(m); err != nil {
		return nil, fmt.Errorf("sweep: bad frame payload: %w", err)
	}
	// Trailing garbage after the JSON value also fails: one frame, one
	// value.
	if dec.More() {
		return nil, fmt.Errorf("sweep: trailing data in frame payload")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// readFrameLen parses the decimal length line, bounding digit count and
// value before anything is allocated.
func readFrameLen(br *bufio.Reader) (int, error) {
	var digits [maxFrameDigits]byte
	n := 0
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && n == 0 {
				return 0, io.EOF
			}
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, fmt.Errorf("sweep: truncated frame header: %w", err)
		}
		if b == '\n' {
			if n == 0 {
				return 0, fmt.Errorf("sweep: empty frame header")
			}
			break
		}
		if b < '0' || b > '9' {
			return 0, fmt.Errorf("sweep: bad byte %q in frame header", b)
		}
		if n >= len(digits) {
			return 0, fmt.Errorf("sweep: frame header exceeds %d digits", maxFrameDigits)
		}
		digits[n] = b
		n++
	}
	size := 0
	for _, d := range digits[:n] {
		size = size*10 + int(d-'0')
	}
	if size > MaxFrame {
		return 0, fmt.Errorf("sweep: frame of %d bytes exceeds limit %d", size, MaxFrame)
	}
	return size, nil
}
