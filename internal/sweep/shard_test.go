package sweep

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
	"repro/internal/trace"
)

// writeShardTrace writes a small synthetic multi-phase indexed trace
// and returns its trace:<path> workload name.
func writeShardTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "shard.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := trace.NewIndexedEncoder(f)
	err = trace.WriteSynthetic(enc, trace.SynthConfig{Accesses: 1 << 13, Threads: 4, Phases: 12})
	if err == nil {
		err = enc.Close()
	}
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		t.Fatal(err)
	}
	return "trace:" + path
}

// shardPlan plans the sharded replay of name and returns the plan plus
// its cells in sweep-submittable form.
func shardPlan(t *testing.T, name string, shards int) ([]harness.TraceShard, []harness.Cell) {
	t.Helper()
	plan, err := harness.TraceShardPlan(name, shards, harness.Config{Threads: 4, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]harness.Cell, len(plan))
	for i, sh := range plan {
		cells[i] = sh.Cell
	}
	return plan, cells
}

// TestPhaseShardedReplayMatchesLocal is the out-of-core tentpole's
// cross-process leg: one giant trace phase-sharded across 1, 2 and 4
// real worker processes must merge into a report byte-identical to the
// in-process local runner — and the single-shard merged report must
// embed exactly the bytes of a plain full replay of the whole trace,
// anchoring the sharded path to the unsharded one.
func TestPhaseShardedReplayMatchesLocal(t *testing.T) {
	name := writeShardTrace(t)
	plan, cells := shardPlan(t, name, 4)
	if len(plan) != 4 {
		t.Fatalf("planned %d shards, want 4", len(plan))
	}

	local, err := harness.RunShardsLocal(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.FormatShardedReplay(plan, local)
	if err != nil {
		t.Fatal(err)
	}

	procCounts := []int{1, 2, 4}
	if testing.Short() {
		procCounts = []int{2}
	}
	for _, procs := range procCounts {
		res, stats, err := RunCells(Config{Procs: procs, Spawn: spawnSelf(t)}, cells)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if stats.Executed != len(cells) {
			t.Errorf("procs=%d: stats %+v, want %d executed", procs, stats, len(cells))
		}
		got, err := harness.FormatShardedReplay(plan, res)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if got != want {
			t.Errorf("procs=%d: sharded replay diverges from local:\n%s", procs, firstDiff(want, got))
		}
	}

	// One shard covers every phase; its report must be the full replay's.
	plan1, _ := shardPlan(t, name, 1)
	if len(plan1) != 1 {
		t.Fatalf("planned %d shards, want 1", len(plan1))
	}
	one, err := harness.RunShardsLocal(plan1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fullCell := plan1[0].Cell
	fullCell.Workload = name
	full, err := harness.RunCell(fullCell)
	if err != nil {
		t.Fatal(err)
	}
	shardRes := one[plan1[0].Cell.ID()]
	if shardRes.Report.Format() != full.Report.Format() {
		t.Errorf("single-shard report differs from unsharded replay:\n%s",
			firstDiff(full.Report.Format(), shardRes.Report.Format()))
	}
}

// TestPhaseShardWorkerKillRequeues is the shard-level fault injection:
// a worker is killed mid-sweep while holding a phase shard, the
// coordinator requeues that shard on the surviving worker, and the
// merged report is still byte-identical to the local reference — a
// worker death must never surface as a changed (or missing) shard.
func TestPhaseShardWorkerKillRequeues(t *testing.T) {
	name := writeShardTrace(t)
	plan, cells := shardPlan(t, name, 4)

	local, err := harness.RunShardsLocal(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.FormatShardedReplay(plan, local)
	if err != nil {
		t.Fatal(err)
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := func(i int) (io.ReadWriteCloser, error) {
		if i == 0 {
			// Worker 0 serves one shard, then dies holding a second.
			return SpawnWorkerProc(exe, nil,
				[]string{workerEnv + "=die-after", dieAfterEnv + "=1"}, os.Stderr)
		}
		return SpawnWorkerProc(exe, nil, []string{workerEnv + "=serve"}, os.Stderr)
	}
	res, stats, err := RunCells(Config{Procs: 2, Spawn: spawn}, cells)
	if err != nil {
		t.Fatalf("sharded replay with dying worker: %v", err)
	}
	if stats.Retries == 0 {
		t.Error("no retries recorded; the dying worker should have lost an in-flight shard")
	}
	got, err := harness.FormatShardedReplay(plan, res)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("merged report after worker kill diverges:\n%s", firstDiff(want, got))
	}
}
