//go:build linux

package sweep

import (
	"io/fs"
	"syscall"
	"time"
)

// atimeOf extracts a file's access time from the stat record. Get hits
// mirror atime into mtime via Chtimes, so LRU ordering also holds on
// noatime mounts.
func atimeOf(fi fs.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}
