package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCacheRoundTrip: Put then Get must return the stored result
// exactly, and distinct cells must not alias.
func TestCacheRoundTrip(t *testing.T) {
	t.Parallel()
	cache, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	cell := sampleCell()
	res := sampleResult()
	if _, ok := cache.Get(cell); ok {
		t.Fatal("hit on empty cache")
	}
	if err := cache.Put(cell, res); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get(cell)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("cache changed the result:\nput %+v\ngot %+v", res, got)
	}
	other := cell
	other.Threads = 8
	if _, ok := cache.Get(other); ok {
		t.Error("different cell hit the same entry")
	}
}

// TestCacheCorruptEntryIsAMiss: damaged or foreign entries must read
// as misses (the cell re-runs), never as wrong results or crashes.
func TestCacheCorruptEntryIsAMiss(t *testing.T) {
	t.Parallel()
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cell := sampleCell()
	if err := cache.Put(cell, sampleResult()); err != nil {
		t.Fatal(err)
	}
	path := cache.path(CacheKey(cell))

	for name, data := range map[string][]byte{
		"truncated":    []byte(`{"schema":"cheetah-sweep-cache/v1","cell":`),
		"not json":     []byte("garbage"),
		"wrong schema": []byte(`{"schema":"other/v9","cell":"x","result":{"result":{}}}`),
	} {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := cache.Get(cell); ok {
			t.Errorf("%s entry returned a hit", name)
		}
	}

	// An intact entry under the wrong cell's key (a copied file) is a
	// miss too: the stored cell ID must match.
	other := cell
	other.Threads = 8
	if err := cache.Put(cell, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(cache.path(CacheKey(other))), 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(cache.path(CacheKey(cell)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.path(CacheKey(other)), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(other); ok {
		t.Error("entry copied under another cell's key returned a hit")
	}
}
