package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/harness"
)

// TestCacheRoundTrip: Put then Get must return the stored result
// exactly, and distinct cells must not alias.
func TestCacheRoundTrip(t *testing.T) {
	t.Parallel()
	cache, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	cell := sampleCell()
	res := sampleResult()
	if _, ok := cache.Get(cell); ok {
		t.Fatal("hit on empty cache")
	}
	if err := cache.Put(cell, res); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get(cell)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("cache changed the result:\nput %+v\ngot %+v", res, got)
	}
	other := cell
	other.Threads = 8
	if _, ok := cache.Get(other); ok {
		t.Error("different cell hit the same entry")
	}
}

// TestCacheCorruptEntryIsAMiss: damaged or foreign entries must read
// as misses (the cell re-runs), never as wrong results or crashes.
func TestCacheCorruptEntryIsAMiss(t *testing.T) {
	t.Parallel()
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cell := sampleCell()
	if err := cache.Put(cell, sampleResult()); err != nil {
		t.Fatal(err)
	}
	path := cache.path(CacheKey(cell))

	for name, data := range map[string][]byte{
		"truncated":    []byte(`{"schema":"cheetah-sweep-cache/v1","cell":`),
		"not json":     []byte("garbage"),
		"wrong schema": []byte(`{"schema":"other/v9","cell":"x","result":{"result":{}}}`),
	} {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := cache.Get(cell); ok {
			t.Errorf("%s entry returned a hit", name)
		}
	}

	// An intact entry under the wrong cell's key (a copied file) is a
	// miss too: the stored cell ID must match.
	other := cell
	other.Threads = 8
	if err := cache.Put(cell, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(cache.path(CacheKey(other))), 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(cache.path(CacheKey(cell)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.path(CacheKey(other)), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(other); ok {
		t.Error("entry copied under another cell's key returned a hit")
	}
}

// agedEntry stores a cell result and backdates the entry file, so
// eviction order is deterministic regardless of test speed.
func agedEntry(t *testing.T, c *Cache, cell harness.Cell, age time.Duration) string {
	t.Helper()
	if err := c.Put(cell, sampleResult()); err != nil {
		t.Fatal(err)
	}
	path := c.path(CacheKey(cell))
	old := time.Now().Add(-age)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	return path
}

// cellWithThreads varies a sample cell's identity.
func cellWithThreads(n int) harness.Cell {
	c := sampleCell()
	c.Threads = n
	return c
}

// TestCacheEvictsOldestOverCap: a size-capped cache sheds its
// least-recently-used entries from previous sweeps — and only those —
// when a Put takes it over budget.
func TestCacheEvictsOldestOverCap(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "cache")

	// A previous sweep leaves four entries with distinct ages.
	prev, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	var entrySize int64
	for i := 0; i < 4; i++ {
		p := agedEntry(t, prev, cellWithThreads(2+i), time.Duration(40-10*i)*time.Minute)
		paths = append(paths, p)
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		entrySize = fi.Size()
	}

	// A new sweep opens the same directory capped at about three
	// entries, reuses one old entry (a Get hit: now protected and
	// freshly touched), and stores one new cell.
	cur, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cur.SetMaxBytes(3*entrySize + entrySize/2)
	if _, ok := cur.Get(cellWithThreads(2)); !ok {
		t.Fatal("warm entry missed")
	}
	if err := cur.Put(cellWithThreads(100), sampleResult()); err != nil {
		t.Fatal(err)
	}

	// The two oldest unprotected leftovers (threads=3, threads=4) must
	// be gone; the hit entry, the youngest leftover and the new entry
	// survive.
	if _, err := os.Stat(paths[1]); !os.IsNotExist(err) {
		t.Error("oldest unprotected entry survived eviction")
	}
	if _, err := os.Stat(paths[2]); !os.IsNotExist(err) {
		t.Error("second-oldest unprotected entry survived eviction")
	}
	if _, ok := cur.Get(cellWithThreads(2)); !ok {
		t.Error("entry hit by the running sweep was evicted")
	}
	if _, ok := cur.Get(cellWithThreads(5)); !ok {
		t.Error("youngest old entry was evicted despite fitting the budget")
	}
	if _, ok := cur.Get(cellWithThreads(100)); !ok {
		t.Error("the running sweep's own entry was evicted")
	}
}

// TestCacheNeverEvictsRunningSweepEntries: entries written by the
// running sweep are exempt even when they alone exceed the cap — a
// sweep must never cannibalize its own resume state.
func TestCacheNeverEvictsRunningSweepEntries(t *testing.T) {
	t.Parallel()
	cache, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	cache.SetMaxBytes(1) // absurdly small: everything is over budget
	for i := 0; i < 3; i++ {
		if err := cache.Put(cellWithThreads(2+i), sampleResult()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, ok := cache.Get(cellWithThreads(2 + i)); !ok {
			t.Errorf("running sweep's entry %d was evicted", i)
		}
	}
}

// TestCacheHitRecencyOutlivesTheSweep: a Get hit bumps the entry's
// mtime, so its recency is visible to later sweeps — an old entry that
// was recently hit survives a later sweep's eviction while an untouched
// (and originally younger) peer is evicted. This is the property atime
// ordering silently lost on relatime mounts, where reads never update
// the timestamp the eviction scan sorted by.
func TestCacheHitRecencyOutlivesTheSweep(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "cache")

	// Two entries from an old sweep; the one we will hit is the OLDER
	// of the pair, so only the hit-time bump can save it.
	prev, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	hitPath := agedEntry(t, prev, cellWithThreads(2), time.Hour)
	untouchedPath := agedEntry(t, prev, cellWithThreads(3), 30*time.Minute)
	fi, err := os.Stat(hitPath)
	if err != nil {
		t.Fatal(err)
	}
	entrySize := fi.Size()

	// Sweep A hits the older entry and exits (a fresh Cache instance,
	// so no protected set survives into sweep B).
	mid, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mid.Get(cellWithThreads(2)); !ok {
		t.Fatal("warm entry missed")
	}

	// Sweep B stores one new cell under a two-and-a-half-entry budget,
	// forcing one of the leftovers out.
	cur, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cur.SetMaxBytes(2*entrySize + entrySize/2)
	if err := cur.Put(cellWithThreads(100), sampleResult()); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(hitPath); err != nil {
		t.Error("entry hit by the previous sweep was evicted despite its recency bump")
	}
	if _, err := os.Stat(untouchedPath); !os.IsNotExist(err) {
		t.Error("untouched entry survived eviction ahead of it")
	}
}

// TestCacheUncappedNeverEvicts: the default (no cap) keeps everything —
// the pre-eviction behaviour.
func TestCacheUncappedNeverEvicts(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "cache")
	prev, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	agedEntry(t, prev, cellWithThreads(2), time.Hour)
	cur, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Put(cellWithThreads(3), sampleResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get(cellWithThreads(2)); !ok {
		t.Error("uncapped cache evicted an old entry")
	}
}
