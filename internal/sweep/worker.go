package sweep

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os/exec"
	"sync"
	"time"

	"repro/internal/harness"
)

// Serve runs the worker side of the protocol over one transport: it
// announces itself with a hello frame, then executes run frames one at
// a time until a shutdown frame or EOF. Cell-level failures (unknown
// workload, missing trace file) are answered with error frames; the
// loop keeps serving. cmd/fsbench -worker calls this on stdin/stdout or
// a dialed TCP connection; process-level parallelism comes from the
// coordinator spawning several workers.
func Serve(r io.Reader, w io.Writer) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	if err := WriteMessage(bw, &Message{Type: MsgHello, Proto: ProtoVersion}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	for {
		m, err := ReadMessage(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch m.Type {
		case MsgShutdown:
			return nil
		case MsgRun:
			reply := &Message{Seq: m.Seq}
			if res, err := harness.RunCell(*m.Cell); err != nil {
				reply.Type = MsgError
				reply.Error = err.Error()
				if len(reply.Error) > maxErrorLen {
					reply.Error = reply.Error[:maxErrorLen]
				}
			} else {
				reply.Type = MsgResult
				reply.Result = &res
			}
			if err := WriteMessage(bw, reply); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sweep: worker received unexpected %q frame", m.Type)
		}
	}
}

// ServeTCP dials the coordinator at addr and serves the connection —
// the worker half of a cross-machine sweep.
func ServeTCP(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return Serve(conn, conn)
}

// procTransport is a worker subprocess seen as a transport: writes go
// to its stdin, reads come from its stdout, Close shuts stdin (the
// worker's EOF) and reaps the process, killing it if it lingers. Close
// is idempotent and safe to call concurrently — a coordinator abort and
// the worker goroutine's deferred Close can race, and exec.Cmd.Wait
// must only ever run once.
type procTransport struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	io.Reader

	closeOnce sync.Once
	closeErr  error
}

func (p *procTransport) Write(b []byte) (int, error) { return p.stdin.Write(b) }

func (p *procTransport) Close() error {
	p.closeOnce.Do(func() {
		p.stdin.Close()
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case p.closeErr = <-done:
		case <-time.After(5 * time.Second):
			p.cmd.Process.Kill()
			p.closeErr = <-done
		}
	})
	return p.closeErr
}

// SpawnWorkerProc starts `name args...` as a worker subprocess and
// returns its stdin/stdout as a transport. extraEnv entries are
// appended to the inherited environment; stderr passes through to the
// given writer so worker diagnostics surface on the coordinator.
func SpawnWorkerProc(name string, args, extraEnv []string, stderr io.Writer) (io.ReadWriteCloser, error) {
	cmd := exec.Command(name, args...)
	cmd.Stderr = stderr
	if len(extraEnv) > 0 {
		cmd.Env = append(cmd.Environ(), extraEnv...)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &procTransport{cmd: cmd, stdin: stdin, Reader: stdout}, nil
}
