package sweep

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// fakeCell builds a syntactically valid cell for tests that drive the
// coordinator's event loop directly and never execute anything.
func fakeCell(name string) harness.Cell {
	return harness.Cell{Kind: harness.KindNative, Workload: name, Threads: 1, Cores: 1, Scale: 1}
}

// pipeWorker spawns an in-process worker over a net.Pipe — the real
// wire protocol without subprocess or TCP overhead.
func pipeWorker(int) (io.ReadWriteCloser, error) {
	coordSide, workerSide := net.Pipe()
	go Serve(workerSide, workerSide)
	return coordSide, nil
}

// TestLateRepliesForCompletedCellsDropped is the timeout-race fault
// injection, at the event level: a worker times out holding cell X, X
// is requeued and completes elsewhere, and then the original worker's
// straggling replies (an error, then a duplicate result) finally
// arrive. The coordinator must drop both without touching the retry or
// execution accounting — before the guard, the stale error re-ran X
// and could burn it through MaxAttempts.
func TestLateRepliesForCompletedCellsDropped(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var logBuf strings.Builder
	cellX, cellY := fakeCell("x"), fakeCell("y")
	pending := []harness.Cell{cellX, cellY}
	co := &coordinator{
		cfg:    Config{Listener: ln, MaxAttempts: 3, Log: &logBuf},
		queue:  make(chan harness.Cell, len(pending)),
		events: make(chan event),
		done:   make(chan struct{}),
	}
	results := make(map[string]harness.CellResult)
	var stats Stats
	stats.Cells = len(pending)

	go func() {
		co.events <- event{kind: evUp}
		co.events <- event{kind: evResult, cell: cellX, res: harness.CellResult{}}
		// The straggler: a late cell error for already-completed X, then
		// a late duplicate result for X.
		co.events <- event{kind: evCellError, cell: cellX, errText: "stale failure from timed-out worker"}
		co.events <- event{kind: evResult, cell: cellX, res: harness.CellResult{}}
		co.events <- event{kind: evResult, cell: cellY, res: harness.CellResult{}}
	}()

	errc := make(chan error, 1)
	go func() { errc <- co.execute(pending, results, &stats) }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("execute hung on late replies")
	}

	if stats.Executed != 2 {
		t.Errorf("Executed = %d, want 2 (late duplicate must not double-count)", stats.Executed)
	}
	if stats.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (stale cell error must not requeue)", stats.Retries)
	}
	if len(results) != 2 {
		t.Errorf("got %d results, want 2", len(results))
	}

	// Completion must also have closed the listener: no worker can be
	// accepted into a finished sweep.
	if conn, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		conn.Close()
		t.Error("listener still accepting after the sweep completed")
	}
	// And the accept loop's normal exit (net.ErrClosed) must not log.
	if log := logBuf.String(); strings.Contains(log, "accept") {
		t.Errorf("listener close logged a spurious accept error:\n%s", log)
	}
}

// TestRunCellsDuplicateCellsNoHang: a cell list containing the same
// cell twice must complete and yield one result per distinct ID.
// Before deduplication the completion counter included the duplicate,
// but only one copy could ever finish — the sweep hung forever.
func TestRunCellsDuplicateCellsNoHang(t *testing.T) {
	t.Parallel()
	cells := harness.EnumerateCells(testConfig(t))[:3]
	withDup := append([]harness.Cell{cells[0]}, cells...)

	type out struct {
		results map[string]harness.CellResult
		stats   Stats
		err     error
	}
	done := make(chan out, 1)
	go func() {
		results, stats, err := RunCells(Config{Procs: 1, Spawn: pipeWorker}, withDup)
		done <- out{results, stats, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("RunCells with duplicate cells: %v", o.err)
		}
		if o.stats.Cells != 3 {
			t.Errorf("stats.Cells = %d, want 3 distinct", o.stats.Cells)
		}
		if len(o.results) != 3 {
			t.Errorf("got %d results, want 3", len(o.results))
		}
		for _, c := range cells {
			if _, ok := o.results[c.ID()]; !ok {
				t.Errorf("no result for cell %s", c.ID())
			}
		}
	case <-time.After(120 * time.Second):
		t.Fatal("RunCells hung on a duplicated cell")
	}
}
