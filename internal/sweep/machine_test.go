package sweep

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
)

// TestMachinePresetShardedMatchesSerial extends the cross-config
// determinism suite along the machine axis: for every non-default
// preset, the sweep sharded across 2 real worker processes must merge
// into byte-identical report tables and the exact metrics map of the
// serial in-process run under the same model. This is also the wire
// test for the cell's machine dimension — if workers dropped or
// mangled the Machine field they would simulate the default model and
// diverge from the serial run wherever the preset changes results.
func TestMachinePresetShardedMatchesSerial(t *testing.T) {
	base := testConfig(t)
	for _, name := range machine.Names() {
		if name == machine.DefaultName {
			continue // the canonical model is TestShardedSweepMatchesSerial's job
		}
		t.Run(name, func(t *testing.T) {
			c := base
			c.Machine = name
			serialCfg := c
			serialCfg.Workers = 1
			serial := harness.RunAll(serialCfg)
			serialText := serial.Format()

			res, stats, err := Run(Config{Harness: c, Procs: 2, Spawn: spawnSelf(t)})
			if err != nil {
				t.Fatalf("sharded sweep under %s: %v", name, err)
			}
			if stats.Executed != stats.Cells || stats.Cached != 0 {
				t.Errorf("stats = %+v, want all %d cells executed", stats, stats.Cells)
			}
			if got := res.Format(); got != serialText {
				t.Errorf("sharded report under %s diverges from serial:\n%s",
					name, firstDiff(serialText, got))
			}
			if got, want := res.Metrics(), serial.Metrics(); !reflect.DeepEqual(got, want) {
				t.Errorf("metrics under %s diverge:\nserial:  %v\nsharded: %v", name, want, got)
			}
		})
	}
}

// TestMachinePresetChangesCellIdentity pins the identity convention:
// the canonical preset (spelled out or empty) leaves cell IDs exactly
// as they were before the machine dimension existed, and every
// non-default preset yields a distinct ID — so sweep caches can never
// serve one model's result for another's cell.
func TestMachinePresetChangesCellIdentity(t *testing.T) {
	cell := harness.Cell{
		Kind: harness.KindProfiled, Workload: "figure1",
		Threads: 4, Cores: 48, Scale: 0.05, PMU: harness.DetectionPMU(),
	}
	ids := map[string]string{"": cell.ID()}
	canonical := cell
	canonical.Machine = machine.DefaultName
	if got := canonical.ID(); got != cell.ID() {
		t.Errorf("explicit %s cell ID %q differs from implicit default %q",
			machine.DefaultName, got, cell.ID())
	}
	for _, name := range machine.Names() {
		if name == machine.DefaultName {
			continue
		}
		c := cell
		c.Machine = name
		id := c.ID()
		for other, seen := range ids {
			if id == seen {
				t.Errorf("preset %s shares cell ID %q with %q", name, id, other)
			}
		}
		ids[name] = id
	}
}

// TestMachinePresetRoundTripsTheWire pins the worker protocol: a cell
// with a machine preset serializes, executes in a worker process and
// comes back with the result the local runner produces for the same
// cell.
func TestMachinePresetRoundTripsTheWire(t *testing.T) {
	cell := harness.Cell{
		Kind: harness.KindProfiled, Workload: "figure1",
		Threads: 2, Cores: 48, Scale: 0.02, PMU: harness.DetectionPMU(),
		Machine: "line128",
	}
	local, err := harness.RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := RunCells(Config{Procs: 1, Spawn: spawnSelf(t)}, []harness.Cell{cell})
	if err != nil {
		t.Fatal(err)
	}
	remote, ok := results[cell.ID()]
	if !ok {
		t.Fatalf("no result for %s in %v", cell.ID(), results)
	}
	lr := harness.RenderDetectionReport(local.Report, local.Result, true, true)
	rr := harness.RenderDetectionReport(remote.Report, remote.Result, true, true)
	if lr != rr {
		t.Errorf("worker-process report diverges from local run:\n%s", firstDiff(lr, rr))
	}
	if fmt.Sprintf("%+v", local.Result) != fmt.Sprintf("%+v", remote.Result) {
		t.Errorf("results diverge:\nlocal:  %+v\nremote: %+v", local.Result, remote.Result)
	}
}
