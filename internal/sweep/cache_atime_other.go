//go:build !linux

package sweep

import (
	"io/fs"
	"time"
)

// atimeOf falls back to the modification time where the stat access
// time is not portably reachable; Get hits touch both via Chtimes, so
// recency ordering still holds.
func atimeOf(fi fs.FileInfo) time.Time { return fi.ModTime() }
