package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/harness"
)

// CacheSchema versions the on-disk entry layout; it is folded into every
// content hash, so a format change orphans old entries instead of
// misreading them. v2 entries carry the engine result on rule cells too
// (the sweep's access accounting sums it), where v1 stored rule cells
// without one.
const CacheSchema = "cheetah-sweep-cache/v2"

// Cache is an on-disk store of finished cell results, content-addressed
// by the hash of the cache schema and the cell's canonical ID. Re-sweeps
// and resumed crashed sweeps look cells up before scheduling them, so
// already-finished work is never re-run.
//
// A cache may be size-capped with SetMaxBytes: when the stored entries
// exceed the cap, the least-recently-used ones are evicted — except
// entries this Cache instance wrote or served, which belong to the
// running sweep and are never evicted, even over budget. Recency is
// tracked by modification time, which Get bumps explicitly on every hit:
// access times are untrustworthy for LRU, since relatime and noatime
// mounts leave them stale.
type Cache struct {
	dir      string
	maxBytes int64

	mu sync.Mutex
	// protected holds the entry paths the running sweep touched (Put or
	// Get hit): its working set, exempt from eviction.
	protected map[string]bool
	// size estimates the stored bytes (lazily initialized by a walk);
	// eviction recounts authoritatively, this only schedules it.
	size  int64
	sized bool
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening cache: %w", err)
	}
	return &Cache{dir: dir, protected: make(map[string]bool)}, nil
}

// SetMaxBytes caps the cache's on-disk size; 0 (the default) means
// unbounded. The cap is enforced after each Put.
func (c *Cache) SetMaxBytes(n int64) {
	c.mu.Lock()
	c.maxBytes = n
	c.mu.Unlock()
}

// CacheKey returns the content hash addressing a cell's entry.
func CacheKey(c harness.Cell) string {
	h := sha256.Sum256([]byte(CacheSchema + "\n" + c.ID()))
	return hex.EncodeToString(h[:])
}

// path shards entries over 256 subdirectories by hash prefix, keeping
// directories small on paper-scale sweeps.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// cacheEntry is the stored form: the cell's ID is kept alongside the
// result so a hash collision or a file copied to the wrong name reads
// as a miss, never as a wrong result.
type cacheEntry struct {
	Schema string             `json:"schema"`
	Cell   string             `json:"cell"`
	Result harness.CellResult `json:"result"`
}

// Get returns the cached result for cell, if present and intact.
// Corrupt, oversized, mismatched or unvalidatable entries are treated
// as misses: the cell simply re-runs.
func (c *Cache) Get(cell harness.Cell) (harness.CellResult, bool) {
	path := c.path(CacheKey(cell))
	// Bound before reading: a corrupt multi-gigabyte file must read as
	// a miss, not as an allocation.
	if fi, err := os.Stat(path); err != nil || fi.Size() > MaxFrame {
		return harness.CellResult{}, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return harness.CellResult{}, false
	}
	res, err := decodeCacheEntry(data, cell.ID())
	if err != nil {
		return harness.CellResult{}, false
	}
	// A hit joins the running sweep's working set: bump the entry's
	// mtime (the eviction scan's recency key — atime would be a no-op
	// under relatime/noatime mounts) and protect it from eviction for
	// this sweep's lifetime.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	c.mu.Lock()
	c.protected[path] = true
	c.mu.Unlock()
	return res, true
}

// decodeCacheEntry parses and bounds a stored entry, requiring it to
// describe wantID. Split out so the fuzz target can drive it directly.
func decodeCacheEntry(data []byte, wantID string) (harness.CellResult, error) {
	if len(data) > MaxFrame {
		return harness.CellResult{}, fmt.Errorf("sweep: cache entry of %d bytes exceeds limit %d",
			len(data), MaxFrame)
	}
	var e cacheEntry
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return harness.CellResult{}, fmt.Errorf("sweep: bad cache entry: %w", err)
	}
	if dec.More() {
		return harness.CellResult{}, fmt.Errorf("sweep: trailing data in cache entry")
	}
	if e.Schema != CacheSchema {
		return harness.CellResult{}, fmt.Errorf("sweep: cache entry schema %q, want %q", e.Schema, CacheSchema)
	}
	if e.Cell != wantID {
		return harness.CellResult{}, fmt.Errorf("sweep: cache entry is for cell %q, want %q", e.Cell, wantID)
	}
	if err := e.Result.Validate(); err != nil {
		return harness.CellResult{}, err
	}
	return e.Result, nil
}

// Put stores a finished cell atomically (temp file + rename), so a
// crashed sweep can never leave a truncated entry for the next resume
// to trip over.
func (c *Cache) Put(cell harness.Cell, res harness.CellResult) error {
	b, err := json.Marshal(cacheEntry{Schema: CacheSchema, Cell: cell.ID(), Result: res})
	if err != nil {
		return err
	}
	path := c.path(CacheKey(cell))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := atomicfile.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	c.mu.Lock()
	c.protected[path] = true
	if c.sized {
		c.size += int64(len(b))
	}
	c.mu.Unlock()
	c.evictOverBudget()
	return nil
}

// cacheEntryInfo is one stored file as seen by the eviction scan.
type cacheEntryInfo struct {
	path string
	size int64
	// used is the entry's mtime: set by Put, bumped by Get on every hit.
	used time.Time
}

// evictOverBudget enforces the size cap: when the stored entries exceed
// it, unprotected entries are removed least-recently-used-first until
// the cache fits (or only the running sweep's own entries remain, which may
// legitimately exceed the cap and are never evicted). Failures are
// ignored — eviction is hygiene, not correctness; a file that will not
// die today dies on a later sweep.
func (c *Cache) evictOverBudget() {
	c.mu.Lock()
	limit := c.maxBytes
	if limit <= 0 || (c.sized && c.size <= limit) {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	entries, total := c.scan()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.size, c.sized = total, true
	if total <= limit {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].used.Equal(entries[j].used) {
			return entries[i].used.Before(entries[j].used)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		if c.size <= limit {
			break
		}
		if c.protected[e.path] {
			continue
		}
		if os.Remove(e.path) == nil {
			c.size -= e.size
		}
	}
}

// scan walks the cache directory, returning every stored entry with its
// last-used time and the total stored size. Temp files mid-write are not
// entries and are skipped.
func (c *Cache) scan() ([]cacheEntryInfo, int64) {
	var (
		entries []cacheEntryInfo
		total   int64
	)
	_ = filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".json") || strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		total += fi.Size()
		entries = append(entries, cacheEntryInfo{path: path, size: fi.Size(), used: fi.ModTime()})
		return nil
	})
	return entries, total
}
