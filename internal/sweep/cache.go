package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/harness"
)

// CacheSchema versions the on-disk entry layout; it is folded into every
// content hash, so a format change orphans old entries instead of
// misreading them.
const CacheSchema = "cheetah-sweep-cache/v1"

// Cache is an on-disk store of finished cell results, content-addressed
// by the hash of the cache schema and the cell's canonical ID. Re-sweeps
// and resumed crashed sweeps look cells up before scheduling them, so
// already-finished work is never re-run.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// CacheKey returns the content hash addressing a cell's entry.
func CacheKey(c harness.Cell) string {
	h := sha256.Sum256([]byte(CacheSchema + "\n" + c.ID()))
	return hex.EncodeToString(h[:])
}

// path shards entries over 256 subdirectories by hash prefix, keeping
// directories small on paper-scale sweeps.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// cacheEntry is the stored form: the cell's ID is kept alongside the
// result so a hash collision or a file copied to the wrong name reads
// as a miss, never as a wrong result.
type cacheEntry struct {
	Schema string             `json:"schema"`
	Cell   string             `json:"cell"`
	Result harness.CellResult `json:"result"`
}

// Get returns the cached result for cell, if present and intact.
// Corrupt, oversized, mismatched or unvalidatable entries are treated
// as misses: the cell simply re-runs.
func (c *Cache) Get(cell harness.Cell) (harness.CellResult, bool) {
	path := c.path(CacheKey(cell))
	// Bound before reading: a corrupt multi-gigabyte file must read as
	// a miss, not as an allocation.
	if fi, err := os.Stat(path); err != nil || fi.Size() > MaxFrame {
		return harness.CellResult{}, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return harness.CellResult{}, false
	}
	res, err := decodeCacheEntry(data, cell.ID())
	if err != nil {
		return harness.CellResult{}, false
	}
	return res, true
}

// decodeCacheEntry parses and bounds a stored entry, requiring it to
// describe wantID. Split out so the fuzz target can drive it directly.
func decodeCacheEntry(data []byte, wantID string) (harness.CellResult, error) {
	if len(data) > MaxFrame {
		return harness.CellResult{}, fmt.Errorf("sweep: cache entry of %d bytes exceeds limit %d",
			len(data), MaxFrame)
	}
	var e cacheEntry
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return harness.CellResult{}, fmt.Errorf("sweep: bad cache entry: %w", err)
	}
	if dec.More() {
		return harness.CellResult{}, fmt.Errorf("sweep: trailing data in cache entry")
	}
	if e.Schema != CacheSchema {
		return harness.CellResult{}, fmt.Errorf("sweep: cache entry schema %q, want %q", e.Schema, CacheSchema)
	}
	if e.Cell != wantID {
		return harness.CellResult{}, fmt.Errorf("sweep: cache entry is for cell %q, want %q", e.Cell, wantID)
	}
	if err := e.Result.Validate(); err != nil {
		return harness.CellResult{}, err
	}
	return e.Result, nil
}

// Put stores a finished cell atomically (temp file + rename), so a
// crashed sweep can never leave a truncated entry for the next resume
// to trip over.
func (c *Cache) Put(cell harness.Cell, res harness.CellResult) error {
	b, err := json.Marshal(cacheEntry{Schema: CacheSchema, Cell: cell.ID(), Result: res})
	if err != nil {
		return err
	}
	path := c.path(CacheKey(cell))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
