package sweep

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
)

// countingExec builds a stub executor that counts executions per cell
// ID and can be gated to force concurrent submissions to overlap.
type countingExec struct {
	mu    sync.Mutex
	runs  map[string]int
	gate  chan struct{} // nil = run immediately
	total atomic.Int64
}

func (e *countingExec) exec(c harness.Cell) (harness.CellResult, error) {
	if e.gate != nil {
		<-e.gate
	}
	e.mu.Lock()
	if e.runs == nil {
		e.runs = make(map[string]int)
	}
	e.runs[c.ID()]++
	e.mu.Unlock()
	e.total.Add(1)
	return harness.CellResult{}, nil
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s never finished", j.ID)
	}
}

// TestJobQueueDedupesConcurrentIdenticalJobs: N jobs for the same cell
// submitted while the first is still executing must collapse to ONE
// execution, with every job completing successfully — the gateway's
// cache-hit dedupe invariant at the queue layer.
func TestJobQueueDedupesConcurrentIdenticalJobs(t *testing.T) {
	t.Parallel()
	var total atomic.Int64
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	exec := func(c harness.Cell) (harness.CellResult, error) {
		entered <- struct{}{}
		<-gate
		total.Add(1)
		return harness.CellResult{}, nil
	}
	q := NewJobQueue(QueueConfig{Workers: 8, Exec: exec})

	const n = 20
	jobs := make([]*Job, n)
	for i := range jobs {
		j, err := q.Submit(JobSpec{Tenant: fmt.Sprintf("t%d", i%4), Cells: []harness.Cell{fakeCell("same")}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	// One job is executing (blocked on the gate, holding the flight);
	// wait for the other n-1 to join that flight so the overlap the
	// test asserts on is guaranteed, not racy.
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("no execution ever started")
	}
	deadline := time.After(30 * time.Second)
	for q.Stats().CellsDeduped != n-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d jobs joined the in-flight execution, want %d", q.Stats().CellsDeduped, n-1)
		case <-time.After(time.Millisecond):
		}
	}
	close(gate)
	for _, j := range jobs {
		waitJob(t, j)
		if j.State() != JobDone {
			t.Fatalf("job %s state = %s, err = %v", j.ID, j.State(), j.Err())
		}
	}
	if got := total.Load(); got != 1 {
		t.Errorf("executed %d times, want 1 (identical concurrent jobs must dedupe)", got)
	}
	s := q.Stats()
	if s.CellsExecuted != 1 || s.CellsDeduped != n-1 {
		t.Errorf("stats = %+v, want 1 executed and %d deduped", s, n-1)
	}
	if s.QueuedCells != 0 {
		t.Errorf("queue depth %d after all jobs finished, want 0", s.QueuedCells)
	}
}

// TestJobQueueTenantBudget: a tenant's cells never execute more than
// TenantBudget at once, even with free worker slots, and a budgeted
// tenant cannot starve another tenant's job.
func TestJobQueueTenantBudget(t *testing.T) {
	t.Parallel()
	const budget = 2
	var (
		mu       sync.Mutex
		cur, max int
	)
	block := make(chan struct{})
	exec := func(c harness.Cell) (harness.CellResult, error) {
		mu.Lock()
		cur++
		if cur > max {
			max = cur
		}
		mu.Unlock()
		<-block
		mu.Lock()
		cur--
		mu.Unlock()
		return harness.CellResult{}, nil
	}
	q := NewJobQueue(QueueConfig{Workers: 16, TenantBudget: budget, Exec: exec})

	// One tenant, 8 distinct cells: at most `budget` execute at once.
	cells := make([]harness.Cell, 8)
	for i := range cells {
		cells[i] = fakeCell(fmt.Sprintf("hog-%d", i))
	}
	hog, err := q.Submit(JobSpec{Tenant: "hog", Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	// A second tenant gets its own budget: its cell must start even
	// while the hog is saturated.
	other, err := q.Submit(JobSpec{Tenant: "other", Cells: []harness.Cell{fakeCell("other-cell")}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until budget+1 executions are in flight (hog at budget, other
	// running) to prove concurrency is per-tenant, then release.
	deadline := time.After(30 * time.Second)
	for {
		mu.Lock()
		n := cur
		mu.Unlock()
		if n >= budget+1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("never reached %d concurrent executions (stuck at %d)", budget+1, n)
		case <-time.After(time.Millisecond):
		}
	}
	close(block)
	waitJob(t, hog)
	waitJob(t, other)
	if max > budget+1 {
		t.Errorf("max concurrency %d, want <= %d (hog budget %d + other 1)", max, budget+1, budget)
	}
}

// TestJobQueueBoundedAdmission: submissions beyond MaxQueuedCells fail
// fast with ErrQueueFull, and capacity frees up as cells finish.
func TestJobQueueBoundedAdmission(t *testing.T) {
	t.Parallel()
	block := make(chan struct{})
	exec := func(c harness.Cell) (harness.CellResult, error) {
		<-block
		return harness.CellResult{}, nil
	}
	q := NewJobQueue(QueueConfig{Workers: 1, MaxQueuedCells: 2, Exec: exec})

	j1, err := q.Submit(JobSpec{Cells: []harness.Cell{fakeCell("a"), fakeCell("b")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(JobSpec{Cells: []harness.Cell{fakeCell("c")}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound submit: err = %v, want ErrQueueFull", err)
	}
	if s := q.Stats(); s.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", s.Rejected)
	}
	close(block)
	waitJob(t, j1)
	if _, err := q.Submit(JobSpec{Cells: []harness.Cell{fakeCell("c")}}); err != nil {
		t.Fatalf("submit after capacity freed: %v", err)
	}
}

// TestJobQueueCacheServesLaterJob: a job finished and cached means an
// identical job submitted later (no in-flight overlap) is served from
// disk with zero executions.
func TestJobQueueCacheServesLaterJob(t *testing.T) {
	t.Parallel()
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ex := &countingExec{}
	q := NewJobQueue(QueueConfig{Workers: 2, Cache: cache, Exec: ex.exec})

	first, err := q.Submit(JobSpec{Cells: []harness.Cell{fakeCell("x")}})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, first)
	second, err := q.Submit(JobSpec{Cells: []harness.Cell{fakeCell("x")}})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, second)
	if got := ex.total.Load(); got != 1 {
		t.Errorf("executed %d times, want 1 (second job must hit the cache)", got)
	}
	if s := q.Stats(); s.CellsCached != 1 {
		t.Errorf("CellsCached = %d, want 1", s.CellsCached)
	}
}

// TestJobQueueShutdown: Shutdown drains running jobs and rejects new
// submissions.
func TestJobQueueShutdown(t *testing.T) {
	t.Parallel()
	ex := &countingExec{}
	q := NewJobQueue(QueueConfig{Workers: 2, Exec: ex.exec})
	j, err := q.Submit(JobSpec{Cells: []harness.Cell{fakeCell("x")}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-j.Done():
	default:
		t.Error("Shutdown returned with the job unfinished")
	}
	if _, err := q.Submit(JobSpec{Cells: []harness.Cell{fakeCell("y")}}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after Shutdown: err = %v, want ErrShuttingDown", err)
	}
}

// TestJobEventsStream: a subscriber sees the full queued → running →
// cell-done → done sequence, and a late subscriber gets it all as the
// snapshot.
func TestJobEventsStream(t *testing.T) {
	t.Parallel()
	ex := &countingExec{gate: make(chan struct{})}
	q := NewJobQueue(QueueConfig{Workers: 1, Exec: ex.exec})
	j, err := q.Submit(JobSpec{Cells: []harness.Cell{fakeCell("x")}})
	if err != nil {
		t.Fatal(err)
	}
	past, live, cancel := j.Subscribe()
	defer cancel()
	close(ex.gate)
	waitJob(t, j)

	kinds := make([]string, 0, 4)
	for _, ev := range past {
		kinds = append(kinds, ev.Kind)
	}
	for ev := range live {
		kinds = append(kinds, ev.Kind)
	}
	want := []string{"queued", "running", "cell-done", "done"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("event kinds = %v, want %v", kinds, want)
	}

	latePast, lateLive, lateCancel := j.Subscribe()
	defer lateCancel()
	if len(latePast) != 4 {
		t.Errorf("late subscriber snapshot has %d events, want 4", len(latePast))
	}
	if _, open := <-lateLive; open {
		t.Error("late subscriber's live channel not closed on a finished job")
	}
}

// TestProcPoolExecMatchesLocal: a cell executed through the pool's wire
// protocol returns the same payload as local execution, and a worker
// crash mid-assignment is healed by respawn-and-retry.
func TestProcPoolExecMatchesLocal(t *testing.T) {
	t.Parallel()
	cell := harness.EnumerateCells(testConfig(t))[0]
	local, err := harness.RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}

	pool, err := NewProcPool(2, func(int) (io.ReadWriteCloser, error) { return pipeWorker(0) })
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	got, err := pool.Exec(cell)
	if err != nil {
		t.Fatalf("pool exec: %v", err)
	}
	if fmt.Sprint(got.Result) != fmt.Sprint(local.Result) {
		t.Error("pool-executed result diverges from local execution")
	}

	// Crash injection: the first worker dies on its first assignment;
	// the pool must respawn and serve the cell on the replacement.
	spawned := 0
	crashPool, err := NewProcPool(1, func(int) (io.ReadWriteCloser, error) {
		spawned++
		if spawned == 1 {
			coord, worker := net.Pipe()
			go func() {
				br := bufio.NewReader(worker)
				bw := bufio.NewWriter(worker)
				if err := WriteMessage(bw, &Message{Type: MsgHello, Proto: ProtoVersion}); err != nil {
					return
				}
				bw.Flush()
				// Read the assignment, then drop dead without replying.
				ReadMessage(br)
				worker.Close()
			}()
			return coord, nil
		}
		return pipeWorker(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer crashPool.Close()
	if _, err := crashPool.Exec(cell); err != nil {
		t.Fatalf("pool exec across worker crash: %v", err)
	}
	if spawned != 2 {
		t.Errorf("spawned %d workers, want 2 (original + replacement)", spawned)
	}
}
