package sweep

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"repro/internal/harness"
)

// ProcPool executes cells on a fixed set of persistent worker
// transports speaking the sweep wire protocol — typically subprocesses
// via SpawnWorkerProc, so a daemon's simulations run outside its own
// heap and a crashed cell kills a worker, not the service. Its Exec
// method plugs straight into QueueConfig.Exec. Unlike the coordinator,
// which owns a sweep's whole lifecycle, the pool is a passive executor:
// callers bring their own retry and accounting policy (the JobQueue's).
type ProcPool struct {
	spawn func(i int) (io.ReadWriteCloser, error)

	// free holds idle workers; it is never closed (in-flight Execs
	// return workers to it at any time). done signals Close to waiters.
	free chan *poolWorker
	done chan struct{}

	mu       sync.Mutex
	closed   bool
	nspawned int
	workers  map[*poolWorker]bool
}

// poolWorker is one live transport plus its buffered framing state.
type poolWorker struct {
	t   io.ReadWriteCloser
	br  *bufio.Reader
	bw  *bufio.Writer
	seq uint64
}

// NewProcPool spawns n workers and verifies each one's hello
// handshake. Failure to bring up any worker fails construction; a pool
// that starts degraded would silently serve with less parallelism than
// the operator asked for.
func NewProcPool(n int, spawn func(i int) (io.ReadWriteCloser, error)) (*ProcPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sweep: pool needs at least one worker")
	}
	p := &ProcPool{
		spawn:   spawn,
		free:    make(chan *poolWorker, n+1),
		done:    make(chan struct{}),
		workers: map[*poolWorker]bool{},
	}
	for i := 0; i < n; i++ {
		w, err := p.spawnWorker()
		if err != nil {
			p.Close()
			return nil, err
		}
		p.free <- w
	}
	return p, nil
}

// spawnWorker brings up one worker through its handshake.
func (p *ProcPool) spawnWorker() (*poolWorker, error) {
	p.mu.Lock()
	i := p.nspawned
	p.nspawned++
	p.mu.Unlock()
	t, err := p.spawn(i)
	if err != nil {
		return nil, fmt.Errorf("sweep: spawning pool worker %d: %w", i, err)
	}
	w := &poolWorker{t: t, br: bufio.NewReader(t), bw: bufio.NewWriter(t)}
	hello, err := ReadMessage(w.br)
	if err != nil {
		t.Close()
		return nil, fmt.Errorf("sweep: pool worker %d handshake: %w", i, err)
	}
	if hello.Type != MsgHello || hello.Proto != ProtoVersion {
		t.Close()
		return nil, fmt.Errorf("sweep: pool worker %d handshake: got %q proto %q, want %q",
			i, hello.Type, hello.Proto, ProtoVersion)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		t.Close()
		return nil, fmt.Errorf("sweep: pool closed")
	}
	p.workers[w] = true
	p.mu.Unlock()
	return w, nil
}

// retire removes a dead worker and closes its transport.
func (p *ProcPool) retire(w *poolWorker) {
	p.mu.Lock()
	delete(p.workers, w)
	p.mu.Unlock()
	w.t.Close()
}

// Exec runs one cell on the next free worker. A transport failure
// retires the worker, spawns a replacement, and retries the cell once
// on it — one worker crash costs one retry, not a failed job. A
// cell-level MsgError comes back as an error with the worker intact.
func (p *ProcPool) Exec(cell harness.Cell) (harness.CellResult, error) {
	for attempt := 0; ; attempt++ {
		var w *poolWorker
		select {
		case w = <-p.free:
		case <-p.done:
			return harness.CellResult{}, fmt.Errorf("sweep: pool closed")
		}
		res, err, dead := p.execOn(w, cell)
		if !dead {
			p.release(w)
			return res, err
		}
		p.retire(w)
		replacement, serr := p.spawnWorker()
		if serr == nil {
			p.release(replacement)
		}
		if attempt > 0 || serr != nil {
			if serr != nil {
				err = fmt.Errorf("%w (and respawning its worker failed: %v)", err, serr)
			}
			return harness.CellResult{}, err
		}
	}
}

// release returns a worker to the idle set — or shuts it down if the
// pool closed while the worker was out serving a cell.
func (p *ProcPool) release(w *poolWorker) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		p.shutdownWorker(w)
		return
	}
	p.free <- w
}

// shutdownWorker asks one worker to exit and closes its transport.
func (p *ProcPool) shutdownWorker(w *poolWorker) {
	if err := WriteMessage(w.bw, &Message{Type: MsgShutdown}); err == nil {
		w.bw.Flush()
	}
	w.t.Close()
}

// execOn runs one assignment on w. dead reports that the transport is
// unusable (as opposed to a clean cell-level error).
func (p *ProcPool) execOn(w *poolWorker, cell harness.Cell) (res harness.CellResult, err error, dead bool) {
	w.seq++
	if err := WriteMessage(w.bw, &Message{Type: MsgRun, Seq: w.seq, Cell: &cell}); err != nil {
		return harness.CellResult{}, fmt.Errorf("sweep: pool assignment: %w", err), true
	}
	if err := w.bw.Flush(); err != nil {
		return harness.CellResult{}, fmt.Errorf("sweep: pool assignment: %w", err), true
	}
	m, err := ReadMessage(w.br)
	if err != nil {
		return harness.CellResult{}, fmt.Errorf("sweep: pool reply: %w", err), true
	}
	if m.Seq != w.seq || (m.Type != MsgResult && m.Type != MsgError) {
		return harness.CellResult{}, fmt.Errorf("sweep: pool protocol violation: %q frame seq %d, want reply to seq %d",
			m.Type, m.Seq, w.seq), true
	}
	if m.Type == MsgError {
		return harness.CellResult{}, fmt.Errorf("sweep: cell failed on pool worker: %s", m.Error), false
	}
	return *m.Result, nil, false
}

// Close shuts every idle worker down cleanly and fails waiting and
// future Exec calls. Workers out serving a cell finish their
// assignment and are shut down when released.
func (p *ProcPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.workers = map[*poolWorker]bool{}
	p.mu.Unlock()
	close(p.done)
	for {
		select {
		case w := <-p.free:
			p.shutdownWorker(w)
		default:
			return nil
		}
	}
}
