package sweep

import (
	"strings"
	"testing"
)

// The progress line divides cached/total for the hit rate; a sweep that
// has not resolved any cells yet (or one whose plan is empty) must print
// 0%, not NaN%.
func TestProgressLineZeroCells(t *testing.T) {
	line := progressLine(Stats{}, 0, 2)
	if strings.Contains(line, "NaN") {
		t.Fatalf("progress line leaks NaN: %q", line)
	}
	if !strings.Contains(line, "0% hit rate") {
		t.Fatalf("want 0%% hit rate for an empty sweep, got %q", line)
	}
}

func TestProgressLine(t *testing.T) {
	stats := Stats{Cells: 8, Cached: 2, Retries: 1}
	line := progressLine(stats, 3, 2)
	for _, want := range []string{
		"5/8 cells done", "(2 cached, 25% hit rate)",
		"3 pending", "1 retries", "2 workers live",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %q", want, line)
		}
	}
}
