package sweep

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/harness"
)

// sampleCell and sampleResult are well-formed payloads shared by the
// protocol, cache and fuzz tests.
func sampleCell() harness.Cell {
	return harness.Cell{Kind: harness.KindNative, Workload: "figure1",
		Threads: 4, Cores: 48, Scale: 0.05}
}

func sampleResult() harness.CellResult {
	return harness.CellResult{
		Result: exec.Result{
			TotalCycles: 123456,
			Phases:      []exec.PhaseRecord{{Index: 0, Name: "work", Parallel: true, Start: 10, End: 110}},
			Threads:     []exec.ThreadRecord{{ID: 1, Core: 1, Phase: 0, Start: 10, End: 100, Instrs: 9000}},
		},
		Report: &core.Report{App: "figure1", Cores: 48, RuntimeCycles: 123456, Samples: 77},
	}
}

// TestMessageRoundTrip: every frame type must survive the wire exactly.
func TestMessageRoundTrip(t *testing.T) {
	t.Parallel()
	cell := sampleCell()
	res := sampleResult()
	msgs := []*Message{
		{Type: MsgHello, Proto: ProtoVersion},
		{Type: MsgRun, Seq: 7, Cell: &cell},
		{Type: MsgResult, Seq: 7, Result: &res},
		{Type: MsgError, Seq: 8, Error: "cell exploded"},
		{Type: MsgShutdown},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write %s: %v", m.Type, err)
		}
	}
	br := bufio.NewReader(&buf)
	for _, want := range msgs {
		got, err := ReadMessage(br)
		if err != nil {
			t.Fatalf("read %s: %v", want.Type, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Error != want.Error {
			t.Errorf("frame changed: got %+v want %+v", got, want)
		}
		if want.Cell != nil && *got.Cell != *want.Cell {
			t.Errorf("cell changed: got %+v want %+v", *got.Cell, *want.Cell)
		}
		if want.Result != nil && got.Result.Result.TotalCycles != want.Result.Result.TotalCycles {
			t.Errorf("result changed: got %+v", got.Result)
		}
	}
	if _, err := ReadMessage(br); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestReadMessageRejectsMalformedFrames: the reader fronts external
// input; each malformation must produce an error, never a panic, a
// hang or a giant allocation.
func TestReadMessageRejectsMalformedFrames(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"empty header":       "\n",
		"non-digit header":   "12x\n{}\n",
		"negative":           "-4\n{}\n",
		"huge length":        "99999999\n{}\n",
		"overlong header":    "123456789123\n",
		"truncated payload":  "400\n{\"type\":\"shutdown\"}",
		"missing newline":    "19\n{\"type\":\"shutdown\"}X",
		"bad json":           "9\n{\"type\":}\n",
		"unknown type":       "17\n{\"type\":\"launch\"}\n",
		"unknown field":      "30\n{\"type\":\"shutdown\",\"zap\":true}\n",
		"run without cell":   "14\n{\"type\":\"run\"}\n",
		"result empty":       "17\n{\"type\":\"result\"}\n",
		"error no text":      "16\n{\"type\":\"error\"}\n",
		"cell out of bounds": `52` + "\n" + `{"type":"run","cell":{"kind":"native","threads":-1}}` + "\n",
	}
	for name, input := range cases {
		if _, err := ReadMessage(bufio.NewReader(strings.NewReader(input))); err == nil || err == io.EOF {
			t.Errorf("%s: err = %v, want a non-EOF error", name, err)
		}
	}
}

// TestWriteMessageRejectsOversizedFrames: the writer enforces the same
// bound as the reader, so a pathological result cannot poison a stream.
func TestWriteMessageRejectsOversizedFrames(t *testing.T) {
	t.Parallel()
	m := &Message{Type: MsgError, Error: strings.Repeat("x", MaxFrame)}
	if err := WriteMessage(io.Discard, m); err == nil {
		t.Error("oversized frame written without error")
	}
}
