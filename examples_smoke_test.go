package cheetah_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesBuildAndRun builds every program under examples/ and runs
// it to completion — the examples are executable documentation, so a
// refactor that silently breaks them should fail the suite. Skipped in
// -short mode (each example regenerates a full-scale experiment).
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs full-scale example programs")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no example programs found")
	}
	binDir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, name)
			build := exec.Command(goTool, "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build failed: %v\n%s", err, out)
			}
			out, err := exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("example exited with error: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
