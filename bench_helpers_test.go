package cheetah_test

import (
	cheetah "repro"
	"repro/internal/harness"
)

// newBenchSystem builds the standard 48-core evaluation machine.
func newBenchSystem() *cheetah.System {
	return cheetah.New(cheetah.Config{})
}

// profileOptions returns the detection-tuned profiling configuration.
func profileOptions() cheetah.ProfileOptions {
	return cheetah.ProfileOptions{PMU: harness.DetectionPMU()}
}
