// Benchmarks regenerating the paper's evaluation, one per table and
// figure (§4). Each benchmark runs the corresponding harness experiment
// and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's results in one sweep. The benchmarks run at a
// reduced scale to stay fast; `go run ./cmd/fsbench` regenerates the
// full-scale tables and the BENCH_harness.json trajectory entry.
package cheetah_test

import (
	"runtime/debug"
	"testing"

	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/workload"
)

// batchGC applies cmd/fsbench's batch-job GC setting for the duration of
// a benchmark, so sweep-level numbers here match what the tool measures.
func batchGC(b *testing.B) {
	old := debug.SetGCPercent(400)
	b.Cleanup(func() { debug.SetGCPercent(old) })
}

// benchConfig is the reduced-scale configuration for benchmarks.
// Workers -1 selects a private full-width runner per call: benchmarks
// must re-execute their cells each iteration rather than hit the
// package-level memoizing runner.
func benchConfig() harness.Config {
	return harness.Config{Scale: 0.25, Threads: 16, Workers: -1}
}

// BenchmarkFigure1 regenerates the motivation microbenchmark: reality vs
// linear-speedup expectation at 8 threads (the paper reports ~13x).
func BenchmarkFigure1(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		rows := harness.Figure1(benchConfig())
		slowdown = rows[len(rows)-1].Slowdown()
	}
	b.ReportMetric(slowdown, "x-slowdown-at-8-threads")
}

// BenchmarkFigure4 regenerates the overhead study over all 17
// applications (the paper reports ~7% average, kmeans and x264 >20%).
func BenchmarkFigure4(b *testing.B) {
	var avg, avgEx, worst float64
	for i := 0; i < b.N; i++ {
		rows := harness.Figure4(benchConfig())
		avg, avgEx = harness.AverageOverhead(rows)
		worst = 0
		for _, r := range rows {
			if o := r.Overhead(); o > worst {
				worst = o
			}
		}
	}
	b.ReportMetric(avg*100, "%-overhead-average")
	b.ReportMetric(avgEx*100, "%-overhead-excl-outliers")
	b.ReportMetric(worst*100, "%-overhead-worst")
}

// BenchmarkFigure5 regenerates the linear_regression case-study report
// and its predicted improvement (the paper's report shows 5.76x at 16
// threads on its hardware).
func BenchmarkFigure5(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		rep, _ := harness.Figure5("linear_regression", harness.Config{Scale: 1, Threads: 16, Workers: -1})
		if len(rep.Instances) == 0 {
			b.Fatal("case-study instance not detected")
		}
		improvement = rep.Instances[0].Assessment.Improvement
	}
	b.ReportMetric(improvement, "x-predicted-improvement")
}

// BenchmarkFigure7 regenerates the missed-instances study: the false
// sharing Cheetah misses has negligible real impact (paper: <0.2%).
func BenchmarkFigure7(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, r := range harness.Figure7(benchConfig()) {
			if imp := r.Improvement(); imp > worst {
				worst = imp
			}
			if r.CheetahReports {
				b.Fatalf("%s: Cheetah reported an instance it should miss", r.App)
			}
		}
	}
	b.ReportMetric(worst*100, "%-worst-missed-impact")
}

// BenchmarkTable1 regenerates the assessment-precision study on
// linear_regression and streamcluster (the paper reports <10% difference
// between predicted and real improvement in every cell). Full scale is
// required for sampling density, so this is the slowest benchmark.
func BenchmarkTable1(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, r := range harness.Table1(harness.Config{Scale: 1, Threads: 16, Workers: -1}) {
			if !r.Detected {
				b.Fatalf("%s threads=%d: not detected", r.App, r.Threads)
			}
			if d := r.AbsDiff(); d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst*100, "%-worst-precision-diff")
}

// BenchmarkCompare regenerates the §4.2.3 tool comparison (Cheetah vs
// Predator-style instrumentation vs Sheriff-style page diffing).
func BenchmarkCompare(b *testing.B) {
	var predatorOvh float64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.Compare(benchConfig()) {
			if r.App == "linear_regression" {
				predatorOvh = r.PredatorOverhead
			}
		}
	}
	b.ReportMetric(predatorOvh, "x-predator-slowdown")
}

// BenchmarkAblationPeriod regenerates the sampling-period sweep behind
// the paper's 64K-instruction choice.
func BenchmarkAblationPeriod(b *testing.B) {
	var detectedUpTo uint64
	for i := 0; i < b.N; i++ {
		detectedUpTo = 0
		for _, r := range harness.PeriodAblation(benchConfig()) {
			if r.Detected && r.Period > detectedUpTo {
				detectedUpTo = r.Period
			}
		}
	}
	b.ReportMetric(float64(detectedUpTo), "max-detecting-period")
}

// BenchmarkAblationRule regenerates the invalidation-rule comparison
// (two-entry table vs Zhao et al. ownership bitmap vs MESI ground truth).
func BenchmarkAblationRule(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.RuleAblation(benchConfig()) {
			if r.App == "linear_regression" && r.GroundTruth > 0 {
				ratio = float64(r.TwoEntry) / float64(r.GroundTruth)
			}
		}
	}
	b.ReportMetric(ratio, "x-two-entry-overreport")
}

// BenchmarkRunAll regenerates the entire evaluation through the
// concurrent experiment runner — the end-to-end number the bench
// trajectory (BENCH_harness.json, via cmd/fsbench) tracks across
// revisions. Cells shared between experiments are executed once; the
// dedup ratio is reported alongside.
func BenchmarkRunAll(b *testing.B) {
	batchGC(b)
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(0)
		res := harness.RunAllWith(r, benchConfig())
		if len(res.Metrics()) == 0 {
			b.Fatal("sweep produced no metrics")
		}
		b.ReportMetric(float64(r.CellsRun()), "cells/op")
	}
}

// BenchmarkExecSchedRunAll is the harness-level wall-clock comparison
// of the engine schedulers: the identical full evaluation (which is
// byte-identical by the cross-scheduler equivalence suite) run under
// the heap and the calendar queue. The delta between the two legs is
// the scheduler's share of end-to-end sweep time — the number the
// BENCH_harness.json trajectory tracks via `fsbench -sched`.
func BenchmarkExecSchedRunAll(b *testing.B) {
	batchGC(b)
	for _, sched := range exec.SchedulerNames() {
		b.Run(sched, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Sched = sched
				res := harness.RunAll(cfg)
				if len(res.Metrics()) == 0 {
					b.Fatal("sweep produced no metrics")
				}
			}
		})
	}
}

// BenchmarkRunAllSerial is the forced-serial baseline for BenchmarkRunAll:
// the ratio of the two is the runner's parallel speedup on this machine.
func BenchmarkRunAllSerial(b *testing.B) {
	batchGC(b)
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Workers = 1
		harness.RunAll(cfg)
	}
}

// BenchmarkEngineThroughput measures the simulator substrate itself:
// simulated memory operations per second on the flagship workload.
func BenchmarkEngineThroughput(b *testing.B) {
	batchGC(b)
	w, _ := workload.ByName("linear_regression")
	for i := 0; i < b.N; i++ {
		sys := newBenchSystem()
		prog := w.Build(sys, workload.Params{Threads: 16, Scale: 0.25})
		res := sys.Run(prog)
		var ops uint64
		for _, th := range res.Threads {
			ops += th.MemAccesses
		}
		b.ReportMetric(float64(ops), "simulated-ops/op")
	}
}

// BenchmarkProfilerSampleProcessing measures the profiler's per-sample
// cost in isolation by running the flagship workload at a dense period.
func BenchmarkProfilerSampleProcessing(b *testing.B) {
	w, _ := workload.ByName("linear_regression")
	for i := 0; i < b.N; i++ {
		sys := newBenchSystem()
		prog := w.Build(sys, workload.Params{Threads: 16, Scale: 0.25})
		rep, _ := sys.Profile(prog, profileOptions())
		if rep.Samples == 0 {
			b.Fatal("no samples processed")
		}
	}
}
