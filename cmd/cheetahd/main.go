// Command cheetahd serves false-sharing detection as a long-lived HTTP
// service: clients POST a recorded trace (or a named workload and
// parameters) to /v1/jobs, follow progress over Server-Sent Events,
// and fetch a report that is byte-identical to what the cheetah CLI
// prints for the same input. Jobs multiplex onto a bounded executor
// pool with per-tenant concurrency budgets; identical cells dedupe
// through in-flight singleflight and the content-addressed result
// cache, so a popular trace costs one simulation no matter how many
// clients submit it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cheetahd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:9139", "listen address for the API, metrics and pprof")
	spool := fs.String("spool", "", "directory for uploaded traces (default: a temp directory)")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory (empty = no cache)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries past this size (0 = unbounded)")
	workers := fs.Int("workers", 0, "concurrent cell executions (0 = GOMAXPROCS)")
	workerProcs := fs.Int("worker-procs", 0,
		"run cells on this many persistent worker subprocesses instead of in-process goroutines")
	queueDepth := fs.Int("queue-depth", 256, "max admitted-but-unfinished cells before submissions get 429")
	tenantBudget := fs.Int("tenant-budget", 0, "max concurrent cells per tenant (0 = no per-tenant bound)")
	maxUpload := fs.Int64("max-upload-bytes", 256<<20, "largest accepted trace upload")
	jobTTL := fs.Duration("job-ttl", time.Hour,
		"evict finished jobs from the job table after this retention (0 = retain for the life of the process)")
	worker := fs.Bool("worker", false, "run as a pool worker on stdin/stdout (internal; used by -worker-procs)")
	spanLog := fs.String("span-log", "", "append structured span/event records (JSONL) to this file")
	chromeTrace := fs.String("chrome-trace", "", "write a Chrome trace-event file to this path")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *worker {
		if err := sweep.Serve(os.Stdin, stdout); err != nil {
			fmt.Fprintf(stderr, "cheetahd worker: %v\n", err)
			return 1
		}
		return 0
	}

	// Tracing wires straight to the obs tracer rather than through
	// obs.Setup: Setup's signal handler finalizes trace files and then
	// re-raises the signal, which is right for a CLI sweep but would cut
	// short the daemon's own graceful drain below. Metrics need no
	// address of their own because the API mux serves them.
	tracer, err := obs.OpenTracer(*spanLog, *chromeTrace)
	if err != nil {
		fmt.Fprintf(stderr, "cheetahd: %v\n", err)
		return 1
	}
	obs.SetTracer(tracer)
	defer func() {
		obs.SetTracer(nil)
		if tracer != nil {
			tracer.Close()
		}
	}()
	obs.RegisterRuntimeMetrics(obs.Default())

	spoolDir := *spool
	if spoolDir == "" {
		dir, err := os.MkdirTemp("", "cheetahd-spool-")
		if err != nil {
			fmt.Fprintf(stderr, "cheetahd: %v\n", err)
			return 1
		}
		defer os.RemoveAll(dir)
		spoolDir = dir
	} else if err := os.MkdirAll(spoolDir, 0o755); err != nil {
		fmt.Fprintf(stderr, "cheetahd: %v\n", err)
		return 1
	}

	qcfg := sweep.QueueConfig{
		Workers:        *workers,
		MaxQueuedCells: *queueDepth,
		TenantBudget:   *tenantBudget,
		Log:            stderr,
	}
	if qcfg.Workers <= 0 {
		qcfg.Workers = runtime.GOMAXPROCS(0)
	}
	if *cacheDir != "" {
		cache, err := sweep.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "cheetahd: opening cache: %v\n", err)
			return 1
		}
		cache.SetMaxBytes(*cacheMaxBytes)
		qcfg.Cache = cache
	}

	// Execution backend: fresh in-process systems per cell by default
	// (harness.RunCell — never the process-wide memoizing runner), or a
	// persistent subprocess pool so simulations live outside the
	// daemon's heap and a crashing cell kills a worker, not the service.
	var pool *sweep.ProcPool
	if *workerProcs > 0 {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(stderr, "cheetahd: %v\n", err)
			return 1
		}
		pool, err = sweep.NewProcPool(*workerProcs, func(i int) (io.ReadWriteCloser, error) {
			return sweep.SpawnWorkerProc(exe, []string{"-worker"}, nil, stderr)
		})
		if err != nil {
			fmt.Fprintf(stderr, "cheetahd: %v\n", err)
			return 1
		}
		defer pool.Close()
		qcfg.Exec = pool.Exec
	}

	queue := sweep.NewJobQueue(qcfg)
	srv := newServer(queue, spoolDir, *maxUpload, *jobTTL, stderr)
	stopGC := srv.startGC()
	defer stopGC()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "cheetahd: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.mux(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "cheetahd: serving detection on http://%s (workers=%d, queue-depth=%d)\n",
		ln.Addr(), qcfg.Workers, *queueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "cheetahd: serve: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stderr, "cheetahd: %v: draining\n", s)
	}

	// Graceful drain: stop accepting, let in-flight requests and running
	// jobs finish within a bounded window.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "cheetahd: http shutdown: %v\n", err)
	}
	if err := queue.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "cheetahd: queue shutdown: %v\n", err)
		return 1
	}
	return 0
}
