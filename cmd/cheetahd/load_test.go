package main

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/sweep"
)

// TestGatewayLoad drives the full HTTP stack with hundreds of
// concurrent jobs from several tenants over a small set of distinct
// traces, and asserts the issue's service-level guarantees:
//
//   - every admitted job completes with a correct, byte-identical report
//     (no dropped and no corrupted results);
//   - each distinct trace executes exactly once — concurrent duplicates
//     dedupe in flight, later duplicates hit the cache;
//   - queue depth stays within the configured bound throughout.
func TestGatewayLoad(t *testing.T) {
	t.Parallel()
	jobs, traces, tenants := 200, 8, 4
	if testing.Short() {
		jobs, traces, tenants = 40, 4, 2
	}

	// Distinct tiny traces; jobs round-robin over them so every trace
	// sees heavy duplication across tenants.
	dir := t.TempDir()
	paths := make([]string, traces)
	wants := make([]string, traces)
	for i := range paths {
		paths[i] = writeTrace(t, dir, fmt.Sprintf("t%d.trace", i), 0.02+0.005*float64(i))
		wants[i] = cliReplayReport(t, paths[i])
	}

	var (
		execMu   sync.Mutex
		execRuns = map[string]int{} // cell ID -> executions
	)
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	qcfg := sweep.QueueConfig{
		Workers:        8,
		MaxQueuedCells: jobs + traces,
		TenantBudget:   3,
		Cache:          cache,
		Exec: func(c harness.Cell) (harness.CellResult, error) {
			execMu.Lock()
			execRuns[c.ID()]++
			execMu.Unlock()
			time.Sleep(5 * time.Millisecond) // widen the dedupe window
			return harness.RunCell(c)
		},
	}
	ts, queue := testGateway(t, qcfg)

	// Sample queue depth while the storm runs: it must never exceed the
	// configured bound.
	var (
		depthMu  sync.Mutex
		maxDepth int
	)
	stopSampling := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			d := queue.Stats().QueuedCells
			depthMu.Lock()
			if d > maxDepth {
				maxDepth = d
			}
			depthMu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ti := i % traces
			tenant := fmt.Sprintf("tenant-%d", i%tenants)
			id, status, body := trySubmitTrace(t, ts, paths[ti], tenant)
			if status != http.StatusAccepted {
				errs <- fmt.Errorf("job %d: submit status %d (%s)", i, status, body)
				return
			}
			got := fetchReport(t, ts, id)
			if got != wants[ti] {
				errs <- fmt.Errorf("job %d: report diverges from CLI replay of trace %d", i, ti)
			}
		}(i)
	}
	wg.Wait()
	close(stopSampling)
	<-samplerDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	execMu.Lock()
	if len(execRuns) != traces {
		t.Errorf("%d distinct cells executed, want %d", len(execRuns), traces)
	}
	for id, n := range execRuns {
		if n != 1 {
			t.Errorf("cell %s executed %d times, want exactly 1 (dedupe + cache)", id, n)
		}
	}
	execMu.Unlock()
	depthMu.Lock()
	if maxDepth > jobs+traces {
		t.Errorf("queue depth reached %d, above the configured bound %d", maxDepth, jobs+traces)
	}
	depthMu.Unlock()
	s := queue.Stats()
	if s.CellsExecuted != uint64(traces) {
		t.Errorf("CellsExecuted = %d, want %d", s.CellsExecuted, traces)
	}
	if got := s.CellsExecuted + s.CellsDeduped + s.CellsCached; got != uint64(jobs) {
		t.Errorf("executed+deduped+cached = %d, want %d (every job accounted for)", got, jobs)
	}
	if s.Failed != 0 {
		t.Errorf("%d jobs failed", s.Failed)
	}
	if s.QueuedCells != 0 {
		t.Errorf("queue depth %d after drain, want 0", s.QueuedCells)
	}
}

// TestGatewayLoadBudgetEnforced runs a smaller storm with a blocking
// stub executor, proving the per-tenant budget holds end to end at the
// HTTP layer: distinct cells from one tenant never run more than
// TenantBudget at once even with idle workers.
func TestGatewayLoadBudgetEnforced(t *testing.T) {
	t.Parallel()
	const budget = 2
	var (
		mu       sync.Mutex
		cur, max int
	)
	block := make(chan struct{})
	exec := func(c harness.Cell) (harness.CellResult, error) {
		mu.Lock()
		cur++
		if cur > max {
			max = cur
		}
		mu.Unlock()
		<-block
		res, err := harness.RunCell(c)
		mu.Lock()
		cur--
		mu.Unlock()
		return res, err
	}
	qcfg := sweep.QueueConfig{Workers: 16, MaxQueuedCells: 64, TenantBudget: budget, Exec: exec}
	ts, _ := testGateway(t, qcfg)

	// 6 distinct traces, all one tenant.
	dir := t.TempDir()
	ids := make([]string, 6)
	for i := range ids {
		p := writeTrace(t, dir, fmt.Sprintf("b%d.trace", i), 0.02+0.004*float64(i))
		ids[i] = submitTrace(t, ts, p, "one-tenant")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := cur
		mu.Unlock()
		if n >= budget {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d concurrent executions", budget)
		}
		time.Sleep(time.Millisecond)
	}
	// Give the queue a moment to (incorrectly) start more if it would.
	time.Sleep(50 * time.Millisecond)
	close(block)
	for _, id := range ids {
		fetchReport(t, ts, id)
	}
	mu.Lock()
	defer mu.Unlock()
	if max > budget {
		t.Errorf("tenant ran %d cells concurrently, budget is %d", max, budget)
	}
}
