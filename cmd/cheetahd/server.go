package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// server is the cheetahd HTTP surface: job submission, status, SSE
// progress and report retrieval in front of a sweep.JobQueue, plus the
// obs routes (/metrics, /debug/pprof) on the same mux. Every job is
// one profiled harness cell, so a job's report is exactly what the
// cheetah CLI prints for the same input — byte for byte, the gateway's
// headline invariant.
type server struct {
	queue     *sweep.JobQueue
	spoolDir  string
	maxUpload int64
	// jobTTL is how long finished (done or failed) jobs stay queryable;
	// 0 retains them for the life of the process.
	jobTTL time.Duration
	log    io.Writer

	// renderOpts remembers each job's report rendering flags; the cell
	// result itself is render-agnostic.
	mu         sync.Mutex
	renderOpts map[string]renderOpts
}

type renderOpts struct {
	words, candidates bool
}

// jobSpec is the JSON body of a named-workload submission.
type jobSpec struct {
	Workload   string  `json:"workload"`
	Threads    int     `json:"threads"`
	Scale      float64 `json:"scale"`
	Fixed      bool    `json:"fixed"`
	Words      bool    `json:"words"`
	Candidates bool    `json:"candidates"`
	// Machine selects the machine-model preset the cell simulates
	// (machine.Names; empty = the canonical opteron48). Part of cell
	// identity: the same workload under two models is two cells.
	Machine string `json:"machine"`
}

// jobStatus is the JSON shape of a job in status and list responses.
type jobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Label  string `json:"label"`
	State  string `json:"state"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Error  string `json:"error,omitempty"`
}

func newServer(queue *sweep.JobQueue, spoolDir string, maxUpload int64, jobTTL time.Duration, log io.Writer) *server {
	return &server{
		queue:      queue,
		spoolDir:   spoolDir,
		maxUpload:  maxUpload,
		jobTTL:     jobTTL,
		log:        log,
		renderOpts: make(map[string]renderOpts),
	}
}

// gc evicts finished jobs older than the retention TTL from the job
// table and drops their render options. Evicted jobs 404 afterwards;
// their cell results survive in the shared cache.
func (s *server) gc() {
	ids := s.queue.GC(s.jobTTL)
	if len(ids) == 0 {
		return
	}
	s.mu.Lock()
	for _, id := range ids {
		delete(s.renderOpts, id)
	}
	s.mu.Unlock()
	s.logf("cheetahd: evicted %d finished jobs past the %v retention", len(ids), s.jobTTL)
}

// startGC runs gc periodically until the returned stop function is
// called. A zero TTL disables collection entirely.
func (s *server) startGC() (stop func()) {
	if s.jobTTL <= 0 {
		return func() {}
	}
	// Sweep a few times per TTL so eviction lag stays a fraction of the
	// retention window, but never busier than once a second.
	interval := s.jobTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.gc()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// mux builds the full route table, observability included — one port
// serves the API, Prometheus metrics and pprof.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	obs.Register(mux, obs.Default())
	return mux
}

func (s *server) logf(format string, args ...any) {
	if s.log != nil {
		fmt.Fprintf(s.log, format+"\n", args...)
	}
}

// tenantOf attributes a request to a concurrency budget.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit admits one job. A JSON body names a registered workload
// with optional parameters; any other content type is a raw trace
// upload, validated and spooled content-addressed before admission.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var (
		cell  harness.Cell
		label string
		opts  renderOpts
		err   error
	)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		cell, label, opts, err = s.cellFromSpec(r)
	} else {
		cell, label, err = s.cellFromUpload(r)
	}
	if err != nil {
		var mbe *http.MaxBytesError
		switch {
		case errors.As(err, &mbe):
			httpError(w, http.StatusRequestEntityTooLarge, "upload exceeds the %d byte limit", mbe.Limit)
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}

	job, err := s.queue.Submit(sweep.JobSpec{
		Tenant: tenantOf(r),
		Label:  label,
		Cells:  []harness.Cell{cell},
	})
	if err != nil {
		switch {
		case errors.Is(err, sweep.ErrQueueFull):
			httpError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, sweep.ErrShuttingDown):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.mu.Lock()
	s.renderOpts[job.ID] = opts
	s.mu.Unlock()
	s.logf("cheetahd: job %s (%s) admitted for tenant %s", job.ID, label, job.Tenant)

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{
		"id":     job.ID,
		"status": string(job.State()),
		"events": "/v1/jobs/" + job.ID + "/events",
		"report": "/v1/jobs/" + job.ID + "/report",
	})
}

// cellFromSpec builds the profiled cell for a named-workload job. The
// cell mirrors what `cheetah <workload>` runs: default 48 cores, the
// calibrated detection PMU, default scheduler — so the job's report
// matches the CLI's bytes for the same parameters.
func (s *server) cellFromSpec(r *http.Request) (harness.Cell, string, renderOpts, error) {
	var spec jobSpec
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return harness.Cell{}, "", renderOpts{}, fmt.Errorf("decoding job spec: %w", err)
	}
	if workload.IsTraceName(spec.Workload) {
		return harness.Cell{}, "", renderOpts{}, fmt.Errorf(
			"trace workloads are submitted by uploading the trace file, not by name")
	}
	if _, ok := workload.ByName(spec.Workload); !ok {
		return harness.Cell{}, "", renderOpts{}, fmt.Errorf(
			"unknown workload %q; available: %s", spec.Workload, strings.Join(workload.Names(), ", "))
	}
	if _, ok := machine.Preset(spec.Machine); !ok {
		return harness.Cell{}, "", renderOpts{}, fmt.Errorf(
			"unknown machine preset %q; available: %s", spec.Machine, strings.Join(machine.Names(), ", "))
	}
	if spec.Threads == 0 {
		spec.Threads = 16
	}
	if spec.Scale == 0 {
		spec.Scale = 1
	}
	cell := harness.Cell{
		Kind:     harness.KindProfiled,
		Workload: spec.Workload,
		Threads:  spec.Threads,
		Cores:    48, // cheetah.New's default machine, like the CLI
		Scale:    spec.Scale,
		Fixed:    spec.Fixed,
		PMU:      harness.DetectionPMU(),
		Machine:  spec.Machine,
	}
	if err := cell.Validate(); err != nil {
		return harness.Cell{}, "", renderOpts{}, err
	}
	return cell, spec.Workload, renderOpts{words: spec.Words, candidates: spec.Candidates}, nil
}

// cellFromUpload spools an uploaded trace content-addressed (dedupes
// identical uploads), validates it via the trace metadata before
// admission, and builds the profiled cell that replays it. Core count
// comes from the recording and the PMU is the calibrated detection
// configuration — exactly `cheetah -replay`, so the report matches the
// CLI byte for byte.
func (s *server) cellFromUpload(r *http.Request) (harness.Cell, string, error) {
	body := http.MaxBytesReader(nil, r.Body, s.maxUpload)
	tmp, err := os.CreateTemp(s.spoolDir, "upload-*.tmp")
	if err != nil {
		return harness.Cell{}, "", fmt.Errorf("spooling upload: %w", err)
	}
	defer os.Remove(tmp.Name())
	h := sha256.New()
	_, err = io.Copy(io.MultiWriter(tmp, h), body)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return harness.Cell{}, "", fmt.Errorf("spooling upload: %w", err)
	}

	// Validate before admission: a garbage upload fails here with a 400,
	// not later inside a worker.
	meta, err := trace.ReadMetaFile(tmp.Name())
	if err != nil {
		return harness.Cell{}, "", fmt.Errorf("invalid trace upload: %w", err)
	}

	// Content-address the spooled file: identical uploads share bytes on
	// disk, and the name doubles as the cell's trace hash.
	hash := hex.EncodeToString(h.Sum(nil))
	path := filepath.Join(s.spoolDir, hash+".trace")
	if _, statErr := os.Stat(path); statErr != nil {
		if err := os.Rename(tmp.Name(), path); err != nil {
			return harness.Cell{}, "", fmt.Errorf("spooling upload: %w", err)
		}
	}

	cell := harness.Cell{
		Kind:      harness.KindProfiled,
		Workload:  workload.TracePrefix + path,
		Threads:   1, // replay ignores it; a fixed value keeps cell identity stable
		Cores:     meta.Cores,
		Scale:     1,
		PMU:       harness.DetectionPMU(),
		TraceHash: hash,
	}
	if err := cell.Validate(); err != nil {
		return harness.Cell{}, "", fmt.Errorf("uploaded trace yields an invalid cell: %w", err)
	}
	label := meta.Name
	if label == "" {
		label = "trace upload"
	}
	return cell, label, nil
}

func (s *server) jobFor(w http.ResponseWriter, r *http.Request) (*sweep.Job, bool) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return nil, false
	}
	return job, true
}

func statusOf(job *sweep.Job) jobStatus {
	done, total := job.Progress()
	st := jobStatus{
		ID:     job.ID,
		Tenant: job.Tenant,
		Label:  job.Label,
		State:  string(job.State()),
		Done:   done,
		Total:  total,
	}
	if err := job.Err(); err != nil {
		st.Error = err.Error()
	}
	return st
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(statusOf(job))
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.queue.Jobs()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, statusOf(j))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(out)
}

// handleEvents streams a job's progress as Server-Sent Events: the
// full history first (late subscribers lose nothing), then live events
// until the job reaches a terminal state or the client goes away.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	past, live, cancel := job.Subscribe()
	defer cancel()
	writeEvent := func(ev sweep.JobEvent) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, b); err != nil {
			return false
		}
		if canFlush {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range past {
		if !writeEvent(ev) {
			return
		}
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return
			}
			if !writeEvent(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleReport serves the finished job's detection report — the exact
// bytes the cheetah CLI prints for the same trace or workload.
func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	switch job.State() {
	case sweep.JobDone:
	case sweep.JobFailed:
		httpError(w, http.StatusInternalServerError, "job failed: %v", job.Err())
		return
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusAccepted, "job %s is %s; retry shortly", job.ID, job.State())
		return
	}
	res, ok := job.Results()[job.Cells[0].ID()]
	if !ok || res.Report == nil {
		httpError(w, http.StatusInternalServerError, "job %s finished without a report", job.ID)
		return
	}
	s.mu.Lock()
	opts := s.renderOpts[job.ID]
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, harness.RenderDetectionReport(res.Report, res.Result, opts.words, opts.candidates))
}
