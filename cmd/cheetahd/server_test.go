package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	cheetah "repro"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// writeTrace records a tiny figure1 run to a trace file and returns
// its path — the same recipe the harness trace tests use.
func writeTrace(t *testing.T, dir, name string, scale float64) string {
	t.Helper()
	w, _ := workload.ByName("figure1")
	sys := cheetah.New(cheetah.Config{Cores: 4})
	prog := w.Build(sys, workload.Params{Threads: 2, Scale: scale})
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(trace.NewTextEncoder(f), sys.Heap(), sys.Globals())
	sys.RunWith(prog, exec.Probe(rec))
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// cliReplayReport computes the bytes `cheetah -replay <path>` prints:
// the reference for the gateway's byte-identity invariant.
func cliReplayReport(t *testing.T, path string) string {
	t.Helper()
	rp, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sys := cheetah.New(cheetah.Config{Cores: rp.Cores})
	if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
		t.Fatal(err)
	}
	report, res := sys.Profile(rp.Program(), cheetah.ProfileOptions{PMU: harness.DetectionPMU()})
	return harness.RenderDetectionReport(report, res, false, false)
}

// testGateway boots a full gateway (queue + handlers) on httptest.
func testGateway(t *testing.T, qcfg sweep.QueueConfig) (*httptest.Server, *sweep.JobQueue) {
	t.Helper()
	if qcfg.Workers == 0 {
		qcfg.Workers = 4
	}
	queue := sweep.NewJobQueue(qcfg)
	srv := newServer(queue, t.TempDir(), 64<<20, 0, nil)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts, queue
}

// submitTrace uploads a trace file and returns the job id.
func submitTrace(t *testing.T, ts *httptest.Server, path, tenant string) string {
	t.Helper()
	id, status, body := trySubmitTrace(t, ts, path, tenant)
	if status != http.StatusAccepted {
		t.Fatalf("upload: status %d, body %s", status, body)
	}
	return id
}

func trySubmitTrace(t *testing.T, ts *httptest.Server, path, tenant string) (id string, status int, body string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return "", resp.StatusCode, string(raw)
	}
	var out map[string]string
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("submit response: %v (%s)", err, raw)
	}
	return out["id"], resp.StatusCode, string(raw)
}

// fetchReport polls the report endpoint until the job finishes.
func fetchReport(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/report")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return string(body)
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", id)
			}
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("report for %s: status %d, body %s", id, resp.StatusCode, body)
		}
	}
}

// TestUploadedTraceReportMatchesCLIReplay is the gateway's headline
// invariant: the report fetched over HTTP for an uploaded trace is
// byte-identical to what `cheetah -replay` prints for the same file.
func TestUploadedTraceReportMatchesCLIReplay(t *testing.T) {
	t.Parallel()
	path := writeTrace(t, t.TempDir(), "a.trace", 0.05)
	want := cliReplayReport(t, path)

	ts, _ := testGateway(t, sweep.QueueConfig{})
	id := submitTrace(t, ts, path, "")
	got := fetchReport(t, ts, id)
	if got != want {
		t.Errorf("HTTP report diverges from CLI replay\n--- CLI ---\n%s\n--- HTTP ---\n%s", want, got)
	}
}

// TestConcurrentIdenticalUploadsDedupe: N clients upload the same trace
// at once; every report is byte-identical and the simulation runs far
// fewer times than N (in-flight dedupe plus the result cache).
func TestConcurrentIdenticalUploadsDedupe(t *testing.T) {
	t.Parallel()
	path := writeTrace(t, t.TempDir(), "a.trace", 0.05)
	want := cliReplayReport(t, path)

	var executions atomic.Int64
	qcfg := sweep.QueueConfig{
		Workers: 8,
		Exec: func(c harness.Cell) (harness.CellResult, error) {
			executions.Add(1)
			return harness.RunCell(c)
		},
	}
	ts, queue := testGateway(t, qcfg)

	const n = 30
	var wg sync.WaitGroup
	reports := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := submitTrace(t, ts, path, fmt.Sprintf("tenant-%d", i%3))
			reports[i] = fetchReport(t, ts, id)
		}(i)
	}
	wg.Wait()

	for i, got := range reports {
		if got != want {
			t.Fatalf("report %d diverges from CLI replay", i)
		}
	}
	// The uploads all content-address to one cell. Without a cache every
	// concurrent wave dedupes to a single in-flight execution; waves that
	// miss the overlap re-execute, so allow a little slack — but nowhere
	// near one execution per job.
	if got := executions.Load(); got > 3 {
		t.Errorf("cell executed %d times for %d identical jobs, want <= 3", got, n)
	}
	s := queue.Stats()
	if s.CellsExecuted+s.CellsDeduped+s.CellsCached != n {
		t.Errorf("stats don't account for every job: %+v", s)
	}
}

// TestNamedWorkloadJob: a JSON submission for a registered workload
// produces the same bytes as the CLI run of that workload.
func TestNamedWorkloadJob(t *testing.T) {
	t.Parallel()
	ts, _ := testGateway(t, sweep.QueueConfig{})
	body := `{"workload":"figure1","threads":2,"scale":0.05}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, raw)
	}
	var out map[string]string
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	got := fetchReport(t, ts, out["id"])

	// Reference: what `cheetah -threads 2 -scale 0.05 figure1` prints.
	w, _ := workload.ByName("figure1")
	sys := cheetah.New(cheetah.Config{})
	prog := w.Build(sys, workload.Params{Threads: 2, Scale: 0.05})
	report, res := sys.Profile(prog, cheetah.ProfileOptions{PMU: harness.DetectionPMU()})
	want := harness.RenderDetectionReport(report, res, false, false)
	if got != want {
		t.Errorf("named-workload report diverges from CLI\n--- CLI ---\n%s\n--- HTTP ---\n%s", want, got)
	}
}

// TestMachineWorkloadJob: a submission naming a machine preset
// simulates that machine — the report matches a local run under the
// same model and differs from the default-machine report. 32 threads so
// the hot data spans multiple lines under both geometries.
func TestMachineWorkloadJob(t *testing.T) {
	t.Parallel()
	ts, _ := testGateway(t, sweep.QueueConfig{})
	body := `{"workload":"figure1","threads":32,"scale":0.05,"machine":"line128"}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, raw)
	}
	var out map[string]string
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	got := fetchReport(t, ts, out["id"])

	reference := func(name string) string {
		cfg := cheetah.Config{}
		if m, ok := machine.Preset(name); ok && name != "" {
			cfg.Machine = m
		}
		w, _ := workload.ByName("figure1")
		sys := cheetah.New(cfg)
		prog := w.Build(sys, workload.Params{Threads: 32, Scale: 0.05})
		report, res := sys.Profile(prog, cheetah.ProfileOptions{PMU: harness.DetectionPMU()})
		return harness.RenderDetectionReport(report, res, false, false)
	}
	if want := reference("line128"); got != want {
		t.Errorf("line128 gateway report diverges from local run\n--- local ---\n%s\n--- HTTP ---\n%s", want, got)
	}
	if got == reference("") {
		t.Error("line128 gateway report is identical to the default machine's; the preset never reached the simulator")
	}
}

// TestBadSubmissionsRejected: garbage uploads and unknown workloads get
// a 400 before touching the queue; unknown jobs 404.
func TestBadSubmissionsRejected(t *testing.T) {
	t.Parallel()
	ts, queue := testGateway(t, sweep.QueueConfig{})

	garbage := filepath.Join(t.TempDir(), "garbage.trace")
	if err := os.WriteFile(garbage, []byte("this is not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, status, body := trySubmitTrace(t, ts, garbage, "")
	if status != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d (%s), want 400", status, body)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"no-such-workload"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"figure1","threads":2,"machine":"cray1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown machine preset: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/j999999/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}

	if s := queue.Stats(); s.Submitted != 0 {
		t.Errorf("rejected submissions reached the queue: %+v", s)
	}
}

// TestQueueFullReturns429: submissions beyond the cell bound get 429
// with the queue intact.
func TestQueueFullReturns429(t *testing.T) {
	t.Parallel()
	path := writeTrace(t, t.TempDir(), "a.trace", 0.02)
	block := make(chan struct{})
	defer close(block)
	qcfg := sweep.QueueConfig{
		Workers:        1,
		MaxQueuedCells: 1,
		Exec: func(c harness.Cell) (harness.CellResult, error) {
			<-block
			return harness.RunCell(c)
		},
	}
	ts, _ := testGateway(t, qcfg)
	submitTrace(t, ts, path, "")

	// The queue is at its bound with the first cell; a job for a
	// DIFFERENT cell must bounce with 429 (an identical upload would
	// dedupe, which is admission too).
	other := writeTrace(t, t.TempDir(), "b.trace", 0.03)
	_, status, body := trySubmitTrace(t, ts, other, "")
	if status != http.StatusTooManyRequests {
		t.Errorf("over-bound submit: status %d (%s), want 429", status, body)
	}
}

// TestJobTTLEvictsFinishedJobs: after GC collects a finished job, its
// report and SSE routes 404 like a job that never existed, while a
// still-running job survives the sweep untouched.
func TestJobTTLEvictsFinishedJobs(t *testing.T) {
	t.Parallel()
	path := writeTrace(t, t.TempDir(), "a.trace", 0.02)
	block := make(chan struct{})
	defer close(block)
	queue := sweep.NewJobQueue(sweep.QueueConfig{
		Workers: 2,
		Exec: func(c harness.Cell) (harness.CellResult, error) {
			if strings.Contains(c.Workload, "b.trace") {
				<-block
			}
			return harness.RunCell(c)
		},
	})
	// A zero TTL evicts every terminal job on the next sweep — the
	// deterministic stand-in for "the retention window has passed".
	srv := newServer(queue, t.TempDir(), 64<<20, 0, nil)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	finished := submitTrace(t, ts, path, "")
	fetchReport(t, ts, finished) // waits until the job is done
	running := submitTrace(t, ts, writeTrace(t, t.TempDir(), "b.trace", 0.03), "")

	srv.gc()

	for _, route := range []string{"/report", "/events", ""} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + finished + route)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s for evicted job: status %d, want 404", route, resp.StatusCode)
		}
	}
	if _, ok := queue.Get(running); !ok {
		t.Errorf("GC evicted the still-running job %s", running)
	}
	if s := queue.Stats(); s.JobsEvicted != 1 {
		t.Errorf("JobsEvicted = %d, want 1", s.JobsEvicted)
	}
	srv.mu.Lock()
	if _, ok := srv.renderOpts[finished]; ok {
		t.Errorf("render options for evicted job %s not pruned", finished)
	}
	srv.mu.Unlock()
}

// TestEventsStreamSSE: the events endpoint speaks SSE and ends with the
// job's terminal event.
func TestEventsStreamSSE(t *testing.T) {
	t.Parallel()
	path := writeTrace(t, t.TempDir(), "a.trace", 0.02)
	ts, _ := testGateway(t, sweep.QueueConfig{})
	id := submitTrace(t, ts, path, "")

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events Content-Type = %q", ct)
	}
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if k, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 || kinds[len(kinds)-1] != "done" {
		t.Errorf("SSE event kinds = %v, want a sequence ending in done", kinds)
	}
	if kinds[0] != "queued" {
		t.Errorf("SSE stream starts with %q, want queued (history replay)", kinds[0])
	}
}
