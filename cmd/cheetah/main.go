// Command cheetah runs a workload under the Cheetah profiler and prints
// its false sharing report, in the style of paper Figure 5.
//
// Usage:
//
//	cheetah [-threads 16] [-scale 1.0] [-period 64] [-words] [-candidates] <workload>
//	cheetah -list
//
// Workloads are the built-in Phoenix/PARSEC analogs, e.g.:
//
//	cheetah linear_regression
//	cheetah -threads 8 -words streamcluster
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	cheetah "repro"
	"repro/internal/harness"
	"repro/internal/pmu"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cheetah", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threads := fs.Int("threads", 16, "worker threads per parallel phase")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	period := fs.Uint64("period", 0, "sampling period in instructions (0 = calibrated default)")
	words := fs.Bool("words", false, "print word-level access detail for each instance")
	candidates := fs.Bool("candidates", false, "also print non-significant candidates")
	fixed := fs.Bool("fixed", false, "run the padded (fixed) layout instead of the original")
	list := fs.Bool("list", false, "list available workloads and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, w := range workload.All() {
			note := ""
			switch w.FS {
			case workload.SignificantFS:
				note = " [significant false sharing: " + w.FSSite + "]"
			case workload.MinorFS:
				note = " [minor false sharing: " + w.FSSite + "]"
			}
			fmt.Fprintf(stdout, "%-20s %s%s\n", w.Name, w.Suite, note)
		}
		return 0
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: cheetah [flags] <workload>  (or cheetah -list)")
		fs.Usage()
		return 2
	}
	name := fs.Arg(0)
	w, ok := workload.ByName(name)
	if !ok {
		fmt.Fprintf(stderr, "cheetah: unknown workload %q; available: %s\n",
			name, strings.Join(workload.Names(), ", "))
		return 2
	}

	sys := cheetah.New(cheetah.Config{})
	prog := w.Build(sys, workload.Params{Threads: *threads, Scale: *scale, Fixed: *fixed})

	var cfg pmu.Config
	if *period != 0 {
		cfg = pmu.Config{Period: *period, Jitter: *period / 4, HandlerCycles: 4, SetupCycles: 4700}
	} else {
		cfg = harness.DetectionPMU()
	}
	report, res := sys.Profile(prog, cheetah.ProfileOptions{PMU: cfg})

	fmt.Fprint(stdout, report.Format())
	if *words {
		for i := range report.Instances {
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, report.Instances[i].FormatWords())
		}
	}
	if *candidates && len(report.Candidates) > 0 {
		fmt.Fprintf(stdout, "\n%d further candidates (true sharing or below significance thresholds):\n",
			len(report.Candidates))
		for _, c := range report.Candidates {
			kind := "false sharing (insignificant)"
			if !c.FalseSharing {
				kind = "true sharing"
			}
			fmt.Fprintf(stdout, "  %v..%v  %-30s invalidations %d\n", c.Object.Start, c.Object.End, kind, c.Invalidations)
		}
	}
	fmt.Fprintf(stdout, "\nruntime %d cycles across %d phases\n", res.TotalCycles, len(res.Phases))
	return 0
}
